// Fig. 3 — SqueezeNet vs the PERCIVAL fork: layers, parameter counts, model
// size, forward MACs, and measured per-image latency, plus the downsampling
// ablation (§4.2: "we down-sample the feature maps at regular intervals...
// this helps reduce the classification time per image").
#include <cstdio>

#include "bench/bench_common.h"
#include "src/base/stopwatch.h"
#include "src/eval/metrics.h"
#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/fire.h"
#include "src/nn/pool.h"

namespace percival {
namespace {

double MeasureForwardMs(Network& net, const TensorShape& input_shape, int reps) {
  Tensor input(input_shape);
  Rng rng(1);
  for (int64_t i = 0; i < input.size(); ++i) {
    input[i] = rng.NextFloat(0.0f, 1.0f);
  }
  net.Forward(input);  // warm-up
  Stopwatch timer;
  for (int i = 0; i < reps; ++i) {
    net.Forward(input);
  }
  return timer.ElapsedMs() / reps;
}

void Run() {
  PrintHeader("Fig. 3 — architecture: original SqueezeNet vs PERCIVAL fork");

  PercivalNetConfig paper = PaperProfile();
  Network fork = BuildPercivalNet(paper);
  Network original = BuildOriginalSqueezeNet(paper.input_channels, paper.classes, 1);
  PercivalNetConfig experiment = ExperimentProfile();
  Network experiment_net = BuildPercivalNet(experiment);

  std::printf("\nPERCIVAL fork (paper profile, %dx%dx%d input):\n%s\n", paper.input_size,
              paper.input_size, paper.input_channels,
              fork.Summary(paper.InputShape()).c_str());

  TextTable table({"network", "params", "size (MB)", "MACs (M)", "fwd (ms)"});
  const TensorShape paper_input = paper.InputShape();
  auto add_row = [&table](const std::string& name, Network& net, const TensorShape& input,
                          int reps) {
    table.AddRow({name, std::to_string(net.ParameterCount()),
                  TextTable::Fixed(static_cast<double>(net.ModelBytes()) / (1024.0 * 1024.0), 2),
                  TextTable::Fixed(static_cast<double>(net.ForwardMacs(input)) / 1e6, 1),
                  TextTable::Fixed(MeasureForwardMs(net, input, reps), 2)});
  };
  add_row("SqueezeNet (original)", original, paper_input, 1);
  add_row("PERCIVAL fork @224", fork, paper_input, 2);
  add_row("PERCIVAL fork @64 (experiment)", experiment_net, experiment.InputShape(), 20);
  std::printf("%s", table.Render().c_str());

  const double ratio = static_cast<double>(original.ModelBytes()) / fork.ModelBytes();
  std::printf("\nfork/original size ratio: %.2fx smaller (paper: 4.8 MB -> <2 MB)\n", ratio);
  std::printf("vs Sentinel-class YOLO detector (~140 MB): %.0fx smaller (paper: 74x)\n",
              140.0 * 1024 * 1024 / static_cast<double>(fork.ModelBytes()));

  // Ablation: the fork *without* the extra interleaved max-pools (spatial
  // size stays high for longer) — the design choice §4.2 calls out.
  PrintHeader("Ablation — effect of interleaved downsampling (Fig. 3 design)");
  Rng rng(2);
  Network no_downsample;
  {
    // Same channels, pooling only at the end like the original layout.
    no_downsample = Network();
    Rng init(3);
    no_downsample.Add<Conv2D>(paper.input_channels, paper.conv1_channels, 3, 2, 1, init,
                              "conv1");
    no_downsample.Add<Relu>();
    no_downsample.Add<MaxPool2D>(2, 2);
    int channels = paper.conv1_channels;
    for (int i = 0; i < 6; ++i) {
      const FireConfig& fire = paper.fires[static_cast<size_t>(i)];
      no_downsample.AddLayer(std::make_unique<FireModule>(channels, fire.squeeze, fire.expand,
                                                          init, "fire" + std::to_string(i + 1)));
      channels = 2 * fire.expand;
    }
    no_downsample.Add<MaxPool2D>(2, 2);
    no_downsample.Add<Conv2D>(channels, paper.classes, 1, 1, 0, init, "conv_final");
    no_downsample.Add<GlobalAvgPool>();
  }
  TextTable ablation({"variant", "MACs (M)", "fwd (ms)"});
  ablation.AddRow({"fork with interleaved maxpools",
                   TextTable::Fixed(static_cast<double>(fork.ForwardMacs(paper_input)) / 1e6, 1),
                   TextTable::Fixed(MeasureForwardMs(fork, paper_input, 2), 2)});
  ablation.AddRow(
      {"same fires, late pooling only",
       TextTable::Fixed(static_cast<double>(no_downsample.ForwardMacs(paper_input)) / 1e6, 1),
       TextTable::Fixed(MeasureForwardMs(no_downsample, paper_input, 1), 2)});
  std::printf("%s", ablation.Render().c_str());
}

}  // namespace
}  // namespace percival

int main() {
  percival::Run();
  return 0;
}
