// Fig. 14 — render-time CDF for Chromium and Brave, with and without
// PERCIVAL in the critical path (synchronous classification). "Chromium"
// = renderer with no filter list; "Brave" = renderer with shields (the
// block list) enabled. Render time = domComplete - domLoading.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/renderer/renderer.h"

namespace percival {
namespace {

struct Config {
  const char* name;
  bool filter = false;
  bool percival = false;
};

void Run() {
  PrintHeader("Fig. 14 — render-time CDF (Chromium / Brave, +- PERCIVAL)");
  ModelZoo zoo;
  AdClassifier classifier = MakeSharedClassifier(zoo);
  BenchWorld world = MakeBenchWorld(0.75, 7);

  const int kPages = 120;
  const Config configs[] = {
      {"Chromium", false, false},
      {"Chromium+PERCIVAL", false, true},
      {"Brave", true, false},
      {"Brave+PERCIVAL", true, true},
  };

  std::vector<std::vector<double>> samples(4);
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < kPages; ++i) {
      const WebPage page = world.generator->GeneratePage(i % 40, i / 40);
      RenderOptions options;
      options.raster_threads = 4;
      if (configs[c].filter) {
        options.filter = &world.easylist;
      }
      if (configs[c].percival) {
        options.interceptor = &classifier;
      }
      RenderResult result = RenderPage(page, options);
      samples[static_cast<size_t>(c)].push_back(result.metrics.RenderTime());
    }
  }

  TextTable table({"configuration", "p10 (ms)", "p50 (ms)", "p90 (ms)", "mean (ms)"});
  for (int c = 0; c < 4; ++c) {
    EmpiricalCdf cdf(samples[static_cast<size_t>(c)]);
    table.AddRow({configs[c].name, TextTable::Fixed(cdf.Quantile(0.1), 1),
                  TextTable::Fixed(cdf.Quantile(0.5), 1), TextTable::Fixed(cdf.Quantile(0.9), 1),
                  TextTable::Fixed(cdf.Mean(), 1)});
  }
  std::printf("%s\n", table.Render().c_str());

  for (int c = 0; c < 4; ++c) {
    EmpiricalCdf cdf(samples[static_cast<size_t>(c)]);
    std::printf("%s", cdf.RenderAscii(10, configs[c].name).c_str());
    std::printf("\n");
  }
  std::printf(
      "Shape check (paper Fig. 14): each +PERCIVAL curve sits right of its\n"
      "baseline; Brave curves sit left of Chromium curves because shields\n"
      "skip ad fetches entirely.\n");
}

}  // namespace
}  // namespace percival

int main() {
  percival::Run();
  return 0;
}
