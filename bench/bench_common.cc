#include "bench/bench_common.h"

#include <cstdio>

#include "src/crawler/pipeline_crawler.h"
#include "src/train/trainer.h"
#include "src/webgen/adgen.h"
#include "src/webgen/contentgen.h"

namespace percival {

BenchWorld MakeBenchWorld(double listed_fraction, uint64_t seed, Language language) {
  BenchWorld world;
  AdEcosystemConfig ecosystem;
  ecosystem.network_count = 12;
  ecosystem.listed_fraction = listed_fraction;
  ecosystem.seed = seed;
  world.networks = BuildAdNetworks(ecosystem);
  SiteGenConfig site_config;
  site_config.seed = seed * 1000 + 1;
  site_config.language = language;
  world.generator = std::make_unique<SiteGenerator>(site_config, world.networks);
  world.easylist.AddList(BuildSyntheticEasyList(world.networks));
  return world;
}

Dataset CrawlTrainingSet(const BenchWorld& world, int sites, int pages, uint64_t seed) {
  PipelineCrawlConfig crawl;
  crawl.sites = sites;
  crawl.pages_per_site = pages;
  crawl.seed = seed;
  Dataset dataset =
      RunPipelineCrawl(*world.generator, EasyListLabeller(world.easylist), crawl, nullptr);
  dataset.Deduplicate();
  dataset.Balance();
  Rng rng(seed);
  dataset.Shuffle(rng);
  return dataset;
}

Network SharedTrainedModel(ModelZoo& zoo) {
  const PercivalNetConfig profile = ExperimentProfile();
  return zoo.GetOrTrain("shared_english", profile, [&profile](Network& net) {
    // Crawl-labelled training set over a fully listed web (clean labels),
    // augmented with directly sampled imagery for volume.
    BenchWorld world = MakeBenchWorld(1.0, 7);
    Dataset dataset = CrawlTrainingSet(world, 24, 3, 11);
    SampledDatasetOptions sampled;
    sampled.per_class = 150;
    sampled.seed = 13;
    dataset.Append(SampleDataset(sampled));
    Rng rng(3);
    dataset.Shuffle(rng);

    TrainConfig config;
    config.epochs = 14;
    config.batch_size = 24;
    config.sgd.learning_rate = 0.01f;
    config.sgd.lr_decay_every_epochs = 8;
    config.sgd.lr_decay_factor = 0.3f;
    config.verbose = true;
    TrainClassifier(net, profile, dataset, config);
  });
}

AdClassifier MakeSharedClassifier(ModelZoo& zoo) {
  return AdClassifier(SharedTrainedModel(zoo), ExperimentProfile());
}

Dataset SampleDataset(const SampledDatasetOptions& options) {
  Rng rng(options.seed);
  Dataset dataset;
  for (int i = 0; i < options.per_class; ++i) {
    Rng ad_rng = rng.Fork();
    AdImageOptions ad_options;
    ad_options.language = options.language;
    ad_options.cue_dropout = options.cue_dropout;
    ad_options.shifted_distribution = options.shifted_distribution;
    ad_options.slot = static_cast<AdSlotKind>(ad_rng.NextBelow(4));
    LabeledImage ad;
    ad.image = GenerateAdImage(ad_rng, ad_options);
    ad.is_ad = true;
    dataset.Add(std::move(ad));

    Rng content_rng = rng.Fork();
    ContentImageOptions content_options;
    content_options.language = options.language;
    content_options.shifted_distribution = options.shifted_distribution;
    content_options.kind = SampleContentKind(content_rng, options.product_photo_probability);
    LabeledImage content;
    content.image = GenerateContentImage(content_rng, content_options);
    content.is_ad = false;
    dataset.Add(std::move(content));
  }
  return dataset;
}

void PrintHeader(const std::string& title) {
  std::printf("\n==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==========================================================\n");
}

}  // namespace percival
