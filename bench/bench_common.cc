#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "src/base/stopwatch.h"
#include "src/crawler/pipeline_crawler.h"
#include "src/nn/gemm.h"
#include "src/train/trainer.h"
#include "src/webgen/adgen.h"
#include "src/webgen/contentgen.h"

namespace percival {

BenchWorld MakeBenchWorld(double listed_fraction, uint64_t seed, Language language) {
  BenchWorld world;
  AdEcosystemConfig ecosystem;
  ecosystem.network_count = 12;
  ecosystem.listed_fraction = listed_fraction;
  ecosystem.seed = seed;
  world.networks = BuildAdNetworks(ecosystem);
  SiteGenConfig site_config;
  site_config.seed = seed * 1000 + 1;
  site_config.language = language;
  world.generator = std::make_unique<SiteGenerator>(site_config, world.networks);
  world.easylist.AddList(BuildSyntheticEasyList(world.networks));
  return world;
}

Dataset CrawlTrainingSet(const BenchWorld& world, int sites, int pages, uint64_t seed) {
  PipelineCrawlConfig crawl;
  crawl.sites = sites;
  crawl.pages_per_site = pages;
  crawl.seed = seed;
  Dataset dataset =
      RunPipelineCrawl(*world.generator, EasyListLabeller(world.easylist), crawl, nullptr);
  dataset.Deduplicate();
  dataset.Balance();
  Rng rng(seed);
  dataset.Shuffle(rng);
  return dataset;
}

Network SharedTrainedModel(ModelZoo& zoo) {
  const PercivalNetConfig profile = ExperimentProfile();
  return zoo.GetOrTrain("shared_english", profile, [&profile](Network& net) {
    // Crawl-labelled training set over a fully listed web (clean labels),
    // augmented with directly sampled imagery for volume.
    BenchWorld world = MakeBenchWorld(1.0, 7);
    Dataset dataset = CrawlTrainingSet(world, 24, 3, 11);
    SampledDatasetOptions sampled;
    sampled.per_class = 150;
    sampled.seed = 13;
    dataset.Append(SampleDataset(sampled));
    Rng rng(3);
    dataset.Shuffle(rng);

    TrainConfig config;
    config.epochs = 14;
    config.batch_size = 24;
    config.sgd.learning_rate = 0.01f;
    config.sgd.lr_decay_every_epochs = 8;
    config.sgd.lr_decay_factor = 0.3f;
    config.verbose = true;
    TrainClassifier(net, profile, dataset, config);
  });
}

AdClassifier MakeSharedClassifier(ModelZoo& zoo) {
  return AdClassifier(SharedTrainedModel(zoo), ExperimentProfile());
}

Dataset SampleDataset(const SampledDatasetOptions& options) {
  Rng rng(options.seed);
  Dataset dataset;
  for (int i = 0; i < options.per_class; ++i) {
    Rng ad_rng = rng.Fork();
    AdImageOptions ad_options;
    ad_options.language = options.language;
    ad_options.cue_dropout = options.cue_dropout;
    ad_options.shifted_distribution = options.shifted_distribution;
    ad_options.slot = static_cast<AdSlotKind>(ad_rng.NextBelow(4));
    LabeledImage ad;
    ad.image = GenerateAdImage(ad_rng, ad_options);
    ad.is_ad = true;
    dataset.Add(std::move(ad));

    Rng content_rng = rng.Fork();
    ContentImageOptions content_options;
    content_options.language = options.language;
    content_options.shifted_distribution = options.shifted_distribution;
    content_options.kind = SampleContentKind(content_rng, options.product_photo_probability);
    LabeledImage content;
    content.image = GenerateContentImage(content_rng, content_options);
    content.is_ad = false;
    dataset.Add(std::move(content));
  }
  return dataset;
}

void PrintHeader(const std::string& title) {
  std::printf("\n==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==========================================================\n");
}

// ------------------------------------------------- kernel timing harness --

BenchReport::BenchReport(std::string tag) : tag_(std::move(tag)) {}

BenchTiming BenchReport::Run(const std::string& name, int reps, int64_t macs_per_rep,
                             const std::function<void()>& fn) {
  reps = std::max(reps, 1);
  fn();  // warmup: page in weights, grow arenas, prime caches
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    Stopwatch timer;
    fn();
    samples.push_back(timer.ElapsedMs());
  }
  std::sort(samples.begin(), samples.end());
  BenchTiming timing;
  timing.name = name;
  timing.reps = reps;
  timing.min_ms = samples.front();
  const size_t mid = samples.size() / 2;
  timing.median_ms = samples.size() % 2 == 1
                         ? samples[mid]
                         : 0.5 * (samples[mid - 1] + samples[mid]);
  if (macs_per_rep > 0 && timing.median_ms > 0.0) {
    timing.gmacs = static_cast<double>(macs_per_rep) / (timing.median_ms * 1e6);
  }
  Record(timing);
  return timing;
}

void BenchReport::Record(BenchTiming timing) {
  if (timing.gmacs > 0.0) {
    std::printf("%-44s %4d reps  median %9.3f ms  min %9.3f ms  %7.2f GMAC/s\n",
                timing.name.c_str(), timing.reps, timing.median_ms, timing.min_ms,
                timing.gmacs);
  } else {
    std::printf("%-44s %4d reps  median %9.3f ms  min %9.3f ms\n", timing.name.c_str(),
                timing.reps, timing.median_ms, timing.min_ms);
  }
  std::fflush(stdout);
  timings_.push_back(std::move(timing));
}

std::string BenchReport::WriteJson() const {
  std::string dir = ".";
  if (const char* env = std::getenv("PERCIVAL_BENCH_DIR")) {
    dir = env;
  }
  const std::string path = dir + "/BENCH_" + tag_ + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return "";
  }
  // "simd"/"simd_int8" are the RUNTIME-selected kernels (cpuid dispatch),
  // so two differently-flagged builds of the same binary on the same host
  // report the same paths; "cpu_features"/"simd_tier" record what the host
  // offered and which ladder rung won. CI diffs these across build flavors.
  out << "{\n  \"bench\": \"" << tag_ << "\",\n  \"simd\": \"" << ActiveGemmKernelName()
      << "\",\n  \"simd_int8\": \"" << ActiveInt8KernelName() << "\",\n  \"cpu_features\": \""
      << CpuFeatureString() << "\",\n  \"simd_tier\": \"" << SimdTierName(ActiveSimdTier())
      << "\",\n  \"results\": [\n";
  for (size_t i = 0; i < timings_.size(); ++i) {
    const BenchTiming& t = timings_[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"reps\": %d, \"median_ms\": %.6f, "
                  "\"min_ms\": %.6f, \"gmacs\": %.4f}%s\n",
                  t.name.c_str(), t.reps, t.median_ms, t.min_ms, t.gmacs,
                  i + 1 < timings_.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
  out.flush();  // surface disk-full/quota failures before reporting success
  return out ? path : "";
}

}  // namespace percival
