// Micro-benchmarks (google-benchmark) for the hot kernels: convolution
// lowering, fire modules, full-network inference at both profiles, codec
// decode, bitmap-to-tensor preprocessing, and filter-rule matching.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/core/classifier.h"
#include "src/core/model.h"
#include "src/filter/engine.h"
#include "src/img/codec.h"
#include "src/img/resize.h"
#include "src/nn/conv.h"
#include "src/nn/fire.h"
#include "src/nn/gemm.h"
#include "src/webgen/ad_network.h"
#include "src/webgen/adgen.h"

namespace percival {
namespace {

Tensor RandomTensor(const TensorShape& shape, uint64_t seed) {
  Tensor tensor(shape);
  Rng rng(seed);
  for (int64_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = rng.NextFloat(-1.0f, 1.0f);
  }
  return tensor;
}

// The conv A/B triple behind the ≥3x acceptance line: identical layer and
// input, forward path flipped between the naive oracle, the single-threaded
// GEMM engine, and GEMM + thread-pool fan-out. items/sec == MACs/sec.
void RunConvForward(benchmark::State& state, bool use_gemm, bool threaded) {
  const int size = static_cast<int>(state.range(0));
  Rng rng(1);
  Conv2D conv(16, 16, 3, 1, 1, rng);
  conv.set_use_gemm(use_gemm);
  Tensor input = RandomTensor(TensorShape{1, size, size, 16}, 2);
  std::unique_ptr<ScopedInferencePool> pool;
  if (threaded) {
    pool = std::make_unique<ScopedInferencePool>();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(input));
  }
  state.SetItemsProcessed(state.iterations() * conv.ForwardMacs(input.shape()));
}

void BM_Conv3x3Naive(benchmark::State& state) { RunConvForward(state, false, false); }
BENCHMARK(BM_Conv3x3Naive)->Arg(16)->Arg(32)->Arg(64);

void BM_Conv3x3Gemm(benchmark::State& state) { RunConvForward(state, true, false); }
BENCHMARK(BM_Conv3x3Gemm)->Arg(16)->Arg(32)->Arg(64);

void BM_Conv3x3GemmThreaded(benchmark::State& state) { RunConvForward(state, true, true); }
BENCHMARK(BM_Conv3x3GemmThreaded)->Arg(16)->Arg(32)->Arg(64);

void BM_FireModule(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  Rng rng(1);
  FireModule fire(32, 8, 32, rng);
  Tensor input = RandomTensor(TensorShape{1, size, size, 32}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fire.Forward(input));
  }
}
BENCHMARK(BM_FireModule)->Arg(8)->Arg(16)->Arg(32);

void BM_PercivalForwardExperiment(benchmark::State& state) {
  PercivalNetConfig config = ExperimentProfile();
  Network net = BuildPercivalNet(config);
  Tensor input = RandomTensor(config.InputShape(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(input));
  }
}
BENCHMARK(BM_PercivalForwardExperiment);

void BM_PercivalForwardExperimentThreaded(benchmark::State& state) {
  ScopedInferencePool pool;
  PercivalNetConfig config = ExperimentProfile();
  Network net = BuildPercivalNet(config);
  Tensor input = RandomTensor(config.InputShape(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(input));
  }
}
BENCHMARK(BM_PercivalForwardExperimentThreaded);

void BM_PercivalForwardPaper(benchmark::State& state) {
  PercivalNetConfig config = PaperProfile();
  Network net = BuildPercivalNet(config);
  Tensor input = RandomTensor(config.InputShape(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(input));
  }
}
BENCHMARK(BM_PercivalForwardPaper)->Iterations(2);

void BM_PercivalForwardPaperThreaded(benchmark::State& state) {
  ScopedInferencePool pool;
  PercivalNetConfig config = PaperProfile();
  Network net = BuildPercivalNet(config);
  Tensor input = RandomTensor(config.InputShape(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(input));
  }
}
BENCHMARK(BM_PercivalForwardPaperThreaded)->Iterations(2);

// Batched classification: one stacked forward for 8 creatives vs 8 separate
// Classify() calls (BM_ClassifySingle) over the same bitmaps. Both variants
// run under the inference pool so the comparison isolates batching itself.
void BM_ClassifySingle(benchmark::State& state) {
  ScopedInferencePool pool;
  PercivalNetConfig config = ExperimentProfile();
  AdClassifier classifier(BuildPercivalNet(config), config);
  Rng rng(11);
  std::vector<Bitmap> ads;
  for (int i = 0; i < 8; ++i) {
    AdImageOptions options;
    ads.push_back(GenerateAdImage(rng, options));
  }
  for (auto _ : state) {
    for (const Bitmap& ad : ads) {
      benchmark::DoNotOptimize(classifier.Classify(ad));
    }
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_ClassifySingle);

void BM_ClassifyBatch8(benchmark::State& state) {
  ScopedInferencePool pool;
  PercivalNetConfig config = ExperimentProfile();
  AdClassifier classifier(BuildPercivalNet(config), config);
  Rng rng(11);
  std::vector<Bitmap> ads;
  for (int i = 0; i < 8; ++i) {
    AdImageOptions options;
    ads.push_back(GenerateAdImage(rng, options));
  }
  std::vector<const Bitmap*> batch;
  for (const Bitmap& ad : ads) {
    batch.push_back(&ad);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.ClassifyBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_ClassifyBatch8);

void BM_DecodePif(benchmark::State& state) {
  Rng rng(4);
  AdImageOptions options;
  Bitmap ad = GenerateAdImage(rng, options);
  std::vector<uint8_t> bytes = EncodePif(ad);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodePif(bytes));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(ad.byte_size()));
}
BENCHMARK(BM_DecodePif);

void BM_BitmapToTensor(benchmark::State& state) {
  Rng rng(5);
  AdImageOptions options;
  Bitmap ad = GenerateAdImage(rng, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BitmapToTensor(ad, 64, 3));
  }
}
BENCHMARK(BM_BitmapToTensor);

void BM_FilterMatch(benchmark::State& state) {
  FilterEngine engine;
  engine.AddList(BuildSyntheticEasyList(BuildAdNetworks(AdEcosystemConfig{})));
  RequestContext request;
  request.url = Url::Parse("https://cdn.adnet3.example/banner3/1-2-3.pif");
  request.page_host = "news-site-1.example";
  request.type = ResourceType::kImage;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.ShouldBlockRequest(request));
  }
}
BENCHMARK(BM_FilterMatch);

}  // namespace
}  // namespace percival

BENCHMARK_MAIN();
