// Micro-benchmarks for the hot kernels: the conv GEMM engine (naive oracle
// vs scalar tile kernel vs the compiled SIMD kernel, fused, threaded, and
// int8-quantized variants), fire modules, full-network inference at both
// profiles (train mode, eval mode, and int8), codec decode,
// bitmap-to-tensor preprocessing, and filter-rule matching. The float and
// int8 entries run on identical layers and inputs so BENCH_*.json tracks
// the quantization multiplier across PRs.
//
// Self-timed via bench_common's BenchReport: every kernel runs a warmup
// plus N repetitions and reports median + min; all results are written to
// BENCH_micro_kernels.json for cross-PR perf tracking.
//
// Usage: micro_kernels [--filter=substring] [--reps-scale=X]
//   --filter      only run benches whose name contains the substring
//   --reps-scale  multiply every rep count (0.1 for a quick CI smoke)
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/core/classifier.h"
#include "src/core/model.h"
#include "src/filter/engine.h"
#include "src/img/codec.h"
#include "src/img/phash.h"
#include "src/img/resize.h"
#include "src/nn/conv.h"
#include "src/nn/fire.h"
#include "src/nn/gemm.h"
#include "src/nn/serialize.h"
#include "src/webgen/ad_network.h"
#include "src/webgen/adgen.h"

namespace percival {
namespace {

// Results are funneled here so the optimizer cannot delete a kernel body.
volatile float g_sink = 0.0f;

Tensor RandomTensor(const TensorShape& shape, uint64_t seed) {
  Tensor tensor(shape);
  Rng rng(seed);
  for (int64_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = rng.NextFloat(-1.0f, 1.0f);
  }
  return tensor;
}

struct Options {
  std::string filter;
  double reps_scale = 1.0;
};

void RunSuite(const Options& options) {
  BenchReport report("micro_kernels");
  auto bench = [&](const std::string& name, int reps, int64_t macs_per_rep,
                   const std::function<void()>& fn) {
    if (!options.filter.empty() && name.find(options.filter) == std::string::npos) {
      return;
    }
    reps = std::max(1, static_cast<int>(reps * options.reps_scale));
    report.Run(name, reps, macs_per_rep, fn);
  };

  // The conv A/B/C quartet behind the acceptance line: identical layer and
  // input, forward flipped between the naive oracle, the scalar tile kernel
  // (the PR 1 compiler-vectorized engine), the compiled SIMD kernel, and
  // SIMD + fused ReLU epilogue.
  for (int size : {16, 32, 64}) {
    Rng rng(1);
    Conv2D conv(16, 16, 3, 1, 1, rng);
    Tensor input = RandomTensor(TensorShape{1, size, size, 16}, 2);
    const int64_t macs = conv.ForwardMacs(input.shape());
    const std::string suffix = "_" + std::to_string(size);
    const int reps = size >= 64 ? 20 : 40;

    conv.set_use_gemm(false);
    bench("conv3x3_naive" + suffix, reps, macs, [&] { g_sink += conv.Forward(input)[0]; });
    conv.set_use_gemm(true);
    bench("conv3x3_gemm_scalar" + suffix, reps, macs, [&] {
      SetGemmForceScalar(true);
      g_sink += conv.Forward(input)[0];
      SetGemmForceScalar(false);
    });
    bench("conv3x3_gemm_simd" + suffix, reps, macs,
          [&] { g_sink += conv.Forward(input)[0]; });
    bench("conv3x3_gemm_simd_fused_relu" + suffix, reps, macs,
          [&] { g_sink += conv.ForwardFused(input, GemmEpilogue::kBiasRelu)[0]; });

    // Float-vs-int8 on the identical layer and input: the quantized path
    // includes per-forward activation range + quantization, so the GMAC/s
    // delta is the honest end-to-end win, not just the kernel speedup.
    conv.SetPrecision(Precision::kInt8);
    bench("conv3x3_gemm_int8_scalar" + suffix, reps, macs, [&] {
      SetGemmForceScalar(true);
      g_sink += conv.Forward(input)[0];
      SetGemmForceScalar(false);
    });
    bench("conv3x3_gemm_int8_simd" + suffix, reps, macs,
          [&] { g_sink += conv.Forward(input)[0]; });
    bench("conv3x3_gemm_int8_fused_relu" + suffix, reps, macs,
          [&] { g_sink += conv.ForwardFused(input, GemmEpilogue::kBiasRelu)[0]; });
    conv.SetPrecision(Precision::kFloat32);
  }

  {
    ScopedInferencePool pool;
    Rng rng(1);
    Conv2D conv(16, 16, 3, 1, 1, rng);
    Tensor input = RandomTensor(TensorShape{1, 64, 64, 16}, 2);
    bench("conv3x3_gemm_simd_threaded_64", 20, conv.ForwardMacs(input.shape()),
          [&] { g_sink += conv.Forward(input)[0]; });
  }

  {
    // SqueezeNet's dominant shape: 1x1 identity-patch conv.
    Rng rng(1);
    Conv2D conv(64, 16, 1, 1, 0, rng);
    Tensor input = RandomTensor(TensorShape{1, 32, 32, 64}, 2);
    const int64_t macs = conv.ForwardMacs(input.shape());
    bench("conv1x1_gemm_scalar_32", 40, macs, [&] {
      SetGemmForceScalar(true);
      g_sink += conv.Forward(input)[0];
      SetGemmForceScalar(false);
    });
    bench("conv1x1_gemm_simd_32", 40, macs, [&] { g_sink += conv.Forward(input)[0]; });
    conv.SetPrecision(Precision::kInt8);
    bench("conv1x1_gemm_int8_32", 40, macs, [&] { g_sink += conv.Forward(input)[0]; });
    conv.SetPrecision(Precision::kFloat32);
  }

  for (int size : {8, 16, 32}) {
    Rng rng(1);
    FireModule fire(32, 8, 32, rng);
    Tensor input = RandomTensor(TensorShape{1, size, size, 32}, 2);
    const int64_t macs = fire.ForwardMacs(input.shape());
    const std::string suffix = "_" + std::to_string(size);
    bench("fire_fused" + suffix, 30, macs, [&] { g_sink += fire.Forward(input)[0]; });
    fire.SetPrecision(Precision::kInt8);
    bench("fire_fused_int8" + suffix, 30, macs, [&] { g_sink += fire.Forward(input)[0]; });
    fire.SetPrecision(Precision::kFloat32);
    if (size == 32) {
      fire.set_use_fused(false);
      bench("fire_unfused" + suffix, 30, macs, [&] { g_sink += fire.Forward(input)[0]; });
      fire.set_use_fused(true);
    }
  }

  // Narrow-squeeze fire modules (8/16ch — the shapes the ROADMAP flagged as
  // underutilizing the 32-wide AVX-512 panel), float vs int8, pinned to
  // each panel width this build implements on identical layers and inputs.
  // The panel<native> rows are the A/B baseline; the planner's heuristic
  // picks the 16-wide tile for every conv in these modules, and the
  // panel16-vs-panel32 int8 ratio is the acceptance number.
  {
    struct NarrowFire {
      int in;
      int squeeze;
      int expand;
      const char* tag;
    };
    const NarrowFire shapes[] = {{32, 8, 16, "s8e16"}, {64, 16, 16, "s16e16"}};
    std::vector<int> widths{GemmNativePanelWidth()};
    if (kGemmTileNMin != widths[0]) {
      widths.push_back(kGemmTileNMin);  // narrow == native on 16-wide tiers
    }
    for (const NarrowFire& cfg : shapes) {
      for (const int width : widths) {
        SetPlannerPanelOverride(width);
        Rng rng(1);
        FireModule fire(cfg.in, cfg.squeeze, cfg.expand, rng);
        // Deployment configuration: eval mode, like the classifier runs it
        // (training-mode input copies and mask sweeps would bury the kernel
        // delta under width-independent bookkeeping).
        fire.SetTrainingMode(false);
        const TensorShape shape{1, 32, 32, cfg.in};
        fire.PlanKernels(shape);
        SetPlannerPanelOverride(0);
        Tensor input = RandomTensor(shape, 2);
        const int64_t macs = fire.ForwardMacs(shape);
        const std::string name =
            std::string("fire_") + cfg.tag + "_panel" + std::to_string(width);
        bench(name + "_float_32", 30, macs, [&] { g_sink += fire.Forward(input)[0]; });
        fire.SetPrecision(Precision::kInt8);
        bench(name + "_int8_32", 30, macs, [&] { g_sink += fire.Forward(input)[0]; });
        fire.SetPrecision(Precision::kFloat32);
      }
    }
  }

  // Layout experiment (ROADMAP): the identical 3x3 conv pinned to each
  // activation layout, float and int8. kh-kw-c has won on every host
  // measured — its per-tap contiguous gather beats the channel-strided
  // c-outer one — which is why the planner's default stays put; these rows
  // keep the experiment honest on new hosts.
  for (const bool c_outer : {false, true}) {
    Rng rng(1);
    Conv2D conv(16, 32, 3, 1, 1, rng);
    KernelPlan plan = conv.plan();
    plan.layout = c_outer ? ActivationLayout::kCOuter : ActivationLayout::kKhKwC;
    conv.SetKernelPlan(plan);
    Tensor input = RandomTensor(TensorShape{1, 32, 32, 16}, 2);
    const int64_t macs = conv.ForwardMacs(input.shape());
    const std::string name =
        std::string("conv3x3_layout_") + (c_outer ? "couter" : "khkwc");
    bench(name + "_simd_32", 40, macs, [&] { g_sink += conv.Forward(input)[0]; });
    conv.SetPrecision(Precision::kInt8);
    bench(name + "_int8_32", 40, macs, [&] { g_sink += conv.Forward(input)[0]; });
    conv.SetPrecision(Precision::kFloat32);
  }

  // Gather experiment (ROADMAP item 1): the identical 3x3 conv pinned to
  // the materialized im2col panel vs the implicit in-place stream, float
  // and int8, across the deployment channel counts. Interior columns
  // dominate at 32x32, so these rows measure exactly what the planner's
  // implicit default buys; CI asserts implicit >= materialized on the
  // int8 rows (tools/check_bench.py).
  for (const int ch : {16, 32, 64}) {
    for (const bool implicit : {false, true}) {
      Rng rng(1);
      Conv2D conv(ch, ch, 3, 1, 1, rng);
      conv.SetTrainingMode(false);
      KernelPlan plan = conv.plan();
      plan.gather = implicit ? GatherPolicy::kImplicit : GatherPolicy::kMaterialize;
      conv.SetKernelPlan(plan);
      Tensor input = RandomTensor(TensorShape{1, 32, 32, ch}, 2);
      const int64_t macs = conv.ForwardMacs(input.shape());
      const std::string name = std::string("conv3x3_gather_") +
                               (implicit ? "implicit" : "materialized") + "_c" +
                               std::to_string(ch);
      bench(name + "_simd_32", 40, macs, [&] { g_sink += conv.Forward(input)[0]; });
      conv.SetPrecision(Precision::kInt8);
      bench(name + "_int8_32", 40, macs, [&] { g_sink += conv.Forward(input)[0]; });
      conv.SetPrecision(Precision::kFloat32);
    }
  }

  // The same A/B through a narrow-squeeze fire module: the 3x3 expand
  // branch rides the gather policy, the 1x1s are unaffected — so this pair
  // shows the module-level (not kernel-level) win at the shapes the
  // classifier actually runs.
  for (const bool implicit : {false, true}) {
    SetPlannerGatherPolicy(implicit ? GatherPolicyMode::kForceImplicit
                                    : GatherPolicyMode::kForceMaterialize);
    Rng rng(1);
    FireModule fire(32, 8, 32, rng);
    fire.SetTrainingMode(false);
    const TensorShape shape{1, 32, 32, 32};
    fire.PlanKernels(shape);
    SetPlannerGatherPolicy(GatherPolicyMode::kAuto);
    Tensor input = RandomTensor(shape, 2);
    const int64_t macs = fire.ForwardMacs(shape);
    const std::string name =
        std::string("fire_gather_") + (implicit ? "implicit" : "materialized");
    bench(name + "_float_32", 30, macs, [&] { g_sink += fire.Forward(input)[0]; });
    fire.SetPrecision(Precision::kInt8);
    bench(name + "_int8_32", 30, macs, [&] { g_sink += fire.Forward(input)[0]; });
    fire.SetPrecision(Precision::kFloat32);
  }

  // The planner's per-layer decisions for the experiment deployment profile
  // (int8 eval — the browser configuration) ride the same JSON so the
  // layout/panel experiment is measured, not guessed: median_ms carries the
  // chosen panel width, min_ms is 1 when the layer chose c-outer.
  if (options.filter.empty()) {
    PercivalNetConfig config = ExperimentProfile();
    Network net = BuildPercivalNet(config);
    net.SetTrainingMode(false);
    net.SetPrecision(Precision::kInt8);
    net.PlanForward(config.InputShape());
    std::printf("%s\n", net.KernelPlanSummary().c_str());
    for (const KernelPlanRow& row : net.CollectKernelPlanRows()) {
      BenchTiming t;
      t.reps = 1;
      t.name = "plan_" + row.layer + "_panel_width";
      t.median_ms = row.panel_width;
      t.min_ms = row.c_outer ? 1 : 0;
      report.Record(t);
      t.name = "plan_" + row.layer + "_implicit";
      t.median_ms = row.implicit ? 1 : 0;
      t.min_ms = t.median_ms;
      report.Record(t);
    }
  }

  {
    PercivalNetConfig config = ExperimentProfile();
    Network net = BuildPercivalNet(config);
    Tensor input = RandomTensor(config.InputShape(), 3);
    const int64_t macs = net.ForwardMacs(input.shape());
    bench("percival_forward_experiment", 20, macs, [&] { g_sink += net.Forward(input)[0]; });
    // Deployment configuration ladder: eval mode drops the backward-state
    // bookkeeping, int8 swaps the GEMM engine under it.
    net.SetTrainingMode(false);
    bench("percival_forward_experiment_eval", 20, macs,
          [&] { g_sink += net.Forward(input)[0]; });
    net.SetPrecision(Precision::kInt8);
    bench("percival_forward_experiment_int8", 20, macs,
          [&] { g_sink += net.Forward(input)[0]; });
    // Whole-profile gather A/B: every multi-tap conv re-planned to each
    // gather, same int8 eval network. The _int8 row above is the planner's
    // own (implicit) choice; _int8_materialized is the pre-implicit
    // baseline CI compares it against.
    SetPlannerGatherPolicy(GatherPolicyMode::kForceMaterialize);
    net.PlanForward(input.shape());
    bench("percival_forward_experiment_int8_materialized", 20, macs,
          [&] { g_sink += net.Forward(input)[0]; });
    SetPlannerGatherPolicy(GatherPolicyMode::kForceImplicit);
    net.PlanForward(input.shape());
    bench("percival_forward_experiment_int8_implicit", 20, macs,
          [&] { g_sink += net.Forward(input)[0]; });
    SetPlannerGatherPolicy(GatherPolicyMode::kAuto);
    net.PlanForward(input.shape());
    net.SetPrecision(Precision::kFloat32);
    net.SetTrainingMode(true);
    ScopedInferencePool pool;
    bench("percival_forward_experiment_threaded", 20, macs,
          [&] { g_sink += net.Forward(input)[0]; });
  }

  {
    // Zero-float dataflow A/B: the same calibrated int8 eval network and
    // pre-quantized input codes, with the requantize-in-epilogue plan off
    // (float-staged activations + separate QuantizeActivations sweeps)
    // versus on (u8 codes flow conv-to-conv, no float activation tensor).
    // The logits are bit-identical; only the dataflow differs.
    PercivalNetConfig config = ExperimentProfile();
    Network net = BuildPercivalNet(config);
    net.SetTrainingMode(false);
    net.SetCalibrationCapture(true);
    net.Forward(RandomTensor(config.InputShape(), 5));
    net.SetCalibrationCapture(false);
    net.SetPrecision(Precision::kInt8);
    const int64_t macs = net.ForwardMacs(config.InputShape());

    Tensor input = RandomTensor(config.InputShape(), 3);
    float lo = 0.0f;
    float hi = 1.0f;
    net.layer(0).InputCalibration(&lo, &hi);
    const ActivationQuant quant = ComputeActivationQuant(lo, hi);
    std::vector<uint8_t> codes(static_cast<size_t>(input.size()));
    QuantizeActivations(input.data(), input.size(), quant, codes.data());
    const QuantizedTensorView view{codes.data(), input.shape(), quant.scale,
                                   quant.zero_point};

    SetDataflowRequantEnabled(false);
    bench("percival_forward_experiment_int8_staged", 20, macs,
          [&] { g_sink += net.ForwardQuantized(view)[0]; });
    SetDataflowRequantEnabled(true);
    bench("percival_forward_experiment_int8_zerofloat", 20, macs,
          [&] { g_sink += net.ForwardQuantized(view)[0]; });
  }

  {
    PercivalNetConfig config = PaperProfile();
    Network net = BuildPercivalNet(config);
    Tensor input = RandomTensor(config.InputShape(), 3);
    const int64_t macs = net.ForwardMacs(input.shape());
    bench("percival_forward_paper", 3, macs, [&] { g_sink += net.Forward(input)[0]; });
  }

  {
    // Batched classification: one stacked forward for 8 creatives vs 8
    // separate Classify() calls over the same bitmaps, both under the pool.
    ScopedInferencePool pool;
    PercivalNetConfig config = ExperimentProfile();
    AdClassifier classifier(BuildPercivalNet(config), config);
    Rng rng(11);
    std::vector<Bitmap> ads;
    for (int i = 0; i < 8; ++i) {
      AdImageOptions ad_options;
      ads.push_back(GenerateAdImage(rng, ad_options));
    }
    std::vector<const Bitmap*> batch;
    for (const Bitmap& ad : ads) {
      batch.push_back(&ad);
    }
    bench("classify_single_x8", 10, 0, [&] {
      for (const Bitmap& ad : ads) {
        g_sink += classifier.Classify(ad).ad_probability;
      }
    });
    bench("classify_batch_8", 10, 0,
          [&] { g_sink += classifier.ClassifyBatch(batch)[0].ad_probability; });

    // Int8 deployment pair: u8-direct preprocessing (resize straight to
    // codes, no float staging tensor) vs the float-then-quantize pipeline
    // on the same classifier and creatives.
    classifier.SetPrecision(Precision::kInt8);
    bench("classify_batch_8_int8_u8direct", 10, 0,
          [&] { g_sink += classifier.ClassifyBatch(batch)[0].ad_probability; });
    classifier.set_use_u8_direct(false);
    bench("classify_batch_8_int8_staged", 10, 0,
          [&] { g_sink += classifier.ClassifyBatch(batch)[0].ad_probability; });
    classifier.set_use_u8_direct(true);
    classifier.SetPrecision(Precision::kFloat32);
  }

  {
    Rng rng(4);
    AdImageOptions ad_options;
    Bitmap ad = GenerateAdImage(rng, ad_options);
    std::vector<uint8_t> bytes = EncodePif(ad);
    bench("decode_pif", 30, 0, [&] { g_sink += DecodePif(bytes).value_or(Bitmap()).width(); });
    bench("bitmap_to_tensor", 30, 0, [&] { g_sink += BitmapToTensor(ad, 64, 3)[0]; });
    // The fused resize->quantize preprocessing the int8 classify path uses.
    std::vector<uint8_t> codes(static_cast<size_t>(64) * 64 * 3);
    bench("bitmap_to_tensor_u8", 30, 0, [&] {
      BitmapToTensorU8Into(ad, 64, 3, 1.0f / 255.0f, 0, codes.data());
      g_sink += static_cast<float>(codes[0]);
    });
    // The perceptual hash behind dataset dedup and the serving engine's L2
    // near-duplicate probe (one AverageHash per L1 miss when enabled); it
    // reuses a thread-local 8x8 scratch instead of allocating per call.
    bench("phash_average_hash", 50, 0,
          [&] { g_sink += static_cast<float>(AverageHash(ad) & 0xff); });
  }

  {
    FilterEngine engine;
    engine.AddList(BuildSyntheticEasyList(BuildAdNetworks(AdEcosystemConfig{})));
    RequestContext request;
    request.url = Url::Parse("https://cdn.adnet3.example/banner3/1-2-3.pif");
    request.page_host = "news-site-1.example";
    request.type = ResourceType::kImage;
    bench("filter_match", 50, 0,
          [&] { g_sink += engine.ShouldBlockRequest(request).blocked ? 1.0f : 0.0f; });
  }

  const std::string path = report.WriteJson();
  if (!path.empty()) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::printf("\nWARNING: failed to write BENCH_micro_kernels.json\n");
  }

  // Serialized model sizes for the experiment profile: the v1 float
  // checkpoint vs the v2 int8 deployment artifact. Not timings — the
  // median_ms/min_ms fields carry bytes (and the ratio row v1/v2) so the
  // artifact shrink rides the same machine-readable BENCH_*.json channel
  // CI already uploads. Honors --filter like every other entry (the rows
  // share the "pcvw" prefix).
  if (options.filter.empty() ||
      std::string("pcvw_v1_experiment_bytes pcvw_v2_experiment_bytes pcvw_v1_over_v2_ratio")
              .find(options.filter) != std::string::npos) {
    BenchReport sizes("model_sizes");
    PercivalNetConfig config = ExperimentProfile();
    Network net = BuildPercivalNet(config);
    const double v1_bytes = static_cast<double>(SerializeWeights(net).size());
    const double v2_bytes = static_cast<double>(SerializeWeightsInt8(net).size());
    BenchTiming row;
    row.reps = 1;
    row.name = "pcvw_v1_experiment_bytes";
    row.median_ms = v1_bytes;
    row.min_ms = v1_bytes;
    sizes.Record(row);
    row.name = "pcvw_v2_experiment_bytes";
    row.median_ms = v2_bytes;
    row.min_ms = v2_bytes;
    sizes.Record(row);
    row.name = "pcvw_v1_over_v2_ratio";
    row.median_ms = v1_bytes / v2_bytes;
    row.min_ms = row.median_ms;
    sizes.Record(row);
    std::printf("model sizes (experiment profile): v1 %.0f bytes, v2 %.0f bytes (%.2fx)\n",
                v1_bytes, v2_bytes, v1_bytes / v2_bytes);
    const std::string sizes_path = sizes.WriteJson();
    if (!sizes_path.empty()) {
      std::printf("wrote %s\n", sizes_path.c_str());
    }
  }
}

}  // namespace
}  // namespace percival

int main(int argc, char** argv) {
  percival::Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--filter=", 9) == 0) {
      options.filter = arg + 9;
    } else if (std::strncmp(arg, "--reps-scale=", 13) == 0) {
      char* end = nullptr;
      options.reps_scale = std::strtod(arg + 13, &end);
      if (end == arg + 13 || *end != '\0' || options.reps_scale <= 0.0) {
        std::printf("invalid --reps-scale value: %s\n", arg + 13);
        return 1;
      }
    } else {
      std::printf("usage: micro_kernels [--filter=substring] [--reps-scale=X]\n");
      return 1;
    }
  }
  percival::LogSimdPathOnce();
  percival::RunSuite(options);
  return 0;
}
