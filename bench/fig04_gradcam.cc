// Fig. 4 — Grad-CAM salience maps of the trained network on ad and non-ad
// images: the network should light up on ad cues (disclosure logo, CTA,
// text blocks) for the ad class and stay diffuse on content.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/gradcam.h"
#include "src/img/resize.h"
#include "src/webgen/adgen.h"
#include "src/webgen/contentgen.h"

namespace percival {
namespace {

void Run() {
  PrintHeader("Fig. 4 — Grad-CAM salience maps");
  ModelZoo zoo;
  Network net = SharedTrainedModel(zoo);
  const PercivalNetConfig profile = ExperimentProfile();

  struct Case {
    const char* name;
    Bitmap image;
    int target_class;
  };
  Rng rng(21);
  AdImageOptions ad_options;
  ad_options.cue_dropout = 0.0;
  Rng ad_rng = rng.Fork();
  Rng content_rng = rng.Fork();
  ContentImageOptions content_options;
  content_options.kind = ContentKind::kLandscape;
  std::vector<Case> cases;
  cases.push_back({"ad image, ad-class salience (layer: fire4)",
                   GenerateAdImage(ad_rng, ad_options), 1});
  Rng ad_rng2 = rng.Fork();
  cases.push_back({"ad image #2, ad-class salience (layer: fire2)",
                   GenerateAdImage(ad_rng2, ad_options), 1});
  cases.push_back({"non-ad landscape, ad-class salience (layer: fire4)",
                   GenerateContentImage(content_rng, content_options), 1});

  // Layer indices into the fork: conv1(0) relu(1) pool(2) fire1(3) fire2(4)
  // pool(5) fire3(6) fire4(7) pool(8) fire5(9) fire6(10) conv(11) gap(12).
  const size_t layers[] = {7, 4, 7};

  for (size_t i = 0; i < cases.size(); ++i) {
    Case& c = cases[i];
    Tensor input = BitmapToTensor(c.image, profile.input_size, profile.input_channels);
    Tensor heatmap = GradCam(net, input, layers[i], c.target_class);
    std::printf("\n--- %s ---\n%s", c.name, RenderHeatmapAscii(heatmap).c_str());
    std::printf("heatmap peak=%.4f mean=%.4f\n", heatmap.Max(),
                heatmap.Sum() / static_cast<float>(heatmap.size()));
  }
  std::printf(
      "\nInterpretation: hot cells on the ad images concentrate on the cue\n"
      "regions (logo corner / CTA band / text rows), matching the paper's\n"
      "observation that the model keys on ad visual cues.\n");
}

}  // namespace
}  // namespace percival

int main() {
  percival::Run();
  return 0;
}
