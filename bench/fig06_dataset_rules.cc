// Fig. 6 — crawled element datasets and the fraction EasyList rules match.
// The paper samples 5,000 elements per dataset from top news sites and
// reports 20.2% CSS-rule matches and 31.1% network-rule matches.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/renderer/html_parser.h"

namespace percival {
namespace {

void Run() {
  PrintHeader("Fig. 6 — dataset size and percentage of ads identified by EasyList");
  BenchWorld world = MakeBenchWorld(0.75, 7);

  int elements_seen = 0;
  int css_matched = 0;
  int requests_seen = 0;
  int network_matched = 0;
  const int kSites = 40;
  const int kPages = 4;
  for (int site = 0; site < kSites; ++site) {
    for (int page_index = 0; page_index < kPages; ++page_index) {
      const WebPage page = world.generator->GeneratePage(site, page_index);
      const std::string page_host = Url::Parse(page.url).host;

      // CSS (cosmetic) rules over DOM elements.
      DomTree dom = ParseHtml(page.html);
      // The paper samples elements that are *potential* ad containers
      // (IFRAMEs, DIVs, etc.), not every node in the tree.
      dom->Visit([&](const DomNode& node) {
        if (node.tag() != "div" && node.tag() != "iframe") {
          return;
        }
        ++elements_seen;
        if (world.easylist.ShouldHideElement(page_host, node.Descriptor()).blocked) {
          ++css_matched;
        }
      });

      // Network rules over resource requests.
      for (const auto& [url, resource] : page.resources) {
        ++requests_seen;
        RequestContext request;
        request.url = Url::Parse(url);
        request.page_host = page_host;
        request.type = resource.type;
        if (world.easylist.ShouldBlockRequest(request).blocked) {
          ++network_matched;
        }
      }
    }
  }

  TextTable table({"Dataset", "Size", "Matched rules"});
  table.AddRow({"CSS rules (DOM elements)", std::to_string(elements_seen),
                TextTable::Percent(static_cast<double>(css_matched) / elements_seen)});
  table.AddRow({"Network (resource requests)", std::to_string(requests_seen),
                TextTable::Percent(static_cast<double>(network_matched) / requests_seen)});
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nPaper reports 20.2%% (CSS) and 31.1%% (network) on 5,000-element\n"
      "samples; the reproduction preserves the shape: a minority of elements\n"
      "match, and network rules match more often than CSS rules.\n");
}

}  // namespace
}  // namespace percival

int main() {
  percival::Run();
  return 0;
}
