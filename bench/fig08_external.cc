// Fig. 8 — generalization to an externally collected dataset (the paper's
// Hussain et al. stand-in): train on our crawl distribution, evaluate on a
// shifted distribution with label noise. Paper row: 5,024 imgs, acc 0.877,
// model 1.9 MB, 11 ms avg, P 0.815, R 0.976, F1 0.888.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"

namespace percival {
namespace {

void Run() {
  PrintHeader("Fig. 8 — accuracy against an external (shifted) dataset");
  ModelZoo zoo;
  AdClassifier classifier = MakeSharedClassifier(zoo);

  // External set: different palette/typography mix, label noise from the
  // Mechanical-Turk-style annotation process.
  SampledDatasetOptions options;
  options.per_class = 400;
  options.shifted_distribution = true;
  options.cue_dropout = 0.25;
  options.product_photo_probability = 0.15;
  options.seed = 999;
  Dataset external = SampleDataset(options);
  Rng noise(1001);
  int flipped = 0;
  for (LabeledImage& example : external.mutable_examples()) {
    if (noise.NextBool(0.03)) {  // ~3% annotation noise
      example.is_ad = !example.is_ad;
      ++flipped;
    }
  }

  ConfusionMatrix matrix;
  double total_latency = 0.0;
  for (int i = 0; i < external.size(); ++i) {
    const LabeledImage& example = external.example(i);
    ClassifyResult result = classifier.Classify(example.image);
    matrix.Record(example.is_ad, result.is_ad);
    total_latency += result.latency_ms;
  }

  Network paper_net = BuildPercivalNet(PaperProfile());
  const double model_mb = static_cast<double>(paper_net.ModelBytes()) / (1024.0 * 1024.0);

  TextTable table({"Size (images)", "Acc.", "Model size", "Avg. time", "Precision", "Recall",
                   "F1"});
  table.AddRow({std::to_string(external.size()), TextTable::Fixed(matrix.Accuracy(), 3),
                TextTable::Fixed(model_mb, 1) + " MB",
                TextTable::Fixed(total_latency / external.size(), 2) + " ms",
                TextTable::Fixed(matrix.Precision(), 3), TextTable::Fixed(matrix.Recall(), 3),
                TextTable::Fixed(matrix.F1(), 3)});
  std::printf("%s", table.Render().c_str());
  std::printf("(label noise injected on %d examples; avg. time measured at the\n", flipped);
  std::printf(" 64px experiment profile — the 224px paper profile is sized above)\n");
  std::printf("paper: 5,024 / 0.877 / 1.9 MB / 11 ms / 0.815 / 0.976 / 0.888\n");
  std::printf(
      "\nShape check: accuracy drops below the in-distribution Fig. 7 number\n"
      "but stays well above chance — cross-dataset generalization holds.\n");
}

}  // namespace
}  // namespace percival

int main() {
  percival::Run();
  return 0;
}
