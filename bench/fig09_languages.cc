// Fig. 9 — language-agnostic detection: evaluate the English-trained model
// on per-language crawls. Paper: Arabic 81.3%, Spanish 95.1%, French 93.9%,
// Korean 76.9%, Chinese 80.4% — Romance languages transfer best, CJK worst.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"

namespace percival {
namespace {

void Run() {
  PrintHeader("Fig. 9 — accuracy on ads in non-English languages");
  ModelZoo zoo;
  AdClassifier classifier = MakeSharedClassifier(zoo);

  TextTable table(
      {"Language", "Images crawled", "Ads identified", "Accuracy", "Precision", "Recall"});
  std::vector<std::pair<Language, double>> measured;
  for (Language language : Fig9Languages()) {
    SampledDatasetOptions options;
    options.language = language;
    options.per_class = 150;
    options.cue_dropout = 0.15;
    options.seed = 400 + static_cast<uint64_t>(language);
    Dataset dataset = SampleDataset(options);

    ConfusionMatrix matrix;
    for (int i = 0; i < dataset.size(); ++i) {
      const LabeledImage& example = dataset.example(i);
      matrix.Record(example.is_ad, classifier.Classify(example.image).is_ad);
    }
    table.AddRow({LanguageName(language), std::to_string(dataset.size()),
                  std::to_string(dataset.ad_count()), TextTable::Percent(matrix.Accuracy(), 1),
                  TextTable::Fixed(matrix.Precision(), 3),
                  TextTable::Fixed(matrix.Recall(), 3)});
    measured.emplace_back(language, matrix.Accuracy());
  }
  std::printf("%s", table.Render().c_str());
  std::printf("paper: Arabic 81.3%% / Spanish 95.1%% / French 93.9%% / Korean 76.9%% / ");
  std::printf("Chinese 80.4%%\n");
  std::printf(
      "\nShape check: Spanish/French (Latin-adjacent scripts, western ad\n"
      "conventions) transfer best; Korean/Chinese (text-reliant ads, square\n"
      "scripts) transfer worst — the paper's ordering.\n");
}

}  // namespace
}  // namespace percival

int main() {
  percival::Run();
  return 0;
}
