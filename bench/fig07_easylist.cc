// Fig. 7 — can PERCIVAL replicate EasyList? Train on crawled data, then
// test against EasyList-derived labels over fresh news pages. The paper
// reports 6,930 images, 3,466 ads, accuracy 96.76%, precision 97.76%,
// recall 95.72%.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/img/codec.h"
#include "src/train/trainer.h"

namespace percival {
namespace {

void Run() {
  PrintHeader("Fig. 7 — replicating EasyList labels");
  ModelZoo zoo;
  AdClassifier classifier = MakeSharedClassifier(zoo);

  // Held-out pages: site/page indices disjoint from the training crawl
  // (training used sites 0..23, pages 0..2).
  BenchWorld world = MakeBenchWorld(1.0, 7);
  ConfusionMatrix matrix;
  int images = 0;
  for (int site = 30; site < 60; ++site) {
    for (int page_index = 0; page_index < 3; ++page_index) {
      const WebPage page = world.generator->GeneratePage(site, page_index);
      const std::string page_host = Url::Parse(page.url).host;
      for (const auto& [url, resource] : page.resources) {
        if (resource.type != ResourceType::kImage) {
          continue;
        }
        std::optional<Bitmap> decoded = DecodeFirstFrame(resource.bytes);
        if (!decoded) {
          continue;
        }
        RequestContext request;
        request.url = Url::Parse(url);
        request.page_host = page_host;
        request.type = ResourceType::kImage;
        const bool easylist_says_ad = world.easylist.ShouldBlockRequest(request).blocked;
        const bool percival_says_ad = classifier.Classify(*decoded).is_ad;
        matrix.Record(easylist_says_ad, percival_says_ad);
        ++images;
      }
    }
  }

  TextTable table({"Images", "Ads identified", "Accuracy", "Precision", "Recall"});
  table.AddRow({std::to_string(images), std::to_string(matrix.tp + matrix.fn),
                TextTable::Percent(matrix.Accuracy()), TextTable::Percent(matrix.Precision()),
                TextTable::Percent(matrix.Recall())});
  std::printf("%s", table.Render().c_str());
  std::printf("\nconfusion: %s\n", matrix.Summary().c_str());
  std::printf("paper: 6,930 images / 3,466 ads / 96.76%% / 97.76%% / 95.72%%\n");
}

}  // namespace
}  // namespace percival

int main() {
  percival::Run();
  return 0;
}
