// Fig. 15 — median render-time overhead of PERCIVAL. Paper: Chromium
// +4.55% (178.23 ms), Brave +19.07% (281.85 ms) — the absolute overhead is
// similar, but Brave's baseline is smaller (block lists remove work), so
// the relative overhead is larger.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/nn/gemm.h"
#include "src/renderer/renderer.h"

namespace percival {
namespace {

// Renders `pages` pages and reports the median + min page render time.
BenchTiming RenderTimes(const std::string& name, const BenchWorld& world,
                        AdClassifier* classifier, const FilterEngine* filter, int pages) {
  std::vector<double> samples;
  for (int i = 0; i < pages; ++i) {
    const WebPage page = world.generator->GeneratePage(i % 40, i / 40);
    RenderOptions options;
    options.raster_threads = 4;
    options.filter = filter;
    options.interceptor = classifier;
    samples.push_back(RenderPage(page, options).metrics.RenderTime());
  }
  BenchTiming timing;
  timing.name = name;
  timing.reps = pages;
  timing.min_ms = *std::min_element(samples.begin(), samples.end());
  timing.median_ms = EmpiricalCdf(std::move(samples)).Quantile(0.5);
  return timing;
}

void Run() {
  PrintHeader("Fig. 15 — PERCIVAL render overhead (median, synchronous mode)");
  ModelZoo zoo;
  AdClassifier classifier = MakeSharedClassifier(zoo);
  // Same trained weights, int8 inference engine: the float-vs-int8 pair
  // shares one JSON so the quantization win is tracked across PRs.
  AdClassifier classifier_int8 = MakeSharedClassifier(zoo);
  classifier_int8.SetPrecision(Precision::kInt8);
  BenchWorld world = MakeBenchWorld(0.75, 7);

  // Deployment configuration: the batched GEMM engine fans conv rows out
  // over this pool whenever a raster worker blocks on a classification.
  ScopedInferencePool inference_pool;

  const int kPages = 120;
  BenchReport report("fig15_overhead");
  report.Record(RenderTimes("render_chromium", world, nullptr, nullptr, kPages));
  report.Record(
      RenderTimes("render_chromium_percival", world, &classifier, nullptr, kPages));
  report.Record(RenderTimes("render_brave", world, nullptr, &world.easylist, kPages));
  report.Record(
      RenderTimes("render_brave_percival", world, &classifier, &world.easylist, kPages));
  report.Record(
      RenderTimes("render_chromium_percival_int8", world, &classifier_int8, nullptr, kPages));
  report.Record(RenderTimes("render_brave_percival_int8", world, &classifier_int8,
                            &world.easylist, kPages));
  const double chromium = report.timings()[0].median_ms;
  const double chromium_percival = report.timings()[1].median_ms;
  const double brave = report.timings()[2].median_ms;
  const double brave_percival = report.timings()[3].median_ms;
  const double chromium_int8 = report.timings()[4].median_ms;
  const double brave_int8 = report.timings()[5].median_ms;

  // Overhead rows: median_ms is the median-to-median difference, min_ms the
  // floor-to-floor (min-to-min) difference.
  BenchTiming overhead;
  overhead.name = "overhead_chromium_ms";
  overhead.reps = kPages;
  overhead.median_ms = chromium_percival - chromium;
  overhead.min_ms = report.timings()[1].min_ms - report.timings()[0].min_ms;
  report.Record(overhead);
  overhead.name = "overhead_brave_ms";
  overhead.median_ms = brave_percival - brave;
  overhead.min_ms = report.timings()[3].min_ms - report.timings()[2].min_ms;
  report.Record(overhead);
  overhead.name = "overhead_chromium_int8_ms";
  overhead.median_ms = chromium_int8 - chromium;
  overhead.min_ms = report.timings()[4].min_ms - report.timings()[0].min_ms;
  report.Record(overhead);
  overhead.name = "overhead_brave_int8_ms";
  overhead.median_ms = brave_int8 - brave;
  overhead.min_ms = report.timings()[5].min_ms - report.timings()[2].min_ms;
  report.Record(overhead);

  TextTable table({"Baseline", "Treatment", "Overhead (%)", "Overhead (ms)"});
  table.AddRow({"Chromium", "Chromium + PERCIVAL",
                TextTable::Fixed((chromium_percival - chromium) / chromium * 100.0, 2),
                TextTable::Fixed(chromium_percival - chromium, 2)});
  table.AddRow({"Brave", "Brave + PERCIVAL",
                TextTable::Fixed((brave_percival - brave) / brave * 100.0, 2),
                TextTable::Fixed(brave_percival - brave, 2)});
  table.AddRow({"Chromium", "Chromium + PERCIVAL int8",
                TextTable::Fixed((chromium_int8 - chromium) / chromium * 100.0, 2),
                TextTable::Fixed(chromium_int8 - chromium, 2)});
  table.AddRow({"Brave", "Brave + PERCIVAL int8",
                TextTable::Fixed((brave_int8 - brave) / brave * 100.0, 2),
                TextTable::Fixed(brave_int8 - brave, 2)});
  std::printf("%s", table.Render().c_str());
  std::printf("medians: chromium=%.1f ms, +percival=%.1f ms, brave=%.1f ms, +percival=%.1f ms\n",
              chromium, chromium_percival, brave, brave_percival);
  std::printf("int8 medians: chromium+percival=%.1f ms, brave+percival=%.1f ms\n",
              chromium_int8, brave_int8);
  std::printf("paper: Chromium +4.55%% (178.23 ms), Brave +19.07%% (281.85 ms)\n");
  std::printf(
      "\nShape check: overhead is single-digit-to-moderate percent on the\n"
      "Chromium baseline and a larger *percentage* on Brave (smaller base),\n"
      "reproducing the paper's relationship.\n");
  const std::string json = report.WriteJson();
  if (!json.empty()) {
    std::printf("wrote %s\n", json.c_str());
  }
}

}  // namespace
}  // namespace percival

int main() {
  percival::Run();
  return 0;
}
