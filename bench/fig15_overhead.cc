// Fig. 15 — median render-time overhead of PERCIVAL. Paper: Chromium
// +4.55% (178.23 ms), Brave +19.07% (281.85 ms) — the absolute overhead is
// similar, but Brave's baseline is smaller (block lists remove work), so
// the relative overhead is larger.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/base/stopwatch.h"
#include "src/eval/metrics.h"
#include "src/img/bitmap.h"
#include "src/nn/gemm.h"
#include "src/renderer/renderer.h"

namespace percival {
namespace {

// Core allocation for the bench. Raster workers and the inference pool used
// to be sized independently (raster pinned at 4, pool at
// hardware_concurrency), which oversubscribed small hosts — both pools
// fighting for the same cores inflates render time into the "overhead" —
// and understated overhead on big ones (4 raster threads leave most cores
// to inference, a split no browser deployment gets). Both sides now derive
// from hardware_concurrency(): raster takes half the cores by default
// (--raster-threads overrides), inference gets the rest, and the split is
// recorded in the BENCH JSON so cross-host numbers stay interpretable.
struct ThreadSplit {
  int hardware = 1;
  int raster = 1;
  int inference = 1;
};

ThreadSplit ComputeThreadSplit(int raster_override) {
  ThreadSplit split;
  split.hardware = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  split.raster = raster_override > 0 ? raster_override : std::max(1, split.hardware / 2);
  split.inference = std::max(1, split.hardware - split.raster);
  return split;
}

// Renders `pages` pages and reports the median + min page render time.
BenchTiming RenderTimes(const std::string& name, const BenchWorld& world,
                        AdClassifier* classifier, const FilterEngine* filter, int pages,
                        int raster_threads) {
  std::vector<double> samples;
  for (int i = 0; i < pages; ++i) {
    const WebPage page = world.generator->GeneratePage(i % 40, i / 40);
    RenderOptions options;
    options.raster_threads = raster_threads;
    options.filter = filter;
    options.interceptor = classifier;
    samples.push_back(RenderPage(page, options).metrics.RenderTime());
  }
  BenchTiming timing;
  timing.name = name;
  timing.reps = pages;
  timing.min_ms = *std::min_element(samples.begin(), samples.end());
  timing.median_ms = EmpiricalCdf(std::move(samples)).Quantile(0.5);
  return timing;
}

// Async-mode saturation rows: the figure's sync overhead numbers say what
// PERCIVAL costs per paint; these say what happens when creatives arrive
// faster than inference can absorb. A saturating stream of unique
// creatives runs against a deliberately unmeetable deadline (0.75x the
// measured per-image cost — the overload regime), so the recorded rows
// show the hardening working: a nonzero shed rate absorbing the excess,
// degrade->heal cycles (even transition count = currently healthy), and a
// paint-side p99 that stays in hashing territory, not inference territory.
void RecordSaturation(AdClassifier& classifier, BenchReport& report) {
  constexpr int kBatchSize = 8;
  std::vector<Bitmap> calib_bitmaps;
  std::vector<const Bitmap*> calib;
  for (int i = 0; i < kBatchSize; ++i) {
    Bitmap bitmap(64, 48);
    for (int y = 0; y < bitmap.height(); ++y) {
      for (int x = 0; x < bitmap.width(); ++x) {
        bitmap.SetPixel(x, y,
                        Color{static_cast<uint8_t>(i * 37 + x), static_cast<uint8_t>(i * 101 + y),
                              static_cast<uint8_t>(i), 255});
      }
    }
    calib_bitmaps.push_back(std::move(bitmap));
  }
  for (const Bitmap& b : calib_bitmaps) {
    calib.push_back(&b);
  }
  classifier.ClassifyBatch(calib);  // warmup
  const std::vector<ClassifyResult> timed = classifier.ClassifyBatch(calib);
  const double classify_ms = std::max(0.01, timed.empty() ? 0.01 : timed[0].latency_ms);

  AsyncAdClassifier async(classifier);
  ServingPolicy policy;
  policy.max_pending = 32;
  policy.drain_budget_ms = 4.0 * classify_ms;
  policy.classify_deadline_ms = 0.75 * classify_ms;  // saturated host: unmeetable
  policy.degrade_after_misses = 3;
  policy.recover_after_frames = 64;
  async.SetServingPolicy(policy);

  constexpr int kTicks = 60;
  constexpr int kUniquesPerTick = 32;
  std::vector<double> paint_samples;
  paint_samples.reserve(kTicks * kUniquesPerTick);
  int next_id = 0;
  for (int tick = 0; tick < kTicks; ++tick) {
    for (int i = 0; i < kUniquesPerTick; ++i) {
      const int id = next_id++;
      Bitmap creative(64, 48);
      for (int y = 0; y < creative.height(); ++y) {
        for (int x = 0; x < creative.width(); ++x) {
          creative.SetPixel(x, y,
                            Color{static_cast<uint8_t>((id * 37 + x) & 0xff),
                                  static_cast<uint8_t>((id * 101 + y) & 0xff),
                                  static_cast<uint8_t>(id & 0xff), 255});
        }
      }
      creative.SetPixel(0, 0,
                        Color{static_cast<uint8_t>(id & 0xff),
                              static_cast<uint8_t>((id >> 8) & 0xff),
                              static_cast<uint8_t>((id >> 16) & 0xff), 255});
      Stopwatch paint;
      async.OnDecodedFrame(creative.info(), creative, "https://ads.example/saturation");
      paint_samples.push_back(paint.ElapsedMs());
    }
    async.DrainPending();  // budget + batch size from the policy/defaults
  }
  const ClassifierStats stats = async.stats();
  const double offered = static_cast<double>(kTicks) * kUniquesPerTick;
  EmpiricalCdf paint_cdf(std::move(paint_samples));

  auto record = [&](const std::string& name, double value) {
    BenchTiming row;
    row.name = name;
    row.reps = kTicks;
    row.median_ms = value;
    row.min_ms = value;
    report.Record(row);
  };
  record("saturation_shed_rate_pct", 100.0 * static_cast<double>(stats.shed) / offered);
  record("saturation_degrade_transitions", static_cast<double>(stats.degrade_transitions));
  record("saturation_degraded_frames", static_cast<double>(stats.degraded_frames));
  record("saturation_paint_p99_ms", paint_cdf.Quantile(0.99));
  std::printf(
      "async saturation: shed %.1f%%, degrade transitions %lld, paint p99 %.3f ms\n",
      100.0 * static_cast<double>(stats.shed) / offered,
      static_cast<long long>(stats.degrade_transitions), paint_cdf.Quantile(0.99));
}

void Run(const ThreadSplit& split) {
  PrintHeader("Fig. 15 — PERCIVAL render overhead (median, synchronous mode)");
  std::printf("threads: %d hardware -> %d raster + %d inference\n", split.hardware,
              split.raster, split.inference);
  ModelZoo zoo;
  AdClassifier classifier = MakeSharedClassifier(zoo);
  // Same trained weights, int8 inference engine: the float-vs-int8 pair
  // shares one JSON so the quantization win is tracked across PRs.
  AdClassifier classifier_int8 = MakeSharedClassifier(zoo);
  classifier_int8.SetPrecision(Precision::kInt8);
  BenchWorld world = MakeBenchWorld(0.75, 7);

  // Deployment configuration: the batched GEMM engine fans conv rows out
  // over this pool whenever a raster worker blocks on a classification.
  // Sized to the cores the raster workers leave free (see ThreadSplit).
  ScopedInferencePool inference_pool(split.inference);

  const int kPages = 120;
  BenchReport report("fig15_overhead");
  // Config rows: the thread split the timings below were taken under
  // (median_ms/min_ms carry the count — these are settings, not timings).
  BenchTiming config_row;
  config_row.reps = 1;
  config_row.name = "raster_threads";
  config_row.median_ms = split.raster;
  config_row.min_ms = split.raster;
  report.Record(config_row);
  config_row.name = "inference_threads";
  config_row.median_ms = split.inference;
  config_row.min_ms = split.inference;
  report.Record(config_row);
  const BenchTiming t_chromium =
      RenderTimes("render_chromium", world, nullptr, nullptr, kPages, split.raster);
  const BenchTiming t_chromium_percival = RenderTimes("render_chromium_percival", world,
                                                      &classifier, nullptr, kPages, split.raster);
  const BenchTiming t_brave =
      RenderTimes("render_brave", world, nullptr, &world.easylist, kPages, split.raster);
  const BenchTiming t_brave_percival = RenderTimes(
      "render_brave_percival", world, &classifier, &world.easylist, kPages, split.raster);
  const BenchTiming t_chromium_int8 = RenderTimes("render_chromium_percival_int8", world,
                                                  &classifier_int8, nullptr, kPages, split.raster);
  const BenchTiming t_brave_int8 = RenderTimes("render_brave_percival_int8", world,
                                               &classifier_int8, &world.easylist, kPages,
                                               split.raster);
  report.Record(t_chromium);
  report.Record(t_chromium_percival);
  report.Record(t_brave);
  report.Record(t_brave_percival);
  report.Record(t_chromium_int8);
  report.Record(t_brave_int8);
  const double chromium = t_chromium.median_ms;
  const double chromium_percival = t_chromium_percival.median_ms;
  const double brave = t_brave.median_ms;
  const double brave_percival = t_brave_percival.median_ms;
  const double chromium_int8 = t_chromium_int8.median_ms;
  const double brave_int8 = t_brave_int8.median_ms;

  // Overhead rows: median_ms is the median-to-median difference, min_ms the
  // floor-to-floor (min-to-min) difference.
  BenchTiming overhead;
  overhead.name = "overhead_chromium_ms";
  overhead.reps = kPages;
  overhead.median_ms = chromium_percival - chromium;
  overhead.min_ms = t_chromium_percival.min_ms - t_chromium.min_ms;
  report.Record(overhead);
  overhead.name = "overhead_brave_ms";
  overhead.median_ms = brave_percival - brave;
  overhead.min_ms = t_brave_percival.min_ms - t_brave.min_ms;
  report.Record(overhead);
  overhead.name = "overhead_chromium_int8_ms";
  overhead.median_ms = chromium_int8 - chromium;
  overhead.min_ms = t_chromium_int8.min_ms - t_chromium.min_ms;
  report.Record(overhead);
  overhead.name = "overhead_brave_int8_ms";
  overhead.median_ms = brave_int8 - brave;
  overhead.min_ms = t_brave_int8.min_ms - t_brave.min_ms;
  report.Record(overhead);

  TextTable table({"Baseline", "Treatment", "Overhead (%)", "Overhead (ms)"});
  table.AddRow({"Chromium", "Chromium + PERCIVAL",
                TextTable::Fixed((chromium_percival - chromium) / chromium * 100.0, 2),
                TextTable::Fixed(chromium_percival - chromium, 2)});
  table.AddRow({"Brave", "Brave + PERCIVAL",
                TextTable::Fixed((brave_percival - brave) / brave * 100.0, 2),
                TextTable::Fixed(brave_percival - brave, 2)});
  table.AddRow({"Chromium", "Chromium + PERCIVAL int8",
                TextTable::Fixed((chromium_int8 - chromium) / chromium * 100.0, 2),
                TextTable::Fixed(chromium_int8 - chromium, 2)});
  table.AddRow({"Brave", "Brave + PERCIVAL int8",
                TextTable::Fixed((brave_int8 - brave) / brave * 100.0, 2),
                TextTable::Fixed(brave_int8 - brave, 2)});
  std::printf("%s", table.Render().c_str());
  std::printf("medians: chromium=%.1f ms, +percival=%.1f ms, brave=%.1f ms, +percival=%.1f ms\n",
              chromium, chromium_percival, brave, brave_percival);
  std::printf("int8 medians: chromium+percival=%.1f ms, brave+percival=%.1f ms\n",
              chromium_int8, brave_int8);
  std::printf("paper: Chromium +4.55%% (178.23 ms), Brave +19.07%% (281.85 ms)\n");
  RecordSaturation(classifier, report);
  std::printf(
      "\nShape check: overhead is single-digit-to-moderate percent on the\n"
      "Chromium baseline and a larger *percentage* on Brave (smaller base),\n"
      "reproducing the paper's relationship.\n");
  const std::string json = report.WriteJson();
  if (!json.empty()) {
    std::printf("wrote %s\n", json.c_str());
  }
}

// Fig. 15, threaded second half: overhead vs inference-pool size. Renders
// the Chromium baseline once, then the PERCIVAL treatment at every pool
// size from 1 to hardware_concurrency (dense to 4, then doubling), and
// derives a recommended pool size from the curve: the smallest pool within
// 5% of the best overhead — past that knee extra inference threads only
// steal raster cores. The curve and the recommendation land in
// BENCH_fig15_thread_sweep.json; ComputeThreadSplit's default (raster =
// half the cores, inference = the rest) is the policy this sweep validated
// on multi-core hosts, and --raster-threads remains the per-host override.
void RunThreadSweep(const ThreadSplit& split) {
  PrintHeader("Fig. 15 (second half) — overhead vs inference-pool size");
  std::printf("threads: %d hardware, raster fixed at %d\n", split.hardware, split.raster);
  ModelZoo zoo;
  AdClassifier classifier = MakeSharedClassifier(zoo);
  BenchWorld world = MakeBenchWorld(0.75, 7);
  const int kPages = 60;

  BenchReport report("fig15_thread_sweep");
  BenchTiming config_row;
  config_row.reps = 1;
  config_row.name = "raster_threads";
  config_row.median_ms = split.raster;
  config_row.min_ms = split.raster;
  report.Record(config_row);

  const BenchTiming base =
      RenderTimes("render_chromium_base", world, nullptr, nullptr, kPages, split.raster);
  report.Record(base);

  std::vector<int> pool_sizes;
  for (int n = 1; n <= split.hardware; n = n < 4 ? n + 1 : n * 2) {
    pool_sizes.push_back(n);
  }
  if (pool_sizes.back() != split.hardware) {
    pool_sizes.push_back(split.hardware);
  }

  double best_overhead = 0.0;
  bool have_best = false;
  std::vector<std::pair<int, double>> curve;
  for (const int n : pool_sizes) {
    ScopedInferencePool pool(n);
    const BenchTiming t = RenderTimes("render_chromium_percival_pool" + std::to_string(n),
                                      world, &classifier, nullptr, kPages, split.raster);
    report.Record(t);
    const double overhead = t.median_ms - base.median_ms;
    BenchTiming row;
    row.name = "sweep_overhead_pool" + std::to_string(n) + "_ms";
    row.reps = kPages;
    row.median_ms = overhead;
    row.min_ms = t.min_ms - base.min_ms;
    report.Record(row);
    curve.emplace_back(n, overhead);
    if (!have_best || overhead < best_overhead) {
      best_overhead = overhead;
      have_best = true;
    }
    std::printf("pool %2d: render %.2f ms (overhead %+.2f ms)\n", n, t.median_ms, overhead);
  }

  if (split.inference < 2) {
    // With fewer than two inference cores every pool size time-slices the
    // same core and the curve is flat noise — a "knee" read off it would be
    // whichever point the jitter favored. Record an explicit marker (the
    // CI knee assertion skips when it sees this row) instead of a bogus
    // recommendation.
    BenchTiming marker;
    marker.reps = 1;
    marker.name = "sweep_insufficient_cores";
    marker.median_ms = split.inference;
    marker.min_ms = split.inference;
    report.Record(marker);
    std::printf(
        "only %d inference core(s) after the raster split: no knee is "
        "derivable from this host; recorded sweep_insufficient_cores\n",
        split.inference);
  } else {
    // The knee: smallest pool within 5% (plus a 0.1 ms noise floor) of the
    // best overhead.
    int recommended = pool_sizes.back();
    for (const auto& [n, overhead] : curve) {
      if (overhead <= best_overhead + std::max(0.05 * std::abs(best_overhead), 0.1)) {
        recommended = n;
        break;
      }
    }
    BenchTiming rec_row;
    rec_row.reps = 1;
    rec_row.name = "sweep_recommended_inference_threads";
    rec_row.median_ms = recommended;
    rec_row.min_ms = recommended;
    report.Record(rec_row);
    std::printf(
        "recommended inference pool: %d threads (smallest within 5%% of the best "
        "overhead %.2f ms); default split keeps raster = half the cores and gives "
        "inference the rest\n",
        recommended, best_overhead);
  }
  const std::string json = report.WriteJson();
  if (!json.empty()) {
    std::printf("wrote %s\n", json.c_str());
  }
}

}  // namespace
}  // namespace percival

int main(int argc, char** argv) {
  int raster_override = 0;
  bool sweep = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--raster-threads=", 17) == 0) {
      char* end = nullptr;
      raster_override = static_cast<int>(std::strtol(arg + 17, &end, 10));
      if (end == arg + 17 || *end != '\0' || raster_override <= 0) {
        std::printf("invalid --raster-threads value: %s\n", arg + 17);
        return 1;
      }
    } else if (std::strcmp(arg, "--sweep-threads") == 0) {
      sweep = true;
    } else {
      std::printf("usage: fig15_overhead [--raster-threads=N] [--sweep-threads]\n");
      return 1;
    }
  }
  const percival::ThreadSplit split = percival::ComputeThreadSplit(raster_override);
  if (sweep) {
    percival::RunThreadSweep(split);
  } else {
    percival::Run(split);
  }
  return 0;
}
