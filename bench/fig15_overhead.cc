// Fig. 15 — median render-time overhead of PERCIVAL. Paper: Chromium
// +4.55% (178.23 ms), Brave +19.07% (281.85 ms) — the absolute overhead is
// similar, but Brave's baseline is smaller (block lists remove work), so
// the relative overhead is larger.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/nn/gemm.h"
#include "src/renderer/renderer.h"

namespace percival {
namespace {

double MedianRenderMs(const BenchWorld& world, AdClassifier* classifier,
                      const FilterEngine* filter, int pages) {
  std::vector<double> samples;
  for (int i = 0; i < pages; ++i) {
    const WebPage page = world.generator->GeneratePage(i % 40, i / 40);
    RenderOptions options;
    options.raster_threads = 4;
    options.filter = filter;
    options.interceptor = classifier;
    samples.push_back(RenderPage(page, options).metrics.RenderTime());
  }
  return EmpiricalCdf(std::move(samples)).Quantile(0.5);
}

void Run() {
  PrintHeader("Fig. 15 — PERCIVAL render overhead (median, synchronous mode)");
  ModelZoo zoo;
  AdClassifier classifier = MakeSharedClassifier(zoo);
  BenchWorld world = MakeBenchWorld(0.75, 7);

  // Deployment configuration: the batched GEMM engine fans conv rows out
  // over this pool whenever a raster worker blocks on a classification.
  ScopedInferencePool inference_pool;

  const int kPages = 120;
  const double chromium = MedianRenderMs(world, nullptr, nullptr, kPages);
  const double chromium_percival = MedianRenderMs(world, &classifier, nullptr, kPages);
  const double brave = MedianRenderMs(world, nullptr, &world.easylist, kPages);
  const double brave_percival = MedianRenderMs(world, &classifier, &world.easylist, kPages);

  TextTable table({"Baseline", "Treatment", "Overhead (%)", "Overhead (ms)"});
  table.AddRow({"Chromium", "Chromium + PERCIVAL",
                TextTable::Fixed((chromium_percival - chromium) / chromium * 100.0, 2),
                TextTable::Fixed(chromium_percival - chromium, 2)});
  table.AddRow({"Brave", "Brave + PERCIVAL",
                TextTable::Fixed((brave_percival - brave) / brave * 100.0, 2),
                TextTable::Fixed(brave_percival - brave, 2)});
  std::printf("%s", table.Render().c_str());
  std::printf("medians: chromium=%.1f ms, +percival=%.1f ms, brave=%.1f ms, +percival=%.1f ms\n",
              chromium, chromium_percival, brave, brave_percival);
  std::printf("paper: Chromium +4.55%% (178.23 ms), Brave +19.07%% (281.85 ms)\n");
  std::printf(
      "\nShape check: overhead is single-digit-to-moderate percent on the\n"
      "Chromium baseline and a larger *percentage* on Brave (smaller base),\n"
      "reproducing the paper's relationship.\n");
}

}  // namespace
}  // namespace percival

int main() {
  percival::Run();
  return 0;
}
