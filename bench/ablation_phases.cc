// Ablation — the §4.4 data pipeline: (a) the screenshot crawler's race
// condition vs the pipeline crawler's race-free capture, and (b) the
// multi-phase crawl-and-retrain loop (8 phases in the paper).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/crawler/screenshot_crawler.h"
#include "src/eval/metrics.h"
#include "src/img/draw.h"
#include "src/train/phases.h"

namespace percival {
namespace {

void Run() {
  PrintHeader("Ablation — screenshot crawler race vs pipeline crawler (§4.4)");
  BenchWorld world = MakeBenchWorld(1.0, 7);

  ScreenshotCrawlConfig screenshot_config;
  screenshot_config.sites = 16;
  screenshot_config.pages_per_site = 2;
  screenshot_config.screenshot_delay_ms = 400.0;
  ScreenshotCrawlStats screenshot_stats;
  Dataset screenshot_set =
      RunScreenshotCrawl(*world.generator, world.easylist, screenshot_config, &screenshot_stats);

  int blank_ads = 0;
  int total_ads = 0;
  for (const LabeledImage& example : screenshot_set.examples()) {
    if (example.is_ad) {
      ++total_ads;
      if (NonBackgroundFraction(example.image, Color{255, 255, 255, 255}) < 0.01) {
        ++blank_ads;
      }
    }
  }

  Dataset pipeline_set = CrawlTrainingSet(world, 16, 2, 42);
  TextTable crawl_table({"crawler", "ad captures", "blank (raced)", "usable"});
  crawl_table.AddRow({"screenshot @ load+400ms", std::to_string(total_ads),
                      std::to_string(blank_ads), std::to_string(total_ads - blank_ads)});
  crawl_table.AddRow({"pipeline (decoded frames)", std::to_string(pipeline_set.ad_count()), "0",
                      std::to_string(pipeline_set.ad_count())});
  std::printf("%s", crawl_table.Render().c_str());
  std::printf(
      "paper: \"many screen-shots end up with white-space instead of the\n"
      "image content\"; the pipeline crawler eliminates the race.\n");

  PrintHeader("Ablation — crawl/retrain phases (paper: 8 phases)");
  PhasedTrainingConfig config;
  config.phases = 8;
  config.sites_per_phase = 6;
  config.pages_per_site = 1;
  config.profile = TestProfile();
  config.train.epochs = 6;
  config.train.batch_size = 12;
  config.train.sgd.learning_rate = 0.01f;
  config.train.sgd.lr_decay_every_epochs = 8;
  config.train.sgd.lr_decay_factor = 0.3f;

  SampledDatasetOptions holdout_options;
  holdout_options.per_class = 60;
  holdout_options.seed = 321;
  Dataset holdout = SampleDataset(holdout_options);
  PhasedTrainingResult result =
      RunPhasedTraining(*world.generator, world.easylist, holdout, config);

  TextTable phase_table({"phase", "corpus size", "dups removed", "holdout acc", "holdout F1"});
  for (const PhaseOutcome& phase : result.phases) {
    phase_table.AddRow({std::to_string(phase.phase), std::to_string(phase.dataset_size),
                        std::to_string(phase.duplicates_removed),
                        TextTable::Percent(phase.holdout_accuracy, 1),
                        TextTable::Fixed(phase.holdout_f1, 3)});
  }
  std::printf("%s", phase_table.Render().c_str());
  std::printf(
      "\nShape check: the corpus grows with each phase's crawl (after dedup\n"
      "and balancing) and holdout accuracy trends upward over phases.\n");
}

}  // namespace
}  // namespace percival

int main() {
  percival::Run();
  return 0;
}
