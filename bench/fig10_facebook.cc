// Fig. 10 — first-party Facebook ads and sponsored content, evaluated over
// 35 browsing sessions. Paper aggregate: 354 ads / 1,830 non-ads, accuracy
// 92.0%, FP 68, FN 106, precision 0.784, recall 0.7. The classifier
// "always picks out the ads in the right-columns but struggles with the ads
// embedded in the feed".
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/webgen/facebook.h"

namespace percival {
namespace {

void Run() {
  PrintHeader("Fig. 10 — online evaluation of Facebook ads and sponsored content");
  ModelZoo zoo;
  AdClassifier classifier = MakeSharedClassifier(zoo);

  const int kSessions = 35;
  ConfusionMatrix total;
  ConfusionMatrix right_column;
  ConfusionMatrix in_feed_sponsored;
  for (int session = 0; session < kSessions; ++session) {
    FacebookSessionConfig config;
    config.seed = 5000 + static_cast<uint64_t>(session);
    config.feed_posts = 52;
    config.right_column_ads = 4;
    for (const FeedItem& item : GenerateFacebookSession(config)) {
      const bool predicted = classifier.Classify(item.image).is_ad;
      total.Record(item.is_ad, predicted);
      if (item.slot == FeedSlot::kRightColumnAd) {
        right_column.Record(true, predicted);
      }
      if (item.slot == FeedSlot::kSponsoredPost) {
        in_feed_sponsored.Record(true, predicted);
      }
    }
  }

  TextTable table({"Ads", "Non-ads", "Accuracy", "FP", "FN", "TP", "TN", "Precision", "Recall"});
  table.AddRow({std::to_string(total.tp + total.fn), std::to_string(total.tn + total.fp),
                TextTable::Percent(total.Accuracy(), 1), std::to_string(total.fp),
                std::to_string(total.fn), std::to_string(total.tp), std::to_string(total.tn),
                TextTable::Fixed(total.Precision(), 3), TextTable::Fixed(total.Recall(), 3)});
  std::printf("%s", table.Render().c_str());
  std::printf("paper: 354 / 1,830 / 92.0%% / 68 / 106 / 248 / 1,762 / 0.784 / 0.7\n");

  std::printf("\nPer-slot recall (paper: right-column ~always caught, in-feed misses):\n");
  std::printf("  right-column ad units : %s\n",
              TextTable::Percent(right_column.Recall(), 1).c_str());
  std::printf("  in-feed sponsored     : %s\n",
              TextTable::Percent(in_feed_sponsored.Recall(), 1).c_str());
  std::printf(
      "\nFalse positives come from high-ad-intent brand/product posts; false\n"
      "negatives from sponsored posts that look organic — both match §5.3.\n");
}

}  // namespace
}  // namespace percival

int main() {
  percival::Run();
  return 0;
}
