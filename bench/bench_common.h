// Shared infrastructure for the experiment benches: the canonical synthetic
// web, the EasyList stand-in, the train-once classifier every figure reuses
// (cached on disk via ModelZoo), and the kernel-timing harness that reports
// median + min over repetitions and emits machine-readable BENCH_*.json so
// the perf trajectory is tracked across PRs.
#ifndef PERCIVAL_BENCH_BENCH_COMMON_H_
#define PERCIVAL_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/classifier.h"
#include "src/core/model.h"
#include "src/core/model_zoo.h"
#include "src/crawler/dataset.h"
#include "src/filter/engine.h"
#include "src/webgen/ad_network.h"
#include "src/webgen/sitegen.h"

namespace percival {

// The canonical experiment environment shared by the figures.
struct BenchWorld {
  std::vector<AdNetwork> networks;
  std::unique_ptr<SiteGenerator> generator;
  FilterEngine easylist;
};

// listed_fraction < 1 leaves long-tail ad networks outside the list.
BenchWorld MakeBenchWorld(double listed_fraction = 1.0, uint64_t seed = 7,
                          Language language = Language::kEnglish);

// Crawls `sites` x `pages` through the rendering pipeline, labelling frames
// with EasyList, then dedups + balances — the paper's §4.4 data pipeline.
Dataset CrawlTrainingSet(const BenchWorld& world, int sites, int pages, uint64_t seed);

// Returns the shared English experiment-profile model, training it on the
// first call (~30 s) and loading it from the model cache afterwards.
Network SharedTrainedModel(ModelZoo& zoo);

// Convenience: classifier wrapping a copy of the shared model.
AdClassifier MakeSharedClassifier(ModelZoo& zoo);

// Directly sampled (non-crawled) labelled dataset from the generators.
struct SampledDatasetOptions {
  int per_class = 100;
  Language language = Language::kEnglish;
  double cue_dropout = 0.15;
  bool shifted_distribution = false;
  double product_photo_probability = 0.08;
  uint64_t seed = 5;
};
Dataset SampleDataset(const SampledDatasetOptions& options);

// Prints a section header so the combined bench log reads like the paper.
void PrintHeader(const std::string& title);

// ------------------------------------------------- kernel timing harness --

// One benchmark measurement. Wall times are per repetition; medians are
// robust against scheduler noise on shared runners, the min approximates
// the no-interference floor.
struct BenchTiming {
  std::string name;
  int reps = 0;
  double median_ms = 0.0;
  double min_ms = 0.0;
  double gmacs = 0.0;  // GMAC/s at the median rep; 0 for non-MAC kernels
};

// Collects kernel timings and serializes them as BENCH_<tag>.json.
class BenchReport {
 public:
  explicit BenchReport(std::string tag);

  // Runs `fn` once untimed (warmup), then `reps` timed repetitions; records
  // the result and prints one human-readable line. `macs_per_rep` > 0 adds
  // a GMAC/s column computed from the median.
  BenchTiming Run(const std::string& name, int reps, int64_t macs_per_rep,
                  const std::function<void()>& fn);

  // Records an externally measured timing (e.g. fig15's render medians).
  void Record(BenchTiming timing);

  // Writes BENCH_<tag>.json to the current directory (override the
  // directory with $PERCIVAL_BENCH_DIR). Returns the path written, or an
  // empty string on I/O failure.
  std::string WriteJson() const;

  const std::vector<BenchTiming>& timings() const { return timings_; }

 private:
  std::string tag_;
  std::vector<BenchTiming> timings_;
};

}  // namespace percival

#endif  // PERCIVAL_BENCH_BENCH_COMMON_H_
