// Serving-overload saturation bench: drives the async classifier at and
// past its admission capacity and records what the overload hardening
// actually buys — sustained classification throughput, the paint-side
// latency the renderer sees (which must stay flat no matter how far past
// capacity the creative rate goes: shedding is the release valve), the
// shed rate, and a mid-run slow-inference window that exercises the
// degrade -> self-heal ladder end to end. Results land in
// BENCH_serving_overload.json so the overload envelope is tracked across
// PRs like any other perf surface.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/base/faultpoint.h"
#include "src/base/stopwatch.h"
#include "src/core/classifier.h"
#include "src/eval/metrics.h"
#include "src/img/bitmap.h"

namespace percival {
namespace {

// Unique synthetic creatives: the saturating stream must never hit the
// memo cache, so every frame carries its id in the pixels (full 32 bits —
// the pattern alone would repeat every 256 ids).
Bitmap MakeCreative(int id) {
  Bitmap bitmap(64, 48);
  for (int y = 0; y < bitmap.height(); ++y) {
    for (int x = 0; x < bitmap.width(); ++x) {
      bitmap.SetPixel(x, y,
                      Color{static_cast<uint8_t>((id * 37 + x) & 0xff),
                            static_cast<uint8_t>((id * 101 + y) & 0xff),
                            static_cast<uint8_t>(id & 0xff), 255});
    }
  }
  bitmap.SetPixel(0, 0,
                  Color{static_cast<uint8_t>(id & 0xff), static_cast<uint8_t>((id >> 8) & 0xff),
                        static_cast<uint8_t>((id >> 16) & 0xff), 255});
  return bitmap;
}

// A recompressed near-duplicate of `source`: small deterministic per-pixel
// jitter, the pixel damage a second ad network's re-encode of the same
// creative inflicts. Every (source, seed) pair is pixel-unique — an L1 memo
// miss — while the AverageHash moves only a few bits.
Bitmap JitterCreative(const Bitmap& source, int seed) {
  Bitmap out(source.width(), source.height());
  for (int y = 0; y < source.height(); ++y) {
    for (int x = 0; x < source.width(); ++x) {
      Color c = source.GetPixel(x, y);
      uint8_t* channels[3] = {&c.r, &c.g, &c.b};
      for (int k = 0; k < 3; ++k) {
        const int d = ((x * 7 + y * 13 + seed * 31 + k) % 7) - 3;
        const int v = std::clamp(static_cast<int>(*channels[k]) + d, 0, 255);
        *channels[k] = static_cast<uint8_t>(v);
      }
      out.SetPixel(x, y, c);
    }
  }
  return out;
}

struct PhaseOutcome {
  double offered_per_s = 0.0;     // creatives presented / wall second
  double classified_per_s = 0.0;  // creatives actually classified / second
  double paint_p50_ms = 0.0;      // OnDecodedFrame latency (the paint cost)
  double paint_p99_ms = 0.0;
  double shed_pct = 0.0;
  int64_t degrade_transitions = 0;
  int64_t degraded_frames = 0;
  int64_t near_dup_hits = 0;            // L2 answers during the phase
  double near_dup_hit_rate_pct = 0.0;   // hits / offered
};

// One load phase: `ticks` frame ticks, each presenting `uniques_per_tick`
// never-seen creatives and then draining under the policy's budget — the
// frame loop of an async deployment. `slow_from`/`slow_ticks` optionally
// arm the slow-forward fault for a window mid-run (the degrade ladder's
// trigger); pass slow_ticks = 0 for a clean run.
PhaseOutcome RunPhase(AdClassifier& inner, const ServingPolicy& policy, int ticks,
                      int uniques_per_tick, int batch_size, int slow_from, int slow_ticks,
                      double slow_delay_ms, int* next_id) {
  AsyncAdClassifier async(inner);
  async.SetServingPolicy(policy);
  inner.ResetStats();

  std::vector<double> paint_samples;
  paint_samples.reserve(static_cast<size_t>(ticks) * static_cast<size_t>(uniques_per_tick));
  Stopwatch wall;
  for (int tick = 0; tick < ticks; ++tick) {
    if (slow_ticks > 0 && tick == slow_from) {
      faultpoint::FaultSpec slow;
      slow.delay_ms = slow_delay_ms;
      faultpoint::Arm(faultpoint::kSlowForward, slow);
    }
    if (slow_ticks > 0 && tick == slow_from + slow_ticks) {
      faultpoint::Disarm(faultpoint::kSlowForward);
    }
    for (int i = 0; i < uniques_per_tick; ++i) {
      Bitmap creative = MakeCreative((*next_id)++);
      Stopwatch paint;
      async.OnDecodedFrame(creative.info(), creative, "https://ads.example/overload");
      paint_samples.push_back(paint.ElapsedMs());
    }
    async.DrainPending(nullptr, batch_size);  // budget from the policy
  }
  faultpoint::Disarm(faultpoint::kSlowForward);
  const double wall_s = wall.ElapsedMs() / 1000.0;

  const ClassifierStats stats = async.stats();
  const int64_t offered = static_cast<int64_t>(ticks) * uniques_per_tick;
  PhaseOutcome out;
  out.offered_per_s = wall_s > 0.0 ? static_cast<double>(offered) / wall_s : 0.0;
  out.classified_per_s =
      wall_s > 0.0 ? static_cast<double>(inner.stats().classified) / wall_s : 0.0;
  EmpiricalCdf cdf(std::move(paint_samples));
  out.paint_p50_ms = cdf.Quantile(0.5);
  out.paint_p99_ms = cdf.Quantile(0.99);
  out.shed_pct = 100.0 * static_cast<double>(stats.shed) / static_cast<double>(offered);
  out.degrade_transitions = stats.degrade_transitions;
  out.degraded_frames = stats.degraded_frames;
  return out;
}

// Recompressed-duplicate flood: a fixed pool of base creatives is
// classified once, then every offered frame is a jittered re-encode of one
// of them — an L1 miss on first encounter. With the L2 perceptual tier on,
// each distinct re-encode is answered by a near-duplicate hit (which
// promotes its exact hash into L1, so repeats of the same re-encode count
// as L1 hits, not L2 — the reported hit rate covers first encounters
// only), the flood runs with essentially zero forward passes, and the
// paint side must stay as flat as the at-capacity phase.
PhaseOutcome RunNearDupFlood(AdClassifier& inner, const ServingPolicy& policy, int ticks,
                             int uniques_per_tick, int batch_size, int* next_id) {
  AsyncAdClassifier async(inner);
  async.SetServingPolicy(policy);
  inner.ResetStats();

  constexpr int kBases = 64;
  std::vector<Bitmap> bases;
  bases.reserve(kBases);
  for (int i = 0; i < kBases; ++i) {
    bases.push_back(MakeCreative((*next_id)++));
  }
  // Prime in queue-sized chunks so every base is admitted and classified
  // into both memo tiers (a single burst would shed past max_pending).
  int base_index = 0;
  for (Bitmap& base : bases) {
    async.OnDecodedFrame(base.info(), base, "https://ads.example/base");
    if (++base_index % 16 == 0) {
      async.DrainPending(nullptr, batch_size, /*budget_ms=*/0.0);
    }
  }
  async.DrainPending(nullptr, batch_size, /*budget_ms=*/0.0);
  const ClassifierStats primed = async.stats();
  const int64_t primed_classified = inner.stats().classified;

  std::vector<double> paint_samples;
  paint_samples.reserve(static_cast<size_t>(ticks) * static_cast<size_t>(uniques_per_tick));
  Stopwatch wall;
  int variant = 0;
  for (int tick = 0; tick < ticks; ++tick) {
    for (int i = 0; i < uniques_per_tick; ++i) {
      ++variant;
      Bitmap creative = JitterCreative(bases[variant % kBases], variant);
      Stopwatch paint;
      async.OnDecodedFrame(creative.info(), creative, "https://ads.example/flood");
      paint_samples.push_back(paint.ElapsedMs());
    }
    async.DrainPending(nullptr, batch_size);  // budget from the policy
  }
  const double wall_s = wall.ElapsedMs() / 1000.0;

  const ClassifierStats stats = async.stats();
  const int64_t offered = static_cast<int64_t>(ticks) * uniques_per_tick;
  PhaseOutcome out;
  out.offered_per_s = wall_s > 0.0 ? static_cast<double>(offered) / wall_s : 0.0;
  out.classified_per_s =
      wall_s > 0.0 ? static_cast<double>(inner.stats().classified - primed_classified) / wall_s
                   : 0.0;
  EmpiricalCdf cdf(std::move(paint_samples));
  out.paint_p50_ms = cdf.Quantile(0.5);
  out.paint_p99_ms = cdf.Quantile(0.99);
  out.shed_pct =
      100.0 * static_cast<double>(stats.shed - primed.shed) / static_cast<double>(offered);
  out.degrade_transitions = stats.degrade_transitions;
  out.degraded_frames = stats.degraded_frames;
  out.near_dup_hits = stats.near_dup_hits - primed.near_dup_hits;
  out.near_dup_hit_rate_pct =
      100.0 * static_cast<double>(out.near_dup_hits) / static_cast<double>(offered);
  return out;
}

void RecordPhase(BenchReport& report, const std::string& prefix, const PhaseOutcome& out,
                 int reps) {
  auto record = [&](const std::string& name, double value) {
    BenchTiming row;
    row.name = prefix + "_" + name;
    row.reps = reps;
    row.median_ms = value;
    row.min_ms = value;
    report.Record(row);
  };
  record("offered_per_s", out.offered_per_s);
  record("classified_per_s", out.classified_per_s);
  record("paint_p50_ms", out.paint_p50_ms);
  record("paint_p99_ms", out.paint_p99_ms);
  record("shed_rate_pct", out.shed_pct);
  record("degrade_transitions", static_cast<double>(out.degrade_transitions));
  record("degraded_frames", static_cast<double>(out.degraded_frames));
  record("near_dup_hits", static_cast<double>(out.near_dup_hits));
  record("near_dup_hit_rate_pct", out.near_dup_hit_rate_pct);
  std::printf(
      "%-12s offered %7.0f/s  classified %7.0f/s  paint p50 %6.3f ms  "
      "p99 %6.3f ms  shed %5.1f%%  degrade transitions %lld\n",
      prefix.c_str(), out.offered_per_s, out.classified_per_s, out.paint_p50_ms,
      out.paint_p99_ms, out.shed_pct, static_cast<long long>(out.degrade_transitions));
}

void Run() {
  PrintHeader("Serving overload — admission capacity, shedding, degrade ladder");
  ModelZoo zoo;
  AdClassifier classifier = MakeSharedClassifier(zoo);

  // Calibrate: per-image classification cost of a drain batch on this
  // host. Everything below is phrased in multiples of it, so the bench
  // saturates every machine it runs on instead of only slow ones.
  constexpr int kBatch = 8;
  std::vector<Bitmap> warm_bitmaps;
  std::vector<const Bitmap*> warm;
  for (int i = 0; i < kBatch; ++i) {
    warm_bitmaps.push_back(MakeCreative(1000000 + i));
  }
  for (const Bitmap& b : warm_bitmaps) {
    warm.push_back(&b);
  }
  classifier.ClassifyBatch(warm);  // warmup: packs weights, sizes arenas
  const std::vector<ClassifyResult> calib = classifier.ClassifyBatch(warm);
  const double classify_ms = std::max(0.01, calib.empty() ? 0.01 : calib[0].latency_ms);
  std::printf("calibration: %.3f ms/image in batches of %d\n", classify_ms, kBatch);

  // The policy under test. Per tick the drain budget affords ~2 batches
  // (16 creatives), so:
  //   at capacity  — offered 12/tick < 16: everything admitted, no shed;
  //   saturated    — offered 64/tick: admission caps the queue, the rest
  //                  sheds, and paint latency must not move.
  ServingPolicy policy;
  policy.max_pending = 32;
  policy.max_memo_entries = 4096;
  policy.drain_budget_ms = 2.0 * kBatch * classify_ms;
  policy.classify_deadline_ms = 4.0 * classify_ms;  // met unless inference degrades
  policy.degrade_after_misses = 3;
  policy.recover_after_frames = 128;

  BenchReport report("serving_overload");
  BenchTiming config_row;
  config_row.reps = 1;
  config_row.name = "classify_ms_per_image";
  config_row.median_ms = classify_ms;
  config_row.min_ms = classify_ms;
  report.Record(config_row);
  config_row.name = "max_pending";
  config_row.median_ms = static_cast<double>(policy.max_pending);
  config_row.min_ms = config_row.median_ms;
  report.Record(config_row);
  config_row.name = "drain_budget_ms";
  config_row.median_ms = policy.drain_budget_ms;
  config_row.min_ms = config_row.median_ms;
  report.Record(config_row);

  constexpr int kTicks = 100;
  int next_id = 0;

  const PhaseOutcome at_capacity =
      RunPhase(classifier, policy, kTicks, 12, kBatch, 0, 0, 0.0, &next_id);
  RecordPhase(report, "at_capacity", at_capacity, kTicks);

  const PhaseOutcome saturated =
      RunPhase(classifier, policy, kTicks, 64, kBatch, 0, 0, 0.0, &next_id);
  RecordPhase(report, "saturated", saturated, kTicks);

  // Saturated AND slow: a mid-run window where every batch forward stalls
  // long enough that the PER-IMAGE latency (stall amortized over the
  // batch) lands at ~2x the deadline — consecutive misses trip the
  // fail-open degrade state, the window ends, and the countdown
  // self-heals. The paint-side p99 must survive even this.
  const PhaseOutcome degraded =
      RunPhase(classifier, policy, kTicks, 64, kBatch,
               /*slow_from=*/30, /*slow_ticks=*/10,
               /*slow_delay_ms=*/2.0 * kBatch * policy.classify_deadline_ms, &next_id);
  RecordPhase(report, "degraded", degraded, kTicks);

  // Recompressed-duplicate flood with the L2 perceptual tier on: the same
  // at-capacity offered rate, but every frame is a jittered re-encode of an
  // already classified creative. Near-dup hits answer the flood at Submit
  // time, so classified/s collapses toward zero while paint p99 stays at
  // the at-capacity level.
  ServingPolicy near_dup_policy = policy;
  near_dup_policy.near_dup_enabled = true;
  near_dup_policy.near_dup_hamming = 8;
  const PhaseOutcome flood =
      RunNearDupFlood(classifier, near_dup_policy, kTicks, 12, kBatch, &next_id);
  RecordPhase(report, "near_dup_flood", flood, kTicks);

  std::printf(
      "\nShape check: classified/s tops out near the admission capacity in\n"
      "both overload phases, shed%% absorbs the excess, paint p99 stays flat\n"
      "from at-capacity through the forced-slow window, the degraded\n"
      "phase shows a degrade->heal cycle (transitions >= 2), and the\n"
      "near-dup flood is mostly answered by L2 hits without inference.\n");
  const std::string json = report.WriteJson();
  if (!json.empty()) {
    std::printf("wrote %s\n", json.c_str());
  }
}

}  // namespace
}  // namespace percival

int main() {
  percival::Run();
  return 0;
}
