// Fig. 13 — blocking image-search results by query ad intent. Paper: 12/100
// blocked for "Obama", 96/100 for "Advertisement", with FP/FN reported only
// where ground truth was determinable.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/webgen/search.h"

namespace percival {
namespace {

void Run() {
  PrintHeader("Fig. 13 — PERCIVAL blocking image search results (first 100 images)");
  ModelZoo zoo;
  AdClassifier classifier = MakeSharedClassifier(zoo);

  TextTable table({"Search query", "Images blocked", "Images rendered", "FP", "FN"});
  int obama_blocked = -1;
  int advertisement_blocked = -1;
  for (const SearchQueryProfile& profile : Fig13Queries()) {
    std::vector<SearchResultImage> results = GenerateSearchResults(profile, 100, 77);
    int blocked = 0;
    int fp = 0;
    int fn = 0;
    for (const SearchResultImage& result : results) {
      const bool predicted = classifier.Classify(result.image).is_ad;
      blocked += predicted ? 1 : 0;
      if (result.is_ad.has_value()) {
        if (predicted && !*result.is_ad) {
          ++fp;
        }
        if (!predicted && *result.is_ad) {
          ++fn;
        }
      }
    }
    const bool labeled = !results.empty() && results[0].is_ad.has_value();
    table.AddRow({profile.query, std::to_string(blocked), std::to_string(100 - blocked),
                  labeled ? std::to_string(fp) : "-", labeled ? std::to_string(fn) : "-"});
    if (profile.query == "Obama") {
      obama_blocked = blocked;
    }
    if (profile.query == "Advertisement") {
      advertisement_blocked = blocked;
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf("paper: Obama 12/88, Advertisement 96/4, Shoes 56/44, Pastry 14/86, ");
  std::printf("Coffee 23/77, Detergent 85/15, iPhone 76/24\n");
  std::printf("\nShape check: blocked(Advertisement)=%d >> blocked(Obama)=%d.\n",
              advertisement_blocked, obama_blocked);
}

}  // namespace
}  // namespace percival

int main() {
  percival::Run();
  return 0;
}
