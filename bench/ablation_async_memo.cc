// Ablation — the low-latency deployment mode (§1.1/§2.2): asynchronous
// classification with memoization of results. First visits render at
// baseline speed; revisits apply cached decisions, and the cache key is the
// decoded pixels (URL rotation does not break it).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/nn/gemm.h"
#include "src/renderer/renderer.h"

namespace percival {
namespace {

void Run() {
  PrintHeader("Ablation — synchronous vs asynchronous (memoized) classification");
  ModelZoo zoo;
  AdClassifier sync_classifier = MakeSharedClassifier(zoo);
  AdClassifier async_inner = MakeSharedClassifier(zoo);
  AsyncAdClassifier async(async_inner);
  BenchWorld world = MakeBenchWorld(0.75, 7);

  // The async drain and the GEMM engine share one worker pool: pending
  // misses preprocess in parallel batches while each batch's stacked
  // forward fans its conv rows out over the same threads.
  ScopedInferencePool workers;

  const int kPages = 40;
  std::vector<double> baseline_ms;
  std::vector<double> sync_ms;
  std::vector<double> async_first_ms;
  std::vector<double> async_revisit_ms;
  int first_visit_blocked = 0;
  int revisit_blocked = 0;
  int sync_blocked = 0;

  for (int i = 0; i < kPages; ++i) {
    const WebPage page = world.generator->GeneratePage(i, 0);

    RenderOptions baseline;
    baseline.raster_threads = 4;
    baseline_ms.push_back(RenderPage(page, baseline).metrics.RenderTime());

    RenderOptions sync_options = baseline;
    sync_options.interceptor = &sync_classifier;
    RenderResult sync_result = RenderPage(page, sync_options);
    sync_ms.push_back(sync_result.metrics.RenderTime());
    sync_blocked += sync_result.stats.frames_blocked;

    RenderOptions async_options = baseline;
    async_options.interceptor = &async;
    RenderResult first = RenderPage(page, async_options);
    async_first_ms.push_back(first.metrics.RenderTime());
    first_visit_blocked += first.stats.frames_blocked;
    async.DrainPending(&workers.pool());  // off-critical-path, batched + parallel
    RenderResult revisit = RenderPage(page, async_options);
    async_revisit_ms.push_back(revisit.metrics.RenderTime());
    revisit_blocked += revisit.stats.frames_blocked;
  }

  TextTable table({"mode", "median render (ms)", "frames blocked"});
  table.AddRow({"baseline (no PERCIVAL)",
                TextTable::Fixed(EmpiricalCdf(baseline_ms).Quantile(0.5), 1), "0"});
  table.AddRow({"sync (critical path)", TextTable::Fixed(EmpiricalCdf(sync_ms).Quantile(0.5), 1),
                std::to_string(sync_blocked)});
  table.AddRow({"async, first visit",
                TextTable::Fixed(EmpiricalCdf(async_first_ms).Quantile(0.5), 1),
                std::to_string(first_visit_blocked)});
  table.AddRow({"async, revisit (memoized)",
                TextTable::Fixed(EmpiricalCdf(async_revisit_ms).Quantile(0.5), 1),
                std::to_string(revisit_blocked)});
  std::printf("%s", table.Render().c_str());
  const ClassifierStats cache_stats = async.stats();
  std::printf("memo cache: %lld entries, %lld hits, %lld misses\n",
              static_cast<long long>(async.cache_size()),
              static_cast<long long>(cache_stats.cache_hits),
              static_cast<long long>(cache_stats.cache_misses));
  std::printf(
      "\nShape check: async first visits cost ~baseline (no blocking yet);\n"
      "revisits block the same frames sync mode does, at lower added\n"
      "latency than full synchronous classification.\n");
}

}  // namespace
}  // namespace percival

int main() {
  percival::Run();
  return 0;
}
