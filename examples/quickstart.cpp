// Quickstart: the smallest end-to-end use of the PERCIVAL public API.
//
//   1. Build the CNN and train it briefly on synthetic ad/content data.
//   2. Wrap it in an AdClassifier.
//   3. Classify a fresh ad image and a fresh content image.
//   4. Hook it into the rendering pipeline and render a page with ads.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/core/classifier.h"
#include "src/core/model.h"
#include "src/renderer/renderer.h"
#include "src/train/trainer.h"
#include "src/webgen/ad_network.h"
#include "src/webgen/adgen.h"
#include "src/webgen/contentgen.h"
#include "src/webgen/sitegen.h"

using namespace percival;

int main() {
  // 1. A small training set straight from the generators (a real deployment
  //    trains on crawled data; see examples/train_pipeline).
  Rng rng(1);
  Dataset dataset;
  for (int i = 0; i < 80; ++i) {
    Rng ad_rng = rng.Fork();
    AdImageOptions ad_options;
    LabeledImage ad;
    ad.image = GenerateAdImage(ad_rng, ad_options);
    ad.is_ad = true;
    dataset.Add(std::move(ad));

    Rng content_rng = rng.Fork();
    ContentImageOptions content_options;
    content_options.kind = SampleContentKind(content_rng);
    LabeledImage content;
    content.image = GenerateContentImage(content_rng, content_options);
    content.is_ad = false;
    dataset.Add(std::move(content));
  }

  const PercivalNetConfig profile = TestProfile();
  Network net = BuildPercivalNet(profile);
  std::printf("network: %lld parameters (%.2f MB at float32)\n",
              static_cast<long long>(net.ParameterCount()),
              static_cast<double>(net.ModelBytes()) / (1024.0 * 1024.0));

  TrainConfig train;
  train.epochs = 10;
  train.batch_size = 16;
  train.sgd.learning_rate = 0.01f;
  train.sgd.lr_decay_every_epochs = 8;
  train.sgd.lr_decay_factor = 0.3f;
  std::printf("training for %d epochs on %d images...\n", train.epochs, dataset.size());
  TrainClassifier(net, profile, dataset, train);

  // 2. The classifier implements ImageInterceptor, PERCIVAL's hook.
  AdClassifier classifier(std::move(net), profile);

  // 3. Classify fresh images.
  Rng fresh(99);
  Rng ad_rng = fresh.Fork();
  AdImageOptions ad_options;
  ClassifyResult ad_result = classifier.Classify(GenerateAdImage(ad_rng, ad_options));
  Rng content_rng = fresh.Fork();
  ContentImageOptions content_options;
  content_options.kind = ContentKind::kLandscape;
  ClassifyResult content_result =
      classifier.Classify(GenerateContentImage(content_rng, content_options));
  std::printf("ad image      -> p(ad)=%.3f blocked=%s (%.2f ms)\n", ad_result.ad_probability,
              ad_result.is_ad ? "yes" : "no", ad_result.latency_ms);
  std::printf("content image -> p(ad)=%.3f blocked=%s (%.2f ms)\n",
              content_result.ad_probability, content_result.is_ad ? "yes" : "no",
              content_result.latency_ms);

  // 4. Render a synthetic page with PERCIVAL in the pipeline.
  SiteGenerator generator(SiteGenConfig{}, BuildAdNetworks(AdEcosystemConfig{}));
  WebPage page = generator.GeneratePage(0, 0);
  RenderOptions options;
  options.interceptor = &classifier;
  RenderResult result = RenderPage(page, options);
  std::printf("\nrendered %s\n", page.url.c_str());
  std::printf("  images decoded: %d, frames blocked by PERCIVAL: %d\n",
              result.stats.images_decoded, result.stats.frames_blocked);
  std::printf("  render time (domComplete - domLoading): %.1f ms\n",
              result.metrics.RenderTime());
  return 0;
}
