// facebook_feed: renders a synthetic Facebook-style feed (first-party ads:
// right-column units + in-feed sponsored posts with obfuscated DOM
// signatures) and shows why filter lists fail there while PERCIVAL blocks —
// the §5.3 experiment as an interactive example.
//
// Usage: ./build/examples/facebook_feed [sessions]
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/renderer/renderer.h"
#include "src/webgen/facebook.h"

using namespace percival;

int main(int argc, char** argv) {
  const int sessions = argc > 1 ? std::atoi(argv[1]) : 3;
  ModelZoo zoo;
  AdClassifier classifier = MakeSharedClassifier(zoo);
  BenchWorld world = MakeBenchWorld(1.0, 7);

  ConfusionMatrix totals;
  for (int session = 0; session < sessions; ++session) {
    FacebookSessionConfig config;
    config.seed = 900 + static_cast<uint64_t>(session);
    config.feed_posts = 30;
    config.right_column_ads = 3;
    WebPage page = BuildFacebookPage(config);

    // Filter list first: the sponsored posts' obfuscated classes defeat it.
    RenderOptions shields;
    shields.filter = &world.easylist;
    shields.render_framebuffer = false;
    RenderResult filter_result = RenderPage(page, shields);

    // PERCIVAL operates on pixels and doesn't care about DOM signatures.
    RenderOptions percival_options;
    percival_options.interceptor = &classifier;
    percival_options.render_framebuffer = false;
    RenderResult percival_result = RenderPage(page, percival_options);

    int filter_blocked = filter_result.stats.requests_blocked_by_filter +
                         filter_result.stats.elements_hidden_by_filter;
    std::printf("session %d: filter list blocked %d elements; PERCIVAL blocked %d/%d frames\n",
                session, filter_blocked, percival_result.stats.frames_blocked,
                percival_result.stats.frames_decoded);

    for (const ImageOutcome& outcome : percival_result.image_outcomes) {
      if (outcome.decoded) {
        totals.Record(outcome.is_ad, outcome.blocked_by_percival);
      }
    }
  }
  std::printf("\naggregate over %d sessions: %s\n", sessions, totals.Summary().c_str());
  std::printf("paper aggregate (35 days): acc 92.0%%, precision 0.784, recall 0.7\n");
  return 0;
}
