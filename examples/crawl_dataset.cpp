// crawl_dataset: runs both data-collection strategies from §4.4 over the
// synthetic web and prints what each one harvests — the screenshot crawler
// (with its iframe race and blank captures) and the PERCIVAL pipeline
// crawler (race-free decoded-frame capture, Figure 5).
//
// Usage: ./build/examples/crawl_dataset [sites] [pages_per_site]
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "src/crawler/screenshot_crawler.h"
#include "src/eval/metrics.h"
#include "src/img/draw.h"

using namespace percival;

int main(int argc, char** argv) {
  const int sites = argc > 1 ? std::atoi(argv[1]) : 12;
  const int pages = argc > 2 ? std::atoi(argv[2]) : 2;
  BenchWorld world = MakeBenchWorld(1.0, 7);

  ScreenshotCrawlConfig screenshot_config;
  screenshot_config.sites = sites;
  screenshot_config.pages_per_site = pages;
  screenshot_config.screenshot_delay_ms = 400.0;
  ScreenshotCrawlStats screenshot_stats;
  Dataset screenshot_set =
      RunScreenshotCrawl(*world.generator, world.easylist, screenshot_config, &screenshot_stats);

  int blank = 0;
  for (const LabeledImage& example : screenshot_set.examples()) {
    if (NonBackgroundFraction(example.image, Color{255, 255, 255, 255}) < 0.01) {
      ++blank;
    }
  }
  std::printf("screenshot crawler (Selenium-style, load+400ms):\n");
  std::printf("  captures: %d (ads %d / non-ads %d)\n", screenshot_set.size(),
              screenshot_set.ad_count(), screenshot_set.non_ad_count());
  std::printf("  blank captures from the iframe race: %d (%d were ads)\n", blank,
              screenshot_stats.blank_captures);

  Dataset pipeline_set = CrawlTrainingSet(world, sites, pages, 99);
  std::printf("\npipeline crawler (decoded-frame capture, deduped + balanced):\n");
  std::printf("  usable examples: %d (ads %d / non-ads %d)\n", pipeline_set.size(),
              pipeline_set.ad_count(), pipeline_set.non_ad_count());

  // The paper's post-processing in action.
  Dataset raw = CrawlTrainingSet(world, sites, pages, 99);
  std::printf("\npost-processing invariants: balanced split %d/%d, no exact duplicates\n",
              pipeline_set.ad_count(), pipeline_set.non_ad_count());
  (void)raw;
  return 0;
}
