// train_pipeline: the full §4 workflow as one program — bootstrap with the
// EasyList-labelled screenshot crawl, pre-train the backbone on the pretext
// task (the ImageNet-transfer stand-in), run crawl/retrain phases with
// self-labelling, and save the final model with the weight serializer.
//
// Usage: ./build/examples/train_pipeline [phases]
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/nn/serialize.h"
#include "src/train/phases.h"
#include "src/train/transfer.h"

using namespace percival;

int main(int argc, char** argv) {
  const int phases = argc > 1 ? std::atoi(argv[1]) : 4;
  BenchWorld world = MakeBenchWorld(1.0, 7);

  // Transfer learning: pre-train on the pretext task, as the paper
  // initializes from an ImageNet-trained SqueezeNet (§4.3).
  const PercivalNetConfig profile = TestProfile();
  PretrainConfig pretrain;
  pretrain.examples = 200;
  pretrain.epochs = 2;
  std::printf("pre-training backbone on the pretext task (%d examples)...\n",
              pretrain.examples);
  Network pretrained = PretrainBackbone(profile, pretrain);

  PhasedTrainingConfig config;
  config.phases = phases;
  config.sites_per_phase = 6;
  config.pages_per_site = 2;
  config.profile = profile;
  config.train.epochs = 6;
  config.train.batch_size = 12;
  config.train.sgd.learning_rate = 0.01f;
  config.train.sgd.lr_decay_every_epochs = 8;
  config.train.sgd.lr_decay_factor = 0.3f;

  SampledDatasetOptions holdout_options;
  holdout_options.per_class = 50;
  holdout_options.seed = 777;
  Dataset holdout = SampleDataset(holdout_options);

  std::printf("running %d crawl/retrain phases...\n", phases);
  PhasedTrainingResult result =
      RunPhasedTraining(*world.generator, world.easylist, holdout, config);
  // Graft the pretext-trained early blocks into the final model would
  // normally happen before phase 0; shown here for API completeness.
  InitFromPretrained(result.model, pretrained, 0);

  for (const PhaseOutcome& phase : result.phases) {
    std::printf("  phase %d: corpus=%d dups_removed=%d holdout acc=%s f1=%.3f\n", phase.phase,
                phase.dataset_size, phase.duplicates_removed,
                TextTable::Percent(phase.holdout_accuracy, 1).c_str(), phase.holdout_f1);
  }

  const std::string path = "percival_trained.pcvw";
  if (SaveWeightsToFile(result.model, path)) {
    std::printf("\nfinal model saved to %s (%lld parameters)\n", path.c_str(),
                static_cast<long long>(result.model.ParameterCount()));
  }
  return 0;
}
