// block_page: renders the same synthetic news page three ways and prints a
// side-by-side comparison — no blocking, filter list only (the Brave
// shields baseline), and filter list + PERCIVAL (the paper's deployment).
// Also dumps before/after framebuffers as .ppm files for inspection
// (the Fig. 1 / Fig. 17 visual).
//
// Usage: ./build/examples/block_page [site_index] [page_index]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bench/bench_common.h"
#include "src/img/codec.h"
#include "src/renderer/renderer.h"

using namespace percival;

namespace {

void WritePpm(const Bitmap& bitmap, const std::string& path) {
  std::vector<uint8_t> bytes = EncodePpm(bitmap);
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void Report(const char* label, const RenderResult& result) {
  int ads_fetched = 0;
  int ads_shown = 0;
  for (const ImageOutcome& outcome : result.image_outcomes) {
    if (outcome.is_ad) {
      ads_fetched += outcome.fetched ? 1 : 0;
      ads_shown += (outcome.decoded && !outcome.blocked_by_percival) ? 1 : 0;
    }
  }
  std::printf("%-24s render=%7.1f ms  requests blocked=%2d  hidden=%2d  "
              "ads fetched=%d shown=%d  frames blocked=%d\n",
              label, result.metrics.RenderTime(), result.stats.requests_blocked_by_filter,
              result.stats.elements_hidden_by_filter, ads_fetched, ads_shown,
              result.stats.frames_blocked);
}

}  // namespace

int main(int argc, char** argv) {
  const int site = argc > 1 ? std::atoi(argv[1]) : 3;
  const int page_index = argc > 2 ? std::atoi(argv[2]) : 0;

  ModelZoo zoo;
  AdClassifier classifier = MakeSharedClassifier(zoo);
  // Partial list coverage: some ad networks are long-tail (unlisted).
  BenchWorld world = MakeBenchWorld(0.6, 7);
  WebPage page = world.generator->GeneratePage(site, page_index);
  std::printf("page: %s (%zu resources)\n\n", page.url.c_str(), page.resources.size());

  RenderOptions plain;
  RenderResult no_blocking = RenderPage(page, plain);
  Report("no blocking", no_blocking);

  RenderOptions shields = plain;
  shields.filter = &world.easylist;
  RenderResult filter_only = RenderPage(page, shields);
  Report("filter list only", filter_only);

  RenderOptions full = shields;
  full.interceptor = &classifier;
  RenderResult filter_and_percival = RenderPage(page, full);
  Report("filter + PERCIVAL", filter_and_percival);

  WritePpm(no_blocking.framebuffer, "block_page_before.ppm");
  WritePpm(filter_and_percival.framebuffer, "block_page_after.ppm");
  std::printf("\nframebuffers written: block_page_before.ppm, block_page_after.ppm\n");
  std::printf("PERCIVAL catches the long-tail ads the list misses (last column).\n");
  return 0;
}
