// Parity tests for the GEMM inference engine: the register-blocked path in
// src/nn/gemm.cc must agree with the naive dot-product oracle (ForwardNaive)
// within 1e-4 on every shape the networks use — odd kernels, stride 2,
// padding, 1-channel squeeze layers, panel-edge channel counts — plus a
// finite-difference gradient check so training on top of the GEMM forward
// is not silently broken, and allocation/arena behavior checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/nn/conv.h"
#include "src/nn/gemm.h"
#include "src/nn/ops.h"

namespace percival {
namespace {

constexpr float kParityTolerance = 1e-4f;

Tensor RandomTensor(const TensorShape& shape, uint64_t seed) {
  Tensor tensor(shape);
  Rng rng(seed);
  for (int64_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = rng.NextFloat(-1.0f, 1.0f);
  }
  return tensor;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.shape() == b.shape());
  float worst = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

struct ConvCase {
  int in_channels;
  int out_channels;
  int kernel;
  int stride;
  int pad;
  int n;
  int h;
  int w;
};

void ExpectGemmMatchesNaive(const ConvCase& c, uint64_t seed) {
  Rng rng(seed);
  Conv2D conv(c.in_channels, c.out_channels, c.kernel, c.stride, c.pad, rng);
  Tensor input = RandomTensor(TensorShape{c.n, c.h, c.w, c.in_channels}, seed + 1);

  conv.set_use_gemm(false);
  Tensor naive = conv.Forward(input);
  conv.set_use_gemm(true);
  Tensor gemm = conv.Forward(input);

  EXPECT_LE(MaxAbsDiff(naive, gemm), kParityTolerance)
      << conv.Name() << " on input " << input.shape().ToString();
}

TEST(GemmConvParityTest, OneChannelSqueeze1x1) {
  ExpectGemmMatchesNaive(ConvCase{1, 4, 1, 1, 0, 1, 9, 7}, 11);
}

TEST(GemmConvParityTest, Odd3x3Padded) {
  ExpectGemmMatchesNaive(ConvCase{3, 8, 3, 1, 1, 1, 16, 16}, 12);
}

TEST(GemmConvParityTest, Odd5x5Stride2) {
  ExpectGemmMatchesNaive(ConvCase{4, 12, 5, 2, 2, 1, 17, 19}, 13);
}

TEST(GemmConvParityTest, Odd7x7Stride2NoPad) {
  ExpectGemmMatchesNaive(ConvCase{2, 6, 7, 2, 0, 1, 21, 15}, 14);
}

TEST(GemmConvParityTest, PanelEdgeChannelCounts) {
  // Out-channel counts straddling the GemmNativePanelWidth() panel width exercise the
  // zero-padded panel edge and the partial StoreTileRow.
  for (int oc : {1, 3, GemmNativePanelWidth() - 1, GemmNativePanelWidth(), GemmNativePanelWidth() + 1, 2 * GemmNativePanelWidth() + 5}) {
    ExpectGemmMatchesNaive(ConvCase{3, oc, 3, 1, 1, 1, 10, 10},
                           100 + static_cast<uint64_t>(oc));
  }
}

TEST(GemmConvParityTest, RowRemainderTiles) {
  // 5x5 output = 25 rows: 6 full 4-row tiles plus one remainder row.
  ExpectGemmMatchesNaive(ConvCase{3, 9, 3, 1, 1, 1, 5, 5}, 15);
}

TEST(GemmConvParityTest, BatchedSamples) {
  ExpectGemmMatchesNaive(ConvCase{3, 10, 3, 2, 1, 4, 13, 11}, 16);
}

TEST(GemmConvParityTest, RandomizedShapes) {
  Rng shape_rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    ConvCase c;
    c.in_channels = 1 + static_cast<int>(shape_rng.NextBelow(8));
    c.out_channels = 1 + static_cast<int>(shape_rng.NextBelow(34));
    const int kernels[] = {1, 3, 5, 7};
    c.kernel = kernels[shape_rng.NextBelow(4)];
    c.stride = 1 + static_cast<int>(shape_rng.NextBelow(2));
    c.pad = static_cast<int>(shape_rng.NextBelow(static_cast<uint64_t>(c.kernel / 2 + 1)));
    c.n = 1 + static_cast<int>(shape_rng.NextBelow(3));
    // Keep the padded window valid: h + 2*pad >= kernel.
    const int min_side = std::max(1, c.kernel - 2 * c.pad);
    c.h = min_side + static_cast<int>(shape_rng.NextBelow(14));
    c.w = min_side + static_cast<int>(shape_rng.NextBelow(14));
    ExpectGemmMatchesNaive(c, 1000 + static_cast<uint64_t>(trial));
  }
}

TEST(GemmConvParityTest, ThreadedMatchesSerial) {
  Rng rng(21);
  Conv2D conv(6, 24, 3, 1, 1, rng);
  Tensor input = RandomTensor(TensorShape{2, 40, 40, 6}, 22);
  Tensor serial = conv.Forward(input);

  ThreadPool pool(4);
  SetInferenceThreadPool(&pool);
  Tensor threaded = conv.Forward(input);
  SetInferenceThreadPool(nullptr);

  // Chunk boundaries regroup rows across micro-kernel tiles, which may
  // reassociate the K loop; anything beyond rounding noise is a real bug.
  EXPECT_LE(MaxAbsDiff(serial, threaded), 1e-5f);
}

// Training on top of the GEMM forward: analytic input gradients must match
// central finite differences of the GEMM-path loss.
TEST(GemmConvGradientTest, InputGradientMatchesFiniteDifference) {
  Rng rng(31);
  Conv2D conv(2, 5, 3, 2, 1, rng);
  conv.set_use_gemm(true);

  Rng data_rng(32);
  Tensor input(TensorShape{2, 8, 8, 2});
  for (int64_t i = 0; i < input.size(); ++i) {
    input[i] = data_rng.NextFloat(-1.0f, 1.0f);
  }
  Tensor output = conv.Forward(input);
  Tensor g(output.shape());
  for (int64_t i = 0; i < g.size(); ++i) {
    g[i] = data_rng.NextFloat(-1.0f, 1.0f);
  }
  Tensor analytic = conv.Backward(g);

  auto loss = [&](const Tensor& x) {
    Tensor y = conv.Forward(x);
    double total = 0.0;
    for (int64_t i = 0; i < y.size(); ++i) {
      total += static_cast<double>(y[i]) * g[i];
    }
    return total;
  };
  const float epsilon = 2e-3f;
  for (int check = 0; check < 16; ++check) {
    const int64_t i =
        static_cast<int64_t>(data_rng.NextBelow(static_cast<uint64_t>(input.size())));
    Tensor plus = input;
    Tensor minus = input;
    plus[i] += epsilon;
    minus[i] -= epsilon;
    const double numeric = (loss(plus) - loss(minus)) / (2.0 * epsilon);
    EXPECT_NEAR(analytic[i], numeric, 0.02 + 0.05 * std::abs(numeric))
        << "input grad at flat index " << i;
  }
}

// The backward pass consumes state cached by Forward; parameter gradients
// accumulated after a GEMM forward must match those after a naive forward.
TEST(GemmConvGradientTest, ParameterGradientsMatchNaivePath) {
  Rng rng(41);
  Conv2D conv(3, 7, 3, 1, 1, rng);
  Tensor input = RandomTensor(TensorShape{2, 9, 9, 3}, 42);
  Tensor g = RandomTensor(conv.OutputShape(input.shape()), 43);

  conv.set_use_gemm(false);
  conv.Forward(input);
  conv.weights().grad.Zero();
  conv.bias().grad.Zero();
  conv.Backward(g);
  Tensor naive_dw = conv.weights().grad;
  Tensor naive_db = conv.bias().grad;

  conv.set_use_gemm(true);
  conv.Forward(input);
  conv.weights().grad.Zero();
  conv.bias().grad.Zero();
  conv.Backward(g);

  EXPECT_LE(MaxAbsDiff(naive_dw, conv.weights().grad), kParityTolerance);
  EXPECT_LE(MaxAbsDiff(naive_db, conv.bias().grad), kParityTolerance);
}

// --------------------------------------------------------- raw GEMM kernel --

void ReferenceGemmNT(int m, int n, int k, const float* a, const float* b, const float* bias,
                     float* c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = bias != nullptr ? bias[j] : 0.0;
      for (int kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * k + kk]) * b[j * k + kk];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

TEST(GemmKernelTest, MatchesReferenceAcrossShapes) {
  Rng rng(51);
  for (const auto& [m, n, k] : std::vector<std::array<int, 3>>{
           {1, 1, 1}, {4, 16, 8}, {5, 17, 9}, {3, 1, 27}, {33, 47, 19}, {64, 16, 144}}) {
    std::vector<float> a(static_cast<size_t>(m) * k);
    std::vector<float> b(static_cast<size_t>(n) * k);
    std::vector<float> bias(static_cast<size_t>(n));
    for (auto& v : a) v = rng.NextFloat(-1.0f, 1.0f);
    for (auto& v : b) v = rng.NextFloat(-1.0f, 1.0f);
    for (auto& v : bias) v = rng.NextFloat(-1.0f, 1.0f);
    std::vector<float> expected(static_cast<size_t>(m) * n);
    std::vector<float> actual(static_cast<size_t>(m) * n, -100.0f);
    ReferenceGemmNT(m, n, k, a.data(), b.data(), bias.data(), expected.data());
    GemmNT(m, n, k, a.data(), b.data(), bias.data(), actual.data());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(expected[i], actual[i], kParityTolerance) << "m=" << m << " n=" << n
                                                            << " k=" << k << " at " << i;
    }
  }
}

TEST(GemmKernelTest, NullBiasMeansZero) {
  const int m = 6, n = 5, k = 7;
  Rng rng(52);
  std::vector<float> a(static_cast<size_t>(m) * k);
  std::vector<float> b(static_cast<size_t>(n) * k);
  for (auto& v : a) v = rng.NextFloat(-1.0f, 1.0f);
  for (auto& v : b) v = rng.NextFloat(-1.0f, 1.0f);
  std::vector<float> expected(static_cast<size_t>(m) * n);
  std::vector<float> actual(static_cast<size_t>(m) * n);
  ReferenceGemmNT(m, n, k, a.data(), b.data(), nullptr, expected.data());
  GemmNT(m, n, k, a.data(), b.data(), nullptr, actual.data());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(expected[i], actual[i], kParityTolerance);
  }
}

// Every compiled kernel must agree: the intrinsic path (AVX2 or SSE2,
// whatever this binary was built with) against the always-compiled scalar
// fallback, over shapes covering full tiles, remainder rows, and partial
// panels. On a scalar-only build both runs take the same path and the test
// degenerates to determinism.
TEST(GemmKernelTest, IntrinsicAndScalarKernelsAgree) {
  Rng rng(71);
  for (const auto& [m, n, k] : std::vector<std::array<int, 3>>{
           {4, 16, 9}, {7, 16, 33}, {64, 48, 144}, {13, 21, 27}, {3, 5, 8}}) {
    std::vector<float> a(static_cast<size_t>(m) * k);
    std::vector<float> b(static_cast<size_t>(n) * k);
    std::vector<float> bias(static_cast<size_t>(n));
    for (auto& v : a) v = rng.NextFloat(-1.0f, 1.0f);
    for (auto& v : b) v = rng.NextFloat(-1.0f, 1.0f);
    for (auto& v : bias) v = rng.NextFloat(-1.0f, 1.0f);
    std::vector<float> packed(PackedPanelFloats(n, k));
    PackFilterPanels(b.data(), n, k, packed.data());

    std::vector<float> simd(static_cast<size_t>(m) * n);
    std::vector<float> scalar(static_cast<size_t>(m) * n);
    GemmPackedEx(m, n, k, a.data(), packed.data(), bias.data(), GemmEpilogue::kBiasRelu,
                 simd.data(), n);
    SetGemmForceScalar(true);
    GemmPackedEx(m, n, k, a.data(), packed.data(), bias.data(), GemmEpilogue::kBiasRelu,
                 scalar.data(), n);
    SetGemmForceScalar(false);
    for (size_t i = 0; i < simd.size(); ++i) {
      EXPECT_NEAR(simd[i], scalar[i], kParityTolerance)
          << "m=" << m << " n=" << n << " k=" << k << " at " << i;
    }
  }
}

// Strided output: writing a GEMM result into a channel slice of a wider
// buffer (FireModule's concat halves) must leave the other columns alone.
TEST(GemmKernelTest, StridedOutputWritesOnlyItsSlice) {
  const int m = 9, n = 5, k = 12;
  const int64_t ldc = 13;
  Rng rng(72);
  std::vector<float> a(static_cast<size_t>(m) * k);
  std::vector<float> b(static_cast<size_t>(n) * k);
  for (auto& v : a) v = rng.NextFloat(-1.0f, 1.0f);
  for (auto& v : b) v = rng.NextFloat(-1.0f, 1.0f);
  std::vector<float> packed(PackedPanelFloats(n, k));
  PackFilterPanels(b.data(), n, k, packed.data());

  std::vector<float> dense(static_cast<size_t>(m) * n);
  GemmPackedEx(m, n, k, a.data(), packed.data(), nullptr, GemmEpilogue::kNone, dense.data(),
               n);
  const int64_t offset = 6;
  std::vector<float> wide(static_cast<size_t>(m) * ldc, -3.0f);
  GemmPackedEx(m, n, k, a.data(), packed.data(), nullptr, GemmEpilogue::kNone,
               wide.data() + offset, ldc);
  for (int i = 0; i < m; ++i) {
    for (int64_t j = 0; j < ldc; ++j) {
      const float got = wide[static_cast<size_t>(i) * ldc + j];
      if (j >= offset && j < offset + n) {
        EXPECT_NEAR(got, dense[static_cast<size_t>(i) * n + (j - offset)], kParityTolerance);
      } else {
        EXPECT_EQ(got, -3.0f) << "row " << i << " col " << j << " clobbered";
      }
    }
  }
}

TEST(GemmKernelTest, PooledMatchesSerial) {
  const int m = 200, n = 23, k = 50;
  Rng rng(53);
  std::vector<float> a(static_cast<size_t>(m) * k);
  std::vector<float> b(static_cast<size_t>(n) * k);
  for (auto& v : a) v = rng.NextFloat(-1.0f, 1.0f);
  for (auto& v : b) v = rng.NextFloat(-1.0f, 1.0f);
  std::vector<float> serial(static_cast<size_t>(m) * n);
  std::vector<float> pooled(static_cast<size_t>(m) * n);
  GemmNT(m, n, k, a.data(), b.data(), nullptr, serial.data());
  ThreadPool pool(3);
  GemmNT(m, n, k, a.data(), b.data(), nullptr, pooled.data(), &pool);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i], pooled[i], 1e-5f);
  }
}

// ------------------------------------------------------------ ScratchArena --

TEST(ScratchArenaTest, PointersSurviveGrowthUntilReset) {
  ScratchArena arena;
  float* first = arena.Alloc(16);
  first[0] = 42.0f;
  // Force growth; the first block must remain readable.
  float* second = arena.Alloc(1 << 16);
  second[0] = 7.0f;
  EXPECT_EQ(first[0], 42.0f);
  arena.Reset();
  // After one warm-up round the arena coalesces into a single slab and the
  // same requests no longer grow capacity.
  const size_t warmed = arena.CapacityFloats();
  arena.Alloc(16);
  arena.Alloc(1 << 16);
  EXPECT_EQ(arena.CapacityFloats(), warmed);
}

// Regression for Reset() coalescing under growth-while-retired: a round
// that retires multiple blocks must (a) keep every outstanding pointer
// readable until the Reset, and (b) coalesce into a slab large enough that
// the same allocation pattern never retires again — the steady state is a
// single reused slab with stable capacity.
TEST(ScratchArenaTest, GrowthWhileRetiredCoalescesToSingleSlab) {
  ScratchArena arena;
  const size_t sizes[] = {24, 300, 5000, 70000};
  std::vector<float*> ptrs;
  for (size_t i = 0; i < 4; ++i) {
    float* p = arena.Alloc(sizes[i]);  // each Alloc outgrows and retires the last block
    p[0] = static_cast<float>(i + 1);
    p[sizes[i] - 1] = static_cast<float>(100 + i);
    ptrs.push_back(p);
  }
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ptrs[i][0], static_cast<float>(i + 1)) << "block " << i << " lost after growth";
    EXPECT_EQ(ptrs[i][sizes[i] - 1], static_cast<float>(100 + i));
  }
  arena.Reset();
  const size_t warmed = arena.CapacityFloats();
  for (int round = 0; round < 3; ++round) {
    for (size_t size : sizes) {
      arena.Alloc(size);
    }
    EXPECT_EQ(arena.CapacityFloats(), warmed) << "round " << round << " grew the arena";
    arena.Reset();
    EXPECT_EQ(arena.CapacityFloats(), warmed) << "round " << round << " reset changed capacity";
  }
}

TEST(ScratchArenaTest, ReserveMakesFirstRoundAllocationFree) {
  ScratchArena arena;
  arena.Reserve(4096);
  const size_t reserved = arena.CapacityFloats();
  EXPECT_GE(reserved, 4096u);
  arena.Alloc(1000);
  arena.Alloc(3000);
  EXPECT_EQ(arena.CapacityFloats(), reserved) << "reserved arena grew on first use";
  arena.Reserve(16);  // smaller reservation must not shrink the slab
  EXPECT_EQ(arena.CapacityFloats(), reserved);
}

TEST(ScratchArenaTest, SteadyStateForwardDoesNotGrowArena) {
  Rng rng(61);
  Conv2D conv(4, 12, 3, 1, 1, rng);
  Tensor input = RandomTensor(TensorShape{1, 24, 24, 4}, 62);
  conv.Forward(input);
  const size_t warmed = LocalArena().CapacityFloats();
  for (int i = 0; i < 5; ++i) {
    conv.Forward(input);
  }
  EXPECT_EQ(LocalArena().CapacityFloats(), warmed);
}

}  // namespace
}  // namespace percival
