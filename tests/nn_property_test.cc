// Parameterized property sweeps over the CNN stack: gradient checks across
// a grid of conv configurations, softmax algebraic invariants, pooling
// conservation laws, optimizer equivalences, and the block-list builder
// extension feature.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/base/rng.h"
#include "src/core/classifier.h"
#include "src/filter/engine.h"
#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/network.h"
#include "src/nn/optimizer.h"
#include "src/nn/pool.h"
#include "src/train/blocklist_builder.h"
#include "src/train/trainer.h"
#include "src/webgen/ad_network.h"

namespace percival {
namespace {

// (kernel, stride, pad, in_channels, out_channels)
using ConvCase = std::tuple<int, int, int, int, int>;

class ConvGradientSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradientSweep, InputGradientMatchesFiniteDifference) {
  const auto [kernel, stride, pad, in_channels, out_channels] = GetParam();
  Rng rng(static_cast<uint64_t>(kernel * 131 + stride * 17 + pad));
  Conv2D conv(in_channels, out_channels, kernel, stride, pad, rng);
  const int size = 6;
  Tensor input(1, size, size, in_channels);
  Rng data_rng(7);
  for (int64_t i = 0; i < input.size(); ++i) {
    input[i] = data_rng.NextFloat(-1.0f, 1.0f);
  }
  Tensor output = conv.Forward(input);
  Tensor g(output.shape());
  for (int64_t i = 0; i < g.size(); ++i) {
    g[i] = data_rng.NextFloat(-1.0f, 1.0f);
  }
  Tensor analytic = conv.Backward(g);

  auto loss = [&](const Tensor& x) {
    Tensor y = conv.Forward(x);
    double total = 0.0;
    for (int64_t i = 0; i < y.size(); ++i) {
      total += static_cast<double>(y[i]) * g[i];
    }
    return total;
  };
  const float epsilon = 2e-3f;
  for (int check = 0; check < 8; ++check) {
    const int64_t i =
        static_cast<int64_t>(data_rng.NextBelow(static_cast<uint64_t>(input.size())));
    Tensor plus = input;
    Tensor minus = input;
    plus[i] += epsilon;
    minus[i] -= epsilon;
    const double numeric = (loss(plus) - loss(minus)) / (2.0 * epsilon);
    EXPECT_NEAR(analytic[i], numeric, 0.02 + 0.05 * std::abs(numeric));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvGradientSweep,
    ::testing::Values(ConvCase{1, 1, 0, 3, 4}, ConvCase{3, 1, 1, 2, 3}, ConvCase{3, 2, 1, 3, 2},
                      ConvCase{5, 1, 2, 1, 2}, ConvCase{2, 2, 0, 4, 4}, ConvCase{3, 3, 0, 2, 2}),
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "s" +
             std::to_string(std::get<1>(info.param)) + "p" +
             std::to_string(std::get<2>(info.param)) + "i" +
             std::to_string(std::get<3>(info.param)) + "o" +
             std::to_string(std::get<4>(info.param));
    });

TEST(SoftmaxPropertyTest, InvariantToConstantShift) {
  // softmax(x + c) == softmax(x) for any per-row constant c.
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    Tensor a(1, 1, 1, 5);
    Tensor b(1, 1, 1, 5);
    const float shift = rng.NextFloat(-30.0f, 30.0f);
    for (int c = 0; c < 5; ++c) {
      a[c] = rng.NextFloat(-5.0f, 5.0f);
      b[c] = a[c] + shift;
    }
    Softmax sa;
    Softmax sb;
    Tensor ya = sa.Forward(a);
    Tensor yb = sb.Forward(b);
    for (int c = 0; c < 5; ++c) {
      EXPECT_NEAR(ya[c], yb[c], 1e-5f);
    }
  }
}

TEST(SoftmaxPropertyTest, PreservesArgmaxAndOrdering) {
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    Tensor x(1, 1, 1, 4);
    for (int c = 0; c < 4; ++c) {
      x[c] = rng.NextFloat(-4.0f, 4.0f);
    }
    Softmax softmax;
    Tensor y = softmax.Forward(x);
    EXPECT_EQ(y.ArgMaxInSample(0), x.ArgMaxInSample(0));
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        if (x[i] < x[j]) {
          EXPECT_LE(y[i], y[j] + 1e-6f);
        }
      }
    }
  }
}

TEST(PoolingPropertyTest, GlobalAvgPoolConservesMass) {
  // sum(output) * plane == sum(input) for every sample.
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const int h = rng.NextInt(1, 6);
    const int w = rng.NextInt(1, 6);
    const int c = rng.NextInt(1, 4);
    Tensor input(2, h, w, c);
    for (int64_t i = 0; i < input.size(); ++i) {
      input[i] = rng.NextFloat(-2.0f, 2.0f);
    }
    GlobalAvgPool pool;
    Tensor output = pool.Forward(input);
    EXPECT_NEAR(output.Sum() * static_cast<float>(h * w), input.Sum(),
                1e-3f * static_cast<float>(input.size()));
  }
}

TEST(PoolingPropertyTest, MaxPoolOutputBoundedByInputRange) {
  Rng rng(14);
  for (int trial = 0; trial < 30; ++trial) {
    Tensor input(1, 8, 8, 3);
    for (int64_t i = 0; i < input.size(); ++i) {
      input[i] = rng.NextFloat(-3.0f, 3.0f);
    }
    MaxPool2D pool(rng.NextInt(2, 3), rng.NextInt(1, 2));
    Tensor output = pool.Forward(input);
    // Pooled values are drawn from the input, so its range bounds them.
    // (The global max need not survive: trailing rows/columns may fall
    // outside every window when stride does not divide the input size.)
    EXPECT_LE(output.Max(), input.Max() + 1e-6f);
    EXPECT_GE(output.Min(), input.Min() - 1e-6f);
  }
}

TEST(PoolingPropertyTest, MaxPoolGradientConservesMass) {
  // Backward scatters each output gradient to exactly one input position.
  Rng rng(15);
  Tensor input(1, 6, 6, 2);
  for (int64_t i = 0; i < input.size(); ++i) {
    input[i] = rng.NextFloat(-1.0f, 1.0f);
  }
  MaxPool2D pool(2, 2);
  Tensor output = pool.Forward(input);
  Tensor g(output.shape());
  for (int64_t i = 0; i < g.size(); ++i) {
    g[i] = rng.NextFloat(0.1f, 1.0f);
  }
  Tensor grad = pool.Backward(g);
  EXPECT_NEAR(grad.Sum(), g.Sum(), 1e-4f);
}

TEST(OptimizerPropertyTest, ZeroMomentumMatchesPlainSgd) {
  Rng rng(16);
  Parameter a;
  a.value = Tensor(1, 1, 1, 8);
  a.grad = Tensor(1, 1, 1, 8);
  Parameter b;
  b.value = Tensor(1, 1, 1, 8);
  b.grad = Tensor(1, 1, 1, 8);
  for (int i = 0; i < 8; ++i) {
    a.value[i] = b.value[i] = rng.NextFloat(-1.0f, 1.0f);
  }
  SgdConfig config;
  config.learning_rate = 0.1f;
  config.momentum = 0.0f;
  config.max_grad_norm = 0.0f;
  SgdOptimizer optimizer({&a}, config);
  for (int step = 0; step < 10; ++step) {
    for (int i = 0; i < 8; ++i) {
      const float g = rng.NextFloat(-1.0f, 1.0f);
      a.grad[i] = g;
      b.value[i] -= config.learning_rate * g;  // hand-rolled SGD
    }
    optimizer.Step();
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(a.value[i], b.value[i], 1e-5f);
  }
}

TEST(OptimizerPropertyTest, ClippingBoundsUpdateNorm) {
  Parameter p;
  p.value = Tensor(1, 1, 1, 4);
  p.grad = Tensor(1, 1, 1, 4);
  p.grad.Fill(100.0f);  // norm 200
  SgdConfig config;
  config.learning_rate = 1.0f;
  config.momentum = 0.0f;
  config.max_grad_norm = 2.0f;
  SgdOptimizer optimizer({&p}, config);
  optimizer.Step();
  double norm = 0.0;
  for (int i = 0; i < 4; ++i) {
    norm += static_cast<double>(p.value[i]) * p.value[i];
  }
  EXPECT_NEAR(std::sqrt(norm), 2.0, 1e-4);
}

TEST(BlockListBuilderTest, EmitsRulesForAdHostsOnly) {
  // The §6 extension: derive a block list from the classifier's verdicts.
  // With an oracle "classifier" (threshold 0 blocks everything / 1.1 blocks
  // nothing) the emitted rules must cover all / no hosts respectively.
  std::vector<AdNetwork> networks = BuildAdNetworks(AdEcosystemConfig{});
  SiteGenerator generator(SiteGenConfig{}, networks);
  PercivalNetConfig profile = TestProfile();

  AdClassifier block_all(BuildPercivalNet(profile), profile, 0.0f);
  BlockListBuildConfig config;
  config.sites = 4;
  config.pages_per_site = 1;
  BlockListBuildResult all = BuildBlockListFromCrawl(generator, block_all, config);
  EXPECT_GT(all.frames_classified, 0);
  EXPECT_EQ(all.rules.size(),
            [&] {
              int eligible = 0;
              for (const auto& [host, obs] : all.hosts) {
                eligible += obs.images >= config.min_observations ? 1 : 0;
              }
              return static_cast<size_t>(eligible);
            }());

  AdClassifier block_none(BuildPercivalNet(profile), profile, 1.1f);
  BlockListBuildResult none = BuildBlockListFromCrawl(generator, block_none, config);
  EXPECT_TRUE(none.rules.empty());

  // Emitted rules must parse and load into the engine.
  FilterEngine engine;
  EXPECT_EQ(engine.AddList(all.rules), static_cast<int>(all.rules.size()));
}

}  // namespace
}  // namespace percival
