// Tests for the int8 quantized inference engine: kernel-level parity
// between the intrinsic maddubs path and the always-compiled scalar int8
// oracle, conv-level error bounds against the float32 oracle derived from
// the actual quantization scales, persistent int8 pack-cache invalidation
// through the Parameter::version counter, and the end-to-end accuracy guard
// (float-vs-int8 top-1 agreement on a deterministic synthetic ad/non-ad
// batch).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/base/rng.h"
#include "src/core/model.h"
#include "src/img/resize.h"
#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/fire.h"
#include "src/nn/gemm.h"
#include "src/nn/network.h"
#include "src/nn/optimizer.h"
#include "src/webgen/adgen.h"
#include "src/webgen/contentgen.h"

namespace percival {
namespace {

Tensor RandomTensor(const TensorShape& shape, uint64_t seed, float lo = -1.0f,
                    float hi = 1.0f) {
  Tensor tensor(shape);
  Rng rng(seed);
  for (int64_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = rng.NextFloat(lo, hi);
  }
  return tensor;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.shape() == b.shape());
  float worst = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

// Re-derives the per-channel weight scale the packer uses.
float WeightScale(const Tensor& weights, int oc, int row_len) {
  const float* row = weights.data() + static_cast<int64_t>(oc) * row_len;
  float amax = 0.0f;
  for (int k = 0; k < row_len; ++k) {
    amax = std::max(amax, std::abs(row[k]));
  }
  return amax > 0.0f ? amax / static_cast<float>(Int8WeightMax()) : 1.0f;
}

// ---------------------------------------------- kernel-level exact parity --

// The integer accumulation is exact in every tier, so the intrinsic kernels
// must agree with the scalar int8 oracle to the last epilogue ulp across
// randomized shapes (including partial panels and remainder rows).
TEST(Int8KernelTest, IntrinsicMatchesScalarOracle) {
  Rng shape_rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const int m = 1 + static_cast<int>(shape_rng.NextBelow(23));
    const int n = 1 + static_cast<int>(shape_rng.NextBelow(2 * GemmNativePanelWidth() + 7));
    const int k = 1 + static_cast<int>(shape_rng.NextBelow(70));

    Tensor b = RandomTensor(TensorShape{1, 1, n, k}, 900 + trial);
    Int8PackedFilters packed;
    PackFilterPanelsInt8(b.data(), n, k, &packed);

    // Random uint8 activation codes, including the extremes.
    Rng code_rng(1000 + static_cast<uint64_t>(trial));
    std::vector<uint8_t> a(static_cast<size_t>(m) * packed.k_padded, 0);
    for (auto& v : a) {
      v = static_cast<uint8_t>(code_rng.NextBelow(256));
    }
    ActivationQuant quant;
    quant.scale = 0.01f + 0.05f * static_cast<float>(code_rng.NextBelow(10));
    quant.zero_point = static_cast<int32_t>(code_rng.NextBelow(256));
    Tensor bias = RandomTensor(TensorShape{1, 1, 1, n}, 1100 + trial);

    const GemmEpilogue eps[] = {GemmEpilogue::kNone, GemmEpilogue::kBias,
                                GemmEpilogue::kBiasRelu};
    const GemmEpilogue ep = eps[shape_rng.NextBelow(3)];

    std::vector<float> c_simd(static_cast<size_t>(m) * n, -777.0f);
    std::vector<float> c_scalar(static_cast<size_t>(m) * n, 777.0f);
    GemmInt8PackedEx(m, a.data(), packed, quant, bias.data(), ep, c_simd.data(), n);
    SetGemmForceScalar(true);
    GemmInt8PackedEx(m, a.data(), packed, quant, bias.data(), ep, c_scalar.data(), n);
    SetGemmForceScalar(false);

    for (size_t i = 0; i < c_simd.size(); ++i) {
      ASSERT_NEAR(c_simd[i], c_scalar[i], 1e-4f)
          << "m=" << m << " n=" << n << " k=" << k << " at " << i;
    }
  }
}

// Weight codes must stay inside [-Int8WeightMax(), Int8WeightMax()], the
// per-tier quantization contract: on the maddubs tiers the clamp is what
// makes the pmaddubsw 16-bit pairwise add provably saturation-free; the
// VNNI tier accumulates u8*s8 quads directly in int32 (no 16-bit
// intermediate), so its contract widens to the full ±127 range. With the
// whole ladder in one binary, which contract is in force is a RUNTIME
// question — answered by the dispatch, checked here for the active tier.
TEST(Int8KernelTest, WeightCodesRespectSaturationBound) {
  Tensor b = RandomTensor(TensorShape{1, 1, 24, 50}, 77, -3.0f, 3.0f);
  Int8PackedFilters packed;
  PackFilterPanelsInt8(b.data(), 24, 50, &packed);
  for (int8_t code : packed.data) {
    ASSERT_GE(code, -Int8WeightMax());
    ASSERT_LE(code, Int8WeightMax());
  }
  if (std::string(ActiveInt8KernelName()) == "avx512vnni-vpdpbusd") {
    // vpdpbusd never saturates; the full int8 range must be in play.
    ASSERT_EQ(Int8WeightMax(), 127);
  } else {
    // The worst-case pmaddubsw pair cannot saturate int16.
    ASSERT_LT(2 * 255 * Int8WeightMax(), 32768);
  }
}

// ------------------------------------------------ conv-level error bounds --

// int8 conv output must sit within the analytic quantization error bound of
// the float naive oracle: |err| <= sum_k |a| * s_w + sum_k |w| * s_a +
// K * s_a * s_w (coefficient 1 per term absorbs rounding plus the
// zero-point nudge at the range edges).
TEST(Int8ConvTest, MatchesFloatOracleWithinQuantizationBound) {
  Rng shape_rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    const int in_channels = 1 + static_cast<int>(shape_rng.NextBelow(8));
    const int out_channels = 1 + static_cast<int>(shape_rng.NextBelow(2 * GemmNativePanelWidth() + 3));
    const int kernels[] = {1, 3, 5};
    const int kernel = kernels[shape_rng.NextBelow(3)];
    const int stride = 1 + static_cast<int>(shape_rng.NextBelow(2));
    const int pad = static_cast<int>(shape_rng.NextBelow(static_cast<uint64_t>(kernel / 2 + 1)));
    const int min_side = std::max(1, kernel - 2 * pad);
    const int h = min_side + static_cast<int>(shape_rng.NextBelow(10));
    const int w = min_side + static_cast<int>(shape_rng.NextBelow(10));
    const int n = 1 + static_cast<int>(shape_rng.NextBelow(2));

    Rng rng(500 + static_cast<uint64_t>(trial));
    Conv2D conv(in_channels, out_channels, kernel, stride, pad, rng);
    Tensor input = RandomTensor(TensorShape{n, h, w, in_channels},
                                600 + static_cast<uint64_t>(trial));

    conv.set_use_gemm(false);
    Tensor expected = conv.Forward(input);
    conv.set_use_gemm(true);
    conv.SetPrecision(Precision::kInt8);
    Tensor quantized = conv.Forward(input);
    conv.SetPrecision(Precision::kFloat32);

    const int row_len = kernel * kernel * in_channels;
    const ActivationQuant quant = ComputeActivationQuant(input.Min(), input.Max());
    const float amax = std::max(std::abs(input.Min()), std::abs(input.Max()));
    ASSERT_TRUE(expected.shape() == quantized.shape());
    for (int64_t i = 0; i < expected.size(); ++i) {
      const int oc = static_cast<int>(i % out_channels);
      const float s_w = WeightScale(conv.weights().value, oc, row_len);
      float abs_w_sum = 0.0f;
      const float* w_row = conv.weights().value.data() + static_cast<int64_t>(oc) * row_len;
      for (int kk = 0; kk < row_len; ++kk) {
        abs_w_sum += std::abs(w_row[kk]);
      }
      const float bound = static_cast<float>(row_len) * amax * s_w +
                          abs_w_sum * quant.scale +
                          static_cast<float>(row_len) * quant.scale * s_w + 1e-3f;
      ASSERT_LE(std::abs(expected[i] - quantized[i]), bound)
          << conv.Name() << " element " << i;
    }
  }
}

// The fused fire module (squeeze ReLU epilogue + direct concat writes) must
// track its float counterpart closely in int8; unit-range inputs keep the
// quantization error small, so a fixed tolerance is meaningful here.
TEST(Int8FireTest, FusedFireTracksFloatReference) {
  Rng rng(21);
  FireModule fire(16, 4, 16, rng);
  Tensor input = RandomTensor(TensorShape{2, 9, 9, 16}, 22);

  Tensor reference = fire.Forward(input);
  fire.SetPrecision(Precision::kInt8);
  Tensor quantized = fire.Forward(input);
  fire.SetPrecision(Precision::kFloat32);

  // Two stacked quantized convs (squeeze then expand) roughly double the
  // single-conv error; 0.06 observed on the seed shapes.
  EXPECT_LE(MaxAbsDiff(reference, quantized), 0.1f) << fire.Name();
  for (int64_t i = 0; i < quantized.size(); ++i) {
    ASSERT_GE(quantized[i], 0.0f) << "int8 fused ReLU let a negative through";
  }
}

// ------------------------------------------------- int8 pack-cache tests --

TEST(Int8PackedCacheTest, SetWeightsInvalidatesInt8Pack) {
  Rng rng(31);
  Conv2D conv(3, 10, 1, 1, 0, rng);
  conv.SetPrecision(Precision::kInt8);
  Tensor input = RandomTensor(TensorShape{1, 6, 6, 3}, 32);
  Tensor before = conv.Forward(input);

  Tensor new_weights = RandomTensor(conv.weights().value.shape(), 33);
  Tensor new_bias = RandomTensor(conv.bias().value.shape(), 34);
  conv.SetWeights(new_weights, new_bias);
  Tensor after = conv.Forward(input);
  EXPECT_GT(MaxAbsDiff(before, after), 1e-3f) << "stale int8 pack survived SetWeights";

  // The refreshed pack must re-quantize the *new* weights: compare against
  // the float oracle within a loose quantization tolerance.
  conv.SetPrecision(Precision::kFloat32);
  conv.set_use_gemm(false);
  Tensor oracle = conv.Forward(input);
  EXPECT_LE(MaxAbsDiff(oracle, after), 0.05f);
}

TEST(Int8PackedCacheTest, OptimizerStepInvalidatesInt8Pack) {
  Rng rng(41);
  Conv2D conv(2, 6, 3, 1, 1, rng);
  conv.SetPrecision(Precision::kInt8);
  Tensor input = RandomTensor(TensorShape{1, 7, 7, 2}, 42);
  Tensor before = conv.Forward(input);

  conv.weights().grad.Fill(0.5f);
  conv.bias().grad.Fill(0.25f);
  SgdConfig config;
  config.learning_rate = 0.1f;
  config.momentum = 0.0f;
  config.max_grad_norm = 0.0f;
  SgdOptimizer optimizer(conv.Parameters(), config);
  optimizer.Step();

  Tensor after = conv.Forward(input);
  EXPECT_GT(MaxAbsDiff(before, after), 1e-3f)
      << "int8 forward unchanged after optimizer step: stale quantized pack";
}

TEST(Int8PackedCacheTest, ManualMutationRequiresMarkDirty) {
  Rng rng(51);
  Conv2D conv(2, 4, 1, 1, 0, rng);
  conv.SetPrecision(Precision::kInt8);
  Tensor input = RandomTensor(TensorShape{1, 4, 4, 2}, 52);
  Tensor before = conv.Forward(input);

  for (int64_t i = 0; i < conv.weights().value.size(); ++i) {
    conv.weights().value[i] += 1.0f;
  }
  Tensor stale = conv.Forward(input);
  EXPECT_LE(MaxAbsDiff(before, stale), 1e-6f) << "unmarked mutation should hit the cache";

  conv.weights().MarkDirty();
  Tensor fresh = conv.Forward(input);
  EXPECT_GT(MaxAbsDiff(before, fresh), 1e-3f);
}

// -------------------------------------------------------- accuracy guard --

// Quantizing the deployed network must not change its decisions: top-1
// agreement with the float path on a deterministic synthetic ad/non-ad
// batch stays >= 99%, and every logit stays within a fixed tolerance. The
// int8 kernels are exact integer math, so this guard is deterministic for a
// given seed on every SIMD tier.
TEST(Int8AccuracyGuardTest, TopOneAgreementAndLogitTolerance) {
  const PercivalNetConfig config = TestProfile();
  Network float_net = BuildPercivalNet(config);
  Network int8_net = BuildPercivalNet(config);  // same init_seed -> same weights
  int8_net.SetPrecision(Precision::kInt8);
  float_net.SetTrainingMode(false);
  int8_net.SetTrainingMode(false);

  const int kBatch = 64;
  Rng rng(123);
  std::vector<Bitmap> images;
  images.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    if (i % 2 == 0) {
      AdImageOptions options;
      images.push_back(GenerateAdImage(rng, options));
    } else {
      ContentImageOptions options;
      images.push_back(GenerateContentImage(rng, options));
    }
  }

  Tensor batch(kBatch, config.input_size, config.input_size, config.input_channels);
  for (int i = 0; i < kBatch; ++i) {
    BitmapToTensorInto(images[static_cast<size_t>(i)], config.input_size,
                       config.input_channels, batch.SampleData(i));
  }

  Tensor float_logits = float_net.Forward(batch);
  Tensor int8_logits = int8_net.Forward(batch);
  ASSERT_TRUE(float_logits.shape() == int8_logits.shape());

  int agree = 0;
  float worst_logit_diff = 0.0f;
  for (int i = 0; i < kBatch; ++i) {
    if (float_logits.ArgMaxInSample(i) == int8_logits.ArgMaxInSample(i)) {
      ++agree;
    }
    for (int c = 0; c < config.classes; ++c) {
      worst_logit_diff = std::max(
          worst_logit_diff, std::abs(float_logits.at(i, 0, 0, c) - int8_logits.at(i, 0, 0, c)));
    }
  }
  const double agreement = static_cast<double>(agree) / kBatch;
  EXPECT_GE(agreement, 0.99) << "int8 flipped " << (kBatch - agree) << " of " << kBatch
                             << " top-1 decisions";
  EXPECT_LE(worst_logit_diff, 0.05f) << "int8 logits drifted past the guard tolerance";
}

// Precision is a runtime switch: the same network must produce float-exact
// results again after switching back from int8.
TEST(Int8PrecisionModeTest, SwitchingBackRestoresFloatPath) {
  const PercivalNetConfig config = TestProfile();
  Network net = BuildPercivalNet(config);
  net.SetTrainingMode(false);
  Tensor input = RandomTensor(config.InputShape(), 9, 0.0f, 1.0f);

  Tensor float_before = net.Forward(input);
  net.SetPrecision(Precision::kInt8);
  Tensor int8_out = net.Forward(input);
  net.SetPrecision(Precision::kFloat32);
  Tensor float_after = net.Forward(input);

  EXPECT_EQ(MaxAbsDiff(float_before, float_after), 0.0f);
  EXPECT_GT(MaxAbsDiff(float_before, int8_out), 0.0f);  // int8 really ran
}

}  // namespace
}  // namespace percival
