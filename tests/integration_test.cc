// Integration tests: the full stack wired together — synthetic web ->
// EasyList -> renderer -> trained classifier -> blocking decisions — plus
// the cross-module invariants from DESIGN.md §7.
#include <gtest/gtest.h>

#include "src/core/classifier.h"
#include "src/crawler/pipeline_crawler.h"
#include "src/img/draw.h"
#include "src/renderer/renderer.h"
#include "src/train/trainer.h"
#include "src/webgen/ad_network.h"
#include "src/webgen/adgen.h"
#include "src/webgen/contentgen.h"
#include "src/webgen/facebook.h"
#include "src/webgen/sitegen.h"

namespace percival {
namespace {

// Shared fixture: trains one small classifier on crawled data and reuses it
// across tests (training is the expensive step).
class EndToEndFixture : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    ecosystem_ = new AdEcosystemConfig();
    ecosystem_->network_count = 6;
    ecosystem_->listed_fraction = 1.0;
    networks_ = new std::vector<AdNetwork>(BuildAdNetworks(*ecosystem_));
    SiteGenConfig site_config;
    site_config.seed = 2024;
    site_config.cue_dropout = 0.05;
    generator_ = new SiteGenerator(site_config, *networks_);
    easylist_ = new FilterEngine();
    easylist_->AddList(BuildSyntheticEasyList(*networks_));

    profile_ = new PercivalNetConfig(TestProfile());
    PipelineCrawlConfig crawl;
    crawl.sites = 10;
    crawl.pages_per_site = 2;
    Dataset dataset = RunPipelineCrawl(*generator_, EasyListLabeller(*easylist_), crawl, nullptr);
    dataset.Deduplicate();
    dataset.Balance();
    Rng rng(1);
    dataset.Shuffle(rng);

    net_ = new Network(BuildPercivalNet(*profile_));
    TrainConfig train;
    train.epochs = 14;
    train.batch_size = 12;
    train.sgd.learning_rate = 0.01f;
    train.sgd.lr_decay_every_epochs = 8;
    train.sgd.lr_decay_factor = 0.3f;
    TrainClassifier(*net_, *profile_, dataset, train);
  }

  static void TearDownTestSuite() {
    delete net_;
    delete profile_;
    delete easylist_;
    delete generator_;
    delete networks_;
    delete ecosystem_;
  }

  static AdEcosystemConfig* ecosystem_;
  static std::vector<AdNetwork>* networks_;
  static SiteGenerator* generator_;
  static FilterEngine* easylist_;
  static PercivalNetConfig* profile_;
  static Network* net_;
};

AdEcosystemConfig* EndToEndFixture::ecosystem_ = nullptr;
std::vector<AdNetwork>* EndToEndFixture::networks_ = nullptr;
SiteGenerator* EndToEndFixture::generator_ = nullptr;
FilterEngine* EndToEndFixture::easylist_ = nullptr;
PercivalNetConfig* EndToEndFixture::profile_ = nullptr;
Network* EndToEndFixture::net_ = nullptr;

// Rebuilds a classifier around the shared trained weights.
AdClassifier MakeClassifier() {
  Network copy = BuildPercivalNet(*EndToEndFixture::profile_);
  std::vector<Parameter*> dst = copy.Parameters();
  std::vector<Parameter*> src = EndToEndFixture::net_->Parameters();
  for (size_t i = 0; i < dst.size(); ++i) {
    dst[i]->value = src[i]->value;
  }
  return AdClassifier(std::move(copy), *EndToEndFixture::profile_);
}

TEST_F(EndToEndFixture, TrainedModelSeparatesAdsFromContent) {
  AdClassifier classifier = MakeClassifier();
  Rng rng(9);
  ConfusionMatrix matrix;
  for (int i = 0; i < 30; ++i) {
    Rng ad_rng = rng.Fork();
    AdImageOptions ad_options;
    ad_options.cue_dropout = 0.05;
    Bitmap ad = GenerateAdImage(ad_rng, ad_options);
    matrix.Record(true, classifier.Classify(ad).is_ad);

    Rng content_rng = rng.Fork();
    ContentImageOptions content_options;
    content_options.kind = SampleContentKind(content_rng, 0.0);
    Bitmap content = GenerateContentImage(content_rng, content_options);
    matrix.Record(false, classifier.Classify(content).is_ad);
  }
  EXPECT_GT(matrix.Accuracy(), 0.75) << matrix.Summary();
}

TEST_F(EndToEndFixture, RenderingWithPercivalBlocksMostAdImages) {
  AdClassifier classifier = MakeClassifier();
  int ads_seen = 0;
  int ads_blocked = 0;
  int content_blocked = 0;
  int content_seen = 0;
  for (int page_index = 0; page_index < 4; ++page_index) {
    WebPage page = generator_->GeneratePage(20 + page_index, 0);
    RenderOptions options;
    options.interceptor = &classifier;
    RenderResult result = RenderPage(page, options);
    for (const ImageOutcome& outcome : result.image_outcomes) {
      if (!outcome.decoded) {
        continue;
      }
      if (outcome.is_ad) {
        ++ads_seen;
        ads_blocked += outcome.blocked_by_percival ? 1 : 0;
      } else {
        ++content_seen;
        content_blocked += outcome.blocked_by_percival ? 1 : 0;
      }
    }
  }
  ASSERT_GT(ads_seen, 0);
  ASSERT_GT(content_seen, 0);
  EXPECT_GT(static_cast<double>(ads_blocked) / ads_seen, 0.5);
  EXPECT_LT(static_cast<double>(content_blocked) / content_seen, 0.5);
}

TEST_F(EndToEndFixture, PercivalCatchesLongTailAdsEasyListMisses) {
  // Rebuild the web with partial list coverage: PERCIVAL must block ads
  // from unlisted networks (its core value proposition as a complement).
  AdEcosystemConfig partial;
  partial.network_count = 10;
  partial.listed_fraction = 0.4;
  partial.seed = 5;
  std::vector<AdNetwork> networks = BuildAdNetworks(partial);
  bool has_unlisted = false;
  for (const AdNetwork& network : networks) {
    has_unlisted |= !network.listed;
  }
  ASSERT_TRUE(has_unlisted);

  SiteGenConfig site_config;
  site_config.seed = 31337;
  site_config.cue_dropout = 0.05;
  SiteGenerator generator(site_config, networks);
  FilterEngine partial_list;
  partial_list.AddList(BuildSyntheticEasyList(networks));

  AdClassifier classifier = MakeClassifier();
  int unlisted_ads_decoded = 0;
  int unlisted_ads_blocked_by_percival = 0;
  for (int page_index = 0; page_index < 6; ++page_index) {
    WebPage page = generator.GeneratePage(page_index, 0);
    RenderOptions options;
    options.filter = &partial_list;
    options.interceptor = &classifier;
    RenderResult result = RenderPage(page, options);
    for (const ImageOutcome& outcome : result.image_outcomes) {
      if (outcome.is_ad && outcome.decoded) {
        // This ad got past the filter list (unlisted network).
        ++unlisted_ads_decoded;
        unlisted_ads_blocked_by_percival += outcome.blocked_by_percival ? 1 : 0;
      }
    }
  }
  ASSERT_GT(unlisted_ads_decoded, 0) << "partial coverage must leak some ads";
  EXPECT_GT(static_cast<double>(unlisted_ads_blocked_by_percival) / unlisted_ads_decoded, 0.4);
}

TEST_F(EndToEndFixture, BlockingDecisionsAreIndependentPerImage) {
  // Cross-boundary blocking is impossible by construction: classifying the
  // same bitmap twice (alone, or surrounded by other classifications) gives
  // the same decision.
  AdClassifier classifier = MakeClassifier();
  Rng rng(77);
  AdImageOptions options;
  Bitmap ad = GenerateAdImage(rng, options);
  const bool alone = classifier.Classify(ad).is_ad;
  for (int i = 0; i < 5; ++i) {
    Rng content_rng = rng.Fork();
    ContentImageOptions content_options;
    Bitmap content = GenerateContentImage(content_rng, content_options);
    classifier.Classify(content);
    EXPECT_EQ(classifier.Classify(ad).is_ad, alone);
  }
}

TEST_F(EndToEndFixture, DomObfuscationDoesNotEvadePercival) {
  // An adversarial publisher wraps the ad in obfuscated DOM (no ad-like
  // classes, extra nesting); the filter list's cosmetic rules miss it, but
  // the pixels still pass through the choke point.
  Rng rng(88);
  AdImageOptions ad_options;
  ad_options.cue_dropout = 0.0;
  Bitmap creative = GenerateAdImage(rng, ad_options);
  WebPage page;
  page.url = "https://sneaky.example/";
  page.html =
      "<div class=\"x1\"><div class=\"x2\"><div class=\"x3\">"
      "<img src=\"https://sneaky.example/totally-organic.img\" width=\"150\" height=\"125\"/>"
      "</div></div></div>";
  WebResource resource;
  resource.type = ResourceType::kImage;
  resource.bytes = EncodePif(creative);
  resource.is_ad = true;
  page.resources["https://sneaky.example/totally-organic.img"] = resource;

  FilterEngine list;
  list.AddList(BuildSyntheticEasyList(*networks_));
  AdClassifier classifier = MakeClassifier();
  RenderOptions options;
  options.filter = &list;  // list sees nothing to block (first-party, no class)
  options.interceptor = &classifier;
  RenderResult result = RenderPage(page, options);
  EXPECT_EQ(result.stats.requests_blocked_by_filter, 0);
  EXPECT_EQ(result.stats.elements_hidden_by_filter, 0);
  ASSERT_EQ(result.image_outcomes.size(), 1u);
  EXPECT_TRUE(result.image_outcomes[0].decoded);
  EXPECT_TRUE(result.image_outcomes[0].blocked_by_percival);
}

TEST_F(EndToEndFixture, ResourceExhaustionDummyElementsDoNotBlowUp) {
  // A publisher injects thousands of dummy DOM elements (§2.2's resource
  // exhaustion attack on element-based blockers). PERCIVAL's cost scales
  // with decoded images, not DOM nodes.
  std::string html = "<body>";
  for (int i = 0; i < 3000; ++i) {
    html += "<div class=\"junk\"></div>";
  }
  html += "<img src=\"https://cdn.example/one.pif\" width=\"32\" height=\"32\"/></body>";
  WebPage page;
  page.url = "https://exhaust.example/";
  page.html = html;
  WebResource resource;
  resource.type = ResourceType::kImage;
  resource.bytes = EncodePif(Bitmap(32, 32, Color{50, 60, 70, 255}));
  page.resources["https://cdn.example/one.pif"] = resource;

  AdClassifier classifier = MakeClassifier();
  RenderOptions options;
  options.interceptor = &classifier;
  options.render_framebuffer = false;
  RenderResult result = RenderPage(page, options);
  EXPECT_EQ(classifier.stats().classified, 1);  // one image, one inference
  EXPECT_EQ(result.stats.images_decoded, 1);
}

TEST_F(EndToEndFixture, FacebookFeedRenderAndBlock) {
  FacebookSessionConfig config;
  config.seed = 41;
  config.feed_posts = 20;
  config.right_column_ads = 3;
  WebPage page = BuildFacebookPage(config);
  AdClassifier classifier = MakeClassifier();
  RenderOptions options;
  options.interceptor = &classifier;
  RenderResult result = RenderPage(page, options);
  EXPECT_EQ(result.stats.images_decoded, 23);
  // The classifier must engage (some blocking happens) without wiping the
  // whole feed.
  EXPECT_GT(result.stats.frames_blocked, 0);
  EXPECT_LT(result.stats.frames_blocked, result.stats.frames_decoded);
}

TEST_F(EndToEndFixture, AsyncModeSecondVisitConverges) {
  AdClassifier classifier = MakeClassifier();
  AsyncAdClassifier async(classifier);
  WebPage page = generator_->GeneratePage(30, 0);

  RenderOptions options;
  options.interceptor = &async;
  options.render_framebuffer = false;
  RenderResult first = RenderPage(page, options);
  EXPECT_EQ(first.stats.frames_blocked, 0);  // first visit renders everything
  async.DrainPending();

  RenderResult second = RenderPage(page, options);
  // Second visit: memoized ad decisions now block.
  RenderOptions sync_options;
  sync_options.interceptor = &classifier;
  sync_options.render_framebuffer = false;
  classifier.ResetStats();
  RenderResult sync = RenderPage(page, sync_options);
  EXPECT_EQ(second.stats.frames_blocked, sync.stats.frames_blocked);
}

}  // namespace
}  // namespace percival
