// Property tests over randomly generated pages: layout invariants, the
// choke-point counting invariant, filter monotonicity at render level, and
// the §6 element-memoization feature.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/base/rng.h"
#include "src/img/codec.h"
#include "src/renderer/html_parser.h"
#include "src/renderer/layout.h"
#include "src/renderer/renderer.h"
#include "src/webgen/ad_network.h"
#include "src/webgen/sitegen.h"

namespace percival {
namespace {

// Counts interceptor invocations per URL and optionally blocks a URL set.
class CountingInterceptor : public ImageInterceptor {
 public:
  bool OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                      const std::string& source_url) override {
    (void)info;
    (void)pixels;
    std::lock_guard<std::mutex> lock(mutex_);
    ++seen_[source_url];
    return block_.count(source_url) > 0;
  }
  void BlockUrl(const std::string& url) { block_.insert(url); }
  const std::map<std::string, int>& seen() const { return seen_; }

 private:
  std::mutex mutex_;
  std::map<std::string, int> seen_;
  std::set<std::string> block_;
};

// Random nested HTML with images; returns the page and its image count.
WebPage RandomPage(Rng& rng, int* image_count) {
  WebPage page;
  page.url = "https://random.example/";
  std::string html = "<body>";
  int images = 0;
  const int blocks = rng.NextInt(1, 8);
  for (int b = 0; b < blocks; ++b) {
    const int depth = rng.NextInt(0, 3);
    for (int d = 0; d < depth; ++d) {
      html += "<div>";
    }
    if (rng.NextBool(0.7)) {
      const std::string url = "https://img.example/" + std::to_string(b) + ".pif";
      html += "<img src=\"" + url + "\" width=\"" + std::to_string(rng.NextInt(8, 64)) +
              "\" height=\"" + std::to_string(rng.NextInt(8, 64)) + "\"/>";
      WebResource resource;
      resource.type = ResourceType::kImage;
      resource.bytes = EncodePif(Bitmap(8, 8, Color{static_cast<uint8_t>(b * 20), 50, 99, 255}));
      resource.latency_ms = rng.NextFloat(1.0f, 50.0f);
      page.resources[url] = std::move(resource);
      ++images;
    } else {
      html += "<p>text block</p>";
    }
    for (int d = 0; d < depth; ++d) {
      html += "</div>";
    }
  }
  html += "</body>";
  page.html = html;
  *image_count = images;
  return page;
}

void CheckLayoutInvariants(const LayoutBox& box) {
  EXPECT_GE(box.rect.w, 0);
  EXPECT_GE(box.rect.h, 0);
  // Flow children of the same parent must not overlap vertically.
  const LayoutBox* previous_flow = nullptr;
  for (const auto& child : box.children) {
    const DomNode* node = child->node;
    const bool absolute = node != nullptr && (node->HasAttr("x") || node->HasAttr("y"));
    if (!absolute && child->rect.h > 0) {
      if (previous_flow != nullptr) {
        EXPECT_GE(child->rect.y, previous_flow->rect.Bottom())
            << "flow children overlap vertically";
      }
      previous_flow = child.get();
    }
    CheckLayoutInvariants(*child);
  }
}

TEST(RendererPropertyTest, LayoutInvariantsHoldOnRandomTrees) {
  Rng rng(71);
  for (int trial = 0; trial < 80; ++trial) {
    int images = 0;
    WebPage page = RandomPage(rng, &images);
    DomTree dom = ParseHtml(page.html);
    auto layout = ComputeLayout(*dom, 512);
    CheckLayoutInvariants(*layout);
    EXPECT_GE(DocumentHeight(*layout), 0);
  }
}

TEST(RendererPropertyTest, ChokePointCountsEqualDistinctImages) {
  // Property: on any random page, the interceptor runs exactly once per
  // distinct fetched image URL per decoded frame (here all single-frame).
  Rng rng(72);
  for (int trial = 0; trial < 40; ++trial) {
    int images = 0;
    WebPage page = RandomPage(rng, &images);
    CountingInterceptor interceptor;
    RenderOptions options;
    options.interceptor = &interceptor;
    RenderResult result = RenderPage(page, options);
    EXPECT_EQ(static_cast<int>(interceptor.seen().size()), result.stats.images_decoded);
    for (const auto& [url, count] : interceptor.seen()) {
      EXPECT_EQ(count, 1) << url;
    }
  }
}

TEST(RendererPropertyTest, FilterOnlyEverReducesWork) {
  // With any rule set, enabling the filter must not increase requests
  // fetched, images decoded, or render time components tied to fetching.
  Rng rng(73);
  std::vector<AdNetwork> networks = BuildAdNetworks(AdEcosystemConfig{});
  SiteGenerator generator(SiteGenConfig{}, networks);
  FilterEngine filter;
  filter.AddList(BuildSyntheticEasyList(networks));
  for (int trial = 0; trial < 10; ++trial) {
    WebPage page = generator.GeneratePage(trial, 0);
    RenderOptions plain;
    plain.render_framebuffer = false;
    RenderResult unfiltered = RenderPage(page, plain);
    RenderOptions filtered = plain;
    filtered.filter = &filter;
    RenderResult with_filter = RenderPage(page, filtered);
    EXPECT_LE(with_filter.stats.images_decoded, unfiltered.stats.images_decoded);
    EXPECT_LE(with_filter.metrics.fetch_ms, unfiltered.metrics.fetch_ms + 1e-9);
  }
}

TEST(RendererPropertyTest, ElementMemoizationHidesContainersOnRevisit) {
  // §6 feature: first visit blocks in-raster (dangling container remains in
  // layout); second visit with the remembered URL set hides the container
  // entirely and skips the fetch.
  WebPage page;
  page.url = "https://memo.example/";
  page.html =
      "<div class=\"story\"><p>caption text</p>"
      "<img src=\"https://ads.example/a.pif\" width=\"16\" height=\"16\"/></div>";
  WebResource resource;
  resource.type = ResourceType::kImage;
  resource.bytes = EncodePif(Bitmap(16, 16, Color{200, 0, 0, 255}));
  page.resources["https://ads.example/a.pif"] = resource;

  CountingInterceptor interceptor;
  interceptor.BlockUrl("https://ads.example/a.pif");
  RenderOptions first_visit;
  first_visit.interceptor = &interceptor;
  RenderResult first = RenderPage(page, first_visit);
  EXPECT_EQ(first.stats.frames_blocked, 1);
  EXPECT_EQ(first.stats.elements_hidden_by_memo, 0);

  // Remember what was blocked; revisit.
  std::set<std::string> remembered;
  for (const ImageOutcome& outcome : first.image_outcomes) {
    if (outcome.blocked_by_percival) {
      remembered.insert(outcome.url);
    }
  }
  ASSERT_EQ(remembered.size(), 1u);
  RenderOptions revisit;
  revisit.interceptor = &interceptor;
  revisit.remembered_blocked_urls = &remembered;
  RenderResult second = RenderPage(page, revisit);
  EXPECT_EQ(second.stats.elements_hidden_by_memo, 1);
  EXPECT_EQ(second.stats.images_decoded, 0);  // fetch skipped entirely
  EXPECT_EQ(second.stats.requests, 0);
}

TEST(RendererPropertyTest, RenderTimeComponentsAreNonNegativeAndAdditive) {
  Rng rng(74);
  for (int trial = 0; trial < 20; ++trial) {
    int images = 0;
    WebPage page = RandomPage(rng, &images);
    RenderResult result = RenderPage(page, RenderOptions{});
    const PageMetrics& m = result.metrics;
    EXPECT_GE(m.parse_ms, 0.0);
    EXPECT_GE(m.fetch_ms, 0.0);
    EXPECT_GE(m.script_ms, 0.0);
    EXPECT_GE(m.raster_ms, 0.0);
    EXPECT_NEAR(m.dom_complete, m.parse_ms + m.fetch_ms + m.script_ms + m.raster_ms, 1e-9);
  }
}

TEST(RendererPropertyTest, HtmlParserNeverCrashesOnRandomMarkup) {
  Rng rng(75);
  static const char kAlphabet[] = "<>/=\"' abcdiv";
  for (int trial = 0; trial < 1500; ++trial) {
    std::string html;
    const int length = rng.NextInt(0, 60);
    for (int i = 0; i < length; ++i) {
      html += kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)];
    }
    DomTree dom = ParseHtml(html);
    ASSERT_NE(dom, nullptr);
    EXPECT_GE(dom->SubtreeSize(), 1);
  }
}

}  // namespace
}  // namespace percival
