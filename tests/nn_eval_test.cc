// Tests for the eval-mode forward: outputs identical to training mode, no
// backward state retained (ReLU masks, pool argmax, conv input copies),
// loud Backward rejection, and an allocation-free steady state for the
// frozen deployment path (AdClassifier constructs its network in eval
// mode).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/base/rng.h"
#include "src/core/classifier.h"
#include "src/core/model.h"
#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/fire.h"
#include "src/nn/gemm.h"
#include "src/nn/network.h"
#include "src/nn/pool.h"

namespace percival {
namespace {

Tensor RandomTensor(const TensorShape& shape, uint64_t seed) {
  Tensor tensor(shape);
  Rng rng(seed);
  for (int64_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = rng.NextFloat(-1.0f, 1.0f);
  }
  return tensor;
}

Network MakeStack(Rng& rng) {
  Network net;
  net.Add<Conv2D>(3, 12, 3, 1, 1, rng, "conv1");
  net.Add<Relu>();
  net.Add<MaxPool2D>(2, 2);
  net.Add<FireModule>(12, 4, 8, rng, "fire1");
  net.Add<GlobalAvgPool>();
  net.Add<Softmax>();
  return net;
}

// Eval mode elides bookkeeping only — every layer's outputs must be
// bit-identical to the training-mode forward.
TEST(EvalModeTest, ForwardOutputsIdenticalToTrainingMode) {
  Rng rng(3);
  Network net = MakeStack(rng);
  Tensor input = RandomTensor(TensorShape{2, 12, 12, 3}, 4);

  net.SetTrainingMode(true);
  Tensor train_out = net.Forward(input);
  net.SetTrainingMode(false);
  Tensor eval_out = net.Forward(input);

  ASSERT_TRUE(train_out.shape() == eval_out.shape());
  for (int64_t i = 0; i < train_out.size(); ++i) {
    ASSERT_EQ(train_out[i], eval_out[i]) << "eval forward diverged at " << i;
  }
}

TEST(EvalModeTest, BackwardInEvalModeFailsLoudly) {
  Rng rng(5);
  Network net = MakeStack(rng);
  net.SetTrainingMode(false);
  Tensor input = RandomTensor(TensorShape{1, 8, 8, 3}, 6);
  net.Forward(input);
  Tensor grad = RandomTensor(net.OutputShape(input.shape()), 7);
  EXPECT_DEATH(net.Backward(grad), "eval mode");
}

TEST(EvalModeTest, LayerLevelBackwardAlsoRejected) {
  Rng rng(8);
  Conv2D conv(2, 4, 3, 1, 1, rng);
  conv.SetTrainingMode(false);
  Tensor input = RandomTensor(TensorShape{1, 6, 6, 2}, 9);
  Tensor out = conv.Forward(input);
  EXPECT_DEATH(conv.Backward(out), "eval mode");

  Relu relu;
  relu.SetTrainingMode(false);
  Tensor activated = relu.Forward(out);
  EXPECT_DEATH(relu.Backward(activated), "eval mode");

  MaxPool2D pool(2, 2);
  pool.SetTrainingMode(false);
  Tensor pooled = pool.Forward(activated);
  EXPECT_DEATH(pool.Backward(pooled), "eval mode");
}

// An eval forward must drop previously captured backward state, not merely
// stop refreshing it: after one eval pass, flipping back to training and
// calling Backward without a new forward dies on the cleared ReLU mask.
TEST(EvalModeTest, EvalForwardClearsCapturedBackwardState) {
  Rng rng(10);
  Network net = MakeStack(rng);
  Tensor input = RandomTensor(TensorShape{1, 8, 8, 3}, 11);

  net.SetTrainingMode(true);
  net.Forward(input);  // captures masks/argmax
  net.SetTrainingMode(false);
  net.Forward(input);  // must clear them
  net.SetTrainingMode(true);
  Tensor grad = RandomTensor(net.OutputShape(input.shape()), 12);
  EXPECT_DEATH(net.Backward(grad), "PCHECK");
}

// Same invariant per layer for the state the stack test cannot isolate: an
// eval forward clears Conv2D's last_input_ copy — a stale same-shaped copy
// would let a train-mode Backward silently compute gradients against the
// previous batch.
TEST(EvalModeTest, ConvEvalForwardClearsLastInput) {
  Rng rng(20);
  Conv2D conv(3, 6, 3, 1, 1, rng);
  Tensor first = RandomTensor(TensorShape{1, 6, 6, 3}, 21);
  Tensor second = RandomTensor(TensorShape{1, 6, 6, 3}, 22);

  conv.SetTrainingMode(true);
  conv.Forward(first);  // captures last_input_
  conv.SetTrainingMode(false);
  conv.Forward(second);  // must clear it, not keep the stale copy
  conv.SetTrainingMode(true);
  Tensor grad = RandomTensor(conv.OutputShape(first.shape()), 23);
  EXPECT_DEATH(conv.Backward(grad), "PCHECK");
}

// And Softmax's retained output (its only backward state).
TEST(EvalModeTest, SoftmaxEvalForwardClearsLastOutput) {
  Softmax softmax;
  Tensor logits = RandomTensor(TensorShape{2, 1, 1, 4}, 24);

  softmax.SetTrainingMode(true);
  softmax.Forward(logits);
  softmax.SetTrainingMode(false);
  softmax.Forward(logits);
  softmax.SetTrainingMode(true);
  Tensor grad = RandomTensor(TensorShape{2, 1, 1, 4}, 25);
  EXPECT_DEATH(softmax.Backward(grad), "PCHECK");
}

// The frozen deployment path: after PlanForward, eval-mode forwards perform
// zero arena growth from the first inference on — in float and in int8.
TEST(EvalModeTest, EvalForwardIsArenaAllocationFree) {
  Rng rng(13);
  Network net = MakeStack(rng);
  net.SetTrainingMode(false);

  for (Precision precision : {Precision::kFloat32, Precision::kInt8}) {
    net.SetPrecision(precision);
    const TensorShape input_shape{1, 16, 16, 3};
    net.PlanForward(input_shape);
    const size_t reserved = LocalArena().CapacityFloats();
    Tensor input = RandomTensor(input_shape, 14);
    for (int i = 0; i < 3; ++i) {
      net.Forward(input);
      ASSERT_EQ(LocalArena().CapacityFloats(), reserved)
          << "forward grew the arena (precision "
          << (precision == Precision::kInt8 ? "int8" : "float32") << ")";
    }
  }
}

TEST(EvalModeTest, AdClassifierConstructsInEvalMode) {
  const PercivalNetConfig config = TestProfile();
  AdClassifier classifier(BuildPercivalNet(config), config);
  EXPECT_FALSE(classifier.network().training());
  EXPECT_EQ(classifier.precision(), Precision::kFloat32);

  // And the precision switch reaches the deployed network: int8 changes the
  // produced probabilities (quantization is visible), float restores them.
  Rng rng(17);
  Tensor probe = RandomTensor(config.InputShape(), 18);
  Tensor float_out = classifier.network().Forward(probe);
  classifier.SetPrecision(Precision::kInt8);
  Tensor int8_out = classifier.network().Forward(probe);
  EXPECT_EQ(classifier.precision(), Precision::kInt8);
  float worst = 0.0f;
  for (int64_t i = 0; i < float_out.size(); ++i) {
    worst = std::max(worst, std::abs(float_out[i] - int8_out[i]));
  }
  EXPECT_GT(worst, 0.0f);
}

// The thread-local u8 preprocessing buffer tracks the planned input: a
// burst of large batches grows it, but once single-frame classification
// resumes the buffer releases the burst capacity instead of pinning peak
// memory for the life of the thread — and then holds steady in steady
// state (no churn, no regrowth).
TEST(EvalModeTest, ClassifierCodeBufferShrinksAfterLargeBatch) {
  const PercivalNetConfig config = TestProfile();
  AdClassifier classifier(BuildPercivalNet(config), config);
  classifier.SetPrecision(Precision::kInt8);
  ASSERT_TRUE(classifier.u8_direct_active());

  const size_t frame_bytes = static_cast<size_t>(config.InputShape().Elements());

  std::vector<Bitmap> bitmaps;
  for (int i = 0; i < 8; ++i) {
    bitmaps.emplace_back(40, 40, Color{static_cast<uint8_t>(20 * i + 5),
                                       static_cast<uint8_t>(150 - 10 * i), 90, 255});
  }
  std::vector<const Bitmap*> batch;
  for (const Bitmap& b : bitmaps) batch.push_back(&b);
  classifier.ClassifyBatch(batch);
  EXPECT_GE(ClassifierCodeBufferCapacity(), 8 * frame_bytes)
      << "batch preprocessing should have grown the code buffer";

  classifier.Classify(bitmaps[0]);
  EXPECT_LE(ClassifierCodeBufferCapacity(), 2 * frame_bytes)
      << "code buffer failed to shrink after the batch burst";

  const size_t steady = ClassifierCodeBufferCapacity();
  for (int i = 0; i < 4; ++i) {
    classifier.Classify(bitmaps[static_cast<size_t>(i)]);
    EXPECT_EQ(ClassifierCodeBufferCapacity(), steady)
        << "steady-state single-frame classification churned the code buffer";
  }
}

// New layers added after the mode switch inherit the network's mode.
TEST(EvalModeTest, AddedLayersInheritEvalMode) {
  Rng rng(19);
  Network net;
  net.SetTrainingMode(false);
  net.Add<Relu>();
  Tensor input = RandomTensor(TensorShape{1, 4, 4, 2}, 20);
  net.Forward(input);
  net.SetTrainingMode(true);  // network flag flips, but the mask was never built
  EXPECT_DEATH(net.Backward(input), "PCHECK");
}

}  // namespace
}  // namespace percival
