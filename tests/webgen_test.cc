// Synthetic-web generator tests: ad/content imagery, languages, ad networks
// and the generated EasyList, site pages, Facebook feed, image search.
#include <gtest/gtest.h>

#include <set>

#include "src/filter/engine.h"
#include "src/img/codec.h"
#include "src/img/draw.h"
#include "src/webgen/ad_network.h"
#include "src/webgen/adgen.h"
#include "src/webgen/contentgen.h"
#include "src/webgen/facebook.h"
#include "src/webgen/language.h"
#include "src/webgen/search.h"
#include "src/webgen/sitegen.h"

namespace percival {
namespace {

TEST(AdGenTest, DeterministicForSeed) {
  AdImageOptions options;
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(GenerateAdImage(a, options), GenerateAdImage(b, options));
}

TEST(AdGenTest, SlotSizesMatchIabGeometry) {
  int w = 0;
  int h = 0;
  AdSlotSize(AdSlotKind::kBanner, &w, &h);
  EXPECT_EQ(w, 320);
  EXPECT_EQ(h, 100);
  AdSlotSize(AdSlotKind::kSkyscraper, &w, &h);
  EXPECT_GT(h, w);  // portrait unit
}

TEST(AdGenTest, ImageHasContent) {
  Rng rng(6);
  Bitmap ad = GenerateAdImage(rng, AdImageOptions{});
  EXPECT_GT(NonBackgroundFraction(ad, Color{255, 255, 255, 255}), 0.2);
}

class AdLanguageTest : public ::testing::TestWithParam<Language> {};

TEST_P(AdLanguageTest, GeneratesForEveryLanguage) {
  Rng rng(7);
  AdImageOptions options;
  options.language = GetParam();
  Bitmap ad = GenerateAdImage(rng, options);
  EXPECT_GT(ad.width(), 0);
  EXPECT_GT(NonBackgroundFraction(ad, Color{255, 255, 255, 255}), 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllLanguages, AdLanguageTest,
                         ::testing::Values(Language::kEnglish, Language::kArabic,
                                           Language::kSpanish, Language::kFrench,
                                           Language::kKorean, Language::kChinese,
                                           Language::kPortuguese, Language::kGerman));

TEST(LanguageTest, CjkMarketsRelyMoreOnText) {
  EXPECT_GT(TextOnlyAdProbability(Language::kKorean),
            TextOnlyAdProbability(Language::kEnglish));
  EXPECT_GT(TextOnlyAdProbability(Language::kChinese),
            TextOnlyAdProbability(Language::kFrench));
}

TEST(LanguageTest, Fig9CoversFivePaperLanguages) {
  EXPECT_EQ(Fig9Languages().size(), 5u);
}

TEST(ContentGenTest, AllKindsRender) {
  for (ContentKind kind : {ContentKind::kLandscape, ContentKind::kPortrait,
                           ContentKind::kTexture, ContentKind::kDocument,
                           ContentKind::kProductPhoto}) {
    Rng rng(static_cast<uint64_t>(kind) + 10);
    ContentImageOptions options;
    options.kind = kind;
    Bitmap image = GenerateContentImage(rng, options);
    EXPECT_GT(image.width(), 0);
    EXPECT_GT(image.height(), 0);
  }
}

TEST(ContentGenTest, SampleKindRespectsProductProbability) {
  Rng rng(11);
  int products = 0;
  for (int i = 0; i < 2000; ++i) {
    if (SampleContentKind(rng, 0.1) == ContentKind::kProductPhoto) {
      ++products;
    }
  }
  EXPECT_GT(products, 120);
  EXPECT_LT(products, 300);
}

TEST(AdNetworkTest, BuildsConfiguredCount) {
  AdEcosystemConfig config;
  config.network_count = 8;
  config.listed_fraction = 1.0;
  std::vector<AdNetwork> networks = BuildAdNetworks(config);
  EXPECT_EQ(networks.size(), 8u);
  for (const AdNetwork& network : networks) {
    EXPECT_TRUE(network.listed);
    EXPECT_NE(network.host.find(".example"), std::string::npos);
  }
}

TEST(AdNetworkTest, PartialCoverageLeavesLongTail) {
  AdEcosystemConfig config;
  config.network_count = 40;
  config.listed_fraction = 0.5;
  std::vector<AdNetwork> networks = BuildAdNetworks(config);
  int listed = 0;
  for (const AdNetwork& network : networks) {
    listed += network.listed ? 1 : 0;
  }
  EXPECT_GT(listed, 8);
  EXPECT_LT(listed, 32);
}

TEST(EasyListGenTest, RulesParseAndBlockListedNetworks) {
  AdEcosystemConfig config;
  config.listed_fraction = 1.0;
  std::vector<AdNetwork> networks = BuildAdNetworks(config);
  FilterEngine engine;
  engine.AddList(BuildSyntheticEasyList(networks));
  EXPECT_GT(engine.network_rule_count(), 0);
  EXPECT_GT(engine.cosmetic_rule_count(), 0);
  for (const AdNetwork& network : networks) {
    RequestContext request;
    request.url = Url::Parse("https://" + network.host + network.path_prefix + "x.pif");
    request.page_host = "news-site-1.example";
    request.type = ResourceType::kImage;
    EXPECT_TRUE(engine.ShouldBlockRequest(request).blocked) << network.host;
  }
}

TEST(EasyListGenTest, BenignCdnWhitelisted) {
  std::vector<AdNetwork> networks = BuildAdNetworks(AdEcosystemConfig{});
  FilterEngine engine;
  engine.AddList(BuildSyntheticEasyList(networks));
  RequestContext request;
  // This URL matches the "/adimg/*.pif$image" style path rules but is on
  // the whitelisted static CDN.
  request.url = Url::Parse("https://static.sitecdn.example/adimg/photo.pif");
  request.page_host = "news-site-1.example";
  request.type = ResourceType::kImage;
  EXPECT_FALSE(engine.ShouldBlockRequest(request).blocked);
}

TEST(SiteGenTest, DeterministicPages) {
  SiteGenerator generator(SiteGenConfig{}, BuildAdNetworks(AdEcosystemConfig{}));
  WebPage a = generator.GeneratePage(3, 4);
  WebPage b = generator.GeneratePage(3, 4);
  EXPECT_EQ(a.html, b.html);
  EXPECT_EQ(a.resources.size(), b.resources.size());
}

TEST(SiteGenTest, PagesContainAdsAndContent) {
  SiteGenerator generator(SiteGenConfig{}, BuildAdNetworks(AdEcosystemConfig{}));
  int ads = 0;
  int non_ads = 0;
  for (int page_index = 0; page_index < 5; ++page_index) {
    WebPage page = generator.GeneratePage(0, page_index);
    for (const auto& [url, resource] : page.resources) {
      if (resource.type == ResourceType::kImage) {
        (resource.is_ad ? ads : non_ads) += 1;
      }
    }
  }
  EXPECT_GT(ads, 0);
  EXPECT_GT(non_ads, 0);
}

TEST(SiteGenTest, AdImagesDecodable) {
  SiteGenerator generator(SiteGenConfig{}, BuildAdNetworks(AdEcosystemConfig{}));
  WebPage page = generator.GeneratePage(1, 1);
  for (const auto& [url, resource] : page.resources) {
    if (resource.type == ResourceType::kImage) {
      EXPECT_TRUE(DecodeFirstFrame(resource.bytes).has_value()) << url;
    }
  }
}

TEST(SiteGenTest, DifferentPagesDiffer) {
  SiteGenerator generator(SiteGenConfig{}, BuildAdNetworks(AdEcosystemConfig{}));
  EXPECT_NE(generator.GeneratePage(0, 0).html, generator.GeneratePage(0, 1).html);
  EXPECT_NE(generator.GeneratePage(0, 0).html, generator.GeneratePage(1, 0).html);
}

TEST(FacebookTest, SessionMixMatchesConfig) {
  FacebookSessionConfig config;
  config.feed_posts = 200;
  config.right_column_ads = 6;
  std::vector<FeedItem> items = GenerateFacebookSession(config);
  EXPECT_EQ(items.size(), 206u);
  int sponsored = 0;
  int right_column = 0;
  int brand = 0;
  for (const FeedItem& item : items) {
    switch (item.slot) {
      case FeedSlot::kSponsoredPost:
        ++sponsored;
        EXPECT_TRUE(item.is_ad);
        break;
      case FeedSlot::kRightColumnAd:
        ++right_column;
        EXPECT_TRUE(item.is_ad);
        break;
      case FeedSlot::kBrandPost:
        ++brand;
        EXPECT_FALSE(item.is_ad);
        break;
      case FeedSlot::kOrganicPost:
        EXPECT_FALSE(item.is_ad);
        break;
    }
  }
  EXPECT_EQ(right_column, 6);
  EXPECT_GT(sponsored, 10);
  EXPECT_GT(brand, 10);
}

TEST(FacebookTest, PageUsesObfuscatedClassesForFeedPosts) {
  FacebookSessionConfig config;
  config.feed_posts = 30;
  WebPage page = BuildFacebookPage(config);
  // No stable ad-container class should appear in the feed markup.
  for (const std::string& klass : AdContainerClasses()) {
    EXPECT_EQ(page.html.find("class=\"" + klass + "\""), std::string::npos) << klass;
  }
  // And two sessions rotate their obfuscated names.
  FacebookSessionConfig other = config;
  other.seed = config.seed + 1;
  EXPECT_NE(BuildFacebookPage(other).html, page.html);
}

TEST(SearchTest, Fig13QueriesPresent) {
  std::vector<SearchQueryProfile> queries = Fig13Queries();
  ASSERT_EQ(queries.size(), 7u);
  std::set<std::string> names;
  for (const SearchQueryProfile& profile : queries) {
    names.insert(profile.query);
  }
  EXPECT_TRUE(names.count("Obama"));
  EXPECT_TRUE(names.count("Advertisement"));
  EXPECT_TRUE(names.count("iPhone"));
}

TEST(SearchTest, AdIntentControlsMix) {
  SearchQueryProfile low;
  low.query = "low";
  low.ad_intent = 0.05;
  SearchQueryProfile high;
  high.query = "high";
  high.ad_intent = 0.9;
  int low_ads = 0;
  int high_ads = 0;
  for (const SearchResultImage& result : GenerateSearchResults(low, 200, 1)) {
    low_ads += (result.is_ad && *result.is_ad) ? 1 : 0;
  }
  for (const SearchResultImage& result : GenerateSearchResults(high, 200, 1)) {
    high_ads += (result.is_ad && *result.is_ad) ? 1 : 0;
  }
  EXPECT_LT(low_ads, 30);
  EXPECT_GT(high_ads, 150);
}

TEST(SearchTest, UnlabelableQueriesWithholdTruth) {
  SearchQueryProfile profile;
  profile.query = "Shoes";
  profile.ad_intent = 0.5;
  profile.labelable = false;
  for (const SearchResultImage& result : GenerateSearchResults(profile, 20, 2)) {
    EXPECT_FALSE(result.is_ad.has_value());
  }
}

}  // namespace
}  // namespace percival
