// Unit tests for src/base: rng, hashing, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "src/base/hash.h"
#include "src/base/rng.h"
#include "src/base/stopwatch.h"
#include "src/base/thread_pool.h"

namespace percival {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.NextInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianHasRoughlyZeroMeanUnitVariance) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ForkIsIndependentOfParentFollowup) {
  Rng parent(42);
  Rng child = parent.Fork();
  const uint64_t child_first = child.NextU64();
  // Re-create the same sequence: forking at the same state gives the same
  // child stream.
  Rng parent2(42);
  Rng child2 = parent2.Fork();
  EXPECT_EQ(child2.NextU64(), child_first);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(5);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = values;
  rng.Shuffle(values);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(HashTest, StableAndSensitive) {
  EXPECT_EQ(HashString("percival"), HashString("percival"));
  EXPECT_NE(HashString("percival"), HashString("percivaL"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashTest, BytesMatchString) {
  const std::string text = "hello world";
  EXPECT_EQ(HashString(text), HashBytes(text.data(), text.size()));
}

TEST(HashTest, CombineNotCommutative) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&hits](int i) { hits[static_cast<size_t>(i)].fetch_add(1); });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPoolTest, NestedSubmissionCompletes) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch timer;
  const double first = timer.ElapsedUs();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + i;
  }
  EXPECT_GE(timer.ElapsedUs(), first);
}

}  // namespace
}  // namespace percival
