// Tests for the requantize-in-epilogue engine and the zero-float dataflow
// plan: bit-exactness of GemmInt8PackedExU8 against the templated scalar
// oracle on every compiled SIMD tier at both panel widths, the defining
// identity (requant store == float store + QuantizeActivations, to the
// byte), plan engagement/inertness across calibration states, bit-identical
// logits between the zero-float plan and the float-staged int8 path, a
// steady-state counter proof that a planned frame allocates no float
// activation tensor and no heap between codes-in and logits-out, and the
// 64-image float-vs-int8 accuracy guard re-run with the plan active.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/base/rng.h"
#include "src/core/model.h"
#include "src/img/resize.h"
#include "src/nn/gemm.h"
#include "src/nn/network.h"
#include "src/nn/tensor.h"
#include "src/webgen/adgen.h"
#include "src/webgen/contentgen.h"

namespace percival {
namespace {

Tensor RandomTensor(const TensorShape& shape, uint64_t seed, float lo = -1.0f,
                    float hi = 1.0f) {
  Tensor tensor(shape);
  Rng rng(seed);
  for (int64_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = rng.NextFloat(lo, hi);
  }
  return tensor;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.shape() == b.shape());
  float worst = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

struct RequantCase {
  int m = 0;
  int n = 0;
  int k = 0;
  int panel_width = GemmNativePanelWidth();
  GemmEpilogue epilogue = GemmEpilogue::kBias;
  ActivationQuant quant;
  ActivationQuant out_quant;
  std::vector<uint8_t> a;
  Int8PackedFilters packed;
  Tensor b;
  Tensor bias;
};

RequantCase MakeCase(Rng& shape_rng, int trial, int panel_width) {
  RequantCase c;
  c.m = 1 + static_cast<int>(shape_rng.NextBelow(23));
  c.n = 1 + static_cast<int>(shape_rng.NextBelow(2 * GemmNativePanelWidth() + 7));
  c.k = 1 + static_cast<int>(shape_rng.NextBelow(70));
  c.panel_width = panel_width;

  c.b = RandomTensor(TensorShape{1, 1, c.n, c.k}, 900 + static_cast<uint64_t>(trial));
  PackFilterPanelsInt8(c.b.data(), c.n, c.k, &c.packed, panel_width);

  Rng code_rng(4000 + static_cast<uint64_t>(trial));
  c.a.assign(static_cast<size_t>(c.m) * c.packed.k_padded, 0);
  for (auto& v : c.a) {
    v = static_cast<uint8_t>(code_rng.NextBelow(256));
  }
  c.quant.scale = 0.01f + 0.05f * static_cast<float>(code_rng.NextBelow(10));
  c.quant.zero_point = static_cast<int32_t>(code_rng.NextBelow(256));
  // Output quantization under which the epilogue requantizes — including
  // tight scales that exercise the [0, 255] saturation paths.
  c.out_quant.scale = 0.002f + 0.03f * static_cast<float>(code_rng.NextBelow(8));
  c.out_quant.zero_point = static_cast<int32_t>(code_rng.NextBelow(256));
  c.bias = RandomTensor(TensorShape{1, 1, 1, c.n}, 1100 + static_cast<uint64_t>(trial));

  const GemmEpilogue eps[] = {GemmEpilogue::kNone, GemmEpilogue::kBias,
                              GemmEpilogue::kBiasRelu};
  c.epilogue = eps[shape_rng.NextBelow(3)];
  return c;
}

// ------------------------------------------- kernel-level exact parity ----

// The requantizing epilogue must be BIT-exact (not merely close) between the
// compiled intrinsic tier and the templated scalar oracle: codes are the
// network's dataflow currency, and a single off-by-one code would propagate
// through every downstream layer. Runs both panel widths.
TEST(RequantKernelTest, IntrinsicMatchesScalarOracleExactly) {
  Rng shape_rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    for (const int pw : {kGemmTileNMin, GemmNativePanelWidth()}) {
      RequantCase c = MakeCase(shape_rng, trial * 2 + (pw == GemmNativePanelWidth() ? 1 : 0), pw);

      std::vector<uint8_t> u8_simd(static_cast<size_t>(c.m) * c.n, 0xAA);
      std::vector<uint8_t> u8_scalar(static_cast<size_t>(c.m) * c.n, 0x55);
      GemmInt8PackedExU8(c.m, c.a.data(), c.packed, c.quant, c.bias.data(), c.epilogue,
                         c.out_quant, u8_simd.data(), c.n);
      SetGemmForceScalar(true);
      GemmInt8PackedExU8(c.m, c.a.data(), c.packed, c.quant, c.bias.data(), c.epilogue,
                         c.out_quant, u8_scalar.data(), c.n);
      SetGemmForceScalar(false);

      for (size_t i = 0; i < u8_simd.size(); ++i) {
        ASSERT_EQ(u8_simd[i], u8_scalar[i])
            << "m=" << c.m << " n=" << c.n << " k=" << c.k << " pw=" << pw << " at " << i;
      }
    }
  }
}

// The defining identity of the requant sink: requantize-in-epilogue is a
// fused float-store + QuantizeActivations, byte-for-byte — on the intrinsic
// tier AND the scalar oracle, at both panel widths. This is what lets the
// zero-float network plan claim bit-identical logits to the staged path.
TEST(RequantKernelTest, RequantEqualsFloatStorePlusQuantize) {
  Rng shape_rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    for (const int pw : {kGemmTileNMin, GemmNativePanelWidth()}) {
      for (const bool force_scalar : {false, true}) {
        RequantCase c = MakeCase(shape_rng, 100 + trial * 4 + (pw == GemmNativePanelWidth() ? 2 : 0) +
                                                (force_scalar ? 1 : 0),
                                 pw);

        SetGemmForceScalar(force_scalar);
        std::vector<uint8_t> fused(static_cast<size_t>(c.m) * c.n, 0);
        GemmInt8PackedExU8(c.m, c.a.data(), c.packed, c.quant, c.bias.data(), c.epilogue,
                           c.out_quant, fused.data(), c.n);
        std::vector<float> floats(static_cast<size_t>(c.m) * c.n, 0.0f);
        GemmInt8PackedEx(c.m, c.a.data(), c.packed, c.quant, c.bias.data(), c.epilogue,
                         floats.data(), c.n);
        SetGemmForceScalar(false);
        std::vector<uint8_t> staged(static_cast<size_t>(c.m) * c.n, 0);
        QuantizeActivations(floats.data(), static_cast<int64_t>(floats.size()), c.out_quant,
                            staged.data());

        for (size_t i = 0; i < fused.size(); ++i) {
          ASSERT_EQ(fused[i], staged[i])
              << "m=" << c.m << " n=" << c.n << " k=" << c.k << " pw=" << pw
              << " scalar=" << force_scalar << " at " << i;
        }
      }
    }
  }
}

// ------------------------------------------------- network dataflow plan --

// Captures interior activation calibrations with a couple of float
// forwards, the precondition for any requant link.
void Calibrate(Network& net, const TensorShape& shape) {
  net.SetCalibrationCapture(true);
  net.Forward(RandomTensor(shape, 71, 0.0f, 1.0f));
  net.Forward(RandomTensor(shape, 72, 0.0f, 1.0f));
  net.SetCalibrationCapture(false);
}

// Without interior calibration no consumer qualifies, so the plan must stay
// inert and the staged int8 path runs exactly as before.
TEST(DataflowPlanTest, PlanInertWithoutCalibration) {
  const PercivalNetConfig config = TestProfile();
  Network net = BuildPercivalNet(config);
  net.SetTrainingMode(false);
  net.SetPrecision(Precision::kInt8);
  net.Forward(RandomTensor(config.InputShape(), 81, 0.0f, 1.0f));
  EXPECT_EQ(net.RequantLinkCount(), 0u);
}

// With calibration the plan must engage (conv1 plus every fire module feeds
// a calibrated int8 consumer) — and disengage again when the global knob is
// off or capture mode resumes, both of which re-plan on the next forward.
TEST(DataflowPlanTest, PlanEngagesWithCalibrationAndHonorsKnob) {
  const PercivalNetConfig config = TestProfile();
  Network net = BuildPercivalNet(config);
  net.SetTrainingMode(false);
  Calibrate(net, config.InputShape());
  net.SetPrecision(Precision::kInt8);
  Tensor input = RandomTensor(config.InputShape(), 82, 0.0f, 1.0f);

  net.Forward(input);
  EXPECT_GE(net.RequantLinkCount(), 2u) << "calibrated net did not form requant links";

  SetDataflowRequantEnabled(false);
  net.Forward(input);
  EXPECT_EQ(net.RequantLinkCount(), 0u) << "knob off must fall back to the staged path";
  SetDataflowRequantEnabled(true);

  net.SetCalibrationCapture(true);
  net.Forward(input);
  EXPECT_EQ(net.RequantLinkCount(), 0u) << "capture mode must run float forwards";
  net.SetCalibrationCapture(false);
}

// The headline contract: the zero-float plan produces BIT-identical logits
// to the float-staged int8 forward. Every link in the chain is exact — the
// requant store equals float store + QuantizeActivations, ReLU/MaxPool
// commute with the monotone quantization map, and the fire module's
// quantized squeeze hop reproduces the staged expand-side quantization.
TEST(DataflowPlanTest, ZeroFloatPlanBitIdenticalToStagedInt8) {
  const PercivalNetConfig config = TestProfile();
  Network net = BuildPercivalNet(config);
  net.SetTrainingMode(false);
  Calibrate(net, config.InputShape());
  net.SetPrecision(Precision::kInt8);

  for (int trial = 0; trial < 4; ++trial) {
    Tensor input = RandomTensor(config.InputShape(), 90 + static_cast<uint64_t>(trial),
                                0.0f, 1.0f);
    SetDataflowRequantEnabled(false);
    Tensor staged = net.Forward(input);
    ASSERT_EQ(net.RequantLinkCount(), 0u);
    SetDataflowRequantEnabled(true);
    Tensor zero_float = net.Forward(input);
    ASSERT_GE(net.RequantLinkCount(), 2u);

    ASSERT_TRUE(staged.shape() == zero_float.shape());
    for (int64_t i = 0; i < staged.size(); ++i) {
      ASSERT_EQ(staged[i], zero_float[i]) << "logit " << i << " diverged on trial " << trial;
    }
  }
}

// Same identity through the u8-direct entry (codes in from preprocessing):
// ForwardQuantized under the plan matches ForwardQuantized with the plan
// disabled, bitwise.
TEST(DataflowPlanTest, QuantizedEntryBitIdenticalToStagedInt8) {
  const PercivalNetConfig config = TestProfile();
  Network net = BuildPercivalNet(config);
  net.SetTrainingMode(false);
  Calibrate(net, config.InputShape());
  net.SetPrecision(Precision::kInt8);

  float lo = 0.0f;
  float hi = 1.0f;
  ASSERT_TRUE(net.layer(0).InputCalibration(&lo, &hi));
  const ActivationQuant quant = ComputeActivationQuant(lo, hi);
  Tensor input = RandomTensor(config.InputShape(), 95, 0.0f, 1.0f);
  std::vector<uint8_t> codes(static_cast<size_t>(input.size()));
  QuantizeActivations(input.data(), input.size(), quant, codes.data());
  QuantizedTensorView view{codes.data(), input.shape(), quant.scale, quant.zero_point};

  SetDataflowRequantEnabled(false);
  Tensor staged = net.ForwardQuantized(view);
  SetDataflowRequantEnabled(true);
  Tensor zero_float = net.ForwardQuantized(view);
  ASSERT_GE(net.RequantLinkCount(), 2u);

  ASSERT_TRUE(staged.shape() == zero_float.shape());
  for (int64_t i = 0; i < staged.size(); ++i) {
    ASSERT_EQ(staged[i], zero_float[i]) << "logit " << i;
  }
}

// Counter proof of the zero-float claim: in steady state a planned
// ForwardQuantized constructs only the two tail tensors past the last code
// consumer (conv_final's output and the global-average-pool logits — a few
// dozen floats), grows no arena, and grows no code buffer. No feature-map
// float tensor and no heap allocation exist between codes-in and
// logits-out.
TEST(DataflowPlanTest, SteadyStateAllocatesNoFloatActivationTensor) {
  const PercivalNetConfig config = TestProfile();
  Network net = BuildPercivalNet(config);
  net.SetTrainingMode(false);
  Calibrate(net, config.InputShape());
  net.SetPrecision(Precision::kInt8);

  float lo = 0.0f;
  float hi = 1.0f;
  ASSERT_TRUE(net.layer(0).InputCalibration(&lo, &hi));
  const ActivationQuant quant = ComputeActivationQuant(lo, hi);
  Tensor input = RandomTensor(config.InputShape(), 97, 0.0f, 1.0f);
  std::vector<uint8_t> codes(static_cast<size_t>(input.size()));
  QuantizeActivations(input.data(), input.size(), quant, codes.data());
  QuantizedTensorView view{codes.data(), input.shape(), quant.scale, quant.zero_point};

  // Warm up: plan, size the code buffers, pack the weights, grow the arena.
  net.ForwardQuantized(view);
  net.ForwardQuantized(view);
  ASSERT_GE(net.RequantLinkCount(), 2u);

  const size_t arena_before = LocalArena().CapacityFloats();
  const size_t code_capacity_before = net.CodeBufferCapacity();
  const TensorAllocStats before = GetTensorAllocStats();
  Tensor logits = net.ForwardQuantized(view);
  const TensorAllocStats after = GetTensorAllocStats();

  EXPECT_EQ(LocalArena().CapacityFloats(), arena_before) << "steady-state forward grew the arena";
  EXPECT_EQ(net.CodeBufferCapacity(), code_capacity_before)
      << "steady-state forward grew the code buffers";
  // conv_final's output + the GAP logits; anything more means a float
  // activation tensor existed on the code path.
  EXPECT_LE(after.constructions - before.constructions, 2u);
  const uint64_t tail_elements =
      static_cast<uint64_t>(net.OutputShape(input.shape()).Elements()) +
      static_cast<uint64_t>(logits.size()) * 16;  // conv_final map is tiny vs any feature map
  EXPECT_LE(after.elements - before.elements, tail_elements + 64)
      << "a float activation tensor was allocated between codes and logits";
}

// -------------------------------------------------------- accuracy guard --

// The 64-image float-vs-int8 accuracy guard, re-run with the zero-float
// plan active: quantized decisions must still agree with float >= 99% and
// every logit stays inside the tolerance — i.e. the dataflow plan changes
// WHERE quantization happens (in the epilogue), never WHAT it computes.
TEST(RequantAccuracyGuardTest, TopOneAgreementWithZeroFloatPlanActive) {
  const PercivalNetConfig config = TestProfile();
  Network float_net = BuildPercivalNet(config);
  Network int8_net = BuildPercivalNet(config);  // same init_seed -> same weights
  float_net.SetTrainingMode(false);
  int8_net.SetTrainingMode(false);

  const int kBatch = 64;
  Rng rng(123);
  std::vector<Bitmap> images;
  images.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    if (i % 2 == 0) {
      AdImageOptions options;
      images.push_back(GenerateAdImage(rng, options));
    } else {
      ContentImageOptions options;
      images.push_back(GenerateContentImage(rng, options));
    }
  }

  Tensor batch(kBatch, config.input_size, config.input_size, config.input_channels);
  for (int i = 0; i < kBatch; ++i) {
    BitmapToTensorInto(images[static_cast<size_t>(i)], config.input_size,
                       config.input_channels, batch.SampleData(i));
  }

  // Calibrate on the real batch, then flip to int8 with the plan engaged.
  int8_net.SetCalibrationCapture(true);
  int8_net.Forward(batch);
  int8_net.SetCalibrationCapture(false);
  int8_net.SetPrecision(Precision::kInt8);

  Tensor float_logits = float_net.Forward(batch);
  Tensor int8_logits = int8_net.Forward(batch);
  ASSERT_GE(int8_net.RequantLinkCount(), 2u) << "guard must run with the plan active";
  ASSERT_TRUE(float_logits.shape() == int8_logits.shape());

  int agree = 0;
  float worst_logit_diff = 0.0f;
  for (int i = 0; i < kBatch; ++i) {
    if (float_logits.ArgMaxInSample(i) == int8_logits.ArgMaxInSample(i)) {
      ++agree;
    }
    for (int c = 0; c < config.classes; ++c) {
      worst_logit_diff = std::max(
          worst_logit_diff, std::abs(float_logits.at(i, 0, 0, c) - int8_logits.at(i, 0, 0, c)));
    }
  }
  const double agreement = static_cast<double>(agree) / kBatch;
  EXPECT_GE(agreement, 0.99) << "zero-float plan flipped " << (kBatch - agree) << " of "
                             << kBatch << " top-1 decisions";
  EXPECT_LE(worst_logit_diff, 0.05f) << "zero-float logits drifted past the guard tolerance";
  (void)MaxAbsDiff;
}

// GAP-on-codes guard: when the link is enabled the final conv's requantized
// store feeds GlobalAvgPool directly as codes — one more requant link, no
// float activation tensor before pooling. The average moves into code
// space, so logits are NOT bit-identical to the staged path; this 64-image
// >= 99% top-1 agreement guard is the CI gate the default rides on.
// GapCodesMode::kAuto (the shipping default) links only trailer-supplied
// GAP ranges: live-captured ranges stay staged, a LoadCalibration round
// trip arms the link, and kForceOff remains the opt-out.
TEST(RequantAccuracyGuardTest, TopOneAgreementWithGapOnCodes) {
  ASSERT_TRUE(GetGapCodesMode() == GapCodesMode::kAuto)
      << "GAP-on-codes must ship in kAuto (trailer-armed) mode";
  const PercivalNetConfig config = TestProfile();
  Network float_net = BuildPercivalNet(config);
  Network int8_net = BuildPercivalNet(config);  // same init_seed -> same weights
  float_net.SetTrainingMode(false);
  int8_net.SetTrainingMode(false);

  const int kBatch = 64;
  Rng rng(321);
  std::vector<Bitmap> images;
  images.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    if (i % 2 == 0) {
      AdImageOptions options;
      images.push_back(GenerateAdImage(rng, options));
    } else {
      ContentImageOptions options;
      images.push_back(GenerateContentImage(rng, options));
    }
  }
  Tensor batch(kBatch, config.input_size, config.input_size, config.input_channels);
  for (int i = 0; i < kBatch; ++i) {
    BitmapToTensorInto(images[static_cast<size_t>(i)], config.input_size,
                       config.input_channels, batch.SampleData(i));
  }

  // Calibration also captures GAP's input range — the slot the GAP link
  // needs to derive conv_final's emit quantization.
  int8_net.SetCalibrationCapture(true);
  int8_net.Forward(batch);
  int8_net.SetCalibrationCapture(false);
  int8_net.SetPrecision(Precision::kInt8);

  int8_net.Forward(batch);
  const size_t links_without_gap = int8_net.RequantLinkCount();

  SetGapCodesEnabled(true);  // kForceOn: links even this live-captured range
  Tensor float_logits = float_net.Forward(batch);
  Tensor int8_logits = int8_net.Forward(batch);  // mode change forces a re-plan
  const size_t links_with_gap = int8_net.RequantLinkCount();
  SetGapCodesMode(GapCodesMode::kAuto);  // restore the shipping default

  ASSERT_GT(links_with_gap, links_without_gap)
      << "GAP-on-codes did not add the conv_final -> global_avgpool link";
  ASSERT_TRUE(float_logits.shape() == int8_logits.shape());

  int agree = 0;
  for (int i = 0; i < kBatch; ++i) {
    if (float_logits.ArgMaxInSample(i) == int8_logits.ArgMaxInSample(i)) {
      ++agree;
    }
  }
  const double agreement = static_cast<double>(agree) / kBatch;
  EXPECT_GE(agreement, 0.99) << "GAP-on-codes flipped " << (kBatch - agree) << " of "
                             << kBatch << " top-1 decisions";

  // kAuto links exactly the trailer-supplied population: round-tripping the
  // captured entries through LoadCalibration (what a PCVW v2 trailer load
  // does) arms the link with no force mode in play...
  ASSERT_TRUE(int8_net.LoadCalibration(int8_net.CollectCalibration()));
  int8_net.Forward(batch);
  EXPECT_EQ(int8_net.RequantLinkCount(), links_with_gap)
      << "kAuto did not link GAP for a trailer-supplied range";
  // ...and kForceOff is the documented opt-out back to the old default.
  SetGapCodesEnabled(false);
  int8_net.Forward(batch);
  EXPECT_EQ(int8_net.RequantLinkCount(), links_without_gap)
      << "kForceOff did not unlink GAP";
  SetGapCodesMode(GapCodesMode::kAuto);
}

}  // namespace
}  // namespace percival
