// Sans-IO serving engine + shard router coverage.
//
// The engine half runs entirely on a FAKE clock with caller-owned buffers
// and fabricated classification results — if any of these tests needed a
// real thread, file, or wall-clock read to pass, the sans-IO contract would
// be broken. The adapter half pins bit-identical decisions between a
// caller-driven engine loop and AsyncAdClassifier, the near-duplicate
// accuracy guard that gates ServingPolicy::near_dup_enabled, and per-shard
// fault isolation in the multi-model router.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/base/faultpoint.h"
#include "src/base/rng.h"
#include "src/core/classifier.h"
#include "src/core/model.h"
#include "src/core/model_zoo.h"
#include "src/img/bitmap.h"
#include "src/img/phash.h"
#include "src/img/resize.h"
#include "src/nn/serialize.h"
#include "src/serve/engine.h"
#include "src/serve/shard_router.h"
#include "src/webgen/adgen.h"
#include "src/webgen/contentgen.h"

namespace percival {
namespace {

constexpr int64_t kMs = 1'000'000;

// Deterministic distinct bitmaps (same scheme as the robustness suite):
// unique ids <=> unique pixel hashes, with the id stamped into pixel (0,0).
Bitmap MakeBitmap(int id) {
  Bitmap bitmap(16, 12);
  for (int y = 0; y < bitmap.height(); ++y) {
    for (int x = 0; x < bitmap.width(); ++x) {
      bitmap.SetPixel(x, y,
                      Color{static_cast<uint8_t>((id * 37 + x) & 0xff),
                            static_cast<uint8_t>((id * 101 + y) & 0xff),
                            static_cast<uint8_t>(id & 0xff), 255});
    }
  }
  bitmap.SetPixel(0, 0,
                  Color{static_cast<uint8_t>(id & 0xff), static_cast<uint8_t>((id >> 8) & 0xff),
                        static_cast<uint8_t>((id >> 16) & 0xff), 255});
  return bitmap;
}

// 64x64 bitmap of 8x8 pure black/white blocks, block i = bit i of `bits`.
// AverageHash downsamples exactly one block per output cell, so for a mixed
// pattern (some blocks of each color) flipping k blocks moves the two
// images' perceptual hashes exactly k Hamming bits apart — each test
// asserts that distance explicitly before relying on it.
Bitmap MakeBlockBitmap(uint64_t bits) {
  Bitmap bitmap(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      const int block = (y / 8) * 8 + (x / 8);
      const uint8_t v = ((bits >> block) & 1) ? 255 : 0;
      bitmap.SetPixel(x, y, Color{v, v, v, 255});
    }
  }
  return bitmap;
}

// Small deterministic per-pixel jitter (+/- 3 per channel): models the same
// creative re-encoded by a second ad network. Empirically moves TestProfile
// AverageHash by 0-8 bits on webgen creatives.
Bitmap Jitter(const Bitmap& source, int seed) {
  Bitmap out(source.width(), source.height());
  for (int y = 0; y < source.height(); ++y) {
    for (int x = 0; x < source.width(); ++x) {
      Color c = source.GetPixel(x, y);
      uint8_t* channels[3] = {&c.r, &c.g, &c.b};
      for (int k = 0; k < 3; ++k) {
        const int d = ((x * 7 + y * 13 + seed * 31 + k) % 7) - 3;
        const int v = std::clamp(static_cast<int>(*channels[k]) + d, 0, 255);
        *channels[k] = static_cast<uint8_t>(v);
      }
      out.SetPixel(x, y, c);
    }
  }
  return out;
}

// Downscale to 90% and back: the "same creative served at a slightly
// different slot size" near-duplicate.
Bitmap ResizeRoundTrip(const Bitmap& source) {
  const int w = std::max(1, (source.width() * 9) / 10);
  const int h = std::max(1, (source.height() * 9) / 10);
  return ResizeBilinear(ResizeBilinear(source, w, h), source.width(), source.height());
}

// Fabricated batch results for engine-only tests (no network involved).
std::vector<ClassifyResult> FakeResults(size_t n, bool is_ad, double latency_ms) {
  std::vector<ClassifyResult> results(n);
  for (auto& r : results) {
    r.is_ad = is_ad;
    r.ad_probability = is_ad ? 0.9f : 0.1f;
    r.latency_ms = latency_ms;
  }
  return results;
}

ShardSpec MakeSpec(const std::string& name, ServingPolicy policy = ServingPolicy{}) {
  ShardSpec spec;
  spec.name = name;
  spec.policy = policy;
  return spec;
}

class ServingEngineTest : public ::testing::Test {
 protected:
  void TearDown() override { faultpoint::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Step-loop conformance: a full workload on a fake clock, caller-owned
// buffers, fabricated results — no threads, no files, no wall clock.

TEST_F(ServingEngineTest, StepLoopClassifiesFullWorkloadOnFakeClock) {
  ServingEngine engine;
  engine.SetEmitDecisions(true);
  int64_t now = 1000 * kMs;  // arbitrary fake epoch
  EXPECT_EQ(engine.Step(now), EngineAction::kIdle);
  EXPECT_EQ(engine.next_wake_ns(), -1);

  std::vector<Bitmap> frames;
  std::vector<uint64_t> tickets;
  for (int id = 0; id < 3; ++id) {
    frames.push_back(MakeBitmap(id));
  }
  for (Bitmap& frame : frames) {
    SubmitOutcome outcome = engine.Submit(frame, now);
    ASSERT_EQ(outcome.disposition, SubmitDisposition::kAdmitted);
    EXPECT_FALSE(outcome.is_ad);  // fail-open: uncached renders un-blocked
    engine.ProvidePixels(outcome.ticket, &frame);
    tickets.push_back(outcome.ticket);
  }
  // A duplicate of a queued creative rides the queued work.
  Bitmap duplicate = MakeBitmap(1);
  EXPECT_EQ(engine.Submit(duplicate, now).disposition, SubmitDisposition::kCoalesced);
  EXPECT_EQ(engine.pending_size(), 3);

  // No drain open yet: nothing for the caller to do.
  EXPECT_EQ(engine.Step(now), EngineAction::kIdle);

  ASSERT_TRUE(engine.BeginDrain(now, 0.0));
  int batches = 0;
  while (engine.Step(now) == EngineAction::kRunBatch) {
    EngineBatch batch = engine.BeginBatch(2);
    ASSERT_FALSE(batch.empty());
    engine.CompleteBatch(batch, FakeResults(batch.images.size(), /*is_ad=*/true, 0.25), now);
    ++batches;
    now += kMs;  // fake time advances only because the test says so
  }
  EXPECT_EQ(batches, 2);  // 3 frames at max_batch 2
  EXPECT_FALSE(engine.drain_open());
  EXPECT_EQ(engine.pending_size(), 0);
  EXPECT_EQ(engine.memo_size(), 3);

  // Decisions queued for the event-consuming host, one per admitted frame.
  ASSERT_EQ(engine.Step(now), EngineAction::kEmitDecision);
  std::vector<EngineDecision> decisions = engine.TakeDecisions();
  ASSERT_EQ(decisions.size(), 3u);
  for (const EngineDecision& decision : decisions) {
    EXPECT_TRUE(decision.is_ad);
    EXPECT_NE(std::find(tickets.begin(), tickets.end(), decision.ticket), tickets.end());
  }
  EXPECT_EQ(engine.Step(now), EngineAction::kIdle);
  EXPECT_EQ(engine.next_wake_ns(), -1);

  // The memoized decision now answers at Submit time.
  SubmitOutcome hit = engine.Submit(frames[0], now);
  EXPECT_EQ(hit.disposition, SubmitDisposition::kHitExact);
  EXPECT_TRUE(hit.is_ad);

  const ClassifierStats& stats = engine.stats();
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 4);  // 3 uniques + the coalesced duplicate
  EXPECT_EQ(stats.coalesced, 1);
  EXPECT_EQ(stats.shed, 0);
}

// ---------------------------------------------------------------------------
// Drain budgets run on caller time: an expired budget requeues the tail in
// admission order, and a drain always makes at least one batch of progress.

TEST_F(ServingEngineTest, DrainBudgetRequeuesTailOnFakeClock) {
  ServingEngine engine;
  std::vector<Bitmap> frames;
  std::vector<uint64_t> tickets;
  for (int id = 0; id < 6; ++id) {
    frames.push_back(MakeBitmap(id));
  }
  for (Bitmap& frame : frames) {
    SubmitOutcome outcome = engine.Submit(frame, 0);
    ASSERT_EQ(outcome.disposition, SubmitDisposition::kAdmitted);
    engine.ProvidePixels(outcome.ticket, &frame);
    tickets.push_back(outcome.ticket);
  }

  const int64_t t0 = 0;
  ASSERT_TRUE(engine.BeginDrain(t0, /*budget_ms=*/5.0));
  ASSERT_EQ(engine.Step(t0), EngineAction::kRunBatch);
  EngineBatch first = engine.BeginBatch(2);
  ASSERT_EQ(first.images.size(), 2u);
  // The executor "took" 10ms of caller time — past the 5ms budget.
  engine.CompleteBatch(first, FakeResults(2, false, 0.1), t0 + 10 * kMs);

  // Budget checked between batches: the drain closes and the unprocessed
  // tail is requeued, still in admission order.
  EXPECT_EQ(engine.Step(t0 + 10 * kMs), EngineAction::kIdle);
  EXPECT_FALSE(engine.drain_open());
  EXPECT_EQ(engine.pending_size(), 4);
  EXPECT_EQ(engine.memo_size(), 2);

  std::vector<uint64_t> redrained;
  ASSERT_TRUE(engine.BeginDrain(t0 + 11 * kMs, 0.0));
  while (engine.Step(t0 + 11 * kMs) == EngineAction::kRunBatch) {
    EngineBatch batch = engine.BeginBatch(2);
    redrained.insert(redrained.end(), batch.tickets.begin(), batch.tickets.end());
    engine.CompleteBatch(batch, FakeResults(batch.images.size(), false, 0.1), t0 + 11 * kMs);
  }
  EXPECT_EQ(redrained, std::vector<uint64_t>(tickets.begin() + 2, tickets.end()));

  // At-least-one-batch: a budget that expired before any batch ran still
  // hands one out (a drain may never starve).
  Bitmap extra = MakeBitmap(100);
  SubmitOutcome outcome = engine.Submit(extra, t0);
  engine.ProvidePixels(outcome.ticket, &extra);
  ASSERT_TRUE(engine.BeginDrain(t0, /*budget_ms=*/0.001));
  EXPECT_EQ(engine.Step(t0 + kMs), EngineAction::kRunBatch);
  EngineBatch batch = engine.BeginBatch(4);
  ASSERT_EQ(batch.images.size(), 1u);
  engine.CompleteBatch(batch, FakeResults(1, false, 0.1), t0 + 2 * kMs);
  EXPECT_FALSE(engine.drain_open());
}

// ---------------------------------------------------------------------------
// The degrade ladder trips on fabricated latencies: consecutive
// over-deadline batches shed uncached frames, memo hits still answer, and
// the frame countdown self-heals — all without a real clock.

TEST_F(ServingEngineTest, DegradeLadderRunsOnFabricatedLatency) {
  ServingPolicy policy;
  policy.classify_deadline_ms = 1.0;
  policy.degrade_after_misses = 2;
  policy.recover_after_frames = 3;
  ServingEngine engine(policy);

  std::vector<Bitmap> frames;
  for (int id = 0; id < 8; ++id) {
    frames.push_back(MakeBitmap(id));
  }
  int64_t now = 0;
  // Two single-frame drains whose (fabricated) per-image latency blows the
  // 1ms deadline.
  for (int round = 0; round < 2; ++round) {
    SubmitOutcome outcome = engine.Submit(frames[round], now);
    ASSERT_EQ(outcome.disposition, SubmitDisposition::kAdmitted);
    engine.ProvidePixels(outcome.ticket, &frames[round]);
    ASSERT_TRUE(engine.BeginDrain(now, 0.0));
    ASSERT_EQ(engine.Step(now), EngineAction::kRunBatch);
    EngineBatch batch = engine.BeginBatch(1);
    engine.CompleteBatch(batch, FakeResults(1, true, /*latency_ms=*/5.0), now);
    now += kMs;
  }
  EXPECT_TRUE(engine.degraded());
  EXPECT_EQ(engine.stats().deadline_misses, 2);
  EXPECT_EQ(engine.stats().degrade_transitions, 1);

  // Degraded: a memoized creative still answers from L1 (and counts as one
  // of the recover_after_frames = 3 observed frames)...
  SubmitOutcome hit = engine.Submit(frames[0], now);
  EXPECT_EQ(hit.disposition, SubmitDisposition::kHitExact);
  EXPECT_TRUE(hit.is_ad);
  // ...so of the next uncached frames the first sheds and the second lands
  // exactly on the recovery frame: the engine self-heals and admits it.
  EXPECT_EQ(engine.Submit(frames[2], now).disposition, SubmitDisposition::kShed);
  SubmitOutcome recovered = engine.Submit(frames[3], now);
  EXPECT_EQ(recovered.disposition, SubmitDisposition::kAdmitted);
  EXPECT_FALSE(engine.degraded());
  EXPECT_EQ(engine.stats().degrade_transitions, 2);
  EXPECT_GE(engine.stats().degraded_frames, 2);
  EXPECT_EQ(engine.stats().shed, 1);
}

// ---------------------------------------------------------------------------
// The reload retry/backoff schedule is pure caller time: attempts become
// due exactly at now + backoff * 2^k, next_wake_ns() exposes the schedule,
// and exhaustion/success resolve the reload without a sleep anywhere.

TEST_F(ServingEngineTest, ReloadBackoffScheduleOnFakeClock) {
  ServingPolicy policy;
  policy.reload_max_retries = 2;
  policy.reload_backoff_ms = 10.0;
  ServingEngine engine(policy);

  const int64_t t0 = 500 * kMs;
  engine.RequestReload("/fake/weights.pcvw", t0);
  EXPECT_TRUE(engine.reload_active());
  EXPECT_EQ(engine.ArtifactPath(), "/fake/weights.pcvw");

  // First attempt is due immediately; a failed attempt schedules the next
  // one a (doubling) backoff later.
  ASSERT_EQ(engine.Step(t0), EngineAction::kNeedArtifact);
  engine.ProvideArtifact({}, /*committed=*/false, t0);
  EXPECT_TRUE(engine.reload_active());
  EXPECT_EQ(engine.stats().reload_retries, 1);
  EXPECT_EQ(engine.next_wake_ns(), t0 + 10 * kMs);
  EXPECT_EQ(engine.Step(t0 + 9 * kMs), EngineAction::kIdle);  // not due yet

  ASSERT_EQ(engine.Step(t0 + 10 * kMs), EngineAction::kNeedArtifact);
  engine.ProvideArtifact({}, false, t0 + 10 * kMs);
  EXPECT_EQ(engine.stats().reload_retries, 2);
  EXPECT_EQ(engine.next_wake_ns(), t0 + 30 * kMs);  // backoff doubled to 20ms

  // Third failure exhausts the 2 retries: the reload resolves failed.
  ASSERT_EQ(engine.Step(t0 + 30 * kMs), EngineAction::kNeedArtifact);
  engine.ProvideArtifact({}, false, t0 + 30 * kMs);
  EXPECT_FALSE(engine.reload_active());
  EXPECT_FALSE(engine.reload_succeeded());
  EXPECT_EQ(engine.stats().reload_retries, 2);
  EXPECT_EQ(engine.next_wake_ns(), -1);

  // A committed artifact resolves the reload on the first attempt.
  const int64_t t1 = t0 + 60 * kMs;
  engine.RequestReload("/fake/weights.pcvw", t1);
  ASSERT_EQ(engine.Step(t1), EngineAction::kNeedArtifact);
  engine.ProvideArtifact({1, 2, 3}, /*committed=*/true, t1);
  EXPECT_FALSE(engine.reload_active());
  EXPECT_TRUE(engine.reload_succeeded());
  EXPECT_EQ(engine.stats().reload_retries, 2);  // unchanged
}

// ---------------------------------------------------------------------------
// L2 near-duplicate tier at the exact Hamming boundary: distance == threshold
// hits (and promotes into L1), distance == threshold + 1 rejects.

TEST_F(ServingEngineTest, NearDupHitsAndRejectsAtHammingBoundary) {
  ServingPolicy policy;
  policy.near_dup_enabled = true;
  policy.near_dup_hamming = 3;
  ServingEngine engine(policy);

  constexpr uint64_t kBase = 0xF0F0F0F0F0F0F0F0ULL;  // mixed pattern
  Bitmap base = MakeBlockBitmap(kBase);
  Bitmap near3 = MakeBlockBitmap(kBase ^ 0x7ULL);   // 3 blocks flipped
  Bitmap near4 = MakeBlockBitmap(kBase ^ 0x0FULL);  // 4 blocks flipped
  // The construction's whole point: block flips == perceptual-hash bits.
  ASSERT_EQ(HammingDistance(AverageHash(base), AverageHash(near3)), 3);
  ASSERT_EQ(HammingDistance(AverageHash(base), AverageHash(near4)), 4);

  // Classify the base creative (fabricated: it is an ad) into both tiers.
  // Its own submit probes the still-empty L2 first — an honest reject.
  SubmitOutcome outcome = engine.Submit(base, 0);
  ASSERT_EQ(outcome.disposition, SubmitDisposition::kAdmitted);
  EXPECT_EQ(engine.stats().near_dup_rejects, 1);
  engine.ProvidePixels(outcome.ticket, &base);
  ASSERT_TRUE(engine.BeginDrain(0, 0.0));
  ASSERT_EQ(engine.Step(0), EngineAction::kRunBatch);
  EngineBatch batch = engine.BeginBatch(1);
  engine.CompleteBatch(batch, FakeResults(1, /*is_ad=*/true, 0.1), 0);
  EXPECT_EQ(engine.memo_size(), 1);
  EXPECT_EQ(engine.near_dup_size(), 1);

  // Distance 3 == threshold: perceptual hit, decision reused, exact hash
  // promoted into L1.
  SubmitOutcome hit = engine.Submit(near3, 0);
  EXPECT_EQ(hit.disposition, SubmitDisposition::kHitNearDup);
  EXPECT_TRUE(hit.is_ad);
  EXPECT_EQ(engine.stats().near_dup_hits, 1);
  EXPECT_EQ(engine.memo_size(), 2);

  // The promoted entry answers the next encounter from L1 directly.
  SubmitOutcome promoted = engine.Submit(near3, 0);
  EXPECT_EQ(promoted.disposition, SubmitDisposition::kHitExact);
  EXPECT_TRUE(promoted.is_ad);
  EXPECT_EQ(engine.stats().near_dup_hits, 1);  // no second L2 hit

  // Distance 4 == threshold + 1: rejected, classified normally (fail-open
  // immediate decision).
  SubmitOutcome reject = engine.Submit(near4, 0);
  EXPECT_EQ(reject.disposition, SubmitDisposition::kAdmitted);
  EXPECT_FALSE(reject.is_ad);
  EXPECT_EQ(engine.stats().near_dup_rejects, 2);
}

// ---------------------------------------------------------------------------
// The adapter refactor is behavior-preserving: a caller-driven engine loop
// and AsyncAdClassifier produce bit-identical decisions and ladder counters
// for the same frame schedule (repeats, coalescing, shedding, re-drains).

TEST_F(ServingEngineTest, EngineDecisionsBitIdenticalToAsyncAdClassifier) {
  PercivalNetConfig config = TestProfile();
  AdClassifier engine_inner(BuildPercivalNet(config), config);
  AdClassifier async_inner(BuildPercivalNet(config), config);
  ServingPolicy policy;
  policy.max_pending = 8;  // forces shedding within each 20-frame phase
  policy.max_memo_entries = 64;
  ServingEngine engine(policy);
  AsyncAdClassifier async(async_inner);
  async.SetServingPolicy(policy);

  std::deque<Bitmap> retained;  // node-stable engine-side buffers
  auto submit_engine = [&](const Bitmap& image) {
    SubmitOutcome outcome = engine.Submit(image, 0);
    if (outcome.disposition == SubmitDisposition::kAdmitted) {
      retained.push_back(image);
      engine.ProvidePixels(outcome.ticket, &retained.back());
    }
    return outcome.is_ad;
  };
  auto drain_engine = [&] {
    if (!engine.BeginDrain(0, 0.0)) {
      return;
    }
    while (engine.Step(0) == EngineAction::kRunBatch) {
      EngineBatch batch = engine.BeginBatch(4);
      engine.CompleteBatch(batch, engine_inner.ClassifyBatch(batch.images), 0);
    }
  };

  std::vector<bool> engine_decisions;
  std::vector<bool> async_decisions;
  auto submit_both = [&](int id) {
    Bitmap image = MakeBitmap(id);
    engine_decisions.push_back(submit_engine(image));
    async_decisions.push_back(async.OnDecodedFrame(image.info(), image, "url"));
  };

  // Three phases over the same 20 creatives: phase 1 admits 8 and sheds the
  // rest (plus one mid-phase duplicate that coalesces), later phases mix
  // memo hits with fresh admissions.
  for (int phase = 0; phase < 3; ++phase) {
    for (int id = 0; id < 20; ++id) {
      submit_both(id);
      if (phase == 0 && id == 9) {
        submit_both(3);  // duplicate of a queued creative -> coalesce
      }
    }
    drain_engine();
    async.DrainPending(nullptr, 4);
  }

  ASSERT_EQ(engine_decisions.size(), async_decisions.size());
  for (size_t i = 0; i < engine_decisions.size(); ++i) {
    EXPECT_EQ(engine_decisions[i], async_decisions[i]) << "frame " << i;
  }

  // Same decisions AND the same ladder: every admission/memo counter agrees.
  const ClassifierStats engine_stats = engine.stats();
  const ClassifierStats async_stats = async.stats();
  EXPECT_EQ(engine_stats.cache_hits, async_stats.cache_hits);
  EXPECT_EQ(engine_stats.cache_misses, async_stats.cache_misses);
  EXPECT_EQ(engine_stats.hash_collisions, async_stats.hash_collisions);
  EXPECT_EQ(engine_stats.shed, async_stats.shed);
  EXPECT_EQ(engine_stats.coalesced, async_stats.coalesced);
  EXPECT_EQ(engine_stats.evicted, async_stats.evicted);
  EXPECT_GT(engine_stats.cache_hits, 0);
  EXPECT_GT(engine_stats.shed, 0);
  EXPECT_EQ(engine_stats.coalesced, 1);
  EXPECT_EQ(engine_inner.stats().classified, async_inner.stats().classified);
}

// ---------------------------------------------------------------------------
// The accuracy guard that gates near_dup_enabled: on 64 webgen creatives
// (ads and content alternating) perturbed the two realistic ways — pixel
// jitter and a resize round-trip — L2 hits must agree >= 99% with fresh
// classification, and the tier must actually fire (>= half the suite).

TEST_F(ServingEngineTest, NearDupAccuracyGuard64Images) {
  PercivalNetConfig config = TestProfile();
  AdClassifier inner(BuildPercivalNet(config), config);
  AsyncAdClassifier async(inner);
  AdClassifier oracle(BuildPercivalNet(config), config);
  ServingPolicy policy;
  policy.max_pending = 0;  // unbounded: every original classifies
  policy.near_dup_enabled = true;
  policy.near_dup_hamming = 6;
  async.SetServingPolicy(policy);

  Rng rng(123);
  std::vector<Bitmap> originals;
  originals.reserve(64);
  for (int i = 0; i < 64; ++i) {
    originals.push_back(i % 2 == 0 ? GenerateAdImage(rng, AdImageOptions{})
                                   : GenerateContentImage(rng, ContentImageOptions{}));
  }
  for (Bitmap& image : originals) {
    async.OnDecodedFrame(image.info(), image, "https://ads.example/orig");
  }
  async.DrainPending(nullptr, 16);
  ASSERT_EQ(async.cache_size(), 64);
  // A few originals share an identical AverageHash (last-writer-wins in
  // L2), so the perceptual tier can hold slightly fewer than 64 entries.
  ASSERT_GE(async.near_dup_cache_size(), 48);

  int hits = 0;
  int agreements = 0;
  for (int i = 0; i < 64; ++i) {
    Bitmap perturbed =
        i % 2 == 0 ? Jitter(originals[i], /*seed=*/i) : ResizeRoundTrip(originals[i]);
    const int64_t hits_before = async.stats().near_dup_hits;
    const bool memoized = async.OnDecodedFrame(perturbed.info(), perturbed, "url");
    if (async.stats().near_dup_hits == hits_before) {
      continue;  // honest reject: the perturbation moved the hash too far
    }
    ++hits;
    if (memoized == oracle.Classify(perturbed).is_ad) {
      ++agreements;
    }
  }
  EXPECT_GE(hits, 32);  // the tier must be doing real work on this suite
  EXPECT_GE(agreements, static_cast<int>(std::ceil(hits * 0.99)));
}

// ---------------------------------------------------------------------------
// Shard router: consistent routing. Adding a shard only remaps tenants onto
// the NEW shard — every tenant not claimed by it keeps its old (warm) shard.

TEST_F(ServingEngineTest, ShardRouterRoutingIsConsistentAcrossShardAdds) {
  const std::string dir = ::testing::TempDir() + "/percival_shard_routing";
  ModelZoo zoo(dir);
  for (const char* name : {"alpha", "beta", "gamma", "delta"}) {
    zoo.Evict(name);
  }
  PercivalNetConfig config = TestProfile();
  auto train = [](Network&) {};  // untrained deterministic init is enough here

  ShardRouter three(zoo, config, {MakeSpec("alpha"), MakeSpec("beta"), MakeSpec("gamma")},
                    train);
  ShardRouter four(zoo, config,
                   {MakeSpec("alpha"), MakeSpec("beta"), MakeSpec("gamma"), MakeSpec("delta")},
                   train);
  // Second bring-up of the first three models loads the zoo cache.
  EXPECT_FALSE(three.StatsFor(0).model_was_cached);
  EXPECT_TRUE(four.StatsFor(0).model_was_cached);
  EXPECT_FALSE(four.StatsFor(3).model_was_cached);

  std::vector<int> tenants_per_shard(4, 0);
  for (int t = 0; t < 300; ++t) {
    const std::string tenant = "tenant-" + std::to_string(t);
    const size_t old_shard = three.ShardFor(tenant);
    const size_t new_shard = four.ShardFor(tenant);
    EXPECT_EQ(old_shard, three.ShardFor(tenant));  // stable across calls
    ++tenants_per_shard[new_shard];
    if (four.shard_name(new_shard) != "delta") {
      // Not claimed by the new shard: must keep its old shard (warm memo).
      EXPECT_EQ(three.shard_name(old_shard), four.shard_name(new_shard)) << tenant;
    }
  }
  for (size_t shard = 0; shard < 4; ++shard) {
    EXPECT_GT(tenants_per_shard[shard], 0) << four.shard_name(shard);
  }

  // Traffic routes, drains, and rolls up per shard.
  for (int t = 0; t < 12; ++t) {
    Bitmap image = MakeBitmap(t);
    four.OnFrame("tenant-" + std::to_string(t), image.info(), image, "url");
  }
  four.DrainAll(nullptr, 4);
  int64_t routed = 0;
  for (const ShardRouter::ShardStats& stats : four.AllStats()) {
    routed += stats.routed;
  }
  EXPECT_EQ(routed, 12);
  EXPECT_EQ(four.Rollup().classified, 12);
}

// ---------------------------------------------------------------------------
// Per-shard reload isolation: one tenant's corrupt artifact fails ONLY that
// shard's staged-commit reload — it keeps its previous weights and every
// other shard reloads, and serves, cleanly.

TEST_F(ServingEngineTest, CorruptReloadIsIsolatedToOneShard) {
  const std::string dir = ::testing::TempDir() + "/percival_shard_reload";
  ModelZoo zoo(dir);
  for (const char* name : {"en", "de", "fr"}) {
    zoo.Evict(name);
  }
  PercivalNetConfig config = TestProfile();
  auto train = [](Network&) {};
  ShardRouter router(zoo, config, {MakeSpec("en"), MakeSpec("de"), MakeSpec("fr")}, train);

  // A shared weight update, trained elsewhere (different init seed, so its
  // decisions measurably differ from the shards' bring-up weights).
  PercivalNetConfig donor_config = TestProfile();
  donor_config.init_seed = 99;
  Network donor = BuildPercivalNet(donor_config);
  const std::string artifact = dir + "/shared_update.pcvw";
  ASSERT_TRUE(SaveWeightsToFile(donor, artifact));
  AdClassifier donor_reference(BuildPercivalNet(donor_config), donor_config);

  Bitmap probe = MakeBitmap(4242);
  const float before = router.classifier(1).Classify(probe).ad_probability;
  const float donor_p = donor_reference.Classify(probe).ad_probability;
  ASSERT_GT(std::fabs(before - donor_p), 1e-6f);

  // Shard 1 reloads while every artifact read is fault-corrupted; the other
  // shards reload after the fault clears.
  faultpoint::Arm(faultpoint::kArtifactCorrupt);
  EXPECT_FALSE(router.ReloadShard(1, artifact));
  faultpoint::DisarmAll();
  EXPECT_TRUE(router.ReloadShard(0, artifact));
  EXPECT_TRUE(router.ReloadShard(2, artifact));

  // Staged commit: shard 1 still serves its previous weights; shards 0 and
  // 2 serve the donor weights.
  EXPECT_FLOAT_EQ(router.classifier(1).Classify(probe).ad_probability, before);
  EXPECT_FLOAT_EQ(router.classifier(0).Classify(probe).ad_probability, donor_p);
  EXPECT_FLOAT_EQ(router.classifier(2).Classify(probe).ad_probability, donor_p);
  EXPECT_EQ(router.StatsFor(1).reloads_failed, 1);
  EXPECT_EQ(router.StatsFor(1).reloads_ok, 0);
  EXPECT_EQ(router.StatsFor(0).reloads_ok, 1);
  EXPECT_EQ(router.StatsFor(2).reloads_ok, 1);
  // The failed reload burned its retry schedule; the clean ones did not.
  EXPECT_GT(router.StatsFor(1).classifier.reload_retries, 0);
  EXPECT_EQ(router.StatsFor(0).classifier.reload_retries, 0);

  // Every shard — including the one whose reload failed — still serves.
  const int64_t classified_before = router.Rollup().classified;
  for (int t = 0; t < 9; ++t) {
    Bitmap image = MakeBitmap(1000 + t);
    EXPECT_FALSE(router.OnFrame("tenant-" + std::to_string(t), image.info(), image, "url"));
  }
  router.DrainAll(nullptr, 4);
  EXPECT_EQ(router.Rollup().classified, classified_before + 9);
}

// The shard-local reload fault point fails exactly the reload it is armed
// for, before any file IO.

TEST_F(ServingEngineTest, ShardReloadFaultPointIsShardLocal) {
  const std::string dir = ::testing::TempDir() + "/percival_shard_fault";
  ModelZoo zoo(dir);
  zoo.Evict("p");
  zoo.Evict("q");
  PercivalNetConfig config = TestProfile();
  auto train = [](Network&) {};
  ShardRouter router(zoo, config, {MakeSpec("p"), MakeSpec("q")}, train);

  Network donor = BuildPercivalNet(config);
  const std::string artifact = dir + "/update.pcvw";
  ASSERT_TRUE(SaveWeightsToFile(donor, artifact));

  faultpoint::FaultSpec once;
  once.count = 1;
  faultpoint::Arm(faultpoint::kShardReloadFail, once);
  EXPECT_FALSE(router.ReloadShard(0, artifact));  // consumed the one firing
  EXPECT_TRUE(router.ReloadShard(1, artifact));
  EXPECT_EQ(router.StatsFor(0).reloads_failed, 1);
  EXPECT_EQ(router.StatsFor(1).reloads_ok, 1);
  // No artifact read happened for the failed reload: no retry schedule ran.
  EXPECT_EQ(router.StatsFor(0).classifier.reload_retries, 0);
}

}  // namespace
}  // namespace percival
