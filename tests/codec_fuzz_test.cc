// Deterministic fuzzing of the image decoders: random byte streams and
// mutated valid encodings must never crash, over-read, or produce a bitmap
// inconsistent with its claimed dimensions. Failure injection for the
// decode path the rendering pipeline depends on.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/img/codec.h"
#include "src/img/draw.h"

namespace percival {
namespace {

std::vector<uint8_t> RandomBytes(Rng& rng, size_t size) {
  std::vector<uint8_t> bytes(size);
  for (uint8_t& b : bytes) {
    b = static_cast<uint8_t>(rng.NextBelow(256));
  }
  return bytes;
}

Bitmap SampleBitmap(Rng& rng) {
  Bitmap bitmap(static_cast<int>(rng.NextBelow(40)) + 1,
                static_cast<int>(rng.NextBelow(40)) + 1);
  FillRect(bitmap, Rect{0, 0, bitmap.width(), bitmap.height()},
           Color{static_cast<uint8_t>(rng.NextBelow(256)),
                 static_cast<uint8_t>(rng.NextBelow(256)),
                 static_cast<uint8_t>(rng.NextBelow(256)), 255});
  AddSpeckleNoise(bitmap, Rect{0, 0, bitmap.width(), bitmap.height()}, 20.0f, rng);
  return bitmap;
}

TEST(CodecFuzzTest, RandomBytesNeverCrashDecoders) {
  Rng rng(101);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<uint8_t> bytes = RandomBytes(rng, rng.NextBelow(256));
    // Any of these may return nullopt; none may crash or hang.
    std::optional<std::vector<Bitmap>> frames = DecodeAllFrames(bytes);
    if (frames) {
      for (const Bitmap& frame : *frames) {
        EXPECT_EQ(frame.byte_size(),
                  static_cast<size_t>(frame.width()) * frame.height() * 4);
      }
    }
  }
}

TEST(CodecFuzzTest, RandomBytesWithValidMagicsNeverCrash) {
  Rng rng(202);
  const std::vector<std::vector<uint8_t>> magics = {
      {'P', 'I', 'F', '1'}, {'R', 'L', 'E', '1'}, {'A', 'N', 'I', 'M'}, {'B', 'M'}, {'P', '6'}};
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<uint8_t> bytes = magics[rng.NextBelow(magics.size())];
    std::vector<uint8_t> tail = RandomBytes(rng, rng.NextBelow(200));
    bytes.insert(bytes.end(), tail.begin(), tail.end());
    std::optional<std::vector<Bitmap>> frames = DecodeAllFrames(bytes);
    if (frames) {
      EXPECT_FALSE(frames->empty());
    }
  }
}

class CodecMutationTest : public ::testing::TestWithParam<ImageFormat> {};

TEST_P(CodecMutationTest, SingleByteMutationsNeverCrash) {
  const ImageFormat format = GetParam();
  Rng rng(303 + static_cast<uint64_t>(format));
  Bitmap bitmap = SampleBitmap(rng);
  EncodedImage encoded = Encode(bitmap, format);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> mutated = encoded.bytes;
    const size_t position = rng.NextBelow(mutated.size());
    mutated[position] = static_cast<uint8_t>(rng.NextBelow(256));
    std::optional<std::vector<Bitmap>> frames = DecodeAllFrames(mutated);
    if (frames) {
      for (const Bitmap& frame : *frames) {
        EXPECT_LE(frame.width(), 1 << 20);
        EXPECT_LE(frame.height(), 1 << 20);
      }
    }
  }
}

TEST_P(CodecMutationTest, TruncationsNeverCrash) {
  const ImageFormat format = GetParam();
  Rng rng(404 + static_cast<uint64_t>(format));
  Bitmap bitmap = SampleBitmap(rng);
  EncodedImage encoded = Encode(bitmap, format);
  for (size_t keep = 0; keep < encoded.bytes.size(); keep += 7) {
    std::vector<uint8_t> truncated(encoded.bytes.begin(),
                                   encoded.bytes.begin() + static_cast<long>(keep));
    (void)DecodeAllFrames(truncated);  // must not crash
  }
  SUCCEED();
}

TEST_P(CodecMutationTest, ExtraTrailingBytesTolerated) {
  // Real decoders stop at end-of-image; trailing garbage after a complete
  // stream must not corrupt the decoded pixels.
  const ImageFormat format = GetParam();
  if (format == ImageFormat::kPpm) {
    GTEST_SKIP() << "PPM payload length is implied by the header; covered above";
  }
  Rng rng(505 + static_cast<uint64_t>(format));
  Bitmap bitmap = SampleBitmap(rng);
  EncodedImage encoded = Encode(bitmap, format);
  encoded.bytes.push_back(0xAB);
  encoded.bytes.push_back(0xCD);
  std::optional<Bitmap> decoded = DecodeFirstFrame(encoded.bytes);
  if (decoded) {
    EXPECT_EQ(decoded->width(), bitmap.width());
    EXPECT_EQ(decoded->height(), bitmap.height());
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, CodecMutationTest,
                         ::testing::Values(ImageFormat::kBmp, ImageFormat::kPpm,
                                           ImageFormat::kPif, ImageFormat::kRle,
                                           ImageFormat::kAnim),
                         [](const ::testing::TestParamInfo<ImageFormat>& info) {
                           return ImageFormatName(info.param);
                         });

TEST(CodecFuzzTest, RoundTripHoldsUnderRandomContent) {
  // Property: for every format and any random RGBA content (alpha forced
  // opaque for PPM), decode(encode(x)) == x.
  Rng rng(606);
  for (int trial = 0; trial < 60; ++trial) {
    Bitmap bitmap = SampleBitmap(rng);
    for (ImageFormat format :
         {ImageFormat::kBmp, ImageFormat::kPif, ImageFormat::kRle}) {
      EncodedImage encoded = Encode(bitmap, format);
      std::optional<Bitmap> decoded = DecodeFirstFrame(encoded.bytes);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, bitmap) << ImageFormatName(format) << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace percival
