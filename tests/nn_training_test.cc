// Network / loss / optimizer / serialization tests, including an
// end-to-end convergence check on a tiny separable problem.
#include <gtest/gtest.h>

#include <cmath>

#include "src/base/rng.h"
#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/loss.h"
#include "src/nn/network.h"
#include "src/nn/optimizer.h"
#include "src/nn/pool.h"
#include "src/nn/serialize.h"

namespace percival {
namespace {

Network TinyNet(uint64_t seed) {
  Rng rng(seed);
  Network net;
  net.Add<Conv2D>(1, 4, 3, 1, 1, rng, "c1");
  net.Add<Relu>();
  net.Add<Conv2D>(4, 2, 1, 1, 0, rng, "c2");
  net.Add<GlobalAvgPool>();
  return net;
}

TEST(NetworkTest, ForwardShape) {
  Network net = TinyNet(1);
  Tensor input(3, 6, 6, 1);
  Tensor out = net.Forward(input);
  EXPECT_EQ(out.shape(), (TensorShape{3, 1, 1, 2}));
}

TEST(NetworkTest, OutputShapeWithoutRunning) {
  Network net = TinyNet(1);
  EXPECT_EQ(net.OutputShape(TensorShape{5, 8, 8, 1}), (TensorShape{5, 1, 1, 2}));
}

TEST(NetworkTest, ParameterCollection) {
  Network net = TinyNet(1);
  // c1: weights+bias, c2: weights+bias.
  EXPECT_EQ(net.Parameters().size(), 4u);
  EXPECT_EQ(net.ParameterCount(), (9 * 1 * 4 + 4) + (4 * 2 + 2));
  EXPECT_EQ(net.ModelBytes(), net.ParameterCount() * 4);
}

TEST(NetworkTest, ZeroGradsClears) {
  Network net = TinyNet(1);
  for (Parameter* p : net.Parameters()) {
    p->grad.Fill(3.0f);
  }
  net.ZeroGrads();
  for (Parameter* p : net.Parameters()) {
    EXPECT_EQ(p->grad.Max(), 0.0f);
  }
}

TEST(NetworkTest, ForwardUpToIntermediateShape) {
  Network net = TinyNet(1);
  Tensor input(1, 6, 6, 1);
  Tensor features = net.ForwardUpTo(input, 2);  // after c1+relu
  EXPECT_EQ(features.shape(), (TensorShape{1, 6, 6, 4}));
}

TEST(NetworkTest, SummaryMentionsLayers) {
  Network net = TinyNet(1);
  const std::string summary = net.Summary(TensorShape{1, 6, 6, 1});
  EXPECT_NE(summary.find("c1"), std::string::npos);
  EXPECT_NE(summary.find("global_avgpool"), std::string::npos);
}

TEST(LossTest, PerfectPredictionLowLoss) {
  Tensor logits(1, 1, 1, 2);
  logits[0] = -10.0f;
  logits[1] = 10.0f;
  LossResult result = SoftmaxCrossEntropy(logits, {1});
  EXPECT_LT(result.loss, 1e-3f);
  EXPECT_EQ(result.correct, 1);
}

TEST(LossTest, WrongPredictionHighLoss) {
  Tensor logits(1, 1, 1, 2);
  logits[0] = 10.0f;
  logits[1] = -10.0f;
  LossResult result = SoftmaxCrossEntropy(logits, {1});
  EXPECT_GT(result.loss, 5.0f);
  EXPECT_EQ(result.correct, 0);
}

TEST(LossTest, GradientIsSoftmaxMinusOneHot) {
  Tensor logits(1, 1, 1, 2);
  logits[0] = 0.0f;
  logits[1] = 0.0f;
  LossResult result = SoftmaxCrossEntropy(logits, {0});
  EXPECT_NEAR(result.grad_logits[0], 0.5f - 1.0f, 1e-5f);
  EXPECT_NEAR(result.grad_logits[1], 0.5f, 1e-5f);
}

TEST(LossTest, GradientScaledByBatch) {
  Tensor logits(2, 1, 1, 2);
  LossResult result = SoftmaxCrossEntropy(logits, {0, 1});
  EXPECT_NEAR(result.grad_logits[0], (0.5f - 1.0f) / 2.0f, 1e-5f);
}

TEST(OptimizerTest, StepMovesAgainstGradient) {
  Parameter p;
  p.name = "w";
  p.value = Tensor(1, 1, 1, 1);
  p.grad = Tensor(1, 1, 1, 1);
  p.value[0] = 1.0f;
  p.grad[0] = 2.0f;
  SgdConfig config;
  config.learning_rate = 0.1f;
  config.momentum = 0.0f;
  SgdOptimizer optimizer({&p}, config);
  optimizer.Step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.2f, 1e-6f);
}

TEST(OptimizerTest, MomentumAccumulates) {
  Parameter p;
  p.value = Tensor(1, 1, 1, 1);
  p.grad = Tensor(1, 1, 1, 1);
  p.grad[0] = 1.0f;
  SgdConfig config;
  config.learning_rate = 0.1f;
  config.momentum = 0.9f;
  SgdOptimizer optimizer({&p}, config);
  optimizer.Step();  // v = -0.1
  optimizer.Step();  // v = -0.19
  EXPECT_NEAR(p.value[0], -0.29f, 1e-5f);
}

TEST(OptimizerTest, StepDecayAfterConfiguredEpochs) {
  Parameter p;
  p.value = Tensor(1, 1, 1, 1);
  p.grad = Tensor(1, 1, 1, 1);
  SgdConfig config;
  config.learning_rate = 0.001f;
  config.lr_decay_every_epochs = 30;
  config.lr_decay_factor = 0.1f;
  SgdOptimizer optimizer({&p}, config);
  for (int epoch = 0; epoch < 30; ++epoch) {
    optimizer.EndEpoch();
  }
  EXPECT_NEAR(optimizer.current_learning_rate(), 0.0001f, 1e-8f);
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  Parameter p;
  p.value = Tensor(1, 1, 1, 1);
  p.grad = Tensor(1, 1, 1, 1);
  p.value[0] = 10.0f;
  SgdConfig config;
  config.learning_rate = 0.1f;
  config.momentum = 0.0f;
  config.weight_decay = 0.5f;
  SgdOptimizer optimizer({&p}, config);
  optimizer.Step();
  EXPECT_LT(p.value[0], 10.0f);
}

TEST(TrainingConvergenceTest, LearnsSeparableToyProblem) {
  // Class 0: dark images; class 1: bright images.
  Network net = TinyNet(11);
  SgdConfig sgd;
  sgd.learning_rate = 0.05f;
  SgdOptimizer optimizer(net.Parameters(), sgd);
  Rng rng(12);

  auto make_batch = [&](Tensor* batch, std::vector<int>* labels) {
    *batch = Tensor(8, 6, 6, 1);
    labels->clear();
    for (int i = 0; i < 8; ++i) {
      const bool bright = rng.NextBool();
      labels->push_back(bright ? 1 : 0);
      for (int64_t j = 0; j < batch->SampleElements(); ++j) {
        batch->SampleData(i)[j] =
            (bright ? 0.8f : 0.2f) + rng.NextFloat(-0.1f, 0.1f);
      }
    }
  };

  float last_loss = 0.0f;
  for (int step = 0; step < 60; ++step) {
    Tensor batch;
    std::vector<int> labels;
    make_batch(&batch, &labels);
    net.ZeroGrads();
    Tensor logits = net.Forward(batch);
    LossResult loss = SoftmaxCrossEntropy(logits, labels);
    net.Backward(loss.grad_logits);
    optimizer.Step();
    last_loss = loss.loss;
  }
  EXPECT_LT(last_loss, 0.3f);

  // Verify classification on fresh data.
  Tensor batch;
  std::vector<int> labels;
  make_batch(&batch, &labels);
  Tensor logits = net.Forward(batch);
  int correct = 0;
  for (int i = 0; i < 8; ++i) {
    if (logits.ArgMaxInSample(i) == labels[static_cast<size_t>(i)]) {
      ++correct;
    }
  }
  EXPECT_GE(correct, 7);
}

TEST(SerializeTest, RoundTripPreservesWeights) {
  Network net = TinyNet(21);
  std::vector<uint8_t> bytes = SerializeWeights(net);
  Network restored = TinyNet(99);  // different init
  ASSERT_TRUE(DeserializeWeights(restored, bytes));
  std::vector<Parameter*> a = net.Parameters();
  std::vector<Parameter*> b = restored.Parameters();
  for (size_t i = 0; i < a.size(); ++i) {
    for (int64_t j = 0; j < a[i]->value.size(); ++j) {
      EXPECT_EQ(a[i]->value[j], b[i]->value[j]);
    }
  }
}

TEST(SerializeTest, RejectsCorruptedMagic) {
  Network net = TinyNet(22);
  std::vector<uint8_t> bytes = SerializeWeights(net);
  bytes[0] = 'X';
  Network restored = TinyNet(22);
  EXPECT_FALSE(DeserializeWeights(restored, bytes));
}

TEST(SerializeTest, RejectsTruncation) {
  Network net = TinyNet(23);
  std::vector<uint8_t> bytes = SerializeWeights(net);
  bytes.resize(bytes.size() / 2);
  Network restored = TinyNet(23);
  EXPECT_FALSE(DeserializeWeights(restored, bytes));
}

TEST(SerializeTest, RejectsArchitectureMismatch) {
  Network net = TinyNet(24);
  std::vector<uint8_t> bytes = SerializeWeights(net);
  Rng rng(25);
  Network other;
  other.Add<Conv2D>(1, 4, 3, 1, 1, rng, "different_name");
  other.Add<Conv2D>(4, 2, 1, 1, 0, rng, "c2");
  EXPECT_FALSE(DeserializeWeights(other, bytes));
}

TEST(SerializeTest, FileRoundTrip) {
  Network net = TinyNet(26);
  const std::string path = ::testing::TempDir() + "/weights_test.pcvw";
  ASSERT_TRUE(SaveWeightsToFile(net, path));
  Network restored = TinyNet(27);
  ASSERT_TRUE(LoadWeightsFromFile(restored, path));
  EXPECT_EQ(net.Parameters()[0]->value[0], restored.Parameters()[0]->value[0]);
}

TEST(SerializeTest, LoadMissingFileFails) {
  Network net = TinyNet(28);
  EXPECT_FALSE(LoadWeightsFromFile(net, "/nonexistent/path/weights.pcvw"));
}

}  // namespace
}  // namespace percival
