// Unit tests for the tensor container and the im2col/col2im kernels.
#include <gtest/gtest.h>

#include "src/nn/ops.h"
#include "src/nn/tensor.h"

namespace percival {
namespace {

TEST(TensorShapeTest, ElementsProduct) {
  TensorShape shape{2, 3, 4, 5};
  EXPECT_EQ(shape.Elements(), 120);
}

TEST(TensorTest, ConstructZeroInitialized) {
  Tensor t(1, 2, 2, 3);
  EXPECT_EQ(t.size(), 12);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(TensorTest, AtIndexingRoundTrips) {
  Tensor t(2, 3, 4, 5);
  t.at(1, 2, 3, 4) = 42.0f;
  EXPECT_EQ(t.at(1, 2, 3, 4), 42.0f);
  // Last element of the buffer.
  EXPECT_EQ(t[t.size() - 1], 42.0f);
}

TEST(TensorTest, SampleDataOffsets) {
  Tensor t(3, 2, 2, 1);
  t.at(2, 0, 0, 0) = 9.0f;
  EXPECT_EQ(t.SampleData(2)[0], 9.0f);
  EXPECT_EQ(t.SampleElements(), 4);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t(1, 2, 2, 2);
  t[5] = 3.5f;
  t.Reshape(TensorShape{1, 1, 1, 8});
  EXPECT_EQ(t[5], 3.5f);
  EXPECT_EQ(t.shape().c, 8);
}

TEST(TensorTest, ReshapeMismatchedElementsDies) {
  Tensor t(1, 2, 2, 2);
  EXPECT_DEATH(t.Reshape(TensorShape{1, 1, 1, 7}), "reshape");
}

TEST(TensorTest, AddAndScale) {
  Tensor a(1, 1, 1, 3);
  Tensor b(1, 1, 1, 3);
  a[0] = 1.0f;
  a[1] = 2.0f;
  a[2] = 3.0f;
  b.Fill(1.0f);
  a.Add(b);
  a.Scale(2.0f);
  EXPECT_EQ(a[0], 4.0f);
  EXPECT_EQ(a[1], 6.0f);
  EXPECT_EQ(a[2], 8.0f);
}

TEST(TensorTest, ArgMaxInSample) {
  Tensor t(2, 1, 1, 4);
  t.at(0, 0, 0, 2) = 5.0f;
  t.at(1, 0, 0, 0) = 1.0f;
  EXPECT_EQ(t.ArgMaxInSample(0), 2);
  EXPECT_EQ(t.ArgMaxInSample(1), 0);
}

TEST(TensorTest, SumMinMax) {
  Tensor t(1, 1, 1, 4);
  t[0] = -1.0f;
  t[1] = 2.0f;
  t[2] = 0.5f;
  t[3] = 3.5f;
  EXPECT_FLOAT_EQ(t.Sum(), 5.0f);
  EXPECT_FLOAT_EQ(t.Min(), -1.0f);
  EXPECT_FLOAT_EQ(t.Max(), 3.5f);
}

TEST(OpsTest, ConvOutputSizeFormula) {
  EXPECT_EQ(ConvOutputSize(224, 3, 2, 1), 112);
  EXPECT_EQ(ConvOutputSize(112, 2, 2, 0), 56);
  EXPECT_EQ(ConvOutputSize(5, 3, 1, 1), 5);
  EXPECT_EQ(ConvOutputSize(7, 7, 1, 0), 1);
}

TEST(OpsTest, Im2ColIdentityKernel) {
  // 1x1 kernel, stride 1, no pad: columns equal the input.
  const int h = 3;
  const int w = 3;
  const int c = 2;
  std::vector<float> input(static_cast<size_t>(h * w * c));
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(i);
  }
  std::vector<float> columns(input.size());
  Im2Col(input.data(), h, w, c, 1, 1, 0, columns.data());
  EXPECT_EQ(columns, input);
}

TEST(OpsTest, Im2ColZeroPadsBorders) {
  // 3x3 kernel with pad 1 on a 1x1 input: only the centre tap is non-zero.
  std::vector<float> input = {7.0f};
  std::vector<float> columns(9, -1.0f);
  Im2Col(input.data(), 1, 1, 1, 3, 1, 1, columns.data());
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(columns[static_cast<size_t>(i)], i == 4 ? 7.0f : 0.0f);
  }
}

TEST(OpsTest, Col2ImInvertsIm2ColFor1x1) {
  const int h = 2;
  const int w = 2;
  const int c = 3;
  std::vector<float> columns(static_cast<size_t>(h * w * c));
  for (size_t i = 0; i < columns.size(); ++i) {
    columns[i] = static_cast<float>(i + 1);
  }
  std::vector<float> grad(columns.size(), 0.0f);
  Col2Im(columns.data(), h, w, c, 1, 1, 0, grad.data());
  EXPECT_EQ(grad, columns);
}

TEST(OpsTest, Col2ImAccumulatesOverlaps) {
  // 2x2 kernel stride 1 on 3x3: centre pixel is covered by 4 windows.
  const int h = 3;
  const int w = 3;
  std::vector<float> columns(static_cast<size_t>(2 * 2 * 2 * 2), 1.0f);
  std::vector<float> grad(9, 0.0f);
  Col2Im(columns.data(), h, w, 1, 2, 1, 0, grad.data());
  EXPECT_EQ(grad[4], 4.0f);  // centre
  EXPECT_EQ(grad[0], 1.0f);  // corner
}

TEST(OpsTest, DotAndAxpy) {
  std::vector<float> a = {1, 2, 3, 4, 5};
  std::vector<float> b = {5, 4, 3, 2, 1};
  EXPECT_FLOAT_EQ(Dot(5, a.data(), b.data()), 35.0f);
  Axpy(5, 2.0f, a.data(), b.data());
  EXPECT_FLOAT_EQ(b[0], 7.0f);
  EXPECT_FLOAT_EQ(b[4], 11.0f);
}

}  // namespace
}  // namespace percival
