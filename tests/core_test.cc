// Core library tests: model architectures (Fig. 3 accounting), the
// classifier (sync + async/memoized), Grad-CAM, and the model zoo cache.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/classifier.h"
#include "src/core/gradcam.h"
#include "src/core/model.h"
#include "src/core/model_zoo.h"
#include "src/img/draw.h"

namespace percival {
namespace {

TEST(ModelTest, PaperProfileUnderTwoMegabytes) {
  PercivalNetConfig config = PaperProfile();
  Network net = BuildPercivalNet(config);
  const double megabytes = static_cast<double>(net.ModelBytes()) / (1024.0 * 1024.0);
  EXPECT_LT(megabytes, 2.0) << "Fig. 3: the fork is < 2 MB";
  EXPECT_GT(megabytes, 1.5);  // and close to the reported 1.9 MB
}

TEST(ModelTest, OriginalSqueezeNetNearPaperSize) {
  Network net = BuildOriginalSqueezeNet(4, 2, 1);
  const double megabytes = static_cast<double>(net.ModelBytes()) / (1024.0 * 1024.0);
  // The paper quotes ~4.8 MB for SqueezeNet (1000-class head); our 2-class
  // head drops conv10, so accept a band around it.
  EXPECT_GT(megabytes, 2.5);
  EXPECT_LT(megabytes, 6.0);
}

TEST(ModelTest, ForkIsSmallerAndCheaperThanOriginal) {
  PercivalNetConfig config = PaperProfile();
  Network fork = BuildPercivalNet(config);
  Network original = BuildOriginalSqueezeNet(config.input_channels, 2, 1);
  EXPECT_LT(fork.ModelBytes(), original.ModelBytes());
  const TensorShape input = config.InputShape();
  EXPECT_LT(fork.ForwardMacs(input), original.ForwardMacs(input));
}

TEST(ModelTest, ForwardShapeIsTwoLogits) {
  PercivalNetConfig config = TestProfile();
  Network net = BuildPercivalNet(config);
  Tensor input(1, config.input_size, config.input_size, config.input_channels);
  Tensor out = net.Forward(input);
  EXPECT_EQ(out.shape(), (TensorShape{1, 1, 1, 2}));
}

TEST(ModelTest, ExperimentProfileForwardShape) {
  PercivalNetConfig config = ExperimentProfile();
  Network net = BuildPercivalNet(config);
  EXPECT_EQ(net.OutputShape(config.InputShape()), (TensorShape{1, 1, 1, 2}));
}

TEST(ModelTest, SixFireModulesInSummary) {
  PercivalNetConfig config = TestProfile();
  Network net = BuildPercivalNet(config);
  const std::string summary = net.Summary(config.InputShape());
  for (int i = 1; i <= 6; ++i) {
    EXPECT_NE(summary.find("fire" + std::to_string(i)), std::string::npos) << summary;
  }
}

TEST(ClassifierTest, ProbabilityInUnitRange) {
  PercivalNetConfig config = TestProfile();
  AdClassifier classifier(BuildPercivalNet(config), config);
  Bitmap image(20, 20, Color{128, 64, 32, 255});
  ClassifyResult result = classifier.Classify(image);
  EXPECT_GE(result.ad_probability, 0.0f);
  EXPECT_LE(result.ad_probability, 1.0f);
  EXPECT_GT(result.latency_ms, 0.0);
}

TEST(ClassifierTest, StatsAccumulate) {
  PercivalNetConfig config = TestProfile();
  AdClassifier classifier(BuildPercivalNet(config), config);
  Bitmap image(10, 10, Color{1, 2, 3, 255});
  classifier.Classify(image);
  classifier.Classify(image);
  EXPECT_EQ(classifier.stats().classified, 2);
  classifier.ResetStats();
  EXPECT_EQ(classifier.stats().classified, 0);
}

TEST(ClassifierTest, MinDimensionSkipsTinyImages) {
  PercivalNetConfig config = TestProfile();
  AdClassifier classifier(BuildPercivalNet(config), config, /*threshold=*/0.0f);
  classifier.set_min_dimension(32);
  Bitmap tiny(8, 8, Color{1, 1, 1, 255});
  // threshold 0 would block everything, but tiny images bypass the model.
  EXPECT_FALSE(classifier.OnDecodedFrame(tiny.info(), tiny, "u"));
  EXPECT_EQ(classifier.stats().classified, 0);
}

TEST(ClassifierTest, ThresholdControlsBlocking) {
  PercivalNetConfig config = TestProfile();
  Bitmap image(20, 20, Color{90, 10, 10, 255});
  AdClassifier always(BuildPercivalNet(config), config, 0.0f);
  AdClassifier never(BuildPercivalNet(config), config, 1.1f);
  EXPECT_TRUE(always.OnDecodedFrame(image.info(), image, "u"));
  EXPECT_FALSE(never.OnDecodedFrame(image.info(), image, "u"));
}

TEST(AsyncClassifierTest, FirstSightRendersSecondSightBlocks) {
  PercivalNetConfig config = TestProfile();
  AdClassifier inner(BuildPercivalNet(config), config, /*threshold=*/0.0f);  // block all
  AsyncAdClassifier async(inner);
  Bitmap image(16, 16, Color{120, 30, 30, 255});
  // First visit: unknown, must not delay rendering.
  EXPECT_FALSE(async.OnDecodedFrame(image.info(), image, "u"));
  EXPECT_EQ(async.stats().cache_misses, 1);
  async.DrainPending();
  EXPECT_EQ(async.cache_size(), 1);
  // Second visit: memoized decision applies.
  EXPECT_TRUE(async.OnDecodedFrame(image.info(), image, "u"));
  EXPECT_EQ(async.stats().cache_hits, 1);
}

TEST(AsyncClassifierTest, KeyedByPixelsNotUrl) {
  PercivalNetConfig config = TestProfile();
  AdClassifier inner(BuildPercivalNet(config), config, 0.0f);
  AsyncAdClassifier async(inner);
  Bitmap image(16, 16, Color{9, 9, 9, 255});
  async.OnDecodedFrame(image.info(), image, "https://a.example/1");
  async.DrainPending();
  // Same creative served under a rotated URL still hits the cache.
  EXPECT_TRUE(async.OnDecodedFrame(image.info(), image, "https://b.example/other"));
}

TEST(GradCamTest, HeatmapShapeAndNonNegativity) {
  PercivalNetConfig config = TestProfile();
  Network net = BuildPercivalNet(config);
  Tensor input(1, config.input_size, config.input_size, config.input_channels);
  Rng rng(4);
  for (int64_t i = 0; i < input.size(); ++i) {
    input[i] = rng.NextFloat(0.0f, 1.0f);
  }
  // Layer 3 is the first fire module (conv1, relu, maxpool, fire1).
  Tensor heatmap = GradCam(net, input, 3, 1);
  EXPECT_EQ(heatmap.shape().c, 1);
  EXPECT_GT(heatmap.shape().h, 0);
  EXPECT_GE(heatmap.Min(), 0.0f);
}

TEST(GradCamTest, AsciiRenderingNonEmpty) {
  Tensor heatmap(1, 4, 4, 1);
  heatmap.at(0, 1, 1, 0) = 1.0f;
  const std::string ascii = RenderHeatmapAscii(heatmap);
  EXPECT_FALSE(ascii.empty());
  EXPECT_NE(ascii.find('@'), std::string::npos);  // the hot cell
}

TEST(GradCamTest, OverlayTintsHotRegions) {
  Bitmap source(8, 8, Color{100, 100, 100, 255});
  Tensor heatmap(1, 2, 2, 1);
  heatmap.at(0, 0, 0, 0) = 1.0f;  // top-left quadrant hot
  Bitmap overlay = OverlayHeatmap(source, heatmap);
  EXPECT_GT(overlay.GetPixel(1, 1).r, source.GetPixel(1, 1).r);
  EXPECT_EQ(overlay.GetPixel(7, 7).r, source.GetPixel(7, 7).r);  // cold untouched
}

TEST(ModelZooTest, TrainsOnceThenLoads) {
  const std::string dir = ::testing::TempDir() + "/zoo_test";
  ModelZoo zoo(dir);
  zoo.Evict("m");
  int train_calls = 0;
  PercivalNetConfig config = TestProfile();
  auto train = [&train_calls](Network& net) {
    ++train_calls;
    net.Parameters()[0]->value[0] = 7.5f;
  };
  Network first = zoo.GetOrTrain("m", config, train);
  Network second = zoo.GetOrTrain("m", config, train);
  EXPECT_EQ(train_calls, 1);
  EXPECT_EQ(second.Parameters()[0]->value[0], 7.5f);
  zoo.Evict("m");
}

TEST(ModelZooTest, EvictForcesRetrain) {
  const std::string dir = ::testing::TempDir() + "/zoo_test2";
  ModelZoo zoo(dir);
  int train_calls = 0;
  PercivalNetConfig config = TestProfile();
  auto train = [&train_calls](Network&) { ++train_calls; };
  zoo.GetOrTrain("m2", config, train);
  zoo.Evict("m2");
  zoo.GetOrTrain("m2", config, train);
  EXPECT_EQ(train_calls, 2);
  zoo.Evict("m2");
}

}  // namespace
}  // namespace percival
