// Tests for the layout-aware kernel planner: c-outer vs baseline activation
// layout parity (float within tolerance, int8 bit-exact — integer
// accumulation is K-order-invariant), 16- vs native-panel-width parity on
// every kernel tier including the force-scalar oracle, plan-keyed
// pack-cache invalidation, the planner heuristic's narrow-shape pick,
// u8-direct preprocessing vs float-then-quantize bit-identity (kernel level
// and end-to-end classifier decisions), and the 64-image accuracy guard
// rerun under the planner's narrow-panel choice.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/base/rng.h"
#include "src/core/classifier.h"
#include "src/core/model.h"
#include "src/img/resize.h"
#include "src/nn/conv.h"
#include "src/nn/fire.h"
#include "src/nn/gemm.h"
#include "src/nn/network.h"
#include "src/nn/ops.h"
#include "src/webgen/adgen.h"
#include "src/webgen/contentgen.h"

namespace percival {
namespace {

Tensor RandomTensor(const TensorShape& shape, uint64_t seed, float lo = -1.0f,
                    float hi = 1.0f) {
  Tensor tensor(shape);
  Rng rng(seed);
  for (int64_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = rng.NextFloat(lo, hi);
  }
  return tensor;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.shape() == b.shape());
  float worst = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

// Restores the planner's global pinning knobs on scope exit so a failing
// assertion cannot leak an override into later tests.
struct ScopedPlannerOverrides {
  ~ScopedPlannerOverrides() {
    SetPlannerPanelOverride(0);
    SetPlannerLayoutPolicy(LayoutPolicy::kAuto);
  }
};

// --------------------------------------------------- c-outer layout parity --

// The c-outer im2col row must be exactly the (kh, kw, c) -> (c, kh, kw)
// permutation of the baseline row.
TEST(LayoutTest, COuterIm2ColIsAPermutationOfBaseline) {
  const int h = 7, w = 6, channels = 5, kernel = 3, stride = 2, pad = 1;
  Tensor input = RandomTensor(TensorShape{1, h, w, channels}, 3);
  const int out_h = ConvOutputSize(h, kernel, stride, pad);
  const int out_w = ConvOutputSize(w, kernel, stride, pad);
  const int64_t rows = static_cast<int64_t>(out_h) * out_w;
  const int row_len = kernel * kernel * channels;
  std::vector<float> base(static_cast<size_t>(rows) * row_len, -1.0f);
  std::vector<float> c_outer(static_cast<size_t>(rows) * row_len, -2.0f);
  Im2ColRows(input.data(), h, w, channels, kernel, stride, pad, 0, rows, base.data());
  Im2ColRowsCOuter(input.data(), h, w, channels, kernel, stride, pad, 0, rows,
                   c_outer.data());
  const int taps = kernel * kernel;
  for (int64_t r = 0; r < rows; ++r) {
    for (int tap = 0; tap < taps; ++tap) {
      for (int c = 0; c < channels; ++c) {
        ASSERT_EQ(base[r * row_len + tap * channels + c],
                  c_outer[r * row_len + c * taps + tap])
            << "row " << r << " tap " << tap << " channel " << c;
      }
    }
  }

  // The uint8 variant applies the same permutation (and the same pad code).
  std::vector<uint8_t> codes(static_cast<size_t>(input.size()));
  for (int64_t i = 0; i < input.size(); ++i) {
    codes[static_cast<size_t>(i)] = static_cast<uint8_t>(17 + 7 * i);
  }
  const int k_padded = Int8PaddedK(row_len);
  std::vector<uint8_t> base_u8(static_cast<size_t>(rows) * k_padded, 0);
  std::vector<uint8_t> c_outer_u8(static_cast<size_t>(rows) * k_padded, 0);
  Im2ColRowsU8(codes.data(), h, w, channels, kernel, stride, pad, 0, rows, 99, k_padded,
               base_u8.data());
  Im2ColRowsU8COuter(codes.data(), h, w, channels, kernel, stride, pad, 0, rows, 99,
                     k_padded, c_outer_u8.data());
  for (int64_t r = 0; r < rows; ++r) {
    for (int tap = 0; tap < taps; ++tap) {
      for (int c = 0; c < channels; ++c) {
        ASSERT_EQ(base_u8[r * k_padded + tap * channels + c],
                  c_outer_u8[r * k_padded + c * taps + tap]);
      }
    }
    for (int t = row_len; t < k_padded; ++t) {
      ASSERT_EQ(c_outer_u8[r * k_padded + t], 99);  // pad tail
    }
  }
}

// Same weights, both layouts: float outputs agree to GEMM-parity tolerance
// (the K order permutes the float summation), and both agree with the naive
// oracle.
TEST(LayoutTest, COuterConvMatchesBaselineFloat) {
  Rng shape_rng(61);
  for (int trial = 0; trial < 10; ++trial) {
    const int in_channels = 1 + static_cast<int>(shape_rng.NextBelow(12));
    const int out_channels = 1 + static_cast<int>(shape_rng.NextBelow(2 * GemmNativePanelWidth() + 5));
    const int kernel = shape_rng.NextBelow(2) == 0 ? 3 : 5;
    const int pad = static_cast<int>(shape_rng.NextBelow(static_cast<uint64_t>(kernel / 2 + 1)));
    const int side = kernel + static_cast<int>(shape_rng.NextBelow(9));

    Rng rng_a(200 + static_cast<uint64_t>(trial));
    Rng rng_b(200 + static_cast<uint64_t>(trial));
    Conv2D base(in_channels, out_channels, kernel, 1, pad, rng_a);
    Conv2D c_outer(in_channels, out_channels, kernel, 1, pad, rng_b);
    KernelPlan plan = c_outer.plan();
    plan.layout = ActivationLayout::kCOuter;
    c_outer.SetKernelPlan(plan);

    Tensor input = RandomTensor(TensorShape{2, side, side, in_channels},
                                300 + static_cast<uint64_t>(trial));
    Tensor expected = base.Forward(input);
    Tensor actual = c_outer.Forward(input);
    EXPECT_LE(MaxAbsDiff(expected, actual), 1e-4f) << c_outer.Name();

    base.set_use_gemm(false);
    Tensor oracle = base.Forward(input);
    EXPECT_LE(MaxAbsDiff(oracle, actual), 1e-4f) << c_outer.Name() << " vs naive";
  }
}

// In int8 the accumulator is an exact integer sum, so permuting K changes
// nothing: c-outer must be BIT-identical to the baseline layout, on the
// intrinsic kernels and on the force-scalar oracle.
TEST(LayoutTest, COuterConvBitExactInt8) {
  for (const bool force_scalar : {false, true}) {
    Rng rng_a(73);
    Rng rng_b(73);
    Conv2D base(6, 20, 3, 1, 1, rng_a);
    Conv2D c_outer(6, 20, 3, 1, 1, rng_b);
    KernelPlan plan = c_outer.plan();
    plan.layout = ActivationLayout::kCOuter;
    c_outer.SetKernelPlan(plan);
    base.SetPrecision(Precision::kInt8);
    c_outer.SetPrecision(Precision::kInt8);

    Tensor input = RandomTensor(TensorShape{1, 9, 9, 6}, 74);
    SetGemmForceScalar(force_scalar);
    Tensor expected = base.Forward(input);
    Tensor actual = c_outer.Forward(input);
    SetGemmForceScalar(false);
    ASSERT_TRUE(expected.shape() == actual.shape());
    for (int64_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(expected[i], actual[i])
          << "int8 c-outer diverged at " << i << " (force_scalar=" << force_scalar << ")";
    }
  }
}

// ------------------------------------------------------ panel-width parity --

// Kernel-level: the same B packed at the native width and at 16 must
// produce the same C across randomized shapes (partial panels, remainder
// rows), intrinsic and force-scalar.
TEST(PanelTest, KernelLevelPanelParityFloat) {
  Rng shape_rng(81);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = 1 + static_cast<int>(shape_rng.NextBelow(21));
    const int n = 1 + static_cast<int>(shape_rng.NextBelow(2 * GemmNativePanelWidth() + 9));
    const int k = 1 + static_cast<int>(shape_rng.NextBelow(60));
    Tensor a = RandomTensor(TensorShape{1, 1, m, k}, 400 + trial);
    Tensor b = RandomTensor(TensorShape{1, 1, n, k}, 500 + trial);
    Tensor bias = RandomTensor(TensorShape{1, 1, 1, n}, 600 + trial);

    std::vector<float> packed_native(PackedPanelFloats(n, k, GemmNativePanelWidth()));
    std::vector<float> packed_narrow(PackedPanelFloats(n, k, kGemmTileNMin));
    PackFilterPanels(b.data(), n, k, packed_native.data(), GemmNativePanelWidth());
    PackFilterPanels(b.data(), n, k, packed_narrow.data(), kGemmTileNMin);

    for (const bool force_scalar : {false, true}) {
      std::vector<float> c_native(static_cast<size_t>(m) * n, -1.0f);
      std::vector<float> c_narrow(static_cast<size_t>(m) * n, 1.0f);
      SetGemmForceScalar(force_scalar);
      GemmPackedEx(m, n, k, a.data(), packed_native.data(), bias.data(),
                   GemmEpilogue::kBiasRelu, c_native.data(), n, GemmNativePanelWidth());
      GemmPackedEx(m, n, k, a.data(), packed_narrow.data(), bias.data(),
                   GemmEpilogue::kBiasRelu, c_narrow.data(), n, kGemmTileNMin);
      SetGemmForceScalar(false);
      for (size_t i = 0; i < c_native.size(); ++i) {
        ASSERT_NEAR(c_native[i], c_narrow[i], 1e-5f)
            << "m=" << m << " n=" << n << " k=" << k << " scalar=" << force_scalar;
      }
    }
  }
}

// Int8 panel parity is exact: both widths sum the same integer products and
// run the identical dequantizing store per element.
TEST(PanelTest, KernelLevelPanelParityInt8) {
  Rng shape_rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = 1 + static_cast<int>(shape_rng.NextBelow(19));
    const int n = 1 + static_cast<int>(shape_rng.NextBelow(2 * GemmNativePanelWidth() + 9));
    const int k = 1 + static_cast<int>(shape_rng.NextBelow(50));
    Tensor b = RandomTensor(TensorShape{1, 1, n, k}, 700 + trial);
    Int8PackedFilters native;
    Int8PackedFilters narrow;
    PackFilterPanelsInt8(b.data(), n, k, &native, GemmNativePanelWidth());
    PackFilterPanelsInt8(b.data(), n, k, &narrow, kGemmTileNMin);
    ASSERT_EQ(native.panel_width, GemmNativePanelWidth());
    ASSERT_EQ(narrow.panel_width, kGemmTileNMin);

    Rng code_rng(800 + static_cast<uint64_t>(trial));
    std::vector<uint8_t> a(static_cast<size_t>(m) * native.k_padded, 0);
    for (auto& v : a) {
      v = static_cast<uint8_t>(code_rng.NextBelow(256));
    }
    ActivationQuant quant;
    quant.scale = 0.02f;
    quant.zero_point = static_cast<int32_t>(code_rng.NextBelow(256));
    Tensor bias = RandomTensor(TensorShape{1, 1, 1, n}, 900 + trial);

    for (const bool force_scalar : {false, true}) {
      std::vector<float> c_native(static_cast<size_t>(m) * n, -3.0f);
      std::vector<float> c_narrow(static_cast<size_t>(m) * n, 3.0f);
      SetGemmForceScalar(force_scalar);
      GemmInt8PackedEx(m, a.data(), native, quant, bias.data(), GemmEpilogue::kBias,
                       c_native.data(), n);
      GemmInt8PackedEx(m, a.data(), narrow, quant, bias.data(), GemmEpilogue::kBias,
                       c_narrow.data(), n);
      SetGemmForceScalar(false);
      for (size_t i = 0; i < c_native.size(); ++i) {
        ASSERT_EQ(c_native[i], c_narrow[i])
            << "m=" << m << " n=" << n << " k=" << k << " scalar=" << force_scalar;
      }
    }
  }
}

// Conv-level parity across panel widths, float and int8, fused fire module
// included — the shapes the planner actually flips.
TEST(PanelTest, ConvAndFireMatchAcrossPanelWidths) {
  for (const int width : {kGemmTileNMin, GemmNativePanelWidth()}) {
    SCOPED_TRACE(width);
    Rng rng_a(17);
    Rng rng_b(17);
    FireModule base(32, 8, 16, rng_a);
    FireModule pinned(32, 8, 16, rng_b);
    KernelPlan plan;
    plan.panel_width = width;
    pinned.squeeze().SetKernelPlan(plan);
    pinned.expand1x1().SetKernelPlan(plan);
    pinned.expand3x3().SetKernelPlan(plan);

    Tensor input = RandomTensor(TensorShape{1, 12, 12, 32}, 18);
    Tensor expected = base.Forward(input);
    Tensor actual = pinned.Forward(input);
    EXPECT_LE(MaxAbsDiff(expected, actual), 1e-5f) << "float fire, panel " << width;

    base.SetPrecision(Precision::kInt8);
    pinned.SetPrecision(Precision::kInt8);
    Tensor expected_i8 = base.Forward(input);
    Tensor actual_i8 = pinned.Forward(input);
    ASSERT_TRUE(expected_i8.shape() == actual_i8.shape());
    for (int64_t i = 0; i < expected_i8.size(); ++i) {
      ASSERT_EQ(expected_i8[i], actual_i8[i]) << "int8 fire, panel " << width;
    }
  }
}

// --------------------------------------------------------- planner choices --

TEST(PlannerTest, NarrowShapesPickThe16WideTile) {
  ScopedPlannerOverrides restore;
  Rng rng(21);
  Conv2D narrow(32, 8, 1, 1, 0, rng);
  Conv2D edge(32, 16, 3, 1, 1, rng);
  Conv2D wide(32, 64, 3, 1, 1, rng);
  const TensorShape shape{1, 8, 8, 32};
  narrow.PlanKernels(shape);
  edge.PlanKernels(shape);
  wide.PlanKernels(shape);
  if (GemmNativePanelWidth() > kGemmTileNMin) {
    // AVX-512 build: narrow output channels take the 16-wide sub-tile.
    EXPECT_EQ(narrow.plan().panel_width, kGemmTileNMin);
    EXPECT_EQ(edge.plan().panel_width, kGemmTileNMin);
  } else {
    EXPECT_EQ(narrow.plan().panel_width, GemmNativePanelWidth());
  }
  EXPECT_EQ(wide.plan().panel_width, GemmNativePanelWidth());
  EXPECT_EQ(narrow.plan().layout, ActivationLayout::kKhKwC);

  // Fire planning hands each inner conv its true input shape.
  Rng fire_rng(22);
  FireModule fire(64, 16, 64, fire_rng);
  fire.PlanKernels(TensorShape{1, 8, 8, 64});
  if (GemmNativePanelWidth() > kGemmTileNMin) {
    EXPECT_EQ(fire.squeeze().plan().panel_width, kGemmTileNMin);
    EXPECT_EQ(fire.expand1x1().plan().panel_width, GemmNativePanelWidth());
    EXPECT_EQ(fire.expand3x3().plan().panel_width, GemmNativePanelWidth());
  }

  // Global pinning overrides the heuristic (the A/B knob benches use).
  SetPlannerPanelOverride(kGemmTileNMin);
  wide.PlanKernels(shape);
  EXPECT_EQ(wide.plan().panel_width, kGemmTileNMin);
  SetPlannerPanelOverride(0);
  SetPlannerLayoutPolicy(LayoutPolicy::kForceCOuter);
  wide.PlanKernels(shape);
  EXPECT_EQ(wide.plan().layout, ActivationLayout::kCOuter);
  SetPlannerLayoutPolicy(LayoutPolicy::kAuto);

  // Plan rows surface the decisions for logging / bench JSON.
  std::vector<KernelPlanRow> rows;
  fire.AppendKernelPlanRows(&rows);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].panel_width, fire.squeeze().plan().panel_width);
}

// A plan pinned via SetKernelPlan must survive later PlanKernels calls —
// Network::PlanForward re-plans on every input-shape change, and a pin the
// replan silently reverted would make an A/B measure the heuristic's
// kernel while reporting the pinned one.
TEST(PlannerTest, PinnedPlanSurvivesReplanning) {
  Rng rng(25);
  Conv2D conv(32, 64, 3, 1, 1, rng);
  const TensorShape shape{1, 8, 8, 32};
  KernelPlan pinned;
  pinned.panel_width = kGemmTileNMin;
  pinned.layout = ActivationLayout::kCOuter;
  conv.SetKernelPlan(pinned);
  conv.PlanKernels(shape);
  EXPECT_EQ(conv.plan().panel_width, kGemmTileNMin);
  EXPECT_EQ(conv.plan().layout, ActivationLayout::kCOuter);
  conv.ClearKernelPlanPin();
  conv.PlanKernels(shape);
  EXPECT_EQ(conv.plan().panel_width, GemmNativePanelWidth());  // 64 channels -> native width
  EXPECT_EQ(conv.plan().layout, ActivationLayout::kKhKwC);
}

// Flipping the plan must invalidate the pack caches (stale panels packed at
// another width or K order would produce garbage, not parity), while weight
// invalidation keeps working under a constant plan.
TEST(PlannerTest, PlanKeyedPackCacheInvalidation) {
  Rng rng(31);
  Conv2D conv(8, 24, 3, 1, 1, rng);
  Tensor input = RandomTensor(TensorShape{1, 9, 9, 8}, 32, 0.0f, 1.0f);

  // Float: warm the cache at the native width, then flip width and layout.
  Tensor base = conv.Forward(input);
  KernelPlan plan;
  plan.panel_width = kGemmTileNMin;
  conv.SetKernelPlan(plan);
  EXPECT_LE(MaxAbsDiff(base, conv.Forward(input)), 1e-5f) << "narrow-panel repack";
  plan.layout = ActivationLayout::kCOuter;
  conv.SetKernelPlan(plan);
  EXPECT_LE(MaxAbsDiff(base, conv.Forward(input)), 1e-4f) << "c-outer repack";

  // Int8: same dance, bit-exact expectations.
  conv.SetKernelPlan(KernelPlan{});
  conv.SetPrecision(Precision::kInt8);
  Tensor base_i8 = conv.Forward(input);
  conv.SetKernelPlan(plan);  // narrow + c-outer at once
  Tensor flipped_i8 = conv.Forward(input);
  for (int64_t i = 0; i < base_i8.size(); ++i) {
    ASSERT_EQ(base_i8[i], flipped_i8[i]);
  }

  // Weight mutation still invalidates under an unchanged plan.
  Tensor new_weights = RandomTensor(conv.weights().value.shape(), 33);
  Tensor new_bias = RandomTensor(conv.bias().value.shape(), 34);
  conv.SetWeights(new_weights, new_bias);
  EXPECT_GT(MaxAbsDiff(flipped_i8, conv.Forward(input)), 1e-3f)
      << "stale pack survived SetWeights under a pinned plan";
}

// ------------------------------------------------------- u8-direct parity --

// The fused resize->quantize preprocessing must produce byte-identical
// codes to the float staging pipeline under the same quantization.
TEST(U8DirectTest, PreprocessingBitIdenticalToFloatThenQuantize) {
  Rng rng(41);
  AdImageOptions options;
  Bitmap ad = GenerateAdImage(rng, options);
  for (const float max_value : {1.0f, 0.75f, 2.5f}) {
    const ActivationQuant quant = ComputeActivationQuant(0.0f, max_value);
    for (const int channels : {3, 4}) {
      const int size = 48;
      Tensor staged(1, size, size, channels);
      BitmapToTensorInto(ad, size, channels, staged.data());
      std::vector<uint8_t> via_float(static_cast<size_t>(staged.size()));
      QuantizeActivations(staged.data(), staged.size(), quant, via_float.data());

      std::vector<uint8_t> direct(static_cast<size_t>(staged.size()), 0);
      BitmapToTensorU8Into(ad, size, channels, quant.scale, quant.zero_point,
                           direct.data());
      ASSERT_EQ(via_float, direct) << "max=" << max_value << " channels=" << channels;
    }
  }
}

// End-to-end: a u8-direct classifier and a float-then-quantize classifier
// over the same weights must make bit-identical decisions (and probabilities)
// — the first conv's pinned input calibration gives both pipelines one
// shared quantization, and the LUT preprocessing reproduces it exactly.
TEST(U8DirectTest, ClassifierDecisionsBitIdentical) {
  const PercivalNetConfig config = TestProfile();
  AdClassifier direct(BuildPercivalNet(config), config);
  AdClassifier staged(BuildPercivalNet(config), config);
  staged.set_use_u8_direct(false);
  direct.SetPrecision(Precision::kInt8);
  staged.SetPrecision(Precision::kInt8);
  EXPECT_TRUE(direct.u8_direct_active());
  EXPECT_FALSE(staged.u8_direct_active());
  // Match the calibration the u8-direct classifier pinned on its first conv
  // so the staged float path quantizes identically.
  const ActivationCalibration unit_range{0.0f, 1.0f, true};
  staged.network().layer(0).ConsumeCalibration(&unit_range, 1);

  Rng rng(51);
  std::vector<Bitmap> images;
  for (int i = 0; i < 12; ++i) {
    if (i % 2 == 0) {
      AdImageOptions options;
      images.push_back(GenerateAdImage(rng, options));
    } else {
      ContentImageOptions options;
      images.push_back(GenerateContentImage(rng, options));
    }
  }
  for (const Bitmap& image : images) {
    const ClassifyResult a = direct.Classify(image);
    const ClassifyResult b = staged.Classify(image);
    ASSERT_EQ(a.ad_probability, b.ad_probability) << "u8-direct drifted from float staging";
    ASSERT_EQ(a.is_ad, b.is_ad);
  }

  // Batch path parity too.
  std::vector<const Bitmap*> batch;
  for (const Bitmap& image : images) {
    batch.push_back(&image);
  }
  const std::vector<ClassifyResult> a_batch = direct.ClassifyBatch(batch);
  const std::vector<ClassifyResult> b_batch = staged.ClassifyBatch(batch);
  ASSERT_EQ(a_batch.size(), b_batch.size());
  for (size_t i = 0; i < a_batch.size(); ++i) {
    ASSERT_EQ(a_batch[i].ad_probability, b_batch[i].ad_probability);
  }

  // Every direct classification ran without the float staging tensor; every
  // staged one kept it.
  EXPECT_EQ(direct.stats().u8_direct, direct.stats().classified);
  EXPECT_EQ(staged.stats().u8_direct, 0);
}

// The u8-direct classify path is allocation-free at steady state: after the
// first classification warms the thread's buffers, the scratch arena stops
// growing (the float staging tensor never existed — asserted above via the
// u8_direct stat — and the code buffer is reused).
TEST(U8DirectTest, SteadyStateArenaStable) {
  const PercivalNetConfig config = TestProfile();
  AdClassifier classifier(BuildPercivalNet(config), config);
  classifier.SetPrecision(Precision::kInt8);
  ASSERT_TRUE(classifier.u8_direct_active());

  Rng rng(55);
  AdImageOptions options;
  Bitmap ad = GenerateAdImage(rng, options);
  classifier.Classify(ad);  // warmup: sizes the code buffer + arena
  const size_t warm_capacity = LocalArena().CapacityFloats();
  for (int i = 0; i < 5; ++i) {
    classifier.Classify(ad);
    ASSERT_EQ(LocalArena().CapacityFloats(), warm_capacity)
        << "arena grew on steady-state u8-direct classification " << i;
  }
  EXPECT_EQ(classifier.stats().u8_direct, classifier.stats().classified);
}

// -------------------------------------------- accuracy guard under planner --

// The 64-image float-vs-int8 accuracy guard, rerun with the planner pinned
// to the narrow panel on every conv (the plan the heuristic picks for the
// narrow profiles): quantized decisions must not drift under the planner's
// kernel choices.
TEST(PlannerGuardTest, AccuracyGuardUnderNarrowPanelPlan) {
  ScopedPlannerOverrides restore;
  SetPlannerPanelOverride(kGemmTileNMin);

  const PercivalNetConfig config = TestProfile();
  Network float_net = BuildPercivalNet(config);
  Network int8_net = BuildPercivalNet(config);  // same init_seed -> same weights
  int8_net.SetPrecision(Precision::kInt8);
  float_net.SetTrainingMode(false);
  int8_net.SetTrainingMode(false);

  const int kBatch = 64;
  Rng rng(123);
  std::vector<Bitmap> images;
  images.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    if (i % 2 == 0) {
      AdImageOptions options;
      images.push_back(GenerateAdImage(rng, options));
    } else {
      ContentImageOptions options;
      images.push_back(GenerateContentImage(rng, options));
    }
  }
  Tensor batch(kBatch, config.input_size, config.input_size, config.input_channels);
  for (int i = 0; i < kBatch; ++i) {
    BitmapToTensorInto(images[static_cast<size_t>(i)], config.input_size,
                       config.input_channels, batch.SampleData(i));
  }

  Tensor float_logits = float_net.Forward(batch);
  Tensor int8_logits = int8_net.Forward(batch);
  // The forward planned under the override: every conv runs the 16-wide tile.
  for (const KernelPlanRow& row : int8_net.CollectKernelPlanRows()) {
    ASSERT_EQ(row.panel_width, kGemmTileNMin) << row.layer;
  }

  int agree = 0;
  float worst_logit_diff = 0.0f;
  for (int i = 0; i < kBatch; ++i) {
    if (float_logits.ArgMaxInSample(i) == int8_logits.ArgMaxInSample(i)) {
      ++agree;
    }
    for (int c = 0; c < config.classes; ++c) {
      worst_logit_diff = std::max(
          worst_logit_diff, std::abs(float_logits.at(i, 0, 0, c) - int8_logits.at(i, 0, 0, c)));
    }
  }
  EXPECT_GE(static_cast<double>(agree) / kBatch, 0.99)
      << "int8 under the narrow-panel plan flipped " << (kBatch - agree) << " decisions";
  EXPECT_LE(worst_logit_diff, 0.05f);
}

}  // namespace
}  // namespace percival
