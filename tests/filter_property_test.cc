// Property tests for the filter engine: the wildcard matcher against a
// brute-force reference implementation on random patterns/texts, rule
// parsing round-trips, and engine-level invariants (exception dominance,
// monotonicity) across randomly generated rule sets.
#include <gtest/gtest.h>

#include <string>

#include "src/base/rng.h"
#include "src/filter/engine.h"
#include "src/filter/matcher.h"

namespace percival {
namespace {

// Reference matcher: straightforward exponential-time recursion, obviously
// correct for short patterns. '^' = separator class, '*' = any run.
bool ReferenceMatch(const std::string& pattern, const std::string& text, size_t pi, size_t ti,
                    bool anchor_end) {
  auto is_separator = [](char c) {
    return !(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == '.' ||
             c == '%');
  };
  if (pi == pattern.size()) {
    return !anchor_end || ti == text.size();
  }
  const char pc = pattern[pi];
  if (pc == '*') {
    for (size_t skip = ti; skip <= text.size(); ++skip) {
      if (ReferenceMatch(pattern, text, pi + 1, skip, anchor_end)) {
        return true;
      }
    }
    return false;
  }
  if (ti < text.size()) {
    const char tc = text[ti];
    if (pc == '^' ? is_separator(tc) : pc == tc) {
      return ReferenceMatch(pattern, text, pi + 1, ti + 1, anchor_end);
    }
  }
  // '^' also matches the virtual end-of-address position.
  if (pc == '^' && ti == text.size()) {
    return ReferenceMatch(pattern, text, pi + 1, ti, anchor_end);
  }
  return false;
}

std::string RandomPattern(Rng& rng) {
  static const char kAlphabet[] = "ab/.*^";
  std::string pattern;
  const int length = rng.NextInt(1, 8);
  for (int i = 0; i < length; ++i) {
    pattern += kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)];
  }
  return pattern;
}

std::string RandomText(Rng& rng) {
  static const char kAlphabet[] = "ab/.:";
  std::string text;
  const int length = rng.NextInt(0, 10);
  for (int i = 0; i < length; ++i) {
    text += kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)];
  }
  return text;
}

TEST(MatcherPropertyTest, AgreesWithReferenceOnRandomInputs) {
  Rng rng(42);
  int matched = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    const std::string pattern = RandomPattern(rng);
    const std::string text = RandomText(rng);
    const bool anchor_end = rng.NextBool();
    const bool expected = ReferenceMatch(pattern, text, 0, 0, anchor_end);
    const bool actual = PatternMatchesAt(pattern, text, 0, anchor_end);
    ASSERT_EQ(actual, expected)
        << "pattern='" << pattern << "' text='" << text << "' anchor_end=" << anchor_end;
    matched += expected ? 1 : 0;
  }
  // Sanity: the corpus exercises both outcomes.
  EXPECT_GT(matched, 100);
  EXPECT_LT(matched, 4900);
}

TEST(MatcherPropertyTest, WildcardIsNeverMoreRestrictive) {
  // Property: replacing any literal character with '*' can only grow the
  // set of matched texts.
  Rng rng(43);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string pattern = RandomPattern(rng);
    const std::string text = RandomText(rng);
    const bool before = PatternMatchesAt(pattern, text, 0, false);
    const size_t position = rng.NextBelow(pattern.size());
    pattern[position] = '*';
    const bool after = PatternMatchesAt(pattern, text, 0, false);
    if (before) {
      EXPECT_TRUE(after) << "pattern='" << pattern << "' text='" << text << "'";
    }
  }
}

TEST(EnginePropertyTest, ExceptionAlwaysDominatesAnyRuleSet) {
  // For random rule sets containing a block and an exception for the same
  // host, the exception must win regardless of rule order and noise rules.
  Rng rng(44);
  for (int trial = 0; trial < 50; ++trial) {
    FilterEngine engine;
    std::vector<std::string> rules;
    rules.push_back("||target.example^");
    rules.push_back("@@||target.example^");
    for (int i = 0; i < 10; ++i) {
      rules.push_back("||noise" + std::to_string(rng.NextBelow(100)) + ".example^");
    }
    rng.Shuffle(rules);
    engine.AddList(rules);
    RequestContext request;
    request.url = Url::Parse("https://target.example/x.png");
    request.page_host = "site.example";
    request.type = ResourceType::kImage;
    EXPECT_FALSE(engine.ShouldBlockRequest(request).blocked) << "trial " << trial;
  }
}

TEST(EnginePropertyTest, AddingBlockRulesIsMonotonic) {
  // Adding a (non-exception) rule never un-blocks a previously blocked
  // request.
  Rng rng(45);
  FilterEngine engine;
  std::vector<RequestContext> requests;
  for (int i = 0; i < 20; ++i) {
    RequestContext request;
    request.url = Url::Parse("https://host" + std::to_string(i) + ".example/p/" +
                             std::to_string(i) + ".png");
    request.page_host = "site.example";
    request.type = ResourceType::kImage;
    requests.push_back(request);
  }
  std::vector<bool> blocked(requests.size(), false);
  for (int step = 0; step < 20; ++step) {
    engine.AddRule("||host" + std::to_string(rng.NextBelow(20)) + ".example^");
    for (size_t i = 0; i < requests.size(); ++i) {
      const bool now = engine.ShouldBlockRequest(requests[i]).blocked;
      if (blocked[i]) {
        EXPECT_TRUE(now) << "request " << i << " un-blocked at step " << step;
      }
      blocked[i] = now;
    }
  }
}

TEST(RuleParsePropertyTest, ParserNeverCrashesOnRandomLines) {
  Rng rng(46);
  static const char kAlphabet[] = "abc.|^*$@#!~,=/-";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string line;
    const int length = rng.NextInt(0, 24);
    for (int i = 0; i < length; ++i) {
      line += kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)];
    }
    (void)ParseRuleLine(line);  // must not crash; may reject
  }
  SUCCEED();
}

TEST(RuleParsePropertyTest, ParsedNetworkRulesAreMatchable) {
  // Any accepted network rule must be safely matchable against arbitrary
  // URLs (no crashes, no pathological behaviour).
  Rng rng(47);
  static const char kAlphabet[] = "ab.|^*$@/";
  for (int trial = 0; trial < 1000; ++trial) {
    std::string line;
    const int length = rng.NextInt(1, 16);
    for (int i = 0; i < length; ++i) {
      line += kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)];
    }
    std::optional<ParsedRule> parsed = ParseRuleLine(line);
    if (!parsed || !parsed->network) {
      continue;
    }
    RequestContext request;
    request.url = Url::Parse("https://a.b.example/path/a.png?q=1");
    request.page_host = "site.example";
    request.type = ResourceType::kImage;
    (void)MatchesNetworkRule(*parsed->network, request);
  }
  SUCCEED();
}

}  // namespace
}  // namespace percival
