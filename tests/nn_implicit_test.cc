// Property tests for the implicit-GEMM convolution path: interior output
// columns stream NHWC activations in place through a cached offset table
// instead of a materialized im2col panel (GatherPolicy::kImplicit). The
// contract checked here, swept across every runtime SIMD rung the host
// supports (SetSimdTierCap walk, same idiom as nn_dispatch_test):
//   * float: implicit agrees with the naive oracle AND the materialized
//     gather within 1e-4, including the always-compiled scalar implicit
//     kernel (SetGemmForceScalar);
//   * int8: implicit logits and requantized u8 codes are BIT-IDENTICAL to
//     the materialized gather and to the scalar implicit oracle;
//   * the planner picks implicit exactly for multi-tap kh-kw-c plans with a
//     non-degenerate interior, and the force modes pin it for A/Bs;
//   * gather traffic: an interior-dominant 3x3 drops conv im2col bytes and
//     arena high-water by >= 8x vs materialized, and a pad-0 shape (no edge
//     columns at all) drops them to exactly zero.
// Shapes deliberately include odd/narrow channel counts (int8 falls back to
// materialized when kernel*channels is not kInt8KUnit-aligned — parity must
// hold regardless), stride 2, and tiny inputs where edges dominate or the
// interior is empty (per-forward fallback).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/nn/conv.h"
#include "src/nn/gemm.h"
#include "src/nn/simd.h"

namespace percival {
namespace {

constexpr float kParityTolerance = 1e-4f;

// Restores the uncapped ladder (and force-scalar off) however a test exits.
struct TierCapGuard {
  ~TierCapGuard() {
    SetSimdTierCap(SimdTier::kVnni);
    SetGemmForceScalar(false);
  }
};

// Restores the default gather heuristic however a test exits.
struct GatherPolicyGuard {
  ~GatherPolicyGuard() { SetPlannerGatherPolicy(GatherPolicyMode::kAuto); }
};

Tensor RandomTensor(const TensorShape& shape, uint64_t seed) {
  Tensor tensor(shape);
  Rng rng(seed);
  for (int64_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = rng.NextFloat(-1.0f, 1.0f);
  }
  return tensor;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.shape() == b.shape());
  float worst = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

std::vector<SimdTier> SupportedTiers() {
  std::vector<SimdTier> tiers;
  for (int t = static_cast<int>(DetectedSimdTier()); t >= 0; --t) {
    tiers.push_back(static_cast<SimdTier>(t));
  }
  return tiers;
}

struct ImplicitCase {
  int in_channels;
  int out_channels;
  int kernel;
  int stride;
  int pad;
  int h;
  int w;
};

std::string CaseLabel(const ImplicitCase& c, SimdTier tier) {
  std::ostringstream out;
  out << SimdTierName(tier) << " c" << c.in_channels << "->" << c.out_channels << " k"
      << c.kernel << " s" << c.stride << " p" << c.pad << " " << c.h << "x" << c.w;
  return out.str();
}

// The randomized shape sweep: odd/narrow channels (3, 5 break the int8
// kInt8KUnit segment alignment -> materialized fallback must stay correct),
// stride 2, pad 0/1, tiny inputs where the padded edges dominate, one shape
// whose interior is empty (3x3 input, 3x3 kernel, pad 1 -> per-forward
// fallback), and a 1x1 kernel (never implicit, heuristic must not regress it).
const ImplicitCase kCases[] = {
    {3, 20, 3, 1, 1, 5, 5},    // odd channels, edges on every border
    {5, 20, 3, 1, 0, 7, 6},    // odd channels, no pad: all-interior rows
    {6, 20, 3, 2, 1, 7, 7},    // stride 2 with pad
    {8, 20, 3, 2, 0, 9, 7},    // stride 2, int8-aligned K segment
    {16, 20, 3, 1, 1, 4, 4},   // tiny input, edges dominate
    {1, 20, 3, 1, 1, 5, 5},    // single channel
    {4, 20, 1, 1, 0, 6, 5},    // 1x1: implicit ineligible by construction
    {3, 20, 3, 1, 1, 3, 3},    // single interior column per row
    {4, 20, 3, 1, 1, 3, 2},    // no interior columns: per-forward fallback
    {4, 12, 3, 2, 1, 6, 6},    // stride 2, aligned, non-square remainder
    {16, 40, 3, 1, 1, 8, 7},   // panel-remainder output channels
};

// Builds an eval-mode conv with its plan pinned to the given gather policy;
// identical seeds give identical He-initialized weights across builds.
Conv2D MakeConv(const ImplicitCase& c, uint64_t seed, GatherPolicy gather) {
  Rng rng(seed);
  Conv2D conv(c.in_channels, c.out_channels, c.kernel, c.stride, c.pad, rng);
  conv.SetTrainingMode(false);
  KernelPlan plan = conv.plan();
  plan.gather = gather;
  conv.SetKernelPlan(plan);
  return conv;
}

// Float parity: implicit vs naive oracle, vs materialized gather, and vs
// the scalar implicit kernel, every supported rung.
TEST(ImplicitGatherTest, FloatParityAcrossLadder) {
  TierCapGuard guard;
  for (SimdTier tier : SupportedTiers()) {
    SetSimdTierCap(tier);
    uint64_t seed = 100 + static_cast<uint64_t>(tier);
    for (const ImplicitCase& c : kCases) {
      ++seed;
      const std::string label = CaseLabel(c, tier);
      Tensor input = RandomTensor(TensorShape{2, c.h, c.w, c.in_channels}, seed);

      Conv2D naive = MakeConv(c, seed, GatherPolicy::kMaterialize);
      naive.set_use_gemm(false);
      Tensor ref = naive.Forward(input);

      Conv2D materialized = MakeConv(c, seed, GatherPolicy::kMaterialize);
      Tensor mat = materialized.Forward(input);

      Conv2D implicit = MakeConv(c, seed, GatherPolicy::kImplicit);
      Tensor impl = implicit.Forward(input);

      EXPECT_LE(MaxAbsDiff(ref, impl), kParityTolerance) << "vs naive: " << label;
      EXPECT_LE(MaxAbsDiff(mat, impl), kParityTolerance) << "vs materialized: " << label;

      // The always-compiled scalar implicit kernel is the portable oracle.
      SetGemmForceScalar(true);
      Tensor impl_scalar = implicit.Forward(input);
      SetGemmForceScalar(false);
      EXPECT_LE(MaxAbsDiff(impl_scalar, impl), kParityTolerance)
          << "vs scalar implicit: " << label;
      EXPECT_LE(MaxAbsDiff(ref, impl_scalar), kParityTolerance)
          << "scalar implicit vs naive: " << label;
    }
  }
}

// Int8 dequantized logits: implicit must be BIT-IDENTICAL to the
// materialized gather and to the scalar implicit oracle on every rung. Both
// builds quantize the same input from the same observed range and run the
// same packed weights, so any difference is a kernel bug.
TEST(ImplicitGatherTest, Int8BitExactAcrossLadder) {
  TierCapGuard guard;
  for (SimdTier tier : SupportedTiers()) {
    SetSimdTierCap(tier);
    uint64_t seed = 300 + static_cast<uint64_t>(tier);
    for (const ImplicitCase& c : kCases) {
      ++seed;
      const std::string label = CaseLabel(c, tier);
      Tensor input = RandomTensor(TensorShape{2, c.h, c.w, c.in_channels}, seed);

      Conv2D materialized = MakeConv(c, seed, GatherPolicy::kMaterialize);
      materialized.SetPrecision(Precision::kInt8);
      Tensor mat = materialized.Forward(input);

      Conv2D implicit = MakeConv(c, seed, GatherPolicy::kImplicit);
      implicit.SetPrecision(Precision::kInt8);
      Tensor impl = implicit.Forward(input);

      EXPECT_EQ(MaxAbsDiff(mat, impl), 0.0f) << "vs materialized: " << label;

      SetGemmForceScalar(true);
      Tensor impl_scalar = implicit.Forward(input);
      SetGemmForceScalar(false);
      EXPECT_EQ(MaxAbsDiff(impl_scalar, impl), 0.0f) << "vs scalar implicit: " << label;
    }
  }
}

// Requantize-in-epilogue (float input -> u8 codes): the implicit u8 sink
// must produce code-identical output to the materialized gather on every
// rung — the zero-float chain depends on it.
TEST(ImplicitGatherTest, Int8RequantCodesBitExactAcrossLadder) {
  TierCapGuard guard;
  const ActivationQuant out_quant{0.05f, 12};
  for (SimdTier tier : SupportedTiers()) {
    SetSimdTierCap(tier);
    uint64_t seed = 500 + static_cast<uint64_t>(tier);
    for (const ImplicitCase& c : kCases) {
      ++seed;
      const std::string label = CaseLabel(c, tier);
      Tensor input = RandomTensor(TensorShape{1, c.h, c.w, c.in_channels}, seed);

      Conv2D materialized = MakeConv(c, seed, GatherPolicy::kMaterialize);
      materialized.SetPrecision(Precision::kInt8);
      Conv2D implicit = MakeConv(c, seed, GatherPolicy::kImplicit);
      implicit.SetPrecision(Precision::kInt8);

      const TensorShape out_shape = implicit.OutputShape(input.shape());
      const int64_t out_elems = out_shape.Elements();
      std::vector<uint8_t> mat_codes(static_cast<size_t>(out_elems), 0);
      std::vector<uint8_t> impl_codes(static_cast<size_t>(out_elems), 0xcd);
      const int64_t sample = out_elems / out_shape.n;
      materialized.ForwardIntoU8(input, GemmEpilogue::kBiasRelu, out_quant,
                                 mat_codes.data(), out_shape.c, sample);
      implicit.ForwardIntoU8(input, GemmEpilogue::kBiasRelu, out_quant, impl_codes.data(),
                             out_shape.c, sample);
      EXPECT_EQ(mat_codes, impl_codes) << label;
    }
  }
}

// The planner's gather heuristic: implicit exactly for multi-tap kh-kw-c
// plans with a non-degenerate interior; 1x1 and interior-free shapes stay
// materialized; the force modes pin either answer for A/B runs.
TEST(ImplicitGatherTest, PlannerGatherHeuristicAndPins) {
  GatherPolicyGuard guard;
  SetPlannerGatherPolicy(GatherPolicyMode::kAuto);
  EXPECT_EQ(ChooseConvKernelPlan(32, 3, 1, 1, 32).gather, GatherPolicy::kImplicit);
  // Stride 2, width 19: interior run (19-3+1)/2+1 - 1 = 8 columns — exactly
  // the kImplicitMinInteriorRun floor.
  EXPECT_EQ(ChooseConvKernelPlan(32, 3, 2, 1, 19).gather, GatherPolicy::kImplicit);
  // Stride 2, width 17: a 7-column interior run is below the floor; the
  // materialized whole-image GEMM wins short rows.
  EXPECT_EQ(ChooseConvKernelPlan(32, 3, 2, 1, 17).gather, GatherPolicy::kMaterialize);
  // Unknown width (PlanKernels before any input): assume a wide interior.
  EXPECT_EQ(ChooseConvKernelPlan(32, 3).gather, GatherPolicy::kImplicit);
  // 1x1 already skips im2col entirely; nothing for implicit to win.
  EXPECT_EQ(ChooseConvKernelPlan(32, 1, 1, 0, 32).gather, GatherPolicy::kMaterialize);
  // 3-wide input keeps one interior column (the center sees all kw taps),
  // but one column is far below the interior-run floor.
  EXPECT_EQ(ChooseConvKernelPlan(32, 3, 1, 1, 3).gather, GatherPolicy::kMaterialize);
  // 2-wide input under a 3x3/pad-1 kernel: every output column touches pad.
  EXPECT_EQ(ChooseConvKernelPlan(32, 3, 1, 1, 2).gather, GatherPolicy::kMaterialize);

  SetPlannerGatherPolicy(GatherPolicyMode::kForceMaterialize);
  EXPECT_EQ(ChooseConvKernelPlan(32, 3, 1, 1, 32).gather, GatherPolicy::kMaterialize);
  SetPlannerGatherPolicy(GatherPolicyMode::kForceImplicit);
  EXPECT_EQ(ChooseConvKernelPlan(32, 3, 1, 1, 2).gather, GatherPolicy::kImplicit);
}

// Satellite: the gather-traffic counters. An interior-dominant 3x3 under the
// implicit plan only im2cols the pad-edge columns, so both the bytes moved
// through the gathers and the scratch-arena high-water must collapse vs the
// materialized run; with pad 0 there are no edge columns and conv gather
// scratch drops to exactly zero.
TEST(ImplicitGatherTest, ImplicitDropsGatherTrafficAndArenaHighWater) {
  TierCapGuard guard;
  const ImplicitCase big{16, 32, 3, 1, 1, 32, 32};
  Tensor input = RandomTensor(TensorShape{1, big.h, big.w, big.in_channels}, 7);

  Conv2D materialized = MakeConv(big, 7, GatherPolicy::kMaterialize);
  ResetGemmGatherStats();
  (void)materialized.Forward(input);
  const GemmGatherStats mat = GetGemmGatherStats();
  EXPECT_GT(mat.bytes_gathered, 0u);
  EXPECT_GT(mat.arena_high_water_bytes, 0u);

  Conv2D implicit = MakeConv(big, 7, GatherPolicy::kImplicit);
  ResetGemmGatherStats();
  (void)implicit.Forward(input);
  const GemmGatherStats impl = GetGemmGatherStats();
  // 2 edge columns of 32 vs a full 32x32 materialization: >= 8x on both axes
  // (the exact ratio is 16x; 8x keeps the assertion robust to chunking).
  EXPECT_LE(impl.bytes_gathered * 8, mat.bytes_gathered);
  EXPECT_LE(impl.arena_high_water_bytes * 8, mat.arena_high_water_bytes);

  // Pad 0: every output column is interior, so the implicit forward never
  // touches the im2col gathers or the scratch arena at all.
  const ImplicitCase pad0{16, 32, 3, 1, 0, 32, 32};
  Tensor input0 = RandomTensor(TensorShape{1, pad0.h, pad0.w, pad0.in_channels}, 8);
  Conv2D implicit0 = MakeConv(pad0, 8, GatherPolicy::kImplicit);
  ResetGemmGatherStats();
  (void)implicit0.Forward(input0);
  const GemmGatherStats impl0 = GetGemmGatherStats();
  EXPECT_EQ(impl0.bytes_gathered, 0u);
  EXPECT_EQ(impl0.arena_high_water_bytes, 0u);

  // Same collapse on the int8 path (u8 gathers count bytes, not floats).
  Conv2D materialized_i8 = MakeConv(big, 7, GatherPolicy::kMaterialize);
  materialized_i8.SetPrecision(Precision::kInt8);
  ResetGemmGatherStats();
  (void)materialized_i8.Forward(input);
  const GemmGatherStats mat_i8 = GetGemmGatherStats();
  EXPECT_GT(mat_i8.bytes_gathered, 0u);

  Conv2D implicit_i8 = MakeConv(big, 7, GatherPolicy::kImplicit);
  implicit_i8.SetPrecision(Precision::kInt8);
  ResetGemmGatherStats();
  (void)implicit_i8.Forward(input);
  const GemmGatherStats impl_i8 = GetGemmGatherStats();
  EXPECT_LE(impl_i8.bytes_gathered * 8, mat_i8.bytes_gathered);
}

}  // namespace
}  // namespace percival
