// Crawler tests: dataset post-processing (dedup / balance / split), the
// screenshot crawler's race condition, and the pipeline crawler's race-free
// capture guarantee.
#include <gtest/gtest.h>

#include "src/crawler/dataset.h"
#include "src/crawler/pipeline_crawler.h"
#include "src/crawler/screenshot_crawler.h"
#include "src/img/draw.h"
#include "src/webgen/ad_network.h"

namespace percival {
namespace {

LabeledImage Solid(Color color, bool is_ad) {
  LabeledImage example;
  example.image = Bitmap(16, 16, color);
  example.is_ad = is_ad;
  return example;
}

TEST(DatasetTest, CountsByClass) {
  Dataset dataset;
  dataset.Add(Solid(Color{1, 0, 0, 255}, true));
  dataset.Add(Solid(Color{0, 1, 0, 255}, false));
  dataset.Add(Solid(Color{0, 0, 1, 255}, false));
  EXPECT_EQ(dataset.size(), 3);
  EXPECT_EQ(dataset.ad_count(), 1);
  EXPECT_EQ(dataset.non_ad_count(), 2);
}

TEST(DatasetTest, DeduplicateRemovesExactCopies) {
  Dataset dataset;
  dataset.Add(Solid(Color{5, 5, 5, 255}, true));
  dataset.Add(Solid(Color{5, 5, 5, 255}, true));
  dataset.Add(Solid(Color{200, 5, 5, 255}, true));
  EXPECT_EQ(dataset.Deduplicate(0), 1);
  EXPECT_EQ(dataset.size(), 2);
}

TEST(DatasetTest, DeduplicateNearDuplicatesSameClassOnly) {
  Rng rng(1);
  Dataset dataset;
  Bitmap base(32, 32, Color{100, 100, 100, 255});
  FillRect(base, Rect{0, 0, 16, 32}, Color{240, 240, 240, 255});
  Bitmap near = base;
  AddSpeckleNoise(near, Rect{0, 0, 4, 4}, 2.0f, rng);
  LabeledImage a;
  a.image = base;
  a.is_ad = true;
  LabeledImage b;
  b.image = near;
  b.is_ad = true;
  LabeledImage c;
  c.image = near;
  c.is_ad = false;  // same pixels, different class: must survive
  dataset.Add(a);
  dataset.Add(b);
  dataset.Add(c);
  dataset.Deduplicate(4);
  EXPECT_EQ(dataset.size(), 2);
  EXPECT_EQ(dataset.ad_count(), 1);
  EXPECT_EQ(dataset.non_ad_count(), 1);
}

TEST(DatasetTest, BalanceEqualizesClasses) {
  Dataset dataset;
  for (int i = 0; i < 10; ++i) {
    dataset.Add(Solid(Color{static_cast<uint8_t>(i), 0, 0, 255}, false));
  }
  for (int i = 0; i < 4; ++i) {
    dataset.Add(Solid(Color{0, static_cast<uint8_t>(i), 0, 255}, true));
  }
  dataset.Balance();
  EXPECT_EQ(dataset.ad_count(), 4);
  EXPECT_EQ(dataset.non_ad_count(), 4);
}

TEST(DatasetTest, BalanceOnEmptyIsNoop) {
  Dataset dataset;
  dataset.Balance();
  EXPECT_EQ(dataset.size(), 0);
}

TEST(DatasetTest, SplitValidationTakesTail) {
  Dataset dataset;
  for (int i = 0; i < 10; ++i) {
    dataset.Add(Solid(Color{static_cast<uint8_t>(i), 0, 0, 255}, i % 2 == 0));
  }
  Dataset validation = dataset.SplitValidation(0.3);
  EXPECT_EQ(validation.size(), 3);
  EXPECT_EQ(dataset.size(), 7);
}

TEST(DatasetTest, ShuffleIsDeterministic) {
  auto build = [] {
    Dataset dataset;
    for (int i = 0; i < 20; ++i) {
      dataset.Add(Solid(Color{static_cast<uint8_t>(i), 0, 0, 255}, false));
    }
    return dataset;
  };
  Dataset a = build();
  Dataset b = build();
  Rng rng_a(3);
  Rng rng_b(3);
  a.Shuffle(rng_a);
  b.Shuffle(rng_b);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.example(i).image.GetPixel(0, 0).r, b.example(i).image.GetPixel(0, 0).r);
  }
}

class CrawlerFixture : public ::testing::Test {
 protected:
  CrawlerFixture()
      : networks_(BuildAdNetworks(MakeEcosystem())),
        generator_(MakeSiteConfig(), networks_) {
    easylist_.AddList(BuildSyntheticEasyList(networks_));
  }

  static AdEcosystemConfig MakeEcosystem() {
    AdEcosystemConfig config;
    config.network_count = 6;
    config.listed_fraction = 1.0;  // full coverage => clean labels
    return config;
  }

  static SiteGenConfig MakeSiteConfig() {
    SiteGenConfig config;
    config.seed = 77;
    config.iframe_latency_max_ms = 900.0;
    return config;
  }

  std::vector<AdNetwork> networks_;
  SiteGenerator generator_;
  FilterEngine easylist_;
};

TEST_F(CrawlerFixture, ScreenshotCrawlProducesBlankRacyCaptures) {
  ScreenshotCrawlConfig config;
  config.sites = 8;
  config.pages_per_site = 2;
  config.screenshot_delay_ms = 200.0;  // aggressive: many iframes race
  ScreenshotCrawlStats stats;
  Dataset dataset = RunScreenshotCrawl(generator_, easylist_, config, &stats);
  EXPECT_GT(dataset.size(), 0);
  EXPECT_GT(stats.blank_captures, 0)
      << "the race must produce white-space captures (§4.4.2)";
  EXPECT_GT(stats.elements_matched, 0);
  EXPECT_GT(stats.elements_unmatched, 0);
}

TEST_F(CrawlerFixture, LongerDelayReducesBlankCaptures) {
  ScreenshotCrawlConfig fast;
  fast.sites = 8;
  fast.pages_per_site = 2;
  fast.screenshot_delay_ms = 100.0;
  ScreenshotCrawlConfig slow = fast;
  slow.screenshot_delay_ms = 5000.0;
  ScreenshotCrawlStats fast_stats;
  ScreenshotCrawlStats slow_stats;
  RunScreenshotCrawl(generator_, easylist_, fast, &fast_stats);
  RunScreenshotCrawl(generator_, easylist_, slow, &slow_stats);
  EXPECT_LT(slow_stats.blank_captures, fast_stats.blank_captures);
}

TEST_F(CrawlerFixture, PipelineCrawlNeverCapturesBlanks) {
  PipelineCrawlConfig config;
  config.sites = 8;
  config.pages_per_site = 2;
  PipelineCrawlStats stats;
  Dataset dataset =
      RunPipelineCrawl(generator_, EasyListLabeller(easylist_), config, &stats);
  EXPECT_GT(stats.frames_captured, 0);
  // Every captured ad frame has actual pixel content — the pipeline
  // crawler's guarantee.
  int blank_ads = 0;
  for (const LabeledImage& example : dataset.examples()) {
    if (example.is_ad &&
        NonBackgroundFraction(example.image, Color{255, 255, 255, 255}) < 0.01) {
      ++blank_ads;
    }
  }
  EXPECT_EQ(blank_ads, 0);
}

TEST_F(CrawlerFixture, PipelineCrawlCapturesMoreAdsThanRacyScreenshots) {
  ScreenshotCrawlConfig screenshot_config;
  screenshot_config.sites = 8;
  screenshot_config.pages_per_site = 2;
  screenshot_config.screenshot_delay_ms = 200.0;
  ScreenshotCrawlStats screenshot_stats;
  Dataset screenshot_set =
      RunScreenshotCrawl(generator_, easylist_, screenshot_config, &screenshot_stats);

  PipelineCrawlConfig pipeline_config;
  pipeline_config.sites = 8;
  pipeline_config.pages_per_site = 2;
  PipelineCrawlStats pipeline_stats;
  Dataset pipeline_set = RunPipelineCrawl(generator_, EasyListLabeller(easylist_),
                                          pipeline_config, &pipeline_stats);

  // Usable (non-blank) ad captures: pipeline wins.
  int screenshot_usable = 0;
  for (const LabeledImage& example : screenshot_set.examples()) {
    if (example.is_ad &&
        NonBackgroundFraction(example.image, Color{255, 255, 255, 255}) > 0.01) {
      ++screenshot_usable;
    }
  }
  int pipeline_usable = 0;
  for (const LabeledImage& example : pipeline_set.examples()) {
    if (example.is_ad) {
      ++pipeline_usable;
    }
  }
  EXPECT_GT(pipeline_usable, screenshot_usable);
}

TEST_F(CrawlerFixture, EasyListLabellerAgreesWithGroundTruthUnderFullCoverage) {
  PipelineCrawlConfig config;
  config.sites = 6;
  config.pages_per_site = 2;
  PipelineCrawlStats stats;
  RunPipelineCrawl(generator_, EasyListLabeller(easylist_), config, &stats);
  EXPECT_EQ(stats.label_errors, 0);
}

}  // namespace
}  // namespace percival
