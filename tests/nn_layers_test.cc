// Layer-level tests: shapes, semantics, and finite-difference gradient
// checks for every trainable layer (conv, fire) and backward correctness
// for the stateless ones.
#include <gtest/gtest.h>

#include <cmath>

#include "src/base/rng.h"
#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/fire.h"
#include "src/nn/pool.h"

namespace percival {
namespace {

// Numerically verifies dLoss/dInput of `layer` for loss = sum(output * g)
// with random g, via central differences.
void CheckInputGradient(Layer& layer, const TensorShape& input_shape, uint64_t seed,
                        float tolerance) {
  Rng rng(seed);
  Tensor input(input_shape);
  for (int64_t i = 0; i < input.size(); ++i) {
    input[i] = rng.NextFloat(-1.0f, 1.0f);
  }
  Tensor output = layer.Forward(input);
  Tensor g(output.shape());
  for (int64_t i = 0; i < g.size(); ++i) {
    g[i] = rng.NextFloat(-1.0f, 1.0f);
  }
  Tensor analytic = layer.Backward(g);

  auto loss = [&](const Tensor& x) {
    Tensor y = layer.Forward(x);
    double total = 0.0;
    for (int64_t i = 0; i < y.size(); ++i) {
      total += static_cast<double>(y[i]) * g[i];
    }
    return total;
  };

  const float epsilon = 2e-3f;
  // Spot check a handful of coordinates (full sweep is O(n^2)). The bound
  // is absolute + relative: ReLU kinks make exact agreement impossible.
  for (int check = 0; check < 12; ++check) {
    const int64_t i = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(input.size())));
    Tensor plus = input;
    Tensor minus = input;
    plus[i] += epsilon;
    minus[i] -= epsilon;
    const double numeric = (loss(plus) - loss(minus)) / (2.0 * epsilon);
    EXPECT_NEAR(analytic[i], numeric, tolerance + 0.05 * std::abs(numeric))
        << layer.Name() << " input grad at flat index " << i;
  }
  // Restore the cached forward state for any later Backward calls.
  layer.Forward(input);
}

// Numerically verifies dLoss/dParam for each trainable parameter.
void CheckParameterGradients(Layer& layer, const TensorShape& input_shape, uint64_t seed,
                             float tolerance) {
  Rng rng(seed);
  Tensor input(input_shape);
  for (int64_t i = 0; i < input.size(); ++i) {
    input[i] = rng.NextFloat(-1.0f, 1.0f);
  }
  Tensor output = layer.Forward(input);
  Tensor g(output.shape());
  for (int64_t i = 0; i < g.size(); ++i) {
    g[i] = rng.NextFloat(-1.0f, 1.0f);
  }
  for (Parameter* p : layer.Parameters()) {
    p->grad.Zero();
  }
  layer.Backward(g);

  auto loss = [&]() {
    Tensor y = layer.Forward(input);
    double total = 0.0;
    for (int64_t i = 0; i < y.size(); ++i) {
      total += static_cast<double>(y[i]) * g[i];
    }
    return total;
  };

  const float epsilon = 2e-3f;
  for (Parameter* p : layer.Parameters()) {
    for (int check = 0; check < 6; ++check) {
      const int64_t i =
          static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(p->value.size())));
      // In-place value writes must MarkDirty() so layers holding packed
      // forms of the parameter (Conv2D's GEMM panels) repack on the next
      // forward instead of differentiating a stale cache.
      const float saved = p->value[i];
      p->value[i] = saved + epsilon;
      p->MarkDirty();
      const double up = loss();
      p->value[i] = saved - epsilon;
      p->MarkDirty();
      const double down = loss();
      p->value[i] = saved;
      p->MarkDirty();
      const double numeric = (up - down) / (2.0 * epsilon);
      EXPECT_NEAR(p->grad[i], numeric, tolerance + 0.05 * std::abs(numeric))
          << p->name << " grad at " << i;
    }
  }
}

TEST(Conv2DTest, OutputShape) {
  Rng rng(1);
  Conv2D conv(3, 8, 3, 2, 1, rng);
  TensorShape out = conv.OutputShape(TensorShape{2, 16, 16, 3});
  EXPECT_EQ(out.n, 2);
  EXPECT_EQ(out.h, 8);
  EXPECT_EQ(out.w, 8);
  EXPECT_EQ(out.c, 8);
}

TEST(Conv2DTest, KnownValue1x1) {
  Rng rng(1);
  Conv2D conv(2, 1, 1, 1, 0, rng);
  // Set weights to [1, 2], bias to 0.5.
  conv.weights().value[0] = 1.0f;
  conv.weights().value[1] = 2.0f;
  conv.bias().value[0] = 0.5f;
  Tensor input(1, 1, 1, 2);
  input[0] = 3.0f;
  input[1] = 4.0f;
  Tensor out = conv.Forward(input);
  EXPECT_FLOAT_EQ(out[0], 3.0f + 8.0f + 0.5f);
}

TEST(Conv2DTest, ParameterCount) {
  Rng rng(1);
  Conv2D conv(3, 8, 3, 1, 1, rng);
  EXPECT_EQ(conv.ParameterCount(), 3 * 3 * 3 * 8 + 8);
}

TEST(Conv2DTest, ForwardMacs) {
  Rng rng(1);
  Conv2D conv(3, 8, 3, 1, 1, rng);
  // 4x4 output, 8 channels, 27 MACs each.
  EXPECT_EQ(conv.ForwardMacs(TensorShape{1, 4, 4, 3}), 4 * 4 * 8 * 27);
}

TEST(Conv2DTest, InputGradientMatchesFiniteDifference) {
  Rng rng(2);
  Conv2D conv(2, 3, 3, 1, 1, rng);
  CheckInputGradient(conv, TensorShape{1, 5, 5, 2}, 77, 0.02f);
}

TEST(Conv2DTest, ParameterGradientMatchesFiniteDifference) {
  Rng rng(3);
  Conv2D conv(2, 3, 3, 2, 1, rng);
  CheckParameterGradients(conv, TensorShape{2, 6, 6, 2}, 78, 0.02f);
}

TEST(Conv2DTest, StridedGradient) {
  Rng rng(4);
  Conv2D conv(1, 2, 2, 2, 0, rng);
  CheckInputGradient(conv, TensorShape{1, 4, 4, 1}, 79, 0.02f);
}

TEST(MaxPoolTest, ForwardPicksMaximum) {
  MaxPool2D pool(2, 2);
  Tensor input(1, 2, 2, 1);
  input.at(0, 0, 0, 0) = 1.0f;
  input.at(0, 0, 1, 0) = 4.0f;
  input.at(0, 1, 0, 0) = 2.0f;
  input.at(0, 1, 1, 0) = 3.0f;
  Tensor out = pool.Forward(input);
  EXPECT_EQ(out.size(), 1);
  EXPECT_FLOAT_EQ(out[0], 4.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  MaxPool2D pool(2, 2);
  Tensor input(1, 2, 2, 1);
  input.at(0, 0, 1, 0) = 9.0f;
  pool.Forward(input);
  Tensor g(1, 1, 1, 1);
  g[0] = 5.0f;
  Tensor grad = pool.Backward(g);
  EXPECT_FLOAT_EQ(grad.at(0, 0, 1, 0), 5.0f);
  EXPECT_FLOAT_EQ(grad.at(0, 0, 0, 0), 0.0f);
}

TEST(MaxPoolTest, Kernel3Stride2Shape) {
  MaxPool2D pool(3, 2);
  TensorShape out = pool.OutputShape(TensorShape{1, 13, 13, 4});
  EXPECT_EQ(out.h, 6);
  EXPECT_EQ(out.w, 6);
  EXPECT_EQ(out.c, 4);
}

TEST(GlobalAvgPoolTest, AveragesPlane) {
  GlobalAvgPool pool;
  Tensor input(1, 2, 2, 2);
  for (int i = 0; i < 8; ++i) {
    input[i] = static_cast<float>(i);
  }
  Tensor out = pool.Forward(input);
  // Channel 0 holds values 0,2,4,6; channel 1 holds 1,3,5,7.
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 4.0f);
}

TEST(GlobalAvgPoolTest, BackwardSpreadsUniformly) {
  GlobalAvgPool pool;
  Tensor input(1, 2, 2, 1);
  pool.Forward(input);
  Tensor g(1, 1, 1, 1);
  g[0] = 8.0f;
  Tensor grad = pool.Backward(g);
  for (int64_t i = 0; i < grad.size(); ++i) {
    EXPECT_FLOAT_EQ(grad[i], 2.0f);
  }
}

TEST(ReluTest, ForwardClampsNegatives) {
  Relu relu;
  Tensor input(1, 1, 1, 3);
  input[0] = -1.0f;
  input[1] = 0.0f;
  input[2] = 2.0f;
  Tensor out = relu.Forward(input);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
}

TEST(ReluTest, BackwardMasks) {
  Relu relu;
  Tensor input(1, 1, 1, 2);
  input[0] = -1.0f;
  input[1] = 1.0f;
  relu.Forward(input);
  Tensor g(1, 1, 1, 2);
  g.Fill(3.0f);
  Tensor grad = relu.Backward(g);
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
  EXPECT_FLOAT_EQ(grad[1], 3.0f);
}

TEST(SoftmaxTest, SumsToOne) {
  Softmax softmax;
  Tensor input(2, 1, 1, 3);
  for (int64_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(i) * 0.7f - 1.0f;
  }
  Tensor out = softmax.Forward(input);
  for (int n = 0; n < 2; ++n) {
    float total = 0.0f;
    for (int c = 0; c < 3; ++c) {
      total += out.at(n, 0, 0, c);
      EXPECT_GT(out.at(n, 0, 0, c), 0.0f);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxTest, NumericallyStableForLargeLogits) {
  Softmax softmax;
  Tensor input(1, 1, 1, 2);
  input[0] = 1000.0f;
  input[1] = 999.0f;
  Tensor out = softmax.Forward(input);
  EXPECT_FALSE(std::isnan(out[0]));
  EXPECT_GT(out[0], out[1]);
}

TEST(SoftmaxTest, BackwardJacobian) {
  Softmax softmax;
  CheckInputGradient(softmax, TensorShape{1, 1, 1, 4}, 80, 0.02f);
}

TEST(FireModuleTest, OutputShapeDoublesExpand) {
  Rng rng(5);
  FireModule fire(8, 2, 4, rng);
  TensorShape out = fire.OutputShape(TensorShape{1, 6, 6, 8});
  EXPECT_EQ(out.c, 8);  // 2 * expand
  EXPECT_EQ(out.h, 6);
  EXPECT_EQ(out.w, 6);
  EXPECT_EQ(fire.out_channels(), 8);
}

TEST(FireModuleTest, ParameterCountMatchesFormula) {
  Rng rng(5);
  const int in = 8;
  const int s = 2;
  const int e = 4;
  FireModule fire(in, s, e, rng);
  const int64_t expected = (in * s + s) + (s * e + e) + (9 * s * e + e);
  EXPECT_EQ(fire.ParameterCount(), expected);
}

TEST(FireModuleTest, InputGradientMatchesFiniteDifference) {
  Rng rng(6);
  FireModule fire(3, 2, 2, rng);
  CheckInputGradient(fire, TensorShape{1, 4, 4, 3}, 81, 0.03f);
}

TEST(FireModuleTest, ParameterGradientMatchesFiniteDifference) {
  Rng rng(7);
  FireModule fire(2, 2, 2, rng);
  CheckParameterGradients(fire, TensorShape{1, 4, 4, 2}, 82, 0.03f);
}

TEST(FireModuleTest, OutputIsNonNegative) {
  Rng rng(8);
  FireModule fire(4, 2, 4, rng);
  Tensor input(1, 5, 5, 4);
  Rng data_rng(9);
  for (int64_t i = 0; i < input.size(); ++i) {
    input[i] = data_rng.NextFloat(-2.0f, 2.0f);
  }
  Tensor out = fire.Forward(input);
  EXPECT_GE(out.Min(), 0.0f);  // final ReLU
}

}  // namespace
}  // namespace percival
