// Filter-engine tests: URL parsing, rule parsing, Adblock-Plus matching
// semantics (anchors, wildcards, separators, options), cosmetic rules, and
// the exception-wins invariant.
#include <gtest/gtest.h>

#include "src/filter/cosmetic.h"
#include "src/filter/engine.h"
#include "src/filter/matcher.h"
#include "src/filter/rule.h"
#include "src/filter/url.h"

namespace percival {
namespace {

RequestContext MakeRequest(const std::string& url, const std::string& page_host,
                           ResourceType type = ResourceType::kImage) {
  RequestContext request;
  request.url = Url::Parse(url);
  request.page_host = page_host;
  request.type = type;
  return request;
}

TEST(UrlTest, ParseComponents) {
  Url url = Url::Parse("https://cdn.adnet1.example/banner/1.pif?w=300");
  EXPECT_EQ(url.scheme, "https");
  EXPECT_EQ(url.host, "cdn.adnet1.example");
  EXPECT_EQ(url.path, "/banner/1.pif?w=300");
}

TEST(UrlTest, ParseNoPath) {
  Url url = Url::Parse("http://example.com");
  EXPECT_EQ(url.host, "example.com");
  EXPECT_EQ(url.path, "/");
}

TEST(UrlTest, RegistrableDomain) {
  EXPECT_EQ(Url::Parse("https://a.b.example.com/x").RegistrableDomain(), "example.com");
  EXPECT_EQ(Url::Parse("https://example.com/x").RegistrableDomain(), "example.com");
}

TEST(UrlTest, ThirdPartyDetection) {
  Url url = Url::Parse("https://cdn.adnet1.example/img");
  EXPECT_TRUE(url.IsThirdPartyOf("news-site-1.example"));
  EXPECT_FALSE(url.IsThirdPartyOf("www.adnet1.example"));
}

TEST(UrlTest, HostMatchesDomain) {
  EXPECT_TRUE(HostMatchesDomain("a.example.com", "example.com"));
  EXPECT_TRUE(HostMatchesDomain("example.com", "example.com"));
  EXPECT_FALSE(HostMatchesDomain("badexample.com", "example.com"));
  EXPECT_FALSE(HostMatchesDomain("example.com", "a.example.com"));
}

TEST(RuleParseTest, CommentsIgnored) {
  auto parsed = ParseRuleLine("! this is a comment");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_comment);
}

TEST(RuleParseTest, DomainAnchor) {
  auto parsed = ParseRuleLine("||ads.example.com^");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->network.has_value());
  EXPECT_TRUE(parsed->network->anchor_domain);
  EXPECT_EQ(parsed->network->pattern, "ads.example.com^");
}

TEST(RuleParseTest, ExceptionPrefix) {
  auto parsed = ParseRuleLine("@@||cdn.example.com^$image");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->network.has_value());
  EXPECT_TRUE(parsed->network->is_exception);
  ASSERT_EQ(parsed->network->types.size(), 1u);
  EXPECT_EQ(parsed->network->types[0], ResourceType::kImage);
}

TEST(RuleParseTest, OptionsParsing) {
  auto parsed = ParseRuleLine("/banner/*$image,third-party,domain=a.com|~b.com");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->network.has_value());
  const NetworkRule& rule = *parsed->network;
  EXPECT_TRUE(rule.third_party.has_value());
  EXPECT_TRUE(*rule.third_party);
  ASSERT_EQ(rule.include_domains.size(), 1u);
  EXPECT_EQ(rule.include_domains[0], "a.com");
  ASSERT_EQ(rule.exclude_domains.size(), 1u);
  EXPECT_EQ(rule.exclude_domains[0], "b.com");
}

TEST(RuleParseTest, CosmeticGeneric) {
  auto parsed = ParseRuleLine("##.ad-banner");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->cosmetic.has_value());
  EXPECT_EQ(parsed->cosmetic->selector, ".ad-banner");
  EXPECT_TRUE(parsed->cosmetic->domains.empty());
}

TEST(RuleParseTest, CosmeticDomainSpecific) {
  auto parsed = ParseRuleLine("example.com,other.com##div.promo");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->cosmetic.has_value());
  EXPECT_EQ(parsed->cosmetic->domains.size(), 2u);
}

TEST(RuleParseTest, CosmeticException) {
  auto parsed = ParseRuleLine("example.com#@#.ad-banner");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->cosmetic.has_value());
  EXPECT_TRUE(parsed->cosmetic->is_exception);
}

TEST(RuleParseTest, EmptyAndUnsupportedRejected) {
  EXPECT_TRUE(ParseRuleLine("")->is_comment);
  EXPECT_FALSE(ParseRuleLine("##").has_value());
  EXPECT_FALSE(ParseRuleLine("@@").has_value());
}

// --- Pattern matching semantics ---------------------------------------------

TEST(MatcherTest, PlainSubstring) {
  NetworkRule rule;
  rule.pattern = "/banner/";
  EXPECT_TRUE(MatchesNetworkRule(rule, MakeRequest("https://x.example/banner/1.png", "s.com")));
  EXPECT_FALSE(MatchesNetworkRule(rule, MakeRequest("https://x.example/content/1.png", "s.com")));
}

TEST(MatcherTest, WildcardSpansSegments) {
  NetworkRule rule;
  rule.pattern = "/serve/*.js";
  EXPECT_TRUE(
      MatchesNetworkRule(rule, MakeRequest("https://x.example/serve/a/b/tag.js", "s.com")));
  EXPECT_FALSE(MatchesNetworkRule(rule, MakeRequest("https://x.example/serve/a.css", "s.com")));
}

TEST(MatcherTest, SeparatorMatchesPunctuationAndEnd) {
  NetworkRule rule;
  rule.anchor_domain = true;
  rule.pattern = "ads.example^";
  EXPECT_TRUE(MatchesNetworkRule(rule, MakeRequest("https://ads.example/x", "s.com")));
  EXPECT_TRUE(MatchesNetworkRule(rule, MakeRequest("https://ads.example", "s.com")));
  // '^' must not match an alphanumeric continuation.
  EXPECT_FALSE(MatchesNetworkRule(rule, MakeRequest("https://ads.examples/x", "s.com")));
}

TEST(MatcherTest, DomainAnchorMatchesSubdomains) {
  NetworkRule rule;
  rule.anchor_domain = true;
  rule.pattern = "adnet.example^";
  EXPECT_TRUE(MatchesNetworkRule(rule, MakeRequest("https://cdn.adnet.example/a", "s.com")));
  EXPECT_TRUE(MatchesNetworkRule(rule, MakeRequest("https://adnet.example/a", "s.com")));
  // Not at a label boundary:
  EXPECT_FALSE(MatchesNetworkRule(rule, MakeRequest("https://myadnet.example/a", "s.com")));
  // Pattern appearing in the path must not satisfy a domain anchor.
  EXPECT_FALSE(
      MatchesNetworkRule(rule, MakeRequest("https://benign.com/adnet.example/", "s.com")));
}

TEST(MatcherTest, StartAndEndAnchors) {
  NetworkRule start;
  start.anchor_start = true;
  start.pattern = "https://exact.example/";
  EXPECT_TRUE(MatchesNetworkRule(start, MakeRequest("https://exact.example/x", "s.com")));
  EXPECT_FALSE(MatchesNetworkRule(start, MakeRequest("http://a.com/https://exact.example/",
                                                     "s.com")));

  NetworkRule end;
  end.anchor_end = true;
  end.pattern = ".pif";
  EXPECT_TRUE(MatchesNetworkRule(end, MakeRequest("https://x.example/a.pif", "s.com")));
  EXPECT_FALSE(MatchesNetworkRule(end, MakeRequest("https://x.example/a.pif.txt", "s.com")));
}

TEST(MatcherTest, TypeOptionFilters) {
  NetworkRule rule;
  rule.pattern = "/ads/";
  rule.types = {ResourceType::kScript};
  EXPECT_TRUE(MatchesNetworkRule(
      rule, MakeRequest("https://x.example/ads/t.js", "s.com", ResourceType::kScript)));
  EXPECT_FALSE(MatchesNetworkRule(
      rule, MakeRequest("https://x.example/ads/i.png", "s.com", ResourceType::kImage)));
}

TEST(MatcherTest, ThirdPartyOption) {
  NetworkRule rule;
  rule.pattern = "/img/";
  rule.third_party = true;
  EXPECT_TRUE(MatchesNetworkRule(
      rule, MakeRequest("https://other.example2/img/a", "news.example")));
  EXPECT_FALSE(MatchesNetworkRule(
      rule, MakeRequest("https://cdn.news.example/img/a", "news.example")));
}

TEST(MatcherTest, DomainOption) {
  NetworkRule rule;
  rule.pattern = "/promo/";
  rule.include_domains = {"news.example"};
  EXPECT_TRUE(
      MatchesNetworkRule(rule, MakeRequest("https://x.example/promo/a", "sub.news.example")));
  EXPECT_FALSE(MatchesNetworkRule(rule, MakeRequest("https://x.example/promo/a", "other.org")));
}

// Property sweep: the matcher's wildcard algorithm against a corpus.
struct PatternCase {
  const char* pattern;
  const char* text;
  bool expected;
};

class PatternMatchTest : public ::testing::TestWithParam<PatternCase> {};

TEST_P(PatternMatchTest, MatchesAtStart) {
  const PatternCase& c = GetParam();
  EXPECT_EQ(PatternMatchesAt(c.pattern, c.text, 0, false), c.expected)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PatternMatchTest,
    ::testing::Values(PatternCase{"abc", "abcdef", true}, PatternCase{"abc", "abdc", false},
                      PatternCase{"a*c", "abbbc", true}, PatternCase{"a*c", "ac", true},
                      PatternCase{"a*c", "ab", false}, PatternCase{"*x", "aaax", true},
                      PatternCase{"a^b", "a/b", true}, PatternCase{"a^b", "a1b", false},
                      PatternCase{"a^", "a", true},  // '^' matches end
                      PatternCase{"a*b*c", "axxbyyc", true},
                      PatternCase{"a*b*c", "axxcyyb", false}));

// --- Cosmetic ---------------------------------------------------------------

TEST(CosmeticTest, SelectorForms) {
  ElementDescriptor element;
  element.tag = "div";
  element.id = "slot";
  element.classes = {"ad-banner", "wide"};
  EXPECT_TRUE(SelectorMatches("div", element));
  EXPECT_TRUE(SelectorMatches("#slot", element));
  EXPECT_TRUE(SelectorMatches(".ad-banner", element));
  EXPECT_TRUE(SelectorMatches("div.ad-banner.wide", element));
  EXPECT_TRUE(SelectorMatches("div#slot.ad-banner", element));
  EXPECT_FALSE(SelectorMatches("span", element));
  EXPECT_FALSE(SelectorMatches(".missing", element));
  EXPECT_FALSE(SelectorMatches("#other", element));
}

TEST(CosmeticTest, DomainScoping) {
  CosmeticRule rule;
  rule.selector = ".promo";
  rule.domains = {"news.example"};
  ElementDescriptor element;
  element.tag = "div";
  element.classes = {"promo"};
  EXPECT_TRUE(MatchesCosmeticRule(rule, "www.news.example", element));
  EXPECT_FALSE(MatchesCosmeticRule(rule, "other.org", element));
}

// --- Engine ------------------------------------------------------------------

TEST(EngineTest, ExceptionAlwaysWins) {
  FilterEngine engine;
  ASSERT_TRUE(engine.AddRule("||cdn.example^"));
  ASSERT_TRUE(engine.AddRule("@@||cdn.example^$image"));
  BlockDecision decision =
      engine.ShouldBlockRequest(MakeRequest("https://cdn.example/a.png", "s.com"));
  EXPECT_FALSE(decision.blocked);
  EXPECT_EQ(decision.matched_rule, "@@||cdn.example^$image");
}

TEST(EngineTest, BlocksListedNetwork) {
  FilterEngine engine;
  engine.AddRule("||ads.example^$third-party");
  EXPECT_TRUE(
      engine.ShouldBlockRequest(MakeRequest("https://sub.ads.example/x.png", "news.org")).blocked);
  // First-party fetch of the same URL passes.
  EXPECT_FALSE(
      engine.ShouldBlockRequest(MakeRequest("https://sub.ads.example/x.png", "ads.example"))
          .blocked);
}

TEST(EngineTest, CosmeticExceptionWins) {
  FilterEngine engine;
  engine.AddRule("##.ad-banner");
  engine.AddRule("trusted.example#@#.ad-banner");
  ElementDescriptor element;
  element.tag = "div";
  element.classes = {"ad-banner"};
  EXPECT_TRUE(engine.ShouldHideElement("random.example", element).blocked);
  EXPECT_FALSE(engine.ShouldHideElement("trusted.example", element).blocked);
}

TEST(EngineTest, AddListCountsAccepted) {
  FilterEngine engine;
  const int accepted = engine.AddList({"! comment", "||a.example^", "##.x", ""});
  EXPECT_EQ(accepted, 4);  // comments/blank count as accepted no-ops
  EXPECT_EQ(engine.network_rule_count(), 1);
  EXPECT_EQ(engine.cosmetic_rule_count(), 1);
}

TEST(EngineTest, NoRulesBlocksNothing) {
  FilterEngine engine;
  EXPECT_FALSE(engine.ShouldBlockRequest(MakeRequest("https://anything.example/x", "s.com"))
                   .blocked);
}

}  // namespace
}  // namespace percival
