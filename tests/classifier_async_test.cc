// Concurrency coverage for AsyncAdClassifier: OnDecodedFrame and
// DrainPending hammered from many threads must keep the cache bookkeeping
// consistent (every lookup is exactly one hit or one miss) and must never
// classify the same pixel hash twice, with or without a worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/core/classifier.h"
#include "src/core/model.h"
#include "src/img/bitmap.h"

namespace percival {
namespace {

// Deterministic distinct bitmaps: each id gets a unique pixel pattern, so
// unique ids <=> unique pixel hashes.
Bitmap MakeBitmap(int id) {
  Bitmap bitmap(16, 12);
  for (int y = 0; y < bitmap.height(); ++y) {
    for (int x = 0; x < bitmap.width(); ++x) {
      bitmap.SetPixel(x, y,
                      Color{static_cast<uint8_t>((id * 37 + x) & 0xff),
                            static_cast<uint8_t>((id * 101 + y) & 0xff),
                            static_cast<uint8_t>(id & 0xff), 255});
    }
  }
  return bitmap;
}

AdClassifier MakeTestClassifier() {
  PercivalNetConfig config = TestProfile();
  return AdClassifier(BuildPercivalNet(config), config);
}

struct HammerOutcome {
  int64_t total_lookups = 0;
  int unique_images = 0;
};

// N threads interleave frame lookups with drains; returns totals for the
// bookkeeping assertions.
HammerOutcome Hammer(AsyncAdClassifier& async, ThreadPool* drain_pool, int num_threads,
                     int iterations, int unique_images) {
  std::vector<Bitmap> images;
  images.reserve(static_cast<size_t>(unique_images));
  for (int i = 0; i < unique_images; ++i) {
    images.push_back(MakeBitmap(i));
  }

  std::atomic<int64_t> lookups{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < iterations; ++i) {
        Bitmap& image = images[static_cast<size_t>((t * 13 + i * 7) % unique_images)];
        async.OnDecodedFrame(image.info(), image, "https://ads.example/creative");
        lookups.fetch_add(1);
        if (i % 16 == 9) {
          async.DrainPending(drain_pool, 4);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  async.DrainPending(drain_pool, 4);
  return HammerOutcome{lookups.load(), unique_images};
}

void ExpectConsistent(const AsyncAdClassifier& async, const AdClassifier& inner,
                      const HammerOutcome& outcome) {
  const ClassifierStats stats = async.stats();
  // Every OnDecodedFrame call resolved as exactly one hit or one miss.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, outcome.total_lookups);
  // Every unique creative was eventually classified and memoized...
  EXPECT_EQ(async.cache_size(), outcome.unique_images);
  // ...exactly once: duplicate queue entries or double drains would inflate
  // the inner classifier's forward-pass count.
  EXPECT_EQ(inner.stats().classified, outcome.unique_images);
}

TEST(AsyncAdClassifierConcurrencyTest, SingleThreadedDrainStaysConsistent) {
  AdClassifier inner = MakeTestClassifier();
  AsyncAdClassifier async(inner);
  const HammerOutcome outcome = Hammer(async, nullptr, 4, 64, 10);
  ExpectConsistent(async, inner, outcome);
}

TEST(AsyncAdClassifierConcurrencyTest, PooledDrainStaysConsistent) {
  AdClassifier inner = MakeTestClassifier();
  AsyncAdClassifier async(inner);
  ThreadPool pool(4);
  const HammerOutcome outcome = Hammer(async, &pool, 4, 64, 12);
  ExpectConsistent(async, inner, outcome);
}

TEST(AsyncAdClassifierConcurrencyTest, MemoizedDecisionsMatchSyncClassifier) {
  AdClassifier inner = MakeTestClassifier();
  AsyncAdClassifier async(inner);
  AdClassifier oracle = MakeTestClassifier();

  const int kImages = 6;
  std::vector<Bitmap> images;
  for (int i = 0; i < kImages; ++i) {
    images.push_back(MakeBitmap(i));
  }
  for (Bitmap& image : images) {
    // First sight never blocks (asynchronous mode renders immediately).
    EXPECT_FALSE(async.OnDecodedFrame(image.info(), image, "url"));
  }
  async.DrainPending();
  for (Bitmap& image : images) {
    const ClassifyResult expected = oracle.Classify(image);
    const bool memoized = async.OnDecodedFrame(image.info(), image, "url");
    // Batched and single forwards may round differently, so only compare
    // decisions that are not knife-edge at the 0.5 threshold.
    if (std::abs(expected.ad_probability - 0.5f) > 1e-3f) {
      EXPECT_EQ(memoized, expected.is_ad);
    }
  }
  EXPECT_EQ(async.stats().cache_hits, kImages);
}

TEST(AsyncAdClassifierConcurrencyTest, RepeatedCreativeQueuedOnce) {
  AdClassifier inner = MakeTestClassifier();
  AsyncAdClassifier async(inner);
  Bitmap image = MakeBitmap(7);
  // The same creative decoded many times before any drain runs...
  for (int i = 0; i < 25; ++i) {
    async.OnDecodedFrame(image.info(), image, "url");
  }
  async.DrainPending();
  // ...costs exactly one forward pass.
  EXPECT_EQ(inner.stats().classified, 1);
  EXPECT_EQ(async.cache_size(), 1);
  EXPECT_EQ(async.stats().cache_misses, 25);
}

TEST(AsyncAdClassifierConcurrencyTest, BatchResultsMatchSingleClassify) {
  AdClassifier batch_classifier = MakeTestClassifier();
  AdClassifier single_classifier = MakeTestClassifier();

  std::vector<Bitmap> images;
  std::vector<const Bitmap*> pointers;
  for (int i = 0; i < 9; ++i) {
    images.push_back(MakeBitmap(100 + i));
  }
  for (const Bitmap& image : images) {
    pointers.push_back(&image);
  }
  const std::vector<ClassifyResult> batched = batch_classifier.ClassifyBatch(pointers);
  ASSERT_EQ(batched.size(), images.size());
  for (size_t i = 0; i < images.size(); ++i) {
    const ClassifyResult single = single_classifier.Classify(images[i]);
    EXPECT_NEAR(batched[i].ad_probability, single.ad_probability, 1e-4f) << "image " << i;
    if (std::abs(single.ad_probability - 0.5f) > 1e-3f) {
      EXPECT_EQ(batched[i].is_ad, single.is_ad) << "image " << i;
    }
  }
  EXPECT_EQ(batch_classifier.stats().classified, static_cast<int64_t>(images.size()));
}

// Forces every frame onto one primary hash bucket: distinct creatives must
// NOT inherit each other's memoized decision (the seeded verification hash
// catches the collision), every collision is counted, and true repeats of
// the same creative still hit the cache.
TEST(AsyncAdClassifierConcurrencyTest, PrimaryHashCollisionNeverAliasesDecisions) {
  AdClassifier inner = MakeTestClassifier();
  AdClassifier reference = MakeTestClassifier();  // same seed -> same decisions
  AsyncAdClassifier async(inner);
  async.SetPrimaryHashForTest([](const void*, size_t) -> uint64_t { return 42; });

  Bitmap frame_a = MakeBitmap(1);
  Bitmap frame_b = MakeBitmap(2);
  const bool a_is_ad = reference.Classify(frame_a).is_ad;
  const bool b_is_ad = reference.Classify(frame_b).is_ad;

  // First visit of A: plain miss, classify off the critical path.
  EXPECT_FALSE(async.OnDecodedFrame(frame_a.info(), frame_a, "https://a.example"));
  async.DrainPending();
  EXPECT_EQ(async.stats().hash_collisions, 0);
  // True repeat of A hits and returns A's own decision.
  EXPECT_EQ(async.OnDecodedFrame(frame_a.info(), frame_a, "https://a.example"), a_is_ad);

  // B shares A's primary hash but not its pixels: the verification hash
  // must refuse the memoized decision, count a collision, and classify B.
  EXPECT_FALSE(async.OnDecodedFrame(frame_b.info(), frame_b, "https://b.example"));
  EXPECT_EQ(async.stats().hash_collisions, 1);
  async.DrainPending();

  // B's decision is now memoized (last writer owns the bucket) and a repeat
  // of B returns B's own decision, never A's.
  EXPECT_EQ(async.OnDecodedFrame(frame_b.info(), frame_b, "https://b.example"), b_is_ad);
  // A collides against B's entry and re-classifies rather than aliasing.
  EXPECT_FALSE(async.OnDecodedFrame(frame_a.info(), frame_a, "https://a.example"));
  EXPECT_GE(async.stats().hash_collisions, 2);
  async.DrainPending();
  EXPECT_EQ(async.OnDecodedFrame(frame_a.info(), frame_a, "https://a.example"), a_is_ad);

  // Restoring the real hash ends the forced-collision regime.
  async.SetPrimaryHashForTest(nullptr);
  EXPECT_FALSE(async.OnDecodedFrame(frame_b.info(), frame_b, "https://b.example"));
  async.DrainPending();
  EXPECT_EQ(async.OnDecodedFrame(frame_b.info(), frame_b, "https://b.example"), b_is_ad);
}

}  // namespace
}  // namespace percival
