// Renderer tests: HTML parsing, DOM, layout, display list, deferred image
// decoding, tiled raster, and the full RenderPage pipeline with its
// choke-point invariant (every painted image passes the interceptor once).
#include <gtest/gtest.h>

#include <atomic>
#include <map>

#include "src/img/codec.h"
#include "src/renderer/display_list.h"
#include "src/renderer/html_parser.h"
#include "src/renderer/image_pipeline.h"
#include "src/renderer/layout.h"
#include "src/renderer/raster.h"
#include "src/renderer/renderer.h"

namespace percival {
namespace {

// Records every frame the pipeline shows it; optionally blocks by URL.
class RecordingInterceptor : public ImageInterceptor {
 public:
  bool OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                      const std::string& source_url) override {
    (void)info;
    (void)pixels;
    std::lock_guard<std::mutex> lock(mutex_);
    ++seen_[source_url];
    return block_all_;
  }
  int TimesSeen(const std::string& url) const {
    auto it = seen_.find(url);
    return it == seen_.end() ? 0 : it->second;
  }
  int TotalCalls() const {
    int total = 0;
    for (const auto& [url, count] : seen_) {
      total += count;
    }
    return total;
  }
  void set_block_all(bool value) { block_all_ = value; }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, int> seen_;
  bool block_all_ = false;
};

std::vector<uint8_t> SolidImageBytes(Color color, int w = 8, int h = 8) {
  return EncodePif(Bitmap(w, h, color));
}

TEST(HtmlParserTest, NestedStructure) {
  DomTree dom = ParseHtml("<div id=\"a\"><p>hello</p><img src=\"x.png\"/></div>");
  ASSERT_EQ(dom->children().size(), 1u);
  const DomNode& div = *dom->children()[0];
  EXPECT_EQ(div.tag(), "div");
  EXPECT_EQ(div.GetAttr("id"), "a");
  ASSERT_EQ(div.children().size(), 2u);
  EXPECT_EQ(div.children()[0]->tag(), "p");
  EXPECT_EQ(div.children()[1]->tag(), "img");
  EXPECT_EQ(div.children()[1]->GetAttr("src"), "x.png");
}

TEST(HtmlParserTest, AttributesQuotedAndBare) {
  DomTree dom = ParseHtml("<div class='a b' width=100 hidden></div>");
  const DomNode& div = *dom->children()[0];
  EXPECT_EQ(div.GetAttr("class"), "a b");
  EXPECT_EQ(div.GetIntAttr("width", 0), 100);
  EXPECT_TRUE(div.HasAttr("hidden"));
}

TEST(HtmlParserTest, VoidTagsDoNotNest) {
  DomTree dom = ParseHtml("<img src=\"a\"><p>text</p>");
  ASSERT_EQ(dom->children().size(), 2u);
  EXPECT_EQ(dom->children()[0]->tag(), "img");
  EXPECT_TRUE(dom->children()[0]->children().empty());
}

TEST(HtmlParserTest, StrayCloseTagIgnored) {
  DomTree dom = ParseHtml("</div><p>ok</p>");
  ASSERT_EQ(dom->children().size(), 1u);
  EXPECT_EQ(dom->children()[0]->tag(), "p");
}

TEST(HtmlParserTest, TextNodesCaptured) {
  DomTree dom = ParseHtml("<p>hello world</p>");
  const DomNode& p = *dom->children()[0];
  ASSERT_EQ(p.children().size(), 1u);
  EXPECT_EQ(p.children()[0]->tag(), "#text");
  EXPECT_EQ(p.children()[0]->text(), "hello world");
}

TEST(DomTest, DescriptorSplitsClasses) {
  DomNode node("div");
  node.SetAttr("class", "a  b c");
  node.SetAttr("id", "x");
  ElementDescriptor descriptor = node.Descriptor();
  EXPECT_EQ(descriptor.tag, "div");
  EXPECT_EQ(descriptor.id, "x");
  EXPECT_EQ(descriptor.classes, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(DomTest, SubtreeSizeAndVisit) {
  DomTree dom = ParseHtml("<div><p>a</p><p>b</p></div>");
  EXPECT_EQ(dom->SubtreeSize(), 6);  // document + div + 2p + 2 text
  int count = 0;
  dom->Visit([&count](DomNode&) { ++count; });
  EXPECT_EQ(count, 6);
}

TEST(LayoutTest, VerticalStacking) {
  DomTree dom = ParseHtml(
      "<div height=\"50\"></div><div height=\"30\"></div><div height=\"20\"></div>");
  auto layout = ComputeLayout(*dom, 400);
  ASSERT_EQ(layout->children.size(), 3u);
  EXPECT_EQ(layout->children[0]->rect.y, 0);
  EXPECT_EQ(layout->children[1]->rect.y, 50);
  EXPECT_EQ(layout->children[2]->rect.y, 80);
  EXPECT_EQ(DocumentHeight(*layout), 100);
}

TEST(LayoutTest, AbsolutePositioningDoesNotDisturbFlow) {
  DomTree dom = ParseHtml(
      "<div height=\"40\"></div><div x=\"700\" y=\"10\" width=\"80\" height=\"200\"></div>"
      "<div height=\"40\"></div>");
  auto layout = ComputeLayout(*dom, 1024);
  EXPECT_EQ(layout->children[1]->rect.x, 700);
  EXPECT_EQ(layout->children[1]->rect.y, 10);
  // Third div flows right after the first.
  EXPECT_EQ(layout->children[2]->rect.y, 40);
}

TEST(LayoutTest, HiddenNodesCollapse) {
  DomTree dom = ParseHtml("<div height=\"40\"></div><div height=\"60\"></div>");
  dom->children()[0]->hidden_by_filter = true;
  auto layout = ComputeLayout(*dom, 400);
  EXPECT_EQ(layout->children[0]->rect.h, 0);
  EXPECT_EQ(layout->children[1]->rect.y, 0);
  EXPECT_EQ(DocumentHeight(*layout), 60);
}

TEST(LayoutTest, WidthDefaultsToParent) {
  DomTree dom = ParseHtml("<div><p height=\"10\"></p></div>");
  auto layout = ComputeLayout(*dom, 333);
  EXPECT_EQ(layout->children[0]->rect.w, 333);
}

TEST(DisplayListTest, EmitsImageAndBackgroundItems) {
  DomTree dom = ParseHtml(
      "<div bg=\"#FF0000\" height=\"10\"></div><img src=\"u.pif\" width=\"20\" height=\"10\"/>"
      "<div bgimg=\"bg.pif\" height=\"10\"></div>");
  auto layout = ComputeLayout(*dom, 100);
  DisplayList items = BuildDisplayList(*layout);
  int color_items = 0;
  int image_items = 0;
  for (const DisplayItem& item : items) {
    if (item.kind == DisplayItemKind::kColorRect) {
      ++color_items;
      EXPECT_EQ(item.color.r, 255);
    }
    if (item.kind == DisplayItemKind::kImage) {
      ++image_items;
    }
  }
  EXPECT_EQ(color_items, 1);
  EXPECT_EQ(image_items, 2);  // img src + CSS background image
}

TEST(DisplayListTest, HiddenElementsEmitNothing) {
  DomTree dom = ParseHtml("<img src=\"u.pif\" width=\"20\" height=\"10\"/>");
  dom->children()[0]->hidden_by_filter = true;
  auto layout = ComputeLayout(*dom, 100);
  EXPECT_TRUE(BuildDisplayList(*layout).empty());
}

TEST(ImagePipelineTest, DecodeOnceIsIdempotent) {
  DeferredImageDecoder decoder("u", SolidImageBytes(Color{1, 2, 3, 255}));
  RecordingInterceptor interceptor;
  const DecodedImage& first = decoder.DecodeOnce(&interceptor);
  const DecodedImage& second = decoder.DecodeOnce(&interceptor);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(interceptor.TimesSeen("u"), 1);
  EXPECT_FALSE(first.decode_failed);
}

TEST(ImagePipelineTest, BlockedFrameIsCleared) {
  DeferredImageDecoder decoder("u", SolidImageBytes(Color{200, 10, 10, 255}));
  RecordingInterceptor interceptor;
  interceptor.set_block_all(true);
  const DecodedImage& result = decoder.DecodeOnce(&interceptor);
  EXPECT_EQ(result.frames_blocked, 1);
  EXPECT_EQ(result.frames[0].GetPixel(0, 0).a, 0);  // cleared
}

TEST(ImagePipelineTest, AnimatedFramesEachIntercepted) {
  Bitmap a(4, 4, Color{1, 1, 1, 255});
  Bitmap b(4, 4, Color{2, 2, 2, 255});
  DeferredImageDecoder decoder("anim", EncodeAnim({a, b}));
  RecordingInterceptor interceptor;
  const DecodedImage& result = decoder.DecodeOnce(&interceptor);
  EXPECT_EQ(result.frames.size(), 2u);
  EXPECT_EQ(interceptor.TimesSeen("anim"), 2);
}

TEST(ImagePipelineTest, MalformedBytesFailGracefully) {
  DeferredImageDecoder decoder("bad", {1, 2, 3, 4, 5});
  const DecodedImage& result = decoder.DecodeOnce(nullptr);
  EXPECT_TRUE(result.decode_failed);
}

TEST(ImagePipelineTest, CacheRegistersOnce) {
  ImageDecodeCache cache;
  cache.Register("u", SolidImageBytes(Color{5, 5, 5, 255}));
  cache.Register("u", SolidImageBytes(Color{9, 9, 9, 255}));  // ignored
  EXPECT_EQ(cache.registered_count(), 1);
  DeferredImageDecoder* decoder = cache.Find("u");
  ASSERT_NE(decoder, nullptr);
  const DecodedImage& result = decoder->DecodeOnce(nullptr);
  EXPECT_EQ(result.frames[0].GetPixel(0, 0).r, 5);
  EXPECT_EQ(cache.Find("missing"), nullptr);
}

TEST(RasterTest, PaintsImagePixels) {
  DisplayList items;
  DisplayItem item;
  item.kind = DisplayItemKind::kImage;
  item.rect = Rect{0, 0, 8, 8};
  item.image_url = "u";
  items.push_back(item);
  ImageDecodeCache cache;
  cache.Register("u", SolidImageBytes(Color{10, 200, 30, 255}));
  RasterConfig config;
  config.tile_size = 4;
  config.raster_threads = 2;
  RasterResult result = RasterizeDisplayList(items, 8, 8, cache, config);
  EXPECT_EQ(result.tiles, 4);
  EXPECT_EQ(result.framebuffer.GetPixel(3, 3), (Color{10, 200, 30, 255}));
}

TEST(RasterTest, InterceptorCalledOncePerImageDespiteManyTiles) {
  DisplayList items;
  DisplayItem item;
  item.kind = DisplayItemKind::kImage;
  item.rect = Rect{0, 0, 64, 64};  // spans many tiles
  item.image_url = "u";
  items.push_back(item);
  ImageDecodeCache cache;
  cache.Register("u", SolidImageBytes(Color{1, 2, 3, 255}, 16, 16));
  RecordingInterceptor interceptor;
  RasterConfig config;
  config.tile_size = 8;
  config.raster_threads = 4;
  config.interceptor = &interceptor;
  RasterizeDisplayList(items, 64, 64, cache, config);
  EXPECT_EQ(interceptor.TimesSeen("u"), 1);
}

TEST(RasterTest, BlockedImageLeavesBackground) {
  DisplayList items;
  DisplayItem item;
  item.kind = DisplayItemKind::kImage;
  item.rect = Rect{0, 0, 8, 8};
  item.image_url = "u";
  items.push_back(item);
  ImageDecodeCache cache;
  cache.Register("u", SolidImageBytes(Color{200, 0, 0, 255}));
  RecordingInterceptor interceptor;
  interceptor.set_block_all(true);
  RasterConfig config;
  config.interceptor = &interceptor;
  RasterResult result = RasterizeDisplayList(items, 8, 8, cache, config);
  // Cleared frame has alpha 0, so the white background shows through.
  EXPECT_EQ(result.framebuffer.GetPixel(4, 4), (Color{255, 255, 255, 255}));
}

// --- Full pipeline -----------------------------------------------------------

WebPage MakePageWithImages() {
  WebPage page;
  page.url = "https://site.example/page";
  page.html =
      "<body><img src=\"https://cdn.example/a.pif\" width=\"8\" height=\"8\"/>"
      "<div bgimg=\"https://cdn.example/b.pif\" height=\"8\"></div>"
      "<iframe src=\"https://frames.example/f\" width=\"20\" height=\"20\"></iframe>"
      "<script src=\"https://tags.example/t.js\"></script></body>";
  WebResource a;
  a.type = ResourceType::kImage;
  a.bytes = SolidImageBytes(Color{1, 0, 0, 255});
  a.latency_ms = 10;
  page.resources["https://cdn.example/a.pif"] = a;
  WebResource b;
  b.type = ResourceType::kImage;
  b.bytes = SolidImageBytes(Color{0, 1, 0, 255});
  b.latency_ms = 20;
  page.resources["https://cdn.example/b.pif"] = b;
  WebResource frame;
  frame.type = ResourceType::kSubdocument;
  const std::string frame_html =
      "<img src=\"https://cdn.example/c.pif\" width=\"8\" height=\"8\"/>";
  frame.bytes.assign(frame_html.begin(), frame_html.end());
  frame.latency_ms = 30;
  page.resources["https://frames.example/f"] = frame;
  WebResource c;
  c.type = ResourceType::kImage;
  c.bytes = SolidImageBytes(Color{0, 0, 1, 255});
  c.latency_ms = 5;
  page.resources["https://cdn.example/c.pif"] = c;
  WebResource script;
  script.type = ResourceType::kScript;
  const std::string script_body = "inject-img https://cdn.example/d.pif 8 8\n";
  script.bytes.assign(script_body.begin(), script_body.end());
  script.latency_ms = 15;
  page.resources["https://tags.example/t.js"] = script;
  WebResource d;
  d.type = ResourceType::kImage;
  d.bytes = SolidImageBytes(Color{7, 7, 7, 255});
  d.latency_ms = 5;
  page.resources["https://cdn.example/d.pif"] = d;
  return page;
}

TEST(RenderPageTest, ChokePointSeesEveryLoadPath) {
  // img tag, CSS background, iframe-embedded, and JS-injected images must
  // all pass through the interceptor — the paper's core design goal (§3.1).
  WebPage page = MakePageWithImages();
  RecordingInterceptor interceptor;
  RenderOptions options;
  options.interceptor = &interceptor;
  RenderResult result = RenderPage(page, options);
  EXPECT_EQ(interceptor.TimesSeen("https://cdn.example/a.pif"), 1);
  EXPECT_EQ(interceptor.TimesSeen("https://cdn.example/b.pif"), 1);
  EXPECT_EQ(interceptor.TimesSeen("https://cdn.example/c.pif"), 1);
  EXPECT_EQ(interceptor.TimesSeen("https://cdn.example/d.pif"), 1);
  EXPECT_EQ(result.stats.images_decoded, 4);
  EXPECT_EQ(result.stats.iframes_rendered, 1);
  EXPECT_EQ(result.stats.scripts_executed, 1);
}

TEST(RenderPageTest, MetricsAreConsistent) {
  WebPage page = MakePageWithImages();
  RenderResult result = RenderPage(page, RenderOptions{});
  EXPECT_GE(result.metrics.dom_complete, result.metrics.dom_loading);
  EXPECT_GE(result.metrics.fetch_ms, 30.0);  // slowest chain: iframe
  EXPECT_GT(result.metrics.parse_ms, 0.0);
}

TEST(RenderPageTest, FilterBlocksRequestsBeforeFetch) {
  WebPage page = MakePageWithImages();
  FilterEngine filter;
  filter.AddRule("||cdn.example^$image");
  RenderOptions options;
  options.filter = &filter;
  RenderResult result = RenderPage(page, options);
  EXPECT_GT(result.stats.requests_blocked_by_filter, 0);
  // Blocked images never decode.
  for (const ImageOutcome& outcome : result.image_outcomes) {
    if (outcome.url.find("cdn.example") != std::string::npos) {
      EXPECT_FALSE(outcome.fetched);
      EXPECT_FALSE(outcome.decoded);
    }
  }
}

TEST(RenderPageTest, CosmeticFilterHidesSubtreeAndSkipsItsImages) {
  WebPage page;
  page.url = "https://site.example/";
  page.html =
      "<div class=\"ad-banner\"><img src=\"https://cdn.example/x.pif\" width=\"8\" "
      "height=\"8\"/></div>";
  WebResource x;
  x.type = ResourceType::kImage;
  x.bytes = SolidImageBytes(Color{1, 1, 1, 255});
  page.resources["https://cdn.example/x.pif"] = x;
  FilterEngine filter;
  filter.AddRule("##.ad-banner");
  RenderOptions options;
  options.filter = &filter;
  RenderResult result = RenderPage(page, options);
  EXPECT_EQ(result.stats.elements_hidden_by_filter, 1);
  EXPECT_EQ(result.stats.images_decoded, 0);
}

TEST(RenderPageTest, PercivalBlockingClearsPixels) {
  WebPage page = MakePageWithImages();
  RecordingInterceptor interceptor;
  interceptor.set_block_all(true);
  RenderOptions options;
  options.interceptor = &interceptor;
  RenderResult result = RenderPage(page, options);
  EXPECT_EQ(result.stats.frames_blocked, result.stats.frames_decoded);
  for (const ImageOutcome& outcome : result.image_outcomes) {
    if (outcome.decoded) {
      EXPECT_TRUE(outcome.blocked_by_percival);
    }
  }
}

TEST(RenderPageTest, MissingResourceDoesNotCrash) {
  WebPage page;
  page.url = "https://site.example/";
  page.html = "<img src=\"https://nowhere.example/missing.pif\" width=\"8\" height=\"8\"/>";
  RenderResult result = RenderPage(page, RenderOptions{});
  EXPECT_EQ(result.stats.images_decoded, 0);
  EXPECT_EQ(result.stats.requests, 1);
}

TEST(RenderPageTest, SyncClassificationAddsRenderTime) {
  WebPage page = MakePageWithImages();
  RenderResult baseline = RenderPage(page, RenderOptions{});

  // An artificially slow interceptor must increase render time.
  class SlowInterceptor : public ImageInterceptor {
   public:
    bool OnDecodedFrame(const ImageInfo&, Bitmap&, const std::string&) override {
      volatile double sink = 0.0;
      for (int i = 0; i < 2000000; ++i) {
        sink = sink + 1.0;
      }
      return false;
    }
  } slow;
  RenderOptions options;
  options.interceptor = &slow;
  RenderResult treated = RenderPage(page, options);
  EXPECT_GT(treated.metrics.RenderTime(), baseline.metrics.RenderTime());
}

}  // namespace
}  // namespace percival
