// One-process walk of the runtime SIMD ladder. The fat binary compiles
// every kernel tier; SetSimdTierCap lets one test process impersonate every
// weaker host the binary could land on, so this suite checks — without any
// per-ISA build flavors — that each rung (a) reports the right kernel
// names, panel width, and weight clamp, (b) agrees with the always-compiled
// scalar oracle at both panel widths (bit-exactly for int8, to 1e-4 for
// float), (c) produces bit-identical int8 results to every other rung on
// shared saturation-safe packed data, and (d) degrades a wider-clamp PCVW
// v2 artifact to float requantization instead of feeding ±127 codes to a
// saturating kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/nn/conv.h"
#include "src/nn/gemm.h"
#include "src/nn/network.h"
#include "src/nn/serialize.h"
#include "src/nn/simd.h"

namespace percival {
namespace {

// Restores the uncapped ladder (and force-scalar off) however a test exits.
struct TierCapGuard {
  ~TierCapGuard() {
    SetSimdTierCap(SimdTier::kVnni);
    SetGemmForceScalar(false);
  }
};

Tensor RandomTensor(const TensorShape& shape, uint64_t seed) {
  Tensor tensor(shape);
  Rng rng(seed);
  for (int64_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = rng.NextFloat(-1.0f, 1.0f);
  }
  return tensor;
}

struct TierContract {
  const char* float_name;
  const char* int8_name;
  int panel_width;
  int weight_max;
};

// The ladder's per-rung data contracts (simd.h doc table). Indexed by
// SimdTier; holds as long as every rung at or below the detected tier was
// compiled in, which CheckCXXCompilerFlag guarantees on the CI toolchains.
const TierContract kContracts[kSimdTierCount] = {
    {"scalar", "scalar", 16, 64},            // kScalar
    {"sse2", "scalar", 16, 64},              // kSse2 (no int8 rung below ssse3)
    {"sse2", "ssse3-maddubs", 16, 64},       // kSsse3 (float resolves down)
    {"avx2+fma", "avx2-maddubs", 16, 64},    // kAvx2
    {"avx512", "avx512bw-maddubs", 32, 64},  // kAvx512
    {"avx512", "avx512vnni-vpdpbusd", 32, 127},  // kVnni (float resolves down)
};

// Every tier the host supports, highest first — the sweep order all the
// tests below use.
std::vector<SimdTier> SupportedTiers() {
  std::vector<SimdTier> tiers;
  for (int t = static_cast<int>(DetectedSimdTier()); t >= 0; --t) {
    tiers.push_back(static_cast<SimdTier>(t));
  }
  return tiers;
}

TEST(DispatchTest, EveryRungReportsItsContract) {
  TierCapGuard guard;
  for (SimdTier tier : SupportedTiers()) {
    SetSimdTierCap(tier);
    ASSERT_EQ(ActiveSimdTier(), tier);
    const TierContract& want = kContracts[static_cast<int>(tier)];
    EXPECT_STREQ(ActiveGemmKernelName(), want.float_name) << SimdTierName(tier);
    EXPECT_STREQ(ActiveInt8KernelName(), want.int8_name) << SimdTierName(tier);
    EXPECT_EQ(GemmNativePanelWidth(), want.panel_width) << SimdTierName(tier);
    EXPECT_EQ(Int8WeightMax(), want.weight_max) << SimdTierName(tier);
  }
}

TEST(DispatchTest, CapBumpsGenerationAndForceScalarDoesNot) {
  TierCapGuard guard;
  const uint64_t before = SimdDispatchGeneration();
  SetSimdTierCap(SimdTier::kScalar);
  EXPECT_GT(SimdDispatchGeneration(), before);
  // force-scalar swaps the kernel, not the data contract — cached packs and
  // plans stay valid, so it must NOT invalidate them.
  const uint64_t after_cap = SimdDispatchGeneration();
  SetGemmForceScalar(true);
  SetGemmForceScalar(false);
  EXPECT_EQ(SimdDispatchGeneration(), after_cap);
}

// Float kernels vs the scalar oracle, every rung, both packable widths.
TEST(DispatchTest, FloatParityAcrossLadderAtBothWidths) {
  TierCapGuard guard;
  const int m = 13;
  const int n = 37;
  const int k = 29;
  Tensor a = RandomTensor(TensorShape{1, 1, m, k}, 1);
  Tensor b = RandomTensor(TensorShape{1, 1, n, k}, 2);
  Tensor bias = RandomTensor(TensorShape{1, 1, 1, n}, 3);
  for (SimdTier tier : SupportedTiers()) {
    SetSimdTierCap(tier);
    for (const int width : {kGemmTileNMin, kGemmTileNMax}) {
      std::vector<float> packed(PackedPanelFloats(n, k, width));
      PackFilterPanels(b.data(), n, k, packed.data(), width);
      std::vector<float> c_tier(static_cast<size_t>(m) * n, -1.0f);
      std::vector<float> c_oracle(static_cast<size_t>(m) * n, 1.0f);
      GemmPackedEx(m, n, k, a.data(), packed.data(), bias.data(),
                   GemmEpilogue::kBiasRelu, c_tier.data(), n, width);
      SetGemmForceScalar(true);
      GemmPackedEx(m, n, k, a.data(), packed.data(), bias.data(),
                   GemmEpilogue::kBiasRelu, c_oracle.data(), n, width);
      SetGemmForceScalar(false);
      for (size_t i = 0; i < c_tier.size(); ++i) {
        ASSERT_NEAR(c_tier[i], c_oracle[i], 1e-4f)
            << SimdTierName(tier) << " width " << width << " at " << i;
      }
    }
  }
}

// int8 kernels vs the scalar oracle: the accumulation is exact int32 and
// the dequantize epilogue pins its one float contraction with std::fma in
// the oracle (matching the tiers' hardware FMA), so parity is BIT-exact at
// every rung and both widths.
TEST(DispatchTest, Int8BitExactParityAcrossLadderAtBothWidths) {
  TierCapGuard guard;
  const int m = 11;
  const int n = 37;
  const int k = 30;
  Tensor b = RandomTensor(TensorShape{1, 1, n, k}, 4);
  Tensor bias = RandomTensor(TensorShape{1, 1, 1, n}, 5);
  Rng code_rng(6);
  ActivationQuant quant;
  quant.scale = 0.03f;
  quant.zero_point = 131;
  for (SimdTier tier : SupportedTiers()) {
    SetSimdTierCap(tier);
    for (const int width : {kGemmTileNMin, kGemmTileNMax}) {
      Int8PackedFilters packed;
      PackFilterPanelsInt8(b.data(), n, k, &packed, width);
      std::vector<uint8_t> a(static_cast<size_t>(m) * packed.k_padded, 0);
      Rng fill_rng(7);  // same codes at every tier
      for (auto& v : a) {
        v = static_cast<uint8_t>(fill_rng.NextBelow(256));
      }
      std::vector<float> c_tier(static_cast<size_t>(m) * n, -1.0f);
      std::vector<float> c_oracle(static_cast<size_t>(m) * n, 1.0f);
      GemmInt8PackedEx(m, a.data(), packed, quant, bias.data(), GemmEpilogue::kBias,
                       c_tier.data(), n);
      SetGemmForceScalar(true);
      GemmInt8PackedEx(m, a.data(), packed, quant, bias.data(), GemmEpilogue::kBias,
                       c_oracle.data(), n);
      SetGemmForceScalar(false);
      for (size_t i = 0; i < c_tier.size(); ++i) {
        ASSERT_EQ(c_tier[i], c_oracle[i])
            << SimdTierName(tier) << " width " << width << " at " << i;
      }
    }
  }
}

// Every rung must produce the SAME bits on shared packed data. The data is
// packed once under the ±64 clamp (safe on every tier: maddubs cannot
// saturate at ±64, vpdpbusd is exact at any clamp), then fed unchanged to
// each rung's kernel — including widths the rung has no intrinsic tile for,
// which exercises the graceful scalar fallback.
TEST(DispatchTest, Int8CrossTierBitIdentityOnSharedPack) {
  TierCapGuard guard;
  const int m = 9;
  const int n = 41;
  const int k = 26;
  Tensor b = RandomTensor(TensorShape{1, 1, n, k}, 8);
  Tensor bias = RandomTensor(TensorShape{1, 1, 1, n}, 9);
  ActivationQuant quant;
  quant.scale = 0.02f;
  quant.zero_point = 117;
  SetSimdTierCap(SimdTier::kScalar);  // clamp 64: saturation-safe everywhere
  ASSERT_EQ(Int8WeightMax(), 64);
  for (const int width : {kGemmTileNMin, kGemmTileNMax}) {
    Int8PackedFilters packed;
    PackFilterPanelsInt8(b.data(), n, k, &packed, width);
    std::vector<uint8_t> a(static_cast<size_t>(m) * packed.k_padded, 0);
    Rng fill_rng(10);
    for (auto& v : a) {
      v = static_cast<uint8_t>(fill_rng.NextBelow(256));
    }
    std::vector<float> reference;
    for (SimdTier tier : SupportedTiers()) {
      SetSimdTierCap(tier);
      std::vector<float> c(static_cast<size_t>(m) * n, -1.0f);
      GemmInt8PackedEx(m, a.data(), packed, quant, bias.data(), GemmEpilogue::kBiasRelu,
                       c.data(), n);
      if (reference.empty()) {
        reference = c;
        continue;
      }
      for (size_t i = 0; i < c.size(); ++i) {
        ASSERT_EQ(c[i], reference[i]) << SimdTierName(tier) << " width " << width
                                      << " diverges from the top rung at " << i;
      }
    }
    SetSimdTierCap(SimdTier::kScalar);  // repack the next width under ±64
  }
}

// A conv running int8 forwards across a cap change must repack under the
// new contract (the pack caches key on width AND clamp) and keep producing
// finite, plan-consistent output — this is the vnni <-> avx512 flip where
// the width stays 32 and only the clamp moves.
TEST(DispatchTest, NetworkSurvivesCapFlipBetweenForwards) {
  TierCapGuard guard;
  Rng rng(11);
  Network net;
  net.Add<Conv2D>(3, 20, 3, 1, 1, rng, "c1");
  net.SetTrainingMode(false);
  net.SetPrecision(Precision::kInt8);
  Tensor input = RandomTensor(TensorShape{1, 8, 8, 3}, 12);
  for (SimdTier tier : SupportedTiers()) {
    SetSimdTierCap(tier);
    Tensor out = net.Forward(input);  // re-plans: the dispatch generation moved
    for (int64_t i = 0; i < out.size(); ++i) {
      ASSERT_TRUE(std::isfinite(out[i])) << SimdTierName(tier);
    }
  }
}

// PCVW v2 artifacts record the clamp their codes were quantized under. When
// that clamp is wider than the ACTIVE tier allows, the loader must drop the
// quantized payload (falling back to float requantization at pack time)
// rather than hand ±127 codes to a saturating maddubs kernel.
TEST(DispatchSerializeTest, WiderClampArtifactDropsPayloadUnderCap) {
  TierCapGuard guard;
  const size_t kWeightMaxOffset = 8;  // magic(4) version(4) weight_max(4) ...
  SetSimdTierCap(SimdTier::kScalar);  // write under the ±64 contract
  Rng rng(13);
  Network donor;
  donor.Add<Conv2D>(2, 4, 1, 1, 0, rng, "c1");
  const std::vector<uint8_t> narrow = SerializeWeightsInt8(donor);
  uint32_t file_max = 0;
  std::memcpy(&file_max, narrow.data() + kWeightMaxOffset, sizeof(file_max));
  ASSERT_EQ(file_max, 64u);

  // In-contract artifact: the payload must survive the load.
  Rng rng2(14);
  Network victim;
  victim.Add<Conv2D>(2, 4, 1, 1, 0, rng2, "c1");
  ASSERT_TRUE(DeserializeWeights(victim, narrow));
  std::vector<Parameter*> params = victim.Parameters();
  ASSERT_FALSE(params.empty());
  EXPECT_NE(params[0]->quantized, nullptr) << "in-contract payload was dropped";

  // The same bytes claiming the ±127 VNNI contract: wider than this capped
  // tier allows, so the loader keeps the floats and drops the codes.
  std::vector<uint8_t> wide = narrow;
  const uint32_t vnni_max = 127;
  std::memcpy(wide.data() + kWeightMaxOffset, &vnni_max, sizeof(vnni_max));
  Rng rng3(14);
  Network victim2;
  victim2.Add<Conv2D>(2, 4, 1, 1, 0, rng3, "c1");
  ASSERT_TRUE(DeserializeWeights(victim2, wide));
  std::vector<Parameter*> params2 = victim2.Parameters();
  ASSERT_FALSE(params2.empty());
  EXPECT_EQ(params2[0]->quantized, nullptr) << "out-of-contract payload was kept";
  // The float views are identical either way — only the codes were dropped.
  for (int64_t i = 0; i < params[0]->value.size(); ++i) {
    ASSERT_EQ(params[0]->value[i], params2[0]->value[i]);
  }
}

}  // namespace
}  // namespace percival
