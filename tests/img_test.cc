// Image substrate tests: bitmap, codec round-trips (property-tested across
// formats and sizes), resize, drawing, perceptual hashing.
#include <gtest/gtest.h>

#include <tuple>

#include "src/base/rng.h"
#include "src/img/bitmap.h"
#include "src/img/codec.h"
#include "src/img/draw.h"
#include "src/img/phash.h"
#include "src/img/resize.h"

namespace percival {
namespace {

Bitmap RandomBitmap(Rng& rng, int width, int height) {
  Bitmap bitmap(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      bitmap.SetPixel(x, y, Color{static_cast<uint8_t>(rng.NextBelow(256)),
                                  static_cast<uint8_t>(rng.NextBelow(256)),
                                  static_cast<uint8_t>(rng.NextBelow(256)),
                                  static_cast<uint8_t>(rng.NextBelow(256))});
    }
  }
  return bitmap;
}

// Structured bitmap with runs (exercises RLE/PIF run opcodes).
Bitmap StructuredBitmap(Rng& rng, int width, int height) {
  Bitmap bitmap(width, height, Color{200, 210, 220, 255});
  FillRect(bitmap, Rect{1, 1, width / 2, height / 2}, Color{255, 0, 0, 255});
  FillVerticalGradient(bitmap, Rect{0, height / 2, width, height / 2}, Color{0, 0, 0, 255},
                       Color{250, 250, 250, 255});
  AddSpeckleNoise(bitmap, Rect{0, 0, width / 3, height / 3}, 10.0f, rng);
  return bitmap;
}

TEST(BitmapTest, ConstructAndFill) {
  Bitmap bitmap(4, 3, Color{1, 2, 3, 4});
  EXPECT_EQ(bitmap.width(), 4);
  EXPECT_EQ(bitmap.height(), 3);
  EXPECT_EQ(bitmap.byte_size(), 4u * 3u * 4u);
  EXPECT_EQ(bitmap.GetPixel(3, 2), (Color{1, 2, 3, 4}));
}

TEST(BitmapTest, SetGetRoundTrip) {
  Bitmap bitmap(2, 2);
  bitmap.SetPixel(1, 0, Color{9, 8, 7, 6});
  EXPECT_EQ(bitmap.GetPixel(1, 0), (Color{9, 8, 7, 6}));
}

TEST(BitmapTest, ClearBlocksContent) {
  Bitmap bitmap(3, 3, Color{10, 20, 30, 255});
  bitmap.Clear();
  EXPECT_EQ(bitmap.GetPixel(1, 1), (Color{255, 255, 255, 0}));
}

TEST(BitmapTest, OutOfBoundsAccessDies) {
  Bitmap bitmap(2, 2);
  EXPECT_DEATH(bitmap.GetPixel(2, 0), "outside");
  EXPECT_DEATH(bitmap.SetPixel(0, -1, Color{}), "outside");
}

// --- Codec round-trip property tests over (format, size) grid -------------

using RoundTripParam = std::tuple<ImageFormat, int, int>;

class CodecRoundTripTest : public ::testing::TestWithParam<RoundTripParam> {};

TEST_P(CodecRoundTripTest, RandomPixelsRoundTrip) {
  const auto [format, width, height] = GetParam();
  Rng rng(static_cast<uint64_t>(width) * 1000 + height);
  Bitmap original = RandomBitmap(rng, width, height);
  if (format == ImageFormat::kPpm) {
    // PPM drops alpha; force it opaque so equality holds.
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        Color c = original.GetPixel(x, y);
        c.a = 255;
        original.SetPixel(x, y, c);
      }
    }
  }
  EncodedImage encoded = Encode(original, format);
  EXPECT_EQ(SniffFormat(encoded.bytes), format);
  std::optional<Bitmap> decoded = DecodeFirstFrame(encoded.bytes);
  ASSERT_TRUE(decoded.has_value()) << ImageFormatName(format);
  EXPECT_EQ(*decoded, original) << ImageFormatName(format) << " " << width << "x" << height;
}

TEST_P(CodecRoundTripTest, StructuredPixelsRoundTrip) {
  const auto [format, width, height] = GetParam();
  if (format == ImageFormat::kPpm) {
    GTEST_SKIP() << "alpha-free format covered by the random-pixel case";
  }
  Rng rng(99);
  Bitmap original = StructuredBitmap(rng, width, height);
  EncodedImage encoded = Encode(original, format);
  std::optional<Bitmap> decoded = DecodeFirstFrame(encoded.bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

INSTANTIATE_TEST_SUITE_P(
    AllFormatsAndSizes, CodecRoundTripTest,
    ::testing::Combine(::testing::Values(ImageFormat::kBmp, ImageFormat::kPpm,
                                         ImageFormat::kPif, ImageFormat::kRle,
                                         ImageFormat::kAnim),
                       ::testing::Values(1, 3, 17, 64), ::testing::Values(1, 5, 33)),
    [](const ::testing::TestParamInfo<RoundTripParam>& info) {
      return std::string(ImageFormatName(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param)) + "x" +
             std::to_string(std::get<2>(info.param));
    });

TEST(CodecTest, AnimPreservesFrameSequence) {
  Rng rng(3);
  std::vector<Bitmap> frames;
  for (int i = 0; i < 4; ++i) {
    frames.push_back(RandomBitmap(rng, 9, 7));
  }
  std::vector<uint8_t> bytes = EncodeAnim(frames);
  std::optional<std::vector<Bitmap>> decoded = DecodeAnim(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ((*decoded)[static_cast<size_t>(i)], frames[static_cast<size_t>(i)]);
  }
}

TEST(CodecTest, SniffRejectsGarbage) {
  EXPECT_EQ(SniffFormat({0x12, 0x34, 0x56, 0x78}), ImageFormat::kUnknown);
  EXPECT_EQ(SniffFormat({}), ImageFormat::kUnknown);
}

TEST(CodecTest, DecodersRejectTruncatedInput) {
  Rng rng(4);
  Bitmap bitmap = RandomBitmap(rng, 16, 16);
  for (ImageFormat format : {ImageFormat::kBmp, ImageFormat::kPif, ImageFormat::kRle}) {
    EncodedImage encoded = Encode(bitmap, format);
    encoded.bytes.resize(encoded.bytes.size() / 3);
    EXPECT_FALSE(DecodeFirstFrame(encoded.bytes).has_value()) << ImageFormatName(format);
  }
}

TEST(CodecTest, DecodersRejectAbsurdDimensions) {
  // Hand-craft a PIF header claiming a 2^30-pixel-wide image.
  std::vector<uint8_t> bytes = {'P', 'I', 'F', '1', 0, 0, 0, 64, 1, 0, 0, 0};
  EXPECT_FALSE(DecodePif(bytes).has_value());
}

TEST(CodecTest, PifCompressesRuns) {
  Bitmap flat(64, 64, Color{100, 100, 100, 255});
  std::vector<uint8_t> bytes = EncodePif(flat);
  EXPECT_LT(bytes.size(), flat.byte_size() / 20);
}

TEST(ResizeTest, IdentityWhenSameSize) {
  Rng rng(5);
  Bitmap bitmap = RandomBitmap(rng, 10, 10);
  Bitmap resized = ResizeBilinear(bitmap, 10, 10);
  EXPECT_EQ(resized, bitmap);
}

TEST(ResizeTest, UniformStaysUniform) {
  Bitmap bitmap(7, 5, Color{42, 42, 42, 255});
  Bitmap resized = ResizeBilinear(bitmap, 13, 11);
  for (int y = 0; y < resized.height(); ++y) {
    for (int x = 0; x < resized.width(); ++x) {
      EXPECT_EQ(resized.GetPixel(x, y), (Color{42, 42, 42, 255}));
    }
  }
}

TEST(ResizeTest, DownscaleDimensions) {
  Rng rng(6);
  Bitmap bitmap = RandomBitmap(rng, 100, 60);
  Bitmap resized = ResizeBilinear(bitmap, 32, 32);
  EXPECT_EQ(resized.width(), 32);
  EXPECT_EQ(resized.height(), 32);
}

TEST(ResizeTest, BitmapToTensorNormalizes) {
  Bitmap bitmap(4, 4, Color{255, 0, 128, 255});
  Tensor tensor = BitmapToTensor(bitmap, 4, 3);
  EXPECT_EQ(tensor.shape(), (TensorShape{1, 4, 4, 3}));
  EXPECT_FLOAT_EQ(tensor.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(tensor.at(0, 0, 0, 1), 0.0f);
  EXPECT_NEAR(tensor.at(0, 0, 0, 2), 128.0f / 255.0f, 1e-5f);
}

TEST(ResizeTest, BitmapToTensorFourChannelsKeepsAlpha) {
  Bitmap bitmap(2, 2, Color{0, 0, 0, 128});
  Tensor tensor = BitmapToTensor(bitmap, 2, 4);
  EXPECT_NEAR(tensor.at(0, 0, 0, 3), 128.0f / 255.0f, 1e-5f);
}

TEST(DrawTest, FillRectClips) {
  Bitmap bitmap(4, 4, Color{0, 0, 0, 255});
  FillRect(bitmap, Rect{-2, -2, 100, 3}, Color{255, 255, 255, 255});
  EXPECT_EQ(bitmap.GetPixel(0, 0).r, 255);
  EXPECT_EQ(bitmap.GetPixel(3, 0).r, 255);
  EXPECT_EQ(bitmap.GetPixel(0, 3).r, 0);
}

TEST(DrawTest, RectIntersects) {
  Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.Intersects(Rect{5, 5, 10, 10}));
  EXPECT_FALSE(a.Intersects(Rect{10, 0, 5, 5}));  // touching edges don't overlap
  EXPECT_TRUE(a.Contains(9, 9));
  EXPECT_FALSE(a.Contains(10, 10));
}

TEST(DrawTest, OutlineLeavesInteriorUntouched) {
  Bitmap bitmap(10, 10, Color{0, 0, 0, 255});
  DrawRectOutline(bitmap, Rect{0, 0, 10, 10}, Color{255, 0, 0, 255}, 1);
  EXPECT_EQ(bitmap.GetPixel(0, 0).r, 255);
  EXPECT_EQ(bitmap.GetPixel(5, 5).r, 0);
}

TEST(DrawTest, TextLineLeavesInk) {
  Bitmap bitmap(80, 12, Color{255, 255, 255, 255});
  Rng rng(7);
  DrawTextLine(bitmap, Rect{0, 0, 80, 12}, Color{0, 0, 0, 255}, GlyphStyle::kLatin, rng);
  EXPECT_GT(NonBackgroundFraction(bitmap, Color{255, 255, 255, 255}), 0.02);
}

class GlyphStyleTest : public ::testing::TestWithParam<GlyphStyle> {};

TEST_P(GlyphStyleTest, EveryStyleProducesInk) {
  Bitmap bitmap(100, 16, Color{255, 255, 255, 255});
  Rng rng(8);
  DrawTextLine(bitmap, Rect{2, 2, 96, 12}, Color{0, 0, 0, 255}, GetParam(), rng);
  EXPECT_GT(NonBackgroundFraction(bitmap, Color{255, 255, 255, 255}), 0.01);
}

INSTANTIATE_TEST_SUITE_P(AllStyles, GlyphStyleTest,
                         ::testing::Values(GlyphStyle::kLatin, GlyphStyle::kArabic,
                                           GlyphStyle::kCjk, GlyphStyle::kHangul,
                                           GlyphStyle::kAccented));

TEST(PhashTest, IdenticalImagesSameHash) {
  Rng rng(9);
  Bitmap bitmap = RandomBitmap(rng, 32, 32);
  EXPECT_EQ(AverageHash(bitmap), AverageHash(bitmap));
}

TEST(PhashTest, SmallPerturbationSmallDistance) {
  Rng rng(10);
  Bitmap bitmap = StructuredBitmap(rng, 64, 64);
  Bitmap perturbed = bitmap;
  AddSpeckleNoise(perturbed, Rect{0, 0, 8, 8}, 3.0f, rng);
  EXPECT_LE(HammingDistance(AverageHash(bitmap), AverageHash(perturbed)), 6);
}

TEST(PhashTest, DifferentStructuresFarApart) {
  Bitmap dark(32, 32, Color{10, 10, 10, 255});
  FillRect(dark, Rect{0, 0, 16, 32}, Color{240, 240, 240, 255});
  Bitmap other(32, 32, Color{10, 10, 10, 255});
  FillRect(other, Rect{0, 0, 32, 16}, Color{240, 240, 240, 255});
  EXPECT_GT(HammingDistance(AverageHash(dark), AverageHash(other)), 16);
}

}  // namespace
}  // namespace percival
