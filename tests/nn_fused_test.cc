// Tests for the fused-operator inference engine: Conv+bias+ReLU folded into
// the GEMM epilogue, FireModule writing expand branches directly into its
// concat output, the persistent packed-weight cache and its invalidation
// paths (optimizer step, SetWeights, deserialize), and the forward-plan
// workspace that makes even the first inference arena-allocation-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/base/rng.h"
#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/fire.h"
#include "src/nn/gemm.h"
#include "src/nn/network.h"
#include "src/nn/optimizer.h"
#include "src/nn/serialize.h"

namespace percival {
namespace {

constexpr float kTolerance = 1e-4f;

Tensor RandomTensor(const TensorShape& shape, uint64_t seed) {
  Tensor tensor(shape);
  Rng rng(seed);
  for (int64_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = rng.NextFloat(-1.0f, 1.0f);
  }
  return tensor;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.shape() == b.shape());
  float worst = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

// ------------------------------------------------- fused epilogue parity --

// relu(conv(x) + bias) via the fused epilogue must match the naive-oracle
// conv followed by a separate ReLU, across randomized shapes that cover
// identity-patch 1x1s, strided odd kernels, and panel-edge channel counts.
TEST(FusedEpilogueTest, ConvBiasReluMatchesUnfusedOracle) {
  Rng shape_rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const int in_channels = 1 + static_cast<int>(shape_rng.NextBelow(8));
    const int out_channels = 1 + static_cast<int>(shape_rng.NextBelow(36));
    const int kernels[] = {1, 3, 5};
    const int kernel = kernels[shape_rng.NextBelow(3)];
    const int stride = 1 + static_cast<int>(shape_rng.NextBelow(2));
    const int pad = static_cast<int>(shape_rng.NextBelow(static_cast<uint64_t>(kernel / 2 + 1)));
    const int min_side = std::max(1, kernel - 2 * pad);
    const int h = min_side + static_cast<int>(shape_rng.NextBelow(12));
    const int w = min_side + static_cast<int>(shape_rng.NextBelow(12));
    const int n = 1 + static_cast<int>(shape_rng.NextBelow(2));

    Rng rng(100 + static_cast<uint64_t>(trial));
    Conv2D conv(in_channels, out_channels, kernel, stride, pad, rng);
    Tensor input = RandomTensor(TensorShape{n, h, w, in_channels},
                                200 + static_cast<uint64_t>(trial));

    conv.set_use_gemm(false);
    Tensor expected = conv.Forward(input);
    Relu relu;
    expected = relu.Forward(expected);

    conv.set_use_gemm(true);
    Tensor fused = conv.ForwardFused(input, GemmEpilogue::kBiasRelu);

    EXPECT_LE(MaxAbsDiff(expected, fused), kTolerance)
        << conv.Name() << " on " << input.shape().ToString();
    for (int64_t i = 0; i < fused.size(); ++i) {
      ASSERT_GE(fused[i], 0.0f) << "fused ReLU let a negative through at " << i;
    }
  }
}

// ------------------------------------------------ fire direct-concat parity --

TEST(FusedFireTest, DirectConcatMatchesLayerByLayerReference) {
  Rng shape_rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const int in_channels = 2 + static_cast<int>(shape_rng.NextBelow(14));
    const int squeeze = 1 + static_cast<int>(shape_rng.NextBelow(6));
    const int expand = 2 + static_cast<int>(shape_rng.NextBelow(20));
    const int side = 3 + static_cast<int>(shape_rng.NextBelow(12));
    const int n = 1 + static_cast<int>(shape_rng.NextBelow(2));

    Rng rng(300 + static_cast<uint64_t>(trial));
    FireModule fire(in_channels, squeeze, expand, rng);
    Tensor input = RandomTensor(TensorShape{n, side, side, in_channels},
                                400 + static_cast<uint64_t>(trial));

    fire.set_use_fused(false);
    Tensor reference = fire.Forward(input);
    fire.set_use_fused(true);
    Tensor fused = fire.Forward(input);

    EXPECT_LE(MaxAbsDiff(reference, fused), kTolerance)
        << fire.Name() << " on " << input.shape().ToString();
  }
}

// Backward after a fused forward must produce the same gradients as after
// the reference forward: the masks reconstructed from fused outputs and the
// conv state cached by ForwardInto feed the exact same backward math.
TEST(FusedFireTest, BackwardAfterFusedForwardMatchesReference) {
  Rng rng(23);
  FireModule fire(5, 3, 7, rng);
  Tensor input = RandomTensor(TensorShape{2, 6, 6, 5}, 24);
  Tensor grad = RandomTensor(fire.OutputShape(input.shape()), 25);

  auto run = [&](bool fused) {
    fire.set_use_fused(fused);
    fire.Forward(input);
    for (Parameter* p : fire.Parameters()) {
      p->grad.Zero();
    }
    return fire.Backward(grad);
  };
  Tensor ref_dx = run(false);
  std::vector<Tensor> ref_grads;
  for (Parameter* p : fire.Parameters()) {
    ref_grads.push_back(p->grad);
  }

  Tensor fused_dx = run(true);
  EXPECT_LE(MaxAbsDiff(ref_dx, fused_dx), kTolerance);
  size_t i = 0;
  for (Parameter* p : fire.Parameters()) {
    EXPECT_LE(MaxAbsDiff(ref_grads[i], p->grad), kTolerance) << p->name;
    ++i;
  }
}

// --------------------------------------------- packed-weight cache behavior --

// The packed panels persist across forwards; an optimizer step must
// invalidate them so the next forward sees the updated weights.
TEST(PackedCacheTest, OptimizerStepInvalidatesPackedWeights) {
  Rng rng(31);
  Conv2D conv(3, 8, 3, 1, 1, rng);
  Tensor input = RandomTensor(TensorShape{1, 8, 8, 3}, 32);
  Tensor before = conv.Forward(input);

  // A non-trivial gradient and one SGD step.
  conv.weights().grad.Fill(0.5f);
  conv.bias().grad.Fill(0.25f);
  SgdConfig config;
  config.learning_rate = 0.1f;
  config.momentum = 0.0f;
  config.max_grad_norm = 0.0f;
  SgdOptimizer optimizer(conv.Parameters(), config);
  optimizer.Step();

  Tensor after = conv.Forward(input);
  EXPECT_GT(MaxAbsDiff(before, after), 1e-3f)
      << "forward unchanged after optimizer step: stale packed weights";

  // And the refreshed pack must agree with the naive oracle on the new
  // weights, not merely differ from the old output.
  conv.set_use_gemm(false);
  Tensor oracle = conv.Forward(input);
  EXPECT_LE(MaxAbsDiff(oracle, after), kTolerance);
}

TEST(PackedCacheTest, SetWeightsInvalidatesPackedWeights) {
  Rng rng(41);
  Conv2D conv(2, 6, 1, 1, 0, rng);
  Tensor input = RandomTensor(TensorShape{1, 5, 5, 2}, 42);
  Tensor before = conv.Forward(input);

  Tensor new_weights = RandomTensor(conv.weights().value.shape(), 43);
  Tensor new_bias = RandomTensor(conv.bias().value.shape(), 44);
  conv.SetWeights(new_weights, new_bias);

  Tensor after = conv.Forward(input);
  EXPECT_GT(MaxAbsDiff(before, after), 1e-3f);

  conv.set_use_gemm(false);
  Tensor oracle = conv.Forward(input);
  EXPECT_LE(MaxAbsDiff(oracle, after), kTolerance);
}

// In-place mutation of weights().value without MarkDirty() is intentionally
// not detected — the version counter is the invalidation contract. This
// pins that contract: stale until marked, fresh after.
TEST(PackedCacheTest, ManualMutationRequiresMarkDirty) {
  Rng rng(51);
  Conv2D conv(2, 4, 1, 1, 0, rng);
  Tensor input = RandomTensor(TensorShape{1, 4, 4, 2}, 52);
  Tensor before = conv.Forward(input);

  for (int64_t i = 0; i < conv.weights().value.size(); ++i) {
    conv.weights().value[i] += 1.0f;
  }
  Tensor stale = conv.Forward(input);
  EXPECT_LE(MaxAbsDiff(before, stale), 1e-6f) << "unmarked mutation should hit the cache";

  conv.weights().MarkDirty();
  Tensor fresh = conv.Forward(input);
  EXPECT_GT(MaxAbsDiff(before, fresh), 1e-3f);
}

TEST(PackedCacheTest, DeserializeInvalidatesPackedWeights) {
  Rng rng_a(61);
  Rng rng_b(62);
  Network net;
  net.Add<Conv2D>(2, 5, 3, 1, 1, rng_a, "conv");
  Network donor;
  donor.Add<Conv2D>(2, 5, 3, 1, 1, rng_b, "conv");

  Tensor input = RandomTensor(TensorShape{1, 7, 7, 2}, 63);
  Tensor before = net.Forward(input);
  Tensor donor_out = donor.Forward(input);

  ASSERT_TRUE(DeserializeWeights(net, SerializeWeights(donor)));
  Tensor after = net.Forward(input);
  EXPECT_GT(MaxAbsDiff(before, after), 1e-3f) << "stale pack survived deserialize";
  EXPECT_LE(MaxAbsDiff(donor_out, after), kTolerance);
}

// ------------------------------------------------- forward-plan workspace --

TEST(ForwardPlanTest, FirstForwardAfterPlanIsArenaAllocationFree) {
  Rng rng(71);
  Network net;
  net.Add<Conv2D>(3, 12, 3, 1, 1, rng, "conv1");
  net.Add<Relu>();
  net.Add<FireModule>(12, 4, 8, rng, "fire1");

  const TensorShape input_shape{1, 20, 20, 3};
  net.PlanForward(input_shape);
  const size_t reserved = LocalArena().CapacityFloats();

  Tensor input = RandomTensor(input_shape, 72);
  net.Forward(input);
  EXPECT_EQ(LocalArena().CapacityFloats(), reserved)
      << "first planned forward still grew the arena";

  // Steady state holds too.
  for (int i = 0; i < 3; ++i) {
    net.Forward(input);
  }
  EXPECT_EQ(LocalArena().CapacityFloats(), reserved);
}

TEST(ForwardPlanTest, ShapeChangeReplansAutomatically) {
  Rng rng(81);
  Network net;
  net.Add<Conv2D>(2, 6, 3, 1, 1, rng, "conv1");

  Tensor small = RandomTensor(TensorShape{1, 8, 8, 2}, 82);
  net.Forward(small);
  Tensor big = RandomTensor(TensorShape{2, 30, 30, 2}, 83);
  net.Forward(big);  // must replan, not crash or under-allocate
  const size_t grown = LocalArena().CapacityFloats();
  net.Forward(big);
  EXPECT_EQ(LocalArena().CapacityFloats(), grown);
}

}  // namespace
}  // namespace percival
