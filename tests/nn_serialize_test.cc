// Tests for the PCVW weight serialization, v2 quantized format, and the
// hardened deserializer: v1->v2 round trips whose reloaded int8 forward is
// bit-identical to the pack-time-quantized path, the >=3.5x artifact-size
// win, fuzz-ish corruption coverage (truncations at every prefix length,
// hostile length fields, bad versions/counts/scales), and the atomicity
// guarantee that a failed load leaves the destination network untouched.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/classifier.h"
#include "src/core/model.h"
#include "src/core/model_zoo.h"
#include "src/nn/conv.h"
#include "src/nn/fire.h"
#include "src/nn/gemm.h"
#include "src/nn/network.h"
#include "src/nn/serialize.h"

namespace percival {
namespace {

Tensor RandomTensor(const TensorShape& shape, uint64_t seed, float lo = -1.0f,
                    float hi = 1.0f) {
  Tensor tensor(shape);
  Rng rng(seed);
  for (int64_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = rng.NextFloat(lo, hi);
  }
  return tensor;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.shape() == b.shape());
  float worst = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

// The test-profile PERCIVAL net: every parameter kind the serializer
// handles (conv weights, biases, nested fire-module convs) at unit-test
// size.
Network ProfileNet(uint64_t seed) {
  PercivalNetConfig config = TestProfile();
  config.init_seed = seed;
  return BuildPercivalNet(config);
}

// Captures a bitwise snapshot of all parameter values + versions.
struct NetSnapshot {
  std::vector<std::vector<float>> values;
  std::vector<uint64_t> versions;
};

NetSnapshot Snapshot(Network& net) {
  NetSnapshot snap;
  for (Parameter* p : net.Parameters()) {
    snap.values.emplace_back(p->value.data(), p->value.data() + p->value.size());
    snap.versions.push_back(p->version);
  }
  return snap;
}

void ExpectUnchanged(Network& net, const NetSnapshot& snap) {
  std::vector<Parameter*> params = net.Parameters();
  ASSERT_EQ(params.size(), snap.values.size());
  for (size_t i = 0; i < params.size(); ++i) {
    ASSERT_EQ(params[i]->version, snap.versions[i]) << params[i]->name;
    ASSERT_EQ(0, std::memcmp(params[i]->value.data(), snap.values[i].data(),
                             sizeof(float) * snap.values[i].size()))
        << params[i]->name << " mutated by a failed load";
  }
}

// ------------------------------------------------------- v2 round trips --

// The acceptance line: a v2 artifact reloaded into a fresh network must run
// int8 inference bit-identical to the network that wrote it (whose int8
// panels were quantized from the original floats at pack time) — the
// serializer uses the same QuantizeWeightRow and the loader injects the
// codes straight into the pack cache.
TEST(SerializeV2Test, ReloadedInt8ForwardBitIdenticalToPackTimePath) {
  Network writer = ProfileNet(1);
  const std::vector<uint8_t> bytes = SerializeWeightsInt8(writer);

  Network reader = ProfileNet(999);  // different init: the load must matter
  ASSERT_TRUE(DeserializeWeights(reader, bytes));

  writer.SetTrainingMode(false);
  reader.SetTrainingMode(false);
  writer.SetPrecision(Precision::kInt8);
  reader.SetPrecision(Precision::kInt8);

  const Tensor input = RandomTensor(TestProfile().InputShape(2), 7, 0.0f, 1.0f);
  Tensor from_writer = writer.Forward(input);
  Tensor from_reader = reader.Forward(input);
  EXPECT_EQ(MaxAbsDiff(from_writer, from_reader), 0.0f)
      << "v2 reload is not bit-identical to the pack-time-quantized path";

  // Same guarantee through the scalar oracle (SetGemmForceScalar parity).
  SetGemmForceScalar(true);
  Tensor scalar_writer = writer.Forward(input);
  Tensor scalar_reader = reader.Forward(input);
  SetGemmForceScalar(false);
  EXPECT_EQ(MaxAbsDiff(scalar_writer, scalar_reader), 0.0f);
}

// The float view of a v2 load is the dequantized weights: every conv
// weight parameter carries a fresh payload whose scale * code reproduces
// value[] exactly, and biases stay float-exact.
TEST(SerializeV2Test, FloatViewIsDequantizedCodes) {
  Network writer = ProfileNet(2);
  const std::vector<uint8_t> bytes = SerializeWeightsInt8(writer);
  Network reader = ProfileNet(998);
  ASSERT_TRUE(DeserializeWeights(reader, bytes));

  std::vector<Parameter*> writer_params = writer.Parameters();
  std::vector<Parameter*> reader_params = reader.Parameters();
  ASSERT_EQ(writer_params.size(), reader_params.size());
  for (size_t i = 0; i < reader_params.size(); ++i) {
    Parameter* p = reader_params[i];
    const bool is_weight = p->name.size() > 7 &&
                           p->name.compare(p->name.size() - 7, 7, ".weight") == 0;
    if (!is_weight) {
      // Bias / non-conv records are raw float: bitwise round trip.
      ASSERT_EQ(0, std::memcmp(p->value.data(), writer_params[i]->value.data(),
                               sizeof(float) * static_cast<size_t>(p->value.size())))
          << p->name;
      continue;
    }
    ASSERT_NE(p->quantized, nullptr) << p->name;
    ASSERT_EQ(p->quantized->version, p->version) << p->name;
    const int channels = p->value.shape().n;
    const int k = static_cast<int>(p->value.size() / channels);
    ASSERT_EQ(p->quantized->codes.size(), static_cast<size_t>(p->value.size()));
    ASSERT_EQ(p->quantized->scales.size(), static_cast<size_t>(channels));
    for (int ch = 0; ch < channels; ++ch) {
      for (int kk = 0; kk < k; ++kk) {
        const int64_t idx = static_cast<int64_t>(ch) * k + kk;
        ASSERT_EQ(p->value[idx],
                  p->quantized->scales[static_cast<size_t>(ch)] *
                      static_cast<float>(p->quantized->codes[static_cast<size_t>(idx)]))
            << p->name << " element " << idx;
      }
    }
  }
}

// Serialize float -> reload -> quantize -> serialize v2 -> reload: the full
// v1->v2 pipeline the deployment story ships, ending in the same
// bit-identical int8 forward.
TEST(SerializeV2Test, V1ToV2PipelineRoundTrip) {
  Network original = ProfileNet(3);
  const std::vector<uint8_t> v1 = SerializeWeights(original);

  Network checkpoint = ProfileNet(997);
  ASSERT_TRUE(DeserializeWeights(checkpoint, v1));
  const std::vector<uint8_t> v2 = SerializeWeightsInt8(checkpoint);

  Network deployed = ProfileNet(996);
  ASSERT_TRUE(DeserializeWeights(deployed, v2));

  original.SetTrainingMode(false);
  deployed.SetTrainingMode(false);
  original.SetPrecision(Precision::kInt8);
  deployed.SetPrecision(Precision::kInt8);
  const Tensor input = RandomTensor(TestProfile().InputShape(), 8, 0.0f, 1.0f);
  EXPECT_EQ(MaxAbsDiff(original.Forward(input), deployed.Forward(input)), 0.0f);
}

// The deployment artifact must be >= 3.5x smaller than the float
// checkpoint for the experiment-profile model (int8 codes + one scale per
// channel vs 4 bytes per weight; biases stay float in both).
TEST(SerializeV2Test, ArtifactAtLeast3p5xSmallerThanV1) {
  PercivalNetConfig config = ExperimentProfile();
  Network net = BuildPercivalNet(config);
  const double v1_bytes = static_cast<double>(SerializeWeights(net).size());
  const double v2_bytes = static_cast<double>(SerializeWeightsInt8(net).size());
  EXPECT_GE(v1_bytes / v2_bytes, 3.5)
      << "v1 " << v1_bytes << " bytes, v2 " << v2_bytes << " bytes";
}

// Mutating a parameter after a v2 load strands the pre-quantized payload
// (version mismatch) and the pack cache falls back to requantizing the
// current floats — stale injected codes must never survive an update.
TEST(SerializeV2Test, PayloadGoesStaleOnMutation) {
  Rng rng(41);
  Network net;
  Conv2D& conv = net.Add<Conv2D>(3, 8, 3, 1, 1, rng, "c1");
  Network donor;
  Rng donor_rng(42);
  donor.Add<Conv2D>(3, 8, 3, 1, 1, donor_rng, "c1");
  ASSERT_TRUE(DeserializeWeights(net, SerializeWeightsInt8(donor)));
  Parameter& weights = conv.weights();
  ASSERT_NE(weights.quantized, nullptr);
  ASSERT_EQ(weights.quantized->version, weights.version);

  net.SetPrecision(Precision::kInt8);
  const Tensor input = RandomTensor(TensorShape{1, 6, 6, 3}, 43);
  Tensor before = net.Forward(input);

  Tensor new_weights = RandomTensor(weights.value.shape(), 44);
  Tensor new_bias = RandomTensor(conv.bias().value.shape(), 45);
  conv.SetWeights(new_weights, new_bias);
  EXPECT_NE(weights.quantized->version, weights.version);
  Tensor after = net.Forward(input);
  EXPECT_GT(MaxAbsDiff(before, after), 1e-3f)
      << "stale pre-quantized payload survived SetWeights";
}

// ------------------------------------------------------- corruption fuzz --

// Every proper prefix of a valid file must be rejected without crashing or
// reading out of bounds — this is the regression net for the
// `pos_ + size > bytes_.size()` overflow rewrite plus the staging commit.
TEST(SerializeCorruptionTest, EveryTruncationRejectedCleanly) {
  Network donor = ProfileNet(4);
  for (const std::vector<uint8_t>& bytes :
       {SerializeWeights(donor), SerializeWeightsInt8(donor)}) {
    Network victim = ProfileNet(995);
    const NetSnapshot snap = Snapshot(victim);
    // Dense coverage of the header + first record, coarse beyond.
    std::vector<size_t> lengths;
    for (size_t len = 0; len < std::min<size_t>(bytes.size(), 256); ++len) {
      lengths.push_back(len);
    }
    for (size_t len = 256; len < bytes.size(); len += 509) {  // prime stride
      lengths.push_back(len);
    }
    lengths.push_back(bytes.size() - 1);
    for (size_t len : lengths) {
      std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + len);
      ASSERT_FALSE(DeserializeWeights(victim, truncated)) << "length " << len;
    }
    ExpectUnchanged(victim, snap);
  }
}

// A hostile string length near SIZE_MAX used to wrap `pos_ + size` and read
// out of bounds; it must simply be rejected.
TEST(SerializeCorruptionTest, OversizedStringLengthRejected) {
  Network donor = ProfileNet(5);
  std::vector<uint8_t> bytes = SerializeWeights(donor);
  // v1 layout: magic(4) version(4) count(4), then the first name length.
  const uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + 12, &huge, sizeof(huge));
  Network victim = ProfileNet(994);
  const NetSnapshot snap = Snapshot(victim);
  EXPECT_FALSE(DeserializeWeights(victim, bytes));
  ExpectUnchanged(victim, snap);
}

TEST(SerializeCorruptionTest, WrongMagicVersionCountRejected) {
  Network donor = ProfileNet(6);
  const std::vector<uint8_t> good = SerializeWeights(donor);
  Network victim = ProfileNet(993);
  const NetSnapshot snap = Snapshot(victim);

  std::vector<uint8_t> bad = good;
  bad[0] = 'X';  // magic
  EXPECT_FALSE(DeserializeWeights(victim, bad));

  bad = good;
  const uint32_t version3 = 3;  // unknown version
  std::memcpy(bad.data() + 4, &version3, sizeof(version3));
  EXPECT_FALSE(DeserializeWeights(victim, bad));

  bad = good;
  uint32_t count = 0;
  std::memcpy(&count, bad.data() + 8, sizeof(count));
  ++count;  // parameter-count mismatch
  std::memcpy(bad.data() + 8, &count, sizeof(count));
  EXPECT_FALSE(DeserializeWeights(victim, bad));

  ExpectUnchanged(victim, snap);  // every rejection left the net untouched
  EXPECT_TRUE(DeserializeWeights(victim, good));  // the original still loads
}

// Hostile v2 metadata: a single-conv net whose record offsets are
// computable, so each field can be corrupted surgically. Record geometry
// is derived from the destination network (v2 carries none), so the
// attack surface is the header fields, the manifest hash, the kind bytes,
// and the scale/code payloads.
TEST(SerializeCorruptionTest, HostileV2RecordsRejected) {
  Rng rng(51);
  Network donor;
  donor.Add<Conv2D>(2, 4, 1, 1, 0, rng, "c1");
  const std::vector<uint8_t> good = SerializeWeightsInt8(donor);
  // Offsets: magic(4) version(4) weight_max(4) count(4) hash(8) = 24;
  // then record 1 ("c1.weight"): kind(1) @24, 4 float scales @25,
  // 4x2 codes @41; record 2 ("c1.bias"): kind @49, 4 floats @50.
  const size_t kWeightMaxOffset = 8;
  const size_t kHashOffset = 16;
  const size_t kKindOffset = 24;
  const size_t kScalesOffset = 25;
  ASSERT_EQ(good.size(), 66u) << "v2 layout changed; update the offsets above";

  Rng check_rng(52);
  Network victim;
  victim.Add<Conv2D>(2, 4, 1, 1, 0, check_rng, "c1");
  const NetSnapshot snap = Snapshot(victim);

  std::vector<uint8_t> bad = good;
  bad[kHashOffset] ^= 0xFF;  // wrong architecture manifest
  EXPECT_FALSE(DeserializeWeights(victim, bad)) << "corrupt manifest hash accepted";

  bad = good;
  bad[kKindOffset] = 7;  // unknown record kind
  EXPECT_FALSE(DeserializeWeights(victim, bad)) << "unknown record kind accepted";

  bad = good;
  bad[kKindOffset + 25] = 1;  // int8 kind on the bias record
  EXPECT_FALSE(DeserializeWeights(victim, bad)) << "quantized bias record accepted";

  bad = good;
  const float negative_scale = -1.0f;
  std::memcpy(bad.data() + kScalesOffset, &negative_scale, sizeof(negative_scale));
  EXPECT_FALSE(DeserializeWeights(victim, bad)) << "negative scale accepted";

  bad = good;
  const uint32_t wild_weight_max = 255;  // past int8 entirely
  std::memcpy(bad.data() + kWeightMaxOffset, &wild_weight_max, sizeof(wild_weight_max));
  EXPECT_FALSE(DeserializeWeights(victim, bad)) << "weight_max > 127 accepted";

  bad = good;
  const uint32_t zero = 0;
  std::memcpy(bad.data() + kWeightMaxOffset, &zero, sizeof(zero));
  EXPECT_FALSE(DeserializeWeights(victim, bad)) << "weight_max == 0 accepted";

  ExpectUnchanged(victim, snap);
  EXPECT_TRUE(DeserializeWeights(victim, good));
}

// ----------------------------------------------------------- atomicity --

// A record that fails mid-stream (here: the final record truncated) must
// leave every parameter untouched — the old reader had already overwritten
// the earlier parameters by then, leaving a half-loaded network that was
// indistinguishable from a good one.
TEST(SerializeAtomicityTest, MidStreamFailureLeavesAllWeightsUntouched) {
  Network donor = ProfileNet(7);
  for (std::vector<uint8_t> bytes :
       {SerializeWeights(donor), SerializeWeightsInt8(donor)}) {
    bytes.resize(bytes.size() - 3);  // clip inside the LAST parameter record
    Network victim = ProfileNet(992);
    victim.SetTrainingMode(false);
    const Tensor input = RandomTensor(TestProfile().InputShape(), 9, 0.0f, 1.0f);
    const Tensor before = victim.Forward(input);
    const NetSnapshot snap = Snapshot(victim);

    ASSERT_FALSE(DeserializeWeights(victim, bytes));
    ExpectUnchanged(victim, snap);
    EXPECT_EQ(MaxAbsDiff(before, victim.Forward(input)), 0.0f)
        << "failed load changed the network's forward";
  }
}

// ------------------------------------------------- zoo + classifier glue --

TEST(SerializeZooTest, ZooLoadsQuantizedArtifactWithoutRetraining) {
  const std::string dir = ::testing::TempDir() + "/pcvw_zoo_test";
  ModelZoo zoo(dir);
  zoo.Evict("quantized");

  PercivalNetConfig config = TestProfile();
  Network trained = BuildPercivalNet(config);  // stands in for a trained net
  ASSERT_FALSE(zoo.SaveQuantized("quantized", trained).empty());

  bool train_called = false;
  PercivalNetConfig fresh = config;
  fresh.init_seed = 991;  // GetOrTrain must load, not fall back to this init
  Network loaded = zoo.GetOrTrain("quantized", fresh, [&](Network&) { train_called = true; });
  EXPECT_FALSE(train_called) << "zoo retrained despite a v2 artifact on disk";

  trained.SetTrainingMode(false);
  loaded.SetTrainingMode(false);
  trained.SetPrecision(Precision::kInt8);
  loaded.SetPrecision(Precision::kInt8);
  const Tensor input = RandomTensor(config.InputShape(), 10, 0.0f, 1.0f);
  EXPECT_EQ(MaxAbsDiff(trained.Forward(input), loaded.Forward(input)), 0.0f);
  zoo.Evict("quantized");
}

TEST(SerializeClassifierTest, LoadWeightsPicksPrecisionFromFormat) {
  const std::string dir = ::testing::TempDir();
  PercivalNetConfig config = TestProfile();
  Network donor = BuildPercivalNet(config);
  const std::string v1_path = dir + "/classifier_v1.pcvw";
  const std::string v2_path = dir + "/classifier_v2.int8.pcvw";
  ASSERT_TRUE(SaveWeightsToFile(donor, v1_path));
  ASSERT_TRUE(SaveWeightsToFileInt8(donor, v2_path));

  PercivalNetConfig fresh = config;
  fresh.init_seed = 990;
  AdClassifier classifier(BuildPercivalNet(fresh), fresh);
  EXPECT_TRUE(classifier.precision() == Precision::kFloat32);

  ASSERT_TRUE(classifier.LoadWeights(v2_path));
  EXPECT_TRUE(classifier.precision() == Precision::kInt8);

  ASSERT_TRUE(classifier.LoadWeights(v1_path));
  EXPECT_TRUE(classifier.precision() == Precision::kFloat32);

  EXPECT_FALSE(classifier.LoadWeights(dir + "/does_not_exist.pcvw"));
  EXPECT_TRUE(classifier.precision() == Precision::kFloat32);
}

// ------------------------------------------------- calibration trailer --

// A v2 artifact written after a calibration batch carries the activation
// ranges; loading it restores them (deployment skips the per-forward
// MinMaxRange pass), and the calibrated int8 forward is bit-identical
// between writer and reader.
TEST(SerializeCalibrationTest, TrailerRoundTripRestoresRangesAndForward) {
  Network writer = ProfileNet(3);
  writer.SetTrainingMode(false);
  const Tensor batch = RandomTensor(TestProfile().InputShape(4), 11, 0.0f, 1.0f);

  // Calibration pass: float forwards under capture record every conv's
  // observed input range.
  writer.SetCalibrationCapture(true);
  writer.Forward(batch);
  writer.SetCalibrationCapture(false);
  const std::vector<ActivationCalibration> written = writer.CollectCalibration();
  ASSERT_EQ(written.size(), writer.CalibrationSlots());
  for (const ActivationCalibration& entry : written) {
    ASSERT_TRUE(entry.valid) << "capture pass left a conv uncalibrated";
  }

  const std::vector<uint8_t> with_trailer = SerializeWeightsInt8(writer);
  Network reader = ProfileNet(997);
  ASSERT_TRUE(DeserializeWeights(reader, with_trailer));
  reader.SetTrainingMode(false);
  const std::vector<ActivationCalibration> loaded = reader.CollectCalibration();
  ASSERT_EQ(loaded.size(), written.size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    ASSERT_TRUE(loaded[i].valid);
    ASSERT_EQ(loaded[i].min_value, written[i].min_value);
    ASSERT_EQ(loaded[i].max_value, written[i].max_value);
  }

  writer.SetPrecision(Precision::kInt8);
  reader.SetPrecision(Precision::kInt8);
  // Under GapCodesMode::kAuto the reader's trailer-supplied GAP range links
  // GAP-on-codes while the writer's live-captured one would not; feed the
  // writer its own collected entries (the deployment situation: both sides
  // load from a trailer) so both run the same plan and stay comparable.
  ASSERT_TRUE(writer.LoadCalibration(written));
  const Tensor input = RandomTensor(TestProfile().InputShape(), 12, 0.0f, 1.0f);
  EXPECT_EQ(MaxAbsDiff(writer.Forward(input), reader.Forward(input)), 0.0f)
      << "calibrated v2 reload is not bit-identical";
}

// Without a capture pass the artifact has no trailer (and still loads — the
// pre-trailer v2 format), and a calibrated load actually changes the int8
// quantization (proof the per-forward range scan is being skipped).
TEST(SerializeCalibrationTest, TrailerIsOptionalAndActuallyUsed) {
  Network writer = ProfileNet(5);
  const std::vector<uint8_t> plain = SerializeWeightsInt8(writer);
  Network reader = ProfileNet(996);
  ASSERT_TRUE(DeserializeWeights(reader, plain));
  for (const ActivationCalibration& entry : reader.CollectCalibration()) {
    EXPECT_FALSE(entry.valid) << "trailer-less v2 load invented a calibration";
  }

  // A deliberately wrong calibration range must change the quantized
  // output: if the forward still scanned the input per-forward, the range
  // would be identical in both runs and so would the codes.
  Rng rng(61);
  Conv2D conv(3, 8, 3, 1, 1, rng);
  conv.SetPrecision(Precision::kInt8);
  const Tensor input = RandomTensor(TensorShape{1, 8, 8, 3}, 62, 0.0f, 1.0f);
  Tensor scanned = conv.Forward(input);
  conv.SetInputCalibration(0.0f, 4.0f);  // 4x the real range -> coarser codes
  Tensor calibrated = conv.Forward(input);
  EXPECT_GT(MaxAbsDiff(scanned, calibrated), 0.0f)
      << "calibration was ignored: the forward still derives its range by scanning";

  // Capture restarts fresh and accumulates the union of batch ranges.
  conv.SetPrecision(Precision::kFloat32);
  conv.SetCalibrationCapture(true);
  conv.Forward(RandomTensor(TensorShape{1, 8, 8, 3}, 63, -0.5f, 0.5f));
  conv.Forward(RandomTensor(TensorShape{1, 8, 8, 3}, 64, 0.0f, 2.0f));
  conv.SetCalibrationCapture(false);
  float lo = 0.0f;
  float hi = 0.0f;
  ASSERT_TRUE(conv.InputCalibration(&lo, &hi));
  EXPECT_LT(lo, -0.4f);
  EXPECT_GT(hi, 1.5f);
}

// Loading a trailer-less artifact (v2 or v1) over a previously calibrated
// network must CLEAR the old ranges: stale calibrations would quantize the
// new weights' activations against the old model's distribution.
TEST(SerializeCalibrationTest, TrailerlessLoadClearsStaleCalibration) {
  Network calibrated_writer = ProfileNet(7);
  calibrated_writer.SetTrainingMode(false);
  calibrated_writer.SetCalibrationCapture(true);
  calibrated_writer.Forward(RandomTensor(TestProfile().InputShape(), 14, 0.0f, 1.0f));
  calibrated_writer.SetCalibrationCapture(false);
  const std::vector<uint8_t> with_trailer = SerializeWeightsInt8(calibrated_writer);

  Network target = ProfileNet(994);
  ASSERT_TRUE(DeserializeWeights(target, with_trailer));
  for (const ActivationCalibration& entry : target.CollectCalibration()) {
    ASSERT_TRUE(entry.valid);
  }

  Network plain_writer = ProfileNet(8);
  ASSERT_TRUE(DeserializeWeights(target, SerializeWeightsInt8(plain_writer)));
  for (const ActivationCalibration& entry : target.CollectCalibration()) {
    EXPECT_FALSE(entry.valid) << "trailer-less v2 load kept a stale calibration";
  }

  ASSERT_TRUE(DeserializeWeights(target, with_trailer));
  ASSERT_TRUE(DeserializeWeights(target, SerializeWeights(plain_writer)));
  for (const ActivationCalibration& entry : target.CollectCalibration()) {
    EXPECT_FALSE(entry.valid) << "v1 load kept a stale calibration";
  }

  // The public LoadCalibration API rejects an under-sized vector outright —
  // accepting it would "succeed" while leaving later layers untouched.
  const std::vector<ActivationCalibration> too_short{{0.0f, 1.0f, true}};
  EXPECT_FALSE(target.LoadCalibration(too_short));
}

// Hostile trailers: wrong tag, wrong count, truncation, non-finite or
// inverted ranges, and trailing garbage all reject atomically.
TEST(SerializeCalibrationTest, HostileTrailersRejected) {
  Network writer = ProfileNet(6);
  writer.SetTrainingMode(false);
  writer.SetCalibrationCapture(true);
  writer.Forward(RandomTensor(TestProfile().InputShape(), 13, 0.0f, 1.0f));
  writer.SetCalibrationCapture(false);
  const std::vector<uint8_t> good = SerializeWeightsInt8(writer);
  Network uncalibrated = ProfileNet(6);
  const std::vector<uint8_t> plain = SerializeWeightsInt8(uncalibrated);
  ASSERT_GT(good.size(), plain.size());
  const size_t trailer_at = plain.size();

  Network target = ProfileNet(995);
  const NetSnapshot snap = Snapshot(target);
  auto expect_rejected = [&](std::vector<uint8_t> bytes, const char* what) {
    EXPECT_FALSE(DeserializeWeights(target, bytes)) << what;
    ExpectUnchanged(target, snap);
  };

  {
    std::vector<uint8_t> bad = good;
    bad[trailer_at] = 0x7F;  // unknown trailer tag
    expect_rejected(std::move(bad), "unknown tag");
  }
  {
    std::vector<uint8_t> bad = good;
    bad[trailer_at + 1] ^= 0xFF;  // count mismatch
    expect_rejected(std::move(bad), "count mismatch");
  }
  for (size_t cut = trailer_at + 1; cut < good.size(); cut += 3) {
    std::vector<uint8_t> bad(good.begin(), good.begin() + cut);
    expect_rejected(std::move(bad), "truncated trailer");
  }
  {
    std::vector<uint8_t> bad = good;
    const float nan_value = std::nanf("");
    std::memcpy(bad.data() + trailer_at + 1 + sizeof(uint32_t), &nan_value,
                sizeof(nan_value));
    expect_rejected(std::move(bad), "non-finite range");
  }
  {
    std::vector<uint8_t> bad = good;
    // min > max: swap in an inverted pair for the first entry.
    const float lo = 2.0f;
    const float hi = -1.0f;
    std::memcpy(bad.data() + trailer_at + 1 + sizeof(uint32_t), &lo, sizeof(lo));
    std::memcpy(bad.data() + trailer_at + 1 + sizeof(uint32_t) + sizeof(float), &hi,
                sizeof(hi));
    expect_rejected(std::move(bad), "inverted range");
  }
  {
    std::vector<uint8_t> bad = good;
    bad.push_back(0);  // trailing garbage after a valid trailer
    expect_rejected(std::move(bad), "trailing garbage");
  }

  // The unmodified trailer still loads into the same target.
  EXPECT_TRUE(DeserializeWeights(target, good));
}

// Regression: FireModule::ConsumeCalibration with fewer entries than its
// three inner convs expect. The squeeze conv consumes the whole short run,
// and the remaining count for the expand convs is computed in size_t
// arithmetic — before the clamp, `count - consumed` underflowed to ~2^64
// and handed the expand convs a giant bogus entry span. The module must
// consume at most `count` entries and stop cleanly.
TEST(SerializeCalibrationTest, FireTruncatedTrailerConsumesAtMostCount) {
  Rng rng(31);
  FireModule fire(8, 4, 8, rng);

  const ActivationCalibration entries[3] = {
      {0.0f, 1.0f, true}, {0.0f, 2.0f, true}, {0.0f, 3.0f, true}};
  for (size_t count = 0; count <= 3; ++count) {
    FireModule probe(8, 4, 8, rng);
    const size_t consumed = probe.ConsumeCalibration(entries, count);
    EXPECT_LE(consumed, count) << "count=" << count;
  }

  // A partial run applies exactly the prefix: one entry calibrates the
  // squeeze conv only, and the module-level input calibration (the
  // squeeze's) reflects it.
  ASSERT_EQ(fire.ConsumeCalibration(entries, 1), 1u);
  float lo = -1.0f;
  float hi = -1.0f;
  ASSERT_TRUE(fire.InputCalibration(&lo, &hi));
  EXPECT_EQ(lo, 0.0f);
  EXPECT_EQ(hi, 1.0f);
}

}  // namespace
}  // namespace percival
