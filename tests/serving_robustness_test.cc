// Overload and fault coverage for the serving core: every rung of the
// degradation ladder (admit -> coalesce -> shed -> evict -> degrade) is
// driven through the fault-injection harness and asserted observable, and
// every failure is fail-open — a saturated queue, a pathological forward, a
// failed allocation, or a corrupt artifact never blocks a paint and never
// leaves a half-loaded network serving.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "src/base/faultpoint.h"
#include "src/core/classifier.h"
#include "src/core/model.h"
#include "src/img/bitmap.h"
#include "src/nn/serialize.h"

namespace percival {
namespace {

// Deterministic distinct bitmaps: each id gets a unique pixel pattern, so
// unique ids <=> unique pixel hashes. The background pattern repeats every
// 256 ids, so the full id is additionally stamped into pixel (0, 0) — the
// flood tests push well past 256 uniques.
Bitmap MakeBitmap(int id) {
  Bitmap bitmap(16, 12);
  for (int y = 0; y < bitmap.height(); ++y) {
    for (int x = 0; x < bitmap.width(); ++x) {
      bitmap.SetPixel(x, y,
                      Color{static_cast<uint8_t>((id * 37 + x) & 0xff),
                            static_cast<uint8_t>((id * 101 + y) & 0xff),
                            static_cast<uint8_t>(id & 0xff), 255});
    }
  }
  bitmap.SetPixel(0, 0,
                  Color{static_cast<uint8_t>(id & 0xff), static_cast<uint8_t>((id >> 8) & 0xff),
                        static_cast<uint8_t>((id >> 16) & 0xff), 255});
  return bitmap;
}

AdClassifier MakeTestClassifier() {
  PercivalNetConfig config = TestProfile();
  return AdClassifier(BuildPercivalNet(config), config);
}

// Every test leaves the process-wide fault registry clean.
class ServingRobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override { faultpoint::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Fault-injection harness semantics.

TEST_F(ServingRobustnessTest, FaultPointLifecycle) {
  EXPECT_FALSE(faultpoint::IsArmed(faultpoint::kSlowForward));
  EXPECT_FALSE(faultpoint::ShouldFire(faultpoint::kSlowForward));

  faultpoint::FaultSpec twice;
  twice.count = 2;
  faultpoint::Arm(faultpoint::kSlowForward, twice);
  EXPECT_TRUE(faultpoint::IsArmed(faultpoint::kSlowForward));
  EXPECT_TRUE(faultpoint::ShouldFire(faultpoint::kSlowForward));
  EXPECT_TRUE(faultpoint::ShouldFire(faultpoint::kSlowForward));
  // Finite count consumed: auto-disarmed, stops firing.
  EXPECT_FALSE(faultpoint::ShouldFire(faultpoint::kSlowForward));
  EXPECT_FALSE(faultpoint::IsArmed(faultpoint::kSlowForward));
  // Fire count is cumulative and survives disarm.
  EXPECT_EQ(faultpoint::FireCount(faultpoint::kSlowForward), 2);

  // Arming one point does not fire another.
  faultpoint::Arm(faultpoint::kQueueSaturate, faultpoint::FaultSpec{});
  EXPECT_FALSE(faultpoint::ShouldFire(faultpoint::kSlowForward));
  EXPECT_TRUE(faultpoint::ShouldFire(faultpoint::kQueueSaturate));
  faultpoint::Disarm(faultpoint::kQueueSaturate);
  EXPECT_FALSE(faultpoint::ShouldFire(faultpoint::kQueueSaturate));
}

TEST_F(ServingRobustnessTest, FaultPointThreadSafety) {
  faultpoint::FaultSpec spec;
  spec.count = 1000;
  faultpoint::Arm(faultpoint::kQueueSaturate, spec);
  const int64_t before = faultpoint::FireCount(faultpoint::kQueueSaturate);
  std::atomic<int64_t> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        if (faultpoint::ShouldFire(faultpoint::kQueueSaturate)) {
          fired.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Exactly `count` fires across all threads, never more.
  EXPECT_EQ(fired.load(), 1000);
  EXPECT_EQ(faultpoint::FireCount(faultpoint::kQueueSaturate) - before, 1000);
  EXPECT_FALSE(faultpoint::IsArmed(faultpoint::kQueueSaturate));
}

// ---------------------------------------------------------------------------
// Bounded admission + CLOCK eviction: a flood of unique creatives sheds at
// the queue bound and the memo cache never exceeds its capacity.

TEST_F(ServingRobustnessTest, UniqueFloodShedsAndBoundsMemory) {
  AdClassifier inner = MakeTestClassifier();
  AsyncAdClassifier async(inner);
  ServingPolicy policy;
  policy.max_pending = 32;
  policy.max_memo_entries = 64;
  async.SetServingPolicy(policy);

  constexpr int kFlood = 10000;
  int64_t max_pending_seen = 0;
  int64_t max_cache_seen = 0;
  for (int i = 0; i < kFlood; ++i) {
    Bitmap image = MakeBitmap(i);
    async.OnDecodedFrame(image.info(), image, "https://ads.example/flood");
    max_pending_seen = std::max(max_pending_seen, async.pending_size());
    max_cache_seen = std::max(max_cache_seen, async.cache_size());
    if (i % 1000 == 999) {
      async.DrainPending(nullptr, 8);
    }
  }
  async.DrainPending(nullptr, 8);
  max_cache_seen = std::max(max_cache_seen, async.cache_size());

  // Memory stays bounded by the policy at every observation point.
  EXPECT_LE(max_pending_seen, static_cast<int64_t>(policy.max_pending));
  EXPECT_LE(max_cache_seen, static_cast<int64_t>(policy.max_memo_entries));

  const ClassifierStats stats = async.stats();
  // The flood mostly sheds: only ~32 frames per drain cycle are admitted.
  EXPECT_GT(stats.shed, 0);
  EXPECT_GT(stats.evicted, 0);
  // Coherent snapshot invariants.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, kFlood);
  EXPECT_EQ(stats.cache_hits, 0);  // all unique
  EXPECT_LE(stats.shed + stats.coalesced, stats.cache_misses);
  // Everything admitted was classified exactly once.
  EXPECT_EQ(inner.stats().classified, kFlood - stats.shed);
}

TEST_F(ServingRobustnessTest, QueueSaturateFaultForcesShedding) {
  AdClassifier inner = MakeTestClassifier();
  AsyncAdClassifier async(inner);

  faultpoint::Arm(faultpoint::kQueueSaturate, faultpoint::FaultSpec{});  // every time
  for (int i = 0; i < 10; ++i) {
    Bitmap image = MakeBitmap(i);
    EXPECT_FALSE(async.OnDecodedFrame(image.info(), image, "url"));  // fail-open
  }
  EXPECT_EQ(async.pending_size(), 0);
  EXPECT_EQ(async.stats().shed, 10);

  faultpoint::Disarm(faultpoint::kQueueSaturate);
  Bitmap image = MakeBitmap(11);
  async.OnDecodedFrame(image.info(), image, "url");
  EXPECT_EQ(async.pending_size(), 1);  // admission resumed
}

// The CLOCK sweep keeps the hot entry: with capacity 2, a hit on A defends
// it, so inserting C evicts the never-hit B.
TEST_F(ServingRobustnessTest, ClockEvictionKeepsHotEntry) {
  AdClassifier inner = MakeTestClassifier();
  AsyncAdClassifier async(inner);
  ServingPolicy policy;
  policy.max_memo_entries = 2;
  async.SetServingPolicy(policy);

  Bitmap a = MakeBitmap(1);
  Bitmap b = MakeBitmap(2);
  Bitmap c = MakeBitmap(3);
  async.OnDecodedFrame(a.info(), a, "a");
  async.OnDecodedFrame(b.info(), b, "b");
  async.DrainPending();
  ASSERT_EQ(async.cache_size(), 2);
  async.OnDecodedFrame(a.info(), a, "a");  // hit: sets A's reference bit
  ASSERT_EQ(async.stats().cache_hits, 1);

  async.OnDecodedFrame(c.info(), c, "c");
  async.DrainPending();
  EXPECT_EQ(async.cache_size(), 2);
  EXPECT_EQ(async.stats().evicted, 1);

  // A survived the eviction; B did not.
  async.OnDecodedFrame(a.info(), a, "a");
  EXPECT_EQ(async.stats().cache_hits, 2);
  const int64_t misses_before = async.stats().cache_misses;
  async.OnDecodedFrame(b.info(), b, "b");
  EXPECT_EQ(async.stats().cache_misses, misses_before + 1);
}

// Tightening the cap through SetServingPolicy evicts immediately.
TEST_F(ServingRobustnessTest, ShrinkingMemoCapEvictsImmediately) {
  AdClassifier inner = MakeTestClassifier();
  AsyncAdClassifier async(inner);
  for (int i = 0; i < 8; ++i) {
    Bitmap image = MakeBitmap(i);
    async.OnDecodedFrame(image.info(), image, "url");
  }
  async.DrainPending();
  ASSERT_EQ(async.cache_size(), 8);
  ServingPolicy policy;
  policy.max_memo_entries = 3;
  async.SetServingPolicy(policy);
  EXPECT_EQ(async.cache_size(), 3);
  EXPECT_EQ(async.stats().evicted, 5);
}

// ---------------------------------------------------------------------------
// DrainPending: batch_size clamp + time budget.

// Regression: batch_size <= 0 used to make zero-size batches (no progress);
// it must clamp to 1 and fully drain.
TEST_F(ServingRobustnessTest, DrainClampsNonPositiveBatchSize) {
  AdClassifier inner = MakeTestClassifier();
  AsyncAdClassifier async(inner);
  for (int i = 0; i < 5; ++i) {
    Bitmap image = MakeBitmap(i);
    async.OnDecodedFrame(image.info(), image, "url");
  }
  ASSERT_EQ(async.pending_size(), 5);
  async.DrainPending(nullptr, 0);
  EXPECT_EQ(async.pending_size(), 0);
  for (int i = 5; i < 9; ++i) {
    Bitmap image = MakeBitmap(i);
    async.OnDecodedFrame(image.info(), image, "url");
  }
  async.DrainPending(nullptr, -7);
  EXPECT_EQ(async.pending_size(), 0);
  EXPECT_EQ(inner.stats().classified, 9);
}

TEST_F(ServingRobustnessTest, DrainBudgetLeavesOverflowQueued) {
  AdClassifier inner = MakeTestClassifier();
  AsyncAdClassifier async(inner);
  // Make every forward slow so the first batch alone exceeds the budget.
  faultpoint::FaultSpec slow;
  slow.delay_ms = 3.0;
  faultpoint::Arm(faultpoint::kSlowForward, slow);

  for (int i = 0; i < 6; ++i) {
    Bitmap image = MakeBitmap(i);
    async.OnDecodedFrame(image.info(), image, "url");
  }
  // Batch of 2, 1ms budget: exactly one batch runs (progress guarantee),
  // the rest stays queued in order.
  async.DrainPending(nullptr, 2, 1.0);
  EXPECT_EQ(inner.stats().classified, 2);
  EXPECT_EQ(async.pending_size(), 4);

  // A duplicate of a still-queued creative coalesces rather than re-queues.
  Bitmap dup = MakeBitmap(4);
  async.OnDecodedFrame(dup.info(), dup, "url");
  EXPECT_EQ(async.pending_size(), 4);
  EXPECT_EQ(async.stats().coalesced, 1);

  faultpoint::DisarmAll();
  async.DrainPending(nullptr, 2, 0.0);  // 0 = unlimited
  EXPECT_EQ(async.pending_size(), 0);
  EXPECT_EQ(inner.stats().classified, 6);
  EXPECT_EQ(async.cache_size(), 6);
}

// ---------------------------------------------------------------------------
// Deadlines + degrade ladder: a slow forward trips the fail-open degrade
// state, which self-heals after recover_after_frames frames.

TEST_F(ServingRobustnessTest, SlowForwardTripsDegradeThenSelfHeals) {
  AdClassifier inner = MakeTestClassifier();
  AsyncAdClassifier async(inner);
  ServingPolicy policy;
  policy.classify_deadline_ms = 0.5;
  policy.degrade_after_misses = 2;
  policy.recover_after_frames = 4;
  async.SetServingPolicy(policy);

  faultpoint::FaultSpec slow;
  slow.delay_ms = 3.0;  // well past the 0.5ms deadline
  faultpoint::Arm(faultpoint::kSlowForward, slow);

  // Two consecutive over-deadline drain batches trip the degrade state.
  int next_id = 0;
  for (int round = 0; round < 2; ++round) {
    ASSERT_FALSE(async.degraded());
    Bitmap image = MakeBitmap(next_id++);
    async.OnDecodedFrame(image.info(), image, "url");
    async.DrainPending();
  }
  EXPECT_TRUE(async.degraded());
  ClassifierStats stats = async.stats();
  EXPECT_EQ(stats.deadline_misses, 2);
  EXPECT_EQ(stats.degrade_transitions, 1);  // odd: currently degraded

  // Degraded: uncached frames are shed (fail-open, nothing queued) but memo
  // hits still serve — the cache needs no inference.
  faultpoint::DisarmAll();
  Bitmap cached = MakeBitmap(0);
  async.OnDecodedFrame(cached.info(), cached, "url");  // memoized decision applies
  EXPECT_EQ(async.stats().cache_hits, 1);
  Bitmap uncached = MakeBitmap(next_id++);
  async.OnDecodedFrame(uncached.info(), uncached, "url");
  EXPECT_EQ(async.pending_size(), 0);
  EXPECT_GE(async.stats().shed, 1);

  // After recover_after_frames frames the state clears and the next frame
  // is admitted again.
  while (async.degraded()) {
    Bitmap image = MakeBitmap(next_id++);
    async.OnDecodedFrame(image.info(), image, "url");
  }
  stats = async.stats();
  EXPECT_EQ(stats.degrade_transitions, 2);  // even: healthy again
  EXPECT_EQ(stats.degraded_frames, 4);
  Bitmap probe = MakeBitmap(next_id++);
  async.OnDecodedFrame(probe.info(), probe, "url");
  EXPECT_GE(async.pending_size(), 1);
  async.DrainPending();
  EXPECT_FALSE(async.degraded());
}

TEST_F(ServingRobustnessTest, SyncClassifyCountsDeadlineMisses) {
  AdClassifier classifier = MakeTestClassifier();
  ServingPolicy policy;
  policy.classify_deadline_ms = 0.25;
  classifier.SetServingPolicy(policy);
  faultpoint::FaultSpec slow;
  slow.delay_ms = 2.0;
  slow.count = 1;
  faultpoint::Arm(faultpoint::kSlowForward, slow);

  Bitmap image = MakeBitmap(1);
  const ClassifyResult result = classifier.Classify(image);
  // Soft deadline: the result still comes back, the miss is counted.
  EXPECT_TRUE(std::isfinite(result.ad_probability));
  EXPECT_EQ(classifier.stats().deadline_misses, 1);
  EXPECT_EQ(classifier.stats().classified, 1);
}

// ---------------------------------------------------------------------------
// Allocation failure fails OPEN: a forward that cannot grow its scratch
// arena returns not-ad / probability 0 instead of crashing, and the next
// classification recovers.

TEST_F(ServingRobustnessTest, ArenaAllocFailureFailsOpen) {
  AdClassifier classifier = MakeTestClassifier();
  Bitmap image = MakeBitmap(7);
  // Warm up: packs weights and sizes the single-image arena.
  const ClassifyResult baseline = classifier.Classify(image);

  // A larger batch needs a bigger arena -> hits the growth path, where the
  // armed fault forces the allocation to fail.
  std::vector<Bitmap> batch_images;
  std::vector<const Bitmap*> batch;
  for (int i = 0; i < 8; ++i) {
    batch_images.push_back(MakeBitmap(i));
  }
  for (const Bitmap& b : batch_images) {
    batch.push_back(&b);
  }
  faultpoint::FaultSpec fail_once;
  fail_once.count = 1;
  faultpoint::Arm(faultpoint::kArenaAllocFail, fail_once);
  const std::vector<ClassifyResult> degraded = classifier.ClassifyBatch(batch);
  ASSERT_EQ(degraded.size(), batch.size());
  if (faultpoint::FireCount(faultpoint::kArenaAllocFail) > 0) {
    for (const ClassifyResult& r : degraded) {
      EXPECT_FALSE(r.is_ad);  // fail open, never fail closed
      EXPECT_EQ(r.ad_probability, 0.0f);
    }
    EXPECT_EQ(classifier.stats().alloc_failovers, static_cast<int64_t>(batch.size()));
  }
  faultpoint::DisarmAll();

  // Recovery: the same batch classifies normally afterwards.
  const std::vector<ClassifyResult> recovered = classifier.ClassifyBatch(batch);
  for (const ClassifyResult& r : recovered) {
    EXPECT_TRUE(std::isfinite(r.ad_probability));
  }
  const ClassifyResult again = classifier.Classify(image);
  EXPECT_NEAR(again.ad_probability, baseline.ad_probability, 1e-6f);
}

// ---------------------------------------------------------------------------
// Graceful reload degradation: a corrupt artifact never displaces the
// serving network, under retry and under concurrent classification.

TEST_F(ServingRobustnessTest, CorruptReloadKeepsPreviousWeights) {
  PercivalNetConfig config = TestProfile();
  Network donor = BuildPercivalNet(config);
  const std::string path = ::testing::TempDir() + "/robustness_reload.pcvw";
  ASSERT_TRUE(SaveWeightsToFile(donor, path));

  AdClassifier classifier(BuildPercivalNet(config), config);
  Bitmap image = MakeBitmap(3);
  ASSERT_TRUE(classifier.LoadWeights(path));
  const float good = classifier.Classify(image).ad_probability;

  // Every read of the artifact is corrupted (truncated): the load fails and
  // the previous good network keeps serving, bit-identically.
  faultpoint::Arm(faultpoint::kArtifactCorrupt, faultpoint::FaultSpec{});
  EXPECT_FALSE(classifier.LoadWeights(path));
  EXPECT_EQ(classifier.Classify(image).ad_probability, good);
  faultpoint::DisarmAll();
}

TEST_F(ServingRobustnessTest, LoadWeightsWithRetryBacksOffThenSucceeds) {
  PercivalNetConfig config = TestProfile();
  Network donor = BuildPercivalNet(config);
  const std::string path = ::testing::TempDir() + "/robustness_retry.pcvw";
  ASSERT_TRUE(SaveWeightsToFile(donor, path));

  AdClassifier classifier(BuildPercivalNet(config), config);
  ServingPolicy policy;
  policy.reload_max_retries = 3;
  policy.reload_backoff_ms = 0.1;
  classifier.SetServingPolicy(policy);

  // First two reads corrupt, third clean: the retry loop lands the load.
  faultpoint::FaultSpec twice;
  twice.count = 2;
  faultpoint::Arm(faultpoint::kArtifactCorrupt, twice);
  EXPECT_TRUE(classifier.LoadWeightsWithRetry(path));
  EXPECT_EQ(classifier.stats().reload_retries, 2);

  // Permanently corrupt: retries exhaust, the previous network keeps
  // serving, and the call reports failure instead of half-loading.
  Bitmap image = MakeBitmap(5);
  const float before = classifier.Classify(image).ad_probability;
  faultpoint::Arm(faultpoint::kArtifactCorrupt, faultpoint::FaultSpec{});
  EXPECT_FALSE(classifier.LoadWeightsWithRetry(path));
  EXPECT_EQ(classifier.stats().reload_retries, 5);  // 2 + 3 more
  EXPECT_EQ(classifier.Classify(image).ad_probability, before);
}

// Concurrency: one thread hammers Classify while another flips between
// good loads and corrupt loads. Every observed probability must equal one
// of the two committed networks' outputs — a third value would mean a
// half-loaded network served a forward pass.
TEST_F(ServingRobustnessTest, ConcurrentReloadNeverServesHalfLoadedNetwork) {
  PercivalNetConfig config = TestProfile();
  Network donor = BuildPercivalNet(config);
  const std::string dir = ::testing::TempDir();
  const std::string v1_path = dir + "/robustness_conc_v1.pcvw";
  const std::string v2_path = dir + "/robustness_conc_v2.int8.pcvw";
  ASSERT_TRUE(SaveWeightsToFile(donor, v1_path));
  ASSERT_TRUE(SaveWeightsToFileInt8(donor, v2_path));

  AdClassifier classifier(BuildPercivalNet(config), config);
  Bitmap image = MakeBitmap(9);
  ASSERT_TRUE(classifier.LoadWeights(v1_path));
  const float p_v1 = classifier.Classify(image).ad_probability;
  ASSERT_TRUE(classifier.LoadWeights(v2_path));
  const float p_v2 = classifier.Classify(image).ad_probability;
  ASSERT_TRUE(classifier.LoadWeights(v1_path));

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread hammer([&] {
    Bitmap local = MakeBitmap(9);
    while (!stop.load()) {
      const float p = classifier.Classify(local).ad_probability;
      if (p != p_v1 && p != p_v2) {
        bad.fetch_add(1);
      }
    }
  });

  for (int round = 0; round < 12; ++round) {
    const std::string& path = (round % 2 == 0) ? v2_path : v1_path;
    if (round % 3 == 2) {
      // Corrupt read: the load must fail atomically mid-hammer.
      faultpoint::FaultSpec once;
      once.count = 1;
      faultpoint::Arm(faultpoint::kArtifactCorrupt, once);
      EXPECT_FALSE(classifier.LoadWeights(path));
    } else {
      EXPECT_TRUE(classifier.LoadWeights(path));
    }
  }
  stop.store(true);
  hammer.join();
  EXPECT_EQ(bad.load(), 0) << "a Classify observed a half-loaded network";
}

}  // namespace
}  // namespace percival
