// Training pipeline tests: the trainer converges on separable synthetic ad
// data, transfer init copies the right blocks, and phased training improves
// phase over phase.
#include <gtest/gtest.h>

#include "src/train/phases.h"
#include "src/train/trainer.h"
#include "src/train/transfer.h"
#include "src/webgen/adgen.h"
#include "src/webgen/contentgen.h"

namespace percival {
namespace {

// Small, cleanly separable ad/non-ad dataset at the test profile's scale.
Dataset TinyAdDataset(int per_class, uint64_t seed) {
  Rng rng(seed);
  Dataset dataset;
  for (int i = 0; i < per_class; ++i) {
    Rng ad_rng = rng.Fork();
    AdImageOptions ad_options;
    ad_options.cue_dropout = 0.0;  // cue-rich for fast convergence
    LabeledImage ad;
    ad.image = GenerateAdImage(ad_rng, ad_options);
    ad.is_ad = true;
    dataset.Add(std::move(ad));

    Rng content_rng = rng.Fork();
    ContentImageOptions content_options;
    content_options.kind = SampleContentKind(content_rng, 0.0);
    LabeledImage content;
    content.image = GenerateContentImage(content_rng, content_options);
    content.is_ad = false;
    dataset.Add(std::move(content));
  }
  return dataset;
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  PercivalNetConfig profile = TestProfile();
  Network net = BuildPercivalNet(profile);
  Dataset dataset = TinyAdDataset(24, 3);
  TrainConfig config;
  config.epochs = 4;
  config.batch_size = 8;
  config.sgd.learning_rate = 0.01f;
  std::vector<EpochStats> history = TrainClassifier(net, profile, dataset, config);
  ASSERT_EQ(history.size(), 4u);
  EXPECT_LT(history.back().loss, history.front().loss);
}

TEST(TrainerTest, LearnsSeparableAdData) {
  PercivalNetConfig profile = TestProfile();
  Network net = BuildPercivalNet(profile);
  Dataset train_set = TinyAdDataset(40, 5);
  Dataset test_set = TinyAdDataset(20, 6);
  TrainConfig config;
  config.epochs = 12;
  config.batch_size = 8;
  config.sgd.learning_rate = 0.01f;
  config.sgd.lr_decay_every_epochs = 8;
  config.sgd.lr_decay_factor = 0.3f;
  TrainClassifier(net, profile, train_set, config);
  ConfusionMatrix matrix = EvaluateClassifier(net, profile, test_set);
  EXPECT_GT(matrix.Accuracy(), 0.8) << matrix.Summary();
}

TEST(TrainerTest, EvaluateCountsEveryExample) {
  PercivalNetConfig profile = TestProfile();
  Network net = BuildPercivalNet(profile);
  Dataset dataset = TinyAdDataset(10, 7);
  ConfusionMatrix matrix = EvaluateClassifier(net, profile, dataset);
  EXPECT_EQ(matrix.Total(), dataset.size());
}

TEST(MetricsTest, ConfusionMatrixFormulas) {
  ConfusionMatrix m;
  m.tp = 8;
  m.fp = 2;
  m.tn = 9;
  m.fn = 1;
  EXPECT_DOUBLE_EQ(m.Accuracy(), 17.0 / 20.0);
  EXPECT_DOUBLE_EQ(m.Precision(), 8.0 / 10.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 8.0 / 9.0);
  EXPECT_GT(m.F1(), 0.8);
}

TEST(MetricsTest, EmptyMatrixSafe) {
  ConfusionMatrix m;
  EXPECT_EQ(m.Accuracy(), 0.0);
  EXPECT_EQ(m.Precision(), 0.0);
  EXPECT_EQ(m.Recall(), 0.0);
  EXPECT_EQ(m.F1(), 0.0);
}

TEST(MetricsTest, CdfQuantiles) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.Mean(), 3.0);
}

TEST(MetricsTest, TableRendersAllCells) {
  TextTable table({"a", "bb"});
  table.AddRow({"1", "2"});
  const std::string rendered = table.Render();
  EXPECT_NE(rendered.find("a"), std::string::npos);
  EXPECT_NE(rendered.find("bb"), std::string::npos);
  EXPECT_NE(rendered.find("1"), std::string::npos);
}

TEST(TransferTest, PretextDatasetBalancedLabels) {
  PretrainConfig config;
  config.examples = 100;
  Dataset dataset = BuildPretextDataset(config);
  EXPECT_EQ(dataset.size(), 100);
  EXPECT_GT(dataset.ad_count(), 25);
  EXPECT_LT(dataset.ad_count(), 75);
}

TEST(TransferTest, InitCopiesEarlyBlocksOnly) {
  PercivalNetConfig profile = TestProfile();
  Network source = BuildPercivalNet(profile);
  source.Parameters()[0]->value.Fill(3.25f);   // conv1 weights
  source.Parameters()[2]->value.Fill(1.5f);    // fire1 squeeze weights
  Network target = BuildPercivalNet(profile);
  const float untouched_before =
      target.Parameters()[target.Parameters().size() - 2]->value[0];
  // Transfer conv1 + fire1..fire4 (the paper's initialization, §4.3).
  InitFromPretrained(target, source, 5);
  EXPECT_EQ(target.Parameters()[0]->value[0], 3.25f);
  EXPECT_EQ(target.Parameters()[2]->value[0], 1.5f);
  // The head stays at its own initialization.
  EXPECT_EQ(target.Parameters()[target.Parameters().size() - 2]->value[0], untouched_before);
}

TEST(TransferTest, PretrainingImprovesEarlyAccuracy) {
  PercivalNetConfig profile = TestProfile();
  PretrainConfig pretrain_config;
  pretrain_config.examples = 80;
  pretrain_config.epochs = 2;
  Network pretrained = PretrainBackbone(profile, pretrain_config);

  Dataset train_set = TinyAdDataset(24, 8);
  Dataset test_set = TinyAdDataset(16, 9);
  TrainConfig config;
  config.epochs = 2;  // deliberately short: transfer should help here
  config.batch_size = 8;
  config.sgd.learning_rate = 0.01f;

  Network cold = BuildPercivalNet(profile);
  TrainClassifier(cold, profile, train_set, config);
  const double cold_f1 = EvaluateClassifier(cold, profile, test_set).F1();

  Network warm = BuildPercivalNet(profile);
  InitFromPretrained(warm, pretrained, 5);
  TrainClassifier(warm, profile, train_set, config);
  const double warm_f1 = EvaluateClassifier(warm, profile, test_set).F1();

  // Not strictly guaranteed per-seed, but with these seeds the warm start
  // must not be materially worse.
  EXPECT_GE(warm_f1, cold_f1 - 0.15);
}

TEST(PhasedTrainingTest, AccuracyImprovesAcrossPhases) {
  AdEcosystemConfig ecosystem;
  ecosystem.network_count = 6;
  ecosystem.listed_fraction = 1.0;
  std::vector<AdNetwork> networks = BuildAdNetworks(ecosystem);
  SiteGenConfig site_config;
  site_config.seed = 55;
  SiteGenerator generator(site_config, networks);
  FilterEngine easylist;
  easylist.AddList(BuildSyntheticEasyList(networks));

  PhasedTrainingConfig config;
  config.phases = 3;
  config.sites_per_phase = 5;
  config.pages_per_site = 1;
  config.profile = TestProfile();
  config.train.epochs = 8;
  config.train.batch_size = 8;
  config.train.sgd.learning_rate = 0.01f;
  config.train.sgd.lr_decay_every_epochs = 8;
  config.train.sgd.lr_decay_factor = 0.3f;

  Dataset holdout = TinyAdDataset(20, 44);
  PhasedTrainingResult result = RunPhasedTraining(generator, easylist, holdout, config);
  ASSERT_EQ(result.phases.size(), 3u);
  // Dataset grows as phases crawl new pages.
  EXPECT_GT(result.phases.back().dataset_size, result.phases.front().dataset_size);
  // Accuracy at the end is at least what phase 0 achieved (training on
  // more data must not regress materially; self-labelled phases carry
  // some variance).
  EXPECT_GE(result.phases.back().holdout_accuracy,
            result.phases.front().holdout_accuracy - 0.15);
}

}  // namespace
}  // namespace percival
