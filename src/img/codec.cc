#include "src/img/codec.h"

#include <cstring>

#include "src/base/logging.h"

namespace percival {

namespace {

void Put16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xFF));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void Put32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 24) & 0xFF));
}

uint32_t Get32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

const char* ImageFormatName(ImageFormat format) {
  switch (format) {
    case ImageFormat::kBmp:
      return "bmp";
    case ImageFormat::kPpm:
      return "ppm";
    case ImageFormat::kPif:
      return "pif";
    case ImageFormat::kRle:
      return "rle";
    case ImageFormat::kAnim:
      return "anim";
    case ImageFormat::kUnknown:
      return "unknown";
  }
  return "unknown";
}

// --- BMP: 32-bit uncompressed, BITMAPINFOHEADER, top-down rows -------------

std::vector<uint8_t> EncodeBmp(const Bitmap& bitmap) {
  const uint32_t pixel_bytes = static_cast<uint32_t>(bitmap.byte_size());
  std::vector<uint8_t> out;
  out.reserve(54 + pixel_bytes);
  // File header (14 bytes).
  out.push_back('B');
  out.push_back('M');
  Put32(out, 54 + pixel_bytes);
  Put32(out, 0);
  Put32(out, 54);
  // Info header (40 bytes). Negative height => top-down row order.
  Put32(out, 40);
  Put32(out, static_cast<uint32_t>(bitmap.width()));
  Put32(out, static_cast<uint32_t>(-bitmap.height()));
  Put16(out, 1);   // planes
  Put16(out, 32);  // bpp
  Put32(out, 0);   // BI_RGB
  Put32(out, pixel_bytes);
  Put32(out, 2835);
  Put32(out, 2835);
  Put32(out, 0);
  Put32(out, 0);
  // Pixel data: BGRA order.
  const uint8_t* src = bitmap.data();
  for (size_t i = 0; i < bitmap.byte_size(); i += 4) {
    out.push_back(src[i + 2]);
    out.push_back(src[i + 1]);
    out.push_back(src[i]);
    out.push_back(src[i + 3]);
  }
  return out;
}

std::optional<Bitmap> DecodeBmp(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 54 || bytes[0] != 'B' || bytes[1] != 'M') {
    return std::nullopt;
  }
  const uint32_t data_offset = Get32(&bytes[10]);
  const int32_t width = static_cast<int32_t>(Get32(&bytes[18]));
  const int32_t raw_height = static_cast<int32_t>(Get32(&bytes[22]));
  const uint16_t bpp = static_cast<uint16_t>(bytes[28] | (bytes[29] << 8));
  const uint32_t compression = Get32(&bytes[30]);
  if (width <= 0 || raw_height == 0 || bpp != 32 || compression != 0) {
    return std::nullopt;
  }
  const bool top_down = raw_height < 0;
  const int height = top_down ? -raw_height : raw_height;
  const size_t needed = static_cast<size_t>(width) * height * 4;
  if (bytes.size() < data_offset + needed) {
    return std::nullopt;
  }
  Bitmap bitmap(width, height);
  for (int y = 0; y < height; ++y) {
    const int src_row = top_down ? y : (height - 1 - y);
    const uint8_t* row = bytes.data() + data_offset + static_cast<size_t>(src_row) * width * 4;
    for (int x = 0; x < width; ++x) {
      const uint8_t* p = row + static_cast<size_t>(x) * 4;
      bitmap.SetPixel(x, y, Color{p[2], p[1], p[0], p[3]});
    }
  }
  return bitmap;
}

// --- PPM: binary P6, RGB only ----------------------------------------------

std::vector<uint8_t> EncodePpm(const Bitmap& bitmap) {
  std::string header = "P6\n" + std::to_string(bitmap.width()) + " " +
                       std::to_string(bitmap.height()) + "\n255\n";
  std::vector<uint8_t> out(header.begin(), header.end());
  const uint8_t* src = bitmap.data();
  for (size_t i = 0; i < bitmap.byte_size(); i += 4) {
    out.push_back(src[i]);
    out.push_back(src[i + 1]);
    out.push_back(src[i + 2]);
  }
  return out;
}

std::optional<Bitmap> DecodePpm(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 2 || bytes[0] != 'P' || bytes[1] != '6') {
    return std::nullopt;
  }
  size_t pos = 2;
  auto read_int = [&](int* value) -> bool {
    while (pos < bytes.size() && std::isspace(bytes[pos])) {
      ++pos;
    }
    if (pos >= bytes.size() || !std::isdigit(bytes[pos])) {
      return false;
    }
    long parsed = 0;
    while (pos < bytes.size() && std::isdigit(bytes[pos])) {
      parsed = parsed * 10 + (bytes[pos] - '0');
      if (parsed > 1 << 20) {
        return false;
      }
      ++pos;
    }
    *value = static_cast<int>(parsed);
    return true;
  };
  int width = 0;
  int height = 0;
  int max_value = 0;
  if (!read_int(&width) || !read_int(&height) || !read_int(&max_value) || max_value != 255) {
    return std::nullopt;
  }
  ++pos;  // single whitespace after maxval
  const size_t needed = static_cast<size_t>(width) * height * 3;
  if (width <= 0 || height <= 0 || bytes.size() < pos + needed) {
    return std::nullopt;
  }
  Bitmap bitmap(width, height);
  const uint8_t* src = bytes.data() + pos;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const uint8_t* p = src + (static_cast<size_t>(y) * width + x) * 3;
      bitmap.SetPixel(x, y, Color{p[0], p[1], p[2], 255});
    }
  }
  return bitmap;
}

// --- PIF: QOI-style opcode stream -------------------------------------------
//
// Opcodes (first byte):
//   0xFE            RGB   followed by r,g,b (alpha carried over)
//   0xFF            RGBA  followed by r,g,b,a
//   00xxxxxx        INDEX into the 64-entry seen-pixel table
//   01rrggbb        DIFF  channel deltas in [-2, 1] vs previous pixel
//   10gggggg        LUMA  followed by a byte packing dr-dg / db-dg
//   11xxxxxx        RUN   of 1..62 repeats of the previous pixel

namespace {

constexpr uint8_t kPifMagic[4] = {'P', 'I', 'F', '1'};

int PifIndex(Color c) { return (c.r * 3 + c.g * 5 + c.b * 7 + c.a * 11) % 64; }

}  // namespace

std::vector<uint8_t> EncodePif(const Bitmap& bitmap) {
  std::vector<uint8_t> out;
  out.insert(out.end(), kPifMagic, kPifMagic + 4);
  Put32(out, static_cast<uint32_t>(bitmap.width()));
  Put32(out, static_cast<uint32_t>(bitmap.height()));

  Color table[64] = {};
  Color prev{0, 0, 0, 255};
  int run = 0;
  const int64_t total = static_cast<int64_t>(bitmap.width()) * bitmap.height();
  const uint8_t* src = bitmap.data();
  for (int64_t i = 0; i < total; ++i) {
    Color cur{src[i * 4], src[i * 4 + 1], src[i * 4 + 2], src[i * 4 + 3]};
    if (cur == prev) {
      ++run;
      if (run == 62 || i == total - 1) {
        out.push_back(static_cast<uint8_t>(0xC0 | (run - 1)));
        run = 0;
      }
      continue;
    }
    if (run > 0) {
      out.push_back(static_cast<uint8_t>(0xC0 | (run - 1)));
      run = 0;
    }
    const int index = PifIndex(cur);
    if (table[index] == cur) {
      out.push_back(static_cast<uint8_t>(index));
    } else {
      table[index] = cur;
      if (cur.a == prev.a) {
        const int dr = cur.r - prev.r;
        const int dg = cur.g - prev.g;
        const int db = cur.b - prev.b;
        const int dr_dg = dr - dg;
        const int db_dg = db - dg;
        if (dr >= -2 && dr <= 1 && dg >= -2 && dg <= 1 && db >= -2 && db <= 1) {
          out.push_back(static_cast<uint8_t>(0x40 | ((dr + 2) << 4) | ((dg + 2) << 2) | (db + 2)));
        } else if (dg >= -32 && dg <= 31 && dr_dg >= -8 && dr_dg <= 7 && db_dg >= -8 &&
                   db_dg <= 7) {
          out.push_back(static_cast<uint8_t>(0x80 | (dg + 32)));
          out.push_back(static_cast<uint8_t>(((dr_dg + 8) << 4) | (db_dg + 8)));
        } else {
          out.push_back(0xFE);
          out.push_back(cur.r);
          out.push_back(cur.g);
          out.push_back(cur.b);
        }
      } else {
        out.push_back(0xFF);
        out.push_back(cur.r);
        out.push_back(cur.g);
        out.push_back(cur.b);
        out.push_back(cur.a);
      }
    }
    prev = cur;
  }
  return out;
}

std::optional<Bitmap> DecodePif(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 12 || std::memcmp(bytes.data(), kPifMagic, 4) != 0) {
    return std::nullopt;
  }
  const uint32_t width = Get32(&bytes[4]);
  const uint32_t height = Get32(&bytes[8]);
  if (width == 0 || height == 0 || width > (1u << 20) || height > (1u << 20)) {
    return std::nullopt;
  }
  Bitmap bitmap(static_cast<int>(width), static_cast<int>(height));
  uint8_t* dst = bitmap.data();
  const int64_t total = static_cast<int64_t>(width) * height;

  Color table[64] = {};
  Color cur{0, 0, 0, 255};
  size_t pos = 12;
  int64_t written = 0;
  while (written < total) {
    if (pos >= bytes.size()) {
      return std::nullopt;
    }
    const uint8_t op = bytes[pos++];
    if (op == 0xFE) {
      if (pos + 3 > bytes.size()) {
        return std::nullopt;
      }
      cur.r = bytes[pos];
      cur.g = bytes[pos + 1];
      cur.b = bytes[pos + 2];
      pos += 3;
    } else if (op == 0xFF) {
      if (pos + 4 > bytes.size()) {
        return std::nullopt;
      }
      cur = Color{bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]};
      pos += 4;
    } else if ((op & 0xC0) == 0x00) {
      cur = table[op & 0x3F];
    } else if ((op & 0xC0) == 0x40) {
      cur.r = static_cast<uint8_t>(cur.r + ((op >> 4) & 0x03) - 2);
      cur.g = static_cast<uint8_t>(cur.g + ((op >> 2) & 0x03) - 2);
      cur.b = static_cast<uint8_t>(cur.b + (op & 0x03) - 2);
    } else if ((op & 0xC0) == 0x80) {
      if (pos >= bytes.size()) {
        return std::nullopt;
      }
      const int dg = (op & 0x3F) - 32;
      const uint8_t packed = bytes[pos++];
      const int dr = dg + ((packed >> 4) & 0x0F) - 8;
      const int db = dg + (packed & 0x0F) - 8;
      cur.r = static_cast<uint8_t>(cur.r + dr);
      cur.g = static_cast<uint8_t>(cur.g + dg);
      cur.b = static_cast<uint8_t>(cur.b + db);
    } else {  // RUN
      int run = (op & 0x3F) + 1;
      while (run-- > 0 && written < total) {
        dst[written * 4] = cur.r;
        dst[written * 4 + 1] = cur.g;
        dst[written * 4 + 2] = cur.b;
        dst[written * 4 + 3] = cur.a;
        ++written;
      }
      continue;
    }
    table[PifIndex(cur)] = cur;
    dst[written * 4] = cur.r;
    dst[written * 4 + 1] = cur.g;
    dst[written * 4 + 2] = cur.b;
    dst[written * 4 + 3] = cur.a;
    ++written;
  }
  return bitmap;
}

// --- RLE: (count, r, g, b, a) runs ------------------------------------------

std::vector<uint8_t> EncodeRle(const Bitmap& bitmap) {
  std::vector<uint8_t> out = {'R', 'L', 'E', '1'};
  Put32(out, static_cast<uint32_t>(bitmap.width()));
  Put32(out, static_cast<uint32_t>(bitmap.height()));
  const uint8_t* src = bitmap.data();
  const int64_t total = static_cast<int64_t>(bitmap.width()) * bitmap.height();
  int64_t i = 0;
  while (i < total) {
    const uint8_t* p = src + i * 4;
    int64_t run = 1;
    while (i + run < total && run < 255 &&
           std::memcmp(p, src + (i + run) * 4, 4) == 0) {
      ++run;
    }
    out.push_back(static_cast<uint8_t>(run));
    out.insert(out.end(), p, p + 4);
    i += run;
  }
  return out;
}

std::optional<Bitmap> DecodeRle(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 12 || std::memcmp(bytes.data(), "RLE1", 4) != 0) {
    return std::nullopt;
  }
  const uint32_t width = Get32(&bytes[4]);
  const uint32_t height = Get32(&bytes[8]);
  if (width == 0 || height == 0 || width > (1u << 20) || height > (1u << 20)) {
    return std::nullopt;
  }
  Bitmap bitmap(static_cast<int>(width), static_cast<int>(height));
  uint8_t* dst = bitmap.data();
  const int64_t total = static_cast<int64_t>(width) * height;
  size_t pos = 12;
  int64_t written = 0;
  while (written < total) {
    if (pos + 5 > bytes.size()) {
      return std::nullopt;
    }
    int run = bytes[pos];
    if (run == 0) {
      return std::nullopt;
    }
    const uint8_t* color = &bytes[pos + 1];
    pos += 5;
    while (run-- > 0) {
      if (written >= total) {
        return std::nullopt;
      }
      std::memcpy(dst + written * 4, color, 4);
      ++written;
    }
  }
  return bitmap;
}

// --- ANIM: frame container ---------------------------------------------------

std::vector<uint8_t> EncodeAnim(const std::vector<Bitmap>& frames) {
  std::vector<uint8_t> out = {'A', 'N', 'I', 'M'};
  Put32(out, static_cast<uint32_t>(frames.size()));
  for (const Bitmap& frame : frames) {
    std::vector<uint8_t> encoded = EncodePif(frame);
    Put32(out, static_cast<uint32_t>(encoded.size()));
    out.insert(out.end(), encoded.begin(), encoded.end());
  }
  return out;
}

std::optional<std::vector<Bitmap>> DecodeAnim(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 8 || std::memcmp(bytes.data(), "ANIM", 4) != 0) {
    return std::nullopt;
  }
  const uint32_t count = Get32(&bytes[4]);
  if (count == 0 || count > 4096) {
    return std::nullopt;
  }
  std::vector<Bitmap> frames;
  size_t pos = 8;
  for (uint32_t i = 0; i < count; ++i) {
    if (pos + 4 > bytes.size()) {
      return std::nullopt;
    }
    const uint32_t frame_size = Get32(&bytes[pos]);
    pos += 4;
    if (pos + frame_size > bytes.size()) {
      return std::nullopt;
    }
    std::vector<uint8_t> frame_bytes(bytes.begin() + static_cast<long>(pos),
                                     bytes.begin() + static_cast<long>(pos + frame_size));
    std::optional<Bitmap> frame = DecodePif(frame_bytes);
    if (!frame) {
      return std::nullopt;
    }
    frames.push_back(std::move(*frame));
    pos += frame_size;
  }
  return frames;
}

// --- Registry ----------------------------------------------------------------

ImageFormat SniffFormat(const std::vector<uint8_t>& bytes) {
  if (bytes.size() >= 4) {
    if (std::memcmp(bytes.data(), kPifMagic, 4) == 0) {
      return ImageFormat::kPif;
    }
    if (std::memcmp(bytes.data(), "RLE1", 4) == 0) {
      return ImageFormat::kRle;
    }
    if (std::memcmp(bytes.data(), "ANIM", 4) == 0) {
      return ImageFormat::kAnim;
    }
  }
  if (bytes.size() >= 2) {
    if (bytes[0] == 'B' && bytes[1] == 'M') {
      return ImageFormat::kBmp;
    }
    if (bytes[0] == 'P' && bytes[1] == '6') {
      return ImageFormat::kPpm;
    }
  }
  return ImageFormat::kUnknown;
}

EncodedImage Encode(const Bitmap& bitmap, ImageFormat format) {
  EncodedImage out;
  out.format = format;
  switch (format) {
    case ImageFormat::kBmp:
      out.bytes = EncodeBmp(bitmap);
      break;
    case ImageFormat::kPpm:
      out.bytes = EncodePpm(bitmap);
      break;
    case ImageFormat::kPif:
      out.bytes = EncodePif(bitmap);
      break;
    case ImageFormat::kRle:
      out.bytes = EncodeRle(bitmap);
      break;
    case ImageFormat::kAnim:
      out.bytes = EncodeAnim({bitmap});
      break;
    case ImageFormat::kUnknown:
      PCHECK(false) << "cannot encode unknown format";
  }
  return out;
}

std::optional<std::vector<Bitmap>> DecodeAllFrames(const std::vector<uint8_t>& bytes) {
  switch (SniffFormat(bytes)) {
    case ImageFormat::kBmp: {
      std::optional<Bitmap> bitmap = DecodeBmp(bytes);
      if (!bitmap) {
        return std::nullopt;
      }
      return std::vector<Bitmap>{std::move(*bitmap)};
    }
    case ImageFormat::kPpm: {
      std::optional<Bitmap> bitmap = DecodePpm(bytes);
      if (!bitmap) {
        return std::nullopt;
      }
      return std::vector<Bitmap>{std::move(*bitmap)};
    }
    case ImageFormat::kPif: {
      std::optional<Bitmap> bitmap = DecodePif(bytes);
      if (!bitmap) {
        return std::nullopt;
      }
      return std::vector<Bitmap>{std::move(*bitmap)};
    }
    case ImageFormat::kRle: {
      std::optional<Bitmap> bitmap = DecodeRle(bytes);
      if (!bitmap) {
        return std::nullopt;
      }
      return std::vector<Bitmap>{std::move(*bitmap)};
    }
    case ImageFormat::kAnim:
      return DecodeAnim(bytes);
    case ImageFormat::kUnknown:
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<Bitmap> DecodeFirstFrame(const std::vector<uint8_t>& bytes) {
  std::optional<std::vector<Bitmap>> frames = DecodeAllFrames(bytes);
  if (!frames || frames->empty()) {
    return std::nullopt;
  }
  return std::move((*frames)[0]);
}

}  // namespace percival
