// Bilinear resize and bitmap->tensor conversion.
//
// PERCIVAL "reads the image, scales it to the network's input size, creates a
// tensor, and passes it through the CNN" (§3.3); this file is that step.
#ifndef PERCIVAL_SRC_IMG_RESIZE_H_
#define PERCIVAL_SRC_IMG_RESIZE_H_

#include "src/img/bitmap.h"
#include "src/nn/tensor.h"

namespace percival {

// Bilinear resample to the requested size (both dimensions >= 1).
Bitmap ResizeBilinear(const Bitmap& source, int out_width, int out_height);

// Same resample written into a caller-provided bitmap, which is only
// (re)allocated when its dimensions differ from the target — a caller that
// keeps `out` across calls (AverageHash's thread-local 8x8 scratch) pays
// the allocation exactly once.
void ResizeBilinearInto(const Bitmap& source, int out_width, int out_height, Bitmap* out);

// Converts to a {1, size, size, channels} float tensor in [0, 1], resizing
// bilinearly. `channels` is 3 (RGB) or 4 (RGBA; the paper feeds 224x224x4).
Tensor BitmapToTensor(const Bitmap& source, int size, int channels);

// Same conversion written into a caller-provided buffer of size*size*channels
// floats — lets batched classification fill one sample slot of a stacked
// NHWC tensor without an intermediate allocation and copy.
void BitmapToTensorInto(const Bitmap& source, int size, int channels, float* out);

// Fused resize -> quantize for the int8 deployment path: converts straight
// to uint8 activation codes under value ~= scale * (code - zero_point),
// never materializing the float tensor. Each source byte maps through a
// 256-entry LUT computed with the exact float expression the
// BitmapToTensorInto + QuantizeActivations pair evaluates, so the produced
// codes are bit-identical to the float-then-quantize pipeline under the
// same quantization parameters.
void BitmapToTensorU8Into(const Bitmap& source, int size, int channels, float scale,
                          int32_t zero_point, uint8_t* out);

// Writes a tensor sample's channel-0 plane as an 8-bit grayscale bitmap
// (used to dump Grad-CAM salience maps).
Bitmap TensorPlaneToBitmap(const Tensor& tensor, int n, int channel);

}  // namespace percival

#endif  // PERCIVAL_SRC_IMG_RESIZE_H_
