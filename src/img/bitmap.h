// RGBA8 bitmap — the decoded-pixel representation that flows through the
// rendering pipeline (the analogue of an SkBitmap the paper's hook reads).
#ifndef PERCIVAL_SRC_IMG_BITMAP_H_
#define PERCIVAL_SRC_IMG_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace percival {

struct Color {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;
  uint8_t a = 255;
  bool operator==(const Color& other) const = default;
};

// Image metadata handed to the classifier hook alongside the pixel buffer —
// the analogue of SkImageInfo in the paper's Blink integration (§3.3).
struct ImageInfo {
  int width = 0;
  int height = 0;
  int channels = 4;
  int64_t PixelBytes() const { return static_cast<int64_t>(width) * height * channels; }
};

class Bitmap {
 public:
  Bitmap() = default;
  Bitmap(int width, int height, Color fill = Color{0, 0, 0, 255});

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }
  ImageInfo info() const { return ImageInfo{width_, height_, 4}; }

  // Raw RGBA bytes, row-major, 4 bytes per pixel.
  uint8_t* data() { return pixels_.data(); }
  const uint8_t* data() const { return pixels_.data(); }
  size_t byte_size() const { return pixels_.size(); }

  Color GetPixel(int x, int y) const;
  void SetPixel(int x, int y, Color color);

  // Clears every pixel — this is how PERCIVAL "blocks" an ad frame: the
  // decoded buffer is wiped before rasterization (§3.3).
  void Clear(Color color = Color{255, 255, 255, 0});

  bool operator==(const Bitmap& other) const {
    return width_ == other.width_ && height_ == other.height_ && pixels_ == other.pixels_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> pixels_;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_IMG_BITMAP_H_
