#include "src/img/bitmap.h"

#include "src/base/logging.h"

namespace percival {

Bitmap::Bitmap(int width, int height, Color fill) : width_(width), height_(height) {
  PCHECK_GE(width, 0);
  PCHECK_GE(height, 0);
  pixels_.resize(static_cast<size_t>(width) * height * 4);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      SetPixel(x, y, fill);
    }
  }
}

Color Bitmap::GetPixel(int x, int y) const {
  PCHECK(x >= 0 && x < width_ && y >= 0 && y < height_)
      << "pixel (" << x << "," << y << ") outside " << width_ << "x" << height_;
  const size_t i = (static_cast<size_t>(y) * width_ + x) * 4;
  return Color{pixels_[i], pixels_[i + 1], pixels_[i + 2], pixels_[i + 3]};
}

void Bitmap::SetPixel(int x, int y, Color color) {
  PCHECK(x >= 0 && x < width_ && y >= 0 && y < height_)
      << "pixel (" << x << "," << y << ") outside " << width_ << "x" << height_;
  const size_t i = (static_cast<size_t>(y) * width_ + x) * 4;
  pixels_[i] = color.r;
  pixels_[i + 1] = color.g;
  pixels_[i + 2] = color.b;
  pixels_[i + 3] = color.a;
}

void Bitmap::Clear(Color color) {
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      SetPixel(x, y, color);
    }
  }
}

}  // namespace percival
