// Perceptual (average) hashing for dataset deduplication.
//
// The paper's crawls keep only ~15-20% of collected images after duplicate
// removal (§4.4.2); we implement the same post-processing with an 8x8
// average hash plus a Hamming-distance near-duplicate test.
#ifndef PERCIVAL_SRC_IMG_PHASH_H_
#define PERCIVAL_SRC_IMG_PHASH_H_

#include <cstdint>

#include "src/img/bitmap.h"

namespace percival {

// 64-bit average hash: downscale to 8x8 grayscale, threshold at the mean.
uint64_t AverageHash(const Bitmap& bitmap);

// Number of differing bits between two hashes.
int HammingDistance(uint64_t a, uint64_t b);

}  // namespace percival

#endif  // PERCIVAL_SRC_IMG_PHASH_H_
