#include "src/img/phash.h"

#include <bit>

#include "src/img/resize.h"

namespace percival {

uint64_t AverageHash(const Bitmap& bitmap) {
  if (bitmap.empty()) {
    return 0;
  }
  // Thread-local 8x8 scratch (the classifier's u8 preprocessing buffer uses
  // the same pattern): dataset dedup sweeps and the serving engine's L2
  // probe hash every incoming image, and a fresh 256-byte Bitmap per call
  // was the only allocation on that path.
  thread_local Bitmap small;
  ResizeBilinearInto(bitmap, 8, 8, &small);
  int gray[64];
  int total = 0;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const Color c = small.GetPixel(x, y);
      gray[y * 8 + x] = (static_cast<int>(c.r) * 299 + c.g * 587 + c.b * 114) / 1000;
      total += gray[y * 8 + x];
    }
  }
  const int mean = total / 64;
  uint64_t hash = 0;
  for (int i = 0; i < 64; ++i) {
    if (gray[i] > mean) {
      hash |= (1ULL << i);
    }
  }
  return hash;
}

int HammingDistance(uint64_t a, uint64_t b) { return std::popcount(a ^ b); }

}  // namespace percival
