#include "src/img/resize.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"

namespace percival {

Bitmap ResizeBilinear(const Bitmap& source, int out_width, int out_height) {
  Bitmap out;
  ResizeBilinearInto(source, out_width, out_height, &out);
  return out;
}

void ResizeBilinearInto(const Bitmap& source, int out_width, int out_height, Bitmap* out_ptr) {
  PCHECK_GE(out_width, 1);
  PCHECK_GE(out_height, 1);
  PCHECK(!source.empty());
  PCHECK(out_ptr != nullptr && out_ptr != &source);
  if (out_ptr->width() != out_width || out_ptr->height() != out_height) {
    *out_ptr = Bitmap(out_width, out_height);
  }
  Bitmap& out = *out_ptr;
  const float x_scale = static_cast<float>(source.width()) / static_cast<float>(out_width);
  const float y_scale = static_cast<float>(source.height()) / static_cast<float>(out_height);
  for (int y = 0; y < out_height; ++y) {
    const float sy = (static_cast<float>(y) + 0.5f) * y_scale - 0.5f;
    const int y0 = std::clamp(static_cast<int>(std::floor(sy)), 0, source.height() - 1);
    const int y1 = std::min(y0 + 1, source.height() - 1);
    const float fy = std::clamp(sy - static_cast<float>(y0), 0.0f, 1.0f);
    for (int x = 0; x < out_width; ++x) {
      const float sx = (static_cast<float>(x) + 0.5f) * x_scale - 0.5f;
      const int x0 = std::clamp(static_cast<int>(std::floor(sx)), 0, source.width() - 1);
      const int x1 = std::min(x0 + 1, source.width() - 1);
      const float fx = std::clamp(sx - static_cast<float>(x0), 0.0f, 1.0f);

      const Color c00 = source.GetPixel(x0, y0);
      const Color c10 = source.GetPixel(x1, y0);
      const Color c01 = source.GetPixel(x0, y1);
      const Color c11 = source.GetPixel(x1, y1);
      auto lerp = [&](uint8_t a, uint8_t b, uint8_t c, uint8_t d) -> uint8_t {
        const float top = static_cast<float>(a) + fx * (static_cast<float>(b) - a);
        const float bottom = static_cast<float>(c) + fx * (static_cast<float>(d) - c);
        return static_cast<uint8_t>(std::lround(top + fy * (bottom - top)));
      };
      out.SetPixel(x, y, Color{lerp(c00.r, c10.r, c01.r, c11.r), lerp(c00.g, c10.g, c01.g, c11.g),
                               lerp(c00.b, c10.b, c01.b, c11.b),
                               lerp(c00.a, c10.a, c01.a, c11.a)});
    }
  }
}

Tensor BitmapToTensor(const Bitmap& source, int size, int channels) {
  Tensor tensor(1, size, size, channels);
  BitmapToTensorInto(source, size, channels, tensor.data());
  return tensor;
}

void BitmapToTensorInto(const Bitmap& source, int size, int channels, float* out) {
  PCHECK(channels == 3 || channels == 4);
  Bitmap scaled =
      (source.width() == size && source.height() == size) ? source : ResizeBilinear(source, size, size);
  const uint8_t* src = scaled.data();
  const int64_t pixels = static_cast<int64_t>(size) * size;
  for (int64_t p = 0; p < pixels; ++p) {
    for (int c = 0; c < channels; ++c) {
      out[p * channels + c] = static_cast<float>(src[p * 4 + c]) / 255.0f;
    }
  }
}

void BitmapToTensorU8Into(const Bitmap& source, int size, int channels, float scale,
                          int32_t zero_point, uint8_t* out) {
  PCHECK(channels == 3 || channels == 4);
  PCHECK_GT(scale, 0.0f);
  // 256 source bytes -> 256 possible normalized floats -> 256 codes. The
  // LUT body must stay the exact expression QuantizeActivations applies to
  // BitmapToTensorInto's output (p / 255, scaled, nearbyint, clamp): that
  // identity is what makes u8-direct preprocessing bit-identical to the
  // float staging pipeline, and it is test-asserted.
  uint8_t lut[256];
  const float inv_scale = 1.0f / scale;
  for (int p = 0; p < 256; ++p) {
    const float v = static_cast<float>(p) / 255.0f;
    const int32_t q = zero_point + static_cast<int32_t>(std::nearbyint(v * inv_scale));
    lut[p] = static_cast<uint8_t>(std::min(255, std::max(0, q)));
  }
  // Borrow the source when it is already at target size — this is the
  // deployment hot path, and copying the bitmap just to read it would put
  // a per-call allocation right back where the float staging tensor was.
  Bitmap resized;
  const Bitmap* scaled = &source;
  if (source.width() != size || source.height() != size) {
    resized = ResizeBilinear(source, size, size);
    scaled = &resized;
  }
  const uint8_t* src = scaled->data();
  const int64_t pixels = static_cast<int64_t>(size) * size;
  for (int64_t p = 0; p < pixels; ++p) {
    for (int c = 0; c < channels; ++c) {
      out[p * channels + c] = lut[src[p * 4 + c]];
    }
  }
}

Bitmap TensorPlaneToBitmap(const Tensor& tensor, int n, int channel) {
  const TensorShape& s = tensor.shape();
  PCHECK_LT(n, s.n);
  PCHECK_LT(channel, s.c);
  float lo = 1e30f;
  float hi = -1e30f;
  for (int y = 0; y < s.h; ++y) {
    for (int x = 0; x < s.w; ++x) {
      const float v = tensor.at(n, y, x, channel);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const float range = (hi - lo) > 1e-12f ? (hi - lo) : 1.0f;
  Bitmap out(s.w, s.h);
  for (int y = 0; y < s.h; ++y) {
    for (int x = 0; x < s.w; ++x) {
      const float v = (tensor.at(n, y, x, channel) - lo) / range;
      const auto g = static_cast<uint8_t>(std::lround(v * 255.0f));
      out.SetPixel(x, y, Color{g, g, g, 255});
    }
  }
  return out;
}

}  // namespace percival
