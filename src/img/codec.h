// Image codec registry.
//
// The rendering pipeline stores *encoded* bytes and decodes them lazily in
// the raster phase (Chromium's deferred image decoding, §3.3). The registry
// plays the role of Blink's image-decoder selection: the format is sniffed
// from magic bytes and dispatched to the right decoder.
//
// Formats (all implemented from scratch in this repo):
//   BMP  — uncompressed 32-bit BI_RGB windows bitmap
//   PPM  — binary P6 (alpha dropped on encode, restored opaque on decode)
//   PIF  — "Percival Image Format", a QOI-style byte-stream codec
//   RLE  — per-pixel run-length encoding
//   ANIM — multi-frame container holding PIF frames (the GIF stand-in)
#ifndef PERCIVAL_SRC_IMG_CODEC_H_
#define PERCIVAL_SRC_IMG_CODEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/img/bitmap.h"

namespace percival {

enum class ImageFormat {
  kUnknown,
  kBmp,
  kPpm,
  kPif,
  kRle,
  kAnim,
};

const char* ImageFormatName(ImageFormat format);

// Encoded image bytes plus the format they claim to be.
struct EncodedImage {
  ImageFormat format = ImageFormat::kUnknown;
  std::vector<uint8_t> bytes;
};

// --- Single-format entry points -------------------------------------------

std::vector<uint8_t> EncodeBmp(const Bitmap& bitmap);
std::optional<Bitmap> DecodeBmp(const std::vector<uint8_t>& bytes);

std::vector<uint8_t> EncodePpm(const Bitmap& bitmap);
std::optional<Bitmap> DecodePpm(const std::vector<uint8_t>& bytes);

std::vector<uint8_t> EncodePif(const Bitmap& bitmap);
std::optional<Bitmap> DecodePif(const std::vector<uint8_t>& bytes);

std::vector<uint8_t> EncodeRle(const Bitmap& bitmap);
std::optional<Bitmap> DecodeRle(const std::vector<uint8_t>& bytes);

std::vector<uint8_t> EncodeAnim(const std::vector<Bitmap>& frames);
std::optional<std::vector<Bitmap>> DecodeAnim(const std::vector<uint8_t>& bytes);

// --- Registry --------------------------------------------------------------

// Determines the format from leading magic bytes.
ImageFormat SniffFormat(const std::vector<uint8_t>& bytes);

// Encodes `bitmap` in the requested still-image format.
EncodedImage Encode(const Bitmap& bitmap, ImageFormat format);

// Decodes any registered format; animations yield their frame sequence,
// still images a single frame. Returns std::nullopt on malformed input.
std::optional<std::vector<Bitmap>> DecodeAllFrames(const std::vector<uint8_t>& bytes);

// Decodes the first (or only) frame.
std::optional<Bitmap> DecodeFirstFrame(const std::vector<uint8_t>& bytes);

}  // namespace percival

#endif  // PERCIVAL_SRC_IMG_CODEC_H_
