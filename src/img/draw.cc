#include "src/img/draw.h"

#include <algorithm>
#include <cmath>

namespace percival {

namespace {

Rect ClipToBitmap(const Rect& rect, const Bitmap& bitmap) {
  const int x0 = std::max(rect.x, 0);
  const int y0 = std::max(rect.y, 0);
  const int x1 = std::min(rect.Right(), bitmap.width());
  const int y1 = std::min(rect.Bottom(), bitmap.height());
  return Rect{x0, y0, std::max(0, x1 - x0), std::max(0, y1 - y0)};
}

uint8_t ClampByte(int value) { return static_cast<uint8_t>(std::clamp(value, 0, 255)); }

Color LerpColor(Color a, Color b, float t) {
  auto mix = [t](uint8_t x, uint8_t y) {
    return ClampByte(static_cast<int>(std::lround(x + t * (static_cast<int>(y) - x))));
  };
  return Color{mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b), mix(a.a, b.a)};
}

}  // namespace

void FillRect(Bitmap& bitmap, const Rect& rect, Color color) {
  const Rect clipped = ClipToBitmap(rect, bitmap);
  for (int y = clipped.y; y < clipped.Bottom(); ++y) {
    for (int x = clipped.x; x < clipped.Right(); ++x) {
      bitmap.SetPixel(x, y, color);
    }
  }
}

void DrawRectOutline(Bitmap& bitmap, const Rect& rect, Color color, int thickness) {
  FillRect(bitmap, Rect{rect.x, rect.y, rect.w, thickness}, color);
  FillRect(bitmap, Rect{rect.x, rect.Bottom() - thickness, rect.w, thickness}, color);
  FillRect(bitmap, Rect{rect.x, rect.y, thickness, rect.h}, color);
  FillRect(bitmap, Rect{rect.Right() - thickness, rect.y, thickness, rect.h}, color);
}

void FillVerticalGradient(Bitmap& bitmap, const Rect& rect, Color top, Color bottom) {
  const Rect clipped = ClipToBitmap(rect, bitmap);
  if (clipped.h == 0) {
    return;
  }
  for (int y = clipped.y; y < clipped.Bottom(); ++y) {
    const float t = rect.h > 1 ? static_cast<float>(y - rect.y) / static_cast<float>(rect.h - 1)
                               : 0.0f;
    const Color c = LerpColor(top, bottom, std::clamp(t, 0.0f, 1.0f));
    for (int x = clipped.x; x < clipped.Right(); ++x) {
      bitmap.SetPixel(x, y, c);
    }
  }
}

void FillHorizontalGradient(Bitmap& bitmap, const Rect& rect, Color left, Color right) {
  const Rect clipped = ClipToBitmap(rect, bitmap);
  if (clipped.w == 0) {
    return;
  }
  for (int x = clipped.x; x < clipped.Right(); ++x) {
    const float t = rect.w > 1 ? static_cast<float>(x - rect.x) / static_cast<float>(rect.w - 1)
                               : 0.0f;
    const Color c = LerpColor(left, right, std::clamp(t, 0.0f, 1.0f));
    for (int y = clipped.y; y < clipped.Bottom(); ++y) {
      bitmap.SetPixel(x, y, c);
    }
  }
}

void AddSpeckleNoise(Bitmap& bitmap, const Rect& rect, float amplitude, Rng& rng) {
  const Rect clipped = ClipToBitmap(rect, bitmap);
  for (int y = clipped.y; y < clipped.Bottom(); ++y) {
    for (int x = clipped.x; x < clipped.Right(); ++x) {
      Color c = bitmap.GetPixel(x, y);
      const int delta = static_cast<int>(std::lround(rng.NextGaussian() * amplitude));
      c.r = ClampByte(c.r + delta);
      c.g = ClampByte(c.g + delta);
      c.b = ClampByte(c.b + delta);
      bitmap.SetPixel(x, y, c);
    }
  }
}

void FillCircle(Bitmap& bitmap, int cx, int cy, int radius, Color color) {
  const Rect bounds{cx - radius, cy - radius, 2 * radius + 1, 2 * radius + 1};
  const Rect clipped = ClipToBitmap(bounds, bitmap);
  const int r2 = radius * radius;
  for (int y = clipped.y; y < clipped.Bottom(); ++y) {
    for (int x = clipped.x; x < clipped.Right(); ++x) {
      const int dx = x - cx;
      const int dy = y - cy;
      if (dx * dx + dy * dy <= r2) {
        bitmap.SetPixel(x, y, color);
      }
    }
  }
}

void FillTriangle(Bitmap& bitmap, int cx, int cy, int size, Color color) {
  // Upward-pointing isoceles triangle centred at (cx, cy).
  for (int row = 0; row < size; ++row) {
    const int half = (row * size) / (2 * size) + row / 2;
    const int y = cy - size / 2 + row;
    FillRect(bitmap, Rect{cx - half, y, 2 * half + 1, 1}, color);
  }
}

void DrawTextLine(Bitmap& bitmap, const Rect& rect, Color color, GlyphStyle style, Rng& rng) {
  if (rect.h < 3 || rect.w < 3) {
    return;
  }
  const int glyph_h = rect.h;
  int x = rect.x;
  while (x < rect.Right() - 2) {
    switch (style) {
      case GlyphStyle::kLatin:
      case GlyphStyle::kAccented: {
        const int glyph_w = std::max(2, glyph_h / 2);
        // Vertical stem plus a random crossbar — a block-letter silhouette.
        FillRect(bitmap, Rect{x, rect.y, std::max(1, glyph_w / 3), glyph_h}, color);
        if (rng.NextBool(0.6)) {
          const int bar_y = rect.y + rng.NextInt(0, std::max(0, glyph_h - 2));
          FillRect(bitmap, Rect{x, bar_y, glyph_w, std::max(1, glyph_h / 4)}, color);
        }
        if (style == GlyphStyle::kAccented && rng.NextBool(0.35)) {
          FillRect(bitmap, Rect{x + glyph_w / 2, rect.y - 2, 2, 2}, color);
        }
        x += glyph_w + 2;
        if (rng.NextBool(0.2)) {
          x += glyph_w;  // word gap
        }
        break;
      }
      case GlyphStyle::kArabic: {
        // Connected baseline stroke with dots above/below.
        const int seg_w = rng.NextInt(4, 9);
        const int baseline = rect.y + (2 * glyph_h) / 3;
        FillRect(bitmap, Rect{x, baseline, seg_w, std::max(1, glyph_h / 5)}, color);
        if (rng.NextBool(0.5)) {
          FillRect(bitmap, Rect{x + seg_w / 2, rect.y + glyph_h / 4, 2, 2}, color);
        }
        if (rng.NextBool(0.4)) {
          FillRect(bitmap, Rect{x + 1, rect.y, 2, baseline - rect.y}, color);
        }
        x += seg_w + 1;
        if (rng.NextBool(0.15)) {
          x += 4;
        }
        break;
      }
      case GlyphStyle::kCjk: {
        // Dense square block of horizontal and vertical strokes.
        const int block = glyph_h;
        const int strokes = rng.NextInt(3, 6);
        for (int s = 0; s < strokes; ++s) {
          if (rng.NextBool()) {
            const int sy = rect.y + rng.NextInt(0, std::max(0, block - 2));
            FillRect(bitmap, Rect{x, sy, block, 1}, color);
          } else {
            const int sx = x + rng.NextInt(0, std::max(0, block - 2));
            FillRect(bitmap, Rect{sx, rect.y, 1, block}, color);
          }
        }
        x += block + 2;
        break;
      }
      case GlyphStyle::kHangul: {
        // Two stacked sub-blocks per syllable.
        const int block = glyph_h;
        FillRect(bitmap, Rect{x, rect.y, block / 2, block / 2}, color);
        FillRect(bitmap, Rect{x + 1, rect.y + block / 2 + 1, block - 2, std::max(1, block / 4)},
                 color);
        if (rng.NextBool(0.5)) {
          FillRect(bitmap, Rect{x + block / 2 + 1, rect.y + 1, 1, block / 2}, color);
        }
        x += block + 2;
        break;
      }
    }
  }
}

double NonBackgroundFraction(const Bitmap& bitmap, Color background) {
  if (bitmap.empty()) {
    return 0.0;
  }
  int64_t differing = 0;
  for (int y = 0; y < bitmap.height(); ++y) {
    for (int x = 0; x < bitmap.width(); ++x) {
      const Color c = bitmap.GetPixel(x, y);
      if (c.r != background.r || c.g != background.g || c.b != background.b) {
        ++differing;
      }
    }
  }
  return static_cast<double>(differing) /
         (static_cast<double>(bitmap.width()) * bitmap.height());
}

}  // namespace percival
