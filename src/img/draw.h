// Drawing primitives used by the synthetic ad / content generators.
//
// These are deliberately simple (clipped rect fills, gradients, speckle
// noise, block glyphs) — enough to procedurally compose images whose visual
// statistics separate "ad" from "content" the way the paper's Grad-CAM
// analysis describes (text blocks, logos, borders, product shapes).
#ifndef PERCIVAL_SRC_IMG_DRAW_H_
#define PERCIVAL_SRC_IMG_DRAW_H_

#include "src/base/rng.h"
#include "src/img/bitmap.h"

namespace percival {

struct Rect {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;
  int Right() const { return x + w; }
  int Bottom() const { return y + h; }
  bool Contains(int px, int py) const {
    return px >= x && px < Right() && py >= y && py < Bottom();
  }
  bool Intersects(const Rect& other) const {
    return x < other.Right() && other.x < Right() && y < other.Bottom() && other.y < Bottom();
  }
};

// All drawing functions clip against the bitmap bounds.
void FillRect(Bitmap& bitmap, const Rect& rect, Color color);
void DrawRectOutline(Bitmap& bitmap, const Rect& rect, Color color, int thickness);
void FillVerticalGradient(Bitmap& bitmap, const Rect& rect, Color top, Color bottom);
void FillHorizontalGradient(Bitmap& bitmap, const Rect& rect, Color left, Color right);
void AddSpeckleNoise(Bitmap& bitmap, const Rect& rect, float amplitude, Rng& rng);
void FillCircle(Bitmap& bitmap, int cx, int cy, int radius, Color color);
void FillTriangle(Bitmap& bitmap, int cx, int cy, int size, Color color);

// Glyph styles parameterize the pseudo-script text renderer: each style
// produces characteristically different stroke statistics, which is how the
// language-agnostic experiment (Fig. 9) varies "language" visually.
enum class GlyphStyle {
  kLatin,       // short vertical/horizontal strokes, word gaps
  kArabic,      // connected horizontal flow with dots
  kCjk,         // dense square blocks (Chinese)
  kHangul,      // square blocks of 2-3 sub-strokes (Korean)
  kAccented,    // latin plus diacritic specks (French/Spanish/Portuguese)
};

// Renders a line of pseudo-text inside `rect` using blocky strokes.
void DrawTextLine(Bitmap& bitmap, const Rect& rect, Color color, GlyphStyle style, Rng& rng);

// Fraction of pixels inside `rect` that differ from `background` — used by
// tests and by the blank-screenshot detector in the crawler.
double NonBackgroundFraction(const Bitmap& bitmap, Color background);

}  // namespace percival

#endif  // PERCIVAL_SRC_IMG_DRAW_H_
