#include "src/webgen/language.h"

namespace percival {

const char* LanguageName(Language language) {
  switch (language) {
    case Language::kEnglish:
      return "English";
    case Language::kArabic:
      return "Arabic";
    case Language::kSpanish:
      return "Spanish";
    case Language::kFrench:
      return "French";
    case Language::kKorean:
      return "Korean";
    case Language::kChinese:
      return "Chinese";
    case Language::kPortuguese:
      return "Portuguese";
    case Language::kGerman:
      return "German";
  }
  return "English";
}

GlyphStyle GlyphStyleFor(Language language) {
  switch (language) {
    case Language::kEnglish:
      return GlyphStyle::kLatin;
    case Language::kArabic:
      return GlyphStyle::kArabic;
    case Language::kSpanish:
    case Language::kFrench:
    case Language::kPortuguese:
      return GlyphStyle::kAccented;
    case Language::kKorean:
      return GlyphStyle::kHangul;
    case Language::kChinese:
      return GlyphStyle::kCjk;
    case Language::kGerman:
      return GlyphStyle::kLatin;
  }
  return GlyphStyle::kLatin;
}

double TextOnlyAdProbability(Language language) {
  switch (language) {
    case Language::kEnglish:
      return 0.05;
    case Language::kSpanish:
      return 0.08;
    case Language::kFrench:
      return 0.10;
    case Language::kGerman:
      return 0.10;
    case Language::kPortuguese:
      return 0.12;
    case Language::kArabic:
      return 0.30;
    case Language::kChinese:
      return 0.38;
    case Language::kKorean:
      return 0.45;
  }
  return 0.05;
}

std::vector<Language> Fig9Languages() {
  return {Language::kArabic, Language::kSpanish, Language::kFrench, Language::kKorean,
          Language::kChinese};
}

}  // namespace percival
