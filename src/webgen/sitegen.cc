#include "src/webgen/sitegen.h"

#include <sstream>

#include "src/base/hash.h"
#include "src/img/codec.h"
#include "src/webgen/adgen.h"
#include "src/webgen/contentgen.h"

namespace percival {

namespace {

ImageFormat PickFormat(Rng& rng) {
  // Mirrors the paper's "JPG, PNG, or GIF" variety: most images use the
  // compact PIF codec, with BMP/PPM/RLE/animated in the tail.
  const double roll = rng.NextDouble();
  if (roll < 0.55) {
    return ImageFormat::kPif;
  }
  if (roll < 0.70) {
    return ImageFormat::kBmp;
  }
  if (roll < 0.85) {
    return ImageFormat::kPpm;
  }
  if (roll < 0.95) {
    return ImageFormat::kRle;
  }
  return ImageFormat::kAnim;
}

std::vector<uint8_t> EncodeWithFormat(const Bitmap& bitmap, ImageFormat format, Rng& rng) {
  if (format == ImageFormat::kAnim) {
    // Two-frame animation: the second frame is a mild variation.
    Bitmap second = bitmap;
    AddSpeckleNoise(second, Rect{0, 0, second.width(), second.height()}, 4.0f, rng);
    return EncodeAnim({bitmap, second});
  }
  return Encode(bitmap, format).bytes;
}

}  // namespace

SiteGenerator::SiteGenerator(const SiteGenConfig& config, std::vector<AdNetwork> networks)
    : config_(config), networks_(std::move(networks)) {}

std::string SiteGenerator::SiteHost(int site_index) {
  return "news-site-" + std::to_string(site_index) + ".example";
}

WebPage SiteGenerator::GeneratePage(int site_index, int page_index) const {
  Rng rng(HashCombine(config_.seed,
                      HashCombine(static_cast<uint64_t>(site_index),
                                  static_cast<uint64_t>(page_index) * 0x9E37ULL)));
  WebPage page;
  const std::string host = SiteHost(site_index);
  page.url = "https://" + host + "/article/" + std::to_string(page_index);

  std::ostringstream html;
  html << "<html><body bg=\"#FFFFFF\">";
  html << "<div class=\"header\" height=\"48\" bg=\"#223355\"></div>";

  // Content images interleaved with article text.
  const int content_count =
      rng.NextInt(config_.content_images_per_page_min, config_.content_images_per_page_max);
  for (int i = 0; i < content_count; ++i) {
    Rng image_rng = rng.Fork();
    ContentImageOptions options;
    options.kind = SampleContentKind(image_rng);
    options.language = config_.language;
    Bitmap image = GenerateContentImage(image_rng, options);
    const std::string url = "https://static.sitecdn.example/photo/" + host + "/" +
                            std::to_string(page_index) + "-" + std::to_string(i) + ".img";
    WebResource resource;
    resource.type = ResourceType::kImage;
    Rng codec_rng = rng.Fork();
    resource.bytes = EncodeWithFormat(image, PickFormat(codec_rng), codec_rng);
    resource.latency_ms = rng.NextFloat(5.0f, 80.0f);
    resource.is_ad = false;
    page.resources[url] = std::move(resource);

    html << "<div class=\"story\"><p>article text block " << i << "</p>";
    html << "<img src=\"" << url << "\" width=\"" << image.width() << "\" height=\""
         << image.height() << "\"/></div>";
  }

  // Ad slots.
  const int ad_count = rng.NextInt(config_.ad_slots_per_page_min, config_.ad_slots_per_page_max);
  const std::vector<std::string> container_classes = AdContainerClasses();
  for (int i = 0; i < ad_count; ++i) {
    const AdNetwork& network = networks_[rng.NextBelow(networks_.size())];
    Rng ad_rng = rng.Fork();
    AdImageOptions ad_options;
    ad_options.language = config_.language;
    ad_options.cue_dropout = config_.cue_dropout;
    const bool right_column = (i == 0 && rng.NextBool(0.5));
    ad_options.slot = right_column
                          ? AdSlotKind::kSkyscraper
                          : (rng.NextBool() ? AdSlotKind::kBanner : AdSlotKind::kRectangle);
    Bitmap creative = GenerateAdImage(ad_rng, ad_options);
    const std::string creative_url = "https://" + network.host + network.path_prefix +
                                     std::to_string(site_index) + "-" +
                                     std::to_string(page_index) + "-" + std::to_string(i) +
                                     ".pif";
    WebResource creative_resource;
    creative_resource.type = ResourceType::kImage;
    Rng codec_rng = rng.Fork();
    creative_resource.bytes = EncodeWithFormat(creative, PickFormat(codec_rng), codec_rng);
    creative_resource.is_ad = true;

    const double roll = rng.NextDouble();
    // Listed networks ship with publisher snippets that use recognizable
    // container classes (what the cosmetic rules target); long-tail
    // networks rotate obfuscated class names, evading both rule types —
    // the gap PERCIVAL exists to close.
    const std::string container_class =
        network.listed ? container_classes[rng.NextBelow(container_classes.size())]
                       : "x" + std::to_string(rng.NextU64() % 100000);
    if (roll < config_.iframe_ad_fraction && network.serves_iframes) {
      // Iframe-delivered ad: sub-document HTML fetched from the network,
      // with the longest latencies (the screenshot-race source).
      creative_resource.latency_ms = rng.NextFloat(10.0f, 120.0f);
      const std::string frame_url = "https://" + network.host + "/frame/" +
                                    std::to_string(site_index) + "-" +
                                    std::to_string(page_index) + "-" + std::to_string(i);
      std::ostringstream frame_html;
      frame_html << "<div class=\"" << container_class << "\"><img src=\"" << creative_url
                 << "\" width=\"" << creative.width() << "\" height=\"" << creative.height()
                 << "\"/></div>";
      WebResource frame_resource;
      frame_resource.type = ResourceType::kSubdocument;
      const std::string frame_body = frame_html.str();
      frame_resource.bytes.assign(frame_body.begin(), frame_body.end());
      frame_resource.latency_ms =
          rng.NextFloat(50.0f, static_cast<float>(config_.iframe_latency_max_ms));
      frame_resource.is_ad = true;
      page.resources[frame_url] = std::move(frame_resource);
      html << "<iframe src=\"" << frame_url << "\" width=\"" << creative.width()
           << "\" height=\"" << creative.height() << "\"";
      if (right_column) {
        html << " x=\"720\" y=\"60\"";
      }
      html << "></iframe>";
    } else if (roll < config_.iframe_ad_fraction + config_.script_ad_fraction) {
      // JS-injected ad.
      creative_resource.latency_ms = rng.NextFloat(10.0f, 150.0f);
      const std::string script_url = "https://" + network.host + "/serve/tag-" +
                                     std::to_string(site_index) + "-" +
                                     std::to_string(page_index) + "-" + std::to_string(i) +
                                     ".js";
      std::ostringstream script_body;
      script_body << "inject-img " << creative_url << " " << creative.width() << " "
                  << creative.height() << "\n";
      WebResource script_resource;
      script_resource.type = ResourceType::kScript;
      const std::string body = script_body.str();
      script_resource.bytes.assign(body.begin(), body.end());
      script_resource.latency_ms = rng.NextFloat(10.0f, 200.0f);
      script_resource.is_ad = true;
      page.resources[script_url] = std::move(script_resource);
      html << "<div class=\"" << container_class << "\"><script src=\"" << script_url
           << "\"></script></div>";
    } else {
      // Direct image ad.
      creative_resource.latency_ms = rng.NextFloat(10.0f, 120.0f);
      html << "<div class=\"" << container_class << "\"><img src=\"" << creative_url
           << "\" width=\"" << creative.width() << "\" height=\"" << creative.height() << "\"";
      if (right_column) {
        html << " x=\"720\" y=\"60\"";
      }
      html << "/></div>";
    }
    page.resources[creative_url] = std::move(creative_resource);
  }

  html << "<div class=\"footer\" height=\"32\" bg=\"#DDDDDD\"></div>";
  html << "</body></html>";
  page.html = html.str();
  return page;
}

}  // namespace percival
