// Synthetic web-site generator: the crawlable "Alexa top-N" stand-in.
//
// Pages mix article content, content images from a benign CDN, and ad slots
// served three ways (matching §3.1's "wide range of web constructs"):
//   - direct <img> from an ad-network CDN,
//   - <iframe> whose sub-document contains the ad image,
//   - <script> that dynamically injects an <img> (JS-inserted ads).
// A right-column skyscraper uses absolute positioning. Every resource
// carries a ground-truth is_ad label and a simulated network latency;
// iframe ad content is given the longest latencies, reproducing the
// screenshot-race failure mode of §4.4.2.
#ifndef PERCIVAL_SRC_WEBGEN_SITEGEN_H_
#define PERCIVAL_SRC_WEBGEN_SITEGEN_H_

#include <string>
#include <vector>

#include "src/renderer/web_page.h"
#include "src/webgen/ad_network.h"
#include "src/webgen/language.h"

namespace percival {

struct SiteGenConfig {
  uint64_t seed = 42;
  Language language = Language::kEnglish;
  int content_images_per_page_min = 3;
  int content_images_per_page_max = 8;
  int ad_slots_per_page_min = 1;
  int ad_slots_per_page_max = 4;
  double iframe_ad_fraction = 0.45;   // of ad slots
  double script_ad_fraction = 0.25;   // of ad slots
  double cue_dropout = 0.15;
  // Max simulated latency for iframe ad delivery (drives the race).
  double iframe_latency_max_ms = 900.0;
};

class SiteGenerator {
 public:
  SiteGenerator(const SiteGenConfig& config, std::vector<AdNetwork> networks);

  // Generates page `page_index` of site `site_index` deterministically:
  // same indices and config always produce the same page.
  WebPage GeneratePage(int site_index, int page_index) const;

  // Host name of a site ("news-site-<i>.example").
  static std::string SiteHost(int site_index);

  const std::vector<AdNetwork>& networks() const { return networks_; }

 private:
  SiteGenConfig config_;
  std::vector<AdNetwork> networks_;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_WEBGEN_SITEGEN_H_
