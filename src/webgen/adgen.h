// Procedural ad-image generator.
//
// Ads are composed from the cue families the paper's Grad-CAM analysis
// identifies (Fig. 4 / Fig. 18): an ad-disclosure logo (AdChoices-style
// triangle-in-circle), body/image text blocks, a saturated call-to-action
// button, price tags, brand bars and a product shape — on a gradient or
// solid background with a thin border.
#ifndef PERCIVAL_SRC_WEBGEN_ADGEN_H_
#define PERCIVAL_SRC_WEBGEN_ADGEN_H_

#include "src/base/rng.h"
#include "src/img/bitmap.h"
#include "src/webgen/language.h"

namespace percival {

// Standard IAB-ish ad slot geometries used by the synthetic web.
enum class AdSlotKind {
  kBanner,      // 320x100 leaderboard
  kRectangle,   // 300x250 medium rectangle
  kSkyscraper,  // 160x480 right-column unit
  kSquare,      // 250x250
};

void AdSlotSize(AdSlotKind kind, int* width, int* height);

struct AdImageOptions {
  AdSlotKind slot = AdSlotKind::kRectangle;
  Language language = Language::kEnglish;
  // Probability that each individual visual cue is omitted. 0 gives a
  // maximally cue-rich ad; larger values produce the ambiguous tail.
  double cue_dropout = 0.15;
  // Renders with an alternate palette/typography mix; used to synthesize
  // the externally-collected test distribution (Fig. 8).
  bool shifted_distribution = false;
  // Forces the text-only hard case regardless of language priors.
  bool force_text_only = false;
};

// Generates one ad creative.
Bitmap GenerateAdImage(Rng& rng, const AdImageOptions& options);

// Generates a Facebook-style "sponsored post" image: mostly organic-looking
// product photography with weak sponsorship cues (the paper's in-feed false
// negative source, §5.3).
Bitmap GenerateSponsoredPostImage(Rng& rng, Language language);

}  // namespace percival

#endif  // PERCIVAL_SRC_WEBGEN_ADGEN_H_
