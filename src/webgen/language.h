// Language model for the language-agnostic experiments (Fig. 9, Fig. 17).
//
// Each language maps to a pseudo-script glyph style plus a "textual-cue
// reliance" factor: CJK-market ads in the paper's data rely more on dense
// text and less on the western visual cues (AdChoices, CTA buttons) the
// model keys on, which is why Korean/Chinese accuracy drops.
#ifndef PERCIVAL_SRC_WEBGEN_LANGUAGE_H_
#define PERCIVAL_SRC_WEBGEN_LANGUAGE_H_

#include <string>
#include <vector>

#include "src/img/draw.h"

namespace percival {

enum class Language {
  kEnglish,
  kArabic,
  kSpanish,
  kFrench,
  kKorean,
  kChinese,
  kPortuguese,
  kGerman,
};

const char* LanguageName(Language language);
GlyphStyle GlyphStyleFor(Language language);

// Probability that an ad in this market omits the western ad cues (logo /
// CTA / border) and is carried by text alone — the hard case.
double TextOnlyAdProbability(Language language);

// All languages evaluated in Fig. 9, in table order.
std::vector<Language> Fig9Languages();

}  // namespace percival

#endif  // PERCIVAL_SRC_WEBGEN_LANGUAGE_H_
