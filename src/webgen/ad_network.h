// The synthetic ad ecosystem: ad networks, their URL patterns, and the
// EasyList-like filter list that covers (most of) them.
//
// Coverage is deliberately partial — the paper motivates PERCIVAL as a
// complement to lists that "inevitably get out-of-date": a fraction of
// networks are "long-tail" networks no list rule matches.
#ifndef PERCIVAL_SRC_WEBGEN_AD_NETWORK_H_
#define PERCIVAL_SRC_WEBGEN_AD_NETWORK_H_

#include <string>
#include <vector>

#include "src/base/rng.h"

namespace percival {

struct AdNetwork {
  std::string host;          // e.g. "cdn.adnet3.example"
  std::string path_prefix;   // e.g. "/banner/"
  bool listed = false;       // covered by the generated EasyList
  bool serves_iframes = false;  // serves ad iframes as well as raw images
};

struct AdEcosystemConfig {
  int network_count = 12;
  double listed_fraction = 0.75;  // fraction of networks the list covers
  uint64_t seed = 7;
};

// Builds a deterministic ad ecosystem.
std::vector<AdNetwork> BuildAdNetworks(const AdEcosystemConfig& config);

// Generates the EasyList-like list: network rules for every listed network
// (domain anchors, $image/$subdocument/$third-party options), a handful of
// path-pattern rules, cosmetic rules for common ad container classes, and
// exception rules for a known-benign CDN.
std::vector<std::string> BuildSyntheticEasyList(const std::vector<AdNetwork>& networks);

// Ad container classes the cosmetic rules target.
std::vector<std::string> AdContainerClasses();

}  // namespace percival

#endif  // PERCIVAL_SRC_WEBGEN_AD_NETWORK_H_
