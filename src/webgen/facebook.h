// Facebook-like feed generator for the first-party ad experiment (§5.3).
//
// Feeds mix organic user posts, brand-page posts (high ad intent — the
// paper's FP source), in-feed sponsored posts (obfuscated DOM signatures,
// organic-looking imagery — the FN source), and right-column ad units
// (classic creatives the classifier "always picks out").
#ifndef PERCIVAL_SRC_WEBGEN_FACEBOOK_H_
#define PERCIVAL_SRC_WEBGEN_FACEBOOK_H_

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/img/bitmap.h"
#include "src/renderer/web_page.h"
#include "src/webgen/language.h"

namespace percival {

enum class FeedSlot {
  kOrganicPost,     // friend content
  kBrandPost,       // page-owned product content (non-ad ground truth)
  kSponsoredPost,   // in-feed ad
  kRightColumnAd,   // classic ad unit
};

struct FeedItem {
  FeedSlot slot = FeedSlot::kOrganicPost;
  Bitmap image;
  bool is_ad = false;  // ground truth: sponsored + right-column are ads
};

struct FacebookSessionConfig {
  uint64_t seed = 1234;
  int feed_posts = 50;                  // in-feed items per session
  int right_column_ads = 4;             // right-column units per session
  double sponsored_fraction = 0.12;     // of feed posts
  double brand_post_fraction = 0.15;    // of organic posts
  Language language = Language::kEnglish;
};

// One browsing session's worth of feed imagery with ground truth.
std::vector<FeedItem> GenerateFacebookSession(const FacebookSessionConfig& config);

// Renders a session as a WebPage (feed column + right column) whose DOM
// uses obfuscated, rotating class names for sponsored posts so cosmetic
// filter rules cannot latch onto them — the paper's "signature" arms race.
WebPage BuildFacebookPage(const FacebookSessionConfig& config);

}  // namespace percival

#endif  // PERCIVAL_SRC_WEBGEN_FACEBOOK_H_
