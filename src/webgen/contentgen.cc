#include "src/webgen/contentgen.h"

#include <algorithm>

namespace percival {

namespace {

void DrawLandscape(Bitmap& bitmap, Rng& rng) {
  const int w = bitmap.width();
  const int h = bitmap.height();
  const int horizon = rng.NextInt(h / 3, (2 * h) / 3);
  FillVerticalGradient(bitmap, Rect{0, 0, w, horizon}, Color{130, 180, 240, 255},
                       Color{200, 225, 250, 255});
  FillVerticalGradient(bitmap, Rect{0, horizon, w, h - horizon}, Color{70, 140, 60, 255},
                       Color{40, 90, 40, 255});
  if (rng.NextBool(0.6)) {
    FillCircle(bitmap, rng.NextInt(w / 6, (5 * w) / 6), rng.NextInt(4, horizon / 2),
               std::max(3, w / 16), Color{250, 240, 180, 255});
  }
  // Rolling hills / ridgeline.
  for (int i = 0; i < 3; ++i) {
    const int cx = rng.NextInt(0, w);
    FillTriangle(bitmap, cx, horizon, rng.NextInt(h / 6, h / 3), Color{90, 110, 90, 255});
  }
}

void DrawPortrait(Bitmap& bitmap, Rng& rng) {
  const int w = bitmap.width();
  const int h = bitmap.height();
  FillVerticalGradient(bitmap, Rect{0, 0, w, h}, Color{180, 180, 190, 255},
                       Color{140, 140, 155, 255});
  const Color skin{static_cast<uint8_t>(rng.NextInt(160, 235)),
                   static_cast<uint8_t>(rng.NextInt(120, 190)),
                   static_cast<uint8_t>(rng.NextInt(90, 160)), 255};
  const int cx = w / 2;
  const int cy = h / 3;
  FillCircle(bitmap, cx, cy, std::max(6, h / 5), skin);  // head
  FillRect(bitmap, Rect{cx - w / 5, cy + h / 6, (2 * w) / 5, h / 2},
           Color{static_cast<uint8_t>(rng.NextInt(30, 120)),
                 static_cast<uint8_t>(rng.NextInt(30, 120)),
                 static_cast<uint8_t>(rng.NextInt(60, 160)), 255});  // torso
  FillCircle(bitmap, cx - h / 16, cy - h / 32, 2, Color{30, 30, 30, 255});
  FillCircle(bitmap, cx + h / 16, cy - h / 32, 2, Color{30, 30, 30, 255});
}

void DrawTexture(Bitmap& bitmap, Rng& rng) {
  const Color base{static_cast<uint8_t>(rng.NextInt(60, 200)),
                   static_cast<uint8_t>(rng.NextInt(60, 200)),
                   static_cast<uint8_t>(rng.NextInt(60, 200)), 255};
  FillRect(bitmap, Rect{0, 0, bitmap.width(), bitmap.height()}, base);
  AddSpeckleNoise(bitmap, Rect{0, 0, bitmap.width(), bitmap.height()}, 18.0f, rng);
  // Occasional stripes.
  if (rng.NextBool(0.5)) {
    for (int y = 0; y < bitmap.height(); y += rng.NextInt(6, 14)) {
      FillRect(bitmap, Rect{0, y, bitmap.width(), 2},
               Color{static_cast<uint8_t>(base.r / 2), static_cast<uint8_t>(base.g / 2),
                     static_cast<uint8_t>(base.b / 2), 255});
    }
  }
}

void DrawDocument(Bitmap& bitmap, Rng& rng, GlyphStyle style) {
  FillRect(bitmap, Rect{0, 0, bitmap.width(), bitmap.height()}, Color{252, 252, 250, 255});
  Rng text_rng = rng.Fork();
  const int line_h = 6;
  for (int y = 8; y + line_h < bitmap.height() - 4; y += line_h + 4) {
    const int indent = rng.NextBool(0.15) ? bitmap.width() / 6 : 4;
    DrawTextLine(bitmap, Rect{indent, y, bitmap.width() - indent - 6, line_h},
                 Color{50, 50, 55, 255}, style, text_rng);
  }
}

void DrawProductPhoto(Bitmap& bitmap, Rng& rng, GlyphStyle style) {
  // Brand-page photography: clean backdrop, hero product, caption — shares
  // features with ads (the deliberate FP source).
  FillVerticalGradient(bitmap, Rect{0, 0, bitmap.width(), bitmap.height()},
                       Color{235, 235, 238, 255}, Color{210, 212, 216, 255});
  const int cx = bitmap.width() / 2;
  const int cy = bitmap.height() / 2;
  const int size = std::max(10, bitmap.height() / 3);
  const Color body{static_cast<uint8_t>(rng.NextInt(80, 220)),
                   static_cast<uint8_t>(rng.NextInt(80, 220)),
                   static_cast<uint8_t>(rng.NextInt(80, 220)), 255};
  FillRect(bitmap, Rect{cx - size / 2, cy - size / 2, size, size}, body);
  DrawRectOutline(bitmap, Rect{cx - size / 2, cy - size / 2, size, size},
                  Color{255, 255, 255, 255}, 1);
  Rng text_rng = rng.Fork();
  DrawTextLine(bitmap,
               Rect{bitmap.width() / 8, bitmap.height() - 14, (3 * bitmap.width()) / 4, 8},
               Color{60, 60, 60, 255}, style, text_rng);
  // Brand pages borrow advertising vocabulary — "shop now" banners, price
  // circles — without being paid placements: the classifier's FP source.
  if (rng.NextBool(0.3)) {
    FillCircle(bitmap, bitmap.width() / 6, bitmap.height() / 4,
               std::max(5, bitmap.width() / 14), Color{250, 220, 40, 255});
  }
  if (rng.NextBool(0.2)) {
    FillRect(bitmap, Rect{bitmap.width() / 3, bitmap.height() - 26, bitmap.width() / 3, 10},
             Color{230, 60, 40, 255});
  }
}

}  // namespace

ContentKind SampleContentKind(Rng& rng, double product_photo_probability) {
  if (rng.NextBool(product_photo_probability)) {
    return ContentKind::kProductPhoto;
  }
  switch (rng.NextBelow(4)) {
    case 0:
      return ContentKind::kLandscape;
    case 1:
      return ContentKind::kPortrait;
    case 2:
      return ContentKind::kTexture;
    default:
      return ContentKind::kDocument;
  }
}

Bitmap GenerateContentImage(Rng& rng, const ContentImageOptions& options) {
  const int width = rng.NextInt(80, 200);
  const int height = rng.NextInt(60, 160);
  Bitmap bitmap(width, height, Color{255, 255, 255, 255});
  const GlyphStyle style = GlyphStyleFor(options.language);
  switch (options.kind) {
    case ContentKind::kLandscape:
      DrawLandscape(bitmap, rng);
      break;
    case ContentKind::kPortrait:
      DrawPortrait(bitmap, rng);
      break;
    case ContentKind::kTexture:
      DrawTexture(bitmap, rng);
      break;
    case ContentKind::kDocument:
      DrawDocument(bitmap, rng, style);
      break;
    case ContentKind::kProductPhoto:
      DrawProductPhoto(bitmap, rng, style);
      break;
  }
  if (options.shifted_distribution) {
    AddSpeckleNoise(bitmap, Rect{0, 0, width, height}, 6.0f, rng);
  }
  return bitmap;
}

}  // namespace percival
