// Procedural non-ad (content) image generator.
//
// Content images cover the benign distributions a crawler encounters:
// landscape/portrait photography, UI textures, document screenshots — plus
// "high ad intent" product photography (brand-page content), the paper's
// false-positive source on Facebook (§5.3) and in product-query image
// search (Fig. 13).
#ifndef PERCIVAL_SRC_WEBGEN_CONTENTGEN_H_
#define PERCIVAL_SRC_WEBGEN_CONTENTGEN_H_

#include "src/base/rng.h"
#include "src/img/bitmap.h"
#include "src/webgen/language.h"

namespace percival {

enum class ContentKind {
  kLandscape,
  kPortrait,
  kTexture,
  kDocument,
  kProductPhoto,  // high ad intent
};

struct ContentImageOptions {
  ContentKind kind = ContentKind::kLandscape;
  Language language = Language::kEnglish;
  bool shifted_distribution = false;
};

Bitmap GenerateContentImage(Rng& rng, const ContentImageOptions& options);

// Picks a content kind from the organic web mix (product photos rare).
ContentKind SampleContentKind(Rng& rng, double product_photo_probability = 0.08);

}  // namespace percival

#endif  // PERCIVAL_SRC_WEBGEN_CONTENTGEN_H_
