#include "src/webgen/facebook.h"

#include <sstream>

#include "src/base/hash.h"
#include "src/img/codec.h"
#include "src/webgen/adgen.h"
#include "src/webgen/contentgen.h"

namespace percival {

std::vector<FeedItem> GenerateFacebookSession(const FacebookSessionConfig& config) {
  Rng rng(config.seed);
  std::vector<FeedItem> items;
  for (int i = 0; i < config.feed_posts; ++i) {
    FeedItem item;
    Rng image_rng = rng.Fork();
    if (rng.NextBool(config.sponsored_fraction)) {
      item.slot = FeedSlot::kSponsoredPost;
      item.is_ad = true;
      item.image = GenerateSponsoredPostImage(image_rng, config.language);
    } else if (rng.NextBool(config.brand_post_fraction)) {
      item.slot = FeedSlot::kBrandPost;
      item.is_ad = false;
      ContentImageOptions options;
      options.kind = ContentKind::kProductPhoto;
      options.language = config.language;
      item.image = GenerateContentImage(image_rng, options);
    } else {
      item.slot = FeedSlot::kOrganicPost;
      item.is_ad = false;
      ContentImageOptions options;
      options.kind = image_rng.NextBool() ? ContentKind::kPortrait : ContentKind::kLandscape;
      options.language = config.language;
      item.image = GenerateContentImage(image_rng, options);
    }
    items.push_back(std::move(item));
  }
  for (int i = 0; i < config.right_column_ads; ++i) {
    FeedItem item;
    item.slot = FeedSlot::kRightColumnAd;
    item.is_ad = true;
    Rng image_rng = rng.Fork();
    AdImageOptions options;
    options.slot = AdSlotKind::kSquare;
    options.language = config.language;
    options.cue_dropout = 0.10;  // right-column units are cue-rich
    item.image = GenerateAdImage(image_rng, options);
    items.push_back(std::move(item));
  }
  return items;
}

WebPage BuildFacebookPage(const FacebookSessionConfig& config) {
  std::vector<FeedItem> items = GenerateFacebookSession(config);
  Rng rng(HashCombine(config.seed, 0xFBULL));

  WebPage page;
  page.url = "https://www.social.example/feed";
  std::ostringstream html;
  html << "<html><body bg=\"#F0F2F5\">";
  html << "<div class=\"topbar\" height=\"44\" bg=\"#1B74E4\"></div>";
  html << "<div class=\"feed\" width=\"560\">";

  int index = 0;
  int right_y = 60;
  for (const FeedItem& item : items) {
    const std::string url =
        "https://cdn.social.example/media/" + std::to_string(config.seed) + "-" +
        std::to_string(index) + ".pif";
    WebResource resource;
    resource.type = ResourceType::kImage;
    resource.bytes = EncodePif(item.image);
    resource.latency_ms = rng.NextFloat(10.0f, 90.0f);
    resource.is_ad = item.is_ad;
    page.resources[url] = std::move(resource);

    if (item.slot == FeedSlot::kRightColumnAd) {
      html << "<div class=\"rhc-unit\" x=\"720\" y=\"" << right_y << "\" width=\""
           << item.image.width() << "\"><img src=\"" << url << "\" width=\""
           << item.image.width() << "\" height=\"" << item.image.height() << "\"/></div>";
      right_y += item.image.height() + 12;
    } else {
      // Sponsored posts use a rotating, obfuscated class so no stable
      // cosmetic rule can target them (post code "looks identical to
      // normal posts", §5.3).
      std::string klass = "x" + std::to_string(rng.NextU64() % 100000);
      html << "<div class=\"" << klass << "\" width=\"540\"><p>post text</p><img src=\"" << url
           << "\" width=\"" << item.image.width() << "\" height=\"" << item.image.height()
           << "\"/></div>";
    }
    ++index;
  }
  html << "</div></body></html>";
  page.html = html.str();
  return page;
}

}  // namespace percival
