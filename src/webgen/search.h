// Google-image-search stand-in for the ad-intent experiment (Fig. 13).
//
// Each query maps to an "ad intent": the probability that a result image is
// drawn from the ad distribution rather than the content distribution.
// Product queries additionally bias the content mix toward product
// photography, producing the FP/FN profile the paper reports for queries
// like "iPhone" and "Detergent".
#ifndef PERCIVAL_SRC_WEBGEN_SEARCH_H_
#define PERCIVAL_SRC_WEBGEN_SEARCH_H_

#include <optional>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/img/bitmap.h"

namespace percival {

struct SearchResultImage {
  Bitmap image;
  // Ground truth. nullopt mirrors the paper's "-" rows, where a human
  // could not determine ad vs non-ad (ambiguous product content).
  std::optional<bool> is_ad;
};

struct SearchQueryProfile {
  std::string query;
  double ad_intent = 0.0;          // fraction of results that are real ads
  double product_content = 0.0;    // fraction of content that is product-like
  bool labelable = true;           // false => ground truth withheld
};

// The seven Fig. 13 queries with calibrated intents.
std::vector<SearchQueryProfile> Fig13Queries();

// Generates `count` result images for a query profile.
std::vector<SearchResultImage> GenerateSearchResults(const SearchQueryProfile& profile,
                                                     int count, uint64_t seed);

}  // namespace percival

#endif  // PERCIVAL_SRC_WEBGEN_SEARCH_H_
