#include "src/webgen/ad_network.h"

namespace percival {

std::vector<AdNetwork> BuildAdNetworks(const AdEcosystemConfig& config) {
  Rng rng(config.seed);
  std::vector<AdNetwork> networks;
  const char* const kPrefixes[] = {"/banner", "/creative", "/serve", "/adimg"};
  for (int i = 0; i < config.network_count; ++i) {
    AdNetwork network;
    network.host = "cdn.adnet" + std::to_string(i) + ".example";
    // Per-network path prefix: generic path rules for listed networks must
    // not accidentally cover long-tail (unlisted) networks.
    network.path_prefix =
        std::string(kPrefixes[rng.NextBelow(4)]) + std::to_string(i) + "/";
    network.listed = rng.NextDouble() < config.listed_fraction;
    network.serves_iframes = rng.NextBool(0.5);
    networks.push_back(std::move(network));
  }
  return networks;
}

std::vector<std::string> AdContainerClasses() {
  return {"ad-banner", "ad-box", "sponsored", "adsense-slot", "promo-unit"};
}

std::vector<std::string> BuildSyntheticEasyList(const std::vector<AdNetwork>& networks) {
  std::vector<std::string> rules;
  rules.push_back("! Synthetic EasyList for the percival reproduction");
  for (const AdNetwork& network : networks) {
    if (!network.listed) {
      continue;
    }
    // Domain-anchored network rule, the dominant EasyList form.
    rules.push_back("||" + network.host + "^$third-party");
    // A path-pattern rule (redundant with the above for this host, but
    // exercises wildcard matching and catches re-hosted creatives).
    rules.push_back(network.path_prefix + "*.pif$image");
  }
  // Cosmetic rules for common ad container classes (generic, all sites).
  for (const std::string& klass : AdContainerClasses()) {
    rules.push_back("##." + klass);
  }
  // A site-specific cosmetic rule and an exception pattern: the benign
  // static CDN also serves from /adimg/-like paths and must not be blocked.
  rules.push_back("news-site-0.example###legacy-ad-slot");
  rules.push_back("@@||static.sitecdn.example^$image");
  return rules;
}

}  // namespace percival
