#include "src/webgen/adgen.h"

#include <algorithm>

namespace percival {

namespace {

// Saturated "CTA" palette.
const Color kCtaColors[] = {
    Color{230, 60, 40, 255},   // red
    Color{250, 150, 20, 255},  // orange
    Color{30, 140, 230, 255},  // blue
    Color{30, 180, 80, 255},   // green
};

const Color kShiftedCtaColors[] = {
    Color{180, 30, 120, 255},  // magenta
    Color{90, 40, 200, 255},   // violet
    Color{0, 170, 170, 255},   // teal
};

Color PickCta(Rng& rng, bool shifted) {
  if (shifted) {
    return kShiftedCtaColors[rng.NextBelow(3)];
  }
  return kCtaColors[rng.NextBelow(4)];
}

// The AdChoices-style disclosure: a small blue-ish play-triangle inside a
// light circle at a corner of the creative.
void DrawAdChoicesLogo(Bitmap& bitmap, Rng& rng) {
  const int radius = std::max(4, bitmap.width() / 24);
  const bool top_right = rng.NextBool(0.8);
  const int cx = top_right ? bitmap.width() - radius - 2 : radius + 2;
  const int cy = radius + 2;
  FillCircle(bitmap, cx, cy, radius, Color{235, 240, 250, 255});
  FillTriangle(bitmap, cx, cy, std::max(3, radius), Color{20, 100, 220, 255});
}

void DrawCtaButton(Bitmap& bitmap, Rng& rng, GlyphStyle style, bool shifted) {
  const int bw = std::max(28, bitmap.width() / 3);
  const int bh = std::max(12, bitmap.height() / 7);
  const int bx = rng.NextInt(bitmap.width() / 8, std::max(bitmap.width() / 8 + 1,
                                                          bitmap.width() - bw - 4));
  const int by = bitmap.height() - bh - std::max(4, bitmap.height() / 12);
  const Color cta = PickCta(rng, shifted);
  FillRect(bitmap, Rect{bx, by, bw, bh}, cta);
  DrawRectOutline(bitmap, Rect{bx, by, bw, bh}, Color{255, 255, 255, 255}, 1);
  Rng text_rng = rng.Fork();
  DrawTextLine(bitmap, Rect{bx + 4, by + bh / 4, bw - 8, bh / 2}, Color{255, 255, 255, 255},
               style, text_rng);
}

void DrawPriceTag(Bitmap& bitmap, Rng& rng) {
  const int size = std::max(10, bitmap.width() / 8);
  const int x = rng.NextInt(2, std::max(3, bitmap.width() - size - 2));
  const int y = rng.NextInt(2, std::max(3, bitmap.height() / 2));
  FillCircle(bitmap, x + size / 2, y + size / 2, size / 2, Color{250, 220, 40, 255});
  Rng text_rng = rng.Fork();
  DrawTextLine(bitmap, Rect{x + 2, y + size / 3, size - 4, size / 3}, Color{120, 30, 30, 255},
               GlyphStyle::kLatin, text_rng);
}

void DrawProductShape(Bitmap& bitmap, Rng& rng) {
  const int cx = rng.NextInt(bitmap.width() / 4, (3 * bitmap.width()) / 4);
  const int cy = rng.NextInt(bitmap.height() / 3, (2 * bitmap.height()) / 3);
  const int size = std::max(8, bitmap.height() / 4);
  const Color body{static_cast<uint8_t>(rng.NextInt(60, 200)),
                   static_cast<uint8_t>(rng.NextInt(60, 200)),
                   static_cast<uint8_t>(rng.NextInt(60, 200)), 255};
  if (rng.NextBool()) {
    FillCircle(bitmap, cx, cy, size / 2, body);
    FillCircle(bitmap, cx - size / 3, cy + size / 3, size / 5, Color{30, 30, 30, 255});
    FillCircle(bitmap, cx + size / 3, cy + size / 3, size / 5, Color{30, 30, 30, 255});
  } else {
    FillRect(bitmap, Rect{cx - size / 2, cy - size / 3, size, (2 * size) / 3}, body);
    FillRect(bitmap, Rect{cx - size / 8, cy - size / 2, size / 4, size / 6},
             Color{40, 40, 40, 255});
  }
}

}  // namespace

void AdSlotSize(AdSlotKind kind, int* width, int* height) {
  switch (kind) {
    case AdSlotKind::kBanner:
      *width = 320;
      *height = 100;
      return;
    case AdSlotKind::kRectangle:
      *width = 300;
      *height = 250;
      return;
    case AdSlotKind::kSkyscraper:
      *width = 160;
      *height = 480;
      return;
    case AdSlotKind::kSquare:
      *width = 250;
      *height = 250;
      return;
  }
}

Bitmap GenerateAdImage(Rng& rng, const AdImageOptions& options) {
  int width = 0;
  int height = 0;
  AdSlotSize(options.slot, &width, &height);
  // Generators run at quarter resolution for throughput; the classifier
  // resizes everything to its input size anyway.
  width = std::max(32, width / 2);
  height = std::max(32, height / 2);

  Bitmap bitmap(width, height, Color{255, 255, 255, 255});
  const GlyphStyle style = GlyphStyleFor(options.language);
  const bool shifted = options.shifted_distribution;
  const bool text_only =
      options.force_text_only || rng.NextBool(TextOnlyAdProbability(options.language));

  if (text_only) {
    // Native/text ad: typeset like an article snippet — same paper-white
    // background, ink color, and line metrics as document content. These
    // are the hard cases that dominate CJK/Arabic markets, and they carry
    // only sporadic weak cues. The visual collision with ContentKind::
    // kDocument is intentional: it produces the Fig. 9 accuracy drop.
    FillRect(bitmap, Rect{0, 0, width, height}, Color{252, 252, 250, 255});
    Rng text_rng = rng.Fork();
    const int line_h = 6;
    for (int y = 8; y + line_h < height - 4; y += line_h + 4) {
      const int indent = text_rng.NextBool(0.15) ? width / 6 : 4;
      DrawTextLine(bitmap, Rect{indent, y, width - indent - 6, line_h},
                   Color{50, 50, 55, 255}, style, text_rng);
    }
    if (rng.NextBool(0.25)) {
      DrawPriceTag(bitmap, rng);
    }
    if (rng.NextBool(0.15)) {
      DrawAdChoicesLogo(bitmap, rng);
    }
    if (shifted) {
      AddSpeckleNoise(bitmap, Rect{0, 0, width, height}, 12.0f, rng);
    }
    return bitmap;
  }

  // Display ad: saturated gradient (ads) vs white/photo (content).
  const Color top = PickCta(rng, shifted);
  const Color bottom{static_cast<uint8_t>(std::min(255, top.r + 60)),
                     static_cast<uint8_t>(std::min(255, top.g + 60)),
                     static_cast<uint8_t>(std::min(255, top.b + 60)), 255};
  if (rng.NextBool(0.75)) {
    if (rng.NextBool()) {
      FillVerticalGradient(bitmap, Rect{0, 0, width, height}, top, bottom);
    } else {
      FillHorizontalGradient(bitmap, Rect{0, 0, width, height}, bottom, top);
    }
  } else {
    FillRect(bitmap, Rect{0, 0, width, height},
             rng.NextBool(0.5) ? Color{250, 250, 245, 255} : Color{240, 244, 250, 255});
  }

  // Headline / body text: 1-3 lines.
  Rng text_rng = rng.Fork();
  const int lines = rng.NextInt(1, 3);
  const Color ink = Color{255, 255, 255, 255};
  for (int i = 0; i < lines; ++i) {
    const int line_h = std::max(6, height / 10);
    const int y = height / 8 + i * (line_h + 4);
    DrawTextLine(bitmap, Rect{width / 10, y, (4 * width) / 5, line_h}, ink, style, text_rng);
  }

  if (!rng.NextBool(options.cue_dropout)) {
    DrawProductShape(bitmap, rng);
  }
  if (!rng.NextBool(options.cue_dropout)) {
    DrawCtaButton(bitmap, rng, style, shifted);
  }
  if (rng.NextBool(0.5)) {
    DrawPriceTag(bitmap, rng);
  }
  if (!rng.NextBool(options.cue_dropout)) {
    DrawRectOutline(bitmap, Rect{0, 0, width, height}, Color{90, 90, 90, 255},
                    std::max(1, width / 100));
  }
  // The disclosure logo is the strongest cue; dropped with the dropout
  // probability like the others.
  if (!rng.NextBool(options.cue_dropout)) {
    DrawAdChoicesLogo(bitmap, rng);
  }

  if (shifted) {
    AddSpeckleNoise(bitmap, Rect{0, 0, width, height}, 6.0f, rng);
  }
  return bitmap;
}

Bitmap GenerateSponsoredPostImage(Rng& rng, Language language) {
  // A fraction of sponsored posts reuse standard display creatives (easy
  // for the classifier); the rest look like organic product photography
  // with weak cues (the FN source the paper describes).
  if (rng.NextBool(0.45)) {
    AdImageOptions options;
    options.language = language;
    options.slot = AdSlotKind::kRectangle;
    options.cue_dropout = 0.25;
    return GenerateAdImage(rng, options);
  }
  const int width = 160;
  const int height = 120;
  Bitmap bitmap(width, height, Color{255, 255, 255, 255});
  FillVerticalGradient(bitmap, Rect{0, 0, width, height}, Color{225, 228, 232, 255},
                       Color{200, 205, 212, 255});
  DrawProductShape(bitmap, rng);
  Rng text_rng = rng.Fork();
  DrawTextLine(bitmap, Rect{width / 8, height - 18, (3 * width) / 4, 10},
               Color{70, 70, 70, 255}, GlyphStyleFor(language), text_rng);
  if (rng.NextBool(0.65)) {
    DrawCtaButton(bitmap, rng, GlyphStyleFor(language), false);
  }
  if (rng.NextBool(0.45)) {
    DrawAdChoicesLogo(bitmap, rng);
  }
  if (rng.NextBool(0.35)) {
    DrawPriceTag(bitmap, rng);
  }
  AddSpeckleNoise(bitmap, Rect{0, 0, width, height}, 3.0f, rng);
  return bitmap;
}

}  // namespace percival
