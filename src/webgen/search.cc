#include "src/webgen/search.h"

#include "src/base/hash.h"
#include "src/webgen/adgen.h"
#include "src/webgen/contentgen.h"

namespace percival {

std::vector<SearchQueryProfile> Fig13Queries() {
  // ad_intent calibrated to the paper's blocked counts: "Obama" is almost
  // all portrait/news photography; "Advertisement" is nearly all creatives;
  // product queries are mixtures of ads and (ambiguous) product photos.
  return {
      {"Obama", 0.02, 0.02, true},
      {"Advertisement", 0.92, 0.05, true},
      {"Shoes", 0.45, 0.60, false},
      {"Pastry", 0.12, 0.40, false},
      {"Coffee", 0.20, 0.45, false},
      {"Detergent", 0.75, 0.55, true},
      {"iPhone", 0.65, 0.75, true},
  };
}

std::vector<SearchResultImage> GenerateSearchResults(const SearchQueryProfile& profile,
                                                     int count, uint64_t seed) {
  Rng rng(HashCombine(seed, HashString(profile.query)));
  std::vector<SearchResultImage> results;
  results.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    SearchResultImage result;
    Rng image_rng = rng.Fork();
    const bool is_ad = rng.NextBool(profile.ad_intent);
    if (is_ad) {
      AdImageOptions options;
      options.slot = image_rng.NextBool() ? AdSlotKind::kRectangle : AdSlotKind::kBanner;
      options.cue_dropout = 0.20;
      result.image = GenerateAdImage(image_rng, options);
    } else {
      ContentImageOptions options;
      options.kind = image_rng.NextBool(profile.product_content) ? ContentKind::kProductPhoto
                                                                 : SampleContentKind(image_rng);
      result.image = GenerateContentImage(image_rng, options);
    }
    if (profile.labelable) {
      result.is_ad = is_ad;
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace percival
