#include "src/crawler/dataset.h"

#include <algorithm>

#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/img/phash.h"

namespace percival {

void Dataset::Append(Dataset other) {
  for (LabeledImage& example : other.examples_) {
    examples_.push_back(std::move(example));
  }
}

int Dataset::ad_count() const {
  int count = 0;
  for (const LabeledImage& example : examples_) {
    if (example.is_ad) {
      ++count;
    }
  }
  return count;
}

int Dataset::non_ad_count() const { return size() - ad_count(); }

int Dataset::Deduplicate(int hamming_threshold) {
  std::vector<LabeledImage> kept;
  std::vector<uint64_t> exact_hashes;
  std::vector<uint64_t> perceptual_hashes;
  int removed = 0;
  for (LabeledImage& example : examples_) {
    const uint64_t exact = HashBytes(example.image.data(), example.image.byte_size());
    const uint64_t perceptual = AverageHash(example.image);
    bool duplicate = false;
    for (size_t i = 0; i < kept.size(); ++i) {
      if (exact_hashes[i] == exact) {
        duplicate = true;
        break;
      }
      if (hamming_threshold > 0 &&
          HammingDistance(perceptual_hashes[i], perceptual) <= hamming_threshold &&
          kept[i].is_ad == example.is_ad) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      ++removed;
      continue;
    }
    exact_hashes.push_back(exact);
    perceptual_hashes.push_back(perceptual);
    kept.push_back(std::move(example));
  }
  examples_ = std::move(kept);
  return removed;
}

void Dataset::Balance() {
  const int ads = ad_count();
  const int non_ads = non_ad_count();
  const int cap = std::min(ads, non_ads);
  std::vector<LabeledImage> kept;
  int kept_ads = 0;
  int kept_non_ads = 0;
  for (LabeledImage& example : examples_) {
    int& counter = example.is_ad ? kept_ads : kept_non_ads;
    if (counter < cap) {
      ++counter;
      kept.push_back(std::move(example));
    }
  }
  examples_ = std::move(kept);
}

void Dataset::Shuffle(Rng& rng) { rng.Shuffle(examples_); }

Dataset Dataset::SplitValidation(double fraction) {
  PCHECK(fraction >= 0.0 && fraction < 1.0);
  const int validation_count = static_cast<int>(static_cast<double>(size()) * fraction);
  Dataset validation;
  for (int i = size() - validation_count; i < size(); ++i) {
    validation.Add(std::move(examples_[static_cast<size_t>(i)]));
  }
  examples_.resize(static_cast<size_t>(size() - validation_count));
  return validation;
}

}  // namespace percival
