// Labelled image dataset with the paper's post-processing: exact and
// near-duplicate removal, class balancing, and train/validation splitting
// (§4.4.1-4.4.2).
#ifndef PERCIVAL_SRC_CRAWLER_DATASET_H_
#define PERCIVAL_SRC_CRAWLER_DATASET_H_

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/img/bitmap.h"

namespace percival {

struct LabeledImage {
  Bitmap image;
  bool is_ad = false;
  std::string source_url;  // provenance (empty for generated sets)
};

class Dataset {
 public:
  void Add(LabeledImage example) { examples_.push_back(std::move(example)); }
  void Append(Dataset other);

  int size() const { return static_cast<int>(examples_.size()); }
  int ad_count() const;
  int non_ad_count() const;
  const LabeledImage& example(int i) const { return examples_[static_cast<size_t>(i)]; }
  std::vector<LabeledImage>& mutable_examples() { return examples_; }
  const std::vector<LabeledImage>& examples() const { return examples_; }

  // Removes exact duplicates and near-duplicates (average-hash Hamming
  // distance <= `hamming_threshold`). Returns the number removed.
  int Deduplicate(int hamming_threshold = 2);

  // Caps the majority class so |ads| == |non-ads| (paper: "we cap the
  // number of non-ad images to the amount of ad images"). Keeps the first
  // examples of the majority class in order.
  void Balance();

  // Shuffles deterministically.
  void Shuffle(Rng& rng);

  // Splits off the last `fraction` of examples as a validation set.
  Dataset SplitValidation(double fraction);

 private:
  std::vector<LabeledImage> examples_;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_CRAWLER_DATASET_H_
