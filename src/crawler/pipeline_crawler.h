// PERCIVAL-based pipeline crawler (§4.4.2, Figure 5).
//
// Instead of screenshotting, the crawler renders each page through the full
// pipeline and captures every decoded image frame directly from the image
// decoding path — "this way we are guaranteed to capture all the iframes
// that were rendered, independently of the time of rendering". Labels come
// either from EasyList (bootstrap phase) or from a trained classifier
// (retraining phases); ground truth is carried for evaluation.
#ifndef PERCIVAL_SRC_CRAWLER_PIPELINE_CRAWLER_H_
#define PERCIVAL_SRC_CRAWLER_PIPELINE_CRAWLER_H_

#include <functional>

#include "src/crawler/dataset.h"
#include "src/filter/engine.h"
#include "src/webgen/sitegen.h"

namespace percival {

struct PipelineCrawlConfig {
  int sites = 20;
  int pages_per_site = 3;
  uint64_t seed = 7;
};

// Labeller: given the decoded frame and its URL, produce an ad/non-ad label.
using FrameLabeller = std::function<bool(const Bitmap& frame, const std::string& url)>;

struct PipelineCrawlStats {
  int frames_captured = 0;
  int label_errors = 0;  // labeller disagreed with ground truth
};

// Crawls by rendering every page; every decoded frame is captured and
// labelled. The dataset's is_ad field holds the *labeller's* output (the
// training signal); label_errors counts disagreements with ground truth.
Dataset RunPipelineCrawl(const SiteGenerator& generator, const FrameLabeller& labeller,
                         const PipelineCrawlConfig& config, PipelineCrawlStats* stats);

// Convenience labeller that applies EasyList network rules to the URL.
FrameLabeller EasyListLabeller(const FilterEngine& engine);

}  // namespace percival

#endif  // PERCIVAL_SRC_CRAWLER_PIPELINE_CRAWLER_H_
