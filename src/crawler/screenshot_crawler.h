// Selenium-style screenshot crawler (§4.4.1) with its race condition.
//
// The crawler visits pages, applies EasyList rules to find ad elements, and
// screenshots matched elements at a fixed time after the page-load event.
// Iframe ad content that has not arrived by screenshot time yields a blank
// (white) capture — the failure mode that motivated the pipeline crawler
// (§4.4.2: "many screen-shots end up with white-space instead of the image
// content").
#ifndef PERCIVAL_SRC_CRAWLER_SCREENSHOT_CRAWLER_H_
#define PERCIVAL_SRC_CRAWLER_SCREENSHOT_CRAWLER_H_

#include <vector>

#include "src/crawler/dataset.h"
#include "src/filter/engine.h"
#include "src/renderer/web_page.h"
#include "src/webgen/sitegen.h"

namespace percival {

struct ScreenshotCrawlConfig {
  int sites = 20;
  int pages_per_site = 3;
  // Virtual time between the page-load event and the screenshot. Iframe
  // resources with latency above this arrive too late and capture blank.
  double screenshot_delay_ms = 400.0;
  uint64_t seed = 99;
};

struct ScreenshotCrawlStats {
  int elements_matched = 0;    // EasyList-matched elements (ad candidates)
  int elements_unmatched = 0;  // non-matched elements (non-ad candidates)
  int blank_captures = 0;      // ad captures that raced and came up blank
};

// Crawls the synthetic web; returns the labelled dataset (EasyList matches
// are labelled ads) including any blank racy captures, plus stats.
Dataset RunScreenshotCrawl(const SiteGenerator& generator, const FilterEngine& easylist,
                           const ScreenshotCrawlConfig& config, ScreenshotCrawlStats* stats);

}  // namespace percival

#endif  // PERCIVAL_SRC_CRAWLER_SCREENSHOT_CRAWLER_H_
