#include "src/crawler/screenshot_crawler.h"

#include "src/img/codec.h"

namespace percival {

Dataset RunScreenshotCrawl(const SiteGenerator& generator, const FilterEngine& easylist,
                           const ScreenshotCrawlConfig& config, ScreenshotCrawlStats* stats) {
  Dataset dataset;
  ScreenshotCrawlStats local_stats;
  for (int site = 0; site < config.sites; ++site) {
    for (int page_index = 0; page_index < config.pages_per_site; ++page_index) {
      const WebPage page = generator.GeneratePage(site, page_index);
      const std::string page_host = Url::Parse(page.url).host;

      // Find iframe sub-documents so we can model their arrival time; the
      // creative inside an iframe is visible only if the frame HTML arrived
      // before the screenshot.
      for (const auto& [url, resource] : page.resources) {
        if (resource.type != ResourceType::kImage) {
          continue;
        }
        RequestContext request;
        request.url = Url::Parse(url);
        request.page_host = page_host;
        request.type = ResourceType::kImage;
        const bool matched = easylist.ShouldBlockRequest(request).blocked;

        // Determine the element's visibility at screenshot time. Direct
        // images are visible when their own latency beats the delay; an
        // iframe-delivered creative needs frame latency + image latency.
        double arrival = resource.latency_ms;
        for (const auto& [frame_url, frame_resource] : page.resources) {
          if (frame_resource.type != ResourceType::kSubdocument) {
            continue;
          }
          const std::string frame_html(frame_resource.bytes.begin(),
                                       frame_resource.bytes.end());
          if (frame_html.find(url) != std::string::npos) {
            arrival = frame_resource.latency_ms + resource.latency_ms;
            break;
          }
        }

        LabeledImage example;
        example.is_ad = matched;
        example.source_url = url;
        if (arrival > config.screenshot_delay_ms) {
          // Raced: the screenshot captured the empty slot.
          example.image = Bitmap(64, 48, Color{255, 255, 255, 255});
          if (matched) {
            ++local_stats.blank_captures;
          }
        } else {
          std::optional<Bitmap> decoded = DecodeFirstFrame(resource.bytes);
          if (!decoded) {
            continue;
          }
          example.image = std::move(*decoded);
        }
        if (matched) {
          ++local_stats.elements_matched;
        } else {
          ++local_stats.elements_unmatched;
        }
        dataset.Add(std::move(example));
      }
    }
  }
  if (stats != nullptr) {
    *stats = local_stats;
  }
  return dataset;
}

}  // namespace percival
