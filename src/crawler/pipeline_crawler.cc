#include "src/crawler/pipeline_crawler.h"

#include "src/renderer/image_pipeline.h"
#include "src/renderer/renderer.h"

namespace percival {

namespace {

// Interceptor that captures every decoded frame into a dataset instead of
// blocking (Figure 5: "every decoded image frame is passed through PERCIVAL
// and PERCIVAL downloads the image frame into the appropriate bucket").
class CapturingInterceptor : public ImageInterceptor {
 public:
  CapturingInterceptor(const WebPage& page, const FrameLabeller& labeller, Dataset& dataset,
                       PipelineCrawlStats& stats)
      : page_(page), labeller_(labeller), dataset_(dataset), stats_(stats) {}

  bool OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                      const std::string& source_url) override {
    LabeledImage example;
    example.image = pixels;
    example.source_url = source_url;
    example.is_ad = labeller_(pixels, source_url);
    const WebResource* truth = page_.FindResource(source_url);
    if (truth != nullptr && truth->is_ad != example.is_ad) {
      ++stats_.label_errors;
    }
    ++stats_.frames_captured;
    dataset_.Add(std::move(example));
    return false;  // Crawling never blocks.
  }

 private:
  const WebPage& page_;
  const FrameLabeller& labeller_;
  Dataset& dataset_;
  PipelineCrawlStats& stats_;
};

}  // namespace

Dataset RunPipelineCrawl(const SiteGenerator& generator, const FrameLabeller& labeller,
                         const PipelineCrawlConfig& config, PipelineCrawlStats* stats) {
  Dataset dataset;
  PipelineCrawlStats local_stats;
  for (int site = 0; site < config.sites; ++site) {
    for (int page_index = 0; page_index < config.pages_per_site; ++page_index) {
      const WebPage page = generator.GeneratePage(site, page_index);
      CapturingInterceptor interceptor(page, labeller, dataset, local_stats);
      RenderOptions options;
      options.interceptor = &interceptor;
      options.render_framebuffer = false;  // capture-only pass
      RenderPage(page, options);
    }
  }
  if (stats != nullptr) {
    *stats = local_stats;
  }
  return dataset;
}

FrameLabeller EasyListLabeller(const FilterEngine& engine) {
  return [&engine](const Bitmap& frame, const std::string& url) {
    (void)frame;
    RequestContext request;
    request.url = Url::Parse(url);
    request.page_host = "crawler.example";  // crawler context: all third-party
    request.type = ResourceType::kImage;
    return engine.ShouldBlockRequest(request).blocked;
  };
}

}  // namespace percival
