#include "src/train/phases.h"

#include "src/base/rng.h"
#include "src/img/resize.h"
#include "src/nn/activation.h"
#include "src/renderer/renderer.h"

namespace percival {

PhasedTrainingResult RunPhasedTraining(const SiteGenerator& generator,
                                       const FilterEngine& easylist, const Dataset& holdout,
                                       const PhasedTrainingConfig& config) {
  PhasedTrainingResult result;
  result.model = BuildPercivalNet(config.profile);
  Rng rng(config.seed);

  // Phase 0 bootstrap: traditional screenshot crawl labelled by EasyList
  // ("traditional crawling was good enough to bootstrap", §4.4.2).
  Dataset corpus;
  {
    ScreenshotCrawlConfig crawl;
    crawl.sites = config.sites_per_phase;
    crawl.pages_per_site = config.pages_per_site;
    crawl.seed = rng.NextU64();
    corpus = RunScreenshotCrawl(generator, easylist, crawl, nullptr);
  }

  for (int phase = 0; phase < config.phases; ++phase) {
    PhaseOutcome outcome;
    outcome.phase = phase;

    if (phase > 0) {
      // Later phases crawl fresh pages through the rendering pipeline,
      // self-labelling frames with the *current* model (Figure 5). The
      // generator is deterministic in (site, page), so phases use disjoint
      // page-index ranges to see new content.
      Network& model = result.model;
      const PercivalNetConfig& profile = config.profile;
      FrameLabeller model_labeller = [&model, &profile](const Bitmap& frame,
                                                        const std::string& url) {
        (void)url;
        Tensor input = BitmapToTensor(frame, profile.input_size, profile.input_channels);
        Softmax softmax;
        Tensor probs = softmax.Forward(model.Forward(input));
        return probs.at(0, 0, 0, 1) >= 0.5f;
      };

      struct CaptureInterceptor : ImageInterceptor {
        Dataset* out = nullptr;
        const FrameLabeller* labeller = nullptr;
        bool OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                            const std::string& source_url) override {
          (void)info;
          LabeledImage example;
          example.image = pixels;
          example.source_url = source_url;
          example.is_ad = (*labeller)(pixels, source_url);
          out->Add(std::move(example));
          return false;
        }
      };

      Dataset fresh;
      CaptureInterceptor capture;
      capture.out = &fresh;
      capture.labeller = &model_labeller;
      for (int site = 0; site < config.sites_per_phase; ++site) {
        for (int page = 0; page < config.pages_per_site; ++page) {
          const int page_index = phase * config.pages_per_site + page;
          const WebPage web_page = generator.GeneratePage(site, page_index);
          RenderOptions options;
          options.interceptor = &capture;
          options.render_framebuffer = false;
          RenderPage(web_page, options);
        }
      }
      corpus.Append(std::move(fresh));
    }

    outcome.duplicates_removed = corpus.Deduplicate();
    corpus.Balance();
    Rng shuffle_rng = rng.Fork();
    corpus.Shuffle(shuffle_rng);
    outcome.dataset_size = corpus.size();

    // Retrain from the current weights on the cumulative corpus
    // ("retraining PERCIVAL after each stage with the data obtained from
    // the current and all the previous crawls").
    TrainClassifier(result.model, config.profile, corpus, config.train);

    const ConfusionMatrix matrix =
        EvaluateClassifier(result.model, config.profile, holdout);
    outcome.holdout_accuracy = matrix.Accuracy();
    outcome.holdout_f1 = matrix.F1();
    result.phases.push_back(outcome);
  }
  return result;
}

}  // namespace percival
