// Block-list generation — the paper's §6 alternative deployment: "PERCIVAL
// can be used to build and enhance block lists for traditional ad blockers.
// For that we would need to set up a crawling infrastructure to find URLs
// ... we can still use such techniques to frequently update block lists
// automatically."
//
// The builder crawls the synthetic web through the rendering pipeline,
// classifies every decoded frame, aggregates per-host and per-path-prefix
// ad rates, and emits Adblock-Plus rules for origins whose ad rate clears a
// confidence threshold. The emitted list can be loaded straight into the
// FilterEngine, closing the loop: a perceptual model that maintains the
// rule list the cheap blocker runs on.
#ifndef PERCIVAL_SRC_TRAIN_BLOCKLIST_BUILDER_H_
#define PERCIVAL_SRC_TRAIN_BLOCKLIST_BUILDER_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/classifier.h"
#include "src/webgen/sitegen.h"

namespace percival {

struct BlockListBuildConfig {
  int sites = 10;
  int pages_per_site = 2;
  // A host is listed when it served >= min_observations images and the
  // classifier flagged >= ad_rate_threshold of them.
  int min_observations = 3;
  double ad_rate_threshold = 0.8;
};

struct HostObservation {
  int images = 0;
  int flagged = 0;
  double AdRate() const { return images == 0 ? 0.0 : static_cast<double>(flagged) / images; }
};

struct BlockListBuildResult {
  std::vector<std::string> rules;                 // emitted filter-list lines
  std::map<std::string, HostObservation> hosts;   // per-host evidence
  int frames_classified = 0;
};

// Crawls `generator`'s web with `classifier` and derives network rules.
BlockListBuildResult BuildBlockListFromCrawl(const SiteGenerator& generator,
                                             AdClassifier& classifier,
                                             const BlockListBuildConfig& config);

}  // namespace percival

#endif  // PERCIVAL_SRC_TRAIN_BLOCKLIST_BUILDER_H_
