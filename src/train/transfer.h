// Transfer learning (§4.3): the paper initializes Conv1 and the first four
// fire modules from a SqueezeNet pre-trained on ImageNet, then fine-tunes
// on ad data.
//
// ImageNet is not available offline, so pre-training runs on a synthetic
// *pretext task* over procedurally generated imagery (classifying the
// generator family of an image). The learned early-layer features (edges,
// color blobs, stroke detectors) transfer exactly the way the paper uses
// ImageNet features: as a generic visual front-end.
#ifndef PERCIVAL_SRC_TRAIN_TRANSFER_H_
#define PERCIVAL_SRC_TRAIN_TRANSFER_H_

#include "src/core/model.h"
#include "src/crawler/dataset.h"
#include "src/nn/network.h"

namespace percival {

struct PretrainConfig {
  int examples = 400;
  int epochs = 2;
  uint64_t seed = 31;
};

// Builds the pretext dataset: four generator families (landscape, portrait,
// texture, document) relabelled as 2 coarse classes (photographic vs
// synthetic-flat), which trains edge/color front-end features.
Dataset BuildPretextDataset(const PretrainConfig& config);

// Pre-trains a fresh network with `profile` on the pretext task and returns
// it (the "SqueezeNet trained on ImageNet" stand-in).
Network PretrainBackbone(const PercivalNetConfig& profile, const PretrainConfig& config);

// Copies parameters of the first `blocks` conv/fire blocks from
// `pretrained` into `target` (both built from the same profile). The paper
// transfers Convolution 1 and Fire1..Fire4, i.e. blocks = 5.
void InitFromPretrained(Network& target, Network& pretrained, int blocks);

}  // namespace percival

#endif  // PERCIVAL_SRC_TRAIN_TRANSFER_H_
