// Multi-phase crawl-and-retrain pipeline (§4.4.2): bootstrap with the
// EasyList-labelled screenshot crawl, then repeatedly crawl with the
// pipeline crawler (self-labelling with the current model), merge, dedup,
// balance, and retrain — 8 phases in the paper.
#ifndef PERCIVAL_SRC_TRAIN_PHASES_H_
#define PERCIVAL_SRC_TRAIN_PHASES_H_

#include <vector>

#include "src/core/model.h"
#include "src/crawler/pipeline_crawler.h"
#include "src/crawler/screenshot_crawler.h"
#include "src/eval/metrics.h"
#include "src/train/trainer.h"
#include "src/webgen/sitegen.h"

namespace percival {

struct PhasedTrainingConfig {
  int phases = 8;
  int sites_per_phase = 10;
  int pages_per_site = 2;
  TrainConfig train;
  PercivalNetConfig profile;
  uint64_t seed = 2020;
};

struct PhaseOutcome {
  int phase = 0;
  int dataset_size = 0;       // cumulative, after dedup + balance
  int duplicates_removed = 0;
  double holdout_accuracy = 0.0;
  double holdout_f1 = 0.0;
};

struct PhasedTrainingResult {
  Network model;
  std::vector<PhaseOutcome> phases;
};

// Runs the full pipeline; `holdout` measures phase-over-phase improvement.
PhasedTrainingResult RunPhasedTraining(const SiteGenerator& generator,
                                       const FilterEngine& easylist, const Dataset& holdout,
                                       const PhasedTrainingConfig& config);

}  // namespace percival

#endif  // PERCIVAL_SRC_TRAIN_PHASES_H_
