#include "src/train/transfer.h"

#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/train/trainer.h"
#include "src/webgen/contentgen.h"

namespace percival {

Dataset BuildPretextDataset(const PretrainConfig& config) {
  Rng rng(config.seed);
  Dataset dataset;
  for (int i = 0; i < config.examples; ++i) {
    Rng image_rng = rng.Fork();
    ContentImageOptions options;
    const int family = static_cast<int>(rng.NextBelow(4));
    switch (family) {
      case 0:
        options.kind = ContentKind::kLandscape;
        break;
      case 1:
        options.kind = ContentKind::kPortrait;
        break;
      case 2:
        options.kind = ContentKind::kTexture;
        break;
      default:
        options.kind = ContentKind::kDocument;
        break;
    }
    LabeledImage example;
    example.image = GenerateContentImage(image_rng, options);
    // Pretext labels: photographic (landscape/portrait) vs flat
    // (texture/document) — exercises exactly the cue families the ad task
    // later reuses.
    example.is_ad = family >= 2;
    dataset.Add(std::move(example));
  }
  return dataset;
}

Network PretrainBackbone(const PercivalNetConfig& profile, const PretrainConfig& config) {
  Network net = BuildPercivalNet(profile);
  Dataset pretext = BuildPretextDataset(config);
  TrainConfig train_config;
  train_config.epochs = config.epochs;
  train_config.sgd.learning_rate = 0.01f;
  TrainClassifier(net, profile, pretext, train_config);
  return net;
}

void InitFromPretrained(Network& target, Network& pretrained, int blocks) {
  std::vector<Parameter*> dst = target.Parameters();
  std::vector<Parameter*> src = pretrained.Parameters();
  PCHECK_EQ(dst.size(), src.size());
  // Parameter layout: conv1 (2 params) then 6 params per fire module.
  // `blocks` = 1 (conv1) + number of fire modules to transfer.
  size_t params_to_copy = 0;
  if (blocks >= 1) {
    params_to_copy = 2;
    params_to_copy += static_cast<size_t>(std::max(0, blocks - 1)) * 6;
  }
  params_to_copy = std::min(params_to_copy, dst.size());
  for (size_t i = 0; i < params_to_copy; ++i) {
    PCHECK(dst[i]->value.shape() == src[i]->value.shape()) << dst[i]->name;
    dst[i]->value = src[i]->value;
    dst[i]->MarkDirty();
  }
}

}  // namespace percival
