// Training loop for the ad classifier (§4.3): SGD with momentum 0.9,
// learning rate 0.001, batch size 24, step decay x0.1 every 30 epochs.
#ifndef PERCIVAL_SRC_TRAIN_TRAINER_H_
#define PERCIVAL_SRC_TRAIN_TRAINER_H_

#include <vector>

#include "src/core/model.h"
#include "src/crawler/dataset.h"
#include "src/eval/metrics.h"
#include "src/nn/network.h"
#include "src/nn/optimizer.h"

namespace percival {

struct TrainConfig {
  int epochs = 6;
  int batch_size = 24;
  SgdConfig sgd;           // paper defaults (see optimizer.h)
  uint64_t shuffle_seed = 17;
  bool verbose = false;
};

struct EpochStats {
  int epoch = 0;
  float loss = 0.0f;
  double train_accuracy = 0.0;
  float learning_rate = 0.0f;
};

// Trains `net` (built from `config`'s profile) on `dataset` in place.
// Returns per-epoch stats.
std::vector<EpochStats> TrainClassifier(Network& net, const PercivalNetConfig& profile,
                                        const Dataset& dataset, const TrainConfig& config);

// Evaluates `net` on `dataset`; positive class (ad) is class index 1.
ConfusionMatrix EvaluateClassifier(Network& net, const PercivalNetConfig& profile,
                                   const Dataset& dataset, float threshold = 0.5f);

}  // namespace percival

#endif  // PERCIVAL_SRC_TRAIN_TRAINER_H_
