#include "src/train/trainer.h"

#include <numeric>
#include <sstream>

#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/img/resize.h"
#include "src/nn/activation.h"
#include "src/nn/loss.h"

namespace percival {

namespace {

// Packs dataset examples [begin, end) into one batch tensor.
Tensor MakeBatch(const Dataset& dataset, const std::vector<int>& order, int begin, int end,
                 const PercivalNetConfig& profile, std::vector<int>* labels) {
  const int n = end - begin;
  Tensor batch(n, profile.input_size, profile.input_size, profile.input_channels);
  labels->clear();
  for (int i = 0; i < n; ++i) {
    const LabeledImage& example = dataset.example(order[static_cast<size_t>(begin + i)]);
    Tensor one = BitmapToTensor(example.image, profile.input_size, profile.input_channels);
    std::copy(one.data(), one.data() + one.size(), batch.SampleData(i));
    labels->push_back(example.is_ad ? 1 : 0);
  }
  return batch;
}

}  // namespace

std::vector<EpochStats> TrainClassifier(Network& net, const PercivalNetConfig& profile,
                                        const Dataset& dataset, const TrainConfig& config) {
  PCHECK_GT(dataset.size(), 0);
  SgdOptimizer optimizer(net.Parameters(), config.sgd);
  Rng rng(config.shuffle_seed);

  std::vector<int> order(static_cast<size_t>(dataset.size()));
  std::iota(order.begin(), order.end(), 0);

  std::vector<EpochStats> history;
  std::vector<int> labels;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    int correct = 0;
    int batches = 0;
    for (int begin = 0; begin < dataset.size(); begin += config.batch_size) {
      const int end = std::min(begin + config.batch_size, dataset.size());
      Tensor batch = MakeBatch(dataset, order, begin, end, profile, &labels);
      net.ZeroGrads();
      Tensor logits = net.Forward(batch);
      LossResult loss = SoftmaxCrossEntropy(logits, labels);
      net.Backward(loss.grad_logits);
      optimizer.Step();
      epoch_loss += loss.loss;
      correct += loss.correct;
      ++batches;
    }
    optimizer.EndEpoch();

    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = static_cast<float>(epoch_loss / std::max(batches, 1));
    stats.train_accuracy = static_cast<double>(correct) / dataset.size();
    stats.learning_rate = optimizer.current_learning_rate();
    history.push_back(stats);
    if (config.verbose) {
      std::ostringstream line;
      line << "epoch " << epoch << " loss=" << stats.loss
           << " acc=" << TextTable::Percent(stats.train_accuracy);
      LogLine(line.str());
    }
  }
  return history;
}

ConfusionMatrix EvaluateClassifier(Network& net, const PercivalNetConfig& profile,
                                   const Dataset& dataset, float threshold) {
  ConfusionMatrix matrix;
  Softmax softmax;
  for (int i = 0; i < dataset.size(); ++i) {
    const LabeledImage& example = dataset.example(i);
    Tensor input = BitmapToTensor(example.image, profile.input_size, profile.input_channels);
    Tensor probs = softmax.Forward(net.Forward(input));
    const bool predicted_ad = probs.at(0, 0, 0, 1) >= threshold;
    matrix.Record(example.is_ad, predicted_ad);
  }
  return matrix;
}

}  // namespace percival
