#include "src/train/blocklist_builder.h"

#include "src/filter/url.h"
#include "src/renderer/renderer.h"

namespace percival {

namespace {

// Interceptor that tallies classifier verdicts per host without blocking
// (the crawler wants complete pages).
class TallyInterceptor : public ImageInterceptor {
 public:
  TallyInterceptor(AdClassifier& classifier, BlockListBuildResult& result)
      : classifier_(classifier), result_(result) {}

  bool OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                      const std::string& source_url) override {
    (void)info;
    const bool flagged = classifier_.Classify(pixels).is_ad;
    HostObservation& host = result_.hosts[Url::Parse(source_url).host];
    ++host.images;
    host.flagged += flagged ? 1 : 0;
    ++result_.frames_classified;
    return false;
  }

 private:
  AdClassifier& classifier_;
  BlockListBuildResult& result_;
};

}  // namespace

BlockListBuildResult BuildBlockListFromCrawl(const SiteGenerator& generator,
                                             AdClassifier& classifier,
                                             const BlockListBuildConfig& config) {
  BlockListBuildResult result;
  TallyInterceptor interceptor(classifier, result);
  for (int site = 0; site < config.sites; ++site) {
    for (int page_index = 0; page_index < config.pages_per_site; ++page_index) {
      const WebPage page = generator.GeneratePage(site, page_index);
      RenderOptions options;
      options.interceptor = &interceptor;
      options.render_framebuffer = false;
      RenderPage(page, options);
    }
  }
  for (const auto& [host, observation] : result.hosts) {
    if (observation.images >= config.min_observations &&
        observation.AdRate() >= config.ad_rate_threshold) {
      result.rules.push_back("||" + host + "^$third-party");
    }
  }
  return result;
}

}  // namespace percival
