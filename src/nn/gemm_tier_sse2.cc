// The sse2 rung of the runtime kernel ladder. Compiled with this tier's -m
// flags (see CMakeLists.txt); all kernel code lives in gemm_tier_impl.inc.
#define PERCIVAL_TIER_SSE2 1
#define PERCIVAL_TIER_NAMESPACE gemm_tier_sse2
#include "src/nn/gemm_tier_impl.inc"
