// Layer interface for the CNN stack.
//
// Layers own their parameters (value + gradient pair) and cache whatever
// forward-pass state their backward pass needs. The contract is:
//   output = Forward(input)   — caches input-derived state
//   dinput = Backward(doutput) — accumulates into parameter grads
// Backward may only be called after Forward with matching shapes.
#ifndef PERCIVAL_SRC_NN_LAYER_H_
#define PERCIVAL_SRC_NN_LAYER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/nn/tensor.h"

namespace percival {

// Numeric precision of a layer's inference forward pass. kInt8 runs the
// quantized GEMM engine (per-channel int8 weights, per-tensor uint8
// activations, float dequantized outputs); training and backward always use
// float32, which also serves as the parity oracle for the quantized path.
enum class Precision {
  kFloat32,
  kInt8,
};

// Pre-quantized int8 weight codes riding alongside a Parameter's float
// value. Attached by the PCVW v2 deserializer: `value` then holds the
// dequantized floats (scale * code — the training/backward/oracle view)
// while layers with an int8 pack cache (Conv2D) pack these exact codes
// instead of requantizing, so a reloaded model's int8 forward is
// bit-identical to the writer's. Valid only while `version` equals the
// owning Parameter's version: any later mutation (optimizer step, SetWeights,
// another load) strands the payload and the pack cache falls back to
// quantizing the current floats.
struct QuantizedWeights {
  std::vector<int8_t> codes;  // row-major [channels][k] symmetric int8
  std::vector<float> scales;  // per output channel, w ~= scale * code
  uint64_t version = 0;
  // Clamp the codes were quantized under (the writing tier's
  // Int8WeightMax()). The pack cache only consumes the payload while the
  // ACTIVE tier's clamp covers it — a tier cap can narrow the clamp after
  // load, at which point packing falls back to requantizing the floats.
  int weight_max = 64;
};

// A calibrated activation range for one quantized tensor (a conv layer's
// input), observed over a calibration batch. `valid` distinguishes "never
// calibrated" from a genuine [0, 0] range. Serialized as the optional PCVW
// v2 trailer so deployment forwards skip the per-forward MinMaxRange pass.
struct ActivationCalibration {
  float min_value = 0.0f;
  float max_value = 0.0f;
  bool valid = false;
};

// One layer's kernel-plan decision, flattened for logging / bench JSON
// (plain strings + ints so this header stays independent of the GEMM
// engine's types; Conv2D translates its KernelPlan into this shape).
struct KernelPlanRow {
  std::string layer;
  int panel_width = 0;
  bool c_outer = false;
  bool implicit = false;  // plan streams activations in place (no im2col)
  bool int8 = false;
  bool u8_direct = false;  // layer would accept a pre-quantized u8 input
};

// A borrowed view of an already-quantized uint8 activation tensor:
// value ~= scale * (code - zero_point), NHWC codes at `data`. The
// deployment preprocessing path hands this straight to the first conv so
// the int8 classify path never materializes a float staging tensor.
struct QuantizedTensorView {
  const uint8_t* data = nullptr;
  TensorShape shape{};
  float scale = 1.0f;
  int32_t zero_point = 0;
};

// A trainable weight with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  // Monotonic mutation counter for layers that cache derived forms of
  // `value` (e.g. Conv2D's packed GEMM panels persist across forwards and
  // repack only when this moves). Every code path that writes `value` in
  // place — optimizer step, deserialize, transfer — must call MarkDirty().
  uint64_t version = 1;
  // Optional pre-quantized codes for `value` (see QuantizedWeights).
  // shared_ptr keeps Parameter copyable; consumers must check `version`.
  std::shared_ptr<QuantizedWeights> quantized;

  void MarkDirty() { ++version; }
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor Forward(const Tensor& input) = 0;
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  // Train/eval switch. In eval mode (training == false) Forward must not
  // retain backward state — no input copies, no activation masks, no argmax
  // indices — and Backward fails loudly. Outputs are identical in both
  // modes; eval only elides the bookkeeping a frozen deployment never uses.
  // Layers with children must override and propagate.
  virtual void SetTrainingMode(bool training) { training_ = training; }
  bool training() const { return training_; }

  // Selects the inference precision. Layers without a quantized path ignore
  // this; Conv2D (and containers holding convs) honor it on Forward.
  virtual void SetPrecision(Precision precision) { (void)precision; }

  // Kernel planning hook, called by Network::PlanForward with the layer's
  // input shape: layers with shape-sensitive kernel choices (Conv2D's panel
  // width / activation layout) pick their plan here; containers propagate
  // to children with the correct child shapes. Layers without plannable
  // kernels ignore it.
  virtual void PlanKernels(const TensorShape& input) { (void)input; }

  // Appends one row per plannable kernel this layer owns (containers
  // recurse) so benches and logs can record the planner's decisions.
  virtual void AppendKernelPlanRows(std::vector<KernelPlanRow>* out) const { (void)out; }

  // True when this layer can consume a pre-quantized uint8 input tensor
  // directly (Conv2D in int8 eval mode). The deployment wrapper checks the
  // network's FIRST layer and, when eligible, preprocesses bitmaps straight
  // to uint8 codes — no float staging tensor on the int8 classify path.
  virtual bool AcceptsQuantizedInput() const { return false; }

  // Runs the layer over caller-quantized input codes. Only meaningful when
  // AcceptsQuantizedInput(); the default fails loudly.
  virtual Tensor ForwardQuantized(const QuantizedTensorView& input) {
    (void)input;
    PCHECK(false) << Name() << " does not accept quantized input";
    return Tensor();
  }

  // Zero-float dataflow protocol (the requantize-in-epilogue plan chosen by
  // Network::PlanForward). Three roles:
  //   * EMITTERS (int8 convs, fire modules in eval mode) can write their
  //     output directly as uint8 codes under a caller-chosen quantization —
  //     the consumer layer's calibrated input quant — via ForwardToCodes
  //     (float input) / ForwardQuantizedToCodes (code input). `out` receives
  //     OutputShape(input).Elements() dense NHWC codes.
  //   * TRANSFORMS (eval ReLU, MaxPool) are quantization-preserving maps on
  //     codes: quantization is monotone, so max-based ops commute with it
  //     exactly (relu(code) = max(code, zp) because quantize(0) == zp).
  //     ForwardCodes rewrites input codes to output codes under the SAME
  //     (scale, zero_point).
  //   * everything else breaks the code chain and the network falls back to
  //     the float path at that point.
  // Scale/zero-point travel as plain scalars so this header stays
  // independent of the GEMM engine's ActivationQuant. Defaults fail loudly;
  // the planner only routes codes at layers that advertise support.
  virtual bool CanEmitQuantizedCodes() const { return false; }
  virtual void ForwardToCodes(const Tensor& input, float out_scale, int32_t out_zero_point,
                              uint8_t* out) {
    (void)input;
    (void)out_scale;
    (void)out_zero_point;
    (void)out;
    PCHECK(false) << Name() << " cannot emit quantized codes";
  }
  virtual void ForwardQuantizedToCodes(const QuantizedTensorView& input, float out_scale,
                                       int32_t out_zero_point, uint8_t* out) {
    (void)input;
    (void)out_scale;
    (void)out_zero_point;
    (void)out;
    PCHECK(false) << Name() << " cannot emit quantized codes";
  }
  virtual bool SupportsCodeTransform() const { return false; }
  virtual void ForwardCodes(const QuantizedTensorView& input, uint8_t* out) {
    (void)input;
    (void)out;
    PCHECK(false) << Name() << " cannot transform quantized codes";
  }

  // Calibration protocol. Capture mode (SetCalibrationCapture(true) resets
  // any previous range and starts accumulating; false stops and keeps the
  // accumulated range) records each quantized tensor's observed activation
  // range during float forwards. CalibrationSlots / AppendCalibration /
  // ConsumeCalibration walk the ranges in a deterministic layer order so
  // the PCVW v2 trailer can ship them; ConsumeCalibration returns how many
  // entries the layer (and its children) consumed.
  virtual void SetCalibrationCapture(bool capture) { (void)capture; }
  virtual size_t CalibrationSlots() const { return 0; }
  virtual void AppendCalibration(std::vector<ActivationCalibration>* out) const {
    (void)out;
  }
  virtual size_t ConsumeCalibration(const ActivationCalibration* entries, size_t count) {
    (void)entries;
    (void)count;
    return 0;
  }

  // Reports the layer's calibrated input range, when it has one.
  virtual bool InputCalibration(float* min_value, float* max_value) const {
    (void)min_value;
    (void)max_value;
    return false;
  }

  // Human-readable layer description, e.g. "conv3x3/2 3->64".
  virtual std::string Name() const = 0;

  // Mutable views of all trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> Parameters() { return {}; }

  // Output shape for a given input shape, without running the layer.
  virtual TensorShape OutputShape(const TensorShape& input) const = 0;

  // Multiply-accumulate count of one forward pass for the given input shape.
  // Used for the Fig. 3 architecture accounting.
  virtual int64_t ForwardMacs(const TensorShape& input) const { return 0; }

  // Upper bound on the thread-local ScratchArena floats one Forward() call
  // may request for the given input shape. Network::PlanForward() reserves
  // the running maximum across layers up front, so even the first inference
  // after model load never grows the arena.
  virtual size_t ForwardScratchFloats(const TensorShape& input) const { return 0; }

  int64_t ParameterCount() {
    int64_t total = 0;
    for (Parameter* p : Parameters()) {
      total += p->value.size();
    }
    return total;
  }

 protected:
  bool training_ = true;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_LAYER_H_
