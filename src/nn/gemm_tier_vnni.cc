// The vnni rung of the runtime kernel ladder. Compiled with this tier's -m
// flags (see CMakeLists.txt); all kernel code lives in gemm_tier_impl.inc.
#define PERCIVAL_TIER_VNNI 1
#define PERCIVAL_TIER_NAMESPACE gemm_tier_vnni
#include "src/nn/gemm_tier_impl.inc"
