#include "src/nn/fire.h"

#include <algorithm>
#include <sstream>

#include "src/base/logging.h"
#include "src/nn/gemm.h"

namespace percival {

FireModule::FireModule(int in_channels, int squeeze_channels, int expand_channels, Rng& rng,
                       std::string name)
    : squeeze_channels_(squeeze_channels),
      expand_channels_(expand_channels),
      label_(std::move(name)),
      squeeze_(in_channels, squeeze_channels, 1, 1, 0, rng, label_ + ".squeeze"),
      expand1x1_(squeeze_channels, expand_channels, 1, 1, 0, rng, label_ + ".expand1x1"),
      expand3x3_(squeeze_channels, expand_channels, 3, 1, 1, rng, label_ + ".expand3x3") {}

std::string FireModule::Name() const {
  std::ostringstream out;
  out << label_ << " s" << squeeze_channels_ << " e" << expand_channels_ << "+"
      << expand_channels_;
  return out.str();
}

std::vector<Parameter*> FireModule::Parameters() {
  std::vector<Parameter*> params;
  for (Parameter* p : squeeze_.Parameters()) {
    params.push_back(p);
  }
  for (Parameter* p : expand1x1_.Parameters()) {
    params.push_back(p);
  }
  for (Parameter* p : expand3x3_.Parameters()) {
    params.push_back(p);
  }
  return params;
}

TensorShape FireModule::OutputShape(const TensorShape& input) const {
  // 1x1 stride-1 and padded-3x3 stride-1 convolutions preserve spatial size.
  return TensorShape{input.n, input.h, input.w, out_channels()};
}

int64_t FireModule::ForwardMacs(const TensorShape& input) const {
  TensorShape squeezed{input.n, input.h, input.w, squeeze_channels_};
  return squeeze_.ForwardMacs(input) + expand1x1_.ForwardMacs(squeezed) +
         expand3x3_.ForwardMacs(squeezed);
}

size_t FireModule::ForwardScratchFloats(const TensorShape& input) const {
  // The three convs run sequentially and each resets the arena first, so
  // the requirement is the maximum, not the sum.
  const TensorShape squeezed{input.n, input.h, input.w, squeeze_channels_};
  return std::max({squeeze_.ForwardScratchFloats(input),
                   expand1x1_.ForwardScratchFloats(squeezed),
                   expand3x3_.ForwardScratchFloats(squeezed)});
}

void FireModule::set_use_gemm(bool use_gemm) {
  squeeze_.set_use_gemm(use_gemm);
  expand1x1_.set_use_gemm(use_gemm);
  expand3x3_.set_use_gemm(use_gemm);
}

void FireModule::SetTrainingMode(bool training) {
  training_ = training;
  squeeze_.SetTrainingMode(training);
  expand1x1_.SetTrainingMode(training);
  expand3x3_.SetTrainingMode(training);
  squeeze_relu_.SetTrainingMode(training);
  expand_relu_.SetTrainingMode(training);
}

void FireModule::SetPrecision(Precision precision) {
  squeeze_.SetPrecision(precision);
  expand1x1_.SetPrecision(precision);
  expand3x3_.SetPrecision(precision);
}

void FireModule::PlanKernels(const TensorShape& input) {
  const TensorShape squeezed{input.n, input.h, input.w, squeeze_channels_};
  squeeze_.PlanKernels(input);
  expand1x1_.PlanKernels(squeezed);
  expand3x3_.PlanKernels(squeezed);
}

void FireModule::AppendKernelPlanRows(std::vector<KernelPlanRow>* out) const {
  squeeze_.AppendKernelPlanRows(out);
  expand1x1_.AppendKernelPlanRows(out);
  expand3x3_.AppendKernelPlanRows(out);
}

void FireModule::SetCalibrationCapture(bool capture) {
  squeeze_.SetCalibrationCapture(capture);
  expand1x1_.SetCalibrationCapture(capture);
  expand3x3_.SetCalibrationCapture(capture);
}

void FireModule::AppendCalibration(std::vector<ActivationCalibration>* out) const {
  squeeze_.AppendCalibration(out);
  expand1x1_.AppendCalibration(out);
  expand3x3_.AppendCalibration(out);
}

size_t FireModule::ConsumeCalibration(const ActivationCalibration* entries, size_t count) {
  // Clamp after every child: `count - consumed` is size_t arithmetic, so a
  // child overreporting its take (or any future drift between slot counts)
  // would wrap the remaining count to ~2^64 and hand the next child a wild
  // pointer range. A truncated trailer (count < 3) stops cleanly instead.
  size_t consumed = std::min(squeeze_.ConsumeCalibration(entries, count), count);
  consumed += std::min(expand1x1_.ConsumeCalibration(entries + consumed, count - consumed),
                       count - consumed);
  consumed += std::min(expand3x3_.ConsumeCalibration(entries + consumed, count - consumed),
                       count - consumed);
  return consumed;
}

bool FireModule::AcceptsQuantizedInput() const {
  return use_fused_ && squeeze_.AcceptsQuantizedInput() && expand1x1_.AcceptsQuantizedInput() &&
         expand3x3_.AcceptsQuantizedInput();
}

bool FireModule::QuantizedSqueezeHop(ActivationQuant* hop_quant) const {
  float min1 = 0.0f, max1 = 0.0f, min2 = 0.0f, max2 = 0.0f;
  if (!expand1x1_.InputCalibration(&min1, &max1) ||
      !expand3x3_.InputCalibration(&min2, &max2)) {
    return false;
  }
  if (min1 != min2 || max1 != max2) {
    return false;
  }
  *hop_quant = ComputeActivationQuant(min1, max1);
  return true;
}

Tensor FireModule::ForwardQuantized(const QuantizedTensorView& input) {
  PCHECK(AcceptsQuantizedInput()) << Name() << " cannot run quantized";
  const TensorShape out_shape = OutputShape(input.shape);
  const TensorShape squeezed_shape{input.shape.n, input.shape.h, input.shape.w,
                                   squeeze_channels_};
  Tensor joined(out_shape);
  const int64_t ldc = out_shape.c;
  const int64_t sample_stride = static_cast<int64_t>(out_shape.h) * out_shape.w * ldc;
  const int64_t squeezed_stride =
      static_cast<int64_t>(squeezed_shape.h) * squeezed_shape.w * squeeze_channels_;
  ActivationQuant hop;
  if (QuantizedSqueezeHop(&hop)) {
    squeezed_codes_.resize(static_cast<size_t>(squeezed_shape.Elements()));
    squeeze_.ForwardQuantizedIntoU8(input, GemmEpilogue::kBiasRelu, hop,
                                    squeezed_codes_.data(), squeeze_channels_, squeezed_stride);
    QuantizedTensorView squeezed{squeezed_codes_.data(), squeezed_shape, hop.scale,
                                 hop.zero_point};
    expand1x1_.ForwardQuantizedInto(squeezed, GemmEpilogue::kBiasRelu, joined.data(), ldc,
                                    sample_stride);
    expand3x3_.ForwardQuantizedInto(squeezed, GemmEpilogue::kBiasRelu,
                                    joined.data() + expand_channels_, ldc, sample_stride);
  } else {
    Tensor squeezed(squeezed_shape);
    squeeze_.ForwardQuantizedInto(input, GemmEpilogue::kBiasRelu, squeezed.data(),
                                  squeeze_channels_, squeezed_stride);
    expand1x1_.ForwardInto(squeezed, GemmEpilogue::kBiasRelu, joined.data(), ldc,
                           sample_stride);
    expand3x3_.ForwardInto(squeezed, GemmEpilogue::kBiasRelu,
                           joined.data() + expand_channels_, ldc, sample_stride);
  }
  return joined;
}

void FireModule::ForwardToCodes(const Tensor& input, float out_scale, int32_t out_zero_point,
                                uint8_t* out) {
  PCHECK(AcceptsQuantizedInput()) << Name() << " cannot emit quantized codes";
  const TensorShape out_shape = OutputShape(input.shape());
  const TensorShape squeezed_shape{input.shape().n, input.shape().h, input.shape().w,
                                   squeeze_channels_};
  const ActivationQuant out_quant{out_scale, out_zero_point};
  const int64_t ldc = out_shape.c;
  const int64_t sample_stride = static_cast<int64_t>(out_shape.h) * out_shape.w * ldc;
  const int64_t squeezed_stride =
      static_cast<int64_t>(squeezed_shape.h) * squeezed_shape.w * squeeze_channels_;
  ActivationQuant hop;
  if (QuantizedSqueezeHop(&hop)) {
    squeezed_codes_.resize(static_cast<size_t>(squeezed_shape.Elements()));
    squeeze_.ForwardIntoU8(input, GemmEpilogue::kBiasRelu, hop, squeezed_codes_.data(),
                           squeeze_channels_, squeezed_stride);
    QuantizedTensorView squeezed{squeezed_codes_.data(), squeezed_shape, hop.scale,
                                 hop.zero_point};
    expand1x1_.ForwardQuantizedIntoU8(squeezed, GemmEpilogue::kBiasRelu, out_quant, out, ldc,
                                      sample_stride);
    expand3x3_.ForwardQuantizedIntoU8(squeezed, GemmEpilogue::kBiasRelu, out_quant,
                                      out + expand_channels_, ldc, sample_stride);
  } else {
    Tensor squeezed = squeeze_.ForwardFused(input, GemmEpilogue::kBiasRelu);
    expand1x1_.ForwardIntoU8(squeezed, GemmEpilogue::kBiasRelu, out_quant, out, ldc,
                             sample_stride);
    expand3x3_.ForwardIntoU8(squeezed, GemmEpilogue::kBiasRelu, out_quant,
                             out + expand_channels_, ldc, sample_stride);
  }
}

void FireModule::ForwardQuantizedToCodes(const QuantizedTensorView& input, float out_scale,
                                         int32_t out_zero_point, uint8_t* out) {
  PCHECK(AcceptsQuantizedInput()) << Name() << " cannot emit quantized codes";
  const TensorShape out_shape = OutputShape(input.shape);
  const TensorShape squeezed_shape{input.shape.n, input.shape.h, input.shape.w,
                                   squeeze_channels_};
  const ActivationQuant out_quant{out_scale, out_zero_point};
  const int64_t ldc = out_shape.c;
  const int64_t sample_stride = static_cast<int64_t>(out_shape.h) * out_shape.w * ldc;
  const int64_t squeezed_stride =
      static_cast<int64_t>(squeezed_shape.h) * squeezed_shape.w * squeeze_channels_;
  ActivationQuant hop;
  if (QuantizedSqueezeHop(&hop)) {
    squeezed_codes_.resize(static_cast<size_t>(squeezed_shape.Elements()));
    squeeze_.ForwardQuantizedIntoU8(input, GemmEpilogue::kBiasRelu, hop,
                                    squeezed_codes_.data(), squeeze_channels_, squeezed_stride);
    QuantizedTensorView squeezed{squeezed_codes_.data(), squeezed_shape, hop.scale,
                                 hop.zero_point};
    expand1x1_.ForwardQuantizedIntoU8(squeezed, GemmEpilogue::kBiasRelu, out_quant, out, ldc,
                                      sample_stride);
    expand3x3_.ForwardQuantizedIntoU8(squeezed, GemmEpilogue::kBiasRelu, out_quant,
                                      out + expand_channels_, ldc, sample_stride);
  } else {
    Tensor squeezed(squeezed_shape);
    squeeze_.ForwardQuantizedInto(input, GemmEpilogue::kBiasRelu, squeezed.data(),
                                  squeeze_channels_, squeezed_stride);
    expand1x1_.ForwardIntoU8(squeezed, GemmEpilogue::kBiasRelu, out_quant, out, ldc,
                             sample_stride);
    expand3x3_.ForwardIntoU8(squeezed, GemmEpilogue::kBiasRelu, out_quant,
                             out + expand_channels_, ldc, sample_stride);
  }
}

Tensor FireModule::Forward(const Tensor& input) {
  if (use_fused_ && squeeze_.use_gemm() && expand1x1_.use_gemm() && expand3x3_.use_gemm()) {
    // Squeeze + ReLU in one GEMM pass; the mask Backward() needs is
    // recovered from the post-activation output (exactly equal to the
    // pre-activation sign mask).
    Tensor squeezed = squeeze_.ForwardFused(input, GemmEpilogue::kBiasRelu);
    squeeze_relu_.SetMaskFromOutput(squeezed);

    // Each expand branch writes relu(conv + bias) straight into its
    // channel-half of the concat tensor: no expand intermediates, no
    // interleave copy, no separate ReLU sweep.
    const TensorShape out_shape = OutputShape(input.shape());
    Tensor joined(out_shape);
    const int64_t ldc = out_shape.c;
    const int64_t sample_stride = static_cast<int64_t>(out_shape.h) * out_shape.w * ldc;
    expand1x1_.ForwardInto(squeezed, GemmEpilogue::kBiasRelu, joined.data(), ldc,
                           sample_stride);
    expand3x3_.ForwardInto(squeezed, GemmEpilogue::kBiasRelu,
                           joined.data() + expand_channels_, ldc, sample_stride);
    expand_relu_.SetMaskFromOutput(joined);
    return joined;
  }
  return ForwardReference(input);
}

Tensor FireModule::ForwardReference(const Tensor& input) {
  Tensor squeezed = squeeze_relu_.Forward(squeeze_.Forward(input));
  Tensor left = expand1x1_.Forward(squeezed);
  Tensor right = expand3x3_.Forward(squeezed);
  PCHECK(left.shape() == right.shape());

  // Concatenate along channels, then apply ReLU over the joined tensor.
  TensorShape out_shape = OutputShape(input.shape());
  Tensor joined(out_shape);
  const int e = expand_channels_;
  const int64_t pixels = static_cast<int64_t>(out_shape.n) * out_shape.h * out_shape.w;
  for (int64_t p = 0; p < pixels; ++p) {
    float* dst = joined.data() + p * 2 * e;
    const float* l = left.data() + p * e;
    const float* r = right.data() + p * e;
    for (int c = 0; c < e; ++c) {
      dst[c] = l[c];
      dst[e + c] = r[c];
    }
  }
  return expand_relu_.Forward(joined);
}

Tensor FireModule::Backward(const Tensor& grad_output) {
  PCHECK(training_) << Name() << " Backward called in eval mode";
  Tensor grad_joined = expand_relu_.Backward(grad_output);

  const int e = expand_channels_;
  const TensorShape& shape = grad_joined.shape();
  Tensor grad_left(shape.n, shape.h, shape.w, e);
  Tensor grad_right(shape.n, shape.h, shape.w, e);
  const int64_t pixels = static_cast<int64_t>(shape.n) * shape.h * shape.w;
  for (int64_t p = 0; p < pixels; ++p) {
    const float* src = grad_joined.data() + p * 2 * e;
    float* l = grad_left.data() + p * e;
    float* r = grad_right.data() + p * e;
    for (int c = 0; c < e; ++c) {
      l[c] = src[c];
      r[c] = src[e + c];
    }
  }

  Tensor grad_squeezed = expand1x1_.Backward(grad_left);
  grad_squeezed.Add(expand3x3_.Backward(grad_right));
  return squeeze_.Backward(squeeze_relu_.Backward(grad_squeezed));
}

}  // namespace percival
