#include "src/nn/fire.h"

#include <algorithm>
#include <sstream>

#include "src/base/logging.h"
#include "src/nn/gemm.h"

namespace percival {

FireModule::FireModule(int in_channels, int squeeze_channels, int expand_channels, Rng& rng,
                       std::string name)
    : squeeze_channels_(squeeze_channels),
      expand_channels_(expand_channels),
      label_(std::move(name)),
      squeeze_(in_channels, squeeze_channels, 1, 1, 0, rng, label_ + ".squeeze"),
      expand1x1_(squeeze_channels, expand_channels, 1, 1, 0, rng, label_ + ".expand1x1"),
      expand3x3_(squeeze_channels, expand_channels, 3, 1, 1, rng, label_ + ".expand3x3") {}

std::string FireModule::Name() const {
  std::ostringstream out;
  out << label_ << " s" << squeeze_channels_ << " e" << expand_channels_ << "+"
      << expand_channels_;
  return out.str();
}

std::vector<Parameter*> FireModule::Parameters() {
  std::vector<Parameter*> params;
  for (Parameter* p : squeeze_.Parameters()) {
    params.push_back(p);
  }
  for (Parameter* p : expand1x1_.Parameters()) {
    params.push_back(p);
  }
  for (Parameter* p : expand3x3_.Parameters()) {
    params.push_back(p);
  }
  return params;
}

TensorShape FireModule::OutputShape(const TensorShape& input) const {
  // 1x1 stride-1 and padded-3x3 stride-1 convolutions preserve spatial size.
  return TensorShape{input.n, input.h, input.w, out_channels()};
}

int64_t FireModule::ForwardMacs(const TensorShape& input) const {
  TensorShape squeezed{input.n, input.h, input.w, squeeze_channels_};
  return squeeze_.ForwardMacs(input) + expand1x1_.ForwardMacs(squeezed) +
         expand3x3_.ForwardMacs(squeezed);
}

size_t FireModule::ForwardScratchFloats(const TensorShape& input) const {
  // The three convs run sequentially and each resets the arena first, so
  // the requirement is the maximum, not the sum.
  const TensorShape squeezed{input.n, input.h, input.w, squeeze_channels_};
  return std::max({squeeze_.ForwardScratchFloats(input),
                   expand1x1_.ForwardScratchFloats(squeezed),
                   expand3x3_.ForwardScratchFloats(squeezed)});
}

void FireModule::set_use_gemm(bool use_gemm) {
  squeeze_.set_use_gemm(use_gemm);
  expand1x1_.set_use_gemm(use_gemm);
  expand3x3_.set_use_gemm(use_gemm);
}

void FireModule::SetTrainingMode(bool training) {
  training_ = training;
  squeeze_.SetTrainingMode(training);
  expand1x1_.SetTrainingMode(training);
  expand3x3_.SetTrainingMode(training);
  squeeze_relu_.SetTrainingMode(training);
  expand_relu_.SetTrainingMode(training);
}

void FireModule::SetPrecision(Precision precision) {
  squeeze_.SetPrecision(precision);
  expand1x1_.SetPrecision(precision);
  expand3x3_.SetPrecision(precision);
}

void FireModule::PlanKernels(const TensorShape& input) {
  const TensorShape squeezed{input.n, input.h, input.w, squeeze_channels_};
  squeeze_.PlanKernels(input);
  expand1x1_.PlanKernels(squeezed);
  expand3x3_.PlanKernels(squeezed);
}

void FireModule::AppendKernelPlanRows(std::vector<KernelPlanRow>* out) const {
  squeeze_.AppendKernelPlanRows(out);
  expand1x1_.AppendKernelPlanRows(out);
  expand3x3_.AppendKernelPlanRows(out);
}

void FireModule::SetCalibrationCapture(bool capture) {
  squeeze_.SetCalibrationCapture(capture);
  expand1x1_.SetCalibrationCapture(capture);
  expand3x3_.SetCalibrationCapture(capture);
}

void FireModule::AppendCalibration(std::vector<ActivationCalibration>* out) const {
  squeeze_.AppendCalibration(out);
  expand1x1_.AppendCalibration(out);
  expand3x3_.AppendCalibration(out);
}

size_t FireModule::ConsumeCalibration(const ActivationCalibration* entries, size_t count) {
  size_t consumed = squeeze_.ConsumeCalibration(entries, count);
  consumed += expand1x1_.ConsumeCalibration(entries + consumed, count - consumed);
  consumed += expand3x3_.ConsumeCalibration(entries + consumed, count - consumed);
  return consumed;
}

Tensor FireModule::Forward(const Tensor& input) {
  if (use_fused_ && squeeze_.use_gemm() && expand1x1_.use_gemm() && expand3x3_.use_gemm()) {
    // Squeeze + ReLU in one GEMM pass; the mask Backward() needs is
    // recovered from the post-activation output (exactly equal to the
    // pre-activation sign mask).
    Tensor squeezed = squeeze_.ForwardFused(input, GemmEpilogue::kBiasRelu);
    squeeze_relu_.SetMaskFromOutput(squeezed);

    // Each expand branch writes relu(conv + bias) straight into its
    // channel-half of the concat tensor: no expand intermediates, no
    // interleave copy, no separate ReLU sweep.
    const TensorShape out_shape = OutputShape(input.shape());
    Tensor joined(out_shape);
    const int64_t ldc = out_shape.c;
    const int64_t sample_stride = static_cast<int64_t>(out_shape.h) * out_shape.w * ldc;
    expand1x1_.ForwardInto(squeezed, GemmEpilogue::kBiasRelu, joined.data(), ldc,
                           sample_stride);
    expand3x3_.ForwardInto(squeezed, GemmEpilogue::kBiasRelu,
                           joined.data() + expand_channels_, ldc, sample_stride);
    expand_relu_.SetMaskFromOutput(joined);
    return joined;
  }
  return ForwardReference(input);
}

Tensor FireModule::ForwardReference(const Tensor& input) {
  Tensor squeezed = squeeze_relu_.Forward(squeeze_.Forward(input));
  Tensor left = expand1x1_.Forward(squeezed);
  Tensor right = expand3x3_.Forward(squeezed);
  PCHECK(left.shape() == right.shape());

  // Concatenate along channels, then apply ReLU over the joined tensor.
  TensorShape out_shape = OutputShape(input.shape());
  Tensor joined(out_shape);
  const int e = expand_channels_;
  const int64_t pixels = static_cast<int64_t>(out_shape.n) * out_shape.h * out_shape.w;
  for (int64_t p = 0; p < pixels; ++p) {
    float* dst = joined.data() + p * 2 * e;
    const float* l = left.data() + p * e;
    const float* r = right.data() + p * e;
    for (int c = 0; c < e; ++c) {
      dst[c] = l[c];
      dst[e + c] = r[c];
    }
  }
  return expand_relu_.Forward(joined);
}

Tensor FireModule::Backward(const Tensor& grad_output) {
  PCHECK(training_) << Name() << " Backward called in eval mode";
  Tensor grad_joined = expand_relu_.Backward(grad_output);

  const int e = expand_channels_;
  const TensorShape& shape = grad_joined.shape();
  Tensor grad_left(shape.n, shape.h, shape.w, e);
  Tensor grad_right(shape.n, shape.h, shape.w, e);
  const int64_t pixels = static_cast<int64_t>(shape.n) * shape.h * shape.w;
  for (int64_t p = 0; p < pixels; ++p) {
    const float* src = grad_joined.data() + p * 2 * e;
    float* l = grad_left.data() + p * e;
    float* r = grad_right.data() + p * e;
    for (int c = 0; c < e; ++c) {
      l[c] = src[c];
      r[c] = src[e + c];
    }
  }

  Tensor grad_squeezed = expand1x1_.Backward(grad_left);
  grad_squeezed.Add(expand3x3_.Backward(grad_right));
  return squeeze_.Backward(squeeze_relu_.Backward(grad_squeezed));
}

}  // namespace percival
