// Binary weight serialization.
//
// Format: magic "PCVW", version, parameter count, then for each parameter its
// name, shape, and raw float32 data. Loading validates names and shapes
// against the destination network, so a profile mismatch fails loudly.
#ifndef PERCIVAL_SRC_NN_SERIALIZE_H_
#define PERCIVAL_SRC_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "src/nn/network.h"

namespace percival {

// Serializes all parameters of `net` into a byte buffer.
std::vector<uint8_t> SerializeWeights(Network& net);

// Restores parameters into `net`. Returns false (leaving `net` unspecified)
// on any structural mismatch or truncation.
bool DeserializeWeights(Network& net, const std::vector<uint8_t>& bytes);

// File helpers. Return false on I/O failure.
bool SaveWeightsToFile(Network& net, const std::string& path);
bool LoadWeightsFromFile(Network& net, const std::string& path);

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_SERIALIZE_H_
