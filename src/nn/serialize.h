// Binary weight serialization (PCVW format, versions 1 and 2).
//
// v1 — float32 training checkpoint: magic "PCVW", version, parameter count,
// then per parameter its name, shape, and raw float32 data.
//
// v2 — int8 deployment artifact (~4x smaller): same magic, version 2, plus
// the weight-code clamp (Int8WeightMax() of the writing tier) and a
// manifest hash over the ordered (name, shape) parameter sequence — v2
// records carry no per-record names or shapes, so an architecture mismatch
// is rejected on the hash before any record parses and a hostile file
// controls no allocation size. Conv weight records carry per-output-channel
// symmetric int8 codes + one float scale per channel (quantized by the same
// QuantizeWeightRow the pack-time path uses); biases and any non-conv
// parameter stay raw float32. Loading a v2 file reconstructs the float
// values by dequantizing (scale * code) and
// attaches the exact codes to each Parameter as a QuantizedWeights payload,
// which Conv2D's int8 pack cache consumes directly — so int8 inference from
// a reloaded artifact is bit-identical to quantizing the original floats at
// pack time. If the file's recorded clamp exceeds the ACTIVE tier's (a ±127
// VNNI artifact on a maddubs-only host, or under a SetSimdTierCap), the
// payload is dropped and the pack
// cache requantizes the dequantized floats under the local clamp instead —
// degraded precision, never a saturating kernel.
//
// DeserializeWeights reads either version, validates names and shapes
// against the destination network (a profile mismatch fails loudly), and is
// atomic: the entire buffer is parsed and validated into staging storage
// before any parameter is touched, so a corrupt or truncated file leaves
// the network exactly as it was.
#ifndef PERCIVAL_SRC_NN_SERIALIZE_H_
#define PERCIVAL_SRC_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "src/nn/network.h"

namespace percival {

// Serializes all parameters of `net` as a v1 float32 checkpoint.
std::vector<uint8_t> SerializeWeights(Network& net);

// Serializes `net` as a v2 int8 artifact: conv weights as per-channel int8
// codes + scales under the active tier's Int8WeightMax() contract, everything
// else float32. Quantization is lossy — keep the v1 checkpoint for
// training; ship v2.
//
// When every quantized tensor in `net` carries a calibrated activation
// range (run a calibration batch under Network::SetCalibrationCapture(true)
// first), the artifact additionally ends in an optional calibration
// trailer: tag 0xC1, a u32 entry count (must equal the destination
// network's calibration-slot walk), then (min, max) float pairs in layer
// order. Loading a trailer restores each conv's input calibration, so
// deployment int8 forwards skip the per-forward MinMaxRange pass; v2 files
// without the trailer still load and fall back to the scan.
std::vector<uint8_t> SerializeWeightsInt8(Network& net);

// Restores parameters into `net` from a v1 or v2 buffer. Returns false on
// any structural mismatch, truncation, or corruption — in which case `net`
// is left completely untouched (no partially applied records).
bool DeserializeWeights(Network& net, const std::vector<uint8_t>& bytes);

// File helpers. Return false on I/O failure (the loaders also on parse
// failure, leaving `net` untouched).
bool SaveWeightsToFile(Network& net, const std::string& path);
bool SaveWeightsToFileInt8(Network& net, const std::string& path);
bool LoadWeightsFromFile(Network& net, const std::string& path);

// Reads just the PCVW header out of an in-memory buffer: 1 for a float
// checkpoint, 2 for an int8 artifact, 0 when not PCVW. Lets deployment
// wrappers pick the inference engine an artifact was built for without
// relying on whether its payloads survived the clamp-compatibility check.
// Deliberately buffer-only: peek the same bytes you deserialize (re-opening
// the file to sniff would race a concurrent artifact swap).
int PeekWeightsVersion(const std::vector<uint8_t>& bytes);

// Reads a whole file into `bytes` (binary). Returns false on I/O failure.
bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* bytes);

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_SERIALIZE_H_
