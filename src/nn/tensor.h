// A dense float tensor in NHWC layout.
//
// This is the single numeric container used by the whole CNN stack: feature
// maps, weights, gradients. Layout is row-major (n, h, w, c) with `c` fastest,
// matching the im2col/gemm kernels in ops.cc.
#ifndef PERCIVAL_SRC_NN_TENSOR_H_
#define PERCIVAL_SRC_NN_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace percival {

// Shape of a 4-D tensor. For 2-D data (e.g. logits) use {n, 1, 1, c}.
struct TensorShape {
  int n = 0;
  int h = 0;
  int w = 0;
  int c = 0;

  int64_t Elements() const {
    return static_cast<int64_t>(n) * h * w * c;
  }
  bool operator==(const TensorShape& other) const = default;
  std::string ToString() const;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(const TensorShape& shape);
  Tensor(int n, int h, int w, int c);

  const TensorShape& shape() const { return shape_; }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int n, int h, int w, int c);
  float at(int n, int h, int w, int c) const;

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  // Pointer to the start of sample `n`'s (h, w, c) block.
  float* SampleData(int n);
  const float* SampleData(int n) const;
  int64_t SampleElements() const { return static_cast<int64_t>(shape_.h) * shape_.w * shape_.c; }

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  // Reinterprets the buffer with a new shape of identical element count.
  void Reshape(const TensorShape& shape);

  // Elementwise helpers used by the optimizer.
  void Add(const Tensor& other);
  void Scale(float factor);

  // Returns the index of the maximum element within sample n's flattened
  // (h*w*c) block — used for classification argmax.
  int ArgMaxInSample(int n) const;

  // Sum / min / max over all elements (diagnostics and tests).
  float Sum() const;
  float Min() const;
  float Max() const;

 private:
  TensorShape shape_;
  std::vector<float> data_;
};

// Process-wide counters over every sized Tensor construction (the only
// place float activation storage is allocated). The zero-float dataflow
// tests snapshot them around a steady-state forward to prove how many
// float tensors — and how many float elements — a frame actually touches.
struct TensorAllocStats {
  uint64_t constructions = 0;  // sized Tensor constructors run
  uint64_t elements = 0;       // total float elements across them
};
TensorAllocStats GetTensorAllocStats();

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_TENSOR_H_
