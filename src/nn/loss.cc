#include "src/nn/loss.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"

namespace percival {

LossResult SoftmaxCrossEntropy(const Tensor& logits, const std::vector<int>& labels) {
  const int n = logits.shape().n;
  const int classes = logits.shape().c;
  PCHECK_EQ(static_cast<size_t>(n), labels.size());
  PCHECK_EQ(logits.shape().h, 1);
  PCHECK_EQ(logits.shape().w, 1);

  LossResult result;
  result.grad_logits = Tensor(logits.shape());
  double total_loss = 0.0;
  for (int i = 0; i < n; ++i) {
    const float* row = logits.SampleData(i);
    float* grad = result.grad_logits.SampleData(i);
    const int label = labels[static_cast<size_t>(i)];
    PCHECK_GE(label, 0);
    PCHECK_LT(label, classes);

    const float max_value = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (int c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(row[c] - max_value));
    }
    int argmax = 0;
    for (int c = 0; c < classes; ++c) {
      const double p = std::exp(static_cast<double>(row[c] - max_value)) / denom;
      grad[c] = static_cast<float>((p - (c == label ? 1.0 : 0.0)) / n);
      if (row[c] > row[argmax]) {
        argmax = c;
      }
    }
    if (argmax == label) {
      ++result.correct;
    }
    const double p_label = std::exp(static_cast<double>(row[label] - max_value)) / denom;
    total_loss += -std::log(std::max(p_label, 1e-12));
  }
  result.loss = static_cast<float>(total_loss / n);
  return result;
}

}  // namespace percival
