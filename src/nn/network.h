// Sequential network container.
#ifndef PERCIVAL_SRC_NN_NETWORK_H_
#define PERCIVAL_SRC_NN_NETWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/gemm.h"
#include "src/nn/layer.h"

namespace percival {

class Network {
 public:
  Network() = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  // Appends a layer; returns a reference to it for further configuration.
  template <typename LayerType, typename... Args>
  LayerType& Add(Args&&... args) {
    auto layer = std::make_unique<LayerType>(std::forward<Args>(args)...);
    LayerType& ref = *layer;
    AddLayer(std::move(layer));
    return ref;
  }

  void AddLayer(std::unique_ptr<Layer> layer) {
    // Late-added layers inherit the network's current mode and precision.
    layer->SetTrainingMode(training_);
    layer->SetPrecision(precision_);
    layers_.push_back(std::move(layer));
    planned_ = false;  // the forward plan no longer covers this layer
  }

  // Runs all layers in order. Re-plans the scratch workspace automatically
  // when the input shape differs from the last planned one.
  Tensor Forward(const Tensor& input);

  // Runs all layers over a pre-quantized uint8 input: the FIRST layer must
  // accept quantized input (AcceptsQuantizedInput(), i.e. a conv in int8
  // eval mode); the rest of the network runs normally on its float output.
  // This is the deployment path that keeps the int8 classify pipeline free
  // of the float staging tensor.
  Tensor ForwardQuantized(const QuantizedTensorView& input);
  bool AcceptsQuantizedInput() const;

  // Walks the layers once: each layer picks its kernel plan (panel width /
  // activation layout — see Conv2D::PlanKernels) for its actual input
  // shape, then the worst-case per-layer scratch requirement is computed
  // and the *calling thread's* arena reserved up front — so the next
  // Forward() on this thread performs zero arena growth, including the very
  // first inference after model load. Threads that never plan (e.g. pool
  // workers, which see smaller per-chunk buffers) warm their arenas
  // organically as before.
  void PlanForward(const TensorShape& input);

  // The planner's decisions, one row per plannable kernel (for bench JSON)
  // and as a condensed one-line summary (for deployment logs).
  std::vector<KernelPlanRow> CollectKernelPlanRows() const;
  std::string KernelPlanSummary() const;

  // Zero-float dataflow plan, chosen by PlanForward alongside the kernel
  // plans. In int8 eval mode (outside calibration capture, and with the
  // global SetDataflowRequantEnabled knob on) the planner links each
  // code-emitting layer to its downstream consumer: when the layers between
  // them are all code transforms (eval ReLU / MaxPool) and the consumer
  // both accepts quantized input and carries a calibrated input range, the
  // emitter's GEMM epilogue requantizes straight to the consumer's uint8
  // codes and the chain runs through network-owned ping-pong code buffers —
  // no float activation tensor and no per-forward heap allocation between
  // the linked layers. Layers outside a link run the float path unchanged,
  // so uncalibrated models behave exactly as before.
  // RequantLinkCount() reports how many emit links the current plan holds
  // (0 = plan inert, pure float-staged behavior).
  size_t RequantLinkCount() const;
  // Capacity of the ping-pong code buffers in bytes (steady-state assertion
  // hook for tests).
  size_t CodeBufferCapacity() const {
    return code_buffers_[0].capacity() + code_buffers_[1].capacity();
  }

  // Calibration plumbing (see Layer): capture toggling, the deterministic
  // per-layer range walk the PCVW v2 trailer serializes, and its inverse.
  void SetCalibrationCapture(bool capture);
  size_t CalibrationSlots() const;
  std::vector<ActivationCalibration> CollectCalibration() const;
  bool LoadCalibration(const std::vector<ActivationCalibration>& entries);

  // Runs a forward pass but stops after `layer_count` layers; used by
  // Grad-CAM to obtain intermediate feature maps.
  Tensor ForwardUpTo(const Tensor& input, size_t layer_count);

  // Train/eval switch for every layer. In eval mode forwards retain no
  // backward state (no input copies, ReLU masks, or pool argmax capture)
  // and Backward/BackwardFrom fail loudly. Networks start in training mode;
  // deployment wrappers (AdClassifier) switch to eval on construction.
  void SetTrainingMode(bool training);
  bool training() const { return training_; }

  // Sets every layer's inference precision (Precision::kInt8 routes convs
  // through the quantized GEMM engine) and invalidates the forward plan —
  // the quantized path stages activation codes in the arena, so the scratch
  // requirement differs from float.
  void SetPrecision(Precision precision);

  // Propagates `grad_output` back through all layers, accumulating parameter
  // gradients; returns the gradient w.r.t. the network input.
  Tensor Backward(const Tensor& grad_output);

  // Backward through the tail of the network only, starting after layer
  // `layer_index` (i.e. the complement of ForwardUpTo). Grad-CAM support.
  Tensor BackwardFrom(const Tensor& grad_output, size_t layer_index);

  std::vector<Parameter*> Parameters();
  void ZeroGrads();

  int64_t ParameterCount();
  // Model size in bytes assuming float32 storage.
  int64_t ModelBytes() { return ParameterCount() * static_cast<int64_t>(sizeof(float)); }

  // Total forward multiply-accumulates for the given input shape.
  int64_t ForwardMacs(const TensorShape& input) const;

  // Final output shape for the given input shape.
  TensorShape OutputShape(const TensorShape& input) const;

  size_t LayerCount() const { return layers_.size(); }
  Layer& layer(size_t i) { return *layers_[i]; }
  const Layer& layer(size_t i) const { return *layers_[i]; }

  // Multi-line human-readable summary (layer name, output shape, params).
  std::string Summary(const TensorShape& input) const;

 private:
  // One dataflow decision per layer (see RequantLinkCount above). kEmit
  // carries the consumer's quantization; kTransform rewrites codes under
  // the incoming quantization. A consumer needs no marker: it is simply a
  // non-emitting layer reached while codes are live, and the runtime hands
  // it the code view via ForwardQuantized.
  struct DataflowStep {
    enum class Mode { kFloat, kEmit, kTransform };
    Mode mode = Mode::kFloat;
    float scale = 1.0f;
    int32_t zero_point = 0;
    TensorShape out_shape{};
  };

  void PlanDataflow(const std::vector<TensorShape>& input_shapes);
  bool DataflowActive() const;
  // Runs the planned layer walk. Exactly one of `float_in` / `code_in` is
  // non-null: the float entry (Forward) or the u8-direct entry
  // (ForwardQuantized, codes live from layer 0).
  Tensor RunDataflow(const Tensor* float_in, const QuantizedTensorView* code_in);

  std::vector<std::unique_ptr<Layer>> layers_;
  TensorShape planned_shape_{};
  bool planned_ = false;
  bool training_ = true;
  Precision precision_ = Precision::kFloat32;
  bool calibration_capture_ = false;

  std::vector<DataflowStep> dataflow_;
  bool dataflow_enabled_at_plan_ = false;
  GapCodesMode gap_codes_at_plan_ = GapCodesMode::kForceOff;
  // SimdDispatchGeneration() at plan time: a SetSimdTierCap between forwards
  // bumps it, forcing a re-plan (and repack) under the new tier's panel
  // width and weight clamp.
  uint64_t dispatch_generation_at_plan_ = 0;
  // Ping-pong uint8 buffers the code chain alternates through (emitters and
  // transforms never write the buffer they read). Sized once at plan time.
  std::vector<uint8_t> code_buffers_[2];
};

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_NETWORK_H_
