#include "src/nn/activation.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"
#include "src/nn/gemm.h"
#include "src/nn/ops.h"

namespace percival {

Tensor Relu::Forward(const Tensor& input) {
  input_shape_ = input.shape();
  Tensor output(input_shape_);
  if (!training_) {
    // Eval mode: same outputs, no mask sweep or retention.
    mask_.clear();
    InferenceParallelFor(input.size(), 1, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        output[i] = input[i] > 0.0f ? input[i] : 0.0f;
      }
    });
    return output;
  }
  mask_.assign(static_cast<size_t>(input.size()), 0);
  // Memory-bound, so only large feature maps are worth fanning out.
  InferenceParallelFor(input.size(), 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      if (input[i] > 0.0f) {
        output[i] = input[i];
        mask_[static_cast<size_t>(i)] = 1;
      }
    }
  });
  return output;
}

void Relu::SetMaskFromOutput(const Tensor& output) {
  input_shape_ = output.shape();
  if (!training_) {
    mask_.clear();
    return;
  }
  mask_.assign(static_cast<size_t>(output.size()), 0);
  for (int64_t i = 0; i < output.size(); ++i) {
    if (output[i] > 0.0f) {
      mask_[static_cast<size_t>(i)] = 1;
    }
  }
}

void Relu::ForwardCodes(const QuantizedTensorView& input, uint8_t* out) {
  PCHECK(!training_) << "relu ForwardCodes in training mode";
  input_shape_ = input.shape;
  mask_.clear();
  ReluCodes(input.data, input.shape.Elements(), input.zero_point, out);
}

Tensor Relu::Backward(const Tensor& grad_output) {
  PCHECK(training_) << "relu Backward called in eval mode";
  PCHECK_EQ(grad_output.size(), static_cast<int64_t>(mask_.size()));
  Tensor grad_input(input_shape_);
  for (int64_t i = 0; i < grad_output.size(); ++i) {
    if (mask_[static_cast<size_t>(i)]) {
      grad_input[i] = grad_output[i];
    }
  }
  return grad_input;
}

Tensor Softmax::Forward(const Tensor& input) {
  Tensor output(input.shape());
  const int channels = input.shape().c;
  const int64_t rows = input.size() / channels;
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = input.data() + r * channels;
    float* out = output.data() + r * channels;
    float max_value = *std::max_element(in, in + channels);
    float total = 0.0f;
    for (int c = 0; c < channels; ++c) {
      out[c] = std::exp(in[c] - max_value);
      total += out[c];
    }
    for (int c = 0; c < channels; ++c) {
      out[c] /= total;
    }
  }
  if (training_) {
    last_output_ = output;
  } else {
    // Eval drops the retained output (like Relu's mask / MaxPool's argmax)
    // so a later train-mode Backward can never run against stale state.
    last_output_ = Tensor();
  }
  return output;
}

Tensor Softmax::Backward(const Tensor& grad_output) {
  PCHECK(training_) << "softmax Backward called in eval mode";
  PCHECK_EQ(grad_output.size(), last_output_.size());
  Tensor grad_input(last_output_.shape());
  const int channels = last_output_.shape().c;
  const int64_t rows = last_output_.size() / channels;
  for (int64_t r = 0; r < rows; ++r) {
    const float* y = last_output_.data() + r * channels;
    const float* dy = grad_output.data() + r * channels;
    float* dx = grad_input.data() + r * channels;
    float dot = 0.0f;
    for (int c = 0; c < channels; ++c) {
      dot += y[c] * dy[c];
    }
    for (int c = 0; c < channels; ++c) {
      dx[c] = y[c] * (dy[c] - dot);
    }
  }
  return grad_input;
}

}  // namespace percival
