// Register-blocked GEMM engine for the inference hot path.
//
// Convolutions lower to C[M x N] = A[M x K] * B[N x K]^T + bias, where A is
// an im2col patch matrix (M = output pixels, K = kernel*kernel*in_channels)
// and B holds one flattened filter per row (N = out_channels). The engine
// packs B into column-panel form, then walks A in 4x16 (or 4x32) register
// tiles whose inner loop is an explicitly vectorized multiply-accumulate.
// Every SIMD tier is compiled into the binary and the kernel is picked at
// runtime by cpuid detection (see simd.h); large problems split their M
// rows across the shared inference ThreadPool.
//
// The epilogue (bias add, optional ReLU) is folded into the tile store, so
// a fused Conv->ReLU never materializes the pre-activation tensor, and the
// output row stride is a parameter, so a caller can aim the kernel directly
// at a channel slice of a larger tensor (FireModule's concat halves).
//
// A thread-local ScratchArena backs every transient buffer (im2col chunks,
// plus the packed panels of one-shot GemmNT calls), so steady-state
// inference performs zero heap allocation once the arena has warmed up.
// Conv2D's inference packing does NOT live here: its panels persist in a
// per-layer cache across forwards, invalidated by the weight Parameter's
// version counter (see conv.h).
#ifndef PERCIVAL_SRC_NN_GEMM_H_
#define PERCIVAL_SRC_NN_GEMM_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/nn/simd.h"

namespace percival {

class ThreadPool;

// GEMM register-tile geometry. kTileM x kTileN accumulators stay hot
// through the K loop; 4x16 measured fastest of the shapes tried on the
// baseline x86-64 target (4x8, 8x8, 8x16, 4x32 all trailed it in the conv
// micro-bench). The AVX-512 tiers widen the panel to 4x32 — two zmm
// accumulators per row, the same register budget as the AVX2 4x16 tile.
//
// Because every tier is compiled into one binary, the panel width of the
// ACTIVE tier is a runtime value: GemmNativePanelWidth() below returns 32
// when the runtime dispatch resolves to an AVX-512 tier and 16 otherwise.
// kGemmTileNMin / kGemmTileNMax bound it at compile time for buffer sizing.
// The pack and kernel entry points accept either packable width: on the
// AVX-512 tiers a 16-wide pack selects a 4x16 sub-tile (one zmm per row)
// whose K loop does half the panel loads and half the FMA work of the 4x32
// tile — the right shape for layers with <= 16 output channels, where the
// wide panel spends most of its lanes on zero padding. On the 16-native
// tiers a 32-wide pack has no intrinsic tile and runs the scalar fallback
// (correct, slow — it only arises when a tier cap drops the active tier
// below the width an artifact was packed at; planners repack on the next
// plan). The per-layer choice is made by the kernel planner below.
inline constexpr int kGemmTileM = 4;
inline constexpr int kGemmTileNMin = 16;
inline constexpr int kGemmTileNMax = 32;

// Native panel width of the active tier: 32 on the AVX-512 rungs, else 16.
// Follows SetSimdTierCap — capping below avx512 narrows the native width at
// the next plan/pack.
int GemmNativePanelWidth();

// True for the panel widths the kernel ladder can consume (16 and 32).
bool ValidPanelWidth(int width);

// Bump allocator for transient kernel buffers. Alloc() never invalidates
// previously returned pointers (full blocks are retired, not reallocated);
// Reset() recycles all space and coalesces retired blocks so the steady
// state is a single reused slab.
class ScratchArena {
 public:
  float* Alloc(size_t count);
  void Reset();

  // Resets the arena and grows it to at least `count` floats in one slab.
  // Invalidates previously returned pointers (like Reset); used by
  // Network::PlanForward so even the first inference never grows the arena.
  void Reserve(size_t count);

  // Total floats currently reserved (diagnostics / allocation tests).
  size_t CapacityFloats() const;

 private:
  std::vector<float> block_;
  size_t used_ = 0;
  std::vector<std::vector<float>> retired_;
};

// The calling thread's arena. Worker threads in the inference pool each get
// their own, which is what makes concurrent forward passes allocation-free
// without locking.
ScratchArena& LocalArena();

// Process-wide gather/scratch traffic counters (the GetTensorAllocStats of
// the kernel layer). `bytes_gathered` is the total payload the Im2ColRows*
// family copied into scratch since the last reset — the traffic the
// implicit gather policy exists to eliminate; `arena_high_water_bytes` is
// the largest per-arena in-use size any ScratchArena::Alloc reached since
// the last reset. Both are relaxed atomics: exact single-threaded, and
// every copy is counted (never torn) under concurrency.
struct GemmGatherStats {
  uint64_t bytes_gathered = 0;
  uint64_t arena_high_water_bytes = 0;
};
GemmGatherStats GetGemmGatherStats();
void ResetGemmGatherStats();

// Accounting hook for the gather family (ops.cc): adds one gather's payload
// to `bytes_gathered`.
void NoteBytesGathered(uint64_t bytes);

// Process-wide inference execution knobs. The pool is borrowed, not owned:
// callers must clear it (set nullptr) before destroying the pool. A null
// pool (the default) runs every kernel on the calling thread.
void SetInferenceThreadPool(ThreadPool* pool);
ThreadPool* InferenceThreadPool();

// RAII deployment helper: owns a ThreadPool (default: one worker per
// hardware thread) and installs it as the inference pool for its lifetime,
// restoring whatever pool was installed before on destruction.
class ScopedInferencePool {
 public:
  explicit ScopedInferencePool(int num_threads = 0);  // 0 = hardware threads
  ~ScopedInferencePool();
  ScopedInferencePool(const ScopedInferencePool&) = delete;
  ScopedInferencePool& operator=(const ScopedInferencePool&) = delete;

  ThreadPool& pool() { return *pool_; }

 private:
  std::unique_ptr<ThreadPool> pool_;
  ThreadPool* previous_ = nullptr;
};

// Default forward implementation for newly constructed Conv2D layers:
// true = GEMM engine, false = naive per-channel dot products (the oracle
// path the parity tests compare against).
void SetGemmEnabledByDefault(bool enabled);
bool GemmEnabledByDefault();

// When true, the kernel entry points route to the always-compiled scalar
// micro-kernel instead of the active tier's intrinsic one, so a single
// binary can exercise (and benchmark) both paths. The scalar oracle runs at
// the CURRENT tier's panel width and weight clamp — it changes the kernel,
// not the data contract — which is what makes force-scalar parity exact
// under any SetSimdTierCap. Defaults to false.
void SetGemmForceScalar(bool force);
bool GemmForceScalar();

// Name of the float kernel GemmPackedEx dispatches to right now ("avx512",
// "avx2+fma", "sse2", or "scalar"; force-scalar reports "scalar"). Follows
// SetSimdTierCap.
const char* ActiveGemmKernelName();

// Same for the int8 kernel GemmInt8PackedEx dispatches to
// ("avx512vnni-vpdpbusd", "avx512bw-maddubs", "avx2-maddubs",
// "ssse3-maddubs", or "scalar").
const char* ActiveInt8KernelName();

// Logs the detected CPU feature set and the runtime-selected float/int8
// kernels + tile geometry exactly once per process (thread-safe, first
// kernel use; also called by ScopedInferencePool). If a tier cap or
// force-scalar pin overrode detection at log time, the line says so.
void LogSimdPathOnce();

// ------------------------------------------------------- kernel planner --
//
// Per-layer kernel decisions. Every hot-path component consumes a
// KernelPlan instead of a hard-coded choice: the GEMM pack + micro-kernels
// honor the panel width, the im2col gathers and the weight packers honor
// the activation layout, and Conv2D keys its pack caches on (weight
// version, plan) so a plan flip repacks exactly once. Plans are chosen at
// Network::PlanForward time from layer shape + the runtime-active SIMD tier
// (see ChooseConvKernelPlan), and can be pinned globally for A/B
// measurement. A SetSimdTierCap bumps the dispatch generation, which makes
// Network re-plan (and layers repack) under the new tier's width and clamp.

// K-order of an im2col patch row (and of the matching packed filter rows).
//   * kKhKwC — (kh, kw, c): each kernel tap contributes `channels`
//     contiguous floats, the layout NHWC gathers produce naturally.
//   * kCOuter — (c, kh, kw): channel-outer, so a 1x1-dominated network's
//     rare 3x3 layers see each channel's kernel window as one contiguous
//     run. The GEMM is K-order-agnostic (A rows and B rows just have to
//     agree); only the gather and the weight packer change.
enum class ActivationLayout : uint8_t {
  kKhKwC = 0,
  kCOuter = 1,
};

const char* LayoutName(ActivationLayout layout);

// How a conv feeds its patch matrix to the GEMM.
//   * kMaterialize — Im2ColRows gathers every patch row into scratch before
//     the kernel runs (the classic lowering; ~K*K x the activation bytes).
//   * kImplicit — the kernel streams the NHWC activation tensor in place
//     through a per-(output row, kernel tap) offset table; only the padded
//     edge columns are still gathered (see GemmPackedImplicit below).
enum class GatherPolicy : uint8_t {
  kMaterialize = 0,
  kImplicit = 1,
};

const char* GatherPolicyName(GatherPolicy policy);

// Minimum interior-run width (output columns seeing all kw taps in bounds)
// for the kAuto planner to pick kImplicit when the input width is known.
// Equals the widest implicit column tile across tiers (the 16-wide
// sub-panel kernels tile 8 columns); narrower runs spend most of their
// time in per-row edge/remainder paths and lose to the materialized
// whole-image GEMM.
inline constexpr int kImplicitMinInteriorRun = 8;

struct KernelPlan {
  ActivationLayout layout = ActivationLayout::kKhKwC;
  int panel_width = GemmNativePanelWidth();
  GatherPolicy gather = GatherPolicy::kMaterialize;
};

inline bool operator==(const KernelPlan& a, const KernelPlan& b) {
  return a.layout == b.layout && a.panel_width == b.panel_width && a.gather == b.gather;
}
inline bool operator!=(const KernelPlan& a, const KernelPlan& b) { return !(a == b); }

// Global pinning knobs for layout/panel A/B experiments (benches, tests,
// README "how to pin"). 0 / kAuto restore the heuristic. They affect plans
// chosen AFTER the call — re-run PlanKernels (or Network::PlanForward) to
// apply them to existing layers.
void SetPlannerPanelOverride(int width);  // 0 = auto; else 16 or 32
int PlannerPanelOverride();

enum class LayoutPolicy : uint8_t { kAuto = 0, kForceKhKwC = 1, kForceCOuter = 2 };
void SetPlannerLayoutPolicy(LayoutPolicy policy);
LayoutPolicy PlannerLayoutPolicy();

// Gather-policy pin for materialized-vs-implicit A/B experiments. kAuto is
// the heuristic in ChooseConvKernelPlan (implicit for a multi-tap kKhKwC
// conv whose interior run is at least kImplicitMinInteriorRun columns, or of
// unknown width); the force modes pin the plan field, though a forward still falls
// back to the materialized gather when implicit preconditions fail (c-outer
// layout, no interior columns, unaligned int8 K segments).
enum class GatherPolicyMode : uint8_t { kAuto = 0, kForceMaterialize = 1, kForceImplicit = 2 };
void SetPlannerGatherPolicy(GatherPolicyMode mode);
GatherPolicyMode PlannerGatherPolicy();

// The planner heuristic: narrow layers (out_channels <= 16) take the
// 16-wide sub-tile on builds whose native panel is wider — the wide panel
// would spend >= half its lanes on zero padding — and everything else keeps
// the native width. The layout default is kKhKwC: measured on NHWC inputs
// (see BENCH_micro_kernels.json's conv3x3_layout_* rows), the (kh, kw, c)
// gather's contiguous per-tap memcpys beat the strided channel-outer
// gather, so kCOuter stays an explicitly pinned experiment. 1x1 kernels
// normalize to kKhKwC (the two orders coincide).
//
// The gather policy defaults to kImplicit for every multi-tap kKhKwC conv
// whose interior (the output columns where all kw taps are in bounds, given
// stride/pad/in_width) is non-empty: those columns stream straight from the
// NHWC tensor and only the <= pad edge columns per side still gather. 1x1
// kernels keep kMaterialize — they already run gather-free via the identity
// shortcut. `in_width` 0 means "unknown", which assumes a non-degenerate
// interior (the forward re-checks and falls back per shape).
KernelPlan ChooseConvKernelPlan(int out_channels, int kernel, int stride = 1, int pad = 0,
                                int in_width = 0);

// Packs row-major B[N x K] into column panels of `panel_width` filters:
// packed[panel][k][j] = B[(panel*panel_width + j) * K + k], zero-padded
// past N. `packed` must hold PackedPanelFloats(N, K, panel_width) floats.
size_t PackedPanelFloats(int n, int k, int panel_width = GemmNativePanelWidth());
void PackFilterPanels(const float* b, int n, int k, float* packed,
                      int panel_width = GemmNativePanelWidth());

// Post-accumulation transform applied inside the micro-kernel's store, so
// fused layers never materialize a pre-activation intermediate.
enum class GemmEpilogue {
  kNone,      // C = A * B^T             (bias ignored)
  kBias,      // C = A * B^T + bias      (null bias treated as zeros)
  kBiasRelu,  // C = max(0, A * B^T + bias)
};

// Computes C = epilogue(A * B^T + bias) over pre-packed panels. A is
// row-major [M x K] with contiguous rows; output row i starts at c + i*ldc
// (ldc >= n), which lets a caller write into a channel slice of a wider
// tensor. `panel_width` must match the width `packed_b` was packed at.
// Runs on the calling thread.
void GemmPackedEx(int64_t m, int n, int k, const float* a, const float* packed_b,
                  const float* bias, GemmEpilogue epilogue, float* c, int64_t ldc,
                  int panel_width = GemmNativePanelWidth());

// Compatibility wrapper: dense C (ldc == n), bias-only epilogue.
void GemmPackedNT(int64_t m, int n, int k, const float* a, const float* packed_b,
                  const float* bias, float* c);

// ------------------------------------------------ implicit-GEMM conv view --
//
// The implicit path replaces the materialized im2col A matrix with a
// streaming view of one NHWC sample: a (kKhKwC-ordered) patch row for
// output pixel (oh, ow) is `segments` chunks of `seg_len` contiguous
// elements — one per vertical kernel tap — and chunk s of the INTERIOR
// columns (the ones where every horizontal tap is in bounds) lives at
//   base + offsets[oh * segments + s] + (ow - ow_lo) * col_stride.
// A negative offset marks a vertical pad tap (ih out of bounds): the float
// kernels skip it (zero contribution), the u8 kernels read `zero_row`
// (seg_len bytes of the activation zero point, the exact codes a
// materialized gather would have written). The K the packed panels were
// built for must equal segments * seg_len; on the int8 path seg_len must
// additionally be a multiple of kInt8KUnit so K groups never straddle a
// tap boundary (callers fall back to the materialized gather otherwise).
//
// One call covers output rows [oh_begin, oh_end) x the run_w interior
// columns; output for (oh, col) lands at
//   c + (oh - oh_begin) * c_row_stride + col * ldc.
// Edge columns are the caller's job (conv.cc gathers just those through
// the classic Im2ColRows path).
template <typename T>
struct ImplicitConvView {
  const T* base = nullptr;          // one sample's NHWC activation base
  const int64_t* offsets = nullptr; // [out_h * segments], element offsets; < 0 = pad tap
  const T* zero_row = nullptr;      // seg_len pad elements (u8 path only)
  int segments = 0;                 // vertical kernel taps (kernel height)
  int seg_len = 0;                  // kernel_w * channels elements per tap
  int col_stride = 0;               // stride * channels, step between interior columns
  int run_w = 0;                    // interior columns per output row
  int64_t oh_begin = 0;
  int64_t oh_end = 0;
  int64_t c_row_stride = 0;         // output elements between successive oh starts
};
using ImplicitConvViewF = ImplicitConvView<float>;
using ImplicitConvViewU8 = ImplicitConvView<uint8_t>;

// Implicit-GEMM float kernel: same contract as GemmPackedEx (panels,
// epilogue, ldc slicing) with the A matrix replaced by the streaming view.
// Results match the materialized path to the last ulp for finite weights —
// identical per-row accumulation order, identical epilogue.
void GemmPackedImplicit(const ImplicitConvViewF& view, int n, const float* packed_b,
                        const float* bias, GemmEpilogue epilogue, float* c, int64_t ldc,
                        int panel_width = GemmNativePanelWidth());

// ------------------------------------------------- int8 quantized engine --
//
// The quantized path computes C = epilogue(s_a * s_w[j] * (Q_A * Q_B^T -
// zp * rowsum[j]) + bias), where Q_A holds per-tensor asymmetric uint8
// activations (a ~= s_a * (q - zp)) and Q_B per-output-channel symmetric
// int8 weights (w ~= s_w[j] * q). Accumulation is exact int32; dequantize +
// bias + ReLU fold into the store, so the int8 path reuses the same
// GemmEpilogue contract as the float engine.
//
// Weight codes are clamped to [-Int8WeightMax(), Int8WeightMax()], a
// per-tier value baked into the quantization contract:
//   * maddubs tiers (avx512bw / avx2 / ssse3 / their scalar oracle runs)
//     accumulate via pmaddubsw, whose 16-bit pairwise add saturates; 64 is
//     the largest magnitude that provably cannot saturate
//     (2 * 255 * 64 = 32640 <= 32767; 65 would admit 33150).
//   * the VNNI tier (vpdpbusd) sums the four u8*s8 products straight into
//     int32 with no 16-bit intermediate, so it quantizes to the full ±127
//     int8 range — one extra bit of weight precision for free.
// The always-compiled scalar oracle accumulates in wide int32 for ANY code
// magnitude, so SetGemmForceScalar parity stays bit-exact on both tiers:
// against maddubs kernels because ±64 codes make their saturating adds
// exact, against vpdpbusd because both are exact int32 sums. The clamp in
// force at quantization time is recorded in serialized v2 weight files, so
// an artifact quantized under the wider VNNI contract is never fed to a
// saturating kernel — when the ACTIVE tier's clamp is narrower than the
// file's (a ±127 artifact on a maddubs-only host, or under a tier cap), the
// loader drops the quantized payload and requantizes from the dequantized
// floats instead (see serialize.cc).

// Weight-code clamp of the active tier: 127 on the VNNI rung, else 64.
// Follows SetSimdTierCap like GemmNativePanelWidth().
int Int8WeightMax();

// K-dimension packing unit of the int8 panels: pmaddubsw + pmaddwd reduce
// four u8*s8 products into one int32 lane, so K is zero-padded to a
// multiple of 4 and the panel interleaves 4 consecutive K bytes per
// channel: packed[panel][k_group][j][0..3].
inline constexpr int kInt8KUnit = 4;

inline int Int8PaddedK(int k) { return (k + kInt8KUnit - 1) / kInt8KUnit * kInt8KUnit; }

// Per-tensor asymmetric uint8 activation quantization parameters. The
// representable range always includes 0 (zero padding from im2col must be
// exactly encodable), so zero_point lands in [0, 255].
struct ActivationQuant {
  float scale = 1.0f;
  int32_t zero_point = 0;
};

// Derives quantization parameters from an observed activation range.
ActivationQuant ComputeActivationQuant(float min_value, float max_value);

// Vectorized single-pass min/max over `count` floats (the per-forward
// activation range scan). Results are exact — min/max reductions are
// order-independent — and *min_out/*max_out start from 0, matching the
// quantization contract that the range covers 0.
void MinMaxRange(const float* data, int64_t count, float* min_out, float* max_out);

// dst[i] = clamp(round(src[i] / scale) + zero_point, 0, 255).
void QuantizeActivations(const float* src, int64_t count, const ActivationQuant& quant,
                         uint8_t* dst);

// Panel-packed int8 filters plus the per-channel dequantization metadata
// the epilogue needs. `scales` and `row_sums` are padded to the full panel
// width (panels * panel_width) so the vector epilogue loads never run past
// the end; entries beyond `n` are zero. The width the panels were packed at
// travels with the data, so the kernel dispatch needs no extra plumbing.
struct Int8PackedFilters {
  std::vector<int8_t> data;
  std::vector<float> scales;     // w ~= scales[j] * q_w[j][k]
  std::vector<int32_t> row_sums; // sum_k q_w[j][k], for the zero-point term
  int n = 0;
  int k = 0;
  int k_padded = 0;
  int panel_width = kGemmTileNMin;  // set by the packers
};

size_t PackedPanelBytesInt8(int n, int k, int panel_width = GemmNativePanelWidth());

// Quantizes one length-k float filter row to symmetric int8 codes in
// [-Int8WeightMax(), Int8WeightMax()] and returns the scale (w ~= scale * q).
// This is THE weight quantizer: the pack-time path and the v2 serializer
// both call it, which is what makes a serialized-then-reloaded model's int8
// forward bit-identical to the pack-time-quantized one.
float QuantizeWeightRow(const float* row, int k, int8_t* codes);

// Quantizes row-major float B[N x K] per output channel and packs it into
// the interleaved int8 panel layout described above.
void PackFilterPanelsInt8(const float* b, int n, int k, Int8PackedFilters* packed,
                          int panel_width = GemmNativePanelWidth());

// Packs pre-quantized codes (row-major [N x K], e.g. loaded from a PCVW v2
// file) with their per-channel scales into the same panel layout, skipping
// requantization entirely. Codes must already respect the ACTIVE tier's
// Int8WeightMax() clamp — the caller (the v2 deserializer) checks the
// file's recorded clamp against the active tier before taking this path.
void PackQuantizedFilterPanelsInt8(const int8_t* codes, const float* scales, int n, int k,
                                   Int8PackedFilters* packed,
                                   int panel_width = GemmNativePanelWidth());

// Computes C = epilogue(dequant(Q_A * packed) + bias) over pre-quantized A
// rows. Each A row holds `packed.k_padded` uint8 codes (zero-padded K tail;
// the pad value is irrelevant because the packed B tail is zero). Output
// row i starts at c + i*ldc. Runs on the calling thread; honors
// SetGemmForceScalar like the float engine.
void GemmInt8PackedEx(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                      const ActivationQuant& quant, const float* bias, GemmEpilogue epilogue,
                      float* c, int64_t ldc);

// Requantize-in-epilogue variant: identical accumulation and dequantize
// math to GemmInt8PackedEx, but instead of storing the float result, the
// epilogue requantizes it to the CONSUMER's uint8 codes with `out_quant` —
// the same clamp(round(v / scale) + zero_point, 0, 255) map as
// QuantizeActivations — so an int8 conv whose consumer is another int8 conv
// never materializes a float activation tensor. The float value being
// requantized is bit-identical to what GemmInt8PackedEx would have stored
// (same std::fma / hardware-FMA epilogue per tier), so a requantized store
// followed by the consumer equals the float-staged store + a separate
// QuantizeActivations sweep, code for code. Output row i starts at
// c + i*ldc (ldc in uint8 elements).
void GemmInt8PackedExU8(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                        const ActivationQuant& quant, const float* bias,
                        GemmEpilogue epilogue, const ActivationQuant& out_quant, uint8_t* c,
                        int64_t ldc);

// Implicit-GEMM int8 kernels: GemmInt8PackedEx / GemmInt8PackedExU8 with
// the quantized A rows replaced by the streaming u8 view (zero_row must
// hold quant.zero_point bytes). Accumulation is the same exact int32 sums
// over the same codes as the materialized gather, so results are
// BIT-IDENTICAL to it on every tier, both sinks.
void GemmInt8PackedImplicit(const ImplicitConvViewU8& view, const Int8PackedFilters& packed,
                            const ActivationQuant& quant, const float* bias,
                            GemmEpilogue epilogue, float* c, int64_t ldc);
void GemmInt8PackedImplicitU8(const ImplicitConvViewU8& view, const Int8PackedFilters& packed,
                              const ActivationQuant& quant, const float* bias,
                              GemmEpilogue epilogue, const ActivationQuant& out_quant,
                              uint8_t* c, int64_t ldc);

// Master switch for the zero-float dataflow plan. When true (the default),
// Network::PlanForward links adjacent calibrated int8 convs with the
// requantize-in-epilogue store above; false restores the float-staged
// dataflow everywhere (A/B benches, fallback). Takes effect at the next
// PlanForward.
void SetDataflowRequantEnabled(bool enabled);
bool DataflowRequantEnabled();

// Extension of the code domain one layer further: GlobalAvgPool accepts
// quantized input from a calibrated int8 producer and averages the uint8
// codes with int32 accumulation, dequantizing only the per-channel sums —
// so the final conv's requantized store feeds pooling without a float
// activation tensor in between. Logits are no longer bit-identical to the
// staged path (the average is computed in code space), so the link is
// guarded by its own 64-image >= 99% top-1 agreement test
// (tests/nn_requant_test.cc).
//
// kAuto (the default) enables the link exactly when a PCVW v2 calibration
// trailer supplied the GAP slot — i.e. for deployment artifacts whose
// ranges were measured offline, the population the accuracy guard vets —
// and leaves it off for ranges captured live in this process. kForceOff is
// the old default-off behavior (the opt-out); kForceOn links any calibrated
// GAP regardless of where the range came from. Takes effect at the next
// PlanForward.
enum class GapCodesMode : uint8_t { kAuto = 0, kForceOn = 1, kForceOff = 2 };
void SetGapCodesMode(GapCodesMode mode);
GapCodesMode GetGapCodesMode();

// Bool compatibility wrappers: SetGapCodesEnabled maps true/false to
// kForceOn/kForceOff; GapCodesEnabled reports whether the mode is kForceOn.
void SetGapCodesEnabled(bool enabled);
bool GapCodesEnabled();

// Convenience one-shot GEMM: packs `b` (row-major [N x K]) into the local
// arena and multiplies. When `pool` is non-null and the problem is large
// enough, M rows are split across the pool. Resets the calling thread's
// arena — callers must not hold LocalArena() pointers across this call.
void GemmNT(int64_t m, int n, int k, const float* a, const float* b, const float* bias,
            float* c, ThreadPool* pool = nullptr);

// Minimum multiply-accumulate count before a kernel bothers fanning out to
// the thread pool; below this the submit/wake latency dominates.
inline constexpr int64_t kMinMacsPerParallelKernel = 1 << 16;

// Runs fn(begin, end) over [0, total) in contiguous chunks, using the
// inference pool when it is set, the range is large enough, and the caller
// is not already a pool worker (nested fan-out would deadlock the pool's
// fixed workers). `macs_per_item` scales the profitability test.
void InferenceParallelFor(int64_t total, int64_t macs_per_item,
                          const std::function<void(int64_t, int64_t)>& fn);

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_GEMM_H_
