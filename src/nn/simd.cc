#include "src/nn/simd.h"

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace percival {

namespace {

#if defined(__x86_64__) || defined(__i386__)

// XCR0 via xgetbv: which register states the OS saves/restores. Spelled as
// inline asm so this TU needs no -mxsave flag (the instruction only runs
// behind the cpuid OSXSAVE check below).
uint64_t ReadXcr0() {
  uint32_t eax = 0;
  uint32_t edx = 0;
  __asm__ __volatile__(".byte 0x0f, 0x01, 0xd0" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

CpuFeatures Detect() {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) {
    return f;
  }
  f.sse2 = (edx & (1u << 26)) != 0;
  f.ssse3 = (ecx & (1u << 9)) != 0;
  const bool fma3 = (ecx & (1u << 12)) != 0;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  const uint64_t xcr0 = osxsave ? ReadXcr0() : 0;
  // AVX needs xmm+ymm state (bits 1,2); AVX-512 additionally opmask,
  // zmm-hi256, and hi16-zmm (bits 5,6,7).
  const bool os_ymm = (xcr0 & 0x6) == 0x6;
  const bool os_zmm = (xcr0 & 0xE6) == 0xE6;
  f.fma = fma3 && avx && os_ymm;
  unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) != 0) {
    f.avx2 = avx && os_ymm && (ebx7 & (1u << 5)) != 0;
    f.avx512f = os_zmm && (ebx7 & (1u << 16)) != 0;
    f.avx512bw = os_zmm && (ebx7 & (1u << 30)) != 0;
    f.avx512vnni = os_zmm && (ecx7 & (1u << 11)) != 0;
  }
  return f;
}

#else  // non-x86: scalar only

CpuFeatures Detect() { return CpuFeatures{}; }

#endif

std::atomic<int> g_tier_cap{static_cast<int>(SimdTier::kVnni)};
std::atomic<uint64_t> g_dispatch_generation{0};

}  // namespace

const CpuFeatures& DetectedCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

std::string CpuFeatureString() {
  const CpuFeatures& f = DetectedCpuFeatures();
  std::string out;
  const auto add = [&out](bool have, const char* name) {
    if (have) {
      if (!out.empty()) {
        out += ' ';
      }
      out += name;
    }
  };
  add(f.sse2, "sse2");
  add(f.ssse3, "ssse3");
  add(f.fma, "fma");
  add(f.avx2, "avx2");
  add(f.avx512f, "avx512f");
  add(f.avx512bw, "avx512bw");
  add(f.avx512vnni, "avx512vnni");
  return out.empty() ? "none" : out;
}

SimdTier DetectedSimdTier() {
  static const SimdTier tier = [] {
    const CpuFeatures& f = DetectedCpuFeatures();
    if (f.avx512f && f.avx512bw && f.avx512vnni) {
      return SimdTier::kVnni;
    }
    if (f.avx512f && f.avx512bw) {
      return SimdTier::kAvx512;
    }
    if (f.avx2 && f.fma) {
      return SimdTier::kAvx2;
    }
    if (f.ssse3) {
      return SimdTier::kSsse3;
    }
    if (f.sse2) {
      return SimdTier::kSse2;
    }
    return SimdTier::kScalar;
  }();
  return tier;
}

void SetSimdTierCap(SimdTier cap) {
  g_tier_cap.store(static_cast<int>(cap));
  g_dispatch_generation.fetch_add(1);
}

SimdTier SimdTierCap() { return static_cast<SimdTier>(g_tier_cap.load()); }

SimdTier ActiveSimdTier() {
  const SimdTier cap = SimdTierCap();
  const SimdTier detected = DetectedSimdTier();
  return static_cast<int>(cap) < static_cast<int>(detected) ? cap : detected;
}

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kSsse3:
      return "ssse3";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
    case SimdTier::kVnni:
      return "vnni";
  }
  return "unknown";
}

uint64_t SimdDispatchGeneration() { return g_dispatch_generation.load(); }

}  // namespace percival
