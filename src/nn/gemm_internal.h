// Internal glue between gemm.cc's runtime dispatch and the per-tier kernel
// translation units (gemm_tier_*.cc). Not part of the public API.
//
// Each tier TU compiles gemm_tier_impl.inc under its own -m flags and
// exports one GemmKernelTable of plain function pointers; gemm.cc resolves
// the active tier (simd.h) to a table at call time, falling down the ladder
// for entries a tier leaves null (e.g. the ssse3 tier carries only int8
// kernels — its float work resolves to the sse2 tier's table).
//
// The scalar tile templates live here, inline, because BOTH sides need
// them: gemm.cc instantiates them as the force-scalar oracle / no-SIMD
// fallback (baseline flags), and every tier TU instantiates its own copies
// for remainder rows and for panel widths it has no intrinsic tile for.
// That per-TU duplication is deliberate — a tier kernel must never call
// into baseline-compiled code mid-loop, and the int8 epilogue stays
// bit-exact across copies because its accumulation is exact int32 and its
// only compiler-discretion float step is pinned to a single rounding by the
// explicit std::fma (see StoreInt8TileRow).
#ifndef PERCIVAL_SRC_NN_GEMM_INTERNAL_H_
#define PERCIVAL_SRC_NN_GEMM_INTERNAL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "src/nn/gemm.h"

namespace percival {

// One tier's exported kernels. Null entries mean "this tier does not carry
// that kernel" and resolution walks down the ladder (scalar at the bottom).
// `weight_max` / `native_panel_width` describe the int8 / float contracts
// of the tier's kernels and feed Int8WeightMax() / GemmNativePanelWidth().
struct GemmKernelTable {
  const char* float_name = nullptr;
  const char* int8_name = nullptr;
  int native_panel_width = kGemmTileNMin;
  int weight_max = 64;
  void (*gemm_packed)(int64_t m, int n, int k, const float* a, const float* packed_b,
                      const float* bias, GemmEpilogue ep, float* c, int64_t ldc,
                      int panel_width) = nullptr;
  void (*gemm_int8)(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                    const ActivationQuant& quant, const float* bias, GemmEpilogue ep,
                    float* c, int64_t ldc) = nullptr;
  void (*gemm_int8_u8)(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                       const ActivationQuant& quant, const float* bias, GemmEpilogue ep,
                       const ActivationQuant& out_quant, uint8_t* c, int64_t ldc) = nullptr;
  // Implicit-gather variants: registered exactly alongside their
  // materialized counterparts (same tiers, same availability gates), so
  // resolution never splits a kernel family across tiers.
  void (*gemm_packed_implicit)(const ImplicitConvViewF& view, int n, const float* packed_b,
                               const float* bias, GemmEpilogue ep, float* c, int64_t ldc,
                               int panel_width) = nullptr;
  void (*gemm_int8_implicit)(const ImplicitConvViewU8& view, const Int8PackedFilters& packed,
                             const ActivationQuant& quant, const float* bias, GemmEpilogue ep,
                             float* c, int64_t ldc) = nullptr;
  void (*gemm_int8_implicit_u8)(const ImplicitConvViewU8& view,
                                const Int8PackedFilters& packed, const ActivationQuant& quant,
                                const float* bias, GemmEpilogue ep,
                                const ActivationQuant& out_quant, uint8_t* c,
                                int64_t ldc) = nullptr;
  void (*quantize_activations)(const float* src, int64_t count, const ActivationQuant& quant,
                               uint8_t* dst) = nullptr;
  void (*min_max_range)(const float* data, int64_t count, float* min_out,
                        float* max_out) = nullptr;
};

// Per-tier table accessors, defined by the gemm_tier_*.cc TUs. A TU whose
// required instruction-set flags were unavailable at build time exports an
// all-null table, which resolution treats as "tier not compiled".
namespace gemm_tier_sse2 {
const GemmKernelTable& Table();
}
namespace gemm_tier_ssse3 {
const GemmKernelTable& Table();
}
namespace gemm_tier_avx2 {
const GemmKernelTable& Table();
}
namespace gemm_tier_avx512 {
const GemmKernelTable& Table();
}
namespace gemm_tier_vnni {
const GemmKernelTable& Table();
}

namespace gemm_internal {

// Scalar 4xPW tile kernel, templated on the panel width the packer used.
// The oracle the parity tests (and SetGemmForceScalar) pit the intrinsic
// kernels against, and the fallback for any (tier, panel width) pair with
// no intrinsic tile. The accumulator array is small and fully unrolled, so
// the compiler keeps it in vector registers through the K loop.
template <int PW>
inline void MicroKernel4xN(int k, const float* const a[kGemmTileM], const float* panel,
                           float acc[kGemmTileM][PW]) {
  const float* a0 = a[0];
  const float* a1 = a[1];
  const float* a2 = a[2];
  const float* a3 = a[3];
  int kk = 0;
  for (; kk + 2 <= k; kk += 2) {
    const float* bp = panel + static_cast<size_t>(kk) * PW;
    const float* bq = bp + PW;
    const float v0 = a0[kk], w0 = a0[kk + 1];
    const float v1 = a1[kk], w1 = a1[kk + 1];
    const float v2 = a2[kk], w2 = a2[kk + 1];
    const float v3 = a3[kk], w3 = a3[kk + 1];
    for (int j = 0; j < PW; ++j) {
      acc[0][j] += v0 * bp[j] + w0 * bq[j];
      acc[1][j] += v1 * bp[j] + w1 * bq[j];
      acc[2][j] += v2 * bp[j] + w2 * bq[j];
      acc[3][j] += v3 * bp[j] + w3 * bq[j];
    }
  }
  for (; kk < k; ++kk) {
    const float* bp = panel + static_cast<size_t>(kk) * PW;
    const float v0 = a0[kk];
    const float v1 = a1[kk];
    const float v2 = a2[kk];
    const float v3 = a3[kk];
    for (int j = 0; j < PW; ++j) {
      acc[0][j] += v0 * bp[j];
      acc[1][j] += v1 * bp[j];
      acc[2][j] += v2 * bp[j];
      acc[3][j] += v3 * bp[j];
    }
  }
}

// Remainder kernel: one A row against one packed panel.
template <int PW>
inline void MicroKernel1xN(int k, const float* a, const float* panel, float acc[PW]) {
  for (int kk = 0; kk < k; ++kk) {
    const float* bp = panel + static_cast<size_t>(kk) * PW;
    const float v = a[kk];
    for (int j = 0; j < PW; ++j) {
      acc[j] += v * bp[j];
    }
  }
}

// Epilogue-aware store of one tile row from an accumulator buffer (any
// width >= `width`). `ep` and `bias` are loop-invariant, so the compiler
// hoists the branches.
inline void StoreTileRow(const float* acc, const float* bias, GemmEpilogue ep, int n0,
                         int width, float* c_row) {
  for (int j = 0; j < width; ++j) {
    float v = acc[j];
    if (ep != GemmEpilogue::kNone && bias != nullptr) {
      v += bias[n0 + j];
    }
    if (ep == GemmEpilogue::kBiasRelu && v < 0.0f) {
      v = 0.0f;
    }
    c_row[n0 + j] = v;
  }
}

// Handles everything the full-width intrinsic path does not: remainder rows
// (m % 4) and the zero-padded partial panel at the right edge of C.
template <int PW>
inline void TileRowsScalar(int64_t row_begin, int64_t row_end, int panel_begin,
                           int panel_end, int n, int k, const float* a,
                           const float* packed_b, const float* bias, GemmEpilogue ep,
                           float* c, int64_t ldc) {
  int64_t row = row_begin;
  for (; row + kGemmTileM <= row_end; row += kGemmTileM) {
    const float* rows[kGemmTileM];
    for (int i = 0; i < kGemmTileM; ++i) {
      rows[i] = a + (row + i) * k;
    }
    for (int panel = panel_begin; panel < panel_end; ++panel) {
      const int n0 = panel * PW;
      const int width = std::min(PW, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * k * PW;
      float acc[kGemmTileM][PW] = {};
      MicroKernel4xN<PW>(k, rows, pb, acc);
      for (int i = 0; i < kGemmTileM; ++i) {
        StoreTileRow(acc[i], bias, ep, n0, width, c + (row + i) * ldc);
      }
    }
  }
  for (; row < row_end; ++row) {
    const float* ar = a + row * k;
    for (int panel = panel_begin; panel < panel_end; ++panel) {
      const int n0 = panel * PW;
      const int width = std::min(PW, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * k * PW;
      float acc[PW] = {};
      MicroKernel1xN<PW>(k, ar, pb, acc);
      StoreTileRow(acc, bias, ep, n0, width, c + row * ldc);
    }
  }
}

// Scalar float entry handling both packable widths.
inline void GemmPackedScalarEntry(int64_t m, int n, int k, const float* a,
                                  const float* packed_b, const float* bias, GemmEpilogue ep,
                                  float* c, int64_t ldc, int panel_width) {
  const int panels = (n + panel_width - 1) / panel_width;
  if (panel_width == kGemmTileNMin) {
    TileRowsScalar<kGemmTileNMin>(0, m, 0, panels, n, k, a, packed_b, bias, ep, c, ldc);
  } else {
    TileRowsScalar<kGemmTileNMax>(0, m, 0, panels, n, k, a, packed_b, bias, ep, c, ldc);
  }
}

// Dequantizing store of one tile row of int32 accumulators:
// c[j] = sink(epilogue(fma(a_scale * w_scale[j], acc[j] - zp * row_sum[j],
// bias))). `scales` / `row_sums` are the panel-padded arrays indexed from
// n0.
//
// The bias addition is an EXPLICIT single-rounding fused multiply-add, here
// and in the vectorized AVX-512 / AVX2 / SSE epilogues in the tier TUs.
// With a plain `mul` + `add` the compiler's default fp-contraction is free
// to fuse some inlined copies and not others, and the cross-width /
// cross-tier bit-exactness contract would then hinge on compiler whim per
// call site (observed: the 4x32 kernel's epilogue contracted while the 4x16
// one's did not, a last-ulp split the parity tests caught). Spelling the
// fma out pins one rounding everywhere — including across the per-TU
// template copies this header now produces, where contraction behavior
// additionally differs with each TU's -m flags.
template <typename Sink>
inline void StoreInt8TileRow(const int32_t* acc, const Int8PackedFilters& packed,
                             const ActivationQuant& quant, const float* bias,
                             GemmEpilogue ep, int n0, int width, typename Sink::Out* c_row,
                             const Sink& sink) {
  const float* scales = packed.scales.data();
  const int32_t* row_sums = packed.row_sums.data();
  const bool add_bias = ep != GemmEpilogue::kNone && bias != nullptr;
  for (int j = 0; j < width; ++j) {
    const int32_t corrected = acc[j] - quant.zero_point * row_sums[n0 + j];
    const float combined = quant.scale * scales[n0 + j];
    float v = add_bias ? std::fma(combined, static_cast<float>(corrected), bias[n0 + j])
                       : combined * static_cast<float>(corrected);
    if (ep == GemmEpilogue::kBiasRelu && v < 0.0f) {
      v = 0.0f;
    }
    sink.Put(c_row, n0 + j, v);
  }
}

// Scalar int8 tile kernel over the interleaved panel layout, templated on
// the width the panels were packed at. Accumulation is wide int32
// throughout, which makes it bit-exact against BOTH intrinsic families for
// their respective weight contracts: the maddubs tiers never saturate under
// ±64 codes, and the VNNI tier's vpdpbusd is itself an exact int32 sum
// under the full ±127 codes — so SetGemmForceScalar parity holds to the
// last epilogue ulp on every tier and at either panel width.
template <int PW, typename Sink>
inline void Int8TileRowsScalar(int64_t row_begin, int64_t row_end, const uint8_t* a,
                               const Int8PackedFilters& packed, const ActivationQuant& quant,
                               const float* bias, GemmEpilogue ep, typename Sink::Out* c,
                               int64_t ldc, const Sink& sink) {
  const int n = packed.n;
  const int k_padded = packed.k_padded;
  const int groups = k_padded / kInt8KUnit;
  const int panels = (n + PW - 1) / PW;
  int64_t row = row_begin;
  for (; row + kGemmTileM <= row_end; row += kGemmTileM) {
    const uint8_t* rows[kGemmTileM];
    for (int i = 0; i < kGemmTileM; ++i) {
      rows[i] = a + (row + i) * k_padded;
    }
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * PW;
      const int width = std::min(PW, n - n0);
      const int8_t* pb = packed.data.data() +
                         static_cast<size_t>(panel) * groups * PW * kInt8KUnit;
      int32_t acc[kGemmTileM][PW] = {};
      for (int g = 0; g < groups; ++g) {
        const int8_t* group = pb + static_cast<size_t>(g) * PW * kInt8KUnit;
        for (int i = 0; i < kGemmTileM; ++i) {
          const uint8_t* ar = rows[i] + g * kInt8KUnit;
          for (int j = 0; j < PW; ++j) {
            const int8_t* bj = group + j * kInt8KUnit;
            acc[i][j] += static_cast<int32_t>(ar[0]) * bj[0] +
                         static_cast<int32_t>(ar[1]) * bj[1] +
                         static_cast<int32_t>(ar[2]) * bj[2] +
                         static_cast<int32_t>(ar[3]) * bj[3];
          }
        }
      }
      for (int i = 0; i < kGemmTileM; ++i) {
        StoreInt8TileRow(acc[i], packed, quant, bias, ep, n0, width, c + (row + i) * ldc,
                         sink);
      }
    }
  }
  for (; row < row_end; ++row) {
    const uint8_t* ar = a + row * k_padded;
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * PW;
      const int width = std::min(PW, n - n0);
      const int8_t* pb = packed.data.data() +
                         static_cast<size_t>(panel) * groups * PW * kInt8KUnit;
      int32_t acc[PW] = {};
      for (int g = 0; g < groups; ++g) {
        const int8_t* group = pb + static_cast<size_t>(g) * PW * kInt8KUnit;
        const uint8_t* ag = ar + g * kInt8KUnit;
        for (int j = 0; j < PW; ++j) {
          const int8_t* bj = group + j * kInt8KUnit;
          acc[j] += static_cast<int32_t>(ag[0]) * bj[0] +
                    static_cast<int32_t>(ag[1]) * bj[1] +
                    static_cast<int32_t>(ag[2]) * bj[2] +
                    static_cast<int32_t>(ag[3]) * bj[3];
        }
      }
      StoreInt8TileRow(acc, packed, quant, bias, ep, n0, width, c + row * ldc, sink);
    }
  }
}

template <typename Sink>
inline void GemmInt8Scalar(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                           const ActivationQuant& quant, const float* bias, GemmEpilogue ep,
                           typename Sink::Out* c, int64_t ldc, const Sink& sink) {
  if (packed.panel_width == kGemmTileNMin) {
    Int8TileRowsScalar<kGemmTileNMin>(0, m, a, packed, quant, bias, ep, c, ldc, sink);
  } else {
    Int8TileRowsScalar<kGemmTileNMax>(0, m, a, packed, quant, bias, ep, c, ldc, sink);
  }
}

// Broadcast of 4 consecutive uint8 activation codes as one 32-bit lane
// pattern; rows of the quantized A matrix are k_padded (multiple of 4)
// bytes, so the load is always 4-byte aligned and in bounds.
inline int32_t LoadKGroup(const uint8_t* p) {
  int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// ------------------------------------------- implicit-gather scalar tiles --
//
// Scalar implicit-GEMM kernels over the streaming conv view (see
// ImplicitConvView in gemm.h): the K loop runs per vertical tap segment
// with the accumulators carried across segments, which reproduces the
// materialized path's per-row accumulation order exactly (the packed panel
// and the patch row walk K in the same kKhKwC order). Float pad taps are
// skipped — a materialized gather would multiply explicit zeros there —
// and u8 pad taps read the view's zero row, byte-identical to the pad
// codes Im2ColRowsU8 writes. Like the other scalar tiles, these are both
// the force-scalar oracle and the fallback for (tier, width) pairs with no
// intrinsic implicit tile.

// Columns [col_begin, col_end) of output row `oh`, float path.
template <int PW>
inline void ImplicitFloatColsScalar(const ImplicitConvViewF& v, int64_t oh,
                                    int64_t col_begin, int64_t col_end, int n,
                                    const float* packed_b, const float* bias,
                                    GemmEpilogue ep, float* c_oh, int64_t ldc) {
  const int panels = (n + PW - 1) / PW;
  const int k_seg = v.seg_len;
  const size_t panel_stride = static_cast<size_t>(v.segments) * k_seg * PW;
  const int64_t* off = v.offsets + oh * v.segments;
  int64_t col = col_begin;
  for (; col + kGemmTileM <= col_end; col += kGemmTileM) {
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * PW;
      const int width = std::min(PW, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * panel_stride;
      float acc[kGemmTileM][PW] = {};
      for (int s = 0; s < v.segments; ++s) {
        if (off[s] < 0) {
          continue;
        }
        const float* s0 = v.base + off[s] + col * v.col_stride;
        const float* rows[kGemmTileM] = {s0, s0 + v.col_stride, s0 + 2 * v.col_stride,
                                         s0 + 3 * v.col_stride};
        MicroKernel4xN<PW>(k_seg, rows, pb + static_cast<size_t>(s) * k_seg * PW, acc);
      }
      for (int i = 0; i < kGemmTileM; ++i) {
        StoreTileRow(acc[i], bias, ep, n0, width, c_oh + (col + i) * ldc);
      }
    }
  }
  for (; col < col_end; ++col) {
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * PW;
      const int width = std::min(PW, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * panel_stride;
      float acc[PW] = {};
      for (int s = 0; s < v.segments; ++s) {
        if (off[s] < 0) {
          continue;
        }
        MicroKernel1xN<PW>(k_seg, v.base + off[s] + col * v.col_stride,
                           pb + static_cast<size_t>(s) * k_seg * PW, acc);
      }
      StoreTileRow(acc, bias, ep, n0, width, c_oh + col * ldc);
    }
  }
}

inline void GemmPackedImplicitScalarEntry(const ImplicitConvViewF& v, int n,
                                          const float* packed_b, const float* bias,
                                          GemmEpilogue ep, float* c, int64_t ldc,
                                          int panel_width) {
  for (int64_t oh = v.oh_begin; oh < v.oh_end; ++oh) {
    float* c_oh = c + (oh - v.oh_begin) * v.c_row_stride;
    if (panel_width == kGemmTileNMin) {
      ImplicitFloatColsScalar<kGemmTileNMin>(v, oh, 0, v.run_w, n, packed_b, bias, ep, c_oh,
                                             ldc);
    } else {
      ImplicitFloatColsScalar<kGemmTileNMax>(v, oh, 0, v.run_w, n, packed_b, bias, ep, c_oh,
                                             ldc);
    }
  }
}

// Columns [col_begin, col_end) of output row `oh`, int8 path. seg_len is a
// multiple of kInt8KUnit (the caller's eligibility gate), so the 4-byte K
// groups of one segment never read past its end.
template <int PW, typename Sink>
inline void ImplicitInt8ColsScalar(const ImplicitConvViewU8& v, int64_t oh,
                                   int64_t col_begin, int64_t col_end,
                                   const Int8PackedFilters& packed,
                                   const ActivationQuant& quant, const float* bias,
                                   GemmEpilogue ep, typename Sink::Out* c_oh, int64_t ldc,
                                   const Sink& sink) {
  const int n = packed.n;
  const int panels = (n + PW - 1) / PW;
  const int gps = v.seg_len / kInt8KUnit;  // K groups per tap segment
  const size_t panel_stride =
      static_cast<size_t>(v.segments) * gps * PW * kInt8KUnit;
  const int64_t* off = v.offsets + oh * v.segments;
  int64_t col = col_begin;
  for (; col + kGemmTileM <= col_end; col += kGemmTileM) {
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * PW;
      const int width = std::min(PW, n - n0);
      const int8_t* pb = packed.data.data() + static_cast<size_t>(panel) * panel_stride;
      int32_t acc[kGemmTileM][PW] = {};
      for (int s = 0; s < v.segments; ++s) {
        const uint8_t* rows[kGemmTileM];
        if (off[s] < 0) {
          for (int i = 0; i < kGemmTileM; ++i) {
            rows[i] = v.zero_row;
          }
        } else {
          const uint8_t* s0 = v.base + off[s] + col * v.col_stride;
          for (int i = 0; i < kGemmTileM; ++i) {
            rows[i] = s0 + i * v.col_stride;
          }
        }
        const int8_t* pbs = pb + static_cast<size_t>(s) * gps * PW * kInt8KUnit;
        for (int g = 0; g < gps; ++g) {
          const int8_t* group = pbs + static_cast<size_t>(g) * PW * kInt8KUnit;
          for (int i = 0; i < kGemmTileM; ++i) {
            const uint8_t* ar = rows[i] + g * kInt8KUnit;
            for (int j = 0; j < PW; ++j) {
              const int8_t* bj = group + j * kInt8KUnit;
              acc[i][j] += static_cast<int32_t>(ar[0]) * bj[0] +
                           static_cast<int32_t>(ar[1]) * bj[1] +
                           static_cast<int32_t>(ar[2]) * bj[2] +
                           static_cast<int32_t>(ar[3]) * bj[3];
            }
          }
        }
      }
      for (int i = 0; i < kGemmTileM; ++i) {
        StoreInt8TileRow(acc[i], packed, quant, bias, ep, n0, width, c_oh + (col + i) * ldc,
                         sink);
      }
    }
  }
  for (; col < col_end; ++col) {
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * PW;
      const int width = std::min(PW, n - n0);
      const int8_t* pb = packed.data.data() + static_cast<size_t>(panel) * panel_stride;
      int32_t acc[PW] = {};
      for (int s = 0; s < v.segments; ++s) {
        const uint8_t* ar0 =
            off[s] < 0 ? v.zero_row : v.base + off[s] + col * v.col_stride;
        const int8_t* pbs = pb + static_cast<size_t>(s) * gps * PW * kInt8KUnit;
        for (int g = 0; g < gps; ++g) {
          const int8_t* group = pbs + static_cast<size_t>(g) * PW * kInt8KUnit;
          const uint8_t* ag = ar0 + g * kInt8KUnit;
          for (int j = 0; j < PW; ++j) {
            const int8_t* bj = group + j * kInt8KUnit;
            acc[j] += static_cast<int32_t>(ag[0]) * bj[0] +
                      static_cast<int32_t>(ag[1]) * bj[1] +
                      static_cast<int32_t>(ag[2]) * bj[2] +
                      static_cast<int32_t>(ag[3]) * bj[3];
          }
        }
      }
      StoreInt8TileRow(acc, packed, quant, bias, ep, n0, width, c_oh + col * ldc, sink);
    }
  }
}

template <typename Sink>
inline void GemmInt8ImplicitScalar(const ImplicitConvViewU8& v,
                                   const Int8PackedFilters& packed,
                                   const ActivationQuant& quant, const float* bias,
                                   GemmEpilogue ep, typename Sink::Out* c, int64_t ldc,
                                   const Sink& sink) {
  for (int64_t oh = v.oh_begin; oh < v.oh_end; ++oh) {
    typename Sink::Out* c_oh = c + (oh - v.oh_begin) * v.c_row_stride;
    if (packed.panel_width == kGemmTileNMin) {
      ImplicitInt8ColsScalar<kGemmTileNMin>(v, oh, 0, v.run_w, packed, quant, bias, ep, c_oh,
                                            ldc, sink);
    } else {
      ImplicitInt8ColsScalar<kGemmTileNMax>(v, oh, 0, v.run_w, packed, quant, bias, ep, c_oh,
                                            ldc, sink);
    }
  }
}

}  // namespace gemm_internal

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_GEMM_INTERNAL_H_
