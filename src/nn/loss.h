// Fused SoftMax + cross-entropy loss for classifier training.
#ifndef PERCIVAL_SRC_NN_LOSS_H_
#define PERCIVAL_SRC_NN_LOSS_H_

#include <vector>

#include "src/nn/tensor.h"

namespace percival {

struct LossResult {
  float loss = 0.0f;         // mean cross-entropy over the batch
  Tensor grad_logits;        // dLoss/dLogits, already divided by batch size
  int correct = 0;           // argmax matches label
};

// `logits` has shape {n, 1, 1, classes}; `labels` holds n class indices.
// Gradient is the standard (softmax - onehot) / n.
LossResult SoftmaxCrossEntropy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_LOSS_H_
