// Compile-time SIMD dispatch for the GEMM micro-kernels.
//
// Exactly one PERCIVAL_SIMD_* macro is defined to 1, chosen from what the
// compiler was allowed to emit (-march flags / defaults):
//   * PERCIVAL_SIMD_AVX2   — AVX2 + FMA: 8-wide fused multiply-add, the
//     16-wide panel is two ymm registers per row.
//   * PERCIVAL_SIMD_SSE2   — 4-wide multiply+add (baseline x86-64 always
//     has SSE2, so this is the default Release path without -march=native).
//   * PERCIVAL_SIMD_SCALAR — portable fallback, also kept compiled on every
//     target as the oracle the parity tests pit the intrinsic paths against.
//
// The selection is deliberately compile-time: the classifier ships as one
// binary per target, and a runtime-dispatch indirection in a kernel this
// small costs more than it saves. kSimdPathName is logged once at startup
// so bench logs record which path produced the numbers.
#ifndef PERCIVAL_SRC_NN_SIMD_H_
#define PERCIVAL_SRC_NN_SIMD_H_

#if defined(__AVX2__) && defined(__FMA__)
#define PERCIVAL_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define PERCIVAL_SIMD_SSE2 1
#include <emmintrin.h>
#else
#define PERCIVAL_SIMD_SCALAR 1
#endif

namespace percival {

#if defined(PERCIVAL_SIMD_AVX2)
inline constexpr const char* kSimdPathName = "avx2+fma";
#elif defined(PERCIVAL_SIMD_SSE2)
inline constexpr const char* kSimdPathName = "sse2";
#else
inline constexpr const char* kSimdPathName = "scalar";
#endif

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_SIMD_H_
