// Compile-time SIMD dispatch for the GEMM micro-kernels.
//
// Exactly one PERCIVAL_SIMD_* macro is defined to 1, chosen from what the
// compiler was allowed to emit (-march flags / defaults):
//   * PERCIVAL_SIMD_AVX512 — AVX-512F + BW: 16-wide fused multiply-add, the
//     float tile widens to 4x32 (2 zmm per row) and the int8 kernel runs
//     512-bit maddubs/madd.
//   * PERCIVAL_SIMD_AVX2   — AVX2 + FMA: 8-wide fused multiply-add, the
//     16-wide panel is two ymm registers per row.
//   * PERCIVAL_SIMD_SSE2   — 4-wide multiply+add (baseline x86-64 always
//     has SSE2, so this is the default Release path without -march=native).
//   * PERCIVAL_SIMD_SCALAR — portable fallback, also kept compiled on every
//     target as the oracle the parity tests pit the intrinsic paths against.
//
// The int8 quantized kernels have their own sub-dispatch because their key
// instruction (pmaddubsw) arrived with SSSE3, not SSE2: a baseline build
// therefore pairs SSE2 float kernels with the scalar int8 kernel, while any
// -march with SSSE3 upgrades int8 to 128-bit maddubs. Above the AVX-512BW
// maddubs tier sits AVX-512 VNNI: vpdpbusd fuses the maddubs/madd/add
// triple into one instruction AND accumulates the four u8*s8 products
// directly into int32 — no 16-bit intermediate, so the ±64 weight-code
// clamp the saturating tiers need does not apply (see kInt8WeightMax in
// gemm.h, which widens to ±127 on this tier).
//
// The selection is deliberately compile-time: the classifier ships as one
// binary per target, and a runtime-dispatch indirection in a kernel this
// small costs more than it saves. kSimdPathName / kSimdInt8PathName are
// logged once at startup so bench logs record which paths produced the
// numbers.
#ifndef PERCIVAL_SRC_NN_SIMD_H_
#define PERCIVAL_SRC_NN_SIMD_H_

#if defined(__AVX512F__) && defined(__AVX512BW__)
#define PERCIVAL_SIMD_AVX512 1
#include <immintrin.h>
#elif defined(__AVX2__) && defined(__FMA__)
#define PERCIVAL_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define PERCIVAL_SIMD_SSE2 1
#include <emmintrin.h>
#if defined(__SSSE3__)
#include <tmmintrin.h>
#endif
#else
#define PERCIVAL_SIMD_SCALAR 1
#endif

// Int8 kernel tier, derived from the float tier above.
#if defined(PERCIVAL_SIMD_AVX512) && defined(__AVX512VNNI__)
#define PERCIVAL_SIMD_INT8_VNNI 1
#elif defined(PERCIVAL_SIMD_AVX512)
#define PERCIVAL_SIMD_INT8_AVX512 1
#elif defined(PERCIVAL_SIMD_AVX2)
#define PERCIVAL_SIMD_INT8_AVX2 1
#elif defined(PERCIVAL_SIMD_SSE2) && defined(__SSSE3__)
#define PERCIVAL_SIMD_INT8_SSSE3 1
#else
#define PERCIVAL_SIMD_INT8_SCALAR 1
#endif

namespace percival {

#if defined(PERCIVAL_SIMD_AVX512)
inline constexpr const char* kSimdPathName = "avx512";
#elif defined(PERCIVAL_SIMD_AVX2)
inline constexpr const char* kSimdPathName = "avx2+fma";
#elif defined(PERCIVAL_SIMD_SSE2)
inline constexpr const char* kSimdPathName = "sse2";
#else
inline constexpr const char* kSimdPathName = "scalar";
#endif

#if defined(PERCIVAL_SIMD_INT8_VNNI)
inline constexpr const char* kSimdInt8PathName = "avx512vnni-vpdpbusd";
#elif defined(PERCIVAL_SIMD_INT8_AVX512)
inline constexpr const char* kSimdInt8PathName = "avx512bw-maddubs";
#elif defined(PERCIVAL_SIMD_INT8_AVX2)
inline constexpr const char* kSimdInt8PathName = "avx2-maddubs";
#elif defined(PERCIVAL_SIMD_INT8_SSSE3)
inline constexpr const char* kSimdInt8PathName = "ssse3-maddubs";
#else
inline constexpr const char* kSimdInt8PathName = "scalar";
#endif

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_SIMD_H_
