// Runtime SIMD dispatch for the GEMM kernel ladder.
//
// Percival ships as ONE binary to a fleet of heterogeneous machines, so the
// kernel tier is a runtime value, not a compile-time choice: every float
// tier (scalar / SSE2 / AVX2+FMA / AVX-512) and every int8 tier (scalar /
// SSSE3 maddubs / AVX2 maddubs / AVX-512BW maddubs / AVX-512 VNNI) is
// compiled into the library as its own `-m`-flagged translation unit
// (src/nn/gemm_tier_*.cc), and cpuid + xgetbv pick the highest tier the
// host CPU and OS actually support, once, at first use. The dispatch
// indirection is one function-pointer call per GEMM invocation — noise
// against a kernel that walks an entire im2col chunk — and in exchange the
// default-flags Release build runs VNNI-speed int8 on a VNNI host instead
// of the scalar tier a compile-time `-march` selection would have frozen
// in.
//
// The ladder is a single ordered enum because the float and int8 tiers
// advance together on x86:
//
//   tier      float kernels   int8 kernels        panel  weight clamp
//   kScalar   scalar          scalar              16     ±64
//   kSse2     sse2            scalar              16     ±64
//   kSsse3    sse2            ssse3-maddubs       16     ±64
//   kAvx2     avx2+fma        avx2-maddubs        16     ±64
//   kAvx512   avx512          avx512bw-maddubs    32     ±64
//   kVnni     avx512          avx512vnni-vpdpbusd 32     ±127
//
// (Panel width and clamp are surfaced as runtime values by gemm.h:
// GemmNativePanelWidth() / Int8WeightMax().)
//
// SetSimdTierCap() pins the active tier at or below a rung, which is how a
// single binary proves the whole parity ladder in one process: cap to each
// supported tier in turn and the bit-exact int8 / 1e-4 float contracts must
// hold at every rung (tests/nn_dispatch_test.cc). SetGemmForceScalar (in
// gemm.h) remains the orthogonal scalar-oracle overlay: it reroutes kernels
// to the always-compiled scalar tile at the CURRENT tier's panel width and
// weight clamp, so oracle parity is exact at any cap.
#ifndef PERCIVAL_SRC_NN_SIMD_H_
#define PERCIVAL_SRC_NN_SIMD_H_

#include <cstdint>
#include <string>

namespace percival {

// The combined kernel ladder, lowest to highest. Comparable: a tier
// implies every tier below it on x86 hardware.
enum class SimdTier : int {
  kScalar = 0,
  kSse2 = 1,
  kSsse3 = 2,
  kAvx2 = 3,
  kAvx512 = 4,
  kVnni = 5,
};

inline constexpr int kSimdTierCount = 6;

// CPU capabilities as USABLE by this process: each flag requires the
// instruction set (cpuid) AND the OS register state it needs (xgetbv —
// ymm for AVX2, zmm/opmask for AVX-512). Detected once, then cached.
struct CpuFeatures {
  bool sse2 = false;
  bool ssse3 = false;
  bool fma = false;
  bool avx2 = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512vnni = false;
};

const CpuFeatures& DetectedCpuFeatures();

// Space-separated list of the usable feature flags ("sse2 ssse3 fma avx2
// avx512f avx512bw avx512vnni"), or "none". Recorded in BENCH_*.json so
// bench trajectories are attributable to the hardware that produced them.
std::string CpuFeatureString();

// The highest tier the host supports. Constant per process.
SimdTier DetectedSimdTier();

// Caps the active tier at `cap` (kVnni, the top rung, means uncapped — the
// default). The effective tier is min(detected, cap); capping above the
// detected tier never enables kernels the host cannot run. Bumps the
// dispatch generation so planners repack under the new tier's panel width
// and weight clamp at their next PlanForward.
void SetSimdTierCap(SimdTier cap);
SimdTier SimdTierCap();

// min(DetectedSimdTier(), SimdTierCap()) — the tier the kernel dispatch in
// gemm.cc resolves against right now.
SimdTier ActiveSimdTier();

// Short rung name: "scalar", "sse2", "ssse3", "avx2", "avx512", "vnni".
const char* SimdTierName(SimdTier tier);

// Monotonic counter bumped by SetSimdTierCap. Consumers that cache
// tier-derived state (Network's kernel plans, Conv2D's pack caches key on
// the derived values directly) compare it to decide whether to re-plan.
uint64_t SimdDispatchGeneration();

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_SIMD_H_
