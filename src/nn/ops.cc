#include "src/nn/ops.h"

#include <algorithm>
#include <cstring>

#include "src/base/logging.h"
#include "src/nn/gemm.h"

namespace percival {

int ConvOutputSize(int size, int kernel, int stride, int pad) {
  int padded = size + 2 * pad - kernel;
  PCHECK_GE(padded, 0) << "window " << kernel << " larger than padded input " << size;
  return padded / stride + 1;
}

void Im2Col(const float* input, int height, int width, int channels, int kernel, int stride,
            int pad, float* columns) {
  const int out_h = ConvOutputSize(height, kernel, stride, pad);
  const int out_w = ConvOutputSize(width, kernel, stride, pad);
  Im2ColRows(input, height, width, channels, kernel, stride, pad, 0,
             static_cast<int64_t>(out_h) * out_w, columns);
}

void Im2ColRows(const float* input, int height, int width, int channels, int kernel, int stride,
                int pad, int64_t row_begin, int64_t row_end, float* columns) {
  const int out_w = ConvOutputSize(width, kernel, stride, pad);
  const int row_len = kernel * kernel * channels;
  NoteBytesGathered(static_cast<uint64_t>(row_end - row_begin) * row_len * sizeof(float));
  for (int64_t r = row_begin; r < row_end; ++r) {
    const int oh = static_cast<int>(r / out_w);
    const int ow = static_cast<int>(r % out_w);
    // Consecutive kw taps read consecutive input pixels, so a kh-row whose
    // kw span is fully in bounds is ONE contiguous kernel*channels copy —
    // the common case everywhere but the image border.
    const int iw0 = ow * stride - pad;
    const bool kw_span_in_bounds = iw0 >= 0 && iw0 + kernel <= width;
    float* row = columns + (r - row_begin) * row_len;
    for (int kh = 0; kh < kernel; ++kh) {
      const int ih = oh * stride + kh - pad;
      float* dst = row + kh * kernel * channels;
      if (ih < 0 || ih >= height) {
        std::memset(dst, 0, sizeof(float) * static_cast<size_t>(kernel) * channels);
        continue;
      }
      if (kw_span_in_bounds) {
        std::memcpy(dst, input + (static_cast<int64_t>(ih) * width + iw0) * channels,
                    sizeof(float) * static_cast<size_t>(kernel) * channels);
        continue;
      }
      for (int kw = 0; kw < kernel; ++kw) {
        const int iw = iw0 + kw;
        if (iw < 0 || iw >= width) {
          std::memset(dst + kw * channels, 0, sizeof(float) * static_cast<size_t>(channels));
        } else {
          const float* src = input + (static_cast<int64_t>(ih) * width + iw) * channels;
          std::memcpy(dst + kw * channels, src, sizeof(float) * static_cast<size_t>(channels));
        }
      }
    }
  }
}

void Im2ColRowsU8(const uint8_t* input, int height, int width, int channels, int kernel,
                  int stride, int pad, int64_t row_begin, int64_t row_end, uint8_t pad_value,
                  int row_stride, uint8_t* columns) {
  const int out_w = ConvOutputSize(width, kernel, stride, pad);
  const int row_len = kernel * kernel * channels;
  PCHECK_GE(row_stride, row_len);
  NoteBytesGathered(static_cast<uint64_t>(row_end - row_begin) * row_len);
  for (int64_t r = row_begin; r < row_end; ++r) {
    const int oh = static_cast<int>(r / out_w);
    const int ow = static_cast<int>(r % out_w);
    // See Im2ColRows: an in-bounds kw span is one contiguous copy.
    const int iw0 = ow * stride - pad;
    const bool kw_span_in_bounds = iw0 >= 0 && iw0 + kernel <= width;
    uint8_t* row = columns + (r - row_begin) * row_stride;
    for (int kh = 0; kh < kernel; ++kh) {
      const int ih = oh * stride + kh - pad;
      uint8_t* dst = row + kh * kernel * channels;
      if (ih < 0 || ih >= height) {
        std::memset(dst, pad_value, static_cast<size_t>(kernel) * channels);
        continue;
      }
      if (kw_span_in_bounds) {
        std::memcpy(dst, input + (static_cast<int64_t>(ih) * width + iw0) * channels,
                    static_cast<size_t>(kernel) * channels);
        continue;
      }
      for (int kw = 0; kw < kernel; ++kw) {
        const int iw = iw0 + kw;
        if (iw < 0 || iw >= width) {
          std::memset(dst + kw * channels, pad_value, static_cast<size_t>(channels));
        } else {
          const uint8_t* src = input + (static_cast<int64_t>(ih) * width + iw) * channels;
          std::memcpy(dst + kw * channels, src, static_cast<size_t>(channels));
        }
      }
    }
    std::memset(row + row_len, pad_value, static_cast<size_t>(row_stride - row_len));
  }
}

void Im2ColRowsCOuter(const float* input, int height, int width, int channels, int kernel,
                      int stride, int pad, int64_t row_begin, int64_t row_end,
                      float* columns) {
  const int out_w = ConvOutputSize(width, kernel, stride, pad);
  const int row_len = kernel * kernel * channels;
  const int taps = kernel * kernel;
  NoteBytesGathered(static_cast<uint64_t>(row_end - row_begin) * row_len * sizeof(float));
  for (int64_t r = row_begin; r < row_end; ++r) {
    const int oh = static_cast<int>(r / out_w);
    const int ow = static_cast<int>(r % out_w);
    float* row = columns + (r - row_begin) * row_len;
    for (int kh = 0; kh < kernel; ++kh) {
      const int ih = oh * stride + kh - pad;
      const bool row_valid = ih >= 0 && ih < height;
      for (int kw = 0; kw < kernel; ++kw) {
        const int iw = ow * stride + kw - pad;
        const int tap = kh * kernel + kw;
        if (!row_valid || iw < 0 || iw >= width) {
          for (int c = 0; c < channels; ++c) {
            row[c * taps + tap] = 0.0f;
          }
          continue;
        }
        const float* src = input + (static_cast<int64_t>(ih) * width + iw) * channels;
        for (int c = 0; c < channels; ++c) {
          row[c * taps + tap] = src[c];
        }
      }
    }
  }
}

void Im2ColRowsU8COuter(const uint8_t* input, int height, int width, int channels, int kernel,
                        int stride, int pad, int64_t row_begin, int64_t row_end,
                        uint8_t pad_value, int row_stride, uint8_t* columns) {
  const int out_w = ConvOutputSize(width, kernel, stride, pad);
  const int row_len = kernel * kernel * channels;
  const int taps = kernel * kernel;
  PCHECK_GE(row_stride, row_len);
  NoteBytesGathered(static_cast<uint64_t>(row_end - row_begin) * row_len);
  for (int64_t r = row_begin; r < row_end; ++r) {
    const int oh = static_cast<int>(r / out_w);
    const int ow = static_cast<int>(r % out_w);
    uint8_t* row = columns + (r - row_begin) * row_stride;
    for (int kh = 0; kh < kernel; ++kh) {
      const int ih = oh * stride + kh - pad;
      const bool row_valid = ih >= 0 && ih < height;
      for (int kw = 0; kw < kernel; ++kw) {
        const int iw = ow * stride + kw - pad;
        const int tap = kh * kernel + kw;
        if (!row_valid || iw < 0 || iw >= width) {
          for (int c = 0; c < channels; ++c) {
            row[c * taps + tap] = pad_value;
          }
          continue;
        }
        const uint8_t* src = input + (static_cast<int64_t>(ih) * width + iw) * channels;
        for (int c = 0; c < channels; ++c) {
          row[c * taps + tap] = src[c];
        }
      }
    }
    std::memset(row + row_len, pad_value, static_cast<size_t>(row_stride - row_len));
  }
}

void Col2Im(const float* columns, int height, int width, int channels, int kernel, int stride,
            int pad, float* input_grad) {
  const int out_h = ConvOutputSize(height, kernel, stride, pad);
  const int out_w = ConvOutputSize(width, kernel, stride, pad);
  const int row_len = kernel * kernel * channels;
  for (int oh = 0; oh < out_h; ++oh) {
    for (int ow = 0; ow < out_w; ++ow) {
      const float* row = columns + (static_cast<int64_t>(oh) * out_w + ow) * row_len;
      for (int kh = 0; kh < kernel; ++kh) {
        const int ih = oh * stride + kh - pad;
        if (ih < 0 || ih >= height) {
          continue;
        }
        for (int kw = 0; kw < kernel; ++kw) {
          const int iw = ow * stride + kw - pad;
          if (iw < 0 || iw >= width) {
            continue;
          }
          float* dst = input_grad + (static_cast<int64_t>(ih) * width + iw) * channels;
          const float* src = row + (kh * kernel + kw) * channels;
          for (int c = 0; c < channels; ++c) {
            dst[c] += src[c];
          }
        }
      }
    }
  }
}

void ReluCodes(const uint8_t* in, int64_t count, int32_t zero_point, uint8_t* out) {
  const uint8_t zp = static_cast<uint8_t>(std::min<int32_t>(255, std::max<int32_t>(0, zero_point)));
  for (int64_t i = 0; i < count; ++i) {
    out[i] = in[i] > zp ? in[i] : zp;
  }
}

void MaxPoolCodes(const uint8_t* in, int height, int width, int channels, int kernel,
                  int stride, uint8_t* out) {
  const int out_h = ConvOutputSize(height, kernel, stride, 0);
  const int out_w = ConvOutputSize(width, kernel, stride, 0);
  for (int oh = 0; oh < out_h; ++oh) {
    for (int ow = 0; ow < out_w; ++ow) {
      uint8_t* dst = out + (static_cast<int64_t>(oh) * out_w + ow) * channels;
      bool first = true;
      for (int kh = 0; kh < kernel; ++kh) {
        const int ih = oh * stride + kh;
        if (ih >= height) {
          continue;
        }
        for (int kw = 0; kw < kernel; ++kw) {
          const int iw = ow * stride + kw;
          if (iw >= width) {
            continue;
          }
          const uint8_t* src = in + (static_cast<int64_t>(ih) * width + iw) * channels;
          if (first) {
            std::memcpy(dst, src, static_cast<size_t>(channels));
            first = false;
          } else {
            for (int c = 0; c < channels; ++c) {
              if (src[c] > dst[c]) {
                dst[c] = src[c];
              }
            }
          }
        }
      }
    }
  }
}

void Axpy(int64_t n, float a, const float* src, float* dst) {
  for (int64_t i = 0; i < n; ++i) {
    dst[i] += a * src[i];
  }
}

float Dot(int64_t n, const float* a, const float* b) {
  float acc0 = 0.0f;
  float acc1 = 0.0f;
  float acc2 = 0.0f;
  float acc3 = 0.0f;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) {
    acc0 += a[i] * b[i];
  }
  return acc0 + acc1 + acc2 + acc3;
}

}  // namespace percival
