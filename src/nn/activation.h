// Activation layers: ReLU and SoftMax.
#ifndef PERCIVAL_SRC_NN_ACTIVATION_H_
#define PERCIVAL_SRC_NN_ACTIVATION_H_

#include <string>
#include <vector>

#include "src/nn/layer.h"

namespace percival {

class Relu : public Layer {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "relu"; }
  TensorShape OutputShape(const TensorShape& input) const override { return input; }

  // Rebuilds the backward mask from an already-computed ReLU *output*
  // (output > 0 iff input > 0, so the masks are identical). Lets fused
  // Conv+ReLU paths skip materializing the pre-activation tensor while
  // keeping Backward() exact. In eval mode this is a no-op — the mask sweep
  // is exactly the backward state an inference deployment never reads.
  void SetMaskFromOutput(const Tensor& output);

  // relu(code) = max(code, zero_point) exactly (quantize(0) == zp), but it
  // skips the backward mask — eval mode only.
  bool SupportsCodeTransform() const override { return !training_; }
  void ForwardCodes(const QuantizedTensorView& input, uint8_t* out) override;

 private:
  std::vector<uint8_t> mask_;  // 1 where input > 0
  TensorShape input_shape_;
};

// Channel-wise SoftMax over the last dimension of each sample. Numerically
// stabilized with the max-subtraction trick. Backward implements the full
// Jacobian-vector product (needed by Grad-CAM; training uses the fused
// SoftmaxCrossEntropy loss instead).
class Softmax : public Layer {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "softmax"; }
  TensorShape OutputShape(const TensorShape& input) const override { return input; }

 private:
  Tensor last_output_;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_ACTIVATION_H_
