// 2-D convolution layer (NHWC, im2col + gemm lowering) with full backprop.
//
// Forward runs on one of two paths:
//   * GEMM (default) — the register-blocked engine in gemm.h: filters are
//     packed once per call, output pixels are expanded chunk-at-a-time into
//     thread-local scratch and multiplied in 4x16 register tiles, with the
//     chunks fanned out across the shared inference ThreadPool. 1x1/stride-1
//     convolutions skip im2col entirely (the input already is the patch
//     matrix).
//   * naive — the original per-output-channel dot-product loop, kept as the
//     bit-for-bit oracle the parity tests compare against.
#ifndef PERCIVAL_SRC_NN_CONV_H_
#define PERCIVAL_SRC_NN_CONV_H_

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/nn/layer.h"

namespace percival {

class Conv2D : public Layer {
 public:
  // Creates a kernel x kernel convolution mapping in_channels -> out_channels.
  // Weights are He-initialized from `rng`; biases start at zero.
  Conv2D(int in_channels, int out_channels, int kernel, int stride, int pad, Rng& rng,
         std::string name = "conv");

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override;
  std::vector<Parameter*> Parameters() override { return {&weights_, &bias_}; }
  TensorShape OutputShape(const TensorShape& input) const override;
  int64_t ForwardMacs(const TensorShape& input) const override;

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int pad() const { return pad_; }

  // Weight tensor layout: [out_channels, 1, 1, kernel*kernel*in_channels],
  // with each filter flattened in (kh, kw, c) order to match Im2Col rows.
  Parameter& weights() { return weights_; }
  Parameter& bias() { return bias_; }

  // Selects the forward implementation. New layers inherit the process-wide
  // default (GemmEnabledByDefault()); tests flip individual layers to pit
  // the GEMM path against the naive oracle.
  void set_use_gemm(bool use_gemm) { use_gemm_ = use_gemm; }
  bool use_gemm() const { return use_gemm_; }

 private:
  Tensor ForwardNaive(const Tensor& input);
  Tensor ForwardGemm(const Tensor& input);

  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int pad_;
  std::string label_;
  bool use_gemm_;
  Parameter weights_;
  Parameter bias_;

  // Cached forward state for backward.
  Tensor last_input_;
  std::vector<float> columns_;        // im2col buffer for one sample (naive/backward)
  std::vector<float> packed_filters_; // panel-packed weights for the GEMM path
};

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_CONV_H_
