// 2-D convolution layer (NHWC, im2col + gemm lowering) with full backprop.
#ifndef PERCIVAL_SRC_NN_CONV_H_
#define PERCIVAL_SRC_NN_CONV_H_

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/nn/layer.h"

namespace percival {

class Conv2D : public Layer {
 public:
  // Creates a kernel x kernel convolution mapping in_channels -> out_channels.
  // Weights are He-initialized from `rng`; biases start at zero.
  Conv2D(int in_channels, int out_channels, int kernel, int stride, int pad, Rng& rng,
         std::string name = "conv");

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override;
  std::vector<Parameter*> Parameters() override { return {&weights_, &bias_}; }
  TensorShape OutputShape(const TensorShape& input) const override;
  int64_t ForwardMacs(const TensorShape& input) const override;

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int pad() const { return pad_; }

  // Weight tensor layout: [out_channels, 1, 1, kernel*kernel*in_channels],
  // with each filter flattened in (kh, kw, c) order to match Im2Col rows.
  Parameter& weights() { return weights_; }
  Parameter& bias() { return bias_; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int pad_;
  std::string label_;
  Parameter weights_;
  Parameter bias_;

  // Cached forward state for backward.
  Tensor last_input_;
  std::vector<float> columns_;  // im2col buffer for one sample
};

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_CONV_H_
