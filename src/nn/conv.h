// 2-D convolution layer (NHWC, im2col + gemm lowering) with full backprop.
//
// Forward runs on one of two paths:
//   * GEMM (default) — the SIMD engine in gemm.h: output pixels are expanded
//     chunk-at-a-time into thread-local scratch and multiplied in 4x16
//     register tiles, with the chunks fanned out across the shared inference
//     ThreadPool. 1x1/stride-1 convolutions skip im2col entirely (the input
//     already is the patch matrix). Panel-packed filters are cached across
//     forward calls and invalidated by the weight Parameter's version
//     counter, so a frozen net packs exactly once — the classifier runs the
//     same weights on every decoded frame.
//   * naive — the original per-output-channel dot-product loop, kept as the
//     bit-for-bit oracle the parity tests compare against.
//
// ForwardInto() additionally fuses the bias + activation epilogue into the
// GEMM store and writes rows at a caller-chosen stride, which is how
// Conv->ReLU avoids materializing a pre-activation tensor and FireModule
// writes its expand branches straight into the concat output.
//
// SetPrecision(Precision::kInt8) switches the GEMM forward to the quantized
// engine: per-output-channel int8 weights are quantized at pack time and
// cached alongside the float panels (both invalidated by the weight
// Parameter's version counter), activations are quantized per tensor from
// the input's observed range, and the dequantize + bias + ReLU epilogue
// lands in the same GemmEpilogue store — so fused Conv->ReLU and the
// FireModule concat writes run unchanged in int8. The float path stays the
// training/backward engine and the parity oracle; Backward in int8 mode
// fails loudly.
//
// In eval mode (SetTrainingMode(false)) the forward skips the deep
// last_input_ copy — the only backward state this layer retains — and
// Backward fails loudly.
#ifndef PERCIVAL_SRC_NN_CONV_H_
#define PERCIVAL_SRC_NN_CONV_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/nn/gemm.h"
#include "src/nn/layer.h"

namespace percival {

class Conv2D : public Layer {
 public:
  // Creates a kernel x kernel convolution mapping in_channels -> out_channels.
  // Weights are He-initialized from `rng`; biases start at zero.
  Conv2D(int in_channels, int out_channels, int kernel, int stride, int pad, Rng& rng,
         std::string name = "conv");

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override;
  std::vector<Parameter*> Parameters() override { return {&weights_, &bias_}; }
  TensorShape OutputShape(const TensorShape& input) const override;
  int64_t ForwardMacs(const TensorShape& input) const override;
  size_t ForwardScratchFloats(const TensorShape& input) const override;

  // Fused inference forward on the GEMM path: writes epilogue(conv + bias)
  // for every output pixel directly to out + n*sample_stride + row*ldc,
  // where row runs over the out_h*out_w pixels of sample n. ldc >= the
  // layer's out_channels lets the caller target a channel slice of a wider
  // tensor. Caches the same backward state as Forward().
  void ForwardInto(const Tensor& input, GemmEpilogue epilogue, float* out, int64_t ldc,
                   int64_t sample_stride);

  // Fused conv producing its own tensor (Conv -> ReLU in one pass when
  // `epilogue` is kBiasRelu). Requires use_gemm().
  Tensor ForwardFused(const Tensor& input, GemmEpilogue epilogue);

  // Replaces the weight/bias values (shape-checked) and invalidates the
  // packed-panel cache. Prefer this over mutating weights().value in place,
  // which requires a manual weights().MarkDirty() to keep the cache honest.
  void SetWeights(const Tensor& weights, const Tensor& bias);

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int pad() const { return pad_; }

  // Weight tensor layout: [out_channels, 1, 1, kernel*kernel*in_channels],
  // with each filter flattened in (kh, kw, c) order to match Im2Col rows.
  Parameter& weights() { return weights_; }
  Parameter& bias() { return bias_; }

  // Selects the forward implementation. New layers inherit the process-wide
  // default (GemmEnabledByDefault()); tests flip individual layers to pit
  // the GEMM path against the naive oracle.
  void set_use_gemm(bool use_gemm) { use_gemm_ = use_gemm; }
  bool use_gemm() const { return use_gemm_; }

  // Runtime precision mode. kInt8 requires the GEMM path (checked on
  // Forward) and is inference-only: Backward PCHECKs against it.
  void SetPrecision(Precision precision) override { precision_ = precision; }
  Precision precision() const { return precision_; }

  // Kernel plan: panel width + activation layout the GEMM forward runs
  // under. PlanKernels (called by Network::PlanForward) picks it from the
  // layer shape + compiled SIMD tier; SetKernelPlan pins it explicitly for
  // A/B measurement — a pinned plan survives later PlanKernels calls
  // (which PlanForward issues on every input-shape change), so the A/B
  // really measures the pinned kernel; ClearKernelPlanPin restores the
  // heuristic. Both pack caches are keyed on (weight version, plan), so a
  // plan change repacks exactly once per cache.
  void PlanKernels(const TensorShape& input) override;
  void SetKernelPlan(const KernelPlan& plan);
  void ClearKernelPlanPin() { plan_pinned_ = false; }
  const KernelPlan& plan() const { return plan_; }
  void AppendKernelPlanRows(std::vector<KernelPlanRow>* out) const override;

  // u8-direct input: in int8 eval mode the conv consumes caller-quantized
  // uint8 codes, skipping the float staging tensor, the per-forward
  // MinMaxRange pass, AND the whole-tensor QuantizeActivations sweep.
  bool AcceptsQuantizedInput() const override;
  Tensor ForwardQuantized(const QuantizedTensorView& input) override;

  // Zero-float dataflow (requantize-in-epilogue): the GEMM store quantizes
  // straight to the CONSUMER's uint8 codes instead of floats, so two
  // adjacent int8 convs exchange codes with no float tensor in between.
  // The float value being requantized is bit-identical to what the float
  // stores above produce, so codes match a float store + QuantizeActivations
  // sweep exactly (see RequantEpilogueSink in gemm.cc). All four combinations
  // of {float, u8} input x {float, u8} output now exist:
  //   ForwardInto           float -> float   (above)
  //   ForwardIntoU8         float -> u8
  //   ForwardQuantizedInto  u8    -> float   (ForwardQuantized minus the
  //                                           output Tensor allocation)
  //   ForwardQuantizedIntoU8 u8   -> u8      (the steady-state hot path)
  // The u8 writers are eval/int8-only (PCHECKed) and honor ldc /
  // sample_stride like ForwardInto, so FireModule aims them at channel
  // slices of its concat buffer.
  void ForwardIntoU8(const Tensor& input, GemmEpilogue epilogue,
                     const ActivationQuant& out_quant, uint8_t* out, int64_t ldc,
                     int64_t sample_stride);
  void ForwardQuantizedInto(const QuantizedTensorView& input, GemmEpilogue epilogue,
                            float* out, int64_t ldc, int64_t sample_stride);
  void ForwardQuantizedIntoU8(const QuantizedTensorView& input, GemmEpilogue epilogue,
                              const ActivationQuant& out_quant, uint8_t* out, int64_t ldc,
                              int64_t sample_stride);

  // Layer-protocol wrappers over the u8 writers (dense output, kBias
  // epilogue — the network applies activations as separate layers).
  bool CanEmitQuantizedCodes() const override { return AcceptsQuantizedInput(); }
  void ForwardToCodes(const Tensor& input, float out_scale, int32_t out_zero_point,
                      uint8_t* out) override;
  void ForwardQuantizedToCodes(const QuantizedTensorView& input, float out_scale,
                               int32_t out_zero_point, uint8_t* out) override;

  // Input-range calibration: when set, the int8 forward derives its
  // activation quantization from this range instead of scanning the input
  // (deployment skips one full pass over the tensor per conv). Capture mode
  // accumulates the range across float forwards; see Layer for the
  // protocol. Values outside a calibrated range saturate to the range edge,
  // the standard calibration trade.
  void SetInputCalibration(float min_value, float max_value);
  void ClearInputCalibration();
  bool InputCalibration(float* min_value, float* max_value) const override;
  void SetCalibrationCapture(bool capture) override;
  size_t CalibrationSlots() const override { return 1; }
  void AppendCalibration(std::vector<ActivationCalibration>* out) const override;
  size_t ConsumeCalibration(const ActivationCalibration* entries, size_t count) override;

 private:
  Tensor ForwardNaive(const Tensor& input);
  void ForwardIntoFloat(const Tensor& input, GemmEpilogue epilogue, float* out, int64_t ldc,
                        int64_t sample_stride);
  // Implicit-gather float forward: interior output columns stream from the
  // NHWC tensor through the cached offset table; only the <= pad edge
  // columns per side still run the classic Im2ColRows + GemmPackedEx.
  void ForwardIntoFloatImplicit(const Tensor& input, GemmEpilogue epilogue, float* out,
                                int64_t ldc, int64_t sample_stride);
  // Same split for the quantized engine (interior via GemmInt8PackedImplicit
  // / ...U8, edges via Im2ColRowsU8). Only called when ImplicitEligible.
  template <typename OutT>
  void Int8ImplicitOverCodes(const uint8_t* codes, const TensorShape& in_shape,
                             const ActivationQuant& quant, GemmEpilogue epilogue,
                             const ActivationQuant& out_quant, OutT* out, int64_t ldc,
                             int64_t sample_stride);
  // True when the current plan + layer geometry support the implicit gather
  // at all (multi-tap, kh-kw-c). The int8 path additionally requires the
  // per-tap K segment to be kInt8KUnit-aligned so packed K groups never
  // straddle a tap boundary.
  bool ImplicitEligible() const;
  bool ImplicitEligibleInt8() const;
  // Builds (or reuses) the per-output-row offset table for an input of this
  // height/width; returns false when the shape has no interior columns (the
  // caller falls back to the materialized gather).
  bool PrepareImplicitGather(int height, int width);
  void ForwardIntoInt8(const Tensor& input, GemmEpilogue epilogue, float* out, int64_t ldc,
                       int64_t sample_stride);
  // Shared tail of the int8 forwards: patch-gathers `codes` (whole-sample
  // uint8 NHWC codes) per the plan's layout and runs the quantized GEMM,
  // storing either dequantized floats (OutT = float; out_quant ignored) or
  // requantized consumer codes (OutT = uint8_t).
  template <typename OutT>
  void Int8ForwardOverCodes(const uint8_t* codes, const TensorShape& in_shape,
                            const ActivationQuant& quant, GemmEpilogue epilogue,
                            const ActivationQuant& out_quant, OutT* out, int64_t ldc,
                            int64_t sample_stride);
  // Shared front half of the float-input int8 forwards: captures / applies
  // calibration, quantizes the input into quantized_input_, and returns the
  // chosen activation quant.
  ActivationQuant QuantizeInputActivations(const Tensor& input);

  // Repacks filter panels iff (weights_.version, plan_) moved since the
  // last pack.
  const float* PackedFilters();
  // Same contract for the quantized panels + per-channel scale metadata.
  // When the weight Parameter carries a fresh pre-quantized payload (PCVW
  // v2 load), its codes are packed directly — no pack-time requantization,
  // and the int8 forward reproduces the serializing build bit-for-bit.
  const Int8PackedFilters& PackedFiltersInt8();

  // Weight rows reordered into the plan's K order ((c, kh, kw) for
  // kCOuter); the identity for kKhKwC and 1x1 kernels. The reorder buffer
  // is pack-time scratch: callers (the two Packed* repackers) release it
  // once the panels are packed.
  const float* WeightRowsForLayout();
  void ReleaseReorderScratch();

  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int pad_;
  std::string label_;
  bool use_gemm_;
  Precision precision_ = Precision::kFloat32;
  Parameter weights_;
  Parameter bias_;

  // Cached forward state for backward (training mode only).
  Tensor last_input_;
  std::vector<float> columns_;  // im2col buffer for one sample (naive/backward)

  // Per-layer kernel plan (panel width + activation layout) the GEMM
  // forwards and the pack caches run under. Defaults to the native panel
  // width and kh-kw-c layout, i.e. the pre-planner behavior. `plan_pinned_`
  // marks an explicit SetKernelPlan choice that PlanKernels must not
  // overwrite.
  KernelPlan plan_;
  bool plan_pinned_ = false;

  // Input activation calibration (see SetInputCalibration).
  bool calibration_capture_ = false;
  bool has_input_calibration_ = false;
  float calib_min_ = 0.0f;
  float calib_max_ = 0.0f;

  // Persistent panel-packed weights for the GEMM path, valid while the
  // matching (version, plan) pair equals the current one (version 0 =
  // never packed). The float and int8 caches key independently, so flipping
  // precision back and forth never repacks frozen weights; a plan change
  // repacks each cache once.
  std::vector<float> packed_filters_;
  uint64_t packed_version_ = 0;
  KernelPlan packed_plan_;
  Int8PackedFilters packed_filters_int8_;
  uint64_t packed_int8_version_ = 0;
  KernelPlan packed_int8_plan_;
  int packed_int8_weight_max_ = 0;  // Int8WeightMax() the cache was packed under

  // Scratch for weight rows permuted into the c-outer K order before
  // packing (pack-time only, empty under kKhKwC).
  std::vector<float> reordered_weights_;
  std::vector<int8_t> reordered_codes_;

  // Whole-input uint8 codes for the quantized forward (quantized once per
  // forward; the per-chunk patch gather then moves bytes, not floats).
  // Plain scratch, not backward state — sized on first int8 forward, steady
  // thereafter. The u8-direct path (ForwardQuantized) bypasses it entirely.
  std::vector<uint8_t> quantized_input_;

  // Implicit-gather offset table: per (output row, vertical tap) element
  // offsets into one NHWC sample, at interior column implicit_ow_lo_
  // (< 0 = vertical pad tap). Built lazily by PrepareImplicitGather and
  // cached per input (height, width) — the layer's own geometry is fixed,
  // so shape is the whole key. zero_row_u8_ holds one tap segment of
  // activation zero-point codes for the u8 kernels' pad reads (refilled per
  // int8 forward: the zero point follows the input's quantization).
  std::vector<int64_t> implicit_offsets_;
  std::vector<uint8_t> zero_row_u8_;
  int implicit_h_ = 0;
  int implicit_w_ = 0;
  int implicit_ow_lo_ = 0;  // first interior output column
  int implicit_ow_hi_ = 0;  // one past the last interior output column
};

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_CONV_H_
