#include "src/nn/serialize.h"

#include <cstring>
#include <fstream>

#include "src/base/logging.h"

namespace percival {

namespace {

constexpr char kMagic[4] = {'P', 'C', 'V', 'W'};
constexpr uint32_t kVersion = 1;

void AppendRaw(std::vector<uint8_t>& out, const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + size);
}

template <typename T>
void AppendValue(std::vector<uint8_t>& out, const T& value) {
  AppendRaw(out, &value, sizeof(T));
}

void AppendString(std::vector<uint8_t>& out, const std::string& text) {
  AppendValue(out, static_cast<uint32_t>(text.size()));
  AppendRaw(out, text.data(), text.size());
}

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  bool ReadRaw(void* dst, size_t size) {
    if (pos_ + size > bytes_.size()) {
      return false;
    }
    std::memcpy(dst, bytes_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  template <typename T>
  bool ReadValue(T* value) {
    return ReadRaw(value, sizeof(T));
  }

  bool ReadString(std::string* text) {
    uint32_t size = 0;
    if (!ReadValue(&size) || pos_ + size > bytes_.size()) {
      return false;
    }
    text->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), size);
    pos_ += size;
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> SerializeWeights(Network& net) {
  std::vector<uint8_t> out;
  AppendRaw(out, kMagic, sizeof(kMagic));
  AppendValue(out, kVersion);
  std::vector<Parameter*> params = net.Parameters();
  AppendValue(out, static_cast<uint32_t>(params.size()));
  for (Parameter* p : params) {
    AppendString(out, p->name);
    const TensorShape& s = p->value.shape();
    AppendValue(out, s.n);
    AppendValue(out, s.h);
    AppendValue(out, s.w);
    AppendValue(out, s.c);
    AppendRaw(out, p->value.data(), sizeof(float) * static_cast<size_t>(p->value.size()));
  }
  return out;
}

bool DeserializeWeights(Network& net, const std::vector<uint8_t>& bytes) {
  Reader reader(bytes);
  char magic[4];
  uint32_t version = 0;
  uint32_t count = 0;
  if (!reader.ReadRaw(magic, sizeof(magic)) || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  if (!reader.ReadValue(&version) || version != kVersion) {
    return false;
  }
  std::vector<Parameter*> params = net.Parameters();
  if (!reader.ReadValue(&count) || count != params.size()) {
    return false;
  }
  for (Parameter* p : params) {
    std::string name;
    TensorShape shape;
    if (!reader.ReadString(&name) || name != p->name) {
      return false;
    }
    if (!reader.ReadValue(&shape.n) || !reader.ReadValue(&shape.h) ||
        !reader.ReadValue(&shape.w) || !reader.ReadValue(&shape.c)) {
      return false;
    }
    if (!(shape == p->value.shape())) {
      return false;
    }
    if (!reader.ReadRaw(p->value.data(), sizeof(float) * static_cast<size_t>(p->value.size()))) {
      return false;
    }
    // The layer may hold a packed form of the previous values (Conv2D's
    // GEMM panels); loading must invalidate it or forwards would keep
    // using the old weights.
    p->MarkDirty();
  }
  return reader.AtEnd();
}

bool SaveWeightsToFile(Network& net, const std::string& path) {
  std::vector<uint8_t> bytes = SerializeWeights(net);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool LoadWeightsFromFile(Network& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return false;
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (!in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return false;
  }
  return DeserializeWeights(net, bytes);
}

}  // namespace percival
