#include "src/nn/serialize.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>

#include "src/base/faultpoint.h"
#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/nn/gemm.h"

namespace percival {

namespace {

constexpr char kMagic[4] = {'P', 'C', 'V', 'W'};
constexpr uint32_t kVersionFloat = 1;
constexpr uint32_t kVersionInt8 = 2;

// v2 per-parameter record kinds.
constexpr uint8_t kRecordFloat32 = 0;
constexpr uint8_t kRecordInt8PerChannel = 1;

// v2 optional trailer tags (after the last parameter record). A v2 file may
// end right after its records (no trailer — older writers) or carry exactly
// one calibration trailer; anything else is rejected.
constexpr uint8_t kTrailerCalibration = 0xC1;

void AppendRaw(std::vector<uint8_t>& out, const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + size);
}

template <typename T>
void AppendValue(std::vector<uint8_t>& out, const T& value) {
  AppendRaw(out, &value, sizeof(T));
}

void AppendString(std::vector<uint8_t>& out, const std::string& text) {
  AppendValue(out, static_cast<uint32_t>(text.size()));
  AppendRaw(out, text.data(), text.size());
}

// Bounds-checked cursor over an untrusted byte buffer. All checks are
// written as `size > remaining` (never `pos_ + size > total`): model files
// cross a trust boundary once deployed artifacts are fetched, and the
// additive form wraps for attacker-controlled sizes near SIZE_MAX, turning
// the check into an out-of-bounds read.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  size_t Remaining() const { return bytes_.size() - pos_; }

  bool ReadRaw(void* dst, size_t size) {
    if (size > Remaining()) {
      return false;
    }
    std::memcpy(dst, bytes_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  template <typename T>
  bool ReadValue(T* value) {
    return ReadRaw(value, sizeof(T));
  }

  bool ReadString(std::string* text) {
    uint32_t size = 0;
    if (!ReadValue(&size) || size > Remaining()) {
      return false;
    }
    text->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), size);
    pos_ += size;
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

// Conv weight tensors are the quantization targets: [out_channels, 1, 1,
// kernel*kernel*in_channels] named "<layer>.weight". Biases and any future
// non-conv parameter serialize as float records inside v2.
bool IsQuantizableWeight(const Parameter& p) {
  const TensorShape& s = p.value.shape();
  const std::string suffix = ".weight";
  return p.name.size() > suffix.size() &&
         p.name.compare(p.name.size() - suffix.size(), suffix.size(), suffix) == 0 &&
         s.h == 1 && s.w == 1 && s.n >= 1 && s.c >= 1;
}

// v2 stores no per-record names or shapes: one FNV-1a hash over the
// ordered (name, shape) sequence pins the exact architecture the artifact
// was written for, and every record's geometry derives from the DESTINATION
// network — a hostile file controls no allocation size at all, and the
// artifact sheds ~1 KB of header per model (it ships to every browser
// install, so the deployment format is kept minimal).
uint64_t ManifestHash(const std::vector<Parameter*>& params) {
  uint64_t hash = HashBytes(nullptr, 0);  // FNV offset basis
  for (const Parameter* p : params) {
    hash = HashCombine(hash, HashString(p->name));
    const TensorShape& s = p->value.shape();
    const int32_t dims[4] = {s.n, s.h, s.w, s.c};
    hash = HashCombine(hash, HashBytes(dims, sizeof(dims)));
  }
  return hash;
}

// One fully parsed + validated parameter record, held until the whole
// buffer has been accepted. Commit only then — a bad record mid-stream must
// not leave the network half-loaded.
struct StagedRecord {
  std::vector<float> values;
  std::shared_ptr<QuantizedWeights> quantized;  // null for float records
};

bool ParseFloatRecord(Reader& reader, const Parameter& p, StagedRecord* staged) {
  staged->values.resize(static_cast<size_t>(p.value.size()));
  return reader.ReadRaw(staged->values.data(), sizeof(float) * staged->values.size());
}

bool ParseInt8Record(Reader& reader, const Parameter& p, uint32_t file_weight_max,
                     StagedRecord* staged) {
  // Record geometry comes from the destination parameter, never the file:
  // channels per-scale, size/channels codes per channel.
  const uint32_t channels = static_cast<uint32_t>(p.value.shape().n);
  const uint32_t k = static_cast<uint32_t>(p.value.size() / p.value.shape().n);
  auto quant = std::make_shared<QuantizedWeights>();
  quant->weight_max = static_cast<int>(file_weight_max);
  quant->scales.resize(channels);
  quant->codes.resize(static_cast<size_t>(channels) * k);
  if (!reader.ReadRaw(quant->scales.data(), sizeof(float) * quant->scales.size()) ||
      !reader.ReadRaw(quant->codes.data(), quant->codes.size())) {
    return false;
  }
  for (float scale : quant->scales) {
    if (!std::isfinite(scale) || scale <= 0.0f) {
      return false;
    }
  }
  for (int8_t code : quant->codes) {
    if (std::abs(static_cast<int>(code)) > static_cast<int>(file_weight_max)) {
      return false;
    }
  }
  // The float view is the dequantized weights: training/backward and the
  // float parity oracle keep working on a v2 load (at quantized precision).
  staged->values.resize(quant->codes.size());
  for (uint32_t ch = 0; ch < channels; ++ch) {
    const float scale = quant->scales[ch];
    const int8_t* row = quant->codes.data() + static_cast<size_t>(ch) * k;
    float* dst = staged->values.data() + static_cast<size_t>(ch) * k;
    for (uint32_t kk = 0; kk < k; ++kk) {
      dst[kk] = scale * static_cast<float>(row[kk]);
    }
  }
  // Only hand the codes to the int8 pack cache when they respect the active
  // tier's saturation contract; a wider-clamp artifact (VNNI ±127) on a
  // narrower tier (maddubs ±64) falls back to requantizing the floats.
  if (file_weight_max > static_cast<uint32_t>(Int8WeightMax())) {
    quant.reset();
  }
  staged->quantized = std::move(quant);
  return true;
}

}  // namespace

std::vector<uint8_t> SerializeWeights(Network& net) {
  std::vector<uint8_t> out;
  AppendRaw(out, kMagic, sizeof(kMagic));
  AppendValue(out, kVersionFloat);
  std::vector<Parameter*> params = net.Parameters();
  AppendValue(out, static_cast<uint32_t>(params.size()));
  for (Parameter* p : params) {
    AppendString(out, p->name);
    const TensorShape& s = p->value.shape();
    AppendValue(out, s.n);
    AppendValue(out, s.h);
    AppendValue(out, s.w);
    AppendValue(out, s.c);
    AppendRaw(out, p->value.data(), sizeof(float) * static_cast<size_t>(p->value.size()));
  }
  return out;
}

std::vector<uint8_t> SerializeWeightsInt8(Network& net) {
  std::vector<uint8_t> out;
  AppendRaw(out, kMagic, sizeof(kMagic));
  AppendValue(out, kVersionInt8);
  AppendValue(out, static_cast<uint32_t>(Int8WeightMax()));
  std::vector<Parameter*> params = net.Parameters();
  AppendValue(out, static_cast<uint32_t>(params.size()));
  AppendValue(out, ManifestHash(params));
  std::vector<int8_t> codes;
  for (Parameter* p : params) {
    if (!IsQuantizableWeight(*p)) {
      AppendValue(out, kRecordFloat32);
      AppendRaw(out, p->value.data(), sizeof(float) * static_cast<size_t>(p->value.size()));
      continue;
    }
    const uint32_t channels = static_cast<uint32_t>(p->value.shape().n);
    const uint32_t k = static_cast<uint32_t>(p->value.size() / p->value.shape().n);
    AppendValue(out, kRecordInt8PerChannel);
    // Same quantizer as the pack-time path (QuantizeWeightRow), so a
    // reloaded artifact's int8 panels hold byte-identical codes.
    codes.resize(static_cast<size_t>(channels) * k);
    std::vector<float> scales(channels);
    for (uint32_t ch = 0; ch < channels; ++ch) {
      scales[ch] = QuantizeWeightRow(p->value.data() + static_cast<size_t>(ch) * k,
                                     static_cast<int>(k),
                                     codes.data() + static_cast<size_t>(ch) * k);
    }
    AppendRaw(out, scales.data(), sizeof(float) * scales.size());
    AppendRaw(out, codes.data(), codes.size());
  }
  // Optional calibration trailer: per-tensor activation ranges recorded
  // from a calibration batch (Network::SetCalibrationCapture + forwards),
  // in the same deterministic layer walk the loader replays. Written
  // all-or-nothing — a partially calibrated network ships no trailer, and
  // its deployment forwards fall back to the per-forward MinMaxRange scan.
  const std::vector<ActivationCalibration> calibration = net.CollectCalibration();
  bool all_valid = !calibration.empty();
  for (const ActivationCalibration& entry : calibration) {
    all_valid = all_valid && entry.valid;
  }
  if (all_valid) {
    AppendValue(out, kTrailerCalibration);
    AppendValue(out, static_cast<uint32_t>(calibration.size()));
    for (const ActivationCalibration& entry : calibration) {
      AppendValue(out, entry.min_value);
      AppendValue(out, entry.max_value);
    }
  } else if (!calibration.empty()) {
    size_t valid = 0;
    for (const ActivationCalibration& entry : calibration) {
      valid += entry.valid ? 1 : 0;
    }
    if (valid > 0) {
      LogLine("pcvw: " + std::to_string(valid) + "/" + std::to_string(calibration.size()) +
              " tensors calibrated; omitting the calibration trailer (capture a full "
              "batch to ship one)");
    }
  }
  return out;
}

bool DeserializeWeights(Network& net, const std::vector<uint8_t>& bytes) {
  Reader reader(bytes);
  char magic[4];
  uint32_t version = 0;
  uint32_t count = 0;
  uint32_t file_weight_max = 0;
  if (!reader.ReadRaw(magic, sizeof(magic)) || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  if (!reader.ReadValue(&version) ||
      (version != kVersionFloat && version != kVersionInt8)) {
    return false;
  }
  if (version == kVersionInt8) {
    if (!reader.ReadValue(&file_weight_max) || file_weight_max == 0 ||
        file_weight_max > 127) {
      return false;
    }
  }
  std::vector<Parameter*> params = net.Parameters();
  if (!reader.ReadValue(&count) || count != params.size()) {
    return false;
  }
  if (version == kVersionInt8) {
    // The manifest hash pins the ordered (name, shape) sequence the
    // artifact was written for; any architecture/profile mismatch fails
    // here, before a single record is parsed. (v1 keeps per-record names
    // and shapes instead — friendlier for inspecting checkpoints.)
    uint64_t manifest = 0;
    if (!reader.ReadValue(&manifest) || manifest != ManifestHash(params)) {
      return false;
    }
  }

  // Phase 1: parse and validate the ENTIRE buffer into staging storage.
  // Nothing in `net` is mutated until every record has been accepted.
  std::vector<StagedRecord> staged(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    Parameter* p = params[i];
    if (version == kVersionFloat) {
      std::string name;
      TensorShape shape;
      if (!reader.ReadString(&name) || name != p->name) {
        return false;
      }
      if (!reader.ReadValue(&shape.n) || !reader.ReadValue(&shape.h) ||
          !reader.ReadValue(&shape.w) || !reader.ReadValue(&shape.c)) {
        return false;
      }
      if (!(shape == p->value.shape())) {
        return false;
      }
      if (!ParseFloatRecord(reader, *p, &staged[i])) {
        return false;
      }
      continue;
    }
    uint8_t kind = 0;
    if (!reader.ReadValue(&kind)) {
      return false;
    }
    if (kind == kRecordFloat32) {
      if (!ParseFloatRecord(reader, *p, &staged[i])) {
        return false;
      }
    } else if (kind == kRecordInt8PerChannel) {
      // Only the conv weight tensors the writer quantizes may carry int8
      // records; a flipped kind byte on a bias is corruption, not a format.
      if (!IsQuantizableWeight(*p) ||
          !ParseInt8Record(reader, *p, file_weight_max, &staged[i])) {
        return false;
      }
    } else {
      return false;
    }
  }
  // Optional v2 trailer(s). The calibration trailer's count must equal the
  // destination network's slot count — like record geometry, a hostile file
  // controls no allocation size (the entries are read into a vector sized
  // by the NET, after the count check) — and every range must be finite and
  // ordered. v2 files without a trailer (older writers) load unchanged; v1
  // never carries one.
  std::vector<ActivationCalibration> staged_calibration;
  if (version == kVersionInt8 && !reader.AtEnd()) {
    uint8_t tag = 0;
    uint32_t calib_count = 0;
    if (!reader.ReadValue(&tag) || tag != kTrailerCalibration) {
      return false;
    }
    if (!reader.ReadValue(&calib_count) ||
        calib_count != static_cast<uint32_t>(net.CalibrationSlots()) || calib_count == 0) {
      return false;
    }
    staged_calibration.resize(calib_count);
    for (uint32_t i = 0; i < calib_count; ++i) {
      ActivationCalibration& entry = staged_calibration[i];
      if (!reader.ReadValue(&entry.min_value) || !reader.ReadValue(&entry.max_value)) {
        return false;
      }
      if (!std::isfinite(entry.min_value) || !std::isfinite(entry.max_value) ||
          entry.min_value > entry.max_value) {
        return false;
      }
      entry.valid = true;
    }
  }
  if (!reader.AtEnd()) {
    return false;
  }
  if (version == kVersionInt8 && file_weight_max > static_cast<uint32_t>(Int8WeightMax())) {
    // Payloads were dropped wholesale by ParseInt8Record; say so once —
    // inference still runs (requantized from the dequantized floats under
    // the local clamp), but not bit-identically to the writing build.
    LogLine("pcvw: v2 artifact clamp ±" + std::to_string(file_weight_max) +
            " exceeds the active tier's ±" + std::to_string(Int8WeightMax()) +
            "; requantizing weights under the local clamp");
  }

  // Phase 2: commit. From here on nothing can fail.
  for (size_t i = 0; i < params.size(); ++i) {
    Parameter* p = params[i];
    std::memcpy(p->value.data(), staged[i].values.data(),
                sizeof(float) * staged[i].values.size());
    // The layer may hold a packed form of the previous values (Conv2D's
    // GEMM panels); loading must invalidate it or forwards would keep
    // using the old weights.
    p->MarkDirty();
    p->quantized = std::move(staged[i].quantized);
    if (p->quantized != nullptr) {
      p->quantized->version = p->version;
    }
  }
  // Always replay the calibration walk: a trailer restores its ranges, and
  // a trailer-less (or v1) artifact CLEARS any previously loaded ones —
  // stale ranges from an earlier artifact would silently quantize the new
  // weights' activations against the old model's distribution. (The
  // pre-quantized weight payloads are version-guarded against exactly this
  // staleness; invalid entries are calibration's equivalent.)
  if (staged_calibration.empty()) {
    staged_calibration.assign(net.CalibrationSlots(), ActivationCalibration{});
  }
  // Count was validated against the slot walk above, so this cannot fail.
  net.LoadCalibration(staged_calibration);
  return true;
}

namespace {

bool WriteBytesToFile(const std::vector<uint8_t>& bytes, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

}  // namespace

bool SaveWeightsToFile(Network& net, const std::string& path) {
  return WriteBytesToFile(SerializeWeights(net), path);
}

bool SaveWeightsToFileInt8(Network& net, const std::string& path) {
  return WriteBytesToFile(SerializeWeightsInt8(net), path);
}

int PeekWeightsVersion(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return 0;
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version != kVersionFloat && version != kVersionInt8) {
    return 0;
  }
  return static_cast<int>(version);
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* bytes) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return false;
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  bytes->resize(static_cast<size_t>(size));
  if (!in.read(reinterpret_cast<char*>(bytes->data()), size)) {
    return false;
  }
  // Forced artifact corruption: truncating to half is guaranteed to fail
  // the deserializer's staged validation (the truncation fuzz suite proves
  // every prefix rejects), which is exactly the "corrupt file on disk"
  // failure the degradation ladder must absorb. The read itself still
  // "succeeds" — corruption is a content problem, not an I/O error.
  if (faultpoint::ShouldFire(faultpoint::kArtifactCorrupt)) {
    bytes->resize(bytes->size() / 2);
  }
  return true;
}

bool LoadWeightsFromFile(Network& net, const std::string& path) {
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes)) {
    return false;
  }
  return DeserializeWeights(net, bytes);
}

}  // namespace percival
