// SGD with momentum and step learning-rate decay — exactly the training
// configuration reported in the paper (§4.3): momentum 0.9, lr 0.001,
// decay x0.1 every 30 epochs.
#ifndef PERCIVAL_SRC_NN_OPTIMIZER_H_
#define PERCIVAL_SRC_NN_OPTIMIZER_H_

#include <vector>

#include "src/nn/layer.h"

namespace percival {

struct SgdConfig {
  float learning_rate = 0.001f;
  float momentum = 0.9f;
  float lr_decay_factor = 0.1f;
  int lr_decay_every_epochs = 30;
  float weight_decay = 0.0f;
  // Global gradient-norm clip applied before each step; <= 0 disables.
  // Stabilizes the narrow fire-module bottlenecks against exploding steps.
  float max_grad_norm = 5.0f;
};

class SgdOptimizer {
 public:
  SgdOptimizer(std::vector<Parameter*> params, const SgdConfig& config);

  // Applies one update from the currently accumulated gradients, then leaves
  // the gradients untouched (caller zeroes them).
  void Step();

  // Signals the end of an epoch (drives step decay).
  void EndEpoch();

  float current_learning_rate() const { return learning_rate_; }
  int epoch() const { return epoch_; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> velocity_;
  SgdConfig config_;
  float learning_rate_;
  int epoch_ = 0;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_OPTIMIZER_H_
