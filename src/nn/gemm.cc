#include "src/nn/gemm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/base/logging.h"
#include "src/base/thread_pool.h"
#include "src/nn/simd.h"

namespace percival {

namespace {

std::atomic<ThreadPool*> g_inference_pool{nullptr};
std::atomic<bool> g_gemm_default{true};
std::atomic<bool> g_force_scalar{false};
std::atomic<int> g_planner_panel_override{0};
std::atomic<LayoutPolicy> g_planner_layout_policy{LayoutPolicy::kAuto};
std::atomic<bool> g_dataflow_requant{true};

}  // namespace

// ----------------------------------------------------------- ScratchArena --

float* ScratchArena::Alloc(size_t count) {
  if (count == 0) {
    count = 1;  // keep returned pointers distinct and dereferenceable
  }
  if (used_ + count > block_.size()) {
    const size_t grown = std::max(count, CapacityFloats() * 2);
    if (!block_.empty()) {
      retired_.push_back(std::move(block_));
    }
    block_.assign(grown, 0.0f);
    used_ = 0;
  }
  float* ptr = block_.data() + used_;
  used_ += count;
  return ptr;
}

void ScratchArena::Reset() {
  if (!retired_.empty()) {
    // Coalesce: one slab big enough for everything handed out last round.
    size_t total = block_.size();
    for (const auto& old : retired_) {
      total += old.size();
    }
    retired_.clear();
    block_.assign(total, 0.0f);
  }
  used_ = 0;
}

void ScratchArena::Reserve(size_t count) {
  Reset();
  if (block_.size() < count) {
    block_.assign(count, 0.0f);
  }
  used_ = 0;
}

size_t ScratchArena::CapacityFloats() const {
  size_t total = block_.size();
  for (const auto& old : retired_) {
    total += old.size();
  }
  return total;
}

ScratchArena& LocalArena() {
  thread_local ScratchArena arena;
  return arena;
}

// ------------------------------------------------------- execution config --

void SetInferenceThreadPool(ThreadPool* pool) { g_inference_pool.store(pool); }
ThreadPool* InferenceThreadPool() { return g_inference_pool.load(); }

void SetGemmEnabledByDefault(bool enabled) { g_gemm_default.store(enabled); }
bool GemmEnabledByDefault() { return g_gemm_default.load(); }

void SetGemmForceScalar(bool force) { g_force_scalar.store(force); }
bool GemmForceScalar() { return g_force_scalar.load(); }

const char* ActiveGemmKernelName() {
  return GemmForceScalar() ? "scalar" : kSimdPathName;
}

const char* ActiveInt8KernelName() {
  return GemmForceScalar() ? "scalar" : kSimdInt8PathName;
}

void LogSimdPathOnce() {
  static std::once_flag logged;
  std::call_once(logged, [] {
    LogLine(std::string("gemm: compiled SIMD path ") + kSimdPathName + ", tile " +
            std::to_string(kGemmTileM) + "x" + std::to_string(kGemmTileN) +
            ", int8 path " + kSimdInt8PathName);
  });
}

ScopedInferencePool::ScopedInferencePool(int num_threads)
    : pool_(std::make_unique<ThreadPool>(
          num_threads > 0 ? num_threads
                          : std::max(1, static_cast<int>(std::thread::hardware_concurrency())))),
      previous_(InferenceThreadPool()) {
  LogSimdPathOnce();
  SetInferenceThreadPool(pool_.get());
}

ScopedInferencePool::~ScopedInferencePool() { SetInferenceThreadPool(previous_); }

// ------------------------------------------------------------- planner --

const char* LayoutName(ActivationLayout layout) {
  return layout == ActivationLayout::kCOuter ? "c-outer" : "kh-kw-c";
}

void SetPlannerPanelOverride(int width) {
  PCHECK(width == 0 || ValidPanelWidth(width))
      << "panel override " << width << " is not a width this build's kernels implement";
  g_planner_panel_override.store(width);
}

int PlannerPanelOverride() { return g_planner_panel_override.load(); }

void SetPlannerLayoutPolicy(LayoutPolicy policy) { g_planner_layout_policy.store(policy); }

LayoutPolicy PlannerLayoutPolicy() { return g_planner_layout_policy.load(); }

void SetDataflowRequantEnabled(bool enabled) { g_dataflow_requant.store(enabled); }

bool DataflowRequantEnabled() { return g_dataflow_requant.load(); }

KernelPlan ChooseConvKernelPlan(int out_channels, int kernel) {
  KernelPlan plan;
  const int override_width = PlannerPanelOverride();
  if (override_width != 0) {
    plan.panel_width = override_width;
  } else if (kGemmTileN > kGemmTileNMin && out_channels <= kGemmTileNMin) {
    // A <=16-channel layer fills at most half the native 32-wide panel;
    // the 16-wide sub-tile halves the per-K-step panel loads and FMAs.
    plan.panel_width = kGemmTileNMin;
  }
  const LayoutPolicy policy = PlannerLayoutPolicy();
  if (kernel > 1) {
    if (policy == LayoutPolicy::kForceCOuter) {
      plan.layout = ActivationLayout::kCOuter;
    } else if (policy == LayoutPolicy::kAuto) {
      // Measured default: kh-kw-c. The c-outer gather trades the per-tap
      // contiguous memcpy for channel-strided scalar loads, which loses on
      // NHWC inputs at every channel count tried (see the
      // conv3x3_layout_* rows in BENCH_micro_kernels.json).
      plan.layout = ActivationLayout::kKhKwC;
    }
  }
  return plan;
}

// ----------------------------------------------------------------- packing --

size_t PackedPanelFloats(int n, int k, int panel_width) {
  const int panels = (n + panel_width - 1) / panel_width;
  return static_cast<size_t>(panels) * static_cast<size_t>(k) * panel_width;
}

void PackFilterPanels(const float* b, int n, int k, float* packed, int panel_width) {
  PCHECK(ValidPanelWidth(panel_width));
  const int panels = (n + panel_width - 1) / panel_width;
  for (int panel = 0; panel < panels; ++panel) {
    const int n0 = panel * panel_width;
    const int width = std::min(panel_width, n - n0);
    float* dst = packed + static_cast<size_t>(panel) * k * panel_width;
    for (int kk = 0; kk < k; ++kk) {
      float* row = dst + static_cast<size_t>(kk) * panel_width;
      for (int j = 0; j < width; ++j) {
        row[j] = b[static_cast<int64_t>(n0 + j) * k + kk];
      }
      for (int j = width; j < panel_width; ++j) {
        row[j] = 0.0f;
      }
    }
  }
}

// ------------------------------------------------------- int8 quantization --

ActivationQuant ComputeActivationQuant(float min_value, float max_value) {
  // The range always covers 0 so im2col zero padding is exactly encodable.
  min_value = std::min(min_value, 0.0f);
  max_value = std::max(max_value, 0.0f);
  ActivationQuant quant;
  quant.scale = (max_value - min_value) / 255.0f;
  if (quant.scale <= 0.0f) {
    quant.scale = 1.0f;  // all-zero tensor: any scale maps 0 -> zero_point
  }
  const float zp = std::nearbyint(-min_value / quant.scale);
  quant.zero_point = static_cast<int32_t>(std::min(255.0f, std::max(0.0f, zp)));
  return quant;
}

void QuantizeActivations(const float* src, int64_t count, const ActivationQuant& quant,
                         uint8_t* dst) {
  const float inv_scale = 1.0f / quant.scale;
  int64_t i = 0;
  // Vectorized body: cvtps_epi32 rounds half-to-even exactly like the
  // scalar nearbyint tail (both follow the default rounding mode), so the
  // produced codes are identical regardless of where the vector loop ends.
  // By construction src/scale + zero_point lands in ~[0, 255.5], so the
  // int16 pack saturation is unreachable and the u8 pack implements the
  // [0, 255] clamp.
#if defined(PERCIVAL_SIMD_AVX512)
  const __m512 vinv = _mm512_set1_ps(inv_scale);
  const __m512i vzp = _mm512_set1_epi32(quant.zero_point);
  const __m512i vzero = _mm512_setzero_si512();
  for (; i + 16 <= count; i += 16) {
    const __m512 v = _mm512_mul_ps(_mm512_loadu_ps(src + i), vinv);
    __m512i q = _mm512_add_epi32(_mm512_cvtps_epi32(v), vzp);
    q = _mm512_max_epi32(q, vzero);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm512_cvtusepi32_epi8(q));
  }
#elif defined(PERCIVAL_SIMD_AVX2)
  const __m256 vinv = _mm256_set1_ps(inv_scale);
  const __m256i vzp = _mm256_set1_epi32(quant.zero_point);
  for (; i + 16 <= count; i += 16) {
    const __m256i q0 = _mm256_add_epi32(
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(src + i), vinv)), vzp);
    const __m256i q1 = _mm256_add_epi32(
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(src + i + 8), vinv)), vzp);
    __m256i p16 = _mm256_packs_epi32(q0, q1);
    p16 = _mm256_permute4x64_epi64(p16, 0xD8);
    __m256i p8 = _mm256_packus_epi16(p16, p16);
    p8 = _mm256_permute4x64_epi64(p8, 0xD8);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm256_castsi256_si128(p8));
  }
#elif defined(PERCIVAL_SIMD_SSE2)
  const __m128 vinv = _mm_set1_ps(inv_scale);
  const __m128i vzp = _mm_set1_epi32(quant.zero_point);
  for (; i + 16 <= count; i += 16) {
    const __m128i q0 =
        _mm_add_epi32(_mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + i), vinv)), vzp);
    const __m128i q1 =
        _mm_add_epi32(_mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + i + 4), vinv)), vzp);
    const __m128i q2 =
        _mm_add_epi32(_mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + i + 8), vinv)), vzp);
    const __m128i q3 =
        _mm_add_epi32(_mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + i + 12), vinv)), vzp);
    const __m128i p8 =
        _mm_packus_epi16(_mm_packs_epi32(q0, q1), _mm_packs_epi32(q2, q3));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), p8);
  }
#endif
  for (; i < count; ++i) {
    const int32_t q =
        quant.zero_point + static_cast<int32_t>(std::nearbyint(src[i] * inv_scale));
    dst[i] = static_cast<uint8_t>(std::min(255, std::max(0, q)));
  }
}

void MinMaxRange(const float* data, int64_t count, float* min_out, float* max_out) {
  float min_v = 0.0f;
  float max_v = 0.0f;
  int64_t i = 0;
#if defined(PERCIVAL_SIMD_AVX512)
  if (count >= 16) {
    __m512 vmin = _mm512_setzero_ps();
    __m512 vmax = _mm512_setzero_ps();
    for (; i + 16 <= count; i += 16) {
      const __m512 v = _mm512_loadu_ps(data + i);
      vmin = _mm512_min_ps(vmin, v);
      vmax = _mm512_max_ps(vmax, v);
    }
    min_v = _mm512_reduce_min_ps(vmin);
    max_v = _mm512_reduce_max_ps(vmax);
  }
#elif defined(PERCIVAL_SIMD_AVX2)
  if (count >= 8) {
    __m256 vmin = _mm256_setzero_ps();
    __m256 vmax = _mm256_setzero_ps();
    for (; i + 8 <= count; i += 8) {
      const __m256 v = _mm256_loadu_ps(data + i);
      vmin = _mm256_min_ps(vmin, v);
      vmax = _mm256_max_ps(vmax, v);
    }
    float lanes[8];
    _mm256_storeu_ps(lanes, vmin);
    for (float lane : lanes) {
      min_v = std::min(min_v, lane);
    }
    _mm256_storeu_ps(lanes, vmax);
    for (float lane : lanes) {
      max_v = std::max(max_v, lane);
    }
  }
#elif defined(PERCIVAL_SIMD_SSE2)
  if (count >= 4) {
    __m128 vmin = _mm_setzero_ps();
    __m128 vmax = _mm_setzero_ps();
    for (; i + 4 <= count; i += 4) {
      const __m128 v = _mm_loadu_ps(data + i);
      vmin = _mm_min_ps(vmin, v);
      vmax = _mm_max_ps(vmax, v);
    }
    float lanes[4];
    _mm_storeu_ps(lanes, vmin);
    for (float lane : lanes) {
      min_v = std::min(min_v, lane);
    }
    _mm_storeu_ps(lanes, vmax);
    for (float lane : lanes) {
      max_v = std::max(max_v, lane);
    }
  }
#endif
  for (; i < count; ++i) {
    min_v = std::min(min_v, data[i]);
    max_v = std::max(max_v, data[i]);
  }
  *min_out = min_v;
  *max_out = max_v;
}

size_t PackedPanelBytesInt8(int n, int k, int panel_width) {
  const int panels = (n + panel_width - 1) / panel_width;
  return static_cast<size_t>(panels) * static_cast<size_t>(Int8PaddedK(k)) * panel_width;
}

float QuantizeWeightRow(const float* row, int k, int8_t* codes) {
  float amax = 0.0f;
  for (int kk = 0; kk < k; ++kk) {
    amax = std::max(amax, std::abs(row[kk]));
  }
  const float scale = amax > 0.0f ? amax / static_cast<float>(kInt8WeightMax) : 1.0f;
  const float inv_scale = 1.0f / scale;
  for (int kk = 0; kk < k; ++kk) {
    const int32_t q = static_cast<int32_t>(std::nearbyint(row[kk] * inv_scale));
    codes[kk] = static_cast<int8_t>(std::min(kInt8WeightMax, std::max(-kInt8WeightMax, q)));
  }
  return scale;
}

namespace {

// Shared tail of the two int8 packers: sizes `packed`, then interleaves one
// channel's zero-padded code row at a time (panel-major, K-group, channel,
// 4 consecutive K bytes) while recording scales and row sums.
void SizeInt8Panels(int n, int k, int panel_width, Int8PackedFilters* packed) {
  PCHECK_GT(n, 0);
  PCHECK_GT(k, 0);
  PCHECK(ValidPanelWidth(panel_width));
  packed->n = n;
  packed->k = k;
  packed->k_padded = Int8PaddedK(k);
  packed->panel_width = panel_width;
  const int panels = (n + panel_width - 1) / panel_width;
  packed->data.assign(PackedPanelBytesInt8(n, k, panel_width), 0);
  packed->scales.assign(static_cast<size_t>(panels) * panel_width, 0.0f);
  packed->row_sums.assign(static_cast<size_t>(panels) * panel_width, 0);
}

void InterleaveInt8CodeRow(const int8_t* q_row_padded, int oc, Int8PackedFilters* packed) {
  const int pw = packed->panel_width;
  const int groups = packed->k_padded / kInt8KUnit;
  const int panel = oc / pw;
  const int j = oc % pw;
  int8_t* panel_base = packed->data.data() +
                       static_cast<size_t>(panel) * groups * pw * kInt8KUnit;
  for (int g = 0; g < groups; ++g) {
    int8_t* dst = panel_base + (static_cast<size_t>(g) * pw + j) * kInt8KUnit;
    for (int t = 0; t < kInt8KUnit; ++t) {
      dst[t] = q_row_padded[static_cast<size_t>(g) * kInt8KUnit + t];
    }
  }
}

}  // namespace

void PackFilterPanelsInt8(const float* b, int n, int k, Int8PackedFilters* packed,
                          int panel_width) {
  SizeInt8Panels(n, k, panel_width, packed);
  std::vector<int8_t> q_row(static_cast<size_t>(packed->k_padded), 0);
  for (int oc = 0; oc < n; ++oc) {
    std::fill(q_row.begin(), q_row.end(), static_cast<int8_t>(0));
    packed->scales[static_cast<size_t>(oc)] =
        QuantizeWeightRow(b + static_cast<int64_t>(oc) * k, k, q_row.data());
    int32_t row_sum = 0;
    for (int kk = 0; kk < k; ++kk) {
      row_sum += q_row[static_cast<size_t>(kk)];
    }
    packed->row_sums[static_cast<size_t>(oc)] = row_sum;
    InterleaveInt8CodeRow(q_row.data(), oc, packed);
  }
}

void PackQuantizedFilterPanelsInt8(const int8_t* codes, const float* scales, int n, int k,
                                   Int8PackedFilters* packed, int panel_width) {
  SizeInt8Panels(n, k, panel_width, packed);
  std::vector<int8_t> q_row(static_cast<size_t>(packed->k_padded), 0);
  for (int oc = 0; oc < n; ++oc) {
    const int8_t* row = codes + static_cast<int64_t>(oc) * k;
    std::fill(q_row.begin() + k, q_row.end(), static_cast<int8_t>(0));
    int32_t row_sum = 0;
    for (int kk = 0; kk < k; ++kk) {
      PCHECK_LE(std::abs(static_cast<int>(row[kk])), kInt8WeightMax)
          << "pre-quantized code outside this build's saturation-safe range";
      q_row[static_cast<size_t>(kk)] = row[kk];
      row_sum += row[kk];
    }
    packed->scales[static_cast<size_t>(oc)] = scales[oc];
    packed->row_sums[static_cast<size_t>(oc)] = row_sum;
    InterleaveInt8CodeRow(q_row.data(), oc, packed);
  }
}

// ------------------------------------------------------------ micro-kernel --

namespace {

#if defined(PERCIVAL_SIMD_AVX512)
static_assert(kGemmTileM == 4 && kGemmTileN == 32,
              "the AVX-512 micro-kernels are written for a 4x32 tile");
#else
static_assert(kGemmTileM == 4 && kGemmTileN == 16,
              "the SSE2/AVX2 micro-kernels are written for a 4x16 tile");
#endif
static_assert(kGemmTileNMin == 16, "the 16-wide sub-tile kernels assume width 16");

// Scalar 4xPW tile kernel, templated on the panel width the packer used.
// Always compiled: it is the fallback on targets without SSE2 and the
// oracle the parity tests (and SetGemmForceScalar) pit the intrinsic
// kernels against. The accumulator array is small and fully unrolled, so
// the compiler keeps it in vector registers through the K loop.
template <int PW>
void MicroKernel4xN(int k, const float* const a[kGemmTileM], const float* panel,
                    float acc[kGemmTileM][PW]) {
  const float* a0 = a[0];
  const float* a1 = a[1];
  const float* a2 = a[2];
  const float* a3 = a[3];
  int kk = 0;
  for (; kk + 2 <= k; kk += 2) {
    const float* bp = panel + static_cast<size_t>(kk) * PW;
    const float* bq = bp + PW;
    const float v0 = a0[kk], w0 = a0[kk + 1];
    const float v1 = a1[kk], w1 = a1[kk + 1];
    const float v2 = a2[kk], w2 = a2[kk + 1];
    const float v3 = a3[kk], w3 = a3[kk + 1];
    for (int j = 0; j < PW; ++j) {
      acc[0][j] += v0 * bp[j] + w0 * bq[j];
      acc[1][j] += v1 * bp[j] + w1 * bq[j];
      acc[2][j] += v2 * bp[j] + w2 * bq[j];
      acc[3][j] += v3 * bp[j] + w3 * bq[j];
    }
  }
  for (; kk < k; ++kk) {
    const float* bp = panel + static_cast<size_t>(kk) * PW;
    const float v0 = a0[kk];
    const float v1 = a1[kk];
    const float v2 = a2[kk];
    const float v3 = a3[kk];
    for (int j = 0; j < PW; ++j) {
      acc[0][j] += v0 * bp[j];
      acc[1][j] += v1 * bp[j];
      acc[2][j] += v2 * bp[j];
      acc[3][j] += v3 * bp[j];
    }
  }
}

// Remainder kernel: one A row against one packed panel.
template <int PW>
void MicroKernel1xN(int k, const float* a, const float* panel, float acc[PW]) {
  for (int kk = 0; kk < k; ++kk) {
    const float* bp = panel + static_cast<size_t>(kk) * PW;
    const float v = a[kk];
    for (int j = 0; j < PW; ++j) {
      acc[j] += v * bp[j];
    }
  }
}

// Epilogue-aware store of one tile row from an accumulator buffer (any
// width >= `width`). `ep` and `bias` are loop-invariant, so the compiler
// hoists the branches.
void StoreTileRow(const float* acc, const float* bias, GemmEpilogue ep, int n0,
                  int width, float* c_row) {
  for (int j = 0; j < width; ++j) {
    float v = acc[j];
    if (ep != GemmEpilogue::kNone && bias != nullptr) {
      v += bias[n0 + j];
    }
    if (ep == GemmEpilogue::kBiasRelu && v < 0.0f) {
      v = 0.0f;
    }
    c_row[n0 + j] = v;
  }
}

// Handles everything the full-width intrinsic path does not: remainder rows
// (m % 4) and the zero-padded partial panel at the right edge of C.
template <int PW>
void TileRowsScalar(int64_t row_begin, int64_t row_end, int panel_begin, int panel_end, int n,
                    int k, const float* a, const float* packed_b, const float* bias,
                    GemmEpilogue ep, float* c, int64_t ldc) {
  int64_t row = row_begin;
  for (; row + kGemmTileM <= row_end; row += kGemmTileM) {
    const float* rows[kGemmTileM];
    for (int i = 0; i < kGemmTileM; ++i) {
      rows[i] = a + (row + i) * k;
    }
    for (int panel = panel_begin; panel < panel_end; ++panel) {
      const int n0 = panel * PW;
      const int width = std::min(PW, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * k * PW;
      float acc[kGemmTileM][PW] = {};
      MicroKernel4xN<PW>(k, rows, pb, acc);
      for (int i = 0; i < kGemmTileM; ++i) {
        StoreTileRow(acc[i], bias, ep, n0, width, c + (row + i) * ldc);
      }
    }
  }
  for (; row < row_end; ++row) {
    const float* ar = a + row * k;
    for (int panel = panel_begin; panel < panel_end; ++panel) {
      const int n0 = panel * PW;
      const int width = std::min(PW, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * k * PW;
      float acc[PW] = {};
      MicroKernel1xN<PW>(k, ar, pb, acc);
      StoreTileRow(acc, bias, ep, n0, width, c + row * ldc);
    }
  }
}

void GemmPackedExScalar(int64_t m, int n, int k, const float* a, const float* packed_b,
                        const float* bias, GemmEpilogue ep, float* c, int64_t ldc,
                        int panel_width) {
  const int panels = (n + panel_width - 1) / panel_width;
  if (panel_width == kGemmTileNMin) {
    TileRowsScalar<kGemmTileNMin>(0, m, 0, panels, n, k, a, packed_b, bias, ep, c, ldc);
  } else {
    TileRowsScalar<kGemmTileN>(0, m, 0, panels, n, k, a, packed_b, bias, ep, c, ldc);
  }
}

#if defined(PERCIVAL_SIMD_AVX512)

// 4x32 tile: four broadcast A values FMA into 8 zmm accumulators per K step
// (2 zmm per row). The register budget mirrors the AVX2 4x16 tile — 8
// accumulators + 2 panel loads + 1 broadcast — but each lane is twice as
// wide, so one tile covers a full 32-channel panel.
inline void Tile4x32Avx512(int k, const float* a0, const float* a1, const float* a2,
                           const float* a3, const float* panel, __m512 acc[8]) {
  for (int kk = 0; kk < k; ++kk) {
    const float* bp = panel + static_cast<size_t>(kk) * kGemmTileN;
    const __m512 b0 = _mm512_loadu_ps(bp);
    const __m512 b1 = _mm512_loadu_ps(bp + 16);
    __m512 v = _mm512_set1_ps(a0[kk]);
    acc[0] = _mm512_fmadd_ps(v, b0, acc[0]);
    acc[1] = _mm512_fmadd_ps(v, b1, acc[1]);
    v = _mm512_set1_ps(a1[kk]);
    acc[2] = _mm512_fmadd_ps(v, b0, acc[2]);
    acc[3] = _mm512_fmadd_ps(v, b1, acc[3]);
    v = _mm512_set1_ps(a2[kk]);
    acc[4] = _mm512_fmadd_ps(v, b0, acc[4]);
    acc[5] = _mm512_fmadd_ps(v, b1, acc[5]);
    v = _mm512_set1_ps(a3[kk]);
    acc[6] = _mm512_fmadd_ps(v, b0, acc[6]);
    acc[7] = _mm512_fmadd_ps(v, b1, acc[7]);
  }
}

inline void StoreRowAvx512(__m512 lo, __m512 hi, const float* bias32, GemmEpilogue ep,
                           float* dst) {
  if (ep != GemmEpilogue::kNone && bias32 != nullptr) {
    lo = _mm512_add_ps(lo, _mm512_loadu_ps(bias32));
    hi = _mm512_add_ps(hi, _mm512_loadu_ps(bias32 + 16));
  }
  if (ep == GemmEpilogue::kBiasRelu) {
    const __m512 zero = _mm512_setzero_ps();
    lo = _mm512_max_ps(lo, zero);
    hi = _mm512_max_ps(hi, zero);
  }
  _mm512_storeu_ps(dst, lo);
  _mm512_storeu_ps(dst + 16, hi);
}

void GemmPackedExAvx512(int64_t m, int n, int k, const float* a, const float* packed_b,
                        const float* bias, GemmEpilogue ep, float* c, int64_t ldc) {
  const int panels = (n + kGemmTileN - 1) / kGemmTileN;
  int64_t row = 0;
  for (; row + kGemmTileM <= m; row += kGemmTileM) {
    const float* a0 = a + row * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c_row = c + row * ldc;
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * kGemmTileN;
      const int width = std::min(kGemmTileN, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * k * kGemmTileN;
      __m512 acc[8] = {_mm512_setzero_ps(), _mm512_setzero_ps(), _mm512_setzero_ps(),
                       _mm512_setzero_ps(), _mm512_setzero_ps(), _mm512_setzero_ps(),
                       _mm512_setzero_ps(), _mm512_setzero_ps()};
      // The packed panel is zero-padded to the full tile width, so the
      // vector K loop is safe even for partial panels; only the store needs
      // width handling.
      Tile4x32Avx512(k, a0, a1, a2, a3, pb, acc);
      if (width == kGemmTileN) {
        const float* b32 = bias != nullptr ? bias + n0 : nullptr;
        StoreRowAvx512(acc[0], acc[1], b32, ep, c_row + n0);
        StoreRowAvx512(acc[2], acc[3], b32, ep, c_row + ldc + n0);
        StoreRowAvx512(acc[4], acc[5], b32, ep, c_row + 2 * ldc + n0);
        StoreRowAvx512(acc[6], acc[7], b32, ep, c_row + 3 * ldc + n0);
      } else {
        float buf[kGemmTileM][kGemmTileN];
        for (int i = 0; i < kGemmTileM; ++i) {
          _mm512_storeu_ps(buf[i], acc[2 * i]);
          _mm512_storeu_ps(buf[i] + 16, acc[2 * i + 1]);
          StoreTileRow(buf[i], bias, ep, n0, width, c_row + i * ldc);
        }
      }
    }
  }
  // Remainder rows (m % 4) across every panel.
  TileRowsScalar<kGemmTileN>(row, m, 0, panels, n, k, a, packed_b, bias, ep, c, ldc);
}

// 16-wide sub-tile on AVX-512: one zmm covers the whole panel row, so a
// 4x16 tile is 4 accumulators, one panel load and 4 FMAs per K step —
// half the panel traffic and half the multiply work of the 4x32 tile,
// which is exactly the save on layers whose <=16 output channels would
// leave the wide panel's upper lanes multiplying zero padding.
inline void StoreRowAvx512W16(__m512 v, const float* bias16, GemmEpilogue ep, float* dst) {
  if (ep != GemmEpilogue::kNone && bias16 != nullptr) {
    v = _mm512_add_ps(v, _mm512_loadu_ps(bias16));
  }
  if (ep == GemmEpilogue::kBiasRelu) {
    v = _mm512_max_ps(v, _mm512_setzero_ps());
  }
  _mm512_storeu_ps(dst, v);
}

void GemmPackedExAvx512W16(int64_t m, int n, int k, const float* a, const float* packed_b,
                           const float* bias, GemmEpilogue ep, float* c, int64_t ldc) {
  constexpr int PW = kGemmTileNMin;
  constexpr int kRows = 8;  // one zmm per row leaves budget for an 8-row tile
  const int panels = (n + PW - 1) / PW;
  int64_t row = 0;
  for (; row + kRows <= m; row += kRows) {
    const float* rows[kRows];
    for (int i = 0; i < kRows; ++i) {
      rows[i] = a + (row + i) * k;
    }
    float* c_row = c + row * ldc;
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * PW;
      const int width = std::min(PW, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * k * PW;
      __m512 acc[kRows];
      for (int i = 0; i < kRows; ++i) {
        acc[i] = _mm512_setzero_ps();
      }
      for (int kk = 0; kk < k; ++kk) {
        const __m512 b0 = _mm512_loadu_ps(pb + static_cast<size_t>(kk) * PW);
        for (int i = 0; i < kRows; ++i) {
          acc[i] = _mm512_fmadd_ps(_mm512_set1_ps(rows[i][kk]), b0, acc[i]);
        }
      }
      if (width == PW) {
        const float* b16 = bias != nullptr ? bias + n0 : nullptr;
        for (int i = 0; i < kRows; ++i) {
          StoreRowAvx512W16(acc[i], b16, ep, c_row + i * ldc + n0);
        }
      } else {
        float buf[PW];
        for (int i = 0; i < kRows; ++i) {
          _mm512_storeu_ps(buf, acc[i]);
          StoreTileRow(buf, bias, ep, n0, width, c_row + i * ldc);
        }
      }
    }
  }
  TileRowsScalar<PW>(row, m, 0, panels, n, k, a, packed_b, bias, ep, c, ldc);
}

#elif defined(PERCIVAL_SIMD_AVX2)

// 4x16 tile: four broadcast A values FMA into 8 ymm accumulators per K step
// (2 ymm per row). 8 accumulators + 2 panel loads + 1 broadcast = 11 of the
// 16 ymm registers, so nothing spills.
inline void Tile4x16Avx2(int k, const float* a0, const float* a1, const float* a2,
                         const float* a3, const float* panel, __m256 acc[8]) {
  for (int kk = 0; kk < k; ++kk) {
    const float* bp = panel + static_cast<size_t>(kk) * kGemmTileN;
    const __m256 b0 = _mm256_loadu_ps(bp);
    const __m256 b1 = _mm256_loadu_ps(bp + 8);
    __m256 v = _mm256_broadcast_ss(a0 + kk);
    acc[0] = _mm256_fmadd_ps(v, b0, acc[0]);
    acc[1] = _mm256_fmadd_ps(v, b1, acc[1]);
    v = _mm256_broadcast_ss(a1 + kk);
    acc[2] = _mm256_fmadd_ps(v, b0, acc[2]);
    acc[3] = _mm256_fmadd_ps(v, b1, acc[3]);
    v = _mm256_broadcast_ss(a2 + kk);
    acc[4] = _mm256_fmadd_ps(v, b0, acc[4]);
    acc[5] = _mm256_fmadd_ps(v, b1, acc[5]);
    v = _mm256_broadcast_ss(a3 + kk);
    acc[6] = _mm256_fmadd_ps(v, b0, acc[6]);
    acc[7] = _mm256_fmadd_ps(v, b1, acc[7]);
  }
}

inline void StoreRowAvx2(__m256 lo, __m256 hi, const float* bias16, GemmEpilogue ep,
                         float* dst) {
  if (ep != GemmEpilogue::kNone && bias16 != nullptr) {
    lo = _mm256_add_ps(lo, _mm256_loadu_ps(bias16));
    hi = _mm256_add_ps(hi, _mm256_loadu_ps(bias16 + 8));
  }
  if (ep == GemmEpilogue::kBiasRelu) {
    const __m256 zero = _mm256_setzero_ps();
    lo = _mm256_max_ps(lo, zero);
    hi = _mm256_max_ps(hi, zero);
  }
  _mm256_storeu_ps(dst, lo);
  _mm256_storeu_ps(dst + 8, hi);
}

void GemmPackedExAvx2(int64_t m, int n, int k, const float* a, const float* packed_b,
                      const float* bias, GemmEpilogue ep, float* c, int64_t ldc) {
  const int panels = (n + kGemmTileN - 1) / kGemmTileN;
  int64_t row = 0;
  for (; row + kGemmTileM <= m; row += kGemmTileM) {
    const float* a0 = a + row * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c_row = c + row * ldc;
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * kGemmTileN;
      const int width = std::min(kGemmTileN, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * k * kGemmTileN;
      __m256 acc[8] = {_mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps(),
                       _mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps(),
                       _mm256_setzero_ps(), _mm256_setzero_ps()};
      // The packed panel is zero-padded to the full tile width, so the
      // vector K loop is safe even for partial panels (narrow squeeze
      // layers); only the store needs width handling.
      Tile4x16Avx2(k, a0, a1, a2, a3, pb, acc);
      if (width == kGemmTileN) {
        const float* b16 = bias != nullptr ? bias + n0 : nullptr;
        StoreRowAvx2(acc[0], acc[1], b16, ep, c_row + n0);
        StoreRowAvx2(acc[2], acc[3], b16, ep, c_row + ldc + n0);
        StoreRowAvx2(acc[4], acc[5], b16, ep, c_row + 2 * ldc + n0);
        StoreRowAvx2(acc[6], acc[7], b16, ep, c_row + 3 * ldc + n0);
      } else {
        float buf[kGemmTileM][kGemmTileN];
        for (int i = 0; i < kGemmTileM; ++i) {
          _mm256_storeu_ps(buf[i], acc[2 * i]);
          _mm256_storeu_ps(buf[i] + 8, acc[2 * i + 1]);
          StoreTileRow(buf[i], bias, ep, n0, width, c_row + i * ldc);
        }
      }
    }
  }
  // Remainder rows (m % 4) across every panel.
  TileRowsScalar<kGemmTileN>(row, m, 0, panels, n, k, a, packed_b, bias, ep, c, ldc);
}

#elif defined(PERCIVAL_SIMD_SSE2)

// 4x8 half-tile: the 16-wide panel is processed in two passes of 8 columns
// (offset jb in {0, 8}) so the working set is 8 xmm accumulators + 2 panel
// loads + 1 broadcast, fitting x86-64's 16 xmm registers without spills.
inline void Tile4x8Sse2(int k, const float* a0, const float* a1, const float* a2,
                        const float* a3, const float* panel, int jb, __m128 acc[8]) {
  for (int kk = 0; kk < k; ++kk) {
    const float* bp = panel + static_cast<size_t>(kk) * kGemmTileN + jb;
    const __m128 b0 = _mm_loadu_ps(bp);
    const __m128 b1 = _mm_loadu_ps(bp + 4);
    __m128 v = _mm_set1_ps(a0[kk]);
    acc[0] = _mm_add_ps(acc[0], _mm_mul_ps(v, b0));
    acc[1] = _mm_add_ps(acc[1], _mm_mul_ps(v, b1));
    v = _mm_set1_ps(a1[kk]);
    acc[2] = _mm_add_ps(acc[2], _mm_mul_ps(v, b0));
    acc[3] = _mm_add_ps(acc[3], _mm_mul_ps(v, b1));
    v = _mm_set1_ps(a2[kk]);
    acc[4] = _mm_add_ps(acc[4], _mm_mul_ps(v, b0));
    acc[5] = _mm_add_ps(acc[5], _mm_mul_ps(v, b1));
    v = _mm_set1_ps(a3[kk]);
    acc[6] = _mm_add_ps(acc[6], _mm_mul_ps(v, b0));
    acc[7] = _mm_add_ps(acc[7], _mm_mul_ps(v, b1));
  }
}

inline void StoreRowSse2(__m128 lo, __m128 hi, const float* bias8, GemmEpilogue ep,
                         float* dst) {
  if (ep != GemmEpilogue::kNone && bias8 != nullptr) {
    lo = _mm_add_ps(lo, _mm_loadu_ps(bias8));
    hi = _mm_add_ps(hi, _mm_loadu_ps(bias8 + 4));
  }
  if (ep == GemmEpilogue::kBiasRelu) {
    const __m128 zero = _mm_setzero_ps();
    lo = _mm_max_ps(lo, zero);
    hi = _mm_max_ps(hi, zero);
  }
  _mm_storeu_ps(dst, lo);
  _mm_storeu_ps(dst + 4, hi);
}

void GemmPackedExSse2(int64_t m, int n, int k, const float* a, const float* packed_b,
                      const float* bias, GemmEpilogue ep, float* c, int64_t ldc) {
  const int panels = (n + kGemmTileN - 1) / kGemmTileN;
  int64_t row = 0;
  for (; row + kGemmTileM <= m; row += kGemmTileM) {
    const float* a0 = a + row * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c_row = c + row * ldc;
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * kGemmTileN;
      const int width = std::min(kGemmTileN, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * k * kGemmTileN;
      for (int jb = 0; jb < kGemmTileN; jb += 8) {
        if (jb >= width) {
          break;  // fully in the zero-padded tail, nothing to store
        }
        __m128 acc[8] = {_mm_setzero_ps(), _mm_setzero_ps(), _mm_setzero_ps(),
                         _mm_setzero_ps(), _mm_setzero_ps(), _mm_setzero_ps(),
                         _mm_setzero_ps(), _mm_setzero_ps()};
        // The packed panel is zero-padded to the full tile width, so the
        // vector K loop is safe even for partial panels (narrow squeeze
        // layers); only the store needs width handling.
        Tile4x8Sse2(k, a0, a1, a2, a3, pb, jb, acc);
        if (width - jb >= 8) {
          const float* b8 = bias != nullptr ? bias + n0 + jb : nullptr;
          StoreRowSse2(acc[0], acc[1], b8, ep, c_row + n0 + jb);
          StoreRowSse2(acc[2], acc[3], b8, ep, c_row + ldc + n0 + jb);
          StoreRowSse2(acc[4], acc[5], b8, ep, c_row + 2 * ldc + n0 + jb);
          StoreRowSse2(acc[6], acc[7], b8, ep, c_row + 3 * ldc + n0 + jb);
        } else {
          float buf[kGemmTileM][8];
          for (int i = 0; i < kGemmTileM; ++i) {
            _mm_storeu_ps(buf[i], acc[2 * i]);
            _mm_storeu_ps(buf[i] + 4, acc[2 * i + 1]);
            StoreTileRow(buf[i], bias, ep, n0 + jb, width - jb, c_row + i * ldc);
          }
        }
      }
    }
  }
  // Remainder rows (m % 4) across every panel.
  TileRowsScalar<kGemmTileN>(row, m, 0, panels, n, k, a, packed_b, bias, ep, c, ldc);
}

#endif  // SIMD variant

// ------------------------------------------------------- int8 micro-kernel --

// Epilogue output sinks. Every int8 micro-kernel below is templated on one
// of these two policies, which own ONLY the final step of the epilogue —
// where the dequantized float value goes:
//   * FloatEpilogueSink stores it (the classic float-staged dataflow);
//   * RequantEpilogueSink requantizes it to the CONSUMER layer's uint8
//     codes with exactly the QuantizeActivations map (round half-to-even,
//     + zero_point, clamp [0, 255]) so adjacent int8 convs hand codes to
//     each other without a float activation tensor in between.
// Everything upstream of the sink — int32 accumulation, zero-point
// correction, combined-scale multiply, the EXPLICIT single-rounding fused
// multiply-add with the bias — is shared, so the float being requantized is
// bit-identical to the float the staged path would have stored. That is the
// whole bit-exactness argument for the zero-float plan:
//   requant-in-epilogue == float store + separate QuantizeActivations sweep
// code for code, on every tier and at both panel widths.
struct FloatEpilogueSink {
  using Out = float;
  void Put(float* c_row, int idx, float v) const { c_row[idx] = v; }
#if defined(PERCIVAL_SIMD_AVX512)
  void Store16(float* dst, int n0, __mmask16 mask, __m512 v) const {
    _mm512_mask_storeu_ps(dst + n0, mask, v);
  }
#endif
#if defined(PERCIVAL_SIMD_INT8_AVX2)
  void Store8(float* dst, __m256 v) const { _mm256_storeu_ps(dst, v); }
#endif
#if defined(PERCIVAL_SIMD_INT8_SSSE3)
  void Store4(float* dst, __m128 v) const { _mm_storeu_ps(dst, v); }
#endif
};

struct RequantEpilogueSink {
  using Out = uint8_t;
  float inv_scale = 1.0f;  // 1 / consumer scale, divided once at dispatch
  int32_t zero_point = 0;
  // Mirrors the QuantizeActivations scalar tail exactly.
  void Put(uint8_t* c_row, int idx, float v) const {
    const int32_t q = zero_point + static_cast<int32_t>(std::nearbyint(v * inv_scale));
    c_row[idx] = static_cast<uint8_t>(std::min(255, std::max(0, q)));
  }
  // The vector stores mirror the QuantizeActivations vector bodies:
  // cvtps_epi32 rounds half-to-even like the scalar nearbyint, the max /
  // saturating packs implement the [0, 255] clamp, so vector and scalar
  // requantization agree code for code.
#if defined(PERCIVAL_SIMD_AVX512)
  void Store16(uint8_t* dst, int n0, __mmask16 mask, __m512 v) const {
    __m512i q = _mm512_cvtps_epi32(_mm512_mul_ps(v, _mm512_set1_ps(inv_scale)));
    q = _mm512_add_epi32(q, _mm512_set1_epi32(zero_point));
    q = _mm512_max_epi32(q, _mm512_setzero_si512());
    _mm512_mask_cvtusepi32_storeu_epi8(dst + n0, mask, q);
  }
#endif
#if defined(PERCIVAL_SIMD_INT8_AVX2)
  void Store8(uint8_t* dst, __m256 v) const {
    __m256i q = _mm256_cvtps_epi32(_mm256_mul_ps(v, _mm256_set1_ps(inv_scale)));
    q = _mm256_add_epi32(q, _mm256_set1_epi32(zero_point));
    const __m128i p16 =
        _mm_packs_epi32(_mm256_castsi256_si128(q), _mm256_extracti128_si256(q, 1));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst), _mm_packus_epi16(p16, p16));
  }
#endif
#if defined(PERCIVAL_SIMD_INT8_SSSE3)
  void Store4(uint8_t* dst, __m128 v) const {
    __m128i q = _mm_cvtps_epi32(_mm_mul_ps(v, _mm_set1_ps(inv_scale)));
    q = _mm_add_epi32(q, _mm_set1_epi32(zero_point));
    const __m128i p8 = _mm_packus_epi16(_mm_packs_epi32(q, q), _mm_setzero_si128());
    const int32_t out = _mm_cvtsi128_si32(p8);
    std::memcpy(dst, &out, sizeof(out));
  }
#endif
};

// Dequantizing store of one tile row of int32 accumulators:
// c[j] = sink(epilogue(fma(a_scale * w_scale[j], acc[j] - zp * row_sum[j],
// bias))). `scales` / `row_sums` are the panel-padded arrays indexed from
// n0.
//
// The bias addition is an EXPLICIT single-rounding fused multiply-add, here
// and in the vectorized AVX-512 / AVX2 / SSE epilogues below. With a plain
// `mul` + `add` the compiler's default fp-contraction is free to fuse some
// inlined copies and not others, and the cross-width / cross-tier
// bit-exactness contract would then hinge on compiler whim per call site
// (observed: the 4x32 kernel's epilogue contracted while the 4x16 one's did
// not, a last-ulp split the parity tests caught). Spelling the fma out pins
// one rounding everywhere.
template <typename Sink>
void StoreInt8TileRow(const int32_t* acc, const Int8PackedFilters& packed,
                      const ActivationQuant& quant, const float* bias, GemmEpilogue ep,
                      int n0, int width, typename Sink::Out* c_row, const Sink& sink) {
  const float* scales = packed.scales.data();
  const int32_t* row_sums = packed.row_sums.data();
  const bool add_bias = ep != GemmEpilogue::kNone && bias != nullptr;
  for (int j = 0; j < width; ++j) {
    const int32_t corrected = acc[j] - quant.zero_point * row_sums[n0 + j];
    const float combined = quant.scale * scales[n0 + j];
    float v = add_bias ? std::fma(combined, static_cast<float>(corrected), bias[n0 + j])
                       : combined * static_cast<float>(corrected);
    if (ep == GemmEpilogue::kBiasRelu && v < 0.0f) {
      v = 0.0f;
    }
    sink.Put(c_row, n0 + j, v);
  }
}

// Scalar int8 tile kernel over the interleaved panel layout, templated on
// the width the panels were packed at. Always compiled: the oracle for the
// intrinsic kernels and the fallback for builds without SSSE3. Accumulation
// is wide int32 throughout, which makes it bit-exact against BOTH intrinsic
// families for their respective weight contracts: the maddubs tiers never
// saturate under ±64 codes, and the VNNI tier's vpdpbusd is itself an exact
// int32 sum under the full ±127 codes — so SetGemmForceScalar parity holds
// to the last epilogue ulp on every tier and at either panel width.
template <int PW, typename Sink>
void Int8TileRowsScalar(int64_t row_begin, int64_t row_end, const uint8_t* a,
                        const Int8PackedFilters& packed, const ActivationQuant& quant,
                        const float* bias, GemmEpilogue ep, typename Sink::Out* c,
                        int64_t ldc, const Sink& sink) {
  const int n = packed.n;
  const int k_padded = packed.k_padded;
  const int groups = k_padded / kInt8KUnit;
  const int panels = (n + PW - 1) / PW;
  int64_t row = row_begin;
  for (; row + kGemmTileM <= row_end; row += kGemmTileM) {
    const uint8_t* rows[kGemmTileM];
    for (int i = 0; i < kGemmTileM; ++i) {
      rows[i] = a + (row + i) * k_padded;
    }
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * PW;
      const int width = std::min(PW, n - n0);
      const int8_t* pb = packed.data.data() +
                         static_cast<size_t>(panel) * groups * PW * kInt8KUnit;
      int32_t acc[kGemmTileM][PW] = {};
      for (int g = 0; g < groups; ++g) {
        const int8_t* group = pb + static_cast<size_t>(g) * PW * kInt8KUnit;
        for (int i = 0; i < kGemmTileM; ++i) {
          const uint8_t* ar = rows[i] + g * kInt8KUnit;
          for (int j = 0; j < PW; ++j) {
            const int8_t* bj = group + j * kInt8KUnit;
            acc[i][j] += static_cast<int32_t>(ar[0]) * bj[0] +
                         static_cast<int32_t>(ar[1]) * bj[1] +
                         static_cast<int32_t>(ar[2]) * bj[2] +
                         static_cast<int32_t>(ar[3]) * bj[3];
          }
        }
      }
      for (int i = 0; i < kGemmTileM; ++i) {
        StoreInt8TileRow(acc[i], packed, quant, bias, ep, n0, width, c + (row + i) * ldc,
                         sink);
      }
    }
  }
  for (; row < row_end; ++row) {
    const uint8_t* ar = a + row * k_padded;
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * PW;
      const int width = std::min(PW, n - n0);
      const int8_t* pb = packed.data.data() +
                         static_cast<size_t>(panel) * groups * PW * kInt8KUnit;
      int32_t acc[PW] = {};
      for (int g = 0; g < groups; ++g) {
        const int8_t* group = pb + static_cast<size_t>(g) * PW * kInt8KUnit;
        const uint8_t* ag = ar + g * kInt8KUnit;
        for (int j = 0; j < PW; ++j) {
          const int8_t* bj = group + j * kInt8KUnit;
          acc[j] += static_cast<int32_t>(ag[0]) * bj[0] +
                    static_cast<int32_t>(ag[1]) * bj[1] +
                    static_cast<int32_t>(ag[2]) * bj[2] +
                    static_cast<int32_t>(ag[3]) * bj[3];
        }
      }
      StoreInt8TileRow(acc, packed, quant, bias, ep, n0, width, c + row * ldc, sink);
    }
  }
}

template <typename Sink>
void GemmInt8PackedExScalar(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                            const ActivationQuant& quant, const float* bias, GemmEpilogue ep,
                            typename Sink::Out* c, int64_t ldc, const Sink& sink) {
  if (packed.panel_width == kGemmTileNMin) {
    Int8TileRowsScalar<kGemmTileNMin>(0, m, a, packed, quant, bias, ep, c, ldc, sink);
  } else {
    Int8TileRowsScalar<kGemmTileN>(0, m, a, packed, quant, bias, ep, c, ldc, sink);
  }
}

#if !defined(PERCIVAL_SIMD_INT8_SCALAR)
// Broadcast of 4 consecutive uint8 activation codes as one 32-bit lane
// pattern; rows of the quantized A matrix are k_padded (multiple of 4)
// bytes, so the load is always 4-byte aligned and in bounds.
inline int32_t LoadKGroup(const uint8_t* p) {
  int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
#endif

#if defined(PERCIVAL_SIMD_AVX512)
// Vectorized dequantizing store of one 16-lane accumulator segment
// (channels n0..n0+15 of a panel): the int8 epilogue is otherwise a scalar
// per-element loop, and at the narrow shapes the planner targets it costs
// more than the K loop it follows. Every float operation replicates the
// scalar StoreInt8TileRow exactly — one combined-scale multiply, then an
// EXPLICIT fused multiply-add with the bias (see the contraction note
// there), then max(0, ·) — so force-scalar parity stays bit-exact.
// `scales`/`row_sums` are padded to the full panel, making the 16-wide
// metadata loads safe even when only `width` lanes store (masked, like the
// bias load, which has no padding). The sink owns the final store: masked
// float store, or masked requantize-to-u8.
template <typename Sink>
inline void StoreInt8RowAvx512(__m512i acc, const Int8PackedFilters& packed,
                               const ActivationQuant& quant, const float* bias,
                               GemmEpilogue ep, int n0, int width, typename Sink::Out* dst,
                               const Sink& sink) {
  const __mmask16 mask =
      width >= 16 ? static_cast<__mmask16>(0xFFFF) : static_cast<__mmask16>((1u << width) - 1);
  const __m512i row_sums = _mm512_loadu_si512(packed.row_sums.data() + n0);
  const __m512i corrected =
      _mm512_sub_epi32(acc, _mm512_mullo_epi32(_mm512_set1_epi32(quant.zero_point), row_sums));
  const __m512 combined =
      _mm512_mul_ps(_mm512_set1_ps(quant.scale), _mm512_loadu_ps(packed.scales.data() + n0));
  const __m512 corrected_f = _mm512_cvtepi32_ps(corrected);
  __m512 v;
  if (ep != GemmEpilogue::kNone && bias != nullptr) {
    v = _mm512_fmadd_ps(combined, corrected_f, _mm512_maskz_loadu_ps(mask, bias + n0));
  } else {
    v = _mm512_mul_ps(combined, corrected_f);
  }
  if (ep == GemmEpilogue::kBiasRelu) {
    v = _mm512_max_ps(v, _mm512_setzero_ps());
  }
  sink.Store16(dst, n0, mask, v);
}
#endif

#if defined(PERCIVAL_SIMD_INT8_VNNI)

// 4 rows x one 32-channel panel on AVX-512 VNNI. Same walk as the maddubs
// AVX-512 kernel, but vpdpbusd replaces the maddubs/madd/add triple: lane c
// of _mm512_dpbusd_epi32(acc, va, b) is acc[c] plus channel c's exact 4-tap
// u8*s8 dot product, summed directly in int32 with no saturating 16-bit
// intermediate — which is why this tier runs the full ±127 weight codes
// (see kInt8WeightMax). One instruction per accumulator per K group instead
// of three, 8 zmm accumulators, same register budget as the float tile.
template <typename Sink>
void GemmInt8PackedExVnni(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                          const ActivationQuant& quant, const float* bias, GemmEpilogue ep,
                          typename Sink::Out* c, int64_t ldc, const Sink& sink) {
  const int n = packed.n;
  const int k_padded = packed.k_padded;
  const int groups = k_padded / kInt8KUnit;
  const int panels = (n + kGemmTileN - 1) / kGemmTileN;
  int64_t row = 0;
  for (; row + kGemmTileM <= m; row += kGemmTileM) {
    const uint8_t* a0 = a + row * k_padded;
    const uint8_t* a1 = a0 + k_padded;
    const uint8_t* a2 = a1 + k_padded;
    const uint8_t* a3 = a2 + k_padded;
    typename Sink::Out* c_row = c + row * ldc;
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * kGemmTileN;
      const int width = std::min(kGemmTileN, n - n0);
      const int8_t* pb = packed.data.data() +
                         static_cast<size_t>(panel) * groups * kGemmTileN * kInt8KUnit;
      __m512i acc[8] = {_mm512_setzero_si512(), _mm512_setzero_si512(),
                        _mm512_setzero_si512(), _mm512_setzero_si512(),
                        _mm512_setzero_si512(), _mm512_setzero_si512(),
                        _mm512_setzero_si512(), _mm512_setzero_si512()};
      for (int g = 0; g < groups; ++g) {
        const int8_t* group = pb + static_cast<size_t>(g) * kGemmTileN * kInt8KUnit;
        const __m512i b0 = _mm512_loadu_si512(group);
        const __m512i b1 = _mm512_loadu_si512(group + 64);
        __m512i va = _mm512_set1_epi32(LoadKGroup(a0 + g * kInt8KUnit));
        acc[0] = _mm512_dpbusd_epi32(acc[0], va, b0);
        acc[1] = _mm512_dpbusd_epi32(acc[1], va, b1);
        va = _mm512_set1_epi32(LoadKGroup(a1 + g * kInt8KUnit));
        acc[2] = _mm512_dpbusd_epi32(acc[2], va, b0);
        acc[3] = _mm512_dpbusd_epi32(acc[3], va, b1);
        va = _mm512_set1_epi32(LoadKGroup(a2 + g * kInt8KUnit));
        acc[4] = _mm512_dpbusd_epi32(acc[4], va, b0);
        acc[5] = _mm512_dpbusd_epi32(acc[5], va, b1);
        va = _mm512_set1_epi32(LoadKGroup(a3 + g * kInt8KUnit));
        acc[6] = _mm512_dpbusd_epi32(acc[6], va, b0);
        acc[7] = _mm512_dpbusd_epi32(acc[7], va, b1);
      }
      for (int i = 0; i < kGemmTileM; ++i) {
        typename Sink::Out* dst = c_row + i * ldc;
        StoreInt8RowAvx512(acc[2 * i], packed, quant, bias, ep, n0, std::min(width, 16),
                           dst, sink);
        if (width > 16) {
          StoreInt8RowAvx512(acc[2 * i + 1], packed, quant, bias, ep, n0 + 16, width - 16,
                             dst, sink);
        }
      }
    }
  }
  Int8TileRowsScalar<kGemmTileN>(row, m, a, packed, quant, bias, ep, c, ldc, sink);
}

// 16-wide VNNI sub-tile: one zmm covers the panel's 16 channels x 4 K
// bytes, so each K group is one load + one vpdpbusd per row instead of the
// 4x32 tile's two loads + two per row — and the single accumulator per row
// leaves room for an 8-row tile, halving panel traffic again. The
// accumulators dequantize and store straight from registers.
template <typename Sink>
void GemmInt8PackedExVnniW16(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                             const ActivationQuant& quant, const float* bias, GemmEpilogue ep,
                             typename Sink::Out* c, int64_t ldc, const Sink& sink) {
  constexpr int PW = kGemmTileNMin;
  constexpr int kRows = 8;
  const int n = packed.n;
  const int k_padded = packed.k_padded;
  const int groups = k_padded / kInt8KUnit;
  const int panels = (n + PW - 1) / PW;
  int64_t row = 0;
  for (; row + kRows <= m; row += kRows) {
    const uint8_t* rows[kRows];
    for (int i = 0; i < kRows; ++i) {
      rows[i] = a + (row + i) * k_padded;
    }
    typename Sink::Out* c_row = c + row * ldc;
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * PW;
      const int width = std::min(PW, n - n0);
      const int8_t* pb = packed.data.data() +
                         static_cast<size_t>(panel) * groups * PW * kInt8KUnit;
      __m512i acc[kRows];
      for (int i = 0; i < kRows; ++i) {
        acc[i] = _mm512_setzero_si512();
      }
      for (int g = 0; g < groups; ++g) {
        const __m512i b0 =
            _mm512_loadu_si512(pb + static_cast<size_t>(g) * PW * kInt8KUnit);
        for (int i = 0; i < kRows; ++i) {
          acc[i] = _mm512_dpbusd_epi32(
              acc[i], _mm512_set1_epi32(LoadKGroup(rows[i] + g * kInt8KUnit)), b0);
        }
      }
      for (int i = 0; i < kRows; ++i) {
        StoreInt8RowAvx512(acc[i], packed, quant, bias, ep, n0, width, c_row + i * ldc,
                           sink);
      }
    }
  }
  Int8TileRowsScalar<PW>(row, m, a, packed, quant, bias, ep, c, ldc, sink);
}

#elif defined(PERCIVAL_SIMD_INT8_AVX512)

// 4 rows x one 32-channel panel. Per K group: 2 zmm panel loads (32
// channels x 4 bytes), one 4-byte broadcast per row; maddubs pairs
// u8*s8 into 16-bit, madd(ones) finishes the 4-K reduction into int32 —
// lane c of the result is exactly channel c's 4-tap dot product. 8 zmm
// accumulators, same budget as the float tile.
template <typename Sink>
void GemmInt8PackedExAvx512(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                            const ActivationQuant& quant, const float* bias, GemmEpilogue ep,
                            typename Sink::Out* c, int64_t ldc, const Sink& sink) {
  const int n = packed.n;
  const int k_padded = packed.k_padded;
  const int groups = k_padded / kInt8KUnit;
  const int panels = (n + kGemmTileN - 1) / kGemmTileN;
  const __m512i ones = _mm512_set1_epi16(1);
  int64_t row = 0;
  for (; row + kGemmTileM <= m; row += kGemmTileM) {
    const uint8_t* a0 = a + row * k_padded;
    const uint8_t* a1 = a0 + k_padded;
    const uint8_t* a2 = a1 + k_padded;
    const uint8_t* a3 = a2 + k_padded;
    typename Sink::Out* c_row = c + row * ldc;
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * kGemmTileN;
      const int width = std::min(kGemmTileN, n - n0);
      const int8_t* pb = packed.data.data() +
                         static_cast<size_t>(panel) * groups * kGemmTileN * kInt8KUnit;
      __m512i acc[8] = {_mm512_setzero_si512(), _mm512_setzero_si512(),
                        _mm512_setzero_si512(), _mm512_setzero_si512(),
                        _mm512_setzero_si512(), _mm512_setzero_si512(),
                        _mm512_setzero_si512(), _mm512_setzero_si512()};
      for (int g = 0; g < groups; ++g) {
        const int8_t* group = pb + static_cast<size_t>(g) * kGemmTileN * kInt8KUnit;
        const __m512i b0 = _mm512_loadu_si512(group);
        const __m512i b1 = _mm512_loadu_si512(group + 64);
        __m512i va = _mm512_set1_epi32(LoadKGroup(a0 + g * kInt8KUnit));
        acc[0] = _mm512_add_epi32(acc[0], _mm512_madd_epi16(_mm512_maddubs_epi16(va, b0), ones));
        acc[1] = _mm512_add_epi32(acc[1], _mm512_madd_epi16(_mm512_maddubs_epi16(va, b1), ones));
        va = _mm512_set1_epi32(LoadKGroup(a1 + g * kInt8KUnit));
        acc[2] = _mm512_add_epi32(acc[2], _mm512_madd_epi16(_mm512_maddubs_epi16(va, b0), ones));
        acc[3] = _mm512_add_epi32(acc[3], _mm512_madd_epi16(_mm512_maddubs_epi16(va, b1), ones));
        va = _mm512_set1_epi32(LoadKGroup(a2 + g * kInt8KUnit));
        acc[4] = _mm512_add_epi32(acc[4], _mm512_madd_epi16(_mm512_maddubs_epi16(va, b0), ones));
        acc[5] = _mm512_add_epi32(acc[5], _mm512_madd_epi16(_mm512_maddubs_epi16(va, b1), ones));
        va = _mm512_set1_epi32(LoadKGroup(a3 + g * kInt8KUnit));
        acc[6] = _mm512_add_epi32(acc[6], _mm512_madd_epi16(_mm512_maddubs_epi16(va, b0), ones));
        acc[7] = _mm512_add_epi32(acc[7], _mm512_madd_epi16(_mm512_maddubs_epi16(va, b1), ones));
      }
      for (int i = 0; i < kGemmTileM; ++i) {
        typename Sink::Out* dst = c_row + i * ldc;
        StoreInt8RowAvx512(acc[2 * i], packed, quant, bias, ep, n0, std::min(width, 16),
                           dst, sink);
        if (width > 16) {
          StoreInt8RowAvx512(acc[2 * i + 1], packed, quant, bias, ep, n0 + 16, width - 16,
                             dst, sink);
        }
      }
    }
  }
  Int8TileRowsScalar<kGemmTileN>(row, m, a, packed, quant, bias, ep, c, ldc, sink);
}

// 16-wide maddubs sub-tile: the AVX-512BW analogue of the VNNI W16 kernel
// above — one zmm panel load per K group, maddubs/madd pair per row, 8-row
// tile.
template <typename Sink>
void GemmInt8PackedExAvx512W16(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                               const ActivationQuant& quant, const float* bias,
                               GemmEpilogue ep, typename Sink::Out* c, int64_t ldc,
                               const Sink& sink) {
  constexpr int PW = kGemmTileNMin;
  constexpr int kRows = 8;
  const int n = packed.n;
  const int k_padded = packed.k_padded;
  const int groups = k_padded / kInt8KUnit;
  const int panels = (n + PW - 1) / PW;
  const __m512i ones = _mm512_set1_epi16(1);
  int64_t row = 0;
  for (; row + kRows <= m; row += kRows) {
    const uint8_t* rows[kRows];
    for (int i = 0; i < kRows; ++i) {
      rows[i] = a + (row + i) * k_padded;
    }
    typename Sink::Out* c_row = c + row * ldc;
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * PW;
      const int width = std::min(PW, n - n0);
      const int8_t* pb = packed.data.data() +
                         static_cast<size_t>(panel) * groups * PW * kInt8KUnit;
      __m512i acc[kRows];
      for (int i = 0; i < kRows; ++i) {
        acc[i] = _mm512_setzero_si512();
      }
      for (int g = 0; g < groups; ++g) {
        const __m512i b0 =
            _mm512_loadu_si512(pb + static_cast<size_t>(g) * PW * kInt8KUnit);
        for (int i = 0; i < kRows; ++i) {
          const __m512i va = _mm512_set1_epi32(LoadKGroup(rows[i] + g * kInt8KUnit));
          acc[i] =
              _mm512_add_epi32(acc[i], _mm512_madd_epi16(_mm512_maddubs_epi16(va, b0), ones));
        }
      }
      for (int i = 0; i < kRows; ++i) {
        StoreInt8RowAvx512(acc[i], packed, quant, bias, ep, n0, width, c_row + i * ldc,
                           sink);
      }
    }
  }
  Int8TileRowsScalar<PW>(row, m, a, packed, quant, bias, ep, c, ldc, sink);
}

#elif defined(PERCIVAL_SIMD_INT8_AVX2)

// Vectorized epilogue over one row's int32 accumulator buffer (dumped from
// the ymm accumulators): full 8-lane groups run the vector dequantize —
// zero-point correction, combined-scale multiply, the bias folded via
// hardware FMA (the same single rounding as the scalar std::fma, see the
// contraction note at StoreInt8TileRow), max(0, ·) — and the sub-8 tail
// reuses the scalar store, which is lane-for-lane the same math. The
// `scales`/`row_sums` loads are panel-padded; the bias load is bounded by
// j + 8 <= width <= n - n0.
template <typename Sink>
inline void StoreInt8RowAvx2(const int32_t* acc, const Int8PackedFilters& packed,
                             const ActivationQuant& quant, const float* bias, GemmEpilogue ep,
                             int n0, int width, typename Sink::Out* c_row, const Sink& sink) {
  const bool add_bias = ep != GemmEpilogue::kNone && bias != nullptr;
  const __m256i vzp = _mm256_set1_epi32(quant.zero_point);
  const __m256 vscale = _mm256_set1_ps(quant.scale);
  int j = 0;
  for (; j + 8 <= width; j += 8) {
    const __m256i row_sums = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(packed.row_sums.data() + n0 + j));
    const __m256i corrected = _mm256_sub_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j)),
        _mm256_mullo_epi32(vzp, row_sums));
    const __m256 combined =
        _mm256_mul_ps(vscale, _mm256_loadu_ps(packed.scales.data() + n0 + j));
    const __m256 corrected_f = _mm256_cvtepi32_ps(corrected);
    __m256 v = add_bias ? _mm256_fmadd_ps(combined, corrected_f,
                                          _mm256_loadu_ps(bias + n0 + j))
                        : _mm256_mul_ps(combined, corrected_f);
    if (ep == GemmEpilogue::kBiasRelu) {
      v = _mm256_max_ps(v, _mm256_setzero_ps());
    }
    sink.Store8(c_row + n0 + j, v);
  }
  if (j < width) {
    StoreInt8TileRow(acc + j, packed, quant, bias, ep, n0 + j, width - j, c_row, sink);
  }
}

// 4 rows x one 16-channel panel, 256-bit maddubs/madd: per K group, b0
// covers channels 0..7 and b1 channels 8..15 (4 bytes each); lane c of
// madd(maddubs(va, b), ones) is channel c's exact 4-tap dot product.
template <typename Sink>
void GemmInt8PackedExAvx2(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                          const ActivationQuant& quant, const float* bias, GemmEpilogue ep,
                          typename Sink::Out* c, int64_t ldc, const Sink& sink) {
  const int n = packed.n;
  const int k_padded = packed.k_padded;
  const int groups = k_padded / kInt8KUnit;
  const int panels = (n + kGemmTileN - 1) / kGemmTileN;
  const __m256i ones = _mm256_set1_epi16(1);
  int64_t row = 0;
  for (; row + kGemmTileM <= m; row += kGemmTileM) {
    const uint8_t* a0 = a + row * k_padded;
    const uint8_t* a1 = a0 + k_padded;
    const uint8_t* a2 = a1 + k_padded;
    const uint8_t* a3 = a2 + k_padded;
    typename Sink::Out* c_row = c + row * ldc;
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * kGemmTileN;
      const int width = std::min(kGemmTileN, n - n0);
      const int8_t* pb = packed.data.data() +
                         static_cast<size_t>(panel) * groups * kGemmTileN * kInt8KUnit;
      __m256i acc[8] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                        _mm256_setzero_si256(), _mm256_setzero_si256(),
                        _mm256_setzero_si256(), _mm256_setzero_si256(),
                        _mm256_setzero_si256(), _mm256_setzero_si256()};
      for (int g = 0; g < groups; ++g) {
        const int8_t* group = pb + static_cast<size_t>(g) * kGemmTileN * kInt8KUnit;
        const __m256i b0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(group));
        const __m256i b1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(group + 32));
        __m256i va = _mm256_set1_epi32(LoadKGroup(a0 + g * kInt8KUnit));
        acc[0] = _mm256_add_epi32(acc[0], _mm256_madd_epi16(_mm256_maddubs_epi16(va, b0), ones));
        acc[1] = _mm256_add_epi32(acc[1], _mm256_madd_epi16(_mm256_maddubs_epi16(va, b1), ones));
        va = _mm256_set1_epi32(LoadKGroup(a1 + g * kInt8KUnit));
        acc[2] = _mm256_add_epi32(acc[2], _mm256_madd_epi16(_mm256_maddubs_epi16(va, b0), ones));
        acc[3] = _mm256_add_epi32(acc[3], _mm256_madd_epi16(_mm256_maddubs_epi16(va, b1), ones));
        va = _mm256_set1_epi32(LoadKGroup(a2 + g * kInt8KUnit));
        acc[4] = _mm256_add_epi32(acc[4], _mm256_madd_epi16(_mm256_maddubs_epi16(va, b0), ones));
        acc[5] = _mm256_add_epi32(acc[5], _mm256_madd_epi16(_mm256_maddubs_epi16(va, b1), ones));
        va = _mm256_set1_epi32(LoadKGroup(a3 + g * kInt8KUnit));
        acc[6] = _mm256_add_epi32(acc[6], _mm256_madd_epi16(_mm256_maddubs_epi16(va, b0), ones));
        acc[7] = _mm256_add_epi32(acc[7], _mm256_madd_epi16(_mm256_maddubs_epi16(va, b1), ones));
      }
      int32_t buf[kGemmTileM][kGemmTileN];
      for (int i = 0; i < kGemmTileM; ++i) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(buf[i]), acc[2 * i]);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(buf[i] + 8), acc[2 * i + 1]);
        StoreInt8RowAvx2(buf[i], packed, quant, bias, ep, n0, width, c_row + i * ldc, sink);
      }
    }
  }
  Int8TileRowsScalar<kGemmTileN>(row, m, a, packed, quant, bias, ep, c, ldc, sink);
}

#elif defined(PERCIVAL_SIMD_INT8_SSSE3)

// SSE2 32-bit lane multiply (_mm_mullo_epi32 is SSE4.1, above this tier):
// even/odd lane products via _mm_mul_epu32, whose low 32 bits are correct
// for any operand signs, then re-interleave.
inline __m128i MulLo32Sse2(__m128i a, __m128i b) {
  const __m128i even = _mm_mul_epu32(a, b);
  const __m128i odd = _mm_mul_epu32(_mm_srli_epi64(a, 32), _mm_srli_epi64(b, 32));
  return _mm_unpacklo_epi32(_mm_shuffle_epi32(even, _MM_SHUFFLE(0, 0, 2, 0)),
                            _mm_shuffle_epi32(odd, _MM_SHUFFLE(0, 0, 2, 0)));
}

// 128-bit analogue of StoreInt8RowAvx2 for the pre-FMA SSSE3 tier. The
// zero-point correction, combined-scale multiply, ReLU, and the
// requantizing pack are vectorized; the bias fold stays four scalar
// std::fma calls because this ISA has no fused multiply-add and emulating
// one (e.g. in binary64) can double-round a last ulp away from the scalar
// oracle — the explicit fma calls keep the cross-tier contract exact, and
// glibc dispatches them to the FMA3 hardware instruction when the CPU has
// one.
template <typename Sink>
inline void StoreInt8RowSse(const int32_t* acc, const Int8PackedFilters& packed,
                            const ActivationQuant& quant, const float* bias, GemmEpilogue ep,
                            int n0, int width, typename Sink::Out* c_row, const Sink& sink) {
  const bool add_bias = ep != GemmEpilogue::kNone && bias != nullptr;
  const __m128i vzp = _mm_set1_epi32(quant.zero_point);
  const __m128 vscale = _mm_set1_ps(quant.scale);
  int j = 0;
  for (; j + 4 <= width; j += 4) {
    const __m128i row_sums =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(packed.row_sums.data() + n0 + j));
    const __m128i corrected =
        _mm_sub_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + j)),
                      MulLo32Sse2(vzp, row_sums));
    const __m128 combined = _mm_mul_ps(vscale, _mm_loadu_ps(packed.scales.data() + n0 + j));
    const __m128 corrected_f = _mm_cvtepi32_ps(corrected);
    __m128 v;
    if (add_bias) {
      alignas(16) float cf[4];
      alignas(16) float cb[4];
      alignas(16) float out[4];
      _mm_store_ps(cf, corrected_f);
      _mm_store_ps(cb, combined);
      for (int l = 0; l < 4; ++l) {
        out[l] = std::fma(cb[l], cf[l], bias[n0 + j + l]);
      }
      v = _mm_load_ps(out);
    } else {
      v = _mm_mul_ps(combined, corrected_f);
    }
    if (ep == GemmEpilogue::kBiasRelu) {
      v = _mm_max_ps(v, _mm_setzero_ps());
    }
    sink.Store4(c_row + n0 + j, v);
  }
  if (j < width) {
    StoreInt8TileRow(acc + j, packed, quant, bias, ep, n0 + j, width - j, c_row, sink);
  }
}

// 128-bit half of the AVX2 kernel: each 8-channel half of the panel is two
// xmm loads (channels jb..jb+3 and jb+4..jb+7), processed in separate jb
// passes so the working set stays at 8 xmm accumulators.
template <typename Sink>
void GemmInt8PackedExSsse3(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                           const ActivationQuant& quant, const float* bias, GemmEpilogue ep,
                           typename Sink::Out* c, int64_t ldc, const Sink& sink) {
  const int n = packed.n;
  const int k_padded = packed.k_padded;
  const int groups = k_padded / kInt8KUnit;
  const int panels = (n + kGemmTileN - 1) / kGemmTileN;
  const __m128i ones = _mm_set1_epi16(1);
  int64_t row = 0;
  for (; row + kGemmTileM <= m; row += kGemmTileM) {
    const uint8_t* a0 = a + row * k_padded;
    const uint8_t* a1 = a0 + k_padded;
    const uint8_t* a2 = a1 + k_padded;
    const uint8_t* a3 = a2 + k_padded;
    typename Sink::Out* c_row = c + row * ldc;
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * kGemmTileN;
      const int width = std::min(kGemmTileN, n - n0);
      const int8_t* pb = packed.data.data() +
                         static_cast<size_t>(panel) * groups * kGemmTileN * kInt8KUnit;
      for (int jb = 0; jb < kGemmTileN; jb += 8) {
        if (jb >= width) {
          break;  // fully in the zero-padded tail, nothing to store
        }
        __m128i acc[8] = {_mm_setzero_si128(), _mm_setzero_si128(), _mm_setzero_si128(),
                          _mm_setzero_si128(), _mm_setzero_si128(), _mm_setzero_si128(),
                          _mm_setzero_si128(), _mm_setzero_si128()};
        for (int g = 0; g < groups; ++g) {
          const int8_t* group =
              pb + static_cast<size_t>(g) * kGemmTileN * kInt8KUnit + jb * kInt8KUnit;
          const __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
          const __m128i b1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(group + 16));
          __m128i va = _mm_set1_epi32(LoadKGroup(a0 + g * kInt8KUnit));
          acc[0] = _mm_add_epi32(acc[0], _mm_madd_epi16(_mm_maddubs_epi16(va, b0), ones));
          acc[1] = _mm_add_epi32(acc[1], _mm_madd_epi16(_mm_maddubs_epi16(va, b1), ones));
          va = _mm_set1_epi32(LoadKGroup(a1 + g * kInt8KUnit));
          acc[2] = _mm_add_epi32(acc[2], _mm_madd_epi16(_mm_maddubs_epi16(va, b0), ones));
          acc[3] = _mm_add_epi32(acc[3], _mm_madd_epi16(_mm_maddubs_epi16(va, b1), ones));
          va = _mm_set1_epi32(LoadKGroup(a2 + g * kInt8KUnit));
          acc[4] = _mm_add_epi32(acc[4], _mm_madd_epi16(_mm_maddubs_epi16(va, b0), ones));
          acc[5] = _mm_add_epi32(acc[5], _mm_madd_epi16(_mm_maddubs_epi16(va, b1), ones));
          va = _mm_set1_epi32(LoadKGroup(a3 + g * kInt8KUnit));
          acc[6] = _mm_add_epi32(acc[6], _mm_madd_epi16(_mm_maddubs_epi16(va, b0), ones));
          acc[7] = _mm_add_epi32(acc[7], _mm_madd_epi16(_mm_maddubs_epi16(va, b1), ones));
        }
        int32_t buf[kGemmTileM][8];
        for (int i = 0; i < kGemmTileM; ++i) {
          _mm_storeu_si128(reinterpret_cast<__m128i*>(buf[i]), acc[2 * i]);
          _mm_storeu_si128(reinterpret_cast<__m128i*>(buf[i] + 4), acc[2 * i + 1]);
          StoreInt8RowSse(buf[i], packed, quant, bias, ep, n0 + jb,
                          std::min(8, width - jb), c_row + i * ldc, sink);
        }
      }
    }
  }
  Int8TileRowsScalar<kGemmTileN>(row, m, a, packed, quant, bias, ep, c, ldc, sink);
}

#endif  // int8 SIMD variant

// Shared tier dispatch for both epilogue sinks; the public entry points
// below instantiate it with the float store and the requantizing store.
template <typename Sink>
void GemmInt8PackedDispatch(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                            const ActivationQuant& quant, const float* bias,
                            GemmEpilogue epilogue, typename Sink::Out* c, int64_t ldc,
                            const Sink& sink) {
  PCHECK_GE(ldc, packed.n);
  PCHECK_EQ(packed.k_padded % kInt8KUnit, 0);
  PCHECK(ValidPanelWidth(packed.panel_width));
#if defined(PERCIVAL_SIMD_INT8_VNNI)
  if (!GemmForceScalar()) {
    if (packed.panel_width == kGemmTileNMin) {
      GemmInt8PackedExVnniW16(m, a, packed, quant, bias, epilogue, c, ldc, sink);
    } else {
      GemmInt8PackedExVnni(m, a, packed, quant, bias, epilogue, c, ldc, sink);
    }
    return;
  }
#elif defined(PERCIVAL_SIMD_INT8_AVX512)
  if (!GemmForceScalar()) {
    if (packed.panel_width == kGemmTileNMin) {
      GemmInt8PackedExAvx512W16(m, a, packed, quant, bias, epilogue, c, ldc, sink);
    } else {
      GemmInt8PackedExAvx512(m, a, packed, quant, bias, epilogue, c, ldc, sink);
    }
    return;
  }
#elif defined(PERCIVAL_SIMD_INT8_AVX2)
  if (!GemmForceScalar()) {
    GemmInt8PackedExAvx2(m, a, packed, quant, bias, epilogue, c, ldc, sink);
    return;
  }
#elif defined(PERCIVAL_SIMD_INT8_SSSE3)
  if (!GemmForceScalar()) {
    GemmInt8PackedExSsse3(m, a, packed, quant, bias, epilogue, c, ldc, sink);
    return;
  }
#endif
  GemmInt8PackedExScalar(m, a, packed, quant, bias, epilogue, c, ldc, sink);
}

}  // namespace

void GemmPackedEx(int64_t m, int n, int k, const float* a, const float* packed_b,
                  const float* bias, GemmEpilogue epilogue, float* c, int64_t ldc,
                  int panel_width) {
  PCHECK_GE(ldc, n);
  PCHECK(ValidPanelWidth(panel_width));
#if defined(PERCIVAL_SIMD_AVX512)
  if (!GemmForceScalar()) {
    if (panel_width == kGemmTileNMin) {
      GemmPackedExAvx512W16(m, n, k, a, packed_b, bias, epilogue, c, ldc);
    } else {
      GemmPackedExAvx512(m, n, k, a, packed_b, bias, epilogue, c, ldc);
    }
    return;
  }
#elif defined(PERCIVAL_SIMD_AVX2)
  if (!GemmForceScalar()) {
    GemmPackedExAvx2(m, n, k, a, packed_b, bias, epilogue, c, ldc);
    return;
  }
#elif defined(PERCIVAL_SIMD_SSE2)
  if (!GemmForceScalar()) {
    GemmPackedExSse2(m, n, k, a, packed_b, bias, epilogue, c, ldc);
    return;
  }
#endif
  GemmPackedExScalar(m, n, k, a, packed_b, bias, epilogue, c, ldc, panel_width);
}

void GemmPackedNT(int64_t m, int n, int k, const float* a, const float* packed_b,
                  const float* bias, float* c) {
  GemmPackedEx(m, n, k, a, packed_b, bias, GemmEpilogue::kBias, c, n);
}

void GemmInt8PackedEx(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                      const ActivationQuant& quant, const float* bias, GemmEpilogue epilogue,
                      float* c, int64_t ldc) {
  GemmInt8PackedDispatch(m, a, packed, quant, bias, epilogue, c, ldc, FloatEpilogueSink{});
}

void GemmInt8PackedExU8(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                        const ActivationQuant& quant, const float* bias,
                        GemmEpilogue epilogue, const ActivationQuant& out_quant, uint8_t* c,
                        int64_t ldc) {
  RequantEpilogueSink sink;
  sink.inv_scale = 1.0f / out_quant.scale;
  sink.zero_point = out_quant.zero_point;
  GemmInt8PackedDispatch(m, a, packed, quant, bias, epilogue, c, ldc, sink);
}

void InferenceParallelFor(int64_t total, int64_t macs_per_item,
                          const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool* pool = InferenceThreadPool();
  const int64_t macs = total * std::max<int64_t>(macs_per_item, 1);
  if (pool == nullptr || pool->IsWorkerThread() || pool->num_threads() <= 1 ||
      macs < kMinMacsPerParallelKernel || total <= 1) {
    fn(0, total);
    return;
  }
  // Oversubscribe lightly so uneven chunks do not leave workers idle.
  const int64_t target_chunks = static_cast<int64_t>(pool->num_threads()) * 4;
  const int64_t chunk = std::max<int64_t>(1, (total + target_chunks - 1) / target_chunks);
  const int chunks = static_cast<int>((total + chunk - 1) / chunk);
  pool->ParallelFor(chunks, [&](int index) {
    const int64_t begin = static_cast<int64_t>(index) * chunk;
    const int64_t end = std::min(total, begin + chunk);
    fn(begin, end);
  });
}

void GemmNT(int64_t m, int n, int k, const float* a, const float* b, const float* bias,
            float* c, ThreadPool* pool) {
  PCHECK_GE(m, 0);
  PCHECK_GT(n, 0);
  PCHECK_GT(k, 0);
  ScratchArena& arena = LocalArena();
  arena.Reset();
  float* packed = arena.Alloc(PackedPanelFloats(n, k));
  PackFilterPanels(b, n, k, packed);

  const int64_t macs_per_row = static_cast<int64_t>(n) * k;
  if (pool == nullptr || pool->IsWorkerThread() || pool->num_threads() <= 1 ||
      m * macs_per_row < kMinMacsPerParallelKernel) {
    GemmPackedNT(m, n, k, a, packed, bias, c);
    return;
  }
  const int64_t target_chunks = static_cast<int64_t>(pool->num_threads()) * 4;
  // Round chunks to the tile height so only the final chunk runs the
  // remainder kernel.
  int64_t chunk = std::max<int64_t>(kGemmTileM, (m + target_chunks - 1) / target_chunks);
  chunk = (chunk + kGemmTileM - 1) / kGemmTileM * kGemmTileM;
  const int chunks = static_cast<int>((m + chunk - 1) / chunk);
  pool->ParallelFor(chunks, [&](int index) {
    const int64_t begin = static_cast<int64_t>(index) * chunk;
    const int64_t end = std::min(m, begin + chunk);
    GemmPackedNT(end - begin, n, k, a + begin * k, packed, bias, c + begin * n);
  });
}

}  // namespace percival
