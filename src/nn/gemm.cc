#include "src/nn/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>

#include "src/base/logging.h"
#include "src/base/thread_pool.h"

namespace percival {

namespace {

std::atomic<ThreadPool*> g_inference_pool{nullptr};
std::atomic<bool> g_gemm_default{true};

}  // namespace

// ----------------------------------------------------------- ScratchArena --

float* ScratchArena::Alloc(size_t count) {
  if (count == 0) {
    count = 1;  // keep returned pointers distinct and dereferenceable
  }
  if (used_ + count > block_.size()) {
    const size_t grown = std::max(count, CapacityFloats() * 2);
    if (!block_.empty()) {
      retired_.push_back(std::move(block_));
    }
    block_.assign(grown, 0.0f);
    used_ = 0;
  }
  float* ptr = block_.data() + used_;
  used_ += count;
  return ptr;
}

void ScratchArena::Reset() {
  if (!retired_.empty()) {
    // Coalesce: one slab big enough for everything handed out last round.
    size_t total = block_.size();
    for (const auto& old : retired_) {
      total += old.size();
    }
    retired_.clear();
    block_.assign(total, 0.0f);
  }
  used_ = 0;
}

size_t ScratchArena::CapacityFloats() const {
  size_t total = block_.size();
  for (const auto& old : retired_) {
    total += old.size();
  }
  return total;
}

ScratchArena& LocalArena() {
  thread_local ScratchArena arena;
  return arena;
}

// ------------------------------------------------------- execution config --

void SetInferenceThreadPool(ThreadPool* pool) { g_inference_pool.store(pool); }
ThreadPool* InferenceThreadPool() { return g_inference_pool.load(); }

void SetGemmEnabledByDefault(bool enabled) { g_gemm_default.store(enabled); }
bool GemmEnabledByDefault() { return g_gemm_default.load(); }

ScopedInferencePool::ScopedInferencePool(int num_threads)
    : pool_(std::make_unique<ThreadPool>(
          num_threads > 0 ? num_threads
                          : std::max(1, static_cast<int>(std::thread::hardware_concurrency())))),
      previous_(InferenceThreadPool()) {
  SetInferenceThreadPool(pool_.get());
}

ScopedInferencePool::~ScopedInferencePool() { SetInferenceThreadPool(previous_); }

// ----------------------------------------------------------------- packing --

size_t PackedPanelFloats(int n, int k) {
  const int panels = (n + kGemmTileN - 1) / kGemmTileN;
  return static_cast<size_t>(panels) * static_cast<size_t>(k) * kGemmTileN;
}

void PackFilterPanels(const float* b, int n, int k, float* packed) {
  const int panels = (n + kGemmTileN - 1) / kGemmTileN;
  for (int panel = 0; panel < panels; ++panel) {
    const int n0 = panel * kGemmTileN;
    const int width = std::min(kGemmTileN, n - n0);
    float* dst = packed + static_cast<size_t>(panel) * k * kGemmTileN;
    for (int kk = 0; kk < k; ++kk) {
      float* row = dst + static_cast<size_t>(kk) * kGemmTileN;
      for (int j = 0; j < width; ++j) {
        row[j] = b[static_cast<int64_t>(n0 + j) * k + kk];
      }
      for (int j = width; j < kGemmTileN; ++j) {
        row[j] = 0.0f;
      }
    }
  }
}

// ------------------------------------------------------------ micro-kernel --

namespace {

// Computes a full kGemmTileM x kGemmTileN tile: four A rows against one
// packed panel. The accumulator array is small and fully unrolled, so the
// compiler keeps it in vector registers through the K loop.
void MicroKernel4xN(int k, const float* const a[kGemmTileM], const float* panel,
                    float acc[kGemmTileM][kGemmTileN]) {
  const float* a0 = a[0];
  const float* a1 = a[1];
  const float* a2 = a[2];
  const float* a3 = a[3];
  int kk = 0;
  for (; kk + 2 <= k; kk += 2) {
    const float* bp = panel + static_cast<size_t>(kk) * kGemmTileN;
    const float* bq = bp + kGemmTileN;
    const float v0 = a0[kk], w0 = a0[kk + 1];
    const float v1 = a1[kk], w1 = a1[kk + 1];
    const float v2 = a2[kk], w2 = a2[kk + 1];
    const float v3 = a3[kk], w3 = a3[kk + 1];
    for (int j = 0; j < kGemmTileN; ++j) {
      acc[0][j] += v0 * bp[j] + w0 * bq[j];
      acc[1][j] += v1 * bp[j] + w1 * bq[j];
      acc[2][j] += v2 * bp[j] + w2 * bq[j];
      acc[3][j] += v3 * bp[j] + w3 * bq[j];
    }
  }
  for (; kk < k; ++kk) {
    const float* bp = panel + static_cast<size_t>(kk) * kGemmTileN;
    const float v0 = a0[kk];
    const float v1 = a1[kk];
    const float v2 = a2[kk];
    const float v3 = a3[kk];
    for (int j = 0; j < kGemmTileN; ++j) {
      acc[0][j] += v0 * bp[j];
      acc[1][j] += v1 * bp[j];
      acc[2][j] += v2 * bp[j];
      acc[3][j] += v3 * bp[j];
    }
  }
}

// Remainder kernel: one A row against one packed panel.
void MicroKernel1xN(int k, const float* a, const float* panel, float acc[kGemmTileN]) {
  for (int kk = 0; kk < k; ++kk) {
    const float* bp = panel + static_cast<size_t>(kk) * kGemmTileN;
    const float v = a[kk];
    for (int j = 0; j < kGemmTileN; ++j) {
      acc[j] += v * bp[j];
    }
  }
}

void StoreTileRow(const float acc[kGemmTileN], const float* bias, int n0, int width,
                  float* c_row) {
  if (bias != nullptr) {
    for (int j = 0; j < width; ++j) {
      c_row[n0 + j] = acc[j] + bias[n0 + j];
    }
  } else {
    for (int j = 0; j < width; ++j) {
      c_row[n0 + j] = acc[j];
    }
  }
}

}  // namespace

void GemmPackedNT(int64_t m, int n, int k, const float* a, const float* packed_b,
                  const float* bias, float* c) {
  const int panels = (n + kGemmTileN - 1) / kGemmTileN;
  int64_t row = 0;
  for (; row + kGemmTileM <= m; row += kGemmTileM) {
    const float* rows[kGemmTileM];
    for (int i = 0; i < kGemmTileM; ++i) {
      rows[i] = a + (row + i) * k;
    }
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * kGemmTileN;
      const int width = std::min(kGemmTileN, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * k * kGemmTileN;
      float acc[kGemmTileM][kGemmTileN] = {};
      MicroKernel4xN(k, rows, pb, acc);
      for (int i = 0; i < kGemmTileM; ++i) {
        StoreTileRow(acc[i], bias, n0, width, c + (row + i) * n);
      }
    }
  }
  for (; row < m; ++row) {
    const float* ar = a + row * k;
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * kGemmTileN;
      const int width = std::min(kGemmTileN, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * k * kGemmTileN;
      float acc[kGemmTileN] = {};
      MicroKernel1xN(k, ar, pb, acc);
      StoreTileRow(acc, bias, n0, width, c + row * n);
    }
  }
}

void InferenceParallelFor(int64_t total, int64_t macs_per_item,
                          const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool* pool = InferenceThreadPool();
  const int64_t macs = total * std::max<int64_t>(macs_per_item, 1);
  if (pool == nullptr || pool->IsWorkerThread() || pool->num_threads() <= 1 ||
      macs < kMinMacsPerParallelKernel || total <= 1) {
    fn(0, total);
    return;
  }
  // Oversubscribe lightly so uneven chunks do not leave workers idle.
  const int64_t target_chunks = static_cast<int64_t>(pool->num_threads()) * 4;
  const int64_t chunk = std::max<int64_t>(1, (total + target_chunks - 1) / target_chunks);
  const int chunks = static_cast<int>((total + chunk - 1) / chunk);
  pool->ParallelFor(chunks, [&](int index) {
    const int64_t begin = static_cast<int64_t>(index) * chunk;
    const int64_t end = std::min(total, begin + chunk);
    fn(begin, end);
  });
}

void GemmNT(int64_t m, int n, int k, const float* a, const float* b, const float* bias,
            float* c, ThreadPool* pool) {
  PCHECK_GE(m, 0);
  PCHECK_GT(n, 0);
  PCHECK_GT(k, 0);
  ScratchArena& arena = LocalArena();
  arena.Reset();
  float* packed = arena.Alloc(PackedPanelFloats(n, k));
  PackFilterPanels(b, n, k, packed);

  const int64_t macs_per_row = static_cast<int64_t>(n) * k;
  if (pool == nullptr || pool->IsWorkerThread() || pool->num_threads() <= 1 ||
      m * macs_per_row < kMinMacsPerParallelKernel) {
    GemmPackedNT(m, n, k, a, packed, bias, c);
    return;
  }
  const int64_t target_chunks = static_cast<int64_t>(pool->num_threads()) * 4;
  // Round chunks to the tile height so only the final chunk runs the
  // remainder kernel.
  int64_t chunk = std::max<int64_t>(kGemmTileM, (m + target_chunks - 1) / target_chunks);
  chunk = (chunk + kGemmTileM - 1) / kGemmTileM * kGemmTileM;
  const int chunks = static_cast<int>((m + chunk - 1) / chunk);
  pool->ParallelFor(chunks, [&](int index) {
    const int64_t begin = static_cast<int64_t>(index) * chunk;
    const int64_t end = std::min(m, begin + chunk);
    GemmPackedNT(end - begin, n, k, a + begin * k, packed, bias, c + begin * n);
  });
}

}  // namespace percival
