#include "src/nn/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/base/logging.h"
#include "src/base/thread_pool.h"
#include "src/nn/simd.h"

namespace percival {

namespace {

std::atomic<ThreadPool*> g_inference_pool{nullptr};
std::atomic<bool> g_gemm_default{true};
std::atomic<bool> g_force_scalar{false};

}  // namespace

// ----------------------------------------------------------- ScratchArena --

float* ScratchArena::Alloc(size_t count) {
  if (count == 0) {
    count = 1;  // keep returned pointers distinct and dereferenceable
  }
  if (used_ + count > block_.size()) {
    const size_t grown = std::max(count, CapacityFloats() * 2);
    if (!block_.empty()) {
      retired_.push_back(std::move(block_));
    }
    block_.assign(grown, 0.0f);
    used_ = 0;
  }
  float* ptr = block_.data() + used_;
  used_ += count;
  return ptr;
}

void ScratchArena::Reset() {
  if (!retired_.empty()) {
    // Coalesce: one slab big enough for everything handed out last round.
    size_t total = block_.size();
    for (const auto& old : retired_) {
      total += old.size();
    }
    retired_.clear();
    block_.assign(total, 0.0f);
  }
  used_ = 0;
}

void ScratchArena::Reserve(size_t count) {
  Reset();
  if (block_.size() < count) {
    block_.assign(count, 0.0f);
  }
  used_ = 0;
}

size_t ScratchArena::CapacityFloats() const {
  size_t total = block_.size();
  for (const auto& old : retired_) {
    total += old.size();
  }
  return total;
}

ScratchArena& LocalArena() {
  thread_local ScratchArena arena;
  return arena;
}

// ------------------------------------------------------- execution config --

void SetInferenceThreadPool(ThreadPool* pool) { g_inference_pool.store(pool); }
ThreadPool* InferenceThreadPool() { return g_inference_pool.load(); }

void SetGemmEnabledByDefault(bool enabled) { g_gemm_default.store(enabled); }
bool GemmEnabledByDefault() { return g_gemm_default.load(); }

void SetGemmForceScalar(bool force) { g_force_scalar.store(force); }
bool GemmForceScalar() { return g_force_scalar.load(); }

const char* ActiveGemmKernelName() {
  return GemmForceScalar() ? "scalar" : kSimdPathName;
}

void LogSimdPathOnce() {
  static std::once_flag logged;
  std::call_once(logged, [] {
    LogLine(std::string("gemm: compiled SIMD path ") + kSimdPathName + ", tile " +
            std::to_string(kGemmTileM) + "x" + std::to_string(kGemmTileN));
  });
}

ScopedInferencePool::ScopedInferencePool(int num_threads)
    : pool_(std::make_unique<ThreadPool>(
          num_threads > 0 ? num_threads
                          : std::max(1, static_cast<int>(std::thread::hardware_concurrency())))),
      previous_(InferenceThreadPool()) {
  LogSimdPathOnce();
  SetInferenceThreadPool(pool_.get());
}

ScopedInferencePool::~ScopedInferencePool() { SetInferenceThreadPool(previous_); }

// ----------------------------------------------------------------- packing --

size_t PackedPanelFloats(int n, int k) {
  const int panels = (n + kGemmTileN - 1) / kGemmTileN;
  return static_cast<size_t>(panels) * static_cast<size_t>(k) * kGemmTileN;
}

void PackFilterPanels(const float* b, int n, int k, float* packed) {
  const int panels = (n + kGemmTileN - 1) / kGemmTileN;
  for (int panel = 0; panel < panels; ++panel) {
    const int n0 = panel * kGemmTileN;
    const int width = std::min(kGemmTileN, n - n0);
    float* dst = packed + static_cast<size_t>(panel) * k * kGemmTileN;
    for (int kk = 0; kk < k; ++kk) {
      float* row = dst + static_cast<size_t>(kk) * kGemmTileN;
      for (int j = 0; j < width; ++j) {
        row[j] = b[static_cast<int64_t>(n0 + j) * k + kk];
      }
      for (int j = width; j < kGemmTileN; ++j) {
        row[j] = 0.0f;
      }
    }
  }
}

// ------------------------------------------------------------ micro-kernel --

namespace {

static_assert(kGemmTileM == 4 && kGemmTileN == 16,
              "the intrinsic micro-kernels are written for a 4x16 tile");

// Scalar 4x16 tile kernel. Always compiled: it is the fallback on targets
// without SSE2 and the oracle the parity tests (and SetGemmForceScalar)
// pit the intrinsic kernels against. The accumulator array is small and
// fully unrolled, so the compiler keeps it in vector registers through the
// K loop.
void MicroKernel4xN(int k, const float* const a[kGemmTileM], const float* panel,
                    float acc[kGemmTileM][kGemmTileN]) {
  const float* a0 = a[0];
  const float* a1 = a[1];
  const float* a2 = a[2];
  const float* a3 = a[3];
  int kk = 0;
  for (; kk + 2 <= k; kk += 2) {
    const float* bp = panel + static_cast<size_t>(kk) * kGemmTileN;
    const float* bq = bp + kGemmTileN;
    const float v0 = a0[kk], w0 = a0[kk + 1];
    const float v1 = a1[kk], w1 = a1[kk + 1];
    const float v2 = a2[kk], w2 = a2[kk + 1];
    const float v3 = a3[kk], w3 = a3[kk + 1];
    for (int j = 0; j < kGemmTileN; ++j) {
      acc[0][j] += v0 * bp[j] + w0 * bq[j];
      acc[1][j] += v1 * bp[j] + w1 * bq[j];
      acc[2][j] += v2 * bp[j] + w2 * bq[j];
      acc[3][j] += v3 * bp[j] + w3 * bq[j];
    }
  }
  for (; kk < k; ++kk) {
    const float* bp = panel + static_cast<size_t>(kk) * kGemmTileN;
    const float v0 = a0[kk];
    const float v1 = a1[kk];
    const float v2 = a2[kk];
    const float v3 = a3[kk];
    for (int j = 0; j < kGemmTileN; ++j) {
      acc[0][j] += v0 * bp[j];
      acc[1][j] += v1 * bp[j];
      acc[2][j] += v2 * bp[j];
      acc[3][j] += v3 * bp[j];
    }
  }
}

// Remainder kernel: one A row against one packed panel.
void MicroKernel1xN(int k, const float* a, const float* panel, float acc[kGemmTileN]) {
  for (int kk = 0; kk < k; ++kk) {
    const float* bp = panel + static_cast<size_t>(kk) * kGemmTileN;
    const float v = a[kk];
    for (int j = 0; j < kGemmTileN; ++j) {
      acc[j] += v * bp[j];
    }
  }
}

// Epilogue-aware store of one tile row from an accumulator buffer. `ep` and
// `bias` are loop-invariant, so the compiler hoists the branches.
void StoreTileRow(const float acc[kGemmTileN], const float* bias, GemmEpilogue ep, int n0,
                  int width, float* c_row) {
  for (int j = 0; j < width; ++j) {
    float v = acc[j];
    if (ep != GemmEpilogue::kNone && bias != nullptr) {
      v += bias[n0 + j];
    }
    if (ep == GemmEpilogue::kBiasRelu && v < 0.0f) {
      v = 0.0f;
    }
    c_row[n0 + j] = v;
  }
}

// Handles everything the full-width intrinsic path does not: remainder rows
// (m % 4) and the zero-padded partial panel at the right edge of C.
void TileRowsScalar(int64_t row_begin, int64_t row_end, int panel_begin, int panel_end, int n,
                    int k, const float* a, const float* packed_b, const float* bias,
                    GemmEpilogue ep, float* c, int64_t ldc) {
  int64_t row = row_begin;
  for (; row + kGemmTileM <= row_end; row += kGemmTileM) {
    const float* rows[kGemmTileM];
    for (int i = 0; i < kGemmTileM; ++i) {
      rows[i] = a + (row + i) * k;
    }
    for (int panel = panel_begin; panel < panel_end; ++panel) {
      const int n0 = panel * kGemmTileN;
      const int width = std::min(kGemmTileN, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * k * kGemmTileN;
      float acc[kGemmTileM][kGemmTileN] = {};
      MicroKernel4xN(k, rows, pb, acc);
      for (int i = 0; i < kGemmTileM; ++i) {
        StoreTileRow(acc[i], bias, ep, n0, width, c + (row + i) * ldc);
      }
    }
  }
  for (; row < row_end; ++row) {
    const float* ar = a + row * k;
    for (int panel = panel_begin; panel < panel_end; ++panel) {
      const int n0 = panel * kGemmTileN;
      const int width = std::min(kGemmTileN, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * k * kGemmTileN;
      float acc[kGemmTileN] = {};
      MicroKernel1xN(k, ar, pb, acc);
      StoreTileRow(acc, bias, ep, n0, width, c + row * ldc);
    }
  }
}

void GemmPackedExScalar(int64_t m, int n, int k, const float* a, const float* packed_b,
                        const float* bias, GemmEpilogue ep, float* c, int64_t ldc) {
  const int panels = (n + kGemmTileN - 1) / kGemmTileN;
  TileRowsScalar(0, m, 0, panels, n, k, a, packed_b, bias, ep, c, ldc);
}

#if defined(PERCIVAL_SIMD_AVX2)

// 4x16 tile: four broadcast A values FMA into 8 ymm accumulators per K step
// (2 ymm per row). 8 accumulators + 2 panel loads + 1 broadcast = 11 of the
// 16 ymm registers, so nothing spills.
inline void Tile4x16Avx2(int k, const float* a0, const float* a1, const float* a2,
                         const float* a3, const float* panel, __m256 acc[8]) {
  for (int kk = 0; kk < k; ++kk) {
    const float* bp = panel + static_cast<size_t>(kk) * kGemmTileN;
    const __m256 b0 = _mm256_loadu_ps(bp);
    const __m256 b1 = _mm256_loadu_ps(bp + 8);
    __m256 v = _mm256_broadcast_ss(a0 + kk);
    acc[0] = _mm256_fmadd_ps(v, b0, acc[0]);
    acc[1] = _mm256_fmadd_ps(v, b1, acc[1]);
    v = _mm256_broadcast_ss(a1 + kk);
    acc[2] = _mm256_fmadd_ps(v, b0, acc[2]);
    acc[3] = _mm256_fmadd_ps(v, b1, acc[3]);
    v = _mm256_broadcast_ss(a2 + kk);
    acc[4] = _mm256_fmadd_ps(v, b0, acc[4]);
    acc[5] = _mm256_fmadd_ps(v, b1, acc[5]);
    v = _mm256_broadcast_ss(a3 + kk);
    acc[6] = _mm256_fmadd_ps(v, b0, acc[6]);
    acc[7] = _mm256_fmadd_ps(v, b1, acc[7]);
  }
}

inline void StoreRowAvx2(__m256 lo, __m256 hi, const float* bias16, GemmEpilogue ep,
                         float* dst) {
  if (ep != GemmEpilogue::kNone && bias16 != nullptr) {
    lo = _mm256_add_ps(lo, _mm256_loadu_ps(bias16));
    hi = _mm256_add_ps(hi, _mm256_loadu_ps(bias16 + 8));
  }
  if (ep == GemmEpilogue::kBiasRelu) {
    const __m256 zero = _mm256_setzero_ps();
    lo = _mm256_max_ps(lo, zero);
    hi = _mm256_max_ps(hi, zero);
  }
  _mm256_storeu_ps(dst, lo);
  _mm256_storeu_ps(dst + 8, hi);
}

void GemmPackedExAvx2(int64_t m, int n, int k, const float* a, const float* packed_b,
                      const float* bias, GemmEpilogue ep, float* c, int64_t ldc) {
  const int panels = (n + kGemmTileN - 1) / kGemmTileN;
  int64_t row = 0;
  for (; row + kGemmTileM <= m; row += kGemmTileM) {
    const float* a0 = a + row * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c_row = c + row * ldc;
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * kGemmTileN;
      const int width = std::min(kGemmTileN, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * k * kGemmTileN;
      __m256 acc[8] = {_mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps(),
                       _mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps(),
                       _mm256_setzero_ps(), _mm256_setzero_ps()};
      // The packed panel is zero-padded to the full tile width, so the
      // vector K loop is safe even for partial panels (narrow squeeze
      // layers); only the store needs width handling.
      Tile4x16Avx2(k, a0, a1, a2, a3, pb, acc);
      if (width == kGemmTileN) {
        const float* b16 = bias != nullptr ? bias + n0 : nullptr;
        StoreRowAvx2(acc[0], acc[1], b16, ep, c_row + n0);
        StoreRowAvx2(acc[2], acc[3], b16, ep, c_row + ldc + n0);
        StoreRowAvx2(acc[4], acc[5], b16, ep, c_row + 2 * ldc + n0);
        StoreRowAvx2(acc[6], acc[7], b16, ep, c_row + 3 * ldc + n0);
      } else {
        float buf[kGemmTileM][kGemmTileN];
        for (int i = 0; i < kGemmTileM; ++i) {
          _mm256_storeu_ps(buf[i], acc[2 * i]);
          _mm256_storeu_ps(buf[i] + 8, acc[2 * i + 1]);
          StoreTileRow(buf[i], bias, ep, n0, width, c_row + i * ldc);
        }
      }
    }
  }
  // Remainder rows (m % 4) across every panel.
  TileRowsScalar(row, m, 0, panels, n, k, a, packed_b, bias, ep, c, ldc);
}

#elif defined(PERCIVAL_SIMD_SSE2)

// 4x8 half-tile: the 16-wide panel is processed in two passes of 8 columns
// (offset jb in {0, 8}) so the working set is 8 xmm accumulators + 2 panel
// loads + 1 broadcast, fitting x86-64's 16 xmm registers without spills.
inline void Tile4x8Sse2(int k, const float* a0, const float* a1, const float* a2,
                        const float* a3, const float* panel, int jb, __m128 acc[8]) {
  for (int kk = 0; kk < k; ++kk) {
    const float* bp = panel + static_cast<size_t>(kk) * kGemmTileN + jb;
    const __m128 b0 = _mm_loadu_ps(bp);
    const __m128 b1 = _mm_loadu_ps(bp + 4);
    __m128 v = _mm_set1_ps(a0[kk]);
    acc[0] = _mm_add_ps(acc[0], _mm_mul_ps(v, b0));
    acc[1] = _mm_add_ps(acc[1], _mm_mul_ps(v, b1));
    v = _mm_set1_ps(a1[kk]);
    acc[2] = _mm_add_ps(acc[2], _mm_mul_ps(v, b0));
    acc[3] = _mm_add_ps(acc[3], _mm_mul_ps(v, b1));
    v = _mm_set1_ps(a2[kk]);
    acc[4] = _mm_add_ps(acc[4], _mm_mul_ps(v, b0));
    acc[5] = _mm_add_ps(acc[5], _mm_mul_ps(v, b1));
    v = _mm_set1_ps(a3[kk]);
    acc[6] = _mm_add_ps(acc[6], _mm_mul_ps(v, b0));
    acc[7] = _mm_add_ps(acc[7], _mm_mul_ps(v, b1));
  }
}

inline void StoreRowSse2(__m128 lo, __m128 hi, const float* bias8, GemmEpilogue ep,
                         float* dst) {
  if (ep != GemmEpilogue::kNone && bias8 != nullptr) {
    lo = _mm_add_ps(lo, _mm_loadu_ps(bias8));
    hi = _mm_add_ps(hi, _mm_loadu_ps(bias8 + 4));
  }
  if (ep == GemmEpilogue::kBiasRelu) {
    const __m128 zero = _mm_setzero_ps();
    lo = _mm_max_ps(lo, zero);
    hi = _mm_max_ps(hi, zero);
  }
  _mm_storeu_ps(dst, lo);
  _mm_storeu_ps(dst + 4, hi);
}

void GemmPackedExSse2(int64_t m, int n, int k, const float* a, const float* packed_b,
                      const float* bias, GemmEpilogue ep, float* c, int64_t ldc) {
  const int panels = (n + kGemmTileN - 1) / kGemmTileN;
  int64_t row = 0;
  for (; row + kGemmTileM <= m; row += kGemmTileM) {
    const float* a0 = a + row * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c_row = c + row * ldc;
    for (int panel = 0; panel < panels; ++panel) {
      const int n0 = panel * kGemmTileN;
      const int width = std::min(kGemmTileN, n - n0);
      const float* pb = packed_b + static_cast<size_t>(panel) * k * kGemmTileN;
      for (int jb = 0; jb < kGemmTileN; jb += 8) {
        if (jb >= width) {
          break;  // fully in the zero-padded tail, nothing to store
        }
        __m128 acc[8] = {_mm_setzero_ps(), _mm_setzero_ps(), _mm_setzero_ps(),
                         _mm_setzero_ps(), _mm_setzero_ps(), _mm_setzero_ps(),
                         _mm_setzero_ps(), _mm_setzero_ps()};
        // The packed panel is zero-padded to the full tile width, so the
        // vector K loop is safe even for partial panels (narrow squeeze
        // layers); only the store needs width handling.
        Tile4x8Sse2(k, a0, a1, a2, a3, pb, jb, acc);
        if (width - jb >= 8) {
          const float* b8 = bias != nullptr ? bias + n0 + jb : nullptr;
          StoreRowSse2(acc[0], acc[1], b8, ep, c_row + n0 + jb);
          StoreRowSse2(acc[2], acc[3], b8, ep, c_row + ldc + n0 + jb);
          StoreRowSse2(acc[4], acc[5], b8, ep, c_row + 2 * ldc + n0 + jb);
          StoreRowSse2(acc[6], acc[7], b8, ep, c_row + 3 * ldc + n0 + jb);
        } else {
          float buf[kGemmTileM][8];
          for (int i = 0; i < kGemmTileM; ++i) {
            _mm_storeu_ps(buf[i], acc[2 * i]);
            _mm_storeu_ps(buf[i] + 4, acc[2 * i + 1]);
            StoreTileRow(buf[i], bias, ep, n0 + jb, width - jb, c_row + i * ldc);
          }
        }
      }
    }
  }
  // Remainder rows (m % 4) across every panel.
  TileRowsScalar(row, m, 0, panels, n, k, a, packed_b, bias, ep, c, ldc);
}

#endif  // SIMD variant

}  // namespace

void GemmPackedEx(int64_t m, int n, int k, const float* a, const float* packed_b,
                  const float* bias, GemmEpilogue epilogue, float* c, int64_t ldc) {
  PCHECK_GE(ldc, n);
#if defined(PERCIVAL_SIMD_AVX2)
  if (!GemmForceScalar()) {
    GemmPackedExAvx2(m, n, k, a, packed_b, bias, epilogue, c, ldc);
    return;
  }
#elif defined(PERCIVAL_SIMD_SSE2)
  if (!GemmForceScalar()) {
    GemmPackedExSse2(m, n, k, a, packed_b, bias, epilogue, c, ldc);
    return;
  }
#endif
  GemmPackedExScalar(m, n, k, a, packed_b, bias, epilogue, c, ldc);
}

void GemmPackedNT(int64_t m, int n, int k, const float* a, const float* packed_b,
                  const float* bias, float* c) {
  GemmPackedEx(m, n, k, a, packed_b, bias, GemmEpilogue::kBias, c, n);
}

void InferenceParallelFor(int64_t total, int64_t macs_per_item,
                          const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool* pool = InferenceThreadPool();
  const int64_t macs = total * std::max<int64_t>(macs_per_item, 1);
  if (pool == nullptr || pool->IsWorkerThread() || pool->num_threads() <= 1 ||
      macs < kMinMacsPerParallelKernel || total <= 1) {
    fn(0, total);
    return;
  }
  // Oversubscribe lightly so uneven chunks do not leave workers idle.
  const int64_t target_chunks = static_cast<int64_t>(pool->num_threads()) * 4;
  const int64_t chunk = std::max<int64_t>(1, (total + target_chunks - 1) / target_chunks);
  const int chunks = static_cast<int>((total + chunk - 1) / chunk);
  pool->ParallelFor(chunks, [&](int index) {
    const int64_t begin = static_cast<int64_t>(index) * chunk;
    const int64_t end = std::min(total, begin + chunk);
    fn(begin, end);
  });
}

void GemmNT(int64_t m, int n, int k, const float* a, const float* b, const float* bias,
            float* c, ThreadPool* pool) {
  PCHECK_GE(m, 0);
  PCHECK_GT(n, 0);
  PCHECK_GT(k, 0);
  ScratchArena& arena = LocalArena();
  arena.Reset();
  float* packed = arena.Alloc(PackedPanelFloats(n, k));
  PackFilterPanels(b, n, k, packed);

  const int64_t macs_per_row = static_cast<int64_t>(n) * k;
  if (pool == nullptr || pool->IsWorkerThread() || pool->num_threads() <= 1 ||
      m * macs_per_row < kMinMacsPerParallelKernel) {
    GemmPackedNT(m, n, k, a, packed, bias, c);
    return;
  }
  const int64_t target_chunks = static_cast<int64_t>(pool->num_threads()) * 4;
  // Round chunks to the tile height so only the final chunk runs the
  // remainder kernel.
  int64_t chunk = std::max<int64_t>(kGemmTileM, (m + target_chunks - 1) / target_chunks);
  chunk = (chunk + kGemmTileM - 1) / kGemmTileM * kGemmTileM;
  const int chunks = static_cast<int>((m + chunk - 1) / chunk);
  pool->ParallelFor(chunks, [&](int index) {
    const int64_t begin = static_cast<int64_t>(index) * chunk;
    const int64_t end = std::min(m, begin + chunk);
    GemmPackedNT(end - begin, n, k, a + begin * k, packed, bias, c + begin * n);
  });
}

}  // namespace percival
