#include "src/nn/gemm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <new>
#include <thread>

#include "src/base/faultpoint.h"
#include "src/base/logging.h"
#include "src/base/thread_pool.h"
#include "src/nn/gemm_internal.h"
#include "src/nn/simd.h"

namespace percival {

namespace {

std::atomic<ThreadPool*> g_inference_pool{nullptr};
std::atomic<bool> g_gemm_default{true};
std::atomic<bool> g_force_scalar{false};
std::atomic<int> g_planner_panel_override{0};
std::atomic<LayoutPolicy> g_planner_layout_policy{LayoutPolicy::kAuto};
std::atomic<GatherPolicyMode> g_planner_gather_policy{GatherPolicyMode::kAuto};
std::atomic<bool> g_dataflow_requant{true};
std::atomic<GapCodesMode> g_gap_codes_mode{GapCodesMode::kAuto};

// Gather/scratch traffic counters (see GemmGatherStats). Relaxed: these are
// statistics, not synchronization.
std::atomic<uint64_t> g_bytes_gathered{0};
std::atomic<uint64_t> g_arena_high_water{0};

void MaxArenaHighWater(uint64_t bytes) {
  uint64_t seen = g_arena_high_water.load(std::memory_order_relaxed);
  while (bytes > seen && !g_arena_high_water.compare_exchange_weak(
                             seen, bytes, std::memory_order_relaxed)) {
  }
}

}  // namespace

GemmGatherStats GetGemmGatherStats() {
  GemmGatherStats stats;
  stats.bytes_gathered = g_bytes_gathered.load(std::memory_order_relaxed);
  stats.arena_high_water_bytes = g_arena_high_water.load(std::memory_order_relaxed);
  return stats;
}

void ResetGemmGatherStats() {
  g_bytes_gathered.store(0, std::memory_order_relaxed);
  g_arena_high_water.store(0, std::memory_order_relaxed);
}

void NoteBytesGathered(uint64_t bytes) {
  g_bytes_gathered.fetch_add(bytes, std::memory_order_relaxed);
}

// ----------------------------------------------------------- ScratchArena --

float* ScratchArena::Alloc(size_t count) {
  if (count == 0) {
    count = 1;  // keep returned pointers distinct and dereferenceable
  }
  if (used_ + count > block_.size()) {
    // The growth path is where a real out-of-memory would surface (as
    // vector's bad_alloc); the fault point forces that outcome so the
    // classifier's fail-open catch is testable. Arena state is untouched:
    // the next Alloc/Reset sees a consistent arena.
    if (faultpoint::ShouldFire(faultpoint::kArenaAllocFail)) {
      throw std::bad_alloc();
    }
    const size_t grown = std::max(count, CapacityFloats() * 2);
    if (!block_.empty()) {
      retired_.push_back(std::move(block_));
    }
    block_.assign(grown, 0.0f);
    used_ = 0;
  }
  float* ptr = block_.data() + used_;
  used_ += count;
  size_t in_use = used_;
  for (const auto& old : retired_) {
    in_use += old.size();  // retired blocks still hold live pointers
  }
  MaxArenaHighWater(static_cast<uint64_t>(in_use) * sizeof(float));
  return ptr;
}

void ScratchArena::Reset() {
  if (!retired_.empty()) {
    // Coalesce: one slab big enough for everything handed out last round.
    size_t total = block_.size();
    for (const auto& old : retired_) {
      total += old.size();
    }
    retired_.clear();
    block_.assign(total, 0.0f);
  }
  used_ = 0;
}

void ScratchArena::Reserve(size_t count) {
  Reset();
  if (block_.size() < count) {
    block_.assign(count, 0.0f);
  }
  used_ = 0;
}

size_t ScratchArena::CapacityFloats() const {
  size_t total = block_.size();
  for (const auto& old : retired_) {
    total += old.size();
  }
  return total;
}

ScratchArena& LocalArena() {
  thread_local ScratchArena arena;
  return arena;
}

// ---------------------------------------------------- runtime dispatch --
//
// Every tier TU (gemm_tier_*.cc) exports one GemmKernelTable; resolution
// starts at the active tier (cpuid detection capped by SetSimdTierCap) and
// walks DOWN the ladder to the first table carrying the needed kernel — the
// ssse3 rung carries only int8 kernels, so its float work resolves to the
// sse2 table; the vnni rung carries only the vpdpbusd int8 kernels, so its
// float work resolves to the avx512 table; the bottom of every walk is the
// always-compiled scalar tile in gemm_internal.h. A tier whose -m flags
// were unavailable at build time exported an all-null table and the walk
// skips it, so one source tree still builds (slower) on a toolchain missing
// the upper rungs.

namespace {

const GemmKernelTable* TierTable(SimdTier tier) {
  switch (tier) {
    case SimdTier::kSse2:
      return &gemm_tier_sse2::Table();
    case SimdTier::kSsse3:
      return &gemm_tier_ssse3::Table();
    case SimdTier::kAvx2:
      return &gemm_tier_avx2::Table();
    case SimdTier::kAvx512:
      return &gemm_tier_avx512::Table();
    case SimdTier::kVnni:
      return &gemm_tier_vnni::Table();
    case SimdTier::kScalar:
      return nullptr;
  }
  return nullptr;
}

// Whether a rung's defining kernels made it into this binary. The data
// contracts (panel width, weight clamp) follow the highest COMPILED rung at
// or below the active tier, not the detected one — claiming the VNNI ±127
// clamp without the vpdpbusd kernel would saturate the maddubs fallback.
bool TierCompiled(SimdTier tier) {
  const GemmKernelTable* table = TierTable(tier);
  switch (tier) {
    case SimdTier::kScalar:
      return true;
    case SimdTier::kSse2:
      return table->gemm_packed != nullptr;
    case SimdTier::kSsse3:
    case SimdTier::kVnni:
      return table->gemm_int8 != nullptr;
    case SimdTier::kAvx2:
    case SimdTier::kAvx512:
      return table->gemm_packed != nullptr && table->gemm_int8 != nullptr;
  }
  return false;
}

// Highest compiled rung at or below min(detected, cap). This is the tier
// that owns the data contracts right now.
SimdTier ResolvedTier() {
  int tier = static_cast<int>(ActiveSimdTier());
  while (tier > 0 && !TierCompiled(static_cast<SimdTier>(tier))) {
    --tier;
  }
  return static_cast<SimdTier>(tier);
}

const GemmKernelTable* ResolveFloat() {
  for (int tier = static_cast<int>(ResolvedTier()); tier > 0; --tier) {
    const GemmKernelTable* table = TierTable(static_cast<SimdTier>(tier));
    if (table != nullptr && table->gemm_packed != nullptr) {
      return table;
    }
  }
  return nullptr;
}

const GemmKernelTable* ResolveInt8() {
  for (int tier = static_cast<int>(ResolvedTier()); tier > 0; --tier) {
    const GemmKernelTable* table = TierTable(static_cast<SimdTier>(tier));
    if (table != nullptr && table->gemm_int8 != nullptr) {
      return table;
    }
  }
  return nullptr;
}

const GemmKernelTable* ResolveQuant() {
  for (int tier = static_cast<int>(ResolvedTier()); tier > 0; --tier) {
    const GemmKernelTable* table = TierTable(static_cast<SimdTier>(tier));
    if (table != nullptr && table->quantize_activations != nullptr) {
      return table;
    }
  }
  return nullptr;
}

// Sinks for the baseline-compiled scalar fallback (force-scalar oracle /
// no-SIMD host). The tier TUs carry their own copies with vector members;
// these have only the scalar Put, which mirrors QuantizeActivations' tail.
struct ScalarFloatSink {
  using Out = float;
  void Put(float* c_row, int idx, float v) const { c_row[idx] = v; }
};

struct ScalarRequantSink {
  using Out = uint8_t;
  float inv_scale = 1.0f;
  int32_t zero_point = 0;
  void Put(uint8_t* c_row, int idx, float v) const {
    const int32_t q = zero_point + static_cast<int32_t>(std::nearbyint(v * inv_scale));
    c_row[idx] = static_cast<uint8_t>(std::min(255, std::max(0, q)));
  }
};

}  // namespace

int GemmNativePanelWidth() {
  return static_cast<int>(ResolvedTier()) >= static_cast<int>(SimdTier::kAvx512)
             ? kGemmTileNMax
             : kGemmTileNMin;
}

int Int8WeightMax() { return ResolvedTier() == SimdTier::kVnni ? 127 : 64; }

bool ValidPanelWidth(int width) {
  return width == kGemmTileNMin || width == kGemmTileNMax;
}

// ------------------------------------------------------- execution config --

void SetInferenceThreadPool(ThreadPool* pool) { g_inference_pool.store(pool); }
ThreadPool* InferenceThreadPool() { return g_inference_pool.load(); }

void SetGemmEnabledByDefault(bool enabled) { g_gemm_default.store(enabled); }
bool GemmEnabledByDefault() { return g_gemm_default.load(); }

void SetGemmForceScalar(bool force) { g_force_scalar.store(force); }
bool GemmForceScalar() { return g_force_scalar.load(); }

const char* ActiveGemmKernelName() {
  if (GemmForceScalar()) {
    return "scalar";
  }
  const GemmKernelTable* table = ResolveFloat();
  return table != nullptr ? table->float_name : "scalar";
}

const char* ActiveInt8KernelName() {
  if (GemmForceScalar()) {
    return "scalar";
  }
  const GemmKernelTable* table = ResolveInt8();
  return table != nullptr ? table->int8_name : "scalar";
}

void LogSimdPathOnce() {
  static std::once_flag logged;
  std::call_once(logged, [] {
    std::string line = std::string("gemm: cpu features ") + CpuFeatureString() +
                       "; float path " + ActiveGemmKernelName() + " (tile " +
                       std::to_string(kGemmTileM) + "x" +
                       std::to_string(GemmNativePanelWidth()) + "), int8 path " +
                       ActiveInt8KernelName();
    if (static_cast<int>(SimdTierCap()) < static_cast<int>(DetectedSimdTier())) {
      line += std::string(" [tier capped at ") + SimdTierName(ActiveSimdTier()) + "]";
    }
    if (GemmForceScalar()) {
      line += " [force-scalar]";
    }
    LogLine(line);
  });
}

ScopedInferencePool::ScopedInferencePool(int num_threads)
    : pool_(std::make_unique<ThreadPool>(
          num_threads > 0 ? num_threads
                          : std::max(1, static_cast<int>(std::thread::hardware_concurrency())))),
      previous_(InferenceThreadPool()) {
  LogSimdPathOnce();
  SetInferenceThreadPool(pool_.get());
}

ScopedInferencePool::~ScopedInferencePool() { SetInferenceThreadPool(previous_); }

// ------------------------------------------------------------- planner --

const char* LayoutName(ActivationLayout layout) {
  return layout == ActivationLayout::kCOuter ? "c-outer" : "kh-kw-c";
}

const char* GatherPolicyName(GatherPolicy policy) {
  return policy == GatherPolicy::kImplicit ? "implicit" : "materialize";
}

void SetPlannerPanelOverride(int width) {
  PCHECK(width == 0 || ValidPanelWidth(width))
      << "panel override " << width << " is not a width this build's kernels implement";
  g_planner_panel_override.store(width);
}

int PlannerPanelOverride() { return g_planner_panel_override.load(); }

void SetPlannerLayoutPolicy(LayoutPolicy policy) { g_planner_layout_policy.store(policy); }

LayoutPolicy PlannerLayoutPolicy() { return g_planner_layout_policy.load(); }

void SetPlannerGatherPolicy(GatherPolicyMode mode) { g_planner_gather_policy.store(mode); }

GatherPolicyMode PlannerGatherPolicy() { return g_planner_gather_policy.load(); }

void SetDataflowRequantEnabled(bool enabled) { g_dataflow_requant.store(enabled); }

bool DataflowRequantEnabled() { return g_dataflow_requant.load(); }

void SetGapCodesMode(GapCodesMode mode) { g_gap_codes_mode.store(mode); }

GapCodesMode GetGapCodesMode() { return g_gap_codes_mode.load(); }

void SetGapCodesEnabled(bool enabled) {
  SetGapCodesMode(enabled ? GapCodesMode::kForceOn : GapCodesMode::kForceOff);
}

bool GapCodesEnabled() { return GetGapCodesMode() == GapCodesMode::kForceOn; }

KernelPlan ChooseConvKernelPlan(int out_channels, int kernel, int stride, int pad,
                                int in_width) {
  KernelPlan plan;  // panel_width defaults to the active tier's native width
  const int override_width = PlannerPanelOverride();
  if (override_width != 0) {
    plan.panel_width = override_width;
  } else if (plan.panel_width > kGemmTileNMin && out_channels <= kGemmTileNMin) {
    // A <=16-channel layer fills at most half the native 32-wide panel;
    // the 16-wide sub-tile halves the per-K-step panel loads and FMAs.
    plan.panel_width = kGemmTileNMin;
  }
  const LayoutPolicy policy = PlannerLayoutPolicy();
  if (kernel > 1) {
    if (policy == LayoutPolicy::kForceCOuter) {
      plan.layout = ActivationLayout::kCOuter;
    } else if (policy == LayoutPolicy::kAuto) {
      // Measured default: kh-kw-c. The c-outer gather trades the per-tap
      // contiguous memcpy for channel-strided scalar loads, which loses on
      // NHWC inputs at every channel count tried (see the
      // conv3x3_layout_* rows in BENCH_micro_kernels.json).
      plan.layout = ActivationLayout::kKhKwC;
    }
  }
  if (kernel > 1) {
    const GatherPolicyMode gather_mode = PlannerGatherPolicy();
    if (gather_mode == GatherPolicyMode::kForceImplicit) {
      plan.gather = GatherPolicy::kImplicit;
    } else if (gather_mode == GatherPolicyMode::kAuto &&
               plan.layout == ActivationLayout::kKhKwC) {
      // Implicit pays off when the interior run — the output columns that
      // see all kw taps in bounds — is at least one full column tile wide
      // on every tier (the 16-wide sub-panel kernels tile 8 columns).
      // Shorter runs stream mostly through the per-row edge/remainder
      // paths, where the materialized m = out_h*out_w GEMM wins (measured:
      // the experiment profile's 8x8 and 4x4 fire stages). in_width 0 =
      // unknown shape: assume a wide interior (the forward re-checks the
      // interior per input and falls back when it is empty).
      bool wide_interior = true;
      if (in_width > 0) {
        const int out_w = (in_width - kernel + 2 * pad) / stride + 1;
        const int ow_lo = (pad + stride - 1) / stride;
        const int ow_hi = std::min(out_w, (in_width - kernel + pad) / stride + 1);
        wide_interior = out_w > 0 && ow_hi - ow_lo >= kImplicitMinInteriorRun;
      }
      if (wide_interior) {
        plan.gather = GatherPolicy::kImplicit;
      }
    }
  }
  return plan;
}

// ----------------------------------------------------------------- packing --

size_t PackedPanelFloats(int n, int k, int panel_width) {
  const int panels = (n + panel_width - 1) / panel_width;
  return static_cast<size_t>(panels) * static_cast<size_t>(k) * panel_width;
}

void PackFilterPanels(const float* b, int n, int k, float* packed, int panel_width) {
  PCHECK(ValidPanelWidth(panel_width));
  const int panels = (n + panel_width - 1) / panel_width;
  for (int panel = 0; panel < panels; ++panel) {
    const int n0 = panel * panel_width;
    const int width = std::min(panel_width, n - n0);
    float* dst = packed + static_cast<size_t>(panel) * k * panel_width;
    for (int kk = 0; kk < k; ++kk) {
      float* row = dst + static_cast<size_t>(kk) * panel_width;
      for (int j = 0; j < width; ++j) {
        row[j] = b[static_cast<int64_t>(n0 + j) * k + kk];
      }
      for (int j = width; j < panel_width; ++j) {
        row[j] = 0.0f;
      }
    }
  }
}

// ------------------------------------------------------- int8 quantization --

ActivationQuant ComputeActivationQuant(float min_value, float max_value) {
  // The range always covers 0 so im2col zero padding is exactly encodable.
  min_value = std::min(min_value, 0.0f);
  max_value = std::max(max_value, 0.0f);
  ActivationQuant quant;
  quant.scale = (max_value - min_value) / 255.0f;
  if (quant.scale <= 0.0f) {
    quant.scale = 1.0f;  // all-zero tensor: any scale maps 0 -> zero_point
  }
  const float zp = std::nearbyint(-min_value / quant.scale);
  quant.zero_point = static_cast<int32_t>(std::min(255.0f, std::max(0.0f, zp)));
  return quant;
}

void QuantizeActivations(const float* src, int64_t count, const ActivationQuant& quant,
                         uint8_t* dst) {
  // The tier entries produce codes identical to this scalar fallback
  // (cvtps_epi32 rounds half-to-even exactly like nearbyint), so the
  // dispatch is invisible in the output at any tier or cap.
  const GemmKernelTable* table = ResolveQuant();
  if (table != nullptr) {
    table->quantize_activations(src, count, quant, dst);
    return;
  }
  const float inv_scale = 1.0f / quant.scale;
  for (int64_t i = 0; i < count; ++i) {
    const int32_t q =
        quant.zero_point + static_cast<int32_t>(std::nearbyint(src[i] * inv_scale));
    dst[i] = static_cast<uint8_t>(std::min(255, std::max(0, q)));
  }
}

void MinMaxRange(const float* data, int64_t count, float* min_out, float* max_out) {
  const GemmKernelTable* table = ResolveQuant();
  if (table != nullptr) {
    table->min_max_range(data, count, min_out, max_out);
    return;
  }
  float min_v = 0.0f;
  float max_v = 0.0f;
  for (int64_t i = 0; i < count; ++i) {
    min_v = std::min(min_v, data[i]);
    max_v = std::max(max_v, data[i]);
  }
  *min_out = min_v;
  *max_out = max_v;
}

size_t PackedPanelBytesInt8(int n, int k, int panel_width) {
  const int panels = (n + panel_width - 1) / panel_width;
  return static_cast<size_t>(panels) * static_cast<size_t>(Int8PaddedK(k)) * panel_width;
}

float QuantizeWeightRow(const float* row, int k, int8_t* codes) {
  const int weight_max = Int8WeightMax();
  float amax = 0.0f;
  for (int kk = 0; kk < k; ++kk) {
    amax = std::max(amax, std::abs(row[kk]));
  }
  const float scale = amax > 0.0f ? amax / static_cast<float>(weight_max) : 1.0f;
  const float inv_scale = 1.0f / scale;
  for (int kk = 0; kk < k; ++kk) {
    const int32_t q = static_cast<int32_t>(std::nearbyint(row[kk] * inv_scale));
    codes[kk] = static_cast<int8_t>(std::min(weight_max, std::max(-weight_max, q)));
  }
  return scale;
}

namespace {

// Shared tail of the two int8 packers: sizes `packed`, then interleaves one
// channel's zero-padded code row at a time (panel-major, K-group, channel,
// 4 consecutive K bytes) while recording scales and row sums.
void SizeInt8Panels(int n, int k, int panel_width, Int8PackedFilters* packed) {
  PCHECK_GT(n, 0);
  PCHECK_GT(k, 0);
  PCHECK(ValidPanelWidth(panel_width));
  packed->n = n;
  packed->k = k;
  packed->k_padded = Int8PaddedK(k);
  packed->panel_width = panel_width;
  const int panels = (n + panel_width - 1) / panel_width;
  packed->data.assign(PackedPanelBytesInt8(n, k, panel_width), 0);
  packed->scales.assign(static_cast<size_t>(panels) * panel_width, 0.0f);
  packed->row_sums.assign(static_cast<size_t>(panels) * panel_width, 0);
}

void InterleaveInt8CodeRow(const int8_t* q_row_padded, int oc, Int8PackedFilters* packed) {
  const int pw = packed->panel_width;
  const int groups = packed->k_padded / kInt8KUnit;
  const int panel = oc / pw;
  const int j = oc % pw;
  int8_t* panel_base = packed->data.data() +
                       static_cast<size_t>(panel) * groups * pw * kInt8KUnit;
  for (int g = 0; g < groups; ++g) {
    int8_t* dst = panel_base + (static_cast<size_t>(g) * pw + j) * kInt8KUnit;
    for (int t = 0; t < kInt8KUnit; ++t) {
      dst[t] = q_row_padded[static_cast<size_t>(g) * kInt8KUnit + t];
    }
  }
}

}  // namespace

void PackFilterPanelsInt8(const float* b, int n, int k, Int8PackedFilters* packed,
                          int panel_width) {
  SizeInt8Panels(n, k, panel_width, packed);
  std::vector<int8_t> q_row(static_cast<size_t>(packed->k_padded), 0);
  for (int oc = 0; oc < n; ++oc) {
    std::fill(q_row.begin(), q_row.end(), static_cast<int8_t>(0));
    packed->scales[static_cast<size_t>(oc)] =
        QuantizeWeightRow(b + static_cast<int64_t>(oc) * k, k, q_row.data());
    int32_t row_sum = 0;
    for (int kk = 0; kk < k; ++kk) {
      row_sum += q_row[static_cast<size_t>(kk)];
    }
    packed->row_sums[static_cast<size_t>(oc)] = row_sum;
    InterleaveInt8CodeRow(q_row.data(), oc, packed);
  }
}

void PackQuantizedFilterPanelsInt8(const int8_t* codes, const float* scales, int n, int k,
                                   Int8PackedFilters* packed, int panel_width) {
  SizeInt8Panels(n, k, panel_width, packed);
  const int weight_max = Int8WeightMax();
  std::vector<int8_t> q_row(static_cast<size_t>(packed->k_padded), 0);
  for (int oc = 0; oc < n; ++oc) {
    const int8_t* row = codes + static_cast<int64_t>(oc) * k;
    std::fill(q_row.begin() + k, q_row.end(), static_cast<int8_t>(0));
    int32_t row_sum = 0;
    for (int kk = 0; kk < k; ++kk) {
      PCHECK_LE(std::abs(static_cast<int>(row[kk])), weight_max)
          << "pre-quantized code outside the active tier's saturation-safe range";
      q_row[static_cast<size_t>(kk)] = row[kk];
      row_sum += row[kk];
    }
    packed->scales[static_cast<size_t>(oc)] = scales[oc];
    packed->row_sums[static_cast<size_t>(oc)] = row_sum;
    InterleaveInt8CodeRow(q_row.data(), oc, packed);
  }
}

// ----------------------------------------------------- kernel entry points --

static_assert(kGemmTileM == 4, "the tile kernels are written for 4-row tiles");
static_assert(kGemmTileNMin == 16 && kGemmTileNMax == 32,
              "the tile kernels implement panel widths 16 and 32");

void GemmPackedEx(int64_t m, int n, int k, const float* a, const float* packed_b,
                  const float* bias, GemmEpilogue epilogue, float* c, int64_t ldc,
                  int panel_width) {
  PCHECK_GE(ldc, n);
  PCHECK(ValidPanelWidth(panel_width));
  LogSimdPathOnce();
  if (!GemmForceScalar()) {
    const GemmKernelTable* table = ResolveFloat();
    if (table != nullptr) {
      table->gemm_packed(m, n, k, a, packed_b, bias, epilogue, c, ldc, panel_width);
      return;
    }
  }
  gemm_internal::GemmPackedScalarEntry(m, n, k, a, packed_b, bias, epilogue, c, ldc,
                                       panel_width);
}

void GemmPackedNT(int64_t m, int n, int k, const float* a, const float* packed_b,
                  const float* bias, float* c) {
  GemmPackedEx(m, n, k, a, packed_b, bias, GemmEpilogue::kBias, c, n);
}

void GemmInt8PackedEx(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                      const ActivationQuant& quant, const float* bias, GemmEpilogue epilogue,
                      float* c, int64_t ldc) {
  PCHECK_GE(ldc, packed.n);
  PCHECK_EQ(packed.k_padded % kInt8KUnit, 0);
  PCHECK(ValidPanelWidth(packed.panel_width));
  LogSimdPathOnce();
  if (!GemmForceScalar()) {
    const GemmKernelTable* table = ResolveInt8();
    if (table != nullptr) {
      table->gemm_int8(m, a, packed, quant, bias, epilogue, c, ldc);
      return;
    }
  }
  gemm_internal::GemmInt8Scalar(m, a, packed, quant, bias, epilogue, c, ldc,
                                ScalarFloatSink{});
}

void GemmInt8PackedExU8(int64_t m, const uint8_t* a, const Int8PackedFilters& packed,
                        const ActivationQuant& quant, const float* bias,
                        GemmEpilogue epilogue, const ActivationQuant& out_quant, uint8_t* c,
                        int64_t ldc) {
  PCHECK_GE(ldc, packed.n);
  PCHECK_EQ(packed.k_padded % kInt8KUnit, 0);
  PCHECK(ValidPanelWidth(packed.panel_width));
  LogSimdPathOnce();
  if (!GemmForceScalar()) {
    const GemmKernelTable* table = ResolveInt8();
    if (table != nullptr) {
      table->gemm_int8_u8(m, a, packed, quant, bias, epilogue, out_quant, c, ldc);
      return;
    }
  }
  ScalarRequantSink sink;
  sink.inv_scale = 1.0f / out_quant.scale;
  sink.zero_point = out_quant.zero_point;
  gemm_internal::GemmInt8Scalar(m, a, packed, quant, bias, epilogue, c, ldc, sink);
}

// ------------------------------------------- implicit-GEMM entry points --

namespace {

template <typename T>
void CheckImplicitView(const ImplicitConvView<T>& view) {
  PCHECK(view.base != nullptr);
  PCHECK(view.offsets != nullptr);
  PCHECK_GT(view.segments, 0);
  PCHECK_GT(view.seg_len, 0);
  PCHECK_GT(view.col_stride, 0);
}

}  // namespace

void GemmPackedImplicit(const ImplicitConvViewF& view, int n, const float* packed_b,
                        const float* bias, GemmEpilogue epilogue, float* c, int64_t ldc,
                        int panel_width) {
  PCHECK_GE(ldc, n);
  PCHECK(ValidPanelWidth(panel_width));
  CheckImplicitView(view);
  if (view.run_w <= 0 || view.oh_end <= view.oh_begin) {
    return;
  }
  LogSimdPathOnce();
  if (!GemmForceScalar()) {
    const GemmKernelTable* table = ResolveFloat();
    if (table != nullptr && table->gemm_packed_implicit != nullptr) {
      table->gemm_packed_implicit(view, n, packed_b, bias, epilogue, c, ldc, panel_width);
      return;
    }
  }
  gemm_internal::GemmPackedImplicitScalarEntry(view, n, packed_b, bias, epilogue, c, ldc,
                                               panel_width);
}

void GemmInt8PackedImplicit(const ImplicitConvViewU8& view, const Int8PackedFilters& packed,
                            const ActivationQuant& quant, const float* bias,
                            GemmEpilogue epilogue, float* c, int64_t ldc) {
  PCHECK_GE(ldc, packed.n);
  PCHECK(ValidPanelWidth(packed.panel_width));
  CheckImplicitView(view);
  PCHECK(view.zero_row != nullptr);
  PCHECK_EQ(view.seg_len % kInt8KUnit, 0);
  PCHECK_EQ(view.segments * view.seg_len, packed.k_padded);
  if (view.run_w <= 0 || view.oh_end <= view.oh_begin) {
    return;
  }
  LogSimdPathOnce();
  if (!GemmForceScalar()) {
    const GemmKernelTable* table = ResolveInt8();
    if (table != nullptr && table->gemm_int8_implicit != nullptr) {
      table->gemm_int8_implicit(view, packed, quant, bias, epilogue, c, ldc);
      return;
    }
  }
  gemm_internal::GemmInt8ImplicitScalar(view, packed, quant, bias, epilogue, c, ldc,
                                        ScalarFloatSink{});
}

void GemmInt8PackedImplicitU8(const ImplicitConvViewU8& view, const Int8PackedFilters& packed,
                              const ActivationQuant& quant, const float* bias,
                              GemmEpilogue epilogue, const ActivationQuant& out_quant,
                              uint8_t* c, int64_t ldc) {
  PCHECK_GE(ldc, packed.n);
  PCHECK(ValidPanelWidth(packed.panel_width));
  CheckImplicitView(view);
  PCHECK(view.zero_row != nullptr);
  PCHECK_EQ(view.seg_len % kInt8KUnit, 0);
  PCHECK_EQ(view.segments * view.seg_len, packed.k_padded);
  if (view.run_w <= 0 || view.oh_end <= view.oh_begin) {
    return;
  }
  LogSimdPathOnce();
  if (!GemmForceScalar()) {
    const GemmKernelTable* table = ResolveInt8();
    if (table != nullptr && table->gemm_int8_implicit_u8 != nullptr) {
      table->gemm_int8_implicit_u8(view, packed, quant, bias, epilogue, out_quant, c, ldc);
      return;
    }
  }
  ScalarRequantSink sink;
  sink.inv_scale = 1.0f / out_quant.scale;
  sink.zero_point = out_quant.zero_point;
  gemm_internal::GemmInt8ImplicitScalar(view, packed, quant, bias, epilogue, c, ldc, sink);
}

void InferenceParallelFor(int64_t total, int64_t macs_per_item,
                          const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool* pool = InferenceThreadPool();
  const int64_t macs = total * std::max<int64_t>(macs_per_item, 1);
  if (pool == nullptr || pool->IsWorkerThread() || pool->num_threads() <= 1 ||
      macs < kMinMacsPerParallelKernel || total <= 1) {
    fn(0, total);
    return;
  }
  // Oversubscribe lightly so uneven chunks do not leave workers idle.
  const int64_t target_chunks = static_cast<int64_t>(pool->num_threads()) * 4;
  const int64_t chunk = std::max<int64_t>(1, (total + target_chunks - 1) / target_chunks);
  const int chunks = static_cast<int>((total + chunk - 1) / chunk);
  pool->ParallelFor(chunks, [&](int index) {
    const int64_t begin = static_cast<int64_t>(index) * chunk;
    const int64_t end = std::min(total, begin + chunk);
    fn(begin, end);
  });
}

void GemmNT(int64_t m, int n, int k, const float* a, const float* b, const float* bias,
            float* c, ThreadPool* pool) {
  PCHECK_GE(m, 0);
  PCHECK_GT(n, 0);
  PCHECK_GT(k, 0);
  const int panel_width = GemmNativePanelWidth();
  ScratchArena& arena = LocalArena();
  arena.Reset();
  float* packed = arena.Alloc(PackedPanelFloats(n, k, panel_width));
  PackFilterPanels(b, n, k, packed, panel_width);

  const int64_t macs_per_row = static_cast<int64_t>(n) * k;
  if (pool == nullptr || pool->IsWorkerThread() || pool->num_threads() <= 1 ||
      m * macs_per_row < kMinMacsPerParallelKernel) {
    GemmPackedEx(m, n, k, a, packed, bias, GemmEpilogue::kBias, c, n, panel_width);
    return;
  }
  const int64_t target_chunks = static_cast<int64_t>(pool->num_threads()) * 4;
  // Round chunks to the tile height so only the final chunk runs the
  // remainder kernel.
  int64_t chunk = std::max<int64_t>(kGemmTileM, (m + target_chunks - 1) / target_chunks);
  chunk = (chunk + kGemmTileM - 1) / kGemmTileM * kGemmTileM;
  const int chunks = static_cast<int>((m + chunk - 1) / chunk);
  pool->ParallelFor(chunks, [&](int index) {
    const int64_t begin = static_cast<int64_t>(index) * chunk;
    const int64_t end = std::min(m, begin + chunk);
    GemmPackedEx(end - begin, n, k, a + begin * k, packed, bias, GemmEpilogue::kBias,
                 c + begin * n, n, panel_width);
  });
}

}  // namespace percival
