#include "src/nn/pool.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "src/base/logging.h"
#include "src/nn/gemm.h"
#include "src/nn/ops.h"

namespace percival {

MaxPool2D::MaxPool2D(int kernel, int stride) : kernel_(kernel), stride_(stride) {
  PCHECK_GT(kernel, 0);
  PCHECK_GT(stride, 0);
}

std::string MaxPool2D::Name() const {
  std::ostringstream out;
  out << "maxpool" << kernel_ << "x" << kernel_ << "/" << stride_;
  return out.str();
}

TensorShape MaxPool2D::OutputShape(const TensorShape& input) const {
  return TensorShape{input.n, ConvOutputSize(input.h, kernel_, stride_, 0),
                     ConvOutputSize(input.w, kernel_, stride_, 0), input.c};
}

Tensor MaxPool2D::Forward(const Tensor& input) {
  input_shape_ = input.shape();
  const TensorShape out_shape = OutputShape(input_shape_);
  Tensor output(out_shape);
  // Eval mode skips the argmax capture — backward routing state a frozen
  // deployment never reads.
  const bool capture_argmax = training_;
  if (capture_argmax) {
    argmax_.assign(static_cast<size_t>(out_shape.Elements()), 0);
  } else {
    argmax_.clear();
  }

  const int channels = input_shape_.c;
  // One work item per output pixel row (n, oh, ow): indices derive from the
  // flat row id, so disjoint ranges write disjoint output/argmax slices and
  // the whole loop fans out over the inference pool.
  const int64_t pixels_per_sample = static_cast<int64_t>(out_shape.h) * out_shape.w;
  const int64_t total_pixels = static_cast<int64_t>(out_shape.n) * pixels_per_sample;
  InferenceParallelFor(
      total_pixels, static_cast<int64_t>(kernel_) * kernel_ * channels,
      [&](int64_t begin, int64_t end) {
        for (int64_t p = begin; p < end; ++p) {
          const int n = static_cast<int>(p / pixels_per_sample);
          const int64_t within = p % pixels_per_sample;
          const int oh = static_cast<int>(within / out_shape.w);
          const int ow = static_cast<int>(within % out_shape.w);
          const float* in = input.SampleData(n);
          const int64_t sample_base = static_cast<int64_t>(n) * input.SampleElements();
          int64_t out_index = p * channels;
          for (int c = 0; c < channels; ++c) {
            float best = -std::numeric_limits<float>::infinity();
            int64_t best_index = 0;
            for (int kh = 0; kh < kernel_; ++kh) {
              const int ih = oh * stride_ + kh;
              if (ih >= input_shape_.h) {
                continue;
              }
              for (int kw = 0; kw < kernel_; ++kw) {
                const int iw = ow * stride_ + kw;
                if (iw >= input_shape_.w) {
                  continue;
                }
                const int64_t idx =
                    (static_cast<int64_t>(ih) * input_shape_.w + iw) * channels + c;
                if (in[idx] > best) {
                  best = in[idx];
                  best_index = idx;
                }
              }
            }
            output[out_index] = best;
            if (capture_argmax) {
              argmax_[static_cast<size_t>(out_index)] = sample_base + best_index;
            }
            ++out_index;
          }
        }
      });
  return output;
}

void MaxPool2D::ForwardCodes(const QuantizedTensorView& input, uint8_t* out) {
  PCHECK(!training_) << Name() << " ForwardCodes in training mode";
  input_shape_ = input.shape;
  argmax_.clear();
  const TensorShape out_shape = OutputShape(input_shape_);
  const int64_t in_sample = static_cast<int64_t>(input_shape_.h) * input_shape_.w * input_shape_.c;
  const int64_t out_sample = static_cast<int64_t>(out_shape.h) * out_shape.w * out_shape.c;
  for (int n = 0; n < input_shape_.n; ++n) {
    MaxPoolCodes(input.data + n * in_sample, input_shape_.h, input_shape_.w, input_shape_.c,
                 kernel_, stride_, out + n * out_sample);
  }
}

Tensor MaxPool2D::Backward(const Tensor& grad_output) {
  PCHECK(training_) << Name() << " Backward called in eval mode";
  PCHECK_EQ(grad_output.size(), static_cast<int64_t>(argmax_.size()))
      << Name() << " Backward without a matching training-mode Forward";
  Tensor grad_input(input_shape_);
  for (int64_t i = 0; i < grad_output.size(); ++i) {
    grad_input[argmax_[static_cast<size_t>(i)]] += grad_output[i];
  }
  return grad_input;
}

Tensor GlobalAvgPool::Forward(const Tensor& input) {
  input_shape_ = input.shape();
  if (calibration_capture_) {
    float lo = 0.0f;
    float hi = 0.0f;
    MinMaxRange(input.data(), input.size(), &lo, &hi);
    if (has_input_calibration_) {
      lo = std::min(lo, calib_min_);
      hi = std::max(hi, calib_max_);
    }
    has_input_calibration_ = true;
    calib_min_ = lo;
    calib_max_ = hi;
  }
  Tensor output(input_shape_.n, 1, 1, input_shape_.c);
  const int64_t plane = static_cast<int64_t>(input_shape_.h) * input_shape_.w;
  PCHECK_GT(plane, 0);
  for (int n = 0; n < input_shape_.n; ++n) {
    const float* in = input.SampleData(n);
    float* out = output.SampleData(n);
    for (int64_t p = 0; p < plane; ++p) {
      const float* row = in + p * input_shape_.c;
      for (int c = 0; c < input_shape_.c; ++c) {
        out[c] += row[c];
      }
    }
    for (int c = 0; c < input_shape_.c; ++c) {
      out[c] /= static_cast<float>(plane);
    }
  }
  return output;
}

bool GlobalAvgPool::AcceptsQuantizedInput() const {
  const bool calibrated = !training_ && has_input_calibration_;
  switch (GetGapCodesMode()) {
    case GapCodesMode::kForceOff:
      return false;
    case GapCodesMode::kForceOn:
      return calibrated;
    case GapCodesMode::kAuto:
      // Default-on exactly for deployment artifacts: ranges supplied by a
      // serialized calibration trailer (the population the 64-image top-1
      // accuracy guard vets), never ranges captured live in this process.
      return calibrated && calibration_from_trailer_;
  }
  return false;
}

Tensor GlobalAvgPool::ForwardQuantized(const QuantizedTensorView& input) {
  PCHECK(!training_) << Name() << " ForwardQuantized in training mode";
  input_shape_ = input.shape;
  const int channels = input_shape_.c;
  const int64_t plane = static_cast<int64_t>(input_shape_.h) * input_shape_.w;
  PCHECK_GT(plane, 0);
  // Codes max out at 255, so int32 sums are exact for any plane the
  // classifier sees (saturation would need > 8.4M pixels per plane).
  PCHECK_LT(plane, static_cast<int64_t>(1) << 23);
  Tensor output(input_shape_.n, 1, 1, channels);
  const int64_t sample = plane * channels;
  sum_buffer_.assign(static_cast<size_t>(channels), 0);
  for (int n = 0; n < input_shape_.n; ++n) {
    const uint8_t* in = input.data + static_cast<int64_t>(n) * sample;
    float* out = output.SampleData(n);
    std::fill(sum_buffer_.begin(), sum_buffer_.end(), 0);
    for (int64_t p = 0; p < plane; ++p) {
      const uint8_t* row = in + p * channels;
      for (int c = 0; c < channels; ++c) {
        sum_buffer_[static_cast<size_t>(c)] += row[c];
      }
    }
    // avg value = scale * (avg code - zp) = scale * (sum - plane*zp) / plane:
    // one dequantize per channel instead of one per input element.
    const float inv_plane = 1.0f / static_cast<float>(plane);
    const int64_t zp_term = plane * static_cast<int64_t>(input.zero_point);
    for (int c = 0; c < channels; ++c) {
      const int64_t centered = static_cast<int64_t>(sum_buffer_[static_cast<size_t>(c)]) - zp_term;
      out[c] = input.scale * (static_cast<float>(centered) * inv_plane);
    }
  }
  return output;
}

void GlobalAvgPool::SetCalibrationCapture(bool capture) {
  if (capture && !calibration_capture_) {
    has_input_calibration_ = false;  // a new calibration batch starts fresh
    calib_min_ = 0.0f;
    calib_max_ = 0.0f;
    calibration_from_trailer_ = false;  // the range is now live-captured
  }
  calibration_capture_ = capture;
}

void GlobalAvgPool::AppendCalibration(std::vector<ActivationCalibration>* out) const {
  ActivationCalibration entry;
  entry.min_value = calib_min_;
  entry.max_value = calib_max_;
  entry.valid = has_input_calibration_;
  out->push_back(entry);
}

size_t GlobalAvgPool::ConsumeCalibration(const ActivationCalibration* entries, size_t count) {
  if (count < 1) {
    return 0;
  }
  has_input_calibration_ = entries[0].valid;
  calib_min_ = entries[0].min_value;
  calib_max_ = entries[0].max_value;
  // ConsumeCalibration is how a serialized trailer's ranges arrive (see
  // Network::LoadCalibration); this is what arms GapCodesMode::kAuto.
  calibration_from_trailer_ = entries[0].valid;
  return 1;
}

bool GlobalAvgPool::InputCalibration(float* min_value, float* max_value) const {
  if (!has_input_calibration_) {
    return false;
  }
  *min_value = calib_min_;
  *max_value = calib_max_;
  return true;
}

Tensor GlobalAvgPool::Backward(const Tensor& grad_output) {
  Tensor grad_input(input_shape_);
  const int64_t plane = static_cast<int64_t>(input_shape_.h) * input_shape_.w;
  const float inv = 1.0f / static_cast<float>(plane);
  for (int n = 0; n < input_shape_.n; ++n) {
    const float* dout = grad_output.SampleData(n);
    float* din = grad_input.SampleData(n);
    for (int64_t p = 0; p < plane; ++p) {
      float* row = din + p * input_shape_.c;
      for (int c = 0; c < input_shape_.c; ++c) {
        row[c] = dout[c] * inv;
      }
    }
  }
  return grad_input;
}

}  // namespace percival
