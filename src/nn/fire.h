// SqueezeNet fire module (Iandola et al., reproduced per the paper's Fig. 3).
//
// A fire module squeezes the channel count with a 1x1 convolution, then
// expands it with parallel 1x1 and 3x3 convolutions whose outputs are
// concatenated along the channel axis.
#ifndef PERCIVAL_SRC_NN_FIRE_H_
#define PERCIVAL_SRC_NN_FIRE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/layer.h"

namespace percival {

class FireModule : public Layer {
 public:
  // `squeeze_channels` is the 1x1 bottleneck width; each expand branch
  // produces `expand_channels` channels, so the module output has
  // 2 * expand_channels channels.
  FireModule(int in_channels, int squeeze_channels, int expand_channels, Rng& rng,
             std::string name = "fire");

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override;
  std::vector<Parameter*> Parameters() override;
  TensorShape OutputShape(const TensorShape& input) const override;
  int64_t ForwardMacs(const TensorShape& input) const override;

  int out_channels() const { return 2 * expand_channels_; }

 private:
  int squeeze_channels_;
  int expand_channels_;
  std::string label_;
  Conv2D squeeze_;
  Relu squeeze_relu_;
  Conv2D expand1x1_;
  Conv2D expand3x3_;
  Relu expand_relu_;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_FIRE_H_
