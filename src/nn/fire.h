// SqueezeNet fire module (Iandola et al., reproduced per the paper's Fig. 3).
//
// A fire module squeezes the channel count with a 1x1 convolution, then
// expands it with parallel 1x1 and 3x3 convolutions whose outputs are
// concatenated along the channel axis.
//
// On the GEMM path the whole module runs fused: the squeeze conv folds its
// ReLU into the GEMM epilogue, and each expand conv writes epilogue(conv)
// directly into its channel-half of the concat output tensor (relu(concat)
// == concat(relu), elementwise), deleting both the interleave copy and the
// two expand intermediates. Backward is unchanged — the ReLU masks are
// reconstructed from the fused outputs, which is exact.
#ifndef PERCIVAL_SRC_NN_FIRE_H_
#define PERCIVAL_SRC_NN_FIRE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/layer.h"

namespace percival {

class FireModule : public Layer {
 public:
  // `squeeze_channels` is the 1x1 bottleneck width; each expand branch
  // produces `expand_channels` channels, so the module output has
  // 2 * expand_channels channels.
  FireModule(int in_channels, int squeeze_channels, int expand_channels, Rng& rng,
             std::string name = "fire");

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override;
  std::vector<Parameter*> Parameters() override;
  TensorShape OutputShape(const TensorShape& input) const override;
  int64_t ForwardMacs(const TensorShape& input) const override;
  size_t ForwardScratchFloats(const TensorShape& input) const override;

  int out_channels() const { return 2 * expand_channels_; }

  // Flips all three inner convolutions between the GEMM engine and the
  // naive oracle (the fused path requires GEMM on every conv).
  void set_use_gemm(bool use_gemm);

  // Propagates to the inner convs and ReLUs. Eval mode additionally skips
  // the module's two ReLU mask sweeps (the masks are the only backward
  // state the fused path materializes).
  void SetTrainingMode(bool training) override;

  // Runs all three inner convolutions at the given precision; with kInt8
  // the fused path (squeeze ReLU epilogue + direct concat writes) runs
  // unchanged on the quantized kernels.
  void SetPrecision(Precision precision) override;

  // Kernel planning / plan reporting / calibration: each inner conv plans
  // against its real input shape (squeeze sees the module input, both
  // expands see the squeezed map), so an 8-16ch squeeze picks the narrow
  // panel while a wide expand keeps the full one.
  void PlanKernels(const TensorShape& input) override;
  void AppendKernelPlanRows(std::vector<KernelPlanRow>* out) const override;
  void SetCalibrationCapture(bool capture) override;
  size_t CalibrationSlots() const override { return 3; }
  void AppendCalibration(std::vector<ActivationCalibration>* out) const override;
  size_t ConsumeCalibration(const ActivationCalibration* entries, size_t count) override;

  // The module's input calibration is the squeeze conv's.
  bool InputCalibration(float* min_value, float* max_value) const override {
    return squeeze_.InputCalibration(min_value, max_value);
  }

  // Zero-float dataflow: the fused module consumes and emits uint8 codes.
  // When both expand convs carry a calibrated (shared) input range, the
  // squeeze->expand hop is quantized too — squeeze requant-emits into the
  // persistent `squeezed_codes_` buffer and the expands read codes, so the
  // module runs bitmap-codes in, concat-codes out with no float activation
  // tensor. Without expand calibration the hop falls back to a float
  // squeezed tensor (the expands quantize it themselves), which keeps code
  // emission available whenever the convs are int8-eval.
  bool AcceptsQuantizedInput() const override;
  Tensor ForwardQuantized(const QuantizedTensorView& input) override;
  bool CanEmitQuantizedCodes() const override { return AcceptsQuantizedInput(); }
  void ForwardToCodes(const Tensor& input, float out_scale, int32_t out_zero_point,
                      uint8_t* out) override;
  void ForwardQuantizedToCodes(const QuantizedTensorView& input, float out_scale,
                               int32_t out_zero_point, uint8_t* out) override;

  // Inner-conv access for tests and benches (plan inspection, pinning).
  Conv2D& squeeze() { return squeeze_; }
  Conv2D& expand1x1() { return expand1x1_; }
  Conv2D& expand3x3() { return expand3x3_; }

  // Disables operator fusion while keeping the GEMM convs: the module runs
  // the layer-by-layer reference path (conv, relu, conv x2, interleave
  // copy, relu). The parity tests pit the fused path against this.
  void set_use_fused(bool use_fused) { use_fused_ = use_fused; }
  bool use_fused() const { return use_fused_; }

 private:
  Tensor ForwardReference(const Tensor& input);
  // True (filling *hop_quant) when the squeeze->expand hop can run
  // quantized: both expand calibrations valid and equal (they observe the
  // same squeezed tensor, so capture and the trailer always agree).
  bool QuantizedSqueezeHop(ActivationQuant* hop_quant) const;

  int squeeze_channels_;
  int expand_channels_;
  std::string label_;
  bool use_fused_ = true;
  Conv2D squeeze_;
  Relu squeeze_relu_;
  Conv2D expand1x1_;
  Conv2D expand3x3_;
  Relu expand_relu_;

  // Persistent uint8 buffer for the quantized squeeze->expand hop. Grows to
  // the largest squeezed map seen and stays — steady-state forwards touch
  // no allocator.
  std::vector<uint8_t> squeezed_codes_;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_FIRE_H_
