#include "src/nn/conv.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <type_traits>

#include "src/base/logging.h"
#include "src/nn/gemm.h"
#include "src/nn/ops.h"

namespace percival {

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int stride, int pad, Rng& rng,
               std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      label_(std::move(name)),
      use_gemm_(GemmEnabledByDefault()) {
  PCHECK_GT(in_channels, 0);
  PCHECK_GT(out_channels, 0);
  PCHECK_GT(kernel, 0);
  PCHECK_GT(stride, 0);
  PCHECK_GE(pad, 0);
  const int fan_in = kernel * kernel * in_channels;
  weights_.name = label_ + ".weight";
  weights_.value = Tensor(out_channels, 1, 1, fan_in);
  weights_.grad = Tensor(out_channels, 1, 1, fan_in);
  const float he_std = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (int64_t i = 0; i < weights_.value.size(); ++i) {
    weights_.value[i] = static_cast<float>(rng.NextGaussian()) * he_std;
  }
  bias_.name = label_ + ".bias";
  bias_.value = Tensor(1, 1, 1, out_channels);
  bias_.grad = Tensor(1, 1, 1, out_channels);
  // Small positive bias keeps ReLU units alive at initialization; narrow
  // squeeze layers (2-4 channels) otherwise die with measurable probability
  // and take the whole network's gradient with them.
  bias_.value.Fill(0.05f);
}

std::string Conv2D::Name() const {
  std::ostringstream out;
  out << label_ << " " << kernel_ << "x" << kernel_ << "/" << stride_ << " " << in_channels_
      << "->" << out_channels_;
  return out.str();
}

TensorShape Conv2D::OutputShape(const TensorShape& input) const {
  return TensorShape{input.n, ConvOutputSize(input.h, kernel_, stride_, pad_),
                     ConvOutputSize(input.w, kernel_, stride_, pad_), out_channels_};
}

int64_t Conv2D::ForwardMacs(const TensorShape& input) const {
  TensorShape out = OutputShape(input);
  return out.Elements() * kernel_ * kernel_ * in_channels_;
}

size_t Conv2D::ForwardScratchFloats(const TensorShape& input) const {
  const bool identity_patches = kernel_ == 1 && stride_ == 1 && pad_ == 0;
  const TensorShape out = OutputShape(input);
  const size_t rows = static_cast<size_t>(out.h) * out.w;
  const size_t row_len = static_cast<size_t>(kernel_) * kernel_ * in_channels_;
  // Under an implicit-gather plan only the edge columns of one output row
  // are ever materialized; edge_cols stays < 0 when the plan (or this
  // input's degenerate interior) keeps the full materialized gather.
  int edge_cols = -1;
  if (!identity_patches && ImplicitEligible()) {
    const int ow_lo = (pad_ + stride_ - 1) / stride_;
    const int ow_hi = std::min(out.w, (input.w - kernel_ + pad_) / stride_ + 1);
    if (ow_hi > ow_lo) {
      edge_cols = ow_lo + (out.w - ow_hi);
    }
  }
  if (precision_ != Precision::kInt8) {
    if (edge_cols >= 0) {
      // Worst chunk spans the whole sample: every edge row's im2col gather
      // plus the compact staging block the batched edge GEMM writes into.
      const size_t edge_rows = static_cast<size_t>(out.h) * edge_cols;
      return edge_rows * (row_len + out_channels_);
    }
    return identity_patches ? 0 : rows * row_len;
  }
  // The quantized path gathers uint8 patch rows (padded to the int8 K
  // unit) instead of float im2col rows; a K-aligned 1x1 conv reads the
  // quantized input directly and stages nothing.
  const int k_padded = Int8PaddedK(static_cast<int>(row_len));
  if (identity_patches && static_cast<size_t>(k_padded) == row_len) {
    return 0;
  }
  if (edge_cols >= 0 && ImplicitEligibleInt8()) {
    // Worst chunk spans the whole sample: the u8 edge gather plus a staging
    // block wide enough for the float-logit variant (the u8-codes variant
    // needs a quarter of it).
    const size_t edge_rows = static_cast<size_t>(out.h) * edge_cols;
    const size_t code_bytes = edge_rows * static_cast<size_t>(k_padded);
    return (code_bytes + sizeof(float) - 1) / sizeof(float) + edge_rows * out_channels_;
  }
  const size_t code_bytes = rows * static_cast<size_t>(k_padded);
  return (code_bytes + sizeof(float) - 1) / sizeof(float);
}

Tensor Conv2D::Forward(const Tensor& input) {
  PCHECK_EQ(input.shape().c, in_channels_) << Name();
  if (use_gemm_) {
    return ForwardFused(input, GemmEpilogue::kBias);
  }
  PCHECK(precision_ == Precision::kFloat32)
      << Name() << " int8 precision requires the GEMM path";
  if (training_) {
    last_input_ = input;
  } else {
    // Eval must drop previously captured state, not merely stop refreshing
    // it: a stale same-shaped copy would let a later train-mode Backward
    // silently compute gradients against the wrong input.
    last_input_ = Tensor();
  }
  return ForwardNaive(input);
}

Tensor Conv2D::ForwardFused(const Tensor& input, GemmEpilogue epilogue) {
  const TensorShape out_shape = OutputShape(input.shape());
  Tensor output(out_shape);
  ForwardInto(input, epilogue, output.data(), out_shape.c,
              static_cast<int64_t>(out_shape.h) * out_shape.w * out_shape.c);
  return output;
}

void Conv2D::SetWeights(const Tensor& weights, const Tensor& bias) {
  PCHECK(weights.shape() == weights_.value.shape()) << Name();
  PCHECK(bias.shape() == bias_.value.shape()) << Name();
  weights_.value = weights;
  bias_.value = bias;
  weights_.MarkDirty();
  bias_.MarkDirty();
}

void Conv2D::PlanKernels(const TensorShape& input) {
  if (plan_pinned_) {
    return;  // an explicit SetKernelPlan pin outranks the heuristic
  }
  plan_ = ChooseConvKernelPlan(out_channels_, kernel_, stride_, pad_, input.w);
}

bool Conv2D::ImplicitEligible() const {
  return plan_.gather == GatherPolicy::kImplicit && kernel_ > 1 &&
         plan_.layout == ActivationLayout::kKhKwC;
}

bool Conv2D::ImplicitEligibleInt8() const {
  // K groups (4 bytes) must never straddle a vertical-tap segment boundary,
  // so each kernel_w * channels segment must be kInt8KUnit-aligned (which
  // also makes k_padded == row_len: no K tail to pad).
  return ImplicitEligible() && (kernel_ * in_channels_) % kInt8KUnit == 0;
}

bool Conv2D::PrepareImplicitGather(int height, int width) {
  const int out_w = ConvOutputSize(width, kernel_, stride_, pad_);
  const int ow_lo = (pad_ + stride_ - 1) / stride_;
  const int ow_hi = std::min(out_w, (width - kernel_ + pad_) / stride_ + 1);
  if (ow_hi <= ow_lo) {
    return false;  // every output column touches horizontal padding
  }
  if (implicit_h_ == height && implicit_w_ == width && !implicit_offsets_.empty()) {
    return true;
  }
  const int out_h = ConvOutputSize(height, kernel_, stride_, pad_);
  implicit_offsets_.assign(static_cast<size_t>(out_h) * kernel_, -1);
  // Offset of tap segment s for output (oh, ow_lo): the leftmost input
  // pixel every horizontal tap of that segment reads is iw0 = ow_lo*stride
  // - pad (>= 0 by the ow_lo definition). Vertical pad taps stay -1.
  const int iw0 = ow_lo * stride_ - pad_;
  for (int oh = 0; oh < out_h; ++oh) {
    for (int s = 0; s < kernel_; ++s) {
      const int ih = oh * stride_ - pad_ + s;
      if (ih < 0 || ih >= height) {
        continue;
      }
      implicit_offsets_[static_cast<size_t>(oh) * kernel_ + s] =
          (static_cast<int64_t>(ih) * width + iw0) * in_channels_;
    }
  }
  implicit_h_ = height;
  implicit_w_ = width;
  implicit_ow_lo_ = ow_lo;
  implicit_ow_hi_ = ow_hi;
  return true;
}

void Conv2D::SetKernelPlan(const KernelPlan& plan) {
  PCHECK(ValidPanelWidth(plan.panel_width))
      << Name() << " panel width " << plan.panel_width << " not implemented by this build";
  plan_ = plan;
  if (kernel_ == 1) {
    plan_.layout = ActivationLayout::kKhKwC;  // the K orders coincide
  }
  plan_pinned_ = true;
}

void Conv2D::AppendKernelPlanRows(std::vector<KernelPlanRow>* out) const {
  KernelPlanRow row;
  row.layer = label_;
  row.panel_width = plan_.panel_width;
  row.c_outer = plan_.layout == ActivationLayout::kCOuter;
  row.implicit = plan_.gather == GatherPolicy::kImplicit;
  row.int8 = precision_ == Precision::kInt8;
  row.u8_direct = AcceptsQuantizedInput();
  out->push_back(std::move(row));
}

void Conv2D::SetInputCalibration(float min_value, float max_value) {
  PCHECK_LE(min_value, max_value) << Name();
  has_input_calibration_ = true;
  calib_min_ = min_value;
  calib_max_ = max_value;
}

void Conv2D::ClearInputCalibration() {
  has_input_calibration_ = false;
  calib_min_ = 0.0f;
  calib_max_ = 0.0f;
}

bool Conv2D::InputCalibration(float* min_value, float* max_value) const {
  if (!has_input_calibration_) {
    return false;
  }
  *min_value = calib_min_;
  *max_value = calib_max_;
  return true;
}

void Conv2D::SetCalibrationCapture(bool capture) {
  if (capture && !calibration_capture_) {
    ClearInputCalibration();  // a new calibration batch starts fresh
  }
  calibration_capture_ = capture;
}

void Conv2D::AppendCalibration(std::vector<ActivationCalibration>* out) const {
  ActivationCalibration entry;
  entry.min_value = calib_min_;
  entry.max_value = calib_max_;
  entry.valid = has_input_calibration_;
  out->push_back(entry);
}

size_t Conv2D::ConsumeCalibration(const ActivationCalibration* entries, size_t count) {
  if (count < 1) {
    return 0;
  }
  if (entries[0].valid) {
    SetInputCalibration(entries[0].min_value, entries[0].max_value);
  } else {
    ClearInputCalibration();
  }
  return 1;
}

namespace {

// Permutes one flattened filter row from the storage order (kh, kw, c) into
// the c-outer K order (c, kh, kw) — the same permutation the c-outer im2col
// gathers apply to activation rows.
template <typename T>
void ReorderRowToCOuter(const T* src, int kernel, int channels, T* dst) {
  const int taps = kernel * kernel;
  for (int tap = 0; tap < taps; ++tap) {
    for (int c = 0; c < channels; ++c) {
      dst[c * taps + tap] = src[tap * channels + c];
    }
  }
}

}  // namespace

const float* Conv2D::WeightRowsForLayout() {
  if (plan_.layout != ActivationLayout::kCOuter || kernel_ == 1) {
    return weights_.value.data();
  }
  const int row_len = kernel_ * kernel_ * in_channels_;
  reordered_weights_.resize(static_cast<size_t>(weights_.value.size()));
  for (int oc = 0; oc < out_channels_; ++oc) {
    ReorderRowToCOuter(weights_.value.data() + static_cast<int64_t>(oc) * row_len, kernel_,
                       in_channels_, reordered_weights_.data() + static_cast<int64_t>(oc) * row_len);
  }
  return reordered_weights_.data();
}

void Conv2D::ReleaseReorderScratch() {
  reordered_weights_.clear();
  reordered_weights_.shrink_to_fit();
  reordered_codes_.clear();
  reordered_codes_.shrink_to_fit();
}

const float* Conv2D::PackedFilters() {
  if (packed_version_ != weights_.version || !(packed_plan_ == plan_)) {
    const int row_len = kernel_ * kernel_ * in_channels_;
    packed_filters_.resize(PackedPanelFloats(out_channels_, row_len, plan_.panel_width));
    PackFilterPanels(WeightRowsForLayout(), out_channels_, row_len, packed_filters_.data(),
                     plan_.panel_width);
    ReleaseReorderScratch();  // only the packed panels persist
    packed_version_ = weights_.version;
    packed_plan_ = plan_;
  }
  return packed_filters_.data();
}

const Int8PackedFilters& Conv2D::PackedFiltersInt8() {
  // Keyed additionally on the runtime weight clamp: a tier cap that flips
  // the clamp without moving the panel width (vnni <-> avx512, both
  // 32-wide) must still repack, or ±127 codes would reach a saturating
  // maddubs kernel.
  const int weight_max = Int8WeightMax();
  if (packed_int8_version_ != weights_.version || !(packed_int8_plan_ == plan_) ||
      packed_int8_weight_max_ != weight_max) {
    const int row_len = kernel_ * kernel_ * in_channels_;
    const bool c_outer = plan_.layout == ActivationLayout::kCOuter && kernel_ > 1;
    const QuantizedWeights* pre = weights_.quantized.get();
    if (pre != nullptr && pre->version == weights_.version &&
        pre->weight_max <= weight_max &&
        pre->codes.size() == static_cast<size_t>(weights_.value.size()) &&
        pre->scales.size() == static_cast<size_t>(out_channels_)) {
      // Pre-quantized weights (PCVW v2 load): pack the exact serialized
      // codes — no requantization, and bit-identical int8 inference to the
      // build that wrote them. Permuting the K order within a row changes
      // neither the per-channel scale nor the row sum, so the c-outer plan
      // preserves that bit-identity.
      const int8_t* codes = pre->codes.data();
      if (c_outer) {
        reordered_codes_.resize(pre->codes.size());
        for (int oc = 0; oc < out_channels_; ++oc) {
          ReorderRowToCOuter(pre->codes.data() + static_cast<int64_t>(oc) * row_len, kernel_,
                             in_channels_,
                             reordered_codes_.data() + static_cast<int64_t>(oc) * row_len);
        }
        codes = reordered_codes_.data();
      }
      PackQuantizedFilterPanelsInt8(codes, pre->scales.data(), out_channels_, row_len,
                                    &packed_filters_int8_, plan_.panel_width);
    } else {
      PackFilterPanelsInt8(WeightRowsForLayout(), out_channels_, row_len,
                           &packed_filters_int8_, plan_.panel_width);
    }
    ReleaseReorderScratch();  // only the packed panels persist
    packed_int8_version_ = weights_.version;
    packed_int8_plan_ = plan_;
    packed_int8_weight_max_ = weight_max;
  }
  return packed_filters_int8_;
}

Tensor Conv2D::ForwardNaive(const Tensor& input) {
  const TensorShape out_shape = OutputShape(input.shape());
  Tensor output(out_shape);

  const int row_len = kernel_ * kernel_ * in_channels_;
  const int64_t rows = static_cast<int64_t>(out_shape.h) * out_shape.w;
  columns_.assign(static_cast<size_t>(rows * row_len), 0.0f);

  const float* w = weights_.value.data();
  const float* b = bias_.value.data();
  for (int n = 0; n < input.shape().n; ++n) {
    Im2Col(input.SampleData(n), input.shape().h, input.shape().w, in_channels_, kernel_, stride_,
           pad_, columns_.data());
    float* out = output.SampleData(n);
    for (int64_t m = 0; m < rows; ++m) {
      const float* col_row = columns_.data() + m * row_len;
      float* out_row = out + m * out_channels_;
      for (int oc = 0; oc < out_channels_; ++oc) {
        out_row[oc] = Dot(row_len, col_row, w + static_cast<int64_t>(oc) * row_len) + b[oc];
      }
    }
  }
  return output;
}

void Conv2D::ForwardInto(const Tensor& input, GemmEpilogue epilogue, float* out, int64_t ldc,
                         int64_t sample_stride) {
  PCHECK_EQ(input.shape().c, in_channels_) << Name();
  PCHECK(use_gemm_) << Name() << " ForwardInto requires the GEMM path";
  if (training_) {
    last_input_ = input;
  } else {
    // See Forward(): eval clears the copy so a stale one can never feed a
    // later Backward.
    last_input_ = Tensor();
  }
  if (calibration_capture_) {
    // Accumulate the observed input range across the calibration batch.
    float lo = 0.0f;
    float hi = 0.0f;
    MinMaxRange(input.data(), input.size(), &lo, &hi);
    if (has_input_calibration_) {
      calib_min_ = std::min(calib_min_, lo);
      calib_max_ = std::max(calib_max_, hi);
    } else {
      SetInputCalibration(lo, hi);
    }
  }
  if (precision_ == Precision::kInt8) {
    ForwardIntoInt8(input, epilogue, out, ldc, sample_stride);
  } else {
    ForwardIntoFloat(input, epilogue, out, ldc, sample_stride);
  }
}

void Conv2D::ForwardIntoFloat(const Tensor& input, GemmEpilogue epilogue, float* out,
                              int64_t ldc, int64_t sample_stride) {
  const TensorShape out_shape = OutputShape(input.shape());
  const int row_len = kernel_ * kernel_ * in_channels_;
  const int64_t rows_per_sample = static_cast<int64_t>(out_shape.h) * out_shape.w;
  const int64_t total_rows = static_cast<int64_t>(out_shape.n) * rows_per_sample;
  if (total_rows == 0) {
    return;
  }

  const float* packed = PackedFilters();

  // A 1x1 stride-1 unpadded convolution's patch matrix IS the input sample:
  // every (h, w) pixel's channel vector is one contiguous A row. SqueezeNet
  // is dominated by these (squeeze + expand1x1), so skipping the expansion
  // matters as much as the kernel itself.
  const bool identity_patches = kernel_ == 1 && stride_ == 1 && pad_ == 0;

  if (!identity_patches && ImplicitEligible() &&
      PrepareImplicitGather(input.shape().h, input.shape().w)) {
    ForwardIntoFloatImplicit(input, epilogue, out, ldc, sample_stride);
    return;
  }

  const float* bias = bias_.value.data();
  InferenceParallelFor(
      total_rows, static_cast<int64_t>(row_len) * out_channels_,
      [&](int64_t begin, int64_t end) {
        ScratchArena& arena = LocalArena();
        while (begin < end) {
          const int n = static_cast<int>(begin / rows_per_sample);
          const int64_t r0 = begin % rows_per_sample;
          const int64_t r1 = std::min(rows_per_sample, r0 + (end - begin));
          float* c = out + n * sample_stride + r0 * ldc;
          const float* a;
          if (identity_patches) {
            a = input.SampleData(n) + r0 * row_len;
          } else {
            arena.Reset();
            float* cols = arena.Alloc(static_cast<size_t>((r1 - r0) * row_len));
            if (plan_.layout == ActivationLayout::kCOuter) {
              Im2ColRowsCOuter(input.SampleData(n), input.shape().h, input.shape().w,
                               in_channels_, kernel_, stride_, pad_, r0, r1, cols);
            } else {
              Im2ColRows(input.SampleData(n), input.shape().h, input.shape().w, in_channels_,
                         kernel_, stride_, pad_, r0, r1, cols);
            }
            a = cols;
          }
          GemmPackedEx(r1 - r0, out_channels_, row_len, a, packed, bias, epilogue, c, ldc,
                       plan_.panel_width);
          begin += r1 - r0;
        }
      });
}

void Conv2D::ForwardIntoFloatImplicit(const Tensor& input, GemmEpilogue epilogue, float* out,
                                      int64_t ldc, int64_t sample_stride) {
  const TensorShape out_shape = OutputShape(input.shape());
  const int row_len = kernel_ * kernel_ * in_channels_;
  const int out_w = out_shape.w;
  const int64_t out_h = out_shape.h;
  const int64_t total_oh = static_cast<int64_t>(out_shape.n) * out_h;
  const int ow_lo = implicit_ow_lo_;
  const int ow_hi = implicit_ow_hi_;
  const int edge_cols = ow_lo + (out_w - ow_hi);
  const float* packed = PackedFilters();
  const float* bias = bias_.value.data();
  // Parallelize over whole output rows: each interior tile streams the
  // input in place, so the only scratch is the per-chunk edge-column rows.
  InferenceParallelFor(
      total_oh, static_cast<int64_t>(out_w) * row_len * out_channels_,
      [&](int64_t begin, int64_t end) {
        ScratchArena& arena = LocalArena();
        while (begin < end) {
          const int n = static_cast<int>(begin / out_h);
          const int64_t oh0 = begin % out_h;
          const int64_t oh1 = std::min(out_h, oh0 + (end - begin));
          const float* sample = input.SampleData(n);
          float* c_sample = out + n * sample_stride;
          ImplicitConvViewF view;
          view.base = sample;
          view.offsets = implicit_offsets_.data();
          view.segments = kernel_;
          view.seg_len = kernel_ * in_channels_;
          view.col_stride = stride_ * in_channels_;
          view.run_w = ow_hi - ow_lo;
          view.oh_begin = oh0;
          view.oh_end = oh1;
          view.c_row_stride = static_cast<int64_t>(out_w) * ldc;
          GemmPackedImplicit(view, out_channels_, packed, bias, epilogue,
                             c_sample + (oh0 * out_w + ow_lo) * ldc, ldc, plan_.panel_width);
          if (edge_cols > 0) {
            // Batch the chunk's edge columns into ONE GEMM: per-row calls
            // leave m below the row tile and fall to the scalar remainder.
            // The packed kernels write contiguous rows and edge outputs are
            // not contiguous (ow_lo left + out_w - ow_hi right per row), so
            // the GEMM lands in compact staging scratch and each row then
            // scatters to its output slot. One Alloc covers gather + stage:
            // a second Alloc could retire (and move) the first block.
            const int64_t edge_rows = (oh1 - oh0) * edge_cols;
            arena.Reset();
            float* cols = arena.Alloc(static_cast<size_t>(edge_rows) *
                                      (row_len + out_channels_));
            float* stage = cols + edge_rows * row_len;
            float* dst = cols;
            for (int64_t oh = oh0; oh < oh1; ++oh) {
              const int64_t r = oh * out_w;
              if (ow_lo > 0) {
                Im2ColRows(sample, input.shape().h, input.shape().w, in_channels_, kernel_,
                           stride_, pad_, r, r + ow_lo, dst);
                dst += static_cast<int64_t>(ow_lo) * row_len;
              }
              if (ow_hi < out_w) {
                Im2ColRows(sample, input.shape().h, input.shape().w, in_channels_, kernel_,
                           stride_, pad_, r + ow_hi, r + out_w, dst);
                dst += static_cast<int64_t>(out_w - ow_hi) * row_len;
              }
            }
            GemmPackedEx(edge_rows, out_channels_, row_len, cols, packed, bias, epilogue,
                         stage, out_channels_, plan_.panel_width);
            const float* src = stage;
            for (int64_t oh = oh0; oh < oh1; ++oh) {
              float* c_row = c_sample + oh * out_w * ldc;
              for (int e = 0; e < ow_lo; ++e, src += out_channels_) {
                std::memcpy(c_row + e * ldc, src, sizeof(float) * out_channels_);
              }
              for (int e = ow_hi; e < out_w; ++e, src += out_channels_) {
                std::memcpy(c_row + e * ldc, src, sizeof(float) * out_channels_);
              }
            }
          }
          begin += oh1 - oh0;
        }
      });
}

ActivationQuant Conv2D::QuantizeInputActivations(const Tensor& input) {
  // Per-tensor activation parameters, computed once up front so every
  // parallel chunk sees identical codes — the forward is deterministic
  // regardless of pool size. A calibrated layer reuses the range recorded
  // from its calibration batch (deployment skips the per-forward MinMaxRange
  // pass entirely; out-of-range values saturate); otherwise one fused
  // min/max pass observes the range. Either way the range covers 0, so the
  // zero point encodes both real zeros and the im2col padding taps exactly.
  float min_v = 0.0f;
  float max_v = 0.0f;
  const float* in_data = input.data();
  if (has_input_calibration_ && !calibration_capture_) {
    min_v = calib_min_;
    max_v = calib_max_;
  } else {
    MinMaxRange(in_data, input.size(), &min_v, &max_v);
  }
  const ActivationQuant quant = ComputeActivationQuant(min_v, max_v);

  // Quantize the input tensor once — NOT the im2col expansion, which holds
  // kernel^2 copies of every element. The patch rows are then gathered
  // directly in uint8 (4x less traffic than a float im2col + quantize).
  quantized_input_.resize(static_cast<size_t>(input.size()));
  QuantizeActivations(in_data, input.size(), quant, quantized_input_.data());
  return quant;
}

void Conv2D::ForwardIntoInt8(const Tensor& input, GemmEpilogue epilogue, float* out,
                             int64_t ldc, int64_t sample_stride) {
  const ActivationQuant quant = QuantizeInputActivations(input);
  Int8ForwardOverCodes(quantized_input_.data(), input.shape(), quant, epilogue,
                       ActivationQuant{}, out, ldc, sample_stride);
}

void Conv2D::ForwardIntoU8(const Tensor& input, GemmEpilogue epilogue,
                           const ActivationQuant& out_quant, uint8_t* out, int64_t ldc,
                           int64_t sample_stride) {
  PCHECK(AcceptsQuantizedInput())
      << Name() << " u8 output requires the GEMM path, int8 precision, and eval mode";
  PCHECK_EQ(input.shape().c, in_channels_) << Name();
  last_input_ = Tensor();  // eval contract: no backward state survives
  const ActivationQuant quant = QuantizeInputActivations(input);
  Int8ForwardOverCodes(quantized_input_.data(), input.shape(), quant, epilogue, out_quant,
                       out, ldc, sample_stride);
}

void Conv2D::ForwardQuantizedInto(const QuantizedTensorView& input, GemmEpilogue epilogue,
                                  float* out, int64_t ldc, int64_t sample_stride) {
  PCHECK(AcceptsQuantizedInput())
      << Name() << " u8-direct input requires the GEMM path, int8 precision, and eval mode";
  PCHECK_EQ(input.shape.c, in_channels_) << Name();
  PCHECK(input.data != nullptr) << Name();
  last_input_ = Tensor();
  ActivationQuant quant;
  quant.scale = input.scale;
  quant.zero_point = input.zero_point;
  Int8ForwardOverCodes(input.data, input.shape, quant, epilogue, ActivationQuant{}, out,
                       ldc, sample_stride);
}

void Conv2D::ForwardQuantizedIntoU8(const QuantizedTensorView& input, GemmEpilogue epilogue,
                                    const ActivationQuant& out_quant, uint8_t* out,
                                    int64_t ldc, int64_t sample_stride) {
  PCHECK(AcceptsQuantizedInput())
      << Name() << " u8-direct input requires the GEMM path, int8 precision, and eval mode";
  PCHECK_EQ(input.shape.c, in_channels_) << Name();
  PCHECK(input.data != nullptr) << Name();
  last_input_ = Tensor();
  ActivationQuant quant;
  quant.scale = input.scale;
  quant.zero_point = input.zero_point;
  Int8ForwardOverCodes(input.data, input.shape, quant, epilogue, out_quant, out, ldc,
                       sample_stride);
}

void Conv2D::ForwardToCodes(const Tensor& input, float out_scale, int32_t out_zero_point,
                            uint8_t* out) {
  ActivationQuant out_quant;
  out_quant.scale = out_scale;
  out_quant.zero_point = out_zero_point;
  const TensorShape out_shape = OutputShape(input.shape());
  ForwardIntoU8(input, GemmEpilogue::kBias, out_quant, out, out_shape.c,
                static_cast<int64_t>(out_shape.h) * out_shape.w * out_shape.c);
}

void Conv2D::ForwardQuantizedToCodes(const QuantizedTensorView& input, float out_scale,
                                     int32_t out_zero_point, uint8_t* out) {
  ActivationQuant out_quant;
  out_quant.scale = out_scale;
  out_quant.zero_point = out_zero_point;
  const TensorShape out_shape = OutputShape(input.shape);
  ForwardQuantizedIntoU8(input, GemmEpilogue::kBias, out_quant, out, out_shape.c,
                         static_cast<int64_t>(out_shape.h) * out_shape.w * out_shape.c);
}

bool Conv2D::AcceptsQuantizedInput() const {
  return use_gemm_ && precision_ == Precision::kInt8 && !training_;
}

Tensor Conv2D::ForwardQuantized(const QuantizedTensorView& input) {
  PCHECK(AcceptsQuantizedInput())
      << Name() << " u8-direct input requires the GEMM path, int8 precision, and eval mode";
  PCHECK_EQ(input.shape.c, in_channels_) << Name();
  PCHECK(input.data != nullptr) << Name();
  last_input_ = Tensor();  // eval contract: no backward state survives
  ActivationQuant quant;
  quant.scale = input.scale;
  quant.zero_point = input.zero_point;
  const TensorShape out_shape = OutputShape(input.shape);
  Tensor output(out_shape);
  Int8ForwardOverCodes(input.data, input.shape, quant, GemmEpilogue::kBias,
                       ActivationQuant{}, output.data(), out_shape.c,
                       static_cast<int64_t>(out_shape.h) * out_shape.w * out_shape.c);
  return output;
}

template <typename OutT>
void Conv2D::Int8ForwardOverCodes(const uint8_t* codes, const TensorShape& in_shape,
                                  const ActivationQuant& quant, GemmEpilogue epilogue,
                                  const ActivationQuant& out_quant, OutT* out, int64_t ldc,
                                  int64_t sample_stride) {
  const TensorShape out_shape = OutputShape(in_shape);
  const int row_len = kernel_ * kernel_ * in_channels_;
  const int k_padded = Int8PaddedK(row_len);
  const int64_t rows_per_sample = static_cast<int64_t>(out_shape.h) * out_shape.w;
  const int64_t total_rows = static_cast<int64_t>(out_shape.n) * rows_per_sample;
  if (total_rows == 0) {
    return;
  }

  const Int8PackedFilters& packed = PackedFiltersInt8();
  const uint8_t pad_code = static_cast<uint8_t>(quant.zero_point);
  const int64_t sample_codes =
      static_cast<int64_t>(in_shape.h) * in_shape.w * in_shape.c;
  const bool identity_patches = kernel_ == 1 && stride_ == 1 && pad_ == 0;

  if (ImplicitEligibleInt8() && PrepareImplicitGather(in_shape.h, in_shape.w)) {
    Int8ImplicitOverCodes(codes, in_shape, quant, epilogue, out_quant, out, ldc,
                          sample_stride);
    return;
  }
  // A 1x1 conv whose channel count is already a multiple of the int8 K
  // unit needs no gather at all: the quantized input rows ARE the A rows.
  const bool direct_rows = identity_patches && k_padded == row_len;
  const bool c_outer = plan_.layout == ActivationLayout::kCOuter && kernel_ > 1;
  const float* bias = bias_.value.data();
  InferenceParallelFor(
      total_rows, static_cast<int64_t>(row_len) * out_channels_,
      [&](int64_t begin, int64_t end) {
        ScratchArena& arena = LocalArena();
        while (begin < end) {
          const int n = static_cast<int>(begin / rows_per_sample);
          const int64_t r0 = begin % rows_per_sample;
          const int64_t r1 = std::min(rows_per_sample, r0 + (end - begin));
          const int64_t chunk_rows = r1 - r0;
          OutT* c = out + n * sample_stride + r0 * ldc;
          const uint8_t* sample = codes + n * sample_codes;
          const uint8_t* a;
          if (direct_rows) {
            a = sample + r0 * row_len;
          } else {
            arena.Reset();
            uint8_t* chunk = reinterpret_cast<uint8_t*>(arena.Alloc(
                (static_cast<size_t>(chunk_rows) * k_padded + sizeof(float) - 1) /
                sizeof(float)));
            if (identity_patches) {
              // Only the per-row K tail needs padding.
              for (int64_t r = 0; r < chunk_rows; ++r) {
                uint8_t* dst = chunk + r * k_padded;
                std::memcpy(dst, sample + (r0 + r) * row_len,
                            static_cast<size_t>(row_len));
                std::memset(dst + row_len, pad_code,
                            static_cast<size_t>(k_padded - row_len));
              }
            } else if (c_outer) {
              Im2ColRowsU8COuter(sample, in_shape.h, in_shape.w, in_channels_, kernel_,
                                 stride_, pad_, r0, r1, pad_code, k_padded, chunk);
            } else {
              Im2ColRowsU8(sample, in_shape.h, in_shape.w, in_channels_, kernel_,
                           stride_, pad_, r0, r1, pad_code, k_padded, chunk);
            }
            a = chunk;
          }
          if constexpr (std::is_same_v<OutT, uint8_t>) {
            GemmInt8PackedExU8(chunk_rows, a, packed, quant, bias, epilogue, out_quant, c,
                               ldc);
          } else {
            GemmInt8PackedEx(chunk_rows, a, packed, quant, bias, epilogue, c, ldc);
          }
          begin += chunk_rows;
        }
      });
}

template <typename OutT>
void Conv2D::Int8ImplicitOverCodes(const uint8_t* codes, const TensorShape& in_shape,
                                   const ActivationQuant& quant, GemmEpilogue epilogue,
                                   const ActivationQuant& out_quant, OutT* out, int64_t ldc,
                                   int64_t sample_stride) {
  const TensorShape out_shape = OutputShape(in_shape);
  const int row_len = kernel_ * kernel_ * in_channels_;
  const int k_padded = Int8PaddedK(row_len);  // == row_len by the eligibility gate
  const int out_w = out_shape.w;
  const int64_t out_h = out_shape.h;
  const int64_t total_oh = static_cast<int64_t>(out_shape.n) * out_h;
  const int ow_lo = implicit_ow_lo_;
  const int ow_hi = implicit_ow_hi_;
  const int edge_cols = ow_lo + (out_w - ow_hi);
  const int64_t sample_codes = static_cast<int64_t>(in_shape.h) * in_shape.w * in_shape.c;
  const Int8PackedFilters& packed = PackedFiltersInt8();
  const uint8_t pad_code = static_cast<uint8_t>(quant.zero_point);
  // The u8 kernels read vertical pad taps from this segment of zero-point
  // codes — the exact bytes Im2ColRowsU8 would have written. Refilled every
  // forward: the zero point follows the input's quantization.
  zero_row_u8_.assign(static_cast<size_t>(kernel_) * in_channels_, pad_code);
  const float* bias = bias_.value.data();
  InferenceParallelFor(
      total_oh, static_cast<int64_t>(out_w) * row_len * out_channels_,
      [&](int64_t begin, int64_t end) {
        ScratchArena& arena = LocalArena();
        while (begin < end) {
          const int n = static_cast<int>(begin / out_h);
          const int64_t oh0 = begin % out_h;
          const int64_t oh1 = std::min(out_h, oh0 + (end - begin));
          const uint8_t* sample = codes + n * sample_codes;
          OutT* c_sample = out + n * sample_stride;
          ImplicitConvViewU8 view;
          view.base = sample;
          view.offsets = implicit_offsets_.data();
          view.zero_row = zero_row_u8_.data();
          view.segments = kernel_;
          view.seg_len = kernel_ * in_channels_;
          view.col_stride = stride_ * in_channels_;
          view.run_w = ow_hi - ow_lo;
          view.oh_begin = oh0;
          view.oh_end = oh1;
          view.c_row_stride = static_cast<int64_t>(out_w) * ldc;
          OutT* c_interior = c_sample + (oh0 * out_w + ow_lo) * ldc;
          if constexpr (std::is_same_v<OutT, uint8_t>) {
            GemmInt8PackedImplicitU8(view, packed, quant, bias, epilogue, out_quant,
                                     c_interior, ldc);
          } else {
            GemmInt8PackedImplicit(view, packed, quant, bias, epilogue, c_interior, ldc);
          }
          if (edge_cols > 0) {
            // Batch the chunk's edge columns into ONE GEMM: per-row calls
            // leave m below the int8 row tile, so every edge pixel would run
            // in the scalar remainder. Edge outputs are not contiguous, so
            // the GEMM lands in compact staging scratch and each row then
            // scatters to its slot. One Alloc covers gather + stage: a
            // second Alloc could retire (and move) the first block.
            const int64_t edge_rows = (oh1 - oh0) * edge_cols;
            const size_t code_floats =
                (static_cast<size_t>(edge_rows) * k_padded + sizeof(float) - 1) /
                sizeof(float);
            const size_t stage_floats =
                (static_cast<size_t>(edge_rows) * out_channels_ * sizeof(OutT) +
                 sizeof(float) - 1) /
                sizeof(float);
            arena.Reset();
            float* block = arena.Alloc(code_floats + stage_floats);
            uint8_t* chunk = reinterpret_cast<uint8_t*>(block);
            OutT* stage = reinterpret_cast<OutT*>(block + code_floats);
            uint8_t* dst = chunk;
            for (int64_t oh = oh0; oh < oh1; ++oh) {
              const int64_t r = oh * out_w;
              if (ow_lo > 0) {
                Im2ColRowsU8(sample, in_shape.h, in_shape.w, in_channels_, kernel_, stride_,
                             pad_, r, r + ow_lo, pad_code, k_padded, dst);
                dst += static_cast<int64_t>(ow_lo) * k_padded;
              }
              if (ow_hi < out_w) {
                Im2ColRowsU8(sample, in_shape.h, in_shape.w, in_channels_, kernel_, stride_,
                             pad_, r + ow_hi, r + out_w, pad_code, k_padded, dst);
                dst += static_cast<int64_t>(out_w - ow_hi) * k_padded;
              }
            }
            if constexpr (std::is_same_v<OutT, uint8_t>) {
              GemmInt8PackedExU8(edge_rows, chunk, packed, quant, bias, epilogue, out_quant,
                                 stage, out_channels_);
            } else {
              GemmInt8PackedEx(edge_rows, chunk, packed, quant, bias, epilogue, stage,
                               out_channels_);
            }
            const OutT* src = stage;
            for (int64_t oh = oh0; oh < oh1; ++oh) {
              OutT* c_row = c_sample + oh * out_w * ldc;
              for (int e = 0; e < ow_lo; ++e, src += out_channels_) {
                std::memcpy(c_row + e * ldc, src, sizeof(OutT) * out_channels_);
              }
              for (int e = ow_hi; e < out_w; ++e, src += out_channels_) {
                std::memcpy(c_row + e * ldc, src, sizeof(OutT) * out_channels_);
              }
            }
          }
          begin += oh1 - oh0;
        }
      });
}

Tensor Conv2D::Backward(const Tensor& grad_output) {
  PCHECK(training_) << Name() << " Backward called in eval mode";
  PCHECK(precision_ == Precision::kFloat32)
      << Name() << " int8 is an inference-only path; train in float32";
  const TensorShape& in_shape = last_input_.shape();
  const TensorShape out_shape = OutputShape(in_shape);
  PCHECK(grad_output.shape() == out_shape) << Name();

  Tensor grad_input(in_shape);
  const int row_len = kernel_ * kernel_ * in_channels_;
  const int64_t rows = static_cast<int64_t>(out_shape.h) * out_shape.w;
  std::vector<float> grad_columns(static_cast<size_t>(rows * row_len));
  // The GEMM forward path does not populate columns_; size it here before
  // the per-sample Im2Col below writes into it.
  columns_.resize(static_cast<size_t>(rows * row_len));

  const float* w = weights_.value.data();
  float* dw = weights_.grad.data();
  float* db = bias_.grad.data();

  for (int n = 0; n < in_shape.n; ++n) {
    // Recompute the im2col expansion of this sample (cheaper than caching all
    // samples' columns across the batch).
    Im2Col(last_input_.SampleData(n), in_shape.h, in_shape.w, in_channels_, kernel_, stride_,
           pad_, columns_.data());
    std::fill(grad_columns.begin(), grad_columns.end(), 0.0f);
    const float* dout = grad_output.SampleData(n);
    for (int64_t m = 0; m < rows; ++m) {
      const float* col_row = columns_.data() + m * row_len;
      float* dcol_row = grad_columns.data() + m * row_len;
      const float* dout_row = dout + m * out_channels_;
      for (int oc = 0; oc < out_channels_; ++oc) {
        const float g = dout_row[oc];
        if (g == 0.0f) {
          continue;
        }
        db[oc] += g;
        Axpy(row_len, g, col_row, dw + static_cast<int64_t>(oc) * row_len);
        Axpy(row_len, g, w + static_cast<int64_t>(oc) * row_len, dcol_row);
      }
    }
    Col2Im(grad_columns.data(), in_shape.h, in_shape.w, in_channels_, kernel_, stride_, pad_,
           grad_input.SampleData(n));
  }
  return grad_input;
}

}  // namespace percival
