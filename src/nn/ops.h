// Low-level numeric kernels: im2col / col2im and small dot-product helpers.
//
// Convolutions are lowered to matrix products over im2col buffers. Weight
// rows and column rows are both contiguous, so the inner loops are plain
// dot-products / axpy over contiguous memory.
#ifndef PERCIVAL_SRC_NN_OPS_H_
#define PERCIVAL_SRC_NN_OPS_H_

#include <cstdint>

namespace percival {

// Computes the output spatial size of a convolution/pool window.
// Requires (size + 2*pad - kernel) to be non-negative.
int ConvOutputSize(int size, int kernel, int stride, int pad);

// Expands one NHWC sample (h, w, c) into a column matrix of shape
// [out_h*out_w, kernel*kernel*c]; out-of-bounds taps are zero.
void Im2Col(const float* input, int height, int width, int channels, int kernel, int stride,
            int pad, float* columns);

// Row-ranged Im2Col: writes only output rows [row_begin, row_end) — row r
// is output pixel (r / out_w, r % out_w) — starting at columns[0]. Lets the
// GEMM engine expand each parallel chunk into a small thread-local buffer
// instead of materializing the whole patch matrix.
void Im2ColRows(const float* input, int height, int width, int channels, int kernel, int stride,
                int pad, int64_t row_begin, int64_t row_end, float* columns);

// Uint8 variant for the quantized inference path: expands rows of an
// already-quantized NHWC sample. Rows are written at `row_stride` bytes
// (>= kernel*kernel*channels); out-of-bounds taps and the [row_len,
// row_stride) tail are filled with `pad_value` (the quantization zero
// point, i.e. the exact code for real 0).
void Im2ColRowsU8(const uint8_t* input, int height, int width, int channels, int kernel,
                  int stride, int pad, int64_t row_begin, int64_t row_end, uint8_t pad_value,
                  int row_stride, uint8_t* columns);

// Channel-outer layout variants (ActivationLayout::kCOuter): patch rows are
// written in (c, kh, kw) order instead of (kh, kw, c) — row element
// (c*kernel + kh)*kernel + kw holds the tap (kh, kw) of channel c. The GEMM
// only requires the A rows and the packed filter rows to share one K order,
// so these pair with conv weights reordered by the same permutation (see
// Conv2D's plan-keyed packing). For kernel == 1 both layouts coincide.
void Im2ColRowsCOuter(const float* input, int height, int width, int channels, int kernel,
                      int stride, int pad, int64_t row_begin, int64_t row_end, float* columns);

void Im2ColRowsU8COuter(const uint8_t* input, int height, int width, int channels, int kernel,
                        int stride, int pad, int64_t row_begin, int64_t row_end,
                        uint8_t pad_value, int row_stride, uint8_t* columns);

// Scatter-adds a column matrix back into an NHWC sample (inverse of Im2Col).
// `input_grad` must be pre-zeroed by the caller.
void Col2Im(const float* columns, int height, int width, int channels, int kernel, int stride,
            int pad, float* input_grad);

// Quantized-code transforms for the zero-float dataflow plan. Both operate
// on uint8 activation codes (value ~= scale * (code - zero_point)) and are
// EXACT images of their float counterparts: quantization is monotone, so
// max-based ops commute with it — relu(v) quantizes to max(code, zp)
// because quantize(0) == zero_point, and a max-pool window's max code is
// the code of the window's max value.

// out[i] = max(in[i], zero_point). `in == out` aliasing is allowed.
void ReluCodes(const uint8_t* in, int64_t count, int32_t zero_point, uint8_t* out);

// Max-pools one NHWC uint8 sample with edge-clipped windows (pad 0,
// output size ConvOutputSize(dim, kernel, stride, 0)), matching
// MaxPool2D::Forward. `out` must not alias `in`.
void MaxPoolCodes(const uint8_t* in, int height, int width, int channels, int kernel,
                  int stride, uint8_t* out);

// dst[i] += a * src[i] for i < n.
void Axpy(int64_t n, float a, const float* src, float* dst);

// Returns the dot product of two length-n contiguous vectors.
float Dot(int64_t n, const float* a, const float* b);

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_OPS_H_
