#include "src/nn/optimizer.h"

#include <cmath>

#include "src/base/logging.h"

namespace percival {

SgdOptimizer::SgdOptimizer(std::vector<Parameter*> params, const SgdConfig& config)
    : params_(std::move(params)), config_(config), learning_rate_(config.learning_rate) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    velocity_.emplace_back(p->value.shape());
  }
}

void SgdOptimizer::Step() {
  float scale = 1.0f;
  if (config_.max_grad_norm > 0.0f) {
    double norm_sq = 0.0;
    for (Parameter* p : params_) {
      for (int64_t j = 0; j < p->grad.size(); ++j) {
        norm_sq += static_cast<double>(p->grad[j]) * p->grad[j];
      }
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.max_grad_norm) {
      scale = static_cast<float>(config_.max_grad_norm / norm);
    }
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    Tensor& v = velocity_[i];
    PCHECK_EQ(p->value.size(), p->grad.size());
    for (int64_t j = 0; j < p->value.size(); ++j) {
      float g = p->grad[j] * scale;
      if (config_.weight_decay > 0.0f) {
        g += config_.weight_decay * p->value[j];
      }
      v[j] = config_.momentum * v[j] - learning_rate_ * g;
      p->value[j] += v[j];
    }
    // Invalidate any packed-weight caches derived from the old values.
    p->MarkDirty();
  }
}

void SgdOptimizer::EndEpoch() {
  ++epoch_;
  if (config_.lr_decay_every_epochs > 0 && epoch_ % config_.lr_decay_every_epochs == 0) {
    learning_rate_ *= config_.lr_decay_factor;
  }
}

}  // namespace percival
