#include "src/nn/network.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/base/logging.h"
#include "src/nn/gemm.h"

namespace percival {

Tensor Network::Forward(const Tensor& input) {
  if (!planned_ || !(planned_shape_ == input.shape())) {
    PlanForward(input.shape());
  }
  return ForwardUpTo(input, layers_.size());
}

void Network::PlanForward(const TensorShape& input) {
  size_t worst = 0;
  TensorShape shape = input;
  for (const auto& layer : layers_) {
    worst = std::max(worst, layer->ForwardScratchFloats(shape));
    shape = layer->OutputShape(shape);
  }
  LocalArena().Reserve(worst);
  planned_shape_ = input;
  planned_ = true;
}

Tensor Network::ForwardUpTo(const Tensor& input, size_t layer_count) {
  PCHECK_LE(layer_count, layers_.size());
  Tensor current = input;
  for (size_t i = 0; i < layer_count; ++i) {
    current = layers_[i]->Forward(current);
  }
  return current;
}

void Network::SetTrainingMode(bool training) {
  training_ = training;
  for (auto& layer : layers_) {
    layer->SetTrainingMode(training);
  }
}

void Network::SetPrecision(Precision precision) {
  precision_ = precision;
  for (auto& layer : layers_) {
    layer->SetPrecision(precision);
  }
  planned_ = false;  // int8 forwards stage activation codes in the arena
}

Tensor Network::Backward(const Tensor& grad_output) {
  return BackwardFrom(grad_output, 0);
}

Tensor Network::BackwardFrom(const Tensor& grad_output, size_t layer_index) {
  PCHECK(training_) << "Network::Backward called in eval mode; call "
                       "SetTrainingMode(true) before training";
  Tensor current = grad_output;
  for (size_t i = layers_.size(); i > layer_index; --i) {
    current = layers_[i - 1]->Backward(current);
  }
  return current;
}

std::vector<Parameter*> Network::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

void Network::ZeroGrads() {
  for (Parameter* p : Parameters()) {
    p->grad.Zero();
  }
}

int64_t Network::ParameterCount() {
  int64_t total = 0;
  for (auto& layer : layers_) {
    total += layer->ParameterCount();
  }
  return total;
}

int64_t Network::ForwardMacs(const TensorShape& input) const {
  int64_t total = 0;
  TensorShape shape = input;
  for (const auto& layer : layers_) {
    total += layer->ForwardMacs(shape);
    shape = layer->OutputShape(shape);
  }
  return total;
}

TensorShape Network::OutputShape(const TensorShape& input) const {
  TensorShape shape = input;
  for (const auto& layer : layers_) {
    shape = layer->OutputShape(shape);
  }
  return shape;
}

std::string Network::Summary(const TensorShape& input) const {
  std::ostringstream out;
  TensorShape shape = input;
  out << "input " << shape.ToString() << "\n";
  for (const auto& layer : layers_) {
    shape = layer->OutputShape(shape);
    out << std::left << std::setw(36) << layer->Name() << " -> " << shape.ToString() << "\n";
  }
  return out.str();
}

}  // namespace percival
