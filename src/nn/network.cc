#include "src/nn/network.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/base/faultpoint.h"
#include "src/base/logging.h"
#include "src/nn/gemm.h"

namespace percival {

Tensor Network::Forward(const Tensor& input) {
  // Deadline hook: the serving layer's forced-slow fault fires here, inside
  // the planned forward, so a stalled inference is indistinguishable from a
  // genuinely slow one to everything above (deadline accounting, the
  // degrade ladder) — the sleep is in the spec, armed by tests/benches.
  faultpoint::ShouldFire(faultpoint::kSlowForward);
  if (!planned_ || !(planned_shape_ == input.shape()) ||
      dataflow_enabled_at_plan_ != DataflowRequantEnabled() ||
      gap_codes_at_plan_ != GetGapCodesMode() ||
      dispatch_generation_at_plan_ != SimdDispatchGeneration()) {
    PlanForward(input.shape());
  }
  if (DataflowActive()) {
    return RunDataflow(&input, nullptr);
  }
  return ForwardUpTo(input, layers_.size());
}

void Network::PlanForward(const TensorShape& input) {
  size_t worst = 0;
  TensorShape shape = input;
  std::vector<TensorShape> input_shapes;
  input_shapes.reserve(layers_.size());
  for (const auto& layer : layers_) {
    // Plans first: a layer's scratch requirement may depend on its plan.
    input_shapes.push_back(shape);
    layer->PlanKernels(shape);
    worst = std::max(worst, layer->ForwardScratchFloats(shape));
    shape = layer->OutputShape(shape);
  }
  LocalArena().Reserve(worst);
  PlanDataflow(input_shapes);
  planned_shape_ = input;
  dispatch_generation_at_plan_ = SimdDispatchGeneration();
  planned_ = true;
}

void Network::PlanDataflow(const std::vector<TensorShape>& input_shapes) {
  dataflow_.assign(layers_.size(), DataflowStep{});
  dataflow_enabled_at_plan_ = DataflowRequantEnabled();
  gap_codes_at_plan_ = GetGapCodesMode();
  const bool eligible = precision_ == Precision::kInt8 && !training_ &&
                        !calibration_capture_ && dataflow_enabled_at_plan_;
  if (!eligible) {
    return;
  }
  // Walk the layer list linking emitters to consumers. `codes_live` tracks
  // whether layer i's input arrives as uint8 codes under the current plan.
  size_t max_code_bytes = 0;
  bool codes_live = false;
  size_t i = 0;
  while (i < layers_.size()) {
    bool linked = false;
    if (layers_[i]->CanEmitQuantizedCodes()) {
      // The link holds if every layer until the next non-transform is a
      // code transform and that consumer takes quantized input with a
      // calibrated range (the range supplies the emit quantization).
      size_t j = i + 1;
      while (j < layers_.size() && layers_[j]->SupportsCodeTransform()) {
        ++j;
      }
      float min_value = 0.0f;
      float max_value = 0.0f;
      if (j < layers_.size() && layers_[j]->AcceptsQuantizedInput() &&
          layers_[j]->InputCalibration(&min_value, &max_value)) {
        const ActivationQuant quant = ComputeActivationQuant(min_value, max_value);
        dataflow_[i].mode = DataflowStep::Mode::kEmit;
        dataflow_[i].scale = quant.scale;
        dataflow_[i].zero_point = quant.zero_point;
        for (size_t t = i; t < j; ++t) {
          dataflow_[t].out_shape = layers_[t]->OutputShape(input_shapes[t]);
          if (t > i) {
            dataflow_[t].mode = DataflowStep::Mode::kTransform;
          }
          max_code_bytes = std::max(
              max_code_bytes, static_cast<size_t>(dataflow_[t].out_shape.Elements()));
        }
        codes_live = true;
        linked = true;
        i = j;  // the consumer decides next: extend the chain or break it
      }
    }
    if (!linked) {
      // Layer i runs unlinked: float layer, or a consumer that terminates
      // the chain (RunDataflow hands it the codes via ForwardQuantized).
      codes_live = false;
      ++i;
    }
  }
  (void)codes_live;
  if (max_code_bytes > 0) {
    code_buffers_[0].resize(max_code_bytes);
    code_buffers_[1].resize(max_code_bytes);
  }
}

bool Network::DataflowActive() const {
  for (const DataflowStep& step : dataflow_) {
    if (step.mode == DataflowStep::Mode::kEmit) {
      return true;
    }
  }
  return false;
}

size_t Network::RequantLinkCount() const {
  size_t links = 0;
  for (const DataflowStep& step : dataflow_) {
    if (step.mode == DataflowStep::Mode::kEmit) {
      ++links;
    }
  }
  return links;
}

Tensor Network::RunDataflow(const Tensor* float_in, const QuantizedTensorView* code_in) {
  PCHECK((float_in != nullptr) != (code_in != nullptr));
  Tensor current;
  QuantizedTensorView codes{};
  bool codes_live = code_in != nullptr;
  if (codes_live) {
    codes = *code_in;
  } else {
    current = *float_in;
  }
  int turn = 0;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const DataflowStep& step = dataflow_[i];
    switch (step.mode) {
      case DataflowStep::Mode::kEmit: {
        uint8_t* out = code_buffers_[turn].data();
        turn ^= 1;
        if (codes_live) {
          layers_[i]->ForwardQuantizedToCodes(codes, step.scale, step.zero_point, out);
        } else {
          layers_[i]->ForwardToCodes(current, step.scale, step.zero_point, out);
          current = Tensor();
        }
        codes = QuantizedTensorView{out, step.out_shape, step.scale, step.zero_point};
        codes_live = true;
        break;
      }
      case DataflowStep::Mode::kTransform: {
        uint8_t* out = code_buffers_[turn].data();
        turn ^= 1;
        layers_[i]->ForwardCodes(codes, out);
        codes = QuantizedTensorView{out, step.out_shape, codes.scale, codes.zero_point};
        break;
      }
      case DataflowStep::Mode::kFloat: {
        if (codes_live) {
          // Chain break: this layer consumes the live codes and returns the
          // network to the float path.
          current = layers_[i]->ForwardQuantized(codes);
          codes_live = false;
        } else {
          current = layers_[i]->Forward(current);
        }
        break;
      }
    }
  }
  PCHECK(!codes_live) << "dataflow plan ended with live codes and no consumer";
  return current;
}

Tensor Network::ForwardQuantized(const QuantizedTensorView& input) {
  // Same deadline hook as Forward: the u8-direct deployment entry must be
  // just as stall-able, or the robustness suite would only cover the float
  // path.
  faultpoint::ShouldFire(faultpoint::kSlowForward);
  PCHECK(!layers_.empty());
  PCHECK(layers_[0]->AcceptsQuantizedInput())
      << "first layer (" << layers_[0]->Name() << ") cannot consume quantized input";
  if (!planned_ || !(planned_shape_ == input.shape) ||
      dataflow_enabled_at_plan_ != DataflowRequantEnabled() ||
      gap_codes_at_plan_ != GetGapCodesMode() ||
      dispatch_generation_at_plan_ != SimdDispatchGeneration()) {
    PlanForward(input.shape);
  }
  if (DataflowActive()) {
    return RunDataflow(nullptr, &input);
  }
  Tensor current = layers_[0]->ForwardQuantized(input);
  for (size_t i = 1; i < layers_.size(); ++i) {
    current = layers_[i]->Forward(current);
  }
  return current;
}

bool Network::AcceptsQuantizedInput() const {
  return !layers_.empty() && layers_[0]->AcceptsQuantizedInput();
}

std::vector<KernelPlanRow> Network::CollectKernelPlanRows() const {
  std::vector<KernelPlanRow> rows;
  for (const auto& layer : layers_) {
    layer->AppendKernelPlanRows(&rows);
  }
  return rows;
}

std::string Network::KernelPlanSummary() const {
  const std::vector<KernelPlanRow> rows = CollectKernelPlanRows();
  int narrow = 0;
  int c_outer = 0;
  int implicit = 0;
  for (const KernelPlanRow& row : rows) {
    if (row.panel_width < GemmNativePanelWidth()) {
      ++narrow;
    }
    if (row.c_outer) {
      ++c_outer;
    }
    if (row.implicit) {
      ++implicit;
    }
  }
  std::ostringstream out;
  out << "planner: " << rows.size() << " convs, " << narrow << " narrow-panel(16), "
      << c_outer << " c-outer, " << implicit << " implicit-gather"
      << (AcceptsQuantizedInput() ? ", u8-direct input" : "");
  return out.str();
}

void Network::SetCalibrationCapture(bool capture) {
  calibration_capture_ = capture;
  for (auto& layer : layers_) {
    layer->SetCalibrationCapture(capture);
  }
  // Capture needs float forwards to observe ranges (and stopping capture
  // may have produced the calibrations a dataflow plan feeds on).
  planned_ = false;
}

size_t Network::CalibrationSlots() const {
  size_t slots = 0;
  for (const auto& layer : layers_) {
    slots += layer->CalibrationSlots();
  }
  return slots;
}

std::vector<ActivationCalibration> Network::CollectCalibration() const {
  std::vector<ActivationCalibration> entries;
  for (const auto& layer : layers_) {
    layer->AppendCalibration(&entries);
  }
  return entries;
}

bool Network::LoadCalibration(const std::vector<ActivationCalibration>& entries) {
  // A short vector would leave later layers' (possibly stale) calibrations
  // untouched while this function reported success — reject it before any
  // layer consumes an entry.
  if (entries.size() != CalibrationSlots()) {
    return false;
  }
  size_t consumed = 0;
  for (auto& layer : layers_) {
    consumed += layer->ConsumeCalibration(entries.data() + consumed,
                                          entries.size() - consumed);
  }
  // Fresh calibrations can enable (or change) requant links.
  planned_ = false;
  return consumed == entries.size();
}

Tensor Network::ForwardUpTo(const Tensor& input, size_t layer_count) {
  PCHECK_LE(layer_count, layers_.size());
  Tensor current = input;
  for (size_t i = 0; i < layer_count; ++i) {
    current = layers_[i]->Forward(current);
  }
  return current;
}

void Network::SetTrainingMode(bool training) {
  training_ = training;
  for (auto& layer : layers_) {
    layer->SetTrainingMode(training);
  }
  planned_ = false;  // the dataflow plan is eval-only
}

void Network::SetPrecision(Precision precision) {
  precision_ = precision;
  for (auto& layer : layers_) {
    layer->SetPrecision(precision);
  }
  planned_ = false;  // int8 forwards stage activation codes in the arena
}

Tensor Network::Backward(const Tensor& grad_output) {
  return BackwardFrom(grad_output, 0);
}

Tensor Network::BackwardFrom(const Tensor& grad_output, size_t layer_index) {
  PCHECK(training_) << "Network::Backward called in eval mode; call "
                       "SetTrainingMode(true) before training";
  Tensor current = grad_output;
  for (size_t i = layers_.size(); i > layer_index; --i) {
    current = layers_[i - 1]->Backward(current);
  }
  return current;
}

std::vector<Parameter*> Network::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

void Network::ZeroGrads() {
  for (Parameter* p : Parameters()) {
    p->grad.Zero();
  }
}

int64_t Network::ParameterCount() {
  int64_t total = 0;
  for (auto& layer : layers_) {
    total += layer->ParameterCount();
  }
  return total;
}

int64_t Network::ForwardMacs(const TensorShape& input) const {
  int64_t total = 0;
  TensorShape shape = input;
  for (const auto& layer : layers_) {
    total += layer->ForwardMacs(shape);
    shape = layer->OutputShape(shape);
  }
  return total;
}

TensorShape Network::OutputShape(const TensorShape& input) const {
  TensorShape shape = input;
  for (const auto& layer : layers_) {
    shape = layer->OutputShape(shape);
  }
  return shape;
}

std::string Network::Summary(const TensorShape& input) const {
  std::ostringstream out;
  TensorShape shape = input;
  out << "input " << shape.ToString() << "\n";
  for (const auto& layer : layers_) {
    shape = layer->OutputShape(shape);
    out << std::left << std::setw(36) << layer->Name() << " -> " << shape.ToString() << "\n";
  }
  return out.str();
}

}  // namespace percival
