#include "src/nn/network.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/base/logging.h"
#include "src/nn/gemm.h"

namespace percival {

Tensor Network::Forward(const Tensor& input) {
  if (!planned_ || !(planned_shape_ == input.shape())) {
    PlanForward(input.shape());
  }
  return ForwardUpTo(input, layers_.size());
}

void Network::PlanForward(const TensorShape& input) {
  size_t worst = 0;
  TensorShape shape = input;
  for (const auto& layer : layers_) {
    // Plans first: a layer's scratch requirement may depend on its plan.
    layer->PlanKernels(shape);
    worst = std::max(worst, layer->ForwardScratchFloats(shape));
    shape = layer->OutputShape(shape);
  }
  LocalArena().Reserve(worst);
  planned_shape_ = input;
  planned_ = true;
}

Tensor Network::ForwardQuantized(const QuantizedTensorView& input) {
  PCHECK(!layers_.empty());
  PCHECK(layers_[0]->AcceptsQuantizedInput())
      << "first layer (" << layers_[0]->Name() << ") cannot consume quantized input";
  if (!planned_ || !(planned_shape_ == input.shape)) {
    PlanForward(input.shape);
  }
  Tensor current = layers_[0]->ForwardQuantized(input);
  for (size_t i = 1; i < layers_.size(); ++i) {
    current = layers_[i]->Forward(current);
  }
  return current;
}

bool Network::AcceptsQuantizedInput() const {
  return !layers_.empty() && layers_[0]->AcceptsQuantizedInput();
}

std::vector<KernelPlanRow> Network::CollectKernelPlanRows() const {
  std::vector<KernelPlanRow> rows;
  for (const auto& layer : layers_) {
    layer->AppendKernelPlanRows(&rows);
  }
  return rows;
}

std::string Network::KernelPlanSummary() const {
  const std::vector<KernelPlanRow> rows = CollectKernelPlanRows();
  int narrow = 0;
  int c_outer = 0;
  for (const KernelPlanRow& row : rows) {
    if (row.panel_width < kGemmTileN) {
      ++narrow;
    }
    if (row.c_outer) {
      ++c_outer;
    }
  }
  std::ostringstream out;
  out << "planner: " << rows.size() << " convs, " << narrow << " narrow-panel(16), "
      << c_outer << " c-outer"
      << (AcceptsQuantizedInput() ? ", u8-direct input" : "");
  return out.str();
}

void Network::SetCalibrationCapture(bool capture) {
  for (auto& layer : layers_) {
    layer->SetCalibrationCapture(capture);
  }
}

size_t Network::CalibrationSlots() const {
  size_t slots = 0;
  for (const auto& layer : layers_) {
    slots += layer->CalibrationSlots();
  }
  return slots;
}

std::vector<ActivationCalibration> Network::CollectCalibration() const {
  std::vector<ActivationCalibration> entries;
  for (const auto& layer : layers_) {
    layer->AppendCalibration(&entries);
  }
  return entries;
}

bool Network::LoadCalibration(const std::vector<ActivationCalibration>& entries) {
  // A short vector would leave later layers' (possibly stale) calibrations
  // untouched while this function reported success — reject it before any
  // layer consumes an entry.
  if (entries.size() != CalibrationSlots()) {
    return false;
  }
  size_t consumed = 0;
  for (auto& layer : layers_) {
    consumed += layer->ConsumeCalibration(entries.data() + consumed,
                                          entries.size() - consumed);
  }
  return consumed == entries.size();
}

Tensor Network::ForwardUpTo(const Tensor& input, size_t layer_count) {
  PCHECK_LE(layer_count, layers_.size());
  Tensor current = input;
  for (size_t i = 0; i < layer_count; ++i) {
    current = layers_[i]->Forward(current);
  }
  return current;
}

void Network::SetTrainingMode(bool training) {
  training_ = training;
  for (auto& layer : layers_) {
    layer->SetTrainingMode(training);
  }
}

void Network::SetPrecision(Precision precision) {
  precision_ = precision;
  for (auto& layer : layers_) {
    layer->SetPrecision(precision);
  }
  planned_ = false;  // int8 forwards stage activation codes in the arena
}

Tensor Network::Backward(const Tensor& grad_output) {
  return BackwardFrom(grad_output, 0);
}

Tensor Network::BackwardFrom(const Tensor& grad_output, size_t layer_index) {
  PCHECK(training_) << "Network::Backward called in eval mode; call "
                       "SetTrainingMode(true) before training";
  Tensor current = grad_output;
  for (size_t i = layers_.size(); i > layer_index; --i) {
    current = layers_[i - 1]->Backward(current);
  }
  return current;
}

std::vector<Parameter*> Network::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

void Network::ZeroGrads() {
  for (Parameter* p : Parameters()) {
    p->grad.Zero();
  }
}

int64_t Network::ParameterCount() {
  int64_t total = 0;
  for (auto& layer : layers_) {
    total += layer->ParameterCount();
  }
  return total;
}

int64_t Network::ForwardMacs(const TensorShape& input) const {
  int64_t total = 0;
  TensorShape shape = input;
  for (const auto& layer : layers_) {
    total += layer->ForwardMacs(shape);
    shape = layer->OutputShape(shape);
  }
  return total;
}

TensorShape Network::OutputShape(const TensorShape& input) const {
  TensorShape shape = input;
  for (const auto& layer : layers_) {
    shape = layer->OutputShape(shape);
  }
  return shape;
}

std::string Network::Summary(const TensorShape& input) const {
  std::ostringstream out;
  TensorShape shape = input;
  out << "input " << shape.ToString() << "\n";
  for (const auto& layer : layers_) {
    shape = layer->OutputShape(shape);
    out << std::left << std::setw(36) << layer->Name() << " -> " << shape.ToString() << "\n";
  }
  return out.str();
}

}  // namespace percival
