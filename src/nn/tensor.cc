#include "src/nn/tensor.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "src/base/logging.h"

namespace percival {

std::string TensorShape::ToString() const {
  std::ostringstream out;
  out << "[" << n << ", " << h << ", " << w << ", " << c << "]";
  return out.str();
}

namespace {
std::atomic<uint64_t> g_tensor_constructions{0};
std::atomic<uint64_t> g_tensor_elements{0};
}  // namespace

TensorAllocStats GetTensorAllocStats() {
  TensorAllocStats stats;
  stats.constructions = g_tensor_constructions.load(std::memory_order_relaxed);
  stats.elements = g_tensor_elements.load(std::memory_order_relaxed);
  return stats;
}

Tensor::Tensor(const TensorShape& shape) : shape_(shape) {
  PCHECK_GE(shape.n, 0);
  PCHECK_GE(shape.h, 0);
  PCHECK_GE(shape.w, 0);
  PCHECK_GE(shape.c, 0);
  g_tensor_constructions.fetch_add(1, std::memory_order_relaxed);
  g_tensor_elements.fetch_add(static_cast<uint64_t>(shape.Elements()),
                              std::memory_order_relaxed);
  data_.assign(static_cast<size_t>(shape.Elements()), 0.0f);
}

Tensor::Tensor(int n, int h, int w, int c) : Tensor(TensorShape{n, h, w, c}) {}

float& Tensor::at(int n, int h, int w, int c) {
  return data_[static_cast<size_t>(((static_cast<int64_t>(n) * shape_.h + h) * shape_.w + w) *
                                       shape_.c +
                                   c)];
}

float Tensor::at(int n, int h, int w, int c) const {
  return data_[static_cast<size_t>(((static_cast<int64_t>(n) * shape_.h + h) * shape_.w + w) *
                                       shape_.c +
                                   c)];
}

float* Tensor::SampleData(int n) { return data_.data() + n * SampleElements(); }

const float* Tensor::SampleData(int n) const { return data_.data() + n * SampleElements(); }

void Tensor::Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::Reshape(const TensorShape& shape) {
  PCHECK_EQ(shape.Elements(), shape_.Elements())
      << "reshape " << shape_.ToString() << " -> " << shape.ToString();
  shape_ = shape;
}

void Tensor::Add(const Tensor& other) {
  PCHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Tensor::Scale(float factor) {
  for (float& v : data_) {
    v *= factor;
  }
}

int Tensor::ArgMaxInSample(int n) const {
  const float* begin = SampleData(n);
  const float* end = begin + SampleElements();
  return static_cast<int>(std::max_element(begin, end) - begin);
}

float Tensor::Sum() const {
  double total = 0.0;
  for (float v : data_) {
    total += v;
  }
  return static_cast<float>(total);
}

float Tensor::Min() const {
  PCHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::Max() const {
  PCHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

}  // namespace percival
