// Pooling layers: max pooling and global average pooling.
#ifndef PERCIVAL_SRC_NN_POOL_H_
#define PERCIVAL_SRC_NN_POOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/nn/layer.h"

namespace percival {

class MaxPool2D : public Layer {
 public:
  MaxPool2D(int kernel, int stride);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override;
  TensorShape OutputShape(const TensorShape& input) const override;

  // Max over codes is exact (quantization is monotone), but it skips the
  // argmax capture Backward needs — eval mode only.
  bool SupportsCodeTransform() const override { return !training_; }
  void ForwardCodes(const QuantizedTensorView& input, uint8_t* out) override;

 private:
  int kernel_;
  int stride_;
  TensorShape input_shape_;
  std::vector<int64_t> argmax_;  // flat input index of each output element
};

// Collapses each (h, w) plane to a single value: the paper's final
// global-average-pool before SoftMax (Fig. 3).
//
// GAP-on-codes (opt-in via SetGapCodesEnabled): averaging commutes with the
// affine dequantization map, so with a calibrated input range eval-mode GAP
// can terminate the zero-float code chain itself — int32 sums over the
// uint8 codes, one dequantize per channel — instead of forcing the emitting
// conv back through a float store. The average is computed in code space,
// so logits differ from the staged path by up to half a code step; the
// link is therefore guarded by a 64-image >= 99% top-1 agreement test
// (tests/nn_requant_test.cc). GapCodesMode::kAuto (the default) enables it
// exactly when a serialized calibration trailer supplied the GAP range —
// the deployment population the guard vets — with kForceOff as the opt-out
// (the old default) and kForceOn covering live-captured ranges too.
class GlobalAvgPool : public Layer {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "global_avgpool"; }
  TensorShape OutputShape(const TensorShape& input) const override {
    return TensorShape{input.n, 1, 1, input.c};
  }

  // True only when the GAP-on-codes mode allows the link (see GapCodesMode
  // in gemm.h), the layer is in eval mode, and a calibrated input range
  // exists (the planner also requires the range to derive the producer's
  // emit quantization).
  bool AcceptsQuantizedInput() const override;
  Tensor ForwardQuantized(const QuantizedTensorView& input) override;

  // One calibration slot (the pooled tensor's range), captured during float
  // forwards like Conv2D's input slots and shipped in the PCVW v2 trailer.
  void SetCalibrationCapture(bool capture) override;
  size_t CalibrationSlots() const override { return 1; }
  void AppendCalibration(std::vector<ActivationCalibration>* out) const override;
  size_t ConsumeCalibration(const ActivationCalibration* entries, size_t count) override;
  bool InputCalibration(float* min_value, float* max_value) const override;

 private:
  TensorShape input_shape_;
  bool calibration_capture_ = false;
  bool has_input_calibration_ = false;
  // True when the current range arrived via ConsumeCalibration (a PCVW v2
  // trailer / Network::LoadCalibration), false once live capture replaces
  // it — the discriminator GapCodesMode::kAuto keys on.
  bool calibration_from_trailer_ = false;
  float calib_min_ = 0.0f;
  float calib_max_ = 0.0f;
  std::vector<int32_t> sum_buffer_;  // per-channel code sums, reused across forwards
};

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_POOL_H_
