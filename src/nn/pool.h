// Pooling layers: max pooling and global average pooling.
#ifndef PERCIVAL_SRC_NN_POOL_H_
#define PERCIVAL_SRC_NN_POOL_H_

#include <string>
#include <vector>

#include "src/nn/layer.h"

namespace percival {

class MaxPool2D : public Layer {
 public:
  MaxPool2D(int kernel, int stride);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override;
  TensorShape OutputShape(const TensorShape& input) const override;

  // Max over codes is exact (quantization is monotone), but it skips the
  // argmax capture Backward needs — eval mode only.
  bool SupportsCodeTransform() const override { return !training_; }
  void ForwardCodes(const QuantizedTensorView& input, uint8_t* out) override;

 private:
  int kernel_;
  int stride_;
  TensorShape input_shape_;
  std::vector<int64_t> argmax_;  // flat input index of each output element
};

// Collapses each (h, w) plane to a single value: the paper's final
// global-average-pool before SoftMax (Fig. 3).
class GlobalAvgPool : public Layer {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "global_avgpool"; }
  TensorShape OutputShape(const TensorShape& input) const override {
    return TensorShape{input.n, 1, 1, input.c};
  }

 private:
  TensorShape input_shape_;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_NN_POOL_H_
