// Binary-classification metrics and table/CDF formatting used by every
// experiment in the evaluation section.
#ifndef PERCIVAL_SRC_EVAL_METRICS_H_
#define PERCIVAL_SRC_EVAL_METRICS_H_

#include <string>
#include <vector>

namespace percival {

// Confusion matrix with the paper's §5.3 conventions: positive == ad,
// TP == ad correctly blocked, FP == non-ad incorrectly blocked.
struct ConfusionMatrix {
  int tp = 0;
  int fp = 0;
  int tn = 0;
  int fn = 0;

  void Record(bool is_ad, bool predicted_ad);
  int Total() const { return tp + fp + tn + fn; }
  double Accuracy() const;
  double Precision() const;
  double Recall() const;
  double F1() const;
  std::string Summary() const;
};

// Plain-text table writer (benches print paper-style tables with it).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  std::string Render() const;

  // Numeric formatting helpers.
  static std::string Fixed(double value, int decimals);
  static std::string Percent(double value, int decimals = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Empirical CDF over samples; Quantile(0.5) is the median.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);
  double Quantile(double q) const;  // q in [0, 1]
  double Mean() const;
  int size() const { return static_cast<int>(sorted_.size()); }
  // Renders an ASCII CDF with `points` rows (value -> cumulative %).
  std::string RenderAscii(int points, const std::string& label) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_EVAL_METRICS_H_
