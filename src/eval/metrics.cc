#include "src/eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "src/base/logging.h"

namespace percival {

void ConfusionMatrix::Record(bool is_ad, bool predicted_ad) {
  if (is_ad && predicted_ad) {
    ++tp;
  } else if (is_ad && !predicted_ad) {
    ++fn;
  } else if (!is_ad && predicted_ad) {
    ++fp;
  } else {
    ++tn;
  }
}

double ConfusionMatrix::Accuracy() const {
  const int total = Total();
  return total == 0 ? 0.0 : static_cast<double>(tp + tn) / total;
}

double ConfusionMatrix::Precision() const {
  return (tp + fp) == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
}

double ConfusionMatrix::Recall() const {
  return (tp + fn) == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
}

double ConfusionMatrix::F1() const {
  const double p = Precision();
  const double r = Recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

std::string ConfusionMatrix::Summary() const {
  std::ostringstream out;
  out << "acc=" << TextTable::Percent(Accuracy()) << " prec=" << TextTable::Fixed(Precision(), 3)
      << " rec=" << TextTable::Fixed(Recall(), 3) << " f1=" << TextTable::Fixed(F1(), 3)
      << " (tp=" << tp << " fp=" << fp << " tn=" << tn << " fn=" << fn << ")";
  return out.str();
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  PCHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (size_t i = 0; i < cells.size(); ++i) {
      out << " " << std::left << std::setw(static_cast<int>(widths[i])) << cells[i] << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  out << "|";
  for (size_t width : widths) {
    out << std::string(width + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string TextTable::Fixed(double value, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << value;
  return out.str();
}

std::string TextTable::Percent(double value, int decimals) {
  return Fixed(value * 100.0, decimals) + "%";
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::Quantile(double q) const {
  PCHECK(!sorted_.empty());
  const double clamped = std::clamp(q, 0.0, 1.0);
  const double position = clamped * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(position));
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = position - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double EmpiricalCdf::Mean() const {
  PCHECK(!sorted_.empty());
  double total = 0.0;
  for (double v : sorted_) {
    total += v;
  }
  return total / static_cast<double>(sorted_.size());
}

std::string EmpiricalCdf::RenderAscii(int points, const std::string& label) const {
  std::ostringstream out;
  out << "CDF: " << label << "\n";
  for (int i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / points;
    const double value = Quantile(q);
    out << std::setw(4) << static_cast<int>(q * 100) << "% <= "
        << TextTable::Fixed(value, 2) << " ms  ";
    const int bars = static_cast<int>(q * 40);
    out << std::string(static_cast<size_t>(bars), '#') << "\n";
  }
  return out.str();
}

}  // namespace percival
