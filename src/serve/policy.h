// Serving policy + observability types shared by every layer of the serving
// stack: the sans-IO ServingEngine (src/serve/engine.h), the IO-ful
// AdClassifier / AsyncAdClassifier adapters (src/core/classifier.h), and the
// sharded multi-model router (src/serve/shard_router.h). This header is
// deliberately leaf-level — bitmap/network/threading types never appear —
// so a host can configure the engine without pulling in our runtime.
#ifndef PERCIVAL_SRC_SERVE_POLICY_H_
#define PERCIVAL_SRC_SERVE_POLICY_H_

#include <cstddef>
#include <cstdint>

namespace percival {

struct ClassifyResult {
  bool is_ad = false;
  float ad_probability = 0.0f;
  double latency_ms = 0.0;
};

// Overload-hardening knobs for the serving path. One struct carries every
// policy so a deployment configures the whole degradation ladder in one
// place; the defaults reproduce the paper's semantics (classify everything,
// never block a paint) with generous-but-finite memory bounds.
//
// The ladder, from healthy to degraded:
//   1. admit      — frame queued for off-critical-path classification;
//   2. coalesce   — duplicate of an already queued/in-flight creative:
//                   renders now, classified once (stats().coalesced);
//   3. shed       — pending queue at max_pending (or the
//                   classifier.queue.saturate fault armed): the frame
//                   renders unclassified and is NOT queued — fail-open, the
//                   paper's async contract (stats().shed);
//   4. evict      — memo at max_memo_entries: CLOCK second-chance eviction
//                   keeps the hot set and bounds memory (stats().evicted);
//   5. degrade    — degrade_after_misses consecutive over-deadline drain
//                   batches trip a fail-open state: every uncached frame is
//                   shed without queueing until recover_after_frames frames
//                   have passed, then admission resumes with a clean miss
//                   counter (stats().degraded_frames / degrade_transitions).
struct ServingPolicy {
  // ---- bounded admission ----
  // Pending-queue capacity; a frame arriving with the queue full is shed.
  // 0 = unbounded (pre-hardening behavior).
  size_t max_pending = 256;
  // L1 memo-cache capacity in entries; insertion at capacity evicts via
  // CLOCK second-chance (a hit sets the entry's reference bit; the sweep
  // evicts the first unreferenced entry). 0 = unbounded.
  size_t max_memo_entries = 4096;

  // ---- two-tier memo: L2 perceptual near-duplicate cache ----
  // The L1 memo keys on the exact pixel hash, so the same creative
  // recompressed or resized by a second ad network misses and pays a full
  // forward pass. With near_dup_enabled, an L1 miss additionally probes an
  // L2 cache keyed on the 64-bit AverageHash: any entry within
  // near_dup_hamming bits reuses its decision without inference
  // (stats().near_dup_hits) and promotes the exact hash into L1; a probe
  // that finds nothing close enough counts stats().near_dup_rejects and
  // classifies normally. Off by default — a deployment turns it on after
  // the 64-image near-duplicate accuracy guard (serving_engine_test)
  // passes for its threshold; the guard pins >= 99% agreement between
  // near-dup hits and fresh classification.
  bool near_dup_enabled = false;
  // Max Hamming distance (in AverageHash bits) for an L2 hit. Tighter is
  // safer: 0 accepts only bit-identical perceptual hashes.
  int near_dup_hamming = 6;
  // L2 capacity in entries, CLOCK-evicted like L1. 0 = unbounded.
  size_t max_near_dup_entries = 4096;

  // ---- deadlines ----
  // Soft per-classification deadline: a classification that takes longer
  // still completes (soft — the result is not discarded) but counts a
  // deadline miss, which feeds the degrade ladder. <= 0 disables.
  double classify_deadline_ms = 0.0;
  // Default time budget for a drain when the caller passes none: the drain
  // stops between batches once the budget is spent and leaves the
  // remaining frames queued for the next drain. <= 0 = unlimited.
  double drain_budget_ms = 0.0;

  // ---- graceful degradation ----
  // Consecutive over-deadline drain batches that trip the degrade state.
  // <= 0 disables degradation entirely.
  int degrade_after_misses = 8;
  // Frames observed while degraded before the classifier self-heals and
  // resumes admission.
  int recover_after_frames = 64;

  // ---- reload ----
  // Reload retries after the initial failed attempt, with exponential
  // backoff starting at reload_backoff_ms (doubling each time). The
  // schedule itself lives in the sans-IO engine (caller-supplied time);
  // AdClassifier::LoadWeightsWithRetry drives it with real sleeps.
  int reload_max_retries = 3;
  double reload_backoff_ms = 0.5;
};

struct ClassifierStats {
  int64_t classified = 0;
  int64_t blocked = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  // Classifications whose preprocessing went straight to uint8 codes (the
  // int8 u8-direct path) — no float staging tensor existed for these.
  int64_t u8_direct = 0;
  // Memo lookups whose 64-bit pixel hash matched a cached entry but whose
  // verification hash did not — a genuine collision. The colliding frame is
  // re-classified instead of inheriting the cached decision.
  int64_t hash_collisions = 0;
  // ---- two-tier memo observability ----
  // L1 misses answered by the L2 perceptual cache: a near-duplicate
  // (recompressed/resized) creative reused a memoized decision without a
  // forward pass. Each hit also promotes the exact hash into L1.
  int64_t near_dup_hits = 0;
  // L2 probes that found no entry within the Hamming threshold; the frame
  // went on to classify normally (the safe outcome for a genuinely new
  // creative).
  int64_t near_dup_rejects = 0;
  // ---- overload observability (see ServingPolicy's ladder) ----
  // Frames refused admission (queue full, saturation fault, or degraded):
  // they rendered unclassified and were not queued.
  int64_t shed = 0;
  // Frames whose creative was already queued or in an in-flight drain: they
  // rendered immediately and ride the existing classification.
  int64_t coalesced = 0;
  // Memo entries evicted by the CLOCK sweep to stay under max_memo_entries
  // (L1) / max_near_dup_entries (L2).
  int64_t evicted = 0;
  // Classifications (sync) / drain batches (async) that exceeded the soft
  // classify_deadline_ms.
  int64_t deadline_misses = 0;
  // Frames that arrived while the degrade state was active.
  int64_t degraded_frames = 0;
  // Degrade state changes, entering and leaving each counting one — an even
  // value means the classifier is currently healthy.
  int64_t degrade_transitions = 0;
  // Reload attempts beyond the first in the retry/backoff schedule.
  int64_t reload_retries = 0;
  // Classifications that failed open (not-ad, probability 0) because the
  // forward pass could not allocate scratch memory.
  int64_t alloc_failovers = 0;
  double total_latency_ms = 0.0;
  double MeanLatencyMs() const {
    return classified == 0 ? 0.0 : total_latency_ms / static_cast<double>(classified);
  }
};

}  // namespace percival

#endif  // PERCIVAL_SRC_SERVE_POLICY_H_
