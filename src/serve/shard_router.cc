#include "src/serve/shard_router.h"

#include <algorithm>

#include "src/base/faultpoint.h"
#include "src/base/hash.h"
#include "src/base/logging.h"

namespace percival {

namespace {

// Ring points per shard. Enough that the largest shard's keyspace share
// stays within a few percent of 1/N; cheap enough that rebuilding the ring
// at construction is trivial (N shards * 64 hashes).
constexpr int kVirtualNodes = 64;

// FNV-1a avalanches poorly on short keys differing only in a trailing
// suffix ("alpha#0" .. "alpha#63" hash to near-consecutive values), which
// collapses a shard's virtual nodes into a couple of tight clumps and
// skews keyspace shares by 3-4x. The splitmix64 finalizer restores full
// avalanche, so ring points — and tenant keys like "tenant-<n>" — spread
// uniformly.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t RingHash(const std::string& key) {
  return Mix64(HashBytes(key.data(), key.size()));
}

}  // namespace

ShardRouter::ShardRouter(ModelZoo& zoo, const PercivalNetConfig& config,
                         std::vector<ShardSpec> specs,
                         const std::function<void(Network&)>& train, float threshold) {
  PCHECK(!specs.empty());
  shards_.reserve(specs.size());
  for (size_t index = 0; index < specs.size(); ++index) {
    const ShardSpec& spec = specs[index];
    const std::string& model = spec.model.empty() ? spec.name : spec.model;
    auto shard = std::make_unique<Shard>();
    shard->name = spec.name;
    shard->model_was_cached = zoo.HasCached(model);
    shard->classifier = std::make_unique<AdClassifier>(
        zoo.GetOrTrain(model, config, train), config, threshold);
    // The same policy feeds both layers: deadline/reload knobs land on the
    // inner classifier, admission/memo/degrade knobs on the async wrapper.
    shard->classifier->SetServingPolicy(spec.policy);
    shard->async = std::make_unique<AsyncAdClassifier>(*shard->classifier);
    shard->async->SetServingPolicy(spec.policy);
    // Virtual ring points: hashing "<name>#<v>" spreads each shard across
    // the keyspace so tenant load balances and a shard-set change only
    // remaps the keyspace adjacent to the changed shard's points.
    for (int v = 0; v < kVirtualNodes; ++v) {
      const std::string point = spec.name + "#" + std::to_string(v);
      ring_.emplace_back(RingHash(point), index);
    }
    shards_.push_back(std::move(shard));
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t ShardRouter::ShardFor(const std::string& tenant) const {
  const uint64_t hash = RingHash(tenant);
  // First ring point clockwise from the tenant's hash, wrapping at the top.
  auto it = std::upper_bound(ring_.begin(), ring_.end(),
                             std::make_pair(hash, static_cast<size_t>(0)),
                             [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring_.end()) {
    it = ring_.begin();
  }
  return it->second;
}

bool ShardRouter::OnFrame(const std::string& tenant, const ImageInfo& info,
                          Bitmap& pixels, const std::string& source_url) {
  Shard& shard = *shards_[ShardFor(tenant)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.routed;
  }
  return shard.async->OnDecodedFrame(info, pixels, source_url);
}

void ShardRouter::DrainShard(size_t shard, ThreadPool* pool, int batch_size,
                             double budget_ms) {
  shards_[shard]->async->DrainPending(pool, batch_size, budget_ms);
}

void ShardRouter::DrainAll(ThreadPool* pool, int batch_size, double budget_ms) {
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    DrainShard(shard, pool, batch_size, budget_ms);
  }
}

bool ShardRouter::ReloadShard(size_t shard_index, const std::string& path) {
  Shard& shard = *shards_[shard_index];
  bool ok = false;
  if (faultpoint::ShouldFire(faultpoint::kShardReloadFail)) {
    // Shard-local reload outage (updater down, artifact fetch failed for
    // this tenant only): the shard keeps its previous weights.
    LogLine("shard router: reload of shard '" + shard.name +
            "' failed (serve.shard.reload_fail armed); keeping previous weights");
  } else {
    // Staged-commit with retry/backoff, isolated to this shard's network —
    // the other shards' classifiers are never touched by this call.
    ok = shard.classifier->LoadWeightsWithRetry(path);
  }
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (ok) {
    ++shard.reloads_ok;
  } else {
    ++shard.reloads_failed;
  }
  return ok;
}

namespace {

// One shard-level view: the async wrapper's ladder/memo counters merged
// with the inner classifier's execution counters (classified, blocked,
// latency — the wrapper never increments those; its engine only routes
// work to the inner classifier). deadline_misses intentionally sums both:
// the inner count is per over-deadline classification, the wrapper's is
// per over-deadline drain batch — distinct events on distinct ladders.
ClassifierStats MergeStats(const ClassifierStats& async_stats,
                           const ClassifierStats& inner_stats) {
  ClassifierStats merged = async_stats;
  merged.classified += inner_stats.classified;
  merged.blocked += inner_stats.blocked;
  merged.u8_direct += inner_stats.u8_direct;
  merged.deadline_misses += inner_stats.deadline_misses;
  merged.reload_retries += inner_stats.reload_retries;
  merged.alloc_failovers += inner_stats.alloc_failovers;
  merged.total_latency_ms += inner_stats.total_latency_ms;
  return merged;
}

}  // namespace

ShardRouter::ShardStats ShardRouter::StatsFor(size_t shard_index) const {
  const Shard& shard = *shards_[shard_index];
  ShardStats stats;
  stats.name = shard.name;
  stats.model_was_cached = shard.model_was_cached;
  // Each snapshot below is coherent under its own lock; the router
  // counters under theirs. (Three locks, three coherent groups — routed
  // can momentarily exceed the classifier's lookups while a frame is
  // between the two, which is the honest ordering.)
  stats.classifier = MergeStats(shard.async->stats(), shard.classifier->stats());
  std::lock_guard<std::mutex> lock(shard.mutex);
  stats.routed = shard.routed;
  stats.reloads_ok = shard.reloads_ok;
  stats.reloads_failed = shard.reloads_failed;
  return stats;
}

std::vector<ShardRouter::ShardStats> ShardRouter::AllStats() const {
  std::vector<ShardStats> all;
  all.reserve(shards_.size());
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    all.push_back(StatsFor(shard));
  }
  return all;
}

ClassifierStats ShardRouter::Rollup() const {
  ClassifierStats total;
  for (size_t index = 0; index < shards_.size(); ++index) {
    const ClassifierStats s = MergeStats(shards_[index]->async->stats(),
                                         shards_[index]->classifier->stats());
    total.classified += s.classified;
    total.blocked += s.blocked;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.u8_direct += s.u8_direct;
    total.hash_collisions += s.hash_collisions;
    total.near_dup_hits += s.near_dup_hits;
    total.near_dup_rejects += s.near_dup_rejects;
    total.shed += s.shed;
    total.coalesced += s.coalesced;
    total.evicted += s.evicted;
    total.deadline_misses += s.deadline_misses;
    total.degraded_frames += s.degraded_frames;
    total.degrade_transitions += s.degrade_transitions;
    total.reload_retries += s.reload_retries;
    total.alloc_failovers += s.alloc_failovers;
    total.total_latency_ms += s.total_latency_ms;
  }
  return total;
}

}  // namespace percival
